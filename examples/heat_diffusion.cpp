// Domain example: the heat-diffusion workload under AVR, sweeping the
// error-threshold knob T1 (Sec. 3.3 exposes it as a tunable) and showing the
// quality/traffic trade-off the paper describes.
//
//   build/examples/example_heat_diffusion
#include <cstdio>

#include "harness/experiment.hh"
#include "workloads/workload_registry.hh"

int main() {
  using namespace avr;

  std::printf("heat under AVR: error-threshold knob sweep\n");
  std::printf("%6s %12s %14s %12s %12s\n", "N", "T1", "compr.ratio", "traffic",
              "out.error");

  // Reference baseline run (threshold-independent).
  ExperimentRunner ref({}, /*verbose=*/false, "");
  const double base_bytes =
      static_cast<double>(ref.run("heat", Design::kBaseline).m.dram_bytes);

  for (uint32_t n : {2u, 3u, 4u, 6u, 8u}) {
    // A fresh runner per point: the knob changes the config, so results must
    // not be shared through the cache.
    SimConfig cfg;
    cfg.avr.t1_mantissa_msbit = n;

    auto wl = make_workload("heat");
    SimConfig wcfg = ExperimentRunner(cfg, false, "").config_for(*wl);
    wcfg.avr.t1_mantissa_msbit = n;  // override the workload default

    // Golden output for the error metric.
    auto golden_wl = make_workload("heat");
    System gsys(Design::kBaseline, wcfg, 1, /*timing=*/false);
    golden_wl->run(gsys);
    const auto golden = golden_wl->output(gsys);

    System sys(Design::kAvr, wcfg);
    wl->run(sys);
    const auto out = wl->output(sys);
    sys.finish();
    const RunMetrics m = sys.metrics();

    std::printf("%6u %11.2f%% %13.1fx %11.2f %11.2f%%\n", n,
                100.0 / (1u << n), m.compression_ratio,
                static_cast<double>(m.dram_bytes) / base_bytes,
                100.0 * mean_relative_error(out, golden));
  }
  std::printf("\nTighter thresholds (larger N) trade compression ratio and\n"
              "traffic savings for lower application output error.\n");
  return 0;
}
