// Example: bringing your own application to the simulator.
//
// Shows the full runtime API surface: annotated allocation (the paper's
// malloc wrapper), instrumented loads/stores, surrounding-arithmetic
// accounting, and metric extraction — here for a simple image-blur kernel,
// compared across baseline and AVR.
//
//   build/examples/example_custom_workload
#include <cmath>
#include <cstdio>
#include <vector>

#include "runtime/system.hh"

namespace {

using namespace avr;

/// A 3x3 box blur over a synthetic photo-like image (smooth regions with
/// sharp edges): the image is annotated approximable, the output is exact.
RunMetrics run_blur(Design design, double* out_checksum) {
  SimConfig cfg;
  cfg.scale_caches(16);
  cfg.llc.size_bytes = 64 * 1024;
  System sys(design, cfg);

  constexpr uint32_t kW = 256, kH = 192;
  const uint64_t img = sys.alloc("image", uint64_t{kW} * kH * 4, /*approx=*/true);
  const uint64_t out = sys.alloc("blurred", uint64_t{kW} * kH * 4, /*approx=*/false);
  auto at = [&](uint64_t base, uint32_t x, uint32_t y) {
    return base + (uint64_t{y} * kW + x) * 4;
  };

  // Synthetic scene: smooth vignette + a few hard-edged rectangles.
  for (uint32_t y = 0; y < kH; ++y)
    for (uint32_t x = 0; x < kW; ++x) {
      float v = 128.0f + 80.0f * std::sin(0.01f * x) * std::cos(0.013f * y);
      if (x > 60 && x < 120 && y > 40 && y < 90) v = 240.0f;  // bright card
      if (x > 180 && x < 210 && y > 100 && y < 160) v = 15.0f;  // shadow
      sys.store_f32(at(img, x, y), v);
    }

  // Blur passes (each read-modify-writes the whole image working set).
  double checksum = 0;
  for (int pass = 0; pass < 3; ++pass) {
    for (uint32_t y = 1; y + 1 < kH; ++y)
      for (uint32_t x = 1; x + 1 < kW; ++x) {
        float acc = 0;
        for (int dy = -1; dy <= 1; ++dy)
          for (int dx = -1; dx <= 1; ++dx)
            acc += sys.load_f32(at(img, x + dx, y + dy));
        sys.ops(10);
        sys.store_f32(at(out, x, y), acc / 9.0f);
      }
    if (pass + 1 < 3) std::swap(const_cast<uint64_t&>(img), const_cast<uint64_t&>(out));
  }
  for (uint32_t y = 0; y < kH; ++y) checksum += sys.peek_f32(at(out, kW / 2, y));
  sys.finish();
  *out_checksum = checksum;
  return sys.metrics();
}

}  // namespace

int main() {
  double base_sum = 0, avr_sum = 0;
  const RunMetrics base = run_blur(Design::kBaseline, &base_sum);
  const RunMetrics avr = run_blur(Design::kAvr, &avr_sum);

  std::printf("image blur, baseline vs AVR\n");
  std::printf("  cycles        : %10.2fM -> %10.2fM (%.0f%%)\n", base.cycles / 1e6,
              avr.cycles / 1e6, 100.0 * avr.cycles / base.cycles);
  std::printf("  DRAM traffic  : %10.2fMB -> %10.2fMB (%.0f%%)\n",
              base.dram_bytes / 1048576.0, avr.dram_bytes / 1048576.0,
              100.0 * avr.dram_bytes / base.dram_bytes);
  std::printf("  AMAT          : %10.2f  -> %10.2f cycles\n", base.amat, avr.amat);
  std::printf("  compression   : %.1f:1\n", avr.compression_ratio);
  std::printf("  output drift  : %.4f%% (column checksum)\n",
              100.0 * std::abs(avr_sum - base_sum) / std::abs(base_sum));
  return 0;
}
