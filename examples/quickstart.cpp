// Quickstart: compress one memory block by hand, then run a tiny workload
// under AVR and print the headline numbers.
//
//   build/examples/example_quickstart
#include <cstdio>

#include "avr/compressor.hh"
#include "common/fp_bits.hh"
#include "harness/experiment.hh"

int main() {
  using namespace avr;

  // --- 1. The compressor as a standalone library ---------------------------
  AvrConfig acfg;  // T1 = 6.25 % (N=4), both 1D and 2D variants enabled
  Compressor comp(acfg);

  // A smooth 16x16 field: exactly what downsampling loves.
  std::array<float, kValuesPerBlock> block;
  for (uint32_t r = 0; r < 16; ++r)
    for (uint32_t c = 0; c < 16; ++c)
      block[r * 16 + c] = 20.0f + 0.1f * static_cast<float>(r) + 0.07f * static_cast<float>(c);

  auto att = comp.compress(block);
  if (!att) {
    std::printf("block did not compress\n");
    return 1;
  }
  std::printf("compressed 1024 B block -> %u line(s) (%s, %zu outliers), ratio %.1f:1\n",
              att->block.lines(), to_string(att->block.method),
              att->block.outliers.size(), 16.0 / att->block.lines());

  std::array<float, kValuesPerBlock> recon;
  comp.reconstruct(att->block, recon);
  double worst = 0;
  for (uint32_t i = 0; i < kValuesPerBlock; ++i)
    worst = std::max(worst, relative_error(recon[i], block[i]));
  std::printf("worst reconstruction error: %.4f%% (T1 = %.2f%%)\n", 100 * worst,
              100 * comp.t1());

  // --- 2. A full system run -------------------------------------------------
  ExperimentRunner runner({}, /*verbose=*/false);
  const auto& base = runner.run("heat", Design::kBaseline);
  const auto& avr = runner.run("heat", Design::kAvr);
  std::printf("\nheat: baseline %.2fM cycles, AVR %.2fM cycles (%.0f%% of baseline)\n",
              base.m.cycles / 1e6, avr.m.cycles / 1e6,
              100.0 * avr.m.cycles / base.m.cycles);
  std::printf("heat: DRAM traffic baseline %.2f MB -> AVR %.2f MB; output error %.2f%%\n",
              base.m.dram_bytes / 1048576.0, avr.m.dram_bytes / 1048576.0,
              100 * avr.m.output_error);
  std::printf("heat: AVR compression ratio %.1f:1\n", avr.m.compression_ratio);
  return 0;
}
