// Example: using the compressor as a standalone library to inspect how AVR
// summarizes different data shapes — method selection (1D vs 2D), outlier
// placement, bias, and the per-block size/error trade-off.
//
//   build/examples/example_inspect_compression
#include <array>
#include <cmath>
#include <cstdio>

#include "avr/compressor.hh"
#include "common/fp_bits.hh"
#include "common/prng.hh"

using namespace avr;

namespace {

void inspect(const Compressor& comp, const char* label,
             const std::array<float, kValuesPerBlock>& block) {
  auto att = comp.compress(block);
  if (!att) {
    std::printf("%-24s FAILED (stored uncompressed, 16 lines)\n", label);
    return;
  }
  std::array<float, kValuesPerBlock> recon;
  comp.reconstruct(att->block, recon);
  double worst = 0;
  for (uint32_t i = 0; i < kValuesPerBlock; ++i)
    if (!att->block.outlier_map.test(i))
      worst = std::max(worst, relative_error(recon[i], block[i]));
  std::printf("%-24s %u line(s)  %-5s  bias %+4d  %3zu outliers  "
              "avg err %.3f%%  worst non-outlier %.3f%%\n",
              label, att->block.lines(), to_string(att->block.method),
              att->block.bias, att->block.outliers.size(),
              100 * att->avg_error, 100 * worst);
}

}  // namespace

int main() {
  Compressor comp(AvrConfig{});
  std::array<float, kValuesPerBlock> b;
  Xoshiro256 rng(2024);

  std::printf("AVR block compression over different data shapes (T1 = %.2f%%)\n\n",
              100 * comp.t1());

  b.fill(3.14159f);
  inspect(comp, "constant", b);

  for (uint32_t i = 0; i < 256; ++i) b[i] = 10.0f + 0.3f * i;
  inspect(comp, "1D linear ramp", b);

  for (uint32_t r = 0; r < 16; ++r)
    for (uint32_t c = 0; c < 16; ++c)
      b[r * 16 + c] = 100.0f + 4.0f * std::sin(0.2f * r) * std::cos(0.15f * c);
  inspect(comp, "smooth 2D field", b);

  for (uint32_t i = 0; i < 256; ++i)
    b[i] = 50.0f * (1.0f + 0.02f * static_cast<float>(rng.uniform(-1, 1)));
  inspect(comp, "2% jitter", b);

  for (uint32_t i = 0; i < 256; ++i) {
    b[i] = 20.0f + 0.05f * i;
    if (rng.uniform() < 0.08) b[i] *= 3.0f;  // sparse spikes
  }
  inspect(comp, "ramp + 8% spikes", b);

  for (uint32_t i = 0; i < 256; ++i) b[i] = static_cast<float>(rng.uniform(-1e6, 1e6));
  inspect(comp, "white noise", b);

  for (uint32_t r = 0; r < 16; ++r)
    for (uint32_t c = 0; c < 16; ++c)
      b[r * 16 + c] = 1e-18f * (5.0f + 0.1f * r + 0.08f * c);
  inspect(comp, "tiny magnitudes (bias)", b);

  for (uint32_t r = 0; r < 16; ++r)
    for (uint32_t c = 0; c < 16; ++c)
      b[r * 16 + c] = 2e28f * (5.0f + 0.1f * r + 0.08f * c);
  inspect(comp, "huge magnitudes (bias)", b);

  return 0;
}
