// Ablation study of the AVR design choices DESIGN.md calls out:
//   * lazy eviction on/off            (Sec. 3.1 / 3.5)
//   * PFE on/off                      (Sec. 3.3)
//   * failure history on/off          (Sec. 3.2 / 3.5)
//   * 1D-only vs 2D-only vs both downsampling variants (Sec. 3.3)
// Run on the three workloads with distinct compression regimes
// (heat: high, lattice: medium iterative, kmeans: low/outlier-heavy).
//
// Results are *not* cached: each variant alters the configuration.
#include <cstdio>
#include <functional>
#include <string>

#include "harness/experiment.hh"
#include "workloads/workload_registry.hh"

namespace {

using namespace avr;

struct Variant {
  std::string name;
  std::function<void(SimConfig&)> tweak;
};

struct Point {
  uint64_t cycles = 0;
  uint64_t bytes = 0;
  double error = 0;
};

Point run_point(const std::string& wl_name, const Variant& v) {
  auto wl = make_workload(wl_name);
  SimConfig cfg = ExperimentRunner({}, false, "").config_for(*wl);
  v.tweak(cfg);

  auto gold_wl = make_workload(wl_name);
  System gsys(Design::kBaseline, cfg, 1, /*timing=*/false);
  gold_wl->run(gsys);
  const auto golden = gold_wl->output(gsys);

  System sys(Design::kAvr, cfg);
  wl->run(sys);
  const auto out = wl->output(sys);
  sys.finish();
  const RunMetrics m = sys.metrics();
  return {m.cycles, m.dram_bytes, mean_relative_error(out, golden)};
}

}  // namespace

int main() {
  const std::vector<Variant> variants = {
      {"full AVR", [](SimConfig&) {}},
      {"no lazy eviction", [](SimConfig& c) { c.avr.enable_lazy_eviction = false; }},
      {"no PFE", [](SimConfig& c) { c.avr.enable_pfe = false; }},
      {"no failure history",
       [](SimConfig& c) { c.avr.enable_failure_history = false; }},
      {"1D only", [](SimConfig& c) { c.avr.enable_2d = false; }},
      {"2D only", [](SimConfig& c) { c.avr.enable_1d = false; }},
  };
  const std::vector<std::string> wls = {"heat", "lattice", "kmeans"};

  std::printf("AVR ablation (each cell normalized to the full design)\n");
  for (const auto& w : wls) {
    std::printf("\n%s\n", w.c_str());
    std::printf("  %-20s %10s %10s %10s\n", "variant", "cycles", "traffic",
                "error(%)");
    const Point full = run_point(w, variants[0]);
    for (const auto& v : variants) {
      const Point p = run_point(w, v);
      std::printf("  %-20s %10.3f %10.3f %9.2f%%\n", v.name.c_str(),
                  static_cast<double>(p.cycles) / full.cycles,
                  static_cast<double>(p.bytes) / full.bytes, 100 * p.error);
    }
  }
  return 0;
}
