// Ablation study of the AVR design choices DESIGN.md calls out:
//   * lazy eviction on/off            (Sec. 3.1 / 3.5)
//   * PFE on/off                      (Sec. 3.3)
//   * failure history on/off          (Sec. 3.2 / 3.5)
//   * 1D-only vs 2D-only vs both downsampling variants (Sec. 3.3)
// Run on the three workloads with distinct compression regimes
// (heat: high, lattice: medium iterative, kmeans: low/outlier-heavy).
//
// Each variant runs through its own ExperimentRunner whose base config
// carries the tweak, so results cache in the shared result-cache file keyed
// by config fingerprint (format v3): re-running the ablation is pure
// lookup, and the "full AVR" variant shares the default-config grid's
// cached points with the figure benches.
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "workloads/workload_registry.hh"

namespace {

using namespace avr;

struct Variant {
  std::string name;
  std::function<void(SimConfig&)> tweak;
};

struct Point {
  uint64_t cycles = 0;
  uint64_t bytes = 0;
  double error = 0;
};

Point run_point(ExperimentRunner& runner, const std::string& wl_name) {
  const ExperimentResult& r = runner.run(wl_name, Design::kAvr);
  return {r.m.cycles, r.m.dram_bytes, r.m.output_error};
}

}  // namespace

int main() {
  const std::vector<Variant> variants = {
      {"full AVR", [](SimConfig&) {}},
      {"no lazy eviction", [](SimConfig& c) { c.avr.enable_lazy_eviction = false; }},
      {"no PFE", [](SimConfig& c) { c.avr.enable_pfe = false; }},
      {"no failure history",
       [](SimConfig& c) { c.avr.enable_failure_history = false; }},
      {"1D only", [](SimConfig& c) { c.avr.enable_2d = false; }},
      {"2D only", [](SimConfig& c) { c.avr.enable_1d = false; }},
  };
  const std::vector<std::string> wls = {"heat", "lattice", "kmeans"};

  // One runner per variant: each caches its points under its own config
  // fingerprint in the shared cache file.
  std::vector<std::unique_ptr<ExperimentRunner>> runners;
  for (const auto& v : variants) {
    SimConfig base;
    v.tweak(base);
    runners.push_back(std::make_unique<ExperimentRunner>(base, /*verbose=*/false));
  }

  std::printf("AVR ablation (each cell normalized to the full design)\n");
  for (const auto& w : wls) {
    std::printf("\n%s\n", w.c_str());
    std::printf("  %-20s %10s %10s %10s\n", "variant", "cycles", "traffic",
                "error(%)");
    const Point full = run_point(*runners[0], w);
    for (size_t vi = 0; vi < variants.size(); ++vi) {
      const Point p = run_point(*runners[vi], w);
      std::printf("  %-20s %10.3f %10.3f %9.2f%%\n", variants[vi].name.c_str(),
                  static_cast<double>(p.cycles) / full.cycles,
                  static_cast<double>(p.bytes) / full.bytes, 100 * p.error);
    }
  }
  return 0;
}
