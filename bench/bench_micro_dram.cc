// Micro-benchmarks of the DDR4 timing model: modeled latency (reported as
// the "latency" counter, CPU cycles) for the access patterns that matter to
// AVR, plus simulator throughput.
#include <benchmark/benchmark.h>

#include "common/prng.hh"
#include "dram/dram.hh"

namespace {

using namespace avr;

/// Modeled latency of an isolated 64 B line read.
void BM_LineReadLatency(benchmark::State& state) {
  uint64_t total = 0, n = 0;
  for (auto _ : state) {
    Dram d((DramConfig()));
    const uint64_t lat = d.read(0, 0x1000, 64);
    benchmark::DoNotOptimize(lat);
    total += lat;
    ++n;
  }
  state.counters["modeled_latency_cycles"] =
      static_cast<double>(total) / static_cast<double>(n);
}
BENCHMARK(BM_LineReadLatency);

/// Modeled latency of a whole compressed-block read (k consecutive lines).
void BM_BlockReadLatency(benchmark::State& state) {
  const uint32_t lines = static_cast<uint32_t>(state.range(0));
  uint64_t total = 0, n = 0;
  for (auto _ : state) {
    Dram d((DramConfig()));
    const uint64_t lat = d.read(0, 0x1000, lines * 64);
    benchmark::DoNotOptimize(lat);
    total += lat;
    ++n;
  }
  state.counters["modeled_latency_cycles"] =
      static_cast<double>(total) / static_cast<double>(n);
}
BENCHMARK(BM_BlockReadLatency)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

/// Simulator throughput under a random-access stream.
void BM_RandomStreamThroughput(benchmark::State& state) {
  Dram d((DramConfig()));
  Xoshiro256 rng(3);
  uint64_t now = 0;
  for (auto _ : state) {
    now += d.read(now, rng.below(1 << 24) * 64, 64);
    benchmark::DoNotOptimize(now);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_RandomStreamThroughput);

}  // namespace

BENCHMARK_MAIN();
