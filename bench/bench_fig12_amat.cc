// Figure 12: average memory access time, normalized to baseline.
#include "harness/experiment.hh"

int main() {
  using namespace avr;
  ExperimentRunner r;
  // Warm every point concurrently; printing below is then pure cache lookup.
  r.run_all(workload_names(), ExperimentRunner::paper_designs());
  print_normalized_table(r, "Fig. 12: AMAT", workload_names(),
                         {Design::kDoppelganger, Design::kTruncate,
                          Design::kZeroAvr, Design::kAvr},
                         [](const RunMetrics& m) { return m.amat; });
  std::printf("\npaper AVR row: heat 0.80, lattice 0.57, lbm 0.70, orbit 0.84,"
              " kmeans 0.77, wrf ~1.0\n");
  return 0;
}
