// Figure 13: LLC misses per kilo-instruction, normalized to baseline.
// An AVR request that hits a compressed block in the LLC or the DBUF counts
// as a hit (it avoided DRAM), which is what drives AVR's low MPKI.
#include "harness/experiment.hh"

int main() {
  using namespace avr;
  ExperimentRunner r;
  // Warm every point concurrently; printing below is then pure cache lookup.
  r.run_all(workload_names(), ExperimentRunner::paper_designs());
  print_normalized_table(r, "Fig. 13: LLC MPKI", workload_names(),
                         {Design::kDoppelganger, Design::kTruncate,
                          Design::kZeroAvr, Design::kAvr},
                         [](const RunMetrics& m) { return m.llc_mpki; });
  std::printf("\npaper: ZeroAVR ~1.0 everywhere; AVR lattice 0.14 vs dganger"
              " 0.48 / truncate 0.53\n");
  return 0;
}
