// Micro-benchmarks of the end-to-end per-access simulation chain: what one
// instrumented workload load/store costs through System -> IntervalCore ->
// MemoryHierarchy -> (LLC subsystem), for the access mixes that dominate the
// paper sweep (L1-resident streaming, L1-hit re-reads, LLC-bound strides)
// plus a miniature Jacobi kernel as a workload-shaped composite.
#include <benchmark/benchmark.h>

#include "runtime/system.hh"

namespace {

using namespace avr;

SimConfig small_cfg() {
  SimConfig cfg;
  cfg.scale_caches(16);  // L1 4 kB, L2 16 kB, LLC 512 kB
  return cfg;
}

/// One instrumented load through the workload-facing access chain (the
/// RegionHandle API every workload programs against), streaming 4 B values
/// over an L1-resident window: the dominant access pattern of the paper's
/// kernels (16 consecutive hits per cacheline).
void BM_AccessChain(benchmark::State& state) {
  System sys(Design::kBaseline, small_cfg());
  const uint64_t bytes = 2048;  // half of the scaled L1
  const RegionHandle h = sys.alloc_region("bench.chain", bytes, /*approx=*/false);
  // Warm the window into the L1.
  for (uint64_t off = 0; off < bytes; off += 4) sys.load_f32(h, off);
  uint64_t off = 0;
  float acc = 0;
  for (auto _ : state) {
    acc += sys.load_f32(h, off);
    off = (off + 4) & (bytes - 1);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_AccessChain);

/// Same window driven through instrumented stores (write hits).
void BM_AccessChainStore(benchmark::State& state) {
  System sys(Design::kBaseline, small_cfg());
  const uint64_t bytes = 2048;
  const RegionHandle h = sys.alloc_region("bench.chain", bytes, /*approx=*/false);
  for (uint64_t off = 0; off < bytes; off += 4) sys.store_f32(h, off, 1.0f);
  uint64_t off = 0;
  for (auto _ : state) {
    sys.store_f32(h, off, 2.0f);
    off = (off + 4) & (bytes - 1);
  }
  benchmark::DoNotOptimize(off);
}
BENCHMARK(BM_AccessChainStore);

/// The address-based runtime API (kept for tests and non-ported callers):
/// same L1-resident stream as BM_AccessChain, always through the
/// RegionRegistry address translation.
void BM_AccessChainAddr(benchmark::State& state) {
  System sys(Design::kBaseline, small_cfg());
  const uint64_t bytes = 2048;
  const uint64_t a = sys.alloc("bench.chain", bytes, /*approx=*/false);
  for (uint64_t off = 0; off < bytes; off += 4) sys.load_f32(a + off);
  uint64_t off = 0;
  float acc = 0;
  for (auto _ : state) {
    acc += sys.load_f32(a + off);
    off = (off + 4) & (bytes - 1);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_AccessChainAddr);

/// Line-stride reads over a window larger than the private caches but
/// LLC-resident: every access walks the full L1 -> L2 -> LLC dispatch.
void BM_AccessChainLlc(benchmark::State& state) {
  System sys(Design::kBaseline, small_cfg());
  const uint64_t bytes = 256 * 1024;  // > L2 (16 kB), within the 512 kB LLC
  const uint64_t a = sys.alloc("bench.llc", bytes, /*approx=*/false);
  for (uint64_t off = 0; off < bytes; off += kCachelineBytes)
    sys.load_f32(a + off);
  uint64_t off = 0;
  float acc = 0;
  for (auto _ : state) {
    acc += sys.load_f32(a + off);
    off = (off + kCachelineBytes) & (bytes - 1);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_AccessChainLlc);

/// Workload-shaped composite: one 5-point Jacobi sweep over a 64x64 grid
/// through the instrumented runtime API (the inner loop every stencil
/// workload in src/workloads/ executes millions of times).
void BM_WorkloadKernel(benchmark::State& state) {
  constexpr uint32_t kN = 64;
  System sys(Design::kBaseline, small_cfg());
  const uint64_t bytes = uint64_t{kN} * kN * sizeof(float);
  const RegionHandle src = sys.alloc_region("bench.src", bytes, /*approx=*/true);
  const RegionHandle dst = sys.alloc_region("bench.dst", bytes, /*approx=*/true);
  auto at = [](uint32_t r, uint32_t c) {
    return (uint64_t{r} * kN + c) * sizeof(float);
  };
  for (uint32_t r = 0; r < kN; ++r)
    for (uint32_t c = 0; c < kN; ++c)
      sys.store_f32(src, at(r, c), 1.0f + 0.01f * static_cast<float>(r + c));
  for (auto _ : state) {
    for (uint32_t r = 1; r + 1 < kN; ++r)
      for (uint32_t c = 1; c + 1 < kN; ++c) {
        const float up = sys.load_f32(src, at(r - 1, c));
        const float dn = sys.load_f32(src, at(r + 1, c));
        const float lf = sys.load_f32(src, at(r, c - 1));
        const float rt = sys.load_f32(src, at(r, c + 1));
        sys.store_f32(dst, at(r, c), 0.25f * (up + dn + lf + rt));
      }
  }
  state.SetItemsProcessed(state.iterations() * int64_t{kN - 2} * (kN - 2) * 5);
}
BENCHMARK(BM_WorkloadKernel);

}  // namespace

BENCHMARK_MAIN();
