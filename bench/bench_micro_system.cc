// Micro-benchmarks of the end-to-end per-access simulation chain: what one
// instrumented workload load/store costs through System -> IntervalCore ->
// MemoryHierarchy -> (LLC subsystem), for the access mixes that dominate the
// paper sweep (L1-resident streaming, L1-hit re-reads, LLC-bound strides)
// plus a miniature Jacobi kernel as a workload-shaped composite.
#include <benchmark/benchmark.h>

#include "common/profile.hh"
#include "runtime/system.hh"
#include "trace/trace_gen.hh"
#include "trace/trace_replay.hh"

namespace {

using namespace avr;

SimConfig small_cfg() {
  SimConfig cfg;
  cfg.scale_caches(16);  // L1 4 kB, L2 16 kB, LLC 512 kB
  return cfg;
}

/// One instrumented load through the workload-facing access chain (the
/// RegionHandle API every workload programs against), streaming 4 B values
/// over an L1-resident window: the dominant access pattern of the paper's
/// kernels (16 consecutive hits per cacheline).
void BM_AccessChain(benchmark::State& state) {
  System sys(Design::kBaseline, small_cfg());
  const uint64_t bytes = 2048;  // half of the scaled L1
  const RegionHandle h = sys.alloc_region("bench.chain", bytes, /*approx=*/false);
  // Warm the window into the L1.
  for (uint64_t off = 0; off < bytes; off += 4) sys.load_f32(h, off);
  uint64_t off = 0;
  float acc = 0;
  for (auto _ : state) {
    acc += sys.load_f32(h, off);
    off = (off + 4) & (bytes - 1);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_AccessChain);

/// Same window driven through instrumented stores (write hits).
void BM_AccessChainStore(benchmark::State& state) {
  System sys(Design::kBaseline, small_cfg());
  const uint64_t bytes = 2048;
  const RegionHandle h = sys.alloc_region("bench.chain", bytes, /*approx=*/false);
  for (uint64_t off = 0; off < bytes; off += 4) sys.store_f32(h, off, 1.0f);
  uint64_t off = 0;
  for (auto _ : state) {
    sys.store_f32(h, off, 2.0f);
    off = (off + 4) & (bytes - 1);
  }
  benchmark::DoNotOptimize(off);
}
BENCHMARK(BM_AccessChainStore);

/// The address-based runtime API (kept for tests and non-ported callers):
/// same L1-resident stream as BM_AccessChain, always through the
/// RegionRegistry address translation.
void BM_AccessChainAddr(benchmark::State& state) {
  System sys(Design::kBaseline, small_cfg());
  const uint64_t bytes = 2048;
  const uint64_t a = sys.alloc("bench.chain", bytes, /*approx=*/false);
  for (uint64_t off = 0; off < bytes; off += 4) sys.load_f32(a + off);
  uint64_t off = 0;
  float acc = 0;
  for (auto _ : state) {
    acc += sys.load_f32(a + off);
    off = (off + 4) & (bytes - 1);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_AccessChainAddr);

/// Line-stride reads over a window larger than the private caches but
/// LLC-resident: every access walks the full L1 -> L2 -> LLC dispatch.
void BM_AccessChainLlc(benchmark::State& state) {
  System sys(Design::kBaseline, small_cfg());
  const uint64_t bytes = 256 * 1024;  // > L2 (16 kB), within the 512 kB LLC
  const uint64_t a = sys.alloc("bench.llc", bytes, /*approx=*/false);
  for (uint64_t off = 0; off < bytes; off += kCachelineBytes)
    sys.load_f32(a + off);
  uint64_t off = 0;
  float acc = 0;
  for (auto _ : state) {
    acc += sys.load_f32(a + off);
    off = (off + kCachelineBytes) & (bytes - 1);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_AccessChainLlc);

/// Workload-shaped composite: one 5-point Jacobi sweep over a 64x64 grid
/// through the instrumented runtime API (the inner loop every stencil
/// workload in src/workloads/ executes millions of times).
void BM_WorkloadKernel(benchmark::State& state) {
  constexpr uint32_t kN = 64;
  System sys(Design::kBaseline, small_cfg());
  const uint64_t bytes = uint64_t{kN} * kN * sizeof(float);
  const RegionHandle src = sys.alloc_region("bench.src", bytes, /*approx=*/true);
  const RegionHandle dst = sys.alloc_region("bench.dst", bytes, /*approx=*/true);
  auto at = [](uint32_t r, uint32_t c) {
    return (uint64_t{r} * kN + c) * sizeof(float);
  };
  for (uint32_t r = 0; r < kN; ++r)
    for (uint32_t c = 0; c < kN; ++c)
      sys.store_f32(src, at(r, c), 1.0f + 0.01f * static_cast<float>(r + c));
  for (auto _ : state) {
    for (uint32_t r = 1; r + 1 < kN; ++r)
      for (uint32_t c = 1; c + 1 < kN; ++c) {
        const float up = sys.load_f32(src, at(r - 1, c));
        const float dn = sys.load_f32(src, at(r + 1, c));
        const float lf = sys.load_f32(src, at(r, c - 1));
        const float rt = sys.load_f32(src, at(r, c + 1));
        sys.store_f32(dst, at(r, c), 0.25f * (up + dn + lf + rt));
      }
  }
  state.SetItemsProcessed(state.iterations() * int64_t{kN - 2} * (kN - 2) * 5);
}
BENCHMARK(BM_WorkloadKernel);

/// BM_WorkloadKernel with an active profile sink installed, as a sweep point
/// runs it: the delta against BM_WorkloadKernel is the always-on profiling
/// layer's overhead on real simulation work (acceptance bound: < 1%). Timers
/// fire per *phase*, never per access, so the sink merely being active costs
/// nothing on this path — the two benches should be within noise.
void BM_WorkloadKernelProfiled(benchmark::State& state) {
  constexpr uint32_t kN = 64;
  prof::Totals totals;
  prof::ScopedSink sink(&totals);
  System sys(Design::kBaseline, small_cfg());
  const uint64_t bytes = uint64_t{kN} * kN * sizeof(float);
  const RegionHandle src = sys.alloc_region("bench.src", bytes, /*approx=*/true);
  const RegionHandle dst = sys.alloc_region("bench.dst", bytes, /*approx=*/true);
  auto at = [](uint32_t r, uint32_t c) {
    return (uint64_t{r} * kN + c) * sizeof(float);
  };
  for (uint32_t r = 0; r < kN; ++r)
    for (uint32_t c = 0; c < kN; ++c)
      sys.store_f32(src, at(r, c), 1.0f + 0.01f * static_cast<float>(r + c));
  for (auto _ : state) {
    AVR_PROF_SCOPE(prof::Phase::kTiming);
    for (uint32_t r = 1; r + 1 < kN; ++r)
      for (uint32_t c = 1; c + 1 < kN; ++c) {
        const float up = sys.load_f32(src, at(r - 1, c));
        const float dn = sys.load_f32(src, at(r + 1, c));
        const float lf = sys.load_f32(src, at(r, c - 1));
        const float rt = sys.load_f32(src, at(r, c + 1));
        sys.store_f32(dst, at(r, c), 0.25f * (up + dn + lf + rt));
      }
  }
  benchmark::DoNotOptimize(totals);
  state.SetItemsProcessed(state.iterations() * int64_t{kN - 2} * (kN - 2) * 5);
}
BENCHMARK(BM_WorkloadKernelProfiled);

/// One ScopedTimer enter+exit with an installed sink: the marginal cost of
/// adding a profiled phase (two clock_gettime reads + the accumulate).
void BM_ProfileScopedTimer(benchmark::State& state) {
  prof::Totals totals;
  prof::ScopedSink sink(&totals);
  for (auto _ : state) {
    AVR_PROF_SCOPE(prof::Phase::kTiming);
    benchmark::ClobberMemory();
  }
  benchmark::DoNotOptimize(totals);
}
BENCHMARK(BM_ProfileScopedTimer);

/// The same scope with NO sink installed — what every timer in a
/// non-profiled context (figure benches, tests) costs: a TLS load + branch.
void BM_ProfileScopedTimerIdle(benchmark::State& state) {
  for (auto _ : state) {
    AVR_PROF_SCOPE(prof::Phase::kTiming);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_ProfileScopedTimerIdle);

/// Trace replay through the full instrumented chain: a pointer-chase stream
/// with no loop structure, the adversarial case for the L1 MRU line filter
/// (every access lands on a different cacheline). Items = replayed accesses.
void BM_TraceReplay(benchmark::State& state) {
  trace::GenParams p;
  p.records = 16384;
  p.regions = 2;
  p.region_bytes = 1 << 16;
  p.seed = 7;
  const trace::Trace t = trace::make_chase_trace(p);
  System sys(Design::kBaseline, small_cfg());
  std::vector<RegionHandle> handles;
  for (const auto& r : t.regions)
    handles.push_back(sys.alloc_region(r.name, r.bytes, r.approx));
  for (size_t i = 0; i < handles.size(); ++i)
    trace::init_region(sys, handles[i], 0x517EC0DE + i);
  for (auto _ : state) {
    trace::ReplayCursor cursor(t.regions.size());
    trace::replay(sys, t, handles, cursor);
    benchmark::DoNotOptimize(cursor.loads);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(t.access_count()));
}
BENCHMARK(BM_TraceReplay);

/// Same chain under a Zipf-skewed stream with variable record sizes mixed
/// in: hot-set hits dominate, so this bounds replay overhead when the L1
/// filter mostly works.
void BM_TraceReplayZipf(benchmark::State& state) {
  trace::GenParams p;
  p.records = 16384;
  p.regions = 1;
  p.region_bytes = 1 << 17;
  p.seed = 9;
  const trace::Trace t = trace::make_zipf_trace(p);
  System sys(Design::kBaseline, small_cfg());
  std::vector<RegionHandle> handles;
  for (const auto& r : t.regions)
    handles.push_back(sys.alloc_region(r.name, r.bytes, r.approx));
  trace::init_region(sys, handles[0], 0x517EC0DE);
  for (auto _ : state) {
    trace::ReplayCursor cursor(t.regions.size());
    trace::replay(sys, t, handles, cursor);
    benchmark::DoNotOptimize(cursor.loads);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(t.access_count()));
}
BENCHMARK(BM_TraceReplayZipf);

}  // namespace

BENCHMARK_MAIN();
