// Figure 15: breakdown of AVR LLC evictions of approximate cachelines:
// Recompress / Lazy Writeback / Fetch+Recompress / Uncompressed Writeback.
#include <cstdio>

#include "harness/experiment.hh"

int main() {
  using namespace avr;
  ExperimentRunner r;
  // Warm the AVR points concurrently; printing below is then pure cache lookup.
  r.run_all(workload_names(), {Design::kAvr});
  std::printf("Fig. 15: AVR LLC evictions of approximate cachelines (%%)\n");
  std::printf("%-10s %10s %10s %12s %10s\n", "workload", "recompr", "lazy",
              "fetch+rec", "uncomp");
  for (const auto& w : workload_names()) {
    const auto& d = r.run(w, Design::kAvr).m.detail;
    const auto get = [&](const char* k) {
      auto it = d.find(k);
      return it == d.end() ? 0.0 : static_cast<double>(it->second);
    };
    const double rec = get("evict_recompress");
    const double lazy = get("evict_lazy_wb");
    const double fetch = get("evict_fetch_recompress");
    const double uncomp = get("evict_uncompressed_wb");
    const double total = rec + lazy + fetch + uncomp;
    if (total == 0) {
      std::printf("%-10s (no approximate evictions)\n", w.c_str());
      continue;
    }
    std::printf("%-10s %9.1f%% %9.1f%% %11.1f%% %9.1f%%\n", w.c_str(),
                100 * rec / total, 100 * lazy / total, 100 * fetch / total,
                100 * uncomp / total);
  }
  std::printf("\npaper: kmeans/bscholes ~40%% fetch+recompress, rest uncompressed;"
              " other apps 45-80%% lazy writebacks\n");
  return 0;
}
