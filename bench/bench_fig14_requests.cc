// Figure 14: breakdown of AVR LLC requests on approximate cachelines:
// Miss / Uncompressed Hit / DBUF Hit / Compressed Hit.
#include <cstdio>

#include "harness/experiment.hh"

int main() {
  using namespace avr;
  ExperimentRunner r;
  // Warm the AVR points concurrently; printing below is then pure cache lookup.
  r.run_all(workload_names(), {Design::kAvr});
  std::printf("Fig. 14: AVR LLC requests on approximate cachelines (%%)\n");
  std::printf("%-10s %9s %9s %9s %9s\n", "workload", "miss", "uncomp", "dbuf",
              "compr");
  for (const auto& w : workload_names()) {
    const auto& d = r.run(w, Design::kAvr).m.detail;
    const auto get = [&](const char* k) {
      auto it = d.find(k);
      return it == d.end() ? 0.0 : static_cast<double>(it->second);
    };
    const double miss = get("req_miss");
    const double ucl = get("req_hit_ucl");
    const double dbuf = get("req_hit_dbuf");
    const double comp = get("req_hit_compressed");
    const double total = miss + ucl + dbuf + comp;
    if (total == 0) {
      std::printf("%-10s (no approximate requests)\n", w.c_str());
      continue;
    }
    std::printf("%-10s %8.1f%% %8.1f%% %8.1f%% %8.1f%%\n", w.c_str(),
                100 * miss / total, 100 * ucl / total, 100 * dbuf / total,
                100 * comp / total);
  }
  std::printf("\npaper: 40-80%% of requests hit the DBUF or compressed blocks;"
              " kmeans ~55%% compressed + ~20%% DBUF\n");
  return 0;
}
