// Sec. 4.2: AVR hardware overheads, computed from the implemented structure
// geometry (not simulated): CMT + TLB bits per page, LLC tag/BPA overhead.
#include <cstdio>

#include "avr/avr_llc.hh"
#include "avr/cmt.hh"
#include "common/config.hh"

int main() {
  using namespace avr;

  // CMT: four 23-bit entries per 4 kB page, plus 1 approx bit in the TLB.
  const unsigned cmt_bits = 4 * 23 + 1;
  std::printf("Sec 4.2: AVR hardware overhead\n");
  std::printf("CMT+TLB bits per page: %u (paper: 93)\n", cmt_bits);
  std::printf("vs unmodified TLB entry (52+36 bits): %.2fx overhead (paper: ~2x)\n",
              static_cast<double>(cmt_bits) / (52 + 36));

  // LLC: extra bits per 64 B data entry (tag-array block fields + BPA).
  SimConfig cfg;  // paper geometry: 8 MB, 16-way
  const uint64_t entries = cfg.llc.size_bytes / kCachelineBytes;
  const unsigned extra_bits = AvrLlc::kBpaExtraBitsPerEntry;
  const double extra_kb = entries * extra_bits / 8.0 / 1024.0;
  std::printf("LLC extra bits per entry: %u -> %.0f kB on 8 MB LLC (%.1f%%)"
              " (paper: 18 bits, 144 kB, 3.2%%)\n",
              extra_bits, extra_kb,
              100.0 * extra_kb * 1024.0 / cfg.llc.size_bytes);

  // CMT entry encoding sanity: fields round-trip through 23 bits.
  BlockMeta m;
  m.method = Method::kDownsample2D;
  m.size_lines = 5;
  m.lazy_count = 7;
  m.bias = -42;
  m.failed = 3;
  m.skipped = 2;
  const bool ok = BlockMeta::unpack(m.pack()) == m && (m.pack() >> 23) == 0;
  std::printf("CMT 23-bit encoding round-trip: %s\n", ok ? "ok" : "FAILED");
  return ok ? 0 : 1;
}
