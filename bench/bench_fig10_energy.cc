// Figure 10: system energy, normalized to baseline, with the paper's
// five-way component breakdown.
#include <cstdio>

#include "harness/experiment.hh"

int main() {
  using namespace avr;
  ExperimentRunner r;
  const auto wls = workload_names();
  // Warm every point concurrently; printing below is then pure cache lookup.
  r.run_all(wls, ExperimentRunner::paper_designs());
  print_normalized_table(r, "Fig. 10: Total energy", wls,
                         ExperimentRunner::paper_designs(),
                         [](const RunMetrics& m) { return m.energy.total(); });

  std::printf("\n-- component breakdown (fraction of each design's total) --\n");
  for (const auto& w : wls) {
    std::printf("%s\n", w.c_str());
    std::printf("  %-10s %8s %8s %8s %8s %8s\n", "design", "core", "l1+l2", "llc",
                "dram", "comp");
    for (Design d : ExperimentRunner::paper_designs()) {
      const EnergyBreakdown& e = r.run(w, d).m.energy;
      const double t = e.total();
      std::printf("  %-10s %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n", to_string(d),
                  100 * e.core / t, 100 * e.l1l2 / t, 100 * e.llc / t,
                  100 * e.dram / t, 100 * e.compressor / t);
    }
  }
  std::printf("\npaper AVR energy (norm.): heat 0.82, lattice 0.77, kmeans 0.98,"
              " orbit 0.92\n");
  return 0;
}
