// Table 3: application output error per design (dganger / truncate / AVR),
// measured as the mean relative error of each output value vs the exact run.
#include <cstdio>

#include "harness/experiment.hh"

int main() {
  using namespace avr;
  ExperimentRunner r;
  const auto wls = workload_names();
  // Warm every point concurrently; printing below is then pure cache lookup.
  r.run_all(wls, {Design::kDoppelganger, Design::kTruncate, Design::kAvr});
  std::printf("Table 3: Application output error (%%)\n");
  std::printf("%-10s", "design");
  for (const auto& w : wls) std::printf(" %9s", w.c_str());
  std::printf("\n");
  for (Design d : {Design::kDoppelganger, Design::kTruncate, Design::kAvr}) {
    std::printf("%-10s", to_string(d));
    for (const auto& w : wls) {
      const double e = 100.0 * r.run(w, d).m.output_error;
      if (e < 0.05)
        std::printf(" %9s", "<0.05");
      else if (e > 100.0)
        std::printf(" %9s", ">100");
      else
        std::printf(" %8.1f%%", e);
    }
    std::printf("\n");
  }
  std::printf("\npaper     heat=0.7 lattice=0.6 lbm=0.1 orbit<0.05 kmeans=1.2 "
              "bscholes=0.5 wrf=8.9  (AVR row)\n");
  return 0;
}
