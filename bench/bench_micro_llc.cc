// Micro-benchmarks of the decoupled AVR LLC model vs a conventional
// set-associative cache model (simulator throughput, not hardware latency).
#include <benchmark/benchmark.h>

#include "avr/avr_llc.hh"
#include "cache/set_assoc_cache.hh"
#include "common/prng.hh"

namespace {

using namespace avr;

void BM_ConventionalLookup(benchmark::State& state) {
  SetAssocCache c("bench", 1 << 20, 16);
  Xoshiro256 rng(1);
  for (int i = 0; i < 8192; ++i) {
    const uint64_t line = rng.below(1 << 14) * 64;
    if (!c.probe(line)) c.fill(line, false);
  }
  Xoshiro256 addr(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.access(addr.below(1 << 14) * 64, false));
  }
}
BENCHMARK(BM_ConventionalLookup);

void BM_AvrUclLookup(benchmark::State& state) {
  AvrLlc llc(CacheConfig{1 << 20, 16, 15});
  Xoshiro256 rng(1);
  std::vector<LlcVictim> v;
  for (int i = 0; i < 8192; ++i) {
    const uint64_t line = rng.below(1 << 14) * 64;
    if (!llc.ucl_present(line)) llc.ucl_insert(line, false, v);
    v.clear();
  }
  Xoshiro256 addr(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(llc.ucl_access(addr.below(1 << 14) * 64, false));
  }
}
BENCHMARK(BM_AvrUclLookup);

void BM_AvrCmsInsertRemove(benchmark::State& state) {
  AvrLlc llc(CacheConfig{1 << 20, 16, 15});
  std::vector<LlcVictim> v;
  uint64_t block = 0;
  for (auto _ : state) {
    llc.cms_insert(block * kBlockBytes, 4, false, v);
    llc.cms_remove(block * kBlockBytes);
    v.clear();
    block = (block + 1) & 1023;
  }
}
BENCHMARK(BM_AvrCmsInsertRemove);

void BM_AvrUclInsertEvict(benchmark::State& state) {
  AvrLlc llc(CacheConfig{64 * 1024, 8, 15});
  Xoshiro256 rng(7);
  std::vector<LlcVictim> v;
  for (auto _ : state) {
    const uint64_t line = rng.below(1 << 16) * 64;
    if (!llc.ucl_present(line)) llc.ucl_insert(line, false, v);
    v.clear();
  }
}
BENCHMARK(BM_AvrUclInsertEvict);

}  // namespace

BENCHMARK_MAIN();
