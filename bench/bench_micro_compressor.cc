// Micro-benchmarks of the compressor/decompressor datapath (the functional
// model of the 49-cycle / 12-cycle pipelines of Sec. 3.3), plus per-kernel
// SIMD-vs-scalar comparisons of the dispatched batch kernels
// (common/simd.hh): the BM_Kernel* benches take the dispatch level as their
// argument (0 = scalar, 1 = sse4, 2 = avx2), so one run shows each
// kernel's vector speedup next to its scalar reference.
#include <benchmark/benchmark.h>

#include <array>
#include <cmath>

#include "avr/bias.hh"
#include "avr/compressor.hh"
#include "avr/downsample.hh"
#include "common/prng.hh"
#include "common/simd.hh"

namespace {

using namespace avr;

std::array<float, kValuesPerBlock> make_block(int kind) {
  std::array<float, kValuesPerBlock> b;
  Xoshiro256 rng(kind + 1);
  switch (kind) {
    case 0:  // smooth: best case, no outliers
      for (uint32_t r = 0; r < 16; ++r)
        for (uint32_t c = 0; c < 16; ++c)
          b[r * 16 + c] = 50.0f + 0.2f * r + 0.1f * c;
      break;
    case 1:  // a few outliers (compresses with an outlier line)
      for (uint32_t i = 0; i < 256; ++i) b[i] = 50.0f + 0.05f * i;
      // Sparse x1.5 spikes: each becomes an outlier but shifts its
      // sub-block average by only ~3%, below T1 for the neighbours.
      for (uint32_t i = 7; i < 256; i += 64) b[i] *= 1.5f;
      break;
    default:  // incompressible
      for (auto& v : b) v = static_cast<float>(rng.uniform(-1e6, 1e6));
  }
  return b;
}

void BM_Compress(benchmark::State& state) {
  // Persistent scratch, exactly how AvrSystem drives the pipeline: the
  // buffers stay cache-resident across compression events.
  Compressor comp(AvrConfig{});
  CompressorScratch scratch;
  const auto block = make_block(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto att = comp.compress(block, DType::kFloat32, scratch);
    benchmark::DoNotOptimize(att);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kBlockBytes);
}
BENCHMARK(BM_Compress)->Arg(0)->Arg(1)->Arg(2);

void BM_CompressColdScratch(benchmark::State& state) {
  // The convenience overload: a fresh stack scratch per call (one-off
  // library users); the delta against BM_Compress is the scratch setup.
  Compressor comp(AvrConfig{});
  const auto block = make_block(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto att = comp.compress(block);
    benchmark::DoNotOptimize(att);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kBlockBytes);
}
BENCHMARK(BM_CompressColdScratch)->Arg(0);

void BM_CompressFixed32(benchmark::State& state) {
  // DType::kFixed32 datapath: raw Q16.16 images, no bias stage, the
  // relative-error scan instead of the mantissa scan.
  Compressor comp(AvrConfig{});
  CompressorScratch scratch;
  std::array<float, kValuesPerBlock> block;
  for (uint32_t i = 0; i < kValuesPerBlock; ++i) {
    const Fixed32 f =
        Fixed32::from_float(100.0f + 0.05f * static_cast<float>(i % 64));
    block[i] = std::bit_cast<float>(f.raw());
  }
  for (auto _ : state) {
    auto att = comp.compress(block, DType::kFixed32, scratch);
    benchmark::DoNotOptimize(att);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kBlockBytes);
}
BENCHMARK(BM_CompressFixed32);

void BM_Reconstruct(benchmark::State& state) {
  Compressor comp(AvrConfig{});
  const auto block = make_block(static_cast<int>(state.range(0)));
  auto att = comp.compress(block);
  if (!att) {
    state.SkipWithError("block did not compress");
    return;
  }
  std::array<float, kValuesPerBlock> out;
  for (auto _ : state) {
    comp.reconstruct(att->block, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kBlockBytes);
}
BENCHMARK(BM_Reconstruct)->Arg(0)->Arg(1);

void BM_OutlierCheck(benchmark::State& state) {
  Compressor comp(AvrConfig{});
  for (auto _ : state) {
    bool o = comp.value_is_outlier(1.234f, 1.235f);
    benchmark::DoNotOptimize(o);
  }
}
BENCHMARK(BM_OutlierCheck);

// ---- per-kernel SIMD-vs-scalar benches ------------------------------------
// Each runs one dispatched batch kernel over a 256-value block with the
// dispatch pinned to the level in range(0); unsupported levels skip. All
// levels are bit-identical (test_simd_kernels), so the rows differ only in
// time.

/// Pins the dispatch level for one benchmark run, restoring it afterwards
/// so the end-to-end benches above keep measuring the default level.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(benchmark::State& state)
      : prev_(simd_level()),
        ok_(simd_set_level(static_cast<SimdLevel>(state.range(0)))) {
    if (!ok_) state.SkipWithError("simd level unsupported on this cpu/build");
  }
  ~ScopedSimdLevel() { simd_set_level(prev_); }
  bool ok() const { return ok_; }

 private:
  SimdLevel prev_;
  bool ok_;
};

void BM_KernelConvert(benchmark::State& state) {
  ScopedSimdLevel pin(state);
  if (!pin.ok()) return;
  const auto block = make_block(0);
  std::array<Fixed32, kValuesPerBlock> out;
  for (auto _ : state) {
    fixed32_from_f32_batch(block, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kBlockBytes);
}
BENCHMARK(BM_KernelConvert)->DenseRange(0, 2);

void BM_KernelBias(benchmark::State& state) {
  ScopedSimdLevel pin(state);
  if (!pin.ok()) return;
  const auto block = make_block(0);
  std::array<float, kValuesPerBlock> out;
  for (auto _ : state) {
    bias_block(block, out, 10);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kBlockBytes);
}
BENCHMARK(BM_KernelBias)->DenseRange(0, 2);

void BM_KernelSummarize1D(benchmark::State& state) {
  ScopedSimdLevel pin(state);
  if (!pin.ok()) return;
  const auto block = make_block(0);
  std::array<Fixed32, kValuesPerBlock> fixed;
  fixed32_from_f32_batch(block, fixed);
  for (auto _ : state) {
    auto avg = downsample::compress_1d(fixed);
    benchmark::DoNotOptimize(avg);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kBlockBytes);
}
BENCHMARK(BM_KernelSummarize1D)->DenseRange(0, 2);

void BM_KernelSummarize2D(benchmark::State& state) {
  ScopedSimdLevel pin(state);
  if (!pin.ok()) return;
  const auto block = make_block(0);
  std::array<Fixed32, kValuesPerBlock> fixed;
  fixed32_from_f32_batch(block, fixed);
  for (auto _ : state) {
    auto avg = downsample::compress_2d(fixed);
    benchmark::DoNotOptimize(avg);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kBlockBytes);
}
BENCHMARK(BM_KernelSummarize2D)->DenseRange(0, 2);

void BM_KernelReconstruct1D(benchmark::State& state) {
  ScopedSimdLevel pin(state);
  if (!pin.ok()) return;
  const auto block = make_block(0);
  std::array<Fixed32, kValuesPerBlock> fixed, recon;
  fixed32_from_f32_batch(block, fixed);
  const auto avg = downsample::compress_1d(fixed);
  for (auto _ : state) {
    downsample::reconstruct_1d(avg, recon);
    benchmark::DoNotOptimize(recon);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kBlockBytes);
}
BENCHMARK(BM_KernelReconstruct1D)->DenseRange(0, 2);

void BM_KernelReconstruct2D(benchmark::State& state) {
  ScopedSimdLevel pin(state);
  if (!pin.ok()) return;
  const auto block = make_block(0);
  std::array<Fixed32, kValuesPerBlock> fixed, recon;
  fixed32_from_f32_batch(block, fixed);
  const auto avg = downsample::compress_2d(fixed);
  for (auto _ : state) {
    downsample::reconstruct_2d(avg, recon);
    benchmark::DoNotOptimize(recon);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kBlockBytes);
}
BENCHMARK(BM_KernelReconstruct2D)->DenseRange(0, 2);

void BM_KernelErrorScan(benchmark::State& state) {
  ScopedSimdLevel pin(state);
  if (!pin.ok()) return;
  // The sparse-spike block: mostly fast-path groups plus a few outlier
  // groups taking the per-group scalar fallback, like real traffic.
  const auto block = make_block(1);
  std::array<float, kValuesPerBlock> biased;
  std::array<Fixed32, kValuesPerBlock> fixed, recon;
  const int8_t bias = choose_bias(block);
  bias_block(block, biased, bias);
  fixed32_from_f32_batch(biased, fixed);
  downsample::reconstruct_1d(downsample::compress_1d(fixed), recon);
  const uint32_t limit = 1u << (kMantissaBits - AvrConfig{}.t1_mantissa_msbit);
  Bitmap256 map;
  std::array<uint32_t, kMaxBlockOutliers> bits;
  for (auto _ : state) {
    simd::ErrorScanState st;
    st.bitmap_words = map.words().data();
    st.outlier_bits = bits.data();
    st.max_outliers = kMaxBlockOutliers;
    bool ok = simd::kernels().error_scan_f32(
        block.data(), reinterpret_cast<const int32_t*>(recon.data()),
        kValuesPerBlock, bias, limit, &st);
    benchmark::DoNotOptimize(ok);
    benchmark::DoNotOptimize(st);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kBlockBytes);
}
BENCHMARK(BM_KernelErrorScan)->DenseRange(0, 2);

void BM_KernelTruncate(benchmark::State& state) {
  ScopedSimdLevel pin(state);
  if (!pin.ok()) return;
  auto block = make_block(0);  // truncation is idempotent: in-place reuse
  for (auto _ : state) {
    f32_truncate_low_bits_batch(block, 16);
    benchmark::DoNotOptimize(block);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kBlockBytes);
}
BENCHMARK(BM_KernelTruncate)->DenseRange(0, 2);

void BM_KernelCrc32c(benchmark::State& state) {
  // The v5 result-cache checksum over a typical encoded record (~300 bytes):
  // the hardware levels use the crc32 instruction 8 bytes per cycle, the
  // scalar level a 256-entry table.
  ScopedSimdLevel pin(state);
  if (!pin.ok()) return;
  std::array<uint8_t, 320> buf;
  for (size_t i = 0; i < buf.size(); ++i)
    buf[i] = static_cast<uint8_t>(i * 131 + 17);
  for (auto _ : state) {
    uint32_t crc =
        ~simd::kernels().crc32c_update(0xFFFFFFFFu, buf.data(), buf.size());
    benchmark::DoNotOptimize(crc);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(buf.size()));
}
BENCHMARK(BM_KernelCrc32c)->DenseRange(0, 2);

}  // namespace

BENCHMARK_MAIN();
