// Micro-benchmarks of the compressor/decompressor datapath (the functional
// model of the 49-cycle / 12-cycle pipelines of Sec. 3.3).
#include <benchmark/benchmark.h>

#include <array>
#include <cmath>

#include "avr/compressor.hh"
#include "common/prng.hh"

namespace {

using namespace avr;

std::array<float, kValuesPerBlock> make_block(int kind) {
  std::array<float, kValuesPerBlock> b;
  Xoshiro256 rng(kind + 1);
  switch (kind) {
    case 0:  // smooth: best case, no outliers
      for (uint32_t r = 0; r < 16; ++r)
        for (uint32_t c = 0; c < 16; ++c)
          b[r * 16 + c] = 50.0f + 0.2f * r + 0.1f * c;
      break;
    case 1:  // a few outliers (compresses with an outlier line)
      for (uint32_t i = 0; i < 256; ++i) b[i] = 50.0f + 0.05f * i;
      // Sparse x1.5 spikes: each becomes an outlier but shifts its
      // sub-block average by only ~3%, below T1 for the neighbours.
      for (uint32_t i = 7; i < 256; i += 64) b[i] *= 1.5f;
      break;
    default:  // incompressible
      for (auto& v : b) v = static_cast<float>(rng.uniform(-1e6, 1e6));
  }
  return b;
}

void BM_Compress(benchmark::State& state) {
  // Persistent scratch, exactly how AvrSystem drives the pipeline: the
  // buffers stay cache-resident across compression events.
  Compressor comp(AvrConfig{});
  CompressorScratch scratch;
  const auto block = make_block(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto att = comp.compress(block, DType::kFloat32, scratch);
    benchmark::DoNotOptimize(att);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kBlockBytes);
}
BENCHMARK(BM_Compress)->Arg(0)->Arg(1)->Arg(2);

void BM_CompressColdScratch(benchmark::State& state) {
  // The convenience overload: a fresh stack scratch per call (one-off
  // library users); the delta against BM_Compress is the scratch setup.
  Compressor comp(AvrConfig{});
  const auto block = make_block(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto att = comp.compress(block);
    benchmark::DoNotOptimize(att);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kBlockBytes);
}
BENCHMARK(BM_CompressColdScratch)->Arg(0);

void BM_CompressFixed32(benchmark::State& state) {
  // DType::kFixed32 datapath: raw Q16.16 images, no bias stage, the
  // relative-error scan instead of the mantissa scan.
  Compressor comp(AvrConfig{});
  CompressorScratch scratch;
  std::array<float, kValuesPerBlock> block;
  for (uint32_t i = 0; i < kValuesPerBlock; ++i) {
    const Fixed32 f =
        Fixed32::from_float(100.0f + 0.05f * static_cast<float>(i % 64));
    block[i] = std::bit_cast<float>(f.raw());
  }
  for (auto _ : state) {
    auto att = comp.compress(block, DType::kFixed32, scratch);
    benchmark::DoNotOptimize(att);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kBlockBytes);
}
BENCHMARK(BM_CompressFixed32);

void BM_Reconstruct(benchmark::State& state) {
  Compressor comp(AvrConfig{});
  const auto block = make_block(static_cast<int>(state.range(0)));
  auto att = comp.compress(block);
  if (!att) {
    state.SkipWithError("block did not compress");
    return;
  }
  std::array<float, kValuesPerBlock> out;
  for (auto _ : state) {
    comp.reconstruct(att->block, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kBlockBytes);
}
BENCHMARK(BM_Reconstruct)->Arg(0)->Arg(1);

void BM_OutlierCheck(benchmark::State& state) {
  Compressor comp(AvrConfig{});
  for (auto _ : state) {
    bool o = comp.value_is_outlier(1.234f, 1.235f);
    benchmark::DoNotOptimize(o);
  }
}
BENCHMARK(BM_OutlierCheck);

}  // namespace

BENCHMARK_MAIN();
