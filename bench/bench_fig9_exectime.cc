// Figure 9: total execution time, normalized to baseline.
#include "harness/experiment.hh"

int main() {
  using namespace avr;
  ExperimentRunner r;
  // Warm every point concurrently; printing below is then pure cache lookup.
  r.run_all(workload_names(), ExperimentRunner::paper_designs());
  print_normalized_table(r, "Fig. 9: Execution time", workload_names(),
                         {Design::kDoppelganger, Design::kTruncate,
                          Design::kZeroAvr, Design::kAvr},
                         [](const RunMetrics& m) { return double(m.cycles); });
  std::printf("\npaper AVR row: heat 0.57, lattice 0.49, lbm 0.43, orbit 0.79,"
              " kmeans ~0.85, bscholes ~1.0, wrf 0.98\n");
  return 0;
}
