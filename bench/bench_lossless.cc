// BDI lossless kernel microbenchmarks plus the stacked-ratio analysis
// table (DESIGN.md §8: lossless BDI on top of / beside AVR).
//
// Default mode runs the Google Benchmark kernels — the per-line encoder on
// each encoding class, the whole-block size model, and the compressor's
// BDI-hybrid fallback stage — so CI's microbench comparison sees BDI kernel
// regressions. `bench_lossless --table` prints the original analysis table
// instead:
//   (a) BDI ratio on each workload's raw approximable data (what a lossless
//       memory link like MemZip would achieve alone), and
//   (b) BDI ratio on AVR compressed-block images (summary lines + outliers),
//       i.e. the additional stacking headroom.
#include <benchmark/benchmark.h>

#include <array>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "avr/compressor.hh"
#include "lossless/bdi.hh"
#include "runtime/system.hh"
#include "workloads/workload_registry.hh"

namespace {

using namespace avr;

// ---- kernel benchmarks -----------------------------------------------------

/// One 64 B line exercising a specific BDI encoding class. The fill values
/// are chosen so encode_line() must scan every candidate it would for real
/// data of that class (e.g. the b8d2 line fails b8d1 and b4d1/2 first).
std::array<std::byte, kCachelineBytes> line_for(lossless::BdiEncoding e) {
  std::array<std::byte, kCachelineBytes> line{};
  auto put64 = [&line](uint32_t i, uint64_t v) {
    std::memcpy(line.data() + i * 8, &v, 8);
  };
  auto put32 = [&line](uint32_t i, uint32_t v) {
    std::memcpy(line.data() + i * 4, &v, 4);
  };
  switch (e) {
    case lossless::BdiEncoding::kZeros:
      break;
    case lossless::BdiEncoding::kRepeated:
      for (uint32_t i = 0; i < 8; ++i) put64(i, 0x0123456789abcdefull);
      break;
    case lossless::BdiEncoding::kBase8Delta1:
      for (uint32_t i = 0; i < 8; ++i) put64(i, 0x1122334455667700ull + i);
      break;
    case lossless::BdiEncoding::kBase8Delta2:
      for (uint32_t i = 0; i < 8; ++i) put64(i, 0x1122334455660000ull + i * 300);
      break;
    case lossless::BdiEncoding::kBase4Delta1:
      for (uint32_t i = 0; i < 16; ++i) put32(i, 0x40000000u + i);
      break;
    default:  // uncompressed: a different high byte in every 4 B word
      for (uint32_t i = 0; i < 16; ++i) put32(i, 0x01010101u * (i + 1) + (i << 28));
      break;
  }
  return line;
}

void BM_BdiEncodeLine(benchmark::State& state,
                      lossless::BdiEncoding e) {
  const auto line = line_for(e);
  for (auto _ : state) {
    auto r = lossless::encode_line(
        std::span<const std::byte, kCachelineBytes>(line));
    benchmark::DoNotOptimize(r);
  }
}

/// The whole-block size model the compressor's fallback stage runs: 16
/// per-line encodes over 1 KB of mixed-class data.
void BM_BdiEncodedBytesBlock(benchmark::State& state) {
  std::array<std::byte, kBlockBytes> block{};
  for (uint32_t l = 0; l < kBlockLines; ++l) {
    const auto line = line_for(static_cast<lossless::BdiEncoding>(l % 6));
    std::memcpy(block.data() + l * kCachelineBytes, line.data(), kCachelineBytes);
  }
  for (auto _ : state) {
    auto b = lossless::encoded_bytes(block);
    benchmark::DoNotOptimize(b);
  }
}

/// The full BDI-hybrid fallback path: every lossy variant fails on this
/// block (alternating distant values make nearly every value an outlier),
/// then the raw bit image BDI-encodes as 16 repeated-value lines.
void BM_CompressorBdiFallback(benchmark::State& state) {
  AvrConfig cfg;
  cfg.enable_bdi_hybrid = true;
  const Compressor comp(cfg);
  std::array<float, kValuesPerBlock> vals;
  for (uint32_t i = 0; i < kValuesPerBlock; ++i)
    vals[i] = (i % 2) ? 1.0e10f : 1.0f;
  CompressorScratch scratch;
  for (auto _ : state) {
    auto att = comp.compress(vals, DType::kFloat32, scratch);
    benchmark::DoNotOptimize(att);
  }
}

// ---- the stacked-ratio analysis table (--table) ----------------------------

int print_table() {
  std::printf("Lossless BDI stacked on AVR (extension; not a paper figure)\n");
  std::printf("%-10s %16s %18s %16s\n", "workload", "BDI on raw",
              "AVR ratio", "BDI on AVR image");

  Compressor comp(AvrConfig{});
  for (const auto& name : workload_names()) {
    auto wl = make_workload(name);
    System sys(Design::kBaseline, SimConfig{}, 1, /*timing=*/false);
    wl->run(sys);

    uint64_t raw_bytes = 0, bdi_raw = 0;
    uint64_t avr_lines = 0, total_blocks = 0;
    uint64_t image_bytes = 0, bdi_image = 0;

    for (const auto& region : sys.regions().regions()) {
      if (!region.approx) continue;
      const std::span<const std::byte> data(region.host.get(), region.bytes);
      raw_bytes += region.bytes;
      bdi_raw += lossless::encoded_bytes(data);

      // Compress each block with AVR; serialize a faithful image of the
      // summary (fixed-point words) + bitmap + outliers and BDI it.
      for (uint64_t off = 0; off + kBlockBytes <= region.bytes; off += kBlockBytes) {
        std::span<const float, kValuesPerBlock> vals(
            reinterpret_cast<const float*>(region.host.get() + off), kValuesPerBlock);
        ++total_blocks;
        auto att = comp.compress(vals);
        if (!att) {
          avr_lines += kBlockLines;
          continue;
        }
        avr_lines += att->block.lines();
        std::vector<std::byte> image(att->block.lines() * kCachelineBytes,
                                     std::byte{0});
        std::memcpy(image.data(), att->block.summary.data(), 64);
        if (!att->block.outliers.empty()) {
          std::memcpy(image.data() + 64, att->block.outlier_map.words().data(), 32);
          std::memcpy(image.data() + 96, att->block.outliers.data(),
                      att->block.outliers.size() * 4);
        }
        image_bytes += image.size();
        bdi_image += lossless::encoded_bytes(image);
      }
    }

    const double bdi_ratio = bdi_raw ? double(raw_bytes) / bdi_raw : 1.0;
    const double avr_ratio =
        avr_lines ? double(total_blocks * kBlockLines) / avr_lines : 1.0;
    const double stack = bdi_image ? double(image_bytes) / bdi_image : 1.0;
    std::printf("%-10s %15.2fx %17.1fx %15.2fx\n", name.c_str(), bdi_ratio,
                avr_ratio, stack);
  }
  std::printf("\nReading: BDI alone reaches the 2:1-4:1 regime the paper cites "
              "for lossless\nschemes; AVR's lossy ratios are far higher, and its "
              "block images retain a\nsmall additional lossless margin.\n");
  return 0;
}

}  // namespace

BENCHMARK_CAPTURE(BM_BdiEncodeLine, zeros, lossless::BdiEncoding::kZeros);
BENCHMARK_CAPTURE(BM_BdiEncodeLine, repeated, lossless::BdiEncoding::kRepeated);
BENCHMARK_CAPTURE(BM_BdiEncodeLine, b8d1, lossless::BdiEncoding::kBase8Delta1);
BENCHMARK_CAPTURE(BM_BdiEncodeLine, b8d2, lossless::BdiEncoding::kBase8Delta2);
BENCHMARK_CAPTURE(BM_BdiEncodeLine, b4d1, lossless::BdiEncoding::kBase4Delta1);
BENCHMARK_CAPTURE(BM_BdiEncodeLine, uncompressed,
                  lossless::BdiEncoding::kUncompressed);
BENCHMARK(BM_BdiEncodedBytesBlock);
BENCHMARK(BM_CompressorBdiFallback);

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--table") return print_table();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
