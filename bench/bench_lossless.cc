// Extension experiment (DESIGN.md §8): lossless BDI on top of / beside AVR.
//
// Sec. 2 of the paper: "lossless compression is orthogonal to AVR as it can
// be used in our design to compress data that are not approximated, or even
// on top of AVR approximately compressed data". This bench quantifies that:
//   (a) BDI ratio on each workload's raw approximable data (what a lossless
//       memory link like MemZip would achieve alone), and
//   (b) BDI ratio on AVR compressed-block images (summary lines + outliers),
//       i.e. the additional stacking headroom.
#include <cstdio>
#include <cstring>
#include <vector>

#include "avr/compressor.hh"
#include "lossless/bdi.hh"
#include "runtime/system.hh"
#include "workloads/workload_registry.hh"

using namespace avr;

int main() {
  std::printf("Lossless BDI stacked on AVR (extension; not a paper figure)\n");
  std::printf("%-10s %16s %18s %16s\n", "workload", "BDI on raw",
              "AVR ratio", "BDI on AVR image");

  Compressor comp(AvrConfig{});
  for (const auto& name : workload_names()) {
    auto wl = make_workload(name);
    System sys(Design::kBaseline, SimConfig{}, 1, /*timing=*/false);
    wl->run(sys);

    uint64_t raw_bytes = 0, bdi_raw = 0;
    uint64_t avr_lines = 0, total_blocks = 0;
    uint64_t image_bytes = 0, bdi_image = 0;

    for (const auto& region : sys.regions().regions()) {
      if (!region.approx) continue;
      const std::span<const std::byte> data(region.host.get(), region.bytes);
      raw_bytes += region.bytes;
      bdi_raw += lossless::encoded_bytes(data);

      // Compress each block with AVR; serialize a faithful image of the
      // summary (fixed-point words) + bitmap + outliers and BDI it.
      for (uint64_t off = 0; off + kBlockBytes <= region.bytes; off += kBlockBytes) {
        std::span<const float, kValuesPerBlock> vals(
            reinterpret_cast<const float*>(region.host.get() + off), kValuesPerBlock);
        ++total_blocks;
        auto att = comp.compress(vals);
        if (!att) {
          avr_lines += kBlockLines;
          continue;
        }
        avr_lines += att->block.lines();
        std::vector<std::byte> image(att->block.lines() * kCachelineBytes,
                                     std::byte{0});
        std::memcpy(image.data(), att->block.summary.data(), 64);
        if (!att->block.outliers.empty()) {
          std::memcpy(image.data() + 64, att->block.outlier_map.words().data(), 32);
          std::memcpy(image.data() + 96, att->block.outliers.data(),
                      att->block.outliers.size() * 4);
        }
        image_bytes += image.size();
        bdi_image += lossless::encoded_bytes(image);
      }
    }

    const double bdi_ratio = bdi_raw ? double(raw_bytes) / bdi_raw : 1.0;
    const double avr_ratio =
        avr_lines ? double(total_blocks * kBlockLines) / avr_lines : 1.0;
    const double stack = bdi_image ? double(image_bytes) / bdi_image : 1.0;
    std::printf("%-10s %15.2fx %17.1fx %15.2fx\n", name.c_str(), bdi_ratio,
                avr_ratio, stack);
  }
  std::printf("\nReading: BDI alone reaches the 2:1-4:1 regime the paper cites "
              "for lossless\nschemes; AVR's lossy ratios are far higher, and its "
              "block images retain a\nsmall additional lossless margin.\n");
  return 0;
}
