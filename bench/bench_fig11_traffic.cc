// Figure 11: DRAM traffic normalized to baseline, split into approximate and
// non-approximate bytes.
#include <cstdio>

#include "harness/experiment.hh"

int main() {
  using namespace avr;
  ExperimentRunner r;
  const auto wls = workload_names();
  // Warm every point concurrently; printing below is then pure cache lookup.
  r.run_all(wls, ExperimentRunner::paper_designs());
  print_normalized_table(r, "Fig. 11: Memory traffic", wls,
                         ExperimentRunner::paper_designs(),
                         [](const RunMetrics& m) { return double(m.dram_bytes); });

  std::printf("\n-- approx / non-approx split (bytes, AVR) --\n");
  std::printf("%-10s %14s %14s %14s\n", "workload", "approx", "other", "metadata");
  for (const auto& w : wls) {
    const RunMetrics& m = r.run(w, Design::kAvr).m;
    std::printf("%-10s %14llu %14llu %14llu\n", w.c_str(),
                static_cast<unsigned long long>(m.dram_bytes_approx),
                static_cast<unsigned long long>(m.dram_bytes_other),
                static_cast<unsigned long long>(m.metadata_bytes));
  }
  std::printf("\npaper AVR traffic (norm.): heat 0.29, lattice 0.49, lbm 0.33,"
              " orbit 0.52, kmeans 0.63, bscholes 0.94, wrf 0.97\n");
  return 0;
}
