// Figure 11: DRAM traffic normalized to baseline, split into approximate and
// non-approximate bytes. A trailing section reports the extension design
// point (AVR with the lossless BDI-hybrid fallback, `--methods avr+bdi`).
#include <cstdio>

#include "harness/experiment.hh"
#include "harness/sweep.hh"

int main() {
  using namespace avr;
  ExperimentRunner r;
  const auto wls = workload_names();
  // Warm every point concurrently; printing below is then pure cache lookup.
  r.run_all(wls, ExperimentRunner::paper_designs());
  print_normalized_table(r, "Fig. 11: Memory traffic", wls,
                         ExperimentRunner::paper_designs(),
                         [](const RunMetrics& m) { return double(m.dram_bytes); });

  std::printf("\n-- approx / non-approx split (bytes, AVR) --\n");
  std::printf("%-10s %14s %14s %14s\n", "workload", "approx", "other", "metadata");
  for (const auto& w : wls) {
    const RunMetrics& m = r.run(w, Design::kAvr).m;
    std::printf("%-10s %14llu %14llu %14llu\n", w.c_str(),
                static_cast<unsigned long long>(m.dram_bytes_approx),
                static_cast<unsigned long long>(m.dram_bytes_other),
                static_cast<unsigned long long>(m.metadata_bytes));
  }
  std::printf("\npaper AVR traffic (norm.): heat 0.29, lattice 0.49, lbm 0.33,"
              " orbit 0.52, kmeans 0.63, bscholes 0.94, wrf 0.97\n");

  // Extension design point: AVR with the BDI-hybrid fallback tier, traffic
  // normalized to the same (default-config) baseline as the table above.
  ExperimentRunner rb(sweep::variant_config(
      -1, sweep::kMethods1D | sweep::kMethods2D | sweep::kMethodsBdi));
  rb.run_all(wls, {Design::kAvr});
  std::printf("\n-- AVR + BDI-hybrid fallback (--methods avr+bdi), norm. traffic --\n");
  std::printf("%-10s %10s %10s\n", "workload", "AVR", "AVR+bdi");
  for (const auto& w : wls) {
    const double base = double(r.run(w, Design::kBaseline).m.dram_bytes);
    std::printf("%-10s %10.3f %10.3f\n", w.c_str(),
                double(r.run(w, Design::kAvr).m.dram_bytes) / base,
                double(rb.run(w, Design::kAvr).m.dram_bytes) / base);
  }
  return 0;
}
