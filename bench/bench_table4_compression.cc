// Table 4: AVR compression ratio and total memory footprint relative to the
// baseline. Footprint here follows the paper's definition: compressed bytes
// of approximable data plus exact bytes of everything else, over the
// uncompressed total.
#include <cstdio>

#include "harness/experiment.hh"

int main() {
  using namespace avr;
  ExperimentRunner r;
  const auto wls = workload_names();
  // Warm the AVR points concurrently; printing below is then pure cache lookup.
  r.run_all(wls, {Design::kAvr});
  std::printf("Table 4: AVR compression ratio and footprint\n");
  std::printf("%-14s", "metric");
  for (const auto& w : wls) std::printf(" %9s", w.c_str());
  std::printf("\n");

  std::printf("%-14s", "compr. ratio");
  for (const auto& w : wls)
    std::printf(" %8.1fx", r.run(w, Design::kAvr).m.compression_ratio);
  std::printf("\n");

  std::printf("%-14s", "mem footprint");
  for (const auto& w : wls) {
    const RunMetrics& m = r.run(w, Design::kAvr).m;
    const double approx = static_cast<double>(m.approx_bytes);
    const double exact = static_cast<double>(m.footprint_bytes) - approx;
    const double ratio = m.compression_ratio > 0 ? m.compression_ratio : 1.0;
    const double frac = (exact + approx / ratio) / (exact + approx);
    std::printf(" %8.1f%%", 100.0 * frac);
  }
  std::printf("\n");

  std::printf("\npaper ratio    10.5x 9.6x 15.6x 16.0x 2.3x 4.7x 3.4x\n");
  std::printf("paper footprint 12.6%% 20.0%% 7.9%% 54.1%% 58.5%% 78.6%% 89.6%%\n");
  return 0;
}
