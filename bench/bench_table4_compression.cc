// Table 4: AVR compression ratio and total memory footprint relative to the
// baseline. Footprint here follows the paper's definition: compressed bytes
// of approximable data plus exact bytes of everything else, over the
// uncompressed total. A trailing section reports the extension design point
// (AVR with the lossless BDI-hybrid fallback tier, `--methods avr+bdi`).
#include <cstdio>

#include "harness/experiment.hh"
#include "harness/sweep.hh"

int main() {
  using namespace avr;
  ExperimentRunner r;
  const auto wls = workload_names();
  // Warm the AVR points concurrently; printing below is then pure cache lookup.
  r.run_all(wls, {Design::kAvr});
  std::printf("Table 4: AVR compression ratio and footprint\n");
  std::printf("%-14s", "metric");
  for (const auto& w : wls) std::printf(" %9s", w.c_str());
  std::printf("\n");

  std::printf("%-14s", "compr. ratio");
  for (const auto& w : wls)
    std::printf(" %8.1fx", r.run(w, Design::kAvr).m.compression_ratio);
  std::printf("\n");

  std::printf("%-14s", "mem footprint");
  for (const auto& w : wls) {
    const RunMetrics& m = r.run(w, Design::kAvr).m;
    const double approx = static_cast<double>(m.approx_bytes);
    const double exact = static_cast<double>(m.footprint_bytes) - approx;
    const double ratio = m.compression_ratio > 0 ? m.compression_ratio : 1.0;
    const double frac = (exact + approx / ratio) / (exact + approx);
    std::printf(" %8.1f%%", 100.0 * frac);
  }
  std::printf("\n");

  std::printf("\npaper ratio    10.5x 9.6x 15.6x 16.0x 2.3x 4.7x 3.4x\n");
  std::printf("paper footprint 12.6%% 20.0%% 7.9%% 54.1%% 58.5%% 78.6%% 89.6%%\n");

  // Extension design point: same grid under `--methods avr+bdi` (the
  // lossless BDI fallback catches blocks that blow the T1/T2 outlier
  // budget). Its records share the cache file under their own config
  // fingerprint. `bdi blocks` counts compressions won by the fallback
  // tier; `uncompressed` counts failed compression attempts — fewer than
  // the AVR-only row means the fallback converted would-be-uncompressed
  // blocks.
  ExperimentRunner rb(sweep::variant_config(
      -1, sweep::kMethods1D | sweep::kMethods2D | sweep::kMethodsBdi));
  rb.run_all(wls, {Design::kAvr});
  std::printf("\nExtension: AVR + BDI-hybrid fallback (--methods avr+bdi)\n");
  std::printf("%-14s", "compr. ratio");
  for (const auto& w : wls)
    std::printf(" %8.1fx", rb.run(w, Design::kAvr).m.compression_ratio);
  std::printf("\n");
  std::printf("%-14s", "bdi blocks");
  for (const auto& w : wls) {
    const auto& d = rb.run(w, Design::kAvr).m.detail;
    const auto it = d.find("blocks_bdi");
    std::printf(" %9llu", static_cast<unsigned long long>(
                              it == d.end() ? 0 : it->second));
  }
  std::printf("\n");
  std::printf("%-14s", "uncompressed");
  for (const auto& w : wls) {
    const auto& d = rb.run(w, Design::kAvr).m.detail;
    const auto it = d.find("compress_failures");
    std::printf(" %9llu", static_cast<unsigned long long>(
                              it == d.end() ? 0 : it->second));
  }
  std::printf("\n");
  return 0;
}
