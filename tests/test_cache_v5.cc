// Adversarial byte-surgery wall for the v5 checksummed cache format, plus
// fsck/repair coverage: every case hand-mutates real encoded bytes the way a
// crash, a bad disk or a buggy writer would, and asserts the loader
// quarantines (or fsck reports, or repair heals) exactly that wound.
// Mirrors the test wall in test_trace_format.cc.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "harness/fsck.hh"
#include "harness/result_cache.hh"

namespace avr {
namespace {

std::string temp_path(const std::string& tag) {
  return (std::filesystem::temp_directory_path() /
          ("avr_v5_" + tag + "_" + std::to_string(::getpid()) + ".csv"))
      .string();
}

ExperimentResult sample_result(const std::string& wl, Design d, uint64_t salt) {
  ExperimentResult r;
  r.workload = wl;
  r.design = d;
  r.config_hash = config_fingerprint(SimConfig{});
  r.m.cycles = 1000 + salt;
  r.m.instructions = 5000 + salt;
  r.m.ipc = 1.0 / 3.0;
  r.m.llc_mpki = 0.1 + 1e-17;  // needs max_digits10 to round-trip
  r.m.dram_bytes = 1 << 20;
  r.m.compression_ratio = 2.6666666666666665;
  r.m.output_error = 0.0123456789012345678;
  r.m.detail["requests"] = 99 + salt;
  r.m.detail["evictions"] = 17;
  r.wall_seconds = 0.25;
  return r;
}

ClaimRecord sample_claim(const std::string& wl, Design d,
                         const std::string& owner, uint64_t claimed_at,
                         uint64_t lease = 60) {
  ClaimRecord c;
  c.workload = wl;
  c.design = d;
  c.config_hash = config_fingerprint(SimConfig{});
  c.owner = owner;
  c.claimed_at = claimed_at;
  c.lease_seconds = lease;
  return c;
}

/// The payload's byte offset within a framed v5 line (after "5,L<len>,C<crc>,").
size_t payload_offset(const std::string& line) {
  const size_t c1 = line.find(',');
  const size_t c2 = line.find(',', c1 + 1);
  const size_t c3 = line.find(',', c2 + 1);
  return c3 + 1;
}

/// Strips the v5 framing and re-tags the payload as version `v` (a v3/v4
/// line: same payload, no length or checksum).
std::string legacy_line(const std::string& v5, int v) {
  return std::to_string(v) + "," + v5.substr(payload_offset(v5));
}

/// Classification + quarantine reason for one line.
CacheLineKind classify(const std::string& line, std::string* reason = nullptr) {
  ExperimentResult r;
  ClaimRecord c;
  return classify_cache_line(line, &r, &c, reason);
}

// ---- the wall: one wound per case ------------------------------------------

TEST(CacheV5, WellFormedLineRoundTrips) {
  const ExperimentResult r = sample_result("kmeans", Design::kAvr, 1);
  const std::string line = encode_result_line(r);
  EXPECT_EQ(line.substr(0, 2), "5,");
  EXPECT_EQ(line[2], 'L');
  int version = 0;
  ExperimentResult back;
  ClaimRecord c;
  EXPECT_EQ(classify_cache_line(line, &back, &c, nullptr, &version),
            CacheLineKind::kResult);
  EXPECT_EQ(version, 5);
  EXPECT_EQ(encode_result_line(back), line);
}

TEST(CacheV5, FlippedCrcHexDigitIsQuarantined) {
  std::string line = encode_result_line(sample_result("heat", Design::kAvr, 2));
  const size_t crc_pos = line.find(",C") + 2;
  line[crc_pos] = line[crc_pos] == 'f' ? '0' : 'f';
  std::string reason;
  EXPECT_EQ(classify(line, &reason), CacheLineKind::kCorrupt);
  EXPECT_NE(reason.find("crc mismatch"), std::string::npos) << reason;
}

TEST(CacheV5, FlippedPayloadByteThatStillParsesIsCaught) {
  // The case pre-v5 caches could NOT catch: corrupt one digit of a numeric
  // field. The payload still splits and parses — only the checksum knows.
  std::string line = encode_result_line(sample_result("wrf", Design::kAvr, 3));
  const size_t pos = line.find(",1001,");  // cycles = 1000 + salt(3)... 1003
  ASSERT_EQ(pos, std::string::npos);
  const size_t cyc = line.find(",1003,");
  ASSERT_NE(cyc, std::string::npos);
  line[cyc + 1] = '9';  // 1003 -> 9003: numerically valid, wrong value
  std::string reason;
  EXPECT_EQ(classify(line, &reason), CacheLineKind::kCorrupt);
  EXPECT_NE(reason.find("crc mismatch"), std::string::npos) << reason;
  // Sanity: the same wound on a v4 line sails through undetected — the
  // motivation for v5 in one assertion.
  std::string v4 = legacy_line(encode_result_line(
      sample_result("wrf", Design::kAvr, 3)), 4);
  const size_t cyc4 = v4.find(",1003,");
  ASSERT_NE(cyc4, std::string::npos);
  v4[cyc4 + 1] = '9';
  EXPECT_EQ(classify(v4), CacheLineKind::kResult);
}

TEST(CacheV5, EveryTruncationIsRejected) {
  // A torn append can stop after any byte; no prefix may decode as valid.
  const std::string line =
      encode_result_line(sample_result("lattice", Design::kTruncate, 4));
  ExperimentResult out;
  for (size_t n = 0; n < line.size(); ++n)
    EXPECT_FALSE(decode_result_line(line.substr(0, n), &out)) << "len " << n;
  EXPECT_TRUE(decode_result_line(line, &out));
}

TEST(CacheV5, TornTailQuarantineNamesTheShortWrite) {
  std::string reason;
  const std::string line =
      encode_result_line(sample_result("heat", Design::kAvr, 5));
  EXPECT_EQ(classify(line.substr(0, line.size() - 7), &reason),
            CacheLineKind::kCorrupt);
  EXPECT_NE(reason.find("short write"), std::string::npos) << reason;
}

TEST(CacheV5, TamperedLengthFieldIsQuarantined) {
  std::string line = encode_result_line(sample_result("heat", Design::kAvr, 6));
  const size_t lpos = line.find(",L") + 2;
  line[lpos] = line[lpos] == '9' ? '8' : '9';
  std::string reason;
  EXPECT_EQ(classify(line, &reason), CacheLineKind::kCorrupt);
  EXPECT_NE(reason.find("length mismatch"), std::string::npos) << reason;
}

TEST(CacheV5, OversizedFieldsAreRejectedNotOverflowed) {
  ExperimentResult out;
  const ExperimentResult r = sample_result("heat", Design::kAvr, 7);
  // An oversized L field: 20+ pure digits overflow uint64 — a range
  // failure, never a silent wraparound to some tiny length.
  std::string line = encode_result_line(r);
  const size_t lpos = line.find(",L") + 2;
  line.insert(lpos, "99999999999999999");
  std::string reason;
  EXPECT_EQ(classify(line, &reason), CacheLineKind::kCorrupt) << reason;
  // A 100-digit numeric field in a legacy v4 line (no CRC in front of the
  // parser there): the payload parser's own range check must reject it.
  std::string v4 = legacy_line(encode_result_line(r), 4);
  const size_t cyc = v4.find(",1007,");
  ASSERT_NE(cyc, std::string::npos);
  v4.replace(cyc + 1, 4, std::string(100, '7'));
  EXPECT_FALSE(decode_result_line(v4, &out));
}

TEST(CacheV5, SplicedMixedVersionFileLoadsEveryValidRecord) {
  // A cache that grew across three format epochs: v3 and v4 lines (written
  // by old binaries) plus current v5 — all must load from one file.
  const std::string path = temp_path("splice");
  std::remove(path.c_str());
  const ExperimentResult a = sample_result("heat", Design::kBaseline, 1);
  const ExperimentResult b = sample_result("wrf", Design::kAvr, 2);
  const ExperimentResult c = sample_result("kmeans", Design::kTruncate, 3);
  {
    std::ofstream out(path);
    out << legacy_line(encode_result_line(a), 3) << '\n';  // v3
    out << legacy_line(encode_result_line(b), 4) << '\n';  // v4
    out << encode_result_line(c) << '\n';                  // v5
    out << "6,L10,Cdeadbeef,future,stuff,end#\n";          // future: foreign
  }
  const auto cache = load_result_cache(path);
  ASSERT_EQ(cache.size(), 3u);
  EXPECT_EQ(encode_result_line(cache.at({"heat", Design::kBaseline})),
            encode_result_line(a));
  EXPECT_EQ(encode_result_line(cache.at({"wrf", Design::kAvr})),
            encode_result_line(b));
  std::remove(path.c_str());
}

TEST(CacheV5, V2LinesStillDecode) {
  // v2: no config_hash field; decodes with the default fingerprint.
  const ExperimentResult r = sample_result("lattice", Design::kAvr, 8);
  std::string v2 = legacy_line(encode_result_line(r), 2);
  // Drop the config_hash (3rd payload field => 4th line field).
  size_t p = 0;
  for (int i = 0; i < 3; ++i) p = v2.find(',', p) + 1;
  v2.erase(p, v2.find(',', p) + 1 - p);
  ExperimentResult back;
  ASSERT_TRUE(decode_result_line(v2, &back));
  EXPECT_EQ(back.config_hash, config_fingerprint(SimConfig{}));
  EXPECT_EQ(back.m.cycles, r.m.cycles);
}

TEST(CacheV5, LegacyLineMissingSentinelIsQuarantined) {
  std::string v4 = legacy_line(
      encode_result_line(sample_result("heat", Design::kAvr, 9)), 4);
  std::string reason;
  EXPECT_EQ(classify(v4.substr(0, v4.size() - 5), &reason),
            CacheLineKind::kCorrupt);
  EXPECT_NE(reason.find("end#"), std::string::npos) << reason;
}

TEST(CacheV5, ClaimRoundTripAndCorruptClaim) {
  const ClaimRecord c = sample_claim("wrf", Design::kAvr, "host-1", 12345, 90);
  const std::string line = encode_claim_line(c);
  EXPECT_EQ(line.substr(0, 2), "5,");
  ClaimRecord back;
  ASSERT_TRUE(decode_claim_line(line, &back));
  EXPECT_EQ(back.owner, "host-1");
  EXPECT_EQ(back.claimed_at, 12345u);
  EXPECT_EQ(back.lease_seconds, 90u);
  // One flipped payload byte: the CRC quarantines claims too.
  std::string bad = line;
  bad[bad.find("host-1") + 5] = '2';
  EXPECT_FALSE(decode_claim_line(bad, &back));
  std::string reason;
  EXPECT_EQ(classify(bad, &reason), CacheLineKind::kCorrupt);
  // Legacy-version claims are foreign (stale epoch), never decoded.
  EXPECT_EQ(classify(legacy_line(line, 4)), CacheLineKind::kForeign);
}

TEST(CacheV5, DuplicateClaimsLastWins) {
  const std::string path = temp_path("dupclaim");
  std::remove(path.c_str());
  {
    std::ofstream out(path);
    out << encode_claim_line(sample_claim("heat", Design::kAvr, "w0", 100))
        << '\n';
    out << encode_claim_line(sample_claim("heat", Design::kAvr, "w1", 200))
        << '\n';
  }
  const auto claims = load_claims(path);
  ASSERT_EQ(claims.size(), 1u);
  EXPECT_EQ(claims.at({"heat", Design::kAvr}).owner, "w1");
  EXPECT_EQ(claims.at({"heat", Design::kAvr}).claimed_at, 200u);
  std::remove(path.c_str());
}

TEST(CacheV5, SwappedDetailPairsAreCaughtByCrc) {
  // Reordering two detail pairs leaves a syntactically perfect payload with
  // the same length — only the checksum notices.
  std::string line =
      encode_result_line(sample_result("heat", Design::kAvr, 10));
  const size_t ev = line.find("evictions,17");
  const size_t rq = line.find("requests,109");
  ASSERT_NE(ev, std::string::npos);
  ASSERT_NE(rq, std::string::npos);
  std::string swapped = line;
  swapped.replace(ev, 12, "requests,109");
  swapped.replace(rq, 12, "evictions,17");
  ASSERT_EQ(swapped.size(), line.size());
  ASSERT_NE(swapped, line);
  std::string reason;
  EXPECT_EQ(classify(swapped, &reason), CacheLineKind::kCorrupt);
  EXPECT_NE(reason.find("crc mismatch"), std::string::npos) << reason;
}

TEST(CacheV5, BlankAndGarbageLinesClassify) {
  EXPECT_EQ(classify(""), CacheLineKind::kBlank);
  std::string reason;
  EXPECT_EQ(classify("not,a,record", &reason), CacheLineKind::kCorrupt);
  EXPECT_EQ(classify("9999,future,format,end#"), CacheLineKind::kForeign);
}

TEST(CacheV5, QuarantineWarningsNameLineAndReason) {
  const std::string path = temp_path("warn");
  std::remove(path.c_str());
  std::string bad = encode_result_line(sample_result("heat", Design::kAvr, 11));
  bad[bad.find(",C") + 2] ^= 1;  // flip one CRC bit's hex digit
  {
    std::ofstream out(path);
    out << encode_result_line(sample_result("wrf", Design::kAvr, 12)) << '\n';
    out << bad << '\n';
  }
  testing::internal::CaptureStderr();
  const auto cache = load_result_cache(path);
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_NE(err.find("quarantined"), std::string::npos) << err;
  EXPECT_NE(err.find(":2:"), std::string::npos) << err;  // 1-based line number
  EXPECT_NE(err.find("crc mismatch"), std::string::npos) << err;
  std::remove(path.c_str());
}

// ---- fsck / repair ---------------------------------------------------------

/// A cache bearing one of every wound fsck must account for.
struct WoundedCache {
  std::string path;
  ExperimentResult live_a, live_b;
  ClaimRecord live_claim;
};

WoundedCache make_wounded(const std::string& tag, uint64_t now) {
  WoundedCache w;
  w.path = temp_path(tag);
  std::remove(w.path.c_str());
  w.live_a = sample_result("heat", Design::kAvr, 1);
  w.live_b = sample_result("wrf", Design::kTruncate, 2);
  w.live_claim = sample_claim("kmeans", Design::kAvr, "alive", now, 3600);
  std::ofstream out(w.path);
  out << legacy_line(encode_result_line(w.live_a), 4) << '\n';   // legacy v4
  out << encode_result_line(w.live_a) << '\n';        // duplicate (identical)
  out << encode_result_line(w.live_b) << '\n';
  out << '\n';                                                   // blank
  out << "9999,future,format,end#\n";                            // foreign
  std::string torn = encode_result_line(sample_result("lattice", Design::kAvr, 3));
  out << torn.substr(0, torn.size() / 2) << '\n';                // torn line
  // Superseded then expired-dangling claim on an unfinished point.
  out << encode_claim_line(sample_claim("bscholes", Design::kAvr, "dead1",
                                        now - 1000, 60))
      << '\n';
  out << encode_claim_line(sample_claim("bscholes", Design::kAvr, "dead2",
                                        now - 500, 60))
      << '\n';
  // Moot claim: its point has a result.
  out << encode_claim_line(sample_claim("wrf", Design::kTruncate, "done",
                                        now - 10, 60))
      << '\n';
  // Live dangling claim: a healthy mid-sweep worker.
  out << encode_claim_line(w.live_claim) << '\n';
  return w;
}

TEST(CacheFsck, AccountsForEveryWound) {
  const uint64_t now = 1700000000;
  const WoundedCache w = make_wounded("fsck", now);
  const FsckReport r = fsck_cache(w.path, now);
  EXPECT_TRUE(r.io_error.empty());
  EXPECT_EQ(r.total_lines, 10u);
  EXPECT_EQ(r.blank_lines, 1u);
  EXPECT_EQ(r.foreign_lines, 1u);
  EXPECT_EQ(r.result_versions.at(4), 1u);
  EXPECT_EQ(r.result_versions.at(5), 2u);
  EXPECT_EQ(r.legacy_results(), 1u);
  EXPECT_EQ(r.duplicate_results, 1u);
  EXPECT_EQ(r.conflicting_results, 0u);
  ASSERT_EQ(r.corrupt.size(), 1u);
  EXPECT_EQ(r.corrupt[0].line_no, 6u);
  EXPECT_EQ(r.claims, 4u);
  EXPECT_EQ(r.superseded_claims, 1u);
  EXPECT_EQ(r.moot_claims, 1u);
  EXPECT_EQ(r.dangling_expired, 1u);
  EXPECT_EQ(r.dangling_live, 1u);
  EXPECT_TRUE(r.has_issues());
  EXPECT_TRUE(r.needs_repair());
  std::remove(w.path.c_str());
}

TEST(CacheFsck, ConflictingDuplicateIsAnIssueIdenticalIsNot) {
  const std::string path = temp_path("conflict");
  std::remove(path.c_str());
  {
    std::ofstream out(path);
    out << encode_result_line(sample_result("heat", Design::kAvr, 1)) << '\n';
    out << encode_result_line(sample_result("heat", Design::kAvr, 1)) << '\n';
  }
  FsckReport r = fsck_cache(path, 0);
  EXPECT_EQ(r.duplicate_results, 1u);
  EXPECT_EQ(r.conflicting_results, 0u);
  EXPECT_FALSE(r.has_issues());
  EXPECT_TRUE(r.needs_repair());  // clutter, not damage
  {
    std::ofstream out(path, std::ios::app);
    out << encode_result_line(sample_result("heat", Design::kAvr, 999)) << '\n';
  }
  r = fsck_cache(path, 0);
  EXPECT_EQ(r.conflicting_results, 1u);
  EXPECT_TRUE(r.has_issues());
  std::remove(path.c_str());
}

TEST(CacheFsck, LiveDanglingClaimAloneIsHealthy) {
  // A mid-sweep cache — results plus live claims — must audit clean, or CI
  // could never fsck while workers run.
  const std::string path = temp_path("midsweep");
  std::remove(path.c_str());
  const uint64_t now = 1700000000;
  {
    std::ofstream out(path);
    out << encode_result_line(sample_result("heat", Design::kAvr, 1)) << '\n';
    out << encode_claim_line(sample_claim("wrf", Design::kAvr, "w0", now, 600))
        << '\n';
  }
  const FsckReport r = fsck_cache(path, now);
  EXPECT_EQ(r.dangling_live, 1u);
  EXPECT_FALSE(r.has_issues());
  EXPECT_FALSE(r.needs_repair());
  std::remove(path.c_str());
}

TEST(CacheFsck, MissingFileIsAnIoError) {
  const FsckReport r = fsck_cache(temp_path("nosuch"), 0);
  EXPECT_FALSE(r.io_error.empty());
  EXPECT_TRUE(r.has_issues());
}

TEST(CacheFsck, RepairHealsEveryWoundAndPreservesValues) {
  const uint64_t now = 1700000000;
  const WoundedCache w = make_wounded("repair", now);
  std::string error;
  ASSERT_TRUE(repair_cache(w.path, now, &error)) << error;

  const FsckReport post = fsck_cache(w.path, now);
  EXPECT_FALSE(post.has_issues());
  EXPECT_FALSE(post.needs_repair());
  // All-v5 now: the legacy v4 record was re-encoded under the checksum.
  EXPECT_EQ(post.result_versions.size(), 1u);
  EXPECT_EQ(post.result_versions.at(kResultCacheVersion), 2u);
  EXPECT_EQ(post.claims, 1u);
  EXPECT_EQ(post.dangling_live, 1u);  // the live worker's claim survived

  // Values preserved bit-exactly through the re-encode.
  const auto cache = load_result_cache(w.path);
  ASSERT_EQ(cache.size(), 2u);
  EXPECT_EQ(encode_result_line(cache.at({"heat", Design::kAvr})),
            encode_result_line(w.live_a));
  EXPECT_EQ(encode_result_line(cache.at({"wrf", Design::kTruncate})),
            encode_result_line(w.live_b));
  const auto claims = load_claims(w.path);
  ASSERT_EQ(claims.size(), 1u);
  EXPECT_EQ(claims.at({"kmeans", Design::kAvr}).owner, "alive");
  std::remove(w.path.c_str());
}

TEST(CacheFsck, RepairKeepsLastResultOnConflict) {
  // Conflicting duplicates: repair keeps what a load would have used (the
  // last record), so repairing never changes downstream table values.
  const std::string path = temp_path("conflictrepair");
  std::remove(path.c_str());
  const ExperimentResult last = sample_result("heat", Design::kAvr, 999);
  {
    std::ofstream out(path);
    out << encode_result_line(sample_result("heat", Design::kAvr, 1)) << '\n';
    out << encode_result_line(last) << '\n';
  }
  std::string error;
  ASSERT_TRUE(repair_cache(path, 0, &error)) << error;
  const auto cache = load_result_cache(path);
  ASSERT_EQ(cache.size(), 1u);
  EXPECT_EQ(encode_result_line(cache.at({"heat", Design::kAvr})),
            encode_result_line(last));
  EXPECT_FALSE(fsck_cache(path, 0).has_issues());
  std::remove(path.c_str());
}

TEST(CacheFsck, RepairOfUnreadableFileFailsUntouched) {
  std::string error;
  EXPECT_FALSE(repair_cache(temp_path("nosuch"), 0, &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace avr
