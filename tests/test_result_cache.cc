// Result-cache format and writer-safety tests: encode/decode round-trips
// bit-exactly, loads tolerate corrupt/truncated/duplicate lines, and
// concurrent writer *processes* (fork) never tear records.
#include "harness/result_cache.hh"

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace avr {
namespace {

std::string temp_path(const std::string& tag) {
  return (std::filesystem::temp_directory_path() /
          ("avr_rc_" + tag + "_" + std::to_string(::getpid()) + ".csv"))
      .string();
}

ExperimentResult sample_result(const std::string& wl, Design d, uint64_t salt) {
  ExperimentResult r;
  r.workload = wl;
  r.design = d;
  r.config_hash = config_fingerprint(SimConfig{});
  r.m.cycles = 1000 + salt;
  r.m.instructions = 5000 + salt;
  r.m.ipc = 1.0 / 3.0 + static_cast<double>(salt);
  r.m.amat = 7.25;
  r.m.llc_requests = 42 + salt;
  r.m.llc_misses = 7;
  r.m.llc_mpki = 0.1 + 1e-17;  // needs max_digits10 to round-trip
  r.m.dram_bytes = 1 << 20;
  r.m.dram_bytes_approx = 1 << 10;
  r.m.dram_bytes_other = 123;
  r.m.metadata_bytes = 456;
  r.m.energy.core = 1.5;
  r.m.energy.l1l2 = 2.5;
  r.m.energy.llc = 3.5;
  r.m.energy.dram = 4.5;
  r.m.energy.compressor = 5.5;
  r.m.compression_ratio = 2.6666666666666665;
  r.m.footprint_bytes = 789;
  r.m.approx_bytes = 321;
  r.m.output_error = 0.0123456789012345678;
  r.m.detail["requests"] = 99 + salt;
  r.m.detail["evictions"] = 17;
  r.wall_seconds = 0.25 + static_cast<double>(salt);
  return r;
}

void expect_equal(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.workload, b.workload);
  EXPECT_EQ(a.design, b.design);
  // The encoded line covers every field; string equality == bit equality
  // because doubles are written with max_digits10.
  EXPECT_EQ(encode_result_line(a), encode_result_line(b));
}

TEST(ResultCache, EncodeDecodeRoundTrip) {
  const ExperimentResult r = sample_result("kmeans", Design::kAvr, 3);
  ExperimentResult back;
  ASSERT_TRUE(decode_result_line(encode_result_line(r), &back));
  expect_equal(r, back);
  EXPECT_DOUBLE_EQ(back.m.llc_mpki, r.m.llc_mpki);
  EXPECT_DOUBLE_EQ(back.m.output_error, r.m.output_error);
  EXPECT_DOUBLE_EQ(back.wall_seconds, r.wall_seconds);
  EXPECT_EQ(back.m.detail, r.m.detail);
}

TEST(ResultCache, DecodeRejectsMalformedLines) {
  ExperimentResult out;
  EXPECT_FALSE(decode_result_line("", &out));
  EXPECT_FALSE(decode_result_line("garbage", &out));
  EXPECT_FALSE(decode_result_line("999,kmeans,0,1,2", &out));  // wrong version

  const std::string good = encode_result_line(sample_result("heat", Design::kAvr, 0));
  // A reader racing the final append sees a truncated last line.
  EXPECT_FALSE(decode_result_line(good.substr(0, good.size() / 2), &out));
  // A tear inside the final numeric token leaves a shorter, valid-looking
  // number — only the missing end sentinel gives it away.
  EXPECT_FALSE(decode_result_line(good.substr(0, good.size() - 5), &out));
  EXPECT_FALSE(decode_result_line(good.substr(0, good.size() - 6), &out));
  // Junk after the sentinel (e.g. a dangling detail key).
  EXPECT_FALSE(decode_result_line(good + ",dangling_key", &out));
  // Corrupt numeric field: fully non-numeric, and numeric-prefix junk.
  std::string corrupt = good;
  corrupt.replace(corrupt.find(',', corrupt.find(',', 0) + 1) + 1, 1, "x");
  EXPECT_FALSE(decode_result_line(corrupt, &out));
  const size_t c1 = good.find(',');
  const size_t c2 = good.find(',', c1 + 1);
  const size_t c3 = good.find(',', c2 + 1);
  std::string junk_suffix = good;
  junk_suffix.insert(c3, "junk");  // design "4" -> "4junk"
  EXPECT_FALSE(decode_result_line(junk_suffix, &out));
  // Negative integers must not wrap through stoull to 2^64-1.
  std::string negative = good;
  negative.replace(c2 + 1, c3 - c2 - 1, "-1");
  EXPECT_FALSE(decode_result_line(negative, &out));

  EXPECT_TRUE(decode_result_line(good, &out));
}

TEST(ResultCache, LoadSkipsJunkAndToleratesDuplicates) {
  const std::string path = temp_path("load");
  std::remove(path.c_str());
  const ExperimentResult a = sample_result("heat", Design::kBaseline, 1);
  const ExperimentResult b = sample_result("wrf", Design::kAvr, 2);
  {
    std::ofstream out(path);
    out << encode_result_line(a) << '\n';
    out << "not,a,record\n";
    out << encode_result_line(b) << '\n';
    out << encode_result_line(a) << '\n';  // duplicate: identical values
    const std::string tail = encode_result_line(b);
    out << tail.substr(0, tail.size() - 9);  // torn final append
  }
  const auto cache = load_result_cache(path);
  ASSERT_EQ(cache.size(), 2u);
  expect_equal(cache.at({"heat", Design::kBaseline}), a);
  expect_equal(cache.at({"wrf", Design::kAvr}), b);
  std::remove(path.c_str());
}

TEST(ResultCache, AppendAfterTornTailStartsAFreshLine) {
  // A writer killed mid-record leaves a partial line with no newline. The
  // next append must not glue its (valid) record onto that torn tail.
  const std::string path = temp_path("heal");
  std::remove(path.c_str());
  const ExperimentResult dead = sample_result("heat", Design::kBaseline, 1);
  const ExperimentResult good = sample_result("wrf", Design::kAvr, 2);
  {
    const std::string torn = encode_result_line(dead);
    std::ofstream out(path);
    out << torn.substr(0, torn.size() / 2);  // no trailing '\n'
  }
  ASSERT_TRUE(append_result_line(path, good));
  const auto cache = load_result_cache(path);
  ASSERT_EQ(cache.size(), 1u);
  expect_equal(cache.at({"wrf", Design::kAvr}), good);
  std::remove(path.c_str());
}

TEST(ResultCache, LoadOfMissingFileIsEmpty) {
  EXPECT_TRUE(load_result_cache(temp_path("nosuch")).empty());
}

/// A format-2 line: the current encoding with the v5 `L<len>,C<crc>` framing
/// stripped, the version field rewritten and the config_hash field (4th)
/// removed — exactly what a pre-v3 binary wrote.
std::string v2_line_from(const ExperimentResult& r) {
  std::string s = encode_result_line(r);
  const size_t c1 = s.find(',');            // after version
  const size_t c2 = s.find(',', c1 + 1);    // after L<len>
  const size_t c3 = s.find(',', c2 + 1);    // after C<crc>
  s = "2," + s.substr(c3 + 1);              // 2,<payload>
  const size_t p1 = s.find(',');            // after "2"
  const size_t p2 = s.find(',', p1 + 1);    // after workload
  const size_t p3 = s.find(',', p2 + 1);    // after design
  const size_t p4 = s.find(',', p3 + 1);    // after config_hash
  s.erase(p3, p4 - p3);
  return s;
}

TEST(ResultCache, V2LinesDecodeWithDefaultConfigFingerprint) {
  // Every v2 cache was produced under the default configuration; decoding
  // one must yield the default fingerprint and identical metric values.
  const ExperimentResult r = sample_result("lattice", Design::kTruncate, 5);
  ExperimentResult back;
  ASSERT_TRUE(decode_result_line(v2_line_from(r), &back));
  EXPECT_EQ(back.config_hash, config_fingerprint(SimConfig{}));
  expect_equal(r, back);
}

TEST(ResultCache, ConfigFilterSelectsOnlyMatchingRecords) {
  const std::string path = temp_path("filter");
  std::remove(path.c_str());
  ExperimentResult def = sample_result("heat", Design::kAvr, 1);
  SimConfig tweaked;
  tweaked.avr.enable_2d = false;
  ExperimentResult abl = sample_result("heat", Design::kAvr, 2);
  abl.config_hash = config_fingerprint(tweaked);
  ASSERT_NE(def.config_hash, abl.config_hash);
  {
    std::ofstream out(path);
    out << encode_result_line(def) << '\n';
    out << encode_result_line(abl) << '\n';
    out << v2_line_from(sample_result("wrf", Design::kAvr, 3)) << '\n';
  }
  // Unfiltered: both (workload, design) keys; the hash-colliding pair keeps
  // the later record (duplicates-last-wins, as for identical points).
  EXPECT_EQ(load_result_cache(path).size(), 2u);
  // Default-config filter: the ablation record is skipped, the v2 line
  // (default by construction) is kept.
  const auto defs = load_result_cache(path, config_fingerprint(SimConfig{}));
  ASSERT_EQ(defs.size(), 2u);
  expect_equal(defs.at({"heat", Design::kAvr}), def);
  // Ablation filter: exactly its own record.
  const auto abls = load_result_cache(path, config_fingerprint(tweaked));
  ASSERT_EQ(abls.size(), 1u);
  EXPECT_EQ(abls.at({"heat", Design::kAvr}).config_hash, abl.config_hash);
  std::remove(path.c_str());
}

TEST(ResultCache, ConfigFingerprintSeparatesAblationAxes) {
  // Stable across calls, and every bench_ablation axis lands on a distinct
  // fingerprint (a missed field in the fold list would alias two of them).
  const SimConfig def;
  EXPECT_EQ(config_fingerprint(def), config_fingerprint(SimConfig{}));
  std::vector<SimConfig> axes(5);
  axes[0].avr.enable_lazy_eviction = false;
  axes[1].avr.enable_pfe = false;
  axes[2].avr.enable_failure_history = false;
  axes[3].avr.enable_2d = false;
  axes[4].avr.enable_1d = false;
  std::vector<uint64_t> hashes{config_fingerprint(def)};
  for (const SimConfig& c : axes) hashes.push_back(config_fingerprint(c));
  std::sort(hashes.begin(), hashes.end());
  EXPECT_EQ(std::adjacent_find(hashes.begin(), hashes.end()), hashes.end());
}

TEST(ResultCache, ConcurrentForkedWritersProduceLoadableCache) {
  // The writer-safety contract: multiple *processes* appending to one cache
  // path concurrently yield a file where every record is intact. Each child
  // writes 64 distinct records; the parent must read back all of them with
  // exact values and zero torn lines.
  const std::string path = temp_path("fork");
  std::remove(path.c_str());
  constexpr int kChildren = 4;
  constexpr int kRecords = 64;

  std::vector<pid_t> pids;
  for (int c = 0; c < kChildren; ++c) {
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      for (int k = 0; k < kRecords; ++k) {
        const auto r = sample_result("w" + std::to_string(c * kRecords + k),
                                     Design::kAvr, static_cast<uint64_t>(k));
        if (!append_result_line(path, r)) _exit(2);
      }
      _exit(0);
    }
    pids.push_back(pid);
  }
  for (pid_t pid : pids) {
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  }

  // Every line must decode — torn/interleaved records would fail.
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) {
    ExperimentResult r;
    EXPECT_TRUE(decode_result_line(line, &r)) << "torn record: " << line;
    ++lines;
  }
  EXPECT_EQ(lines, static_cast<size_t>(kChildren * kRecords));

  const auto cache = load_result_cache(path);
  ASSERT_EQ(cache.size(), static_cast<size_t>(kChildren * kRecords));
  for (int c = 0; c < kChildren; ++c)
    for (int k = 0; k < kRecords; ++k) {
      const auto want = sample_result("w" + std::to_string(c * kRecords + k),
                                      Design::kAvr, static_cast<uint64_t>(k));
      expect_equal(cache.at({want.workload, want.design}), want);
    }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace avr
