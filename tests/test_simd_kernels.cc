// Cross-level bit-identity of the dispatched SIMD kernels (common/simd.hh).
//
// Every kernel at every level the platform supports must reproduce the
// scalar reference *bit for bit* — including on the adversarial inputs the
// vector fast paths exclude (non-finite values, denormals, ±0.0, saturating
// magnitudes, exponent-field over/underflow, int32 interpolation-delta
// overflow, exactly-at-budget outlier blocks). A parity failure here means
// a vector kernel's fallback predicate is wrong, which the corpus-level
// identity tests might only catch probabilistically.
//
// Also pins the dispatch contract itself: level names, the AVR_SIMD env
// override grammar (warn + clamp on garbage/unsupported), and
// simd_set_level's validation.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "avr/bias.hh"
#include "avr/compressor.hh"
#include "avr/downsample.hh"
#include "common/fixed_point.hh"
#include "common/fp_bits.hh"
#include "common/prng.hh"
#include "common/simd.hh"

namespace avr {
namespace {

using FloatBlock = std::array<float, kValuesPerBlock>;
using RawBlock = std::array<int32_t, kValuesPerBlock>;

constexpr float kDenormal = 1e-40f;  // exponent field 0, nonzero mantissa
constexpr float kInf = std::numeric_limits<float>::infinity();
constexpr float kNan = std::numeric_limits<float>::quiet_NaN();

std::vector<SimdLevel> supported_levels() {
  std::vector<SimdLevel> v{SimdLevel::kScalar};
  if (simd_max_supported_level() >= SimdLevel::kSse4) v.push_back(SimdLevel::kSse4);
  if (simd_max_supported_level() >= SimdLevel::kAvx2) v.push_back(SimdLevel::kAvx2);
  return v;
}

/// Pins a dispatch level for one scope; restores the previous level on exit.
class ScopedLevel {
 public:
  explicit ScopedLevel(SimdLevel lvl) : prev_(simd_level()) {
    EXPECT_TRUE(simd_set_level(lvl)) << "level " << simd_level_name(lvl);
  }
  ~ScopedLevel() { simd_set_level(prev_); }

 private:
  SimdLevel prev_;
};

/// Runs `fn` once per supported level with the dispatch pinned to it. The
/// scalar level always runs first, so fn can capture its reference output.
template <typename Fn>
void for_each_level(Fn&& fn) {
  for (SimdLevel lvl : supported_levels()) {
    ScopedLevel pin(lvl);
    fn(lvl);
  }
}

// ---- adversarial corpora --------------------------------------------------

std::vector<FloatBlock> float_corpora() {
  std::vector<FloatBlock> blocks;
  Xoshiro256 rng(42);

  {  // Smooth in-range ramp: the pure fast path.
    FloatBlock b;
    for (uint32_t i = 0; i < kValuesPerBlock; ++i)
      b[i] = 1.0f + static_cast<float>(i) * 0.03125f;
    blocks.push_back(b);
  }
  {  // Mixed random magnitudes spanning the Q16.16 comfortable range.
    FloatBlock b;
    for (float& v : b) v = static_cast<float>(rng.uniform(-1e6, 1e6));
    blocks.push_back(b);
  }
  {  // Tiny magnitudes: exponent-field underflow pressure when biased.
    FloatBlock b;
    for (float& v : b) v = static_cast<float>(rng.uniform(-1e-6, 1e-6));
    blocks.push_back(b);
  }
  {  // NaN / ±Inf sprinkled over a ramp: non-finite lanes must fall back.
    FloatBlock b;
    for (uint32_t i = 0; i < kValuesPerBlock; ++i) {
      b[i] = -500.0f + static_cast<float>(i) * 4.0f;
      if (i % 17 == 3) b[i] = kNan;
      if (i % 23 == 5) b[i] = (i & 1) ? kInf : -kInf;
    }
    blocks.push_back(b);
  }
  {  // Denormals and signed zeros: exponent field 0 everywhere.
    FloatBlock b;
    for (uint32_t i = 0; i < kValuesPerBlock; ++i) {
      switch (i % 4) {
        case 0: b[i] = kDenormal; break;
        case 1: b[i] = -3.0f * kDenormal; break;
        case 2: b[i] = 0.0f; break;
        default: b[i] = -0.0f; break;
      }
    }
    blocks.push_back(b);
  }
  {  // Saturating magnitudes around the Q16.16 bound (±32768) and beyond.
    FloatBlock b;
    for (uint32_t i = 0; i < kValuesPerBlock; ++i) {
      switch (i % 6) {
        case 0: b[i] = 32767.998f; break;  // max representable neighbourhood
        case 1: b[i] = -32768.0f; break;   // exactly INT32_MIN / 2^16
        case 2: b[i] = 32768.5f; break;    // saturates
        case 3: b[i] = -1e30f; break;      // saturates hard
        case 4: b[i] = 1e30f; break;
        default: b[i] = 7.25f; break;
      }
    }
    blocks.push_back(b);
  }
  {  // Exact .5 scaled values: (2k+1)·2^-17 scales to k+0.5, pinning the
     // round-half-away-from-zero tie behaviour in both sign directions.
    FloatBlock b;
    for (uint32_t i = 0; i < kValuesPerBlock; ++i) {
      const float v = static_cast<float>(2 * i + 1) * 0x1.0p-17f;
      b[i] = (i & 1) ? -v : v;
    }
    blocks.push_back(b);
  }
  {  // All +0.0 with a few -0.0 lanes: bit-exact sign handling.
    FloatBlock b;
    b.fill(0.0f);
    for (uint32_t i = 0; i < kValuesPerBlock; i += 31) b[i] = -0.0f;
    blocks.push_back(b);
  }
  {  // Full exponent spread 1e-38..1e38: bias spill lanes over/underflow.
    FloatBlock b;
    for (uint32_t i = 0; i < kValuesPerBlock; ++i) {
      const double mag = std::pow(10.0, rng.uniform(-38.0, 38.0));
      b[i] = static_cast<float>((i & 1) ? -mag : mag);
    }
    blocks.push_back(b);
  }
  {  // Raw random bit patterns: every encoding class at once.
    FloatBlock b;
    for (float& v : b) v = bits_f32(static_cast<uint32_t>(rng.next()));
    blocks.push_back(b);
  }
  return blocks;
}

std::vector<RawBlock> raw_corpora() {
  std::vector<RawBlock> blocks;
  Xoshiro256 rng(1337);

  {  // Ramp.
    RawBlock b;
    for (uint32_t i = 0; i < kValuesPerBlock; ++i)
      b[i] = static_cast<int32_t>(i) * 1000 - 128000;
    blocks.push_back(b);
  }
  {  // Full-range random raws.
    RawBlock b;
    for (int32_t& v : b) v = static_cast<int32_t>(rng.next());
    blocks.push_back(b);
  }
  {  // Alternating extremes: int32 delta overflow in every interpolation.
    RawBlock b;
    for (uint32_t i = 0; i < kValuesPerBlock; ++i)
      b[i] = (i & 1) ? std::numeric_limits<int32_t>::max()
                     : std::numeric_limits<int32_t>::min();
    blocks.push_back(b);
  }
  {  // All zero.
    RawBlock b{};
    blocks.push_back(b);
  }
  {  // Small magnitudes with sign changes: rounding both directions.
    RawBlock b;
    for (uint32_t i = 0; i < kValuesPerBlock; ++i)
      b[i] = static_cast<int32_t>(i % 37) - 18;
    blocks.push_back(b);
  }
  return blocks;
}

constexpr int8_t kBiases[] = {-128, -37, -5, -1, 1, 5, 37, 127};

// ---- per-kernel parity ----------------------------------------------------

TEST(SimdKernels, Fixed32FromF32Parity) {
  for (const FloatBlock& b : float_corpora()) {
    RawBlock ref{};
    for_each_level([&](SimdLevel lvl) {
      RawBlock out{};
      simd::kernels().fixed32_from_f32(b.data(), out.data(), kValuesPerBlock);
      if (lvl == SimdLevel::kScalar)
        ref = out;
      else
        EXPECT_EQ(std::memcmp(out.data(), ref.data(), sizeof(out)), 0)
            << "level " << simd_level_name(lvl);
    });
  }
}

TEST(SimdKernels, Fixed32ToF32UnbiasParity) {
  for (const RawBlock& b : raw_corpora()) {
    for (int8_t bias : kBiases) {
      FloatBlock ref{};
      for_each_level([&](SimdLevel lvl) {
        FloatBlock out{};
        simd::kernels().fixed32_to_f32_unbias(b.data(), out.data(),
                                              kValuesPerBlock, bias);
        if (lvl == SimdLevel::kScalar)
          ref = out;
        else
          EXPECT_EQ(std::memcmp(out.data(), ref.data(), sizeof(out)), 0)
              << "level " << simd_level_name(lvl) << " bias " << int(bias);
      });
      // bias == 0 is the pure Q16.16 -> float path.
      FloatBlock ref0{};
      for_each_level([&](SimdLevel lvl) {
        FloatBlock out{};
        simd::kernels().fixed32_to_f32_unbias(b.data(), out.data(),
                                              kValuesPerBlock, 0);
        if (lvl == SimdLevel::kScalar)
          ref0 = out;
        else
          EXPECT_EQ(std::memcmp(out.data(), ref0.data(), sizeof(out)), 0)
              << "level " << simd_level_name(lvl) << " bias 0";
      });
    }
  }
}

TEST(SimdKernels, BiasBlockParity) {
  for (const FloatBlock& b : float_corpora()) {
    for (int8_t bias : kBiases) {
      FloatBlock ref{};
      for_each_level([&](SimdLevel lvl) {
        FloatBlock out{};
        simd::kernels().bias_block(b.data(), out.data(), kValuesPerBlock, bias);
        if (lvl == SimdLevel::kScalar)
          ref = out;
        else
          EXPECT_EQ(std::memcmp(out.data(), ref.data(), sizeof(out)), 0)
              << "level " << simd_level_name(lvl) << " bias " << int(bias);
        // In-place form (apply_bias): spill lanes must re-read the original
        // values, not the partially-stored fast-path result.
        FloatBlock inplace = b;
        simd::kernels().bias_block(inplace.data(), inplace.data(),
                                   kValuesPerBlock, bias);
        EXPECT_EQ(std::memcmp(inplace.data(), ref.data(), sizeof(inplace)), 0)
            << "in-place, level " << simd_level_name(lvl) << " bias " << int(bias);
      });
    }
  }
}

TEST(SimdKernels, ExponentMinmaxParity) {
  for (const FloatBlock& b : float_corpora()) {
    int ref_max = 0, ref_min = 0;
    for_each_level([&](SimdLevel lvl) {
      int e_max = -1, e_min = -1;
      simd::kernels().exponent_minmax(b.data(), kValuesPerBlock, &e_max, &e_min);
      if (lvl == SimdLevel::kScalar) {
        ref_max = e_max;
        ref_min = e_min;
      } else {
        EXPECT_EQ(e_max, ref_max) << "level " << simd_level_name(lvl);
        EXPECT_EQ(e_min, ref_min) << "level " << simd_level_name(lvl);
      }
    });
  }
}

TEST(SimdKernels, TruncateLowBitsParity) {
  for (const FloatBlock& b : float_corpora()) {
    for (unsigned bits : {1u, 8u, 16u, 23u}) {
      FloatBlock ref{};
      for_each_level([&](SimdLevel lvl) {
        FloatBlock out = b;  // in-place kernel
        simd::kernels().truncate_low_bits(out.data(), kValuesPerBlock, bits);
        if (lvl == SimdLevel::kScalar)
          ref = out;
        else
          EXPECT_EQ(std::memcmp(out.data(), ref.data(), sizeof(out)), 0)
              << "level " << simd_level_name(lvl) << " bits " << bits;
      });
    }
  }
}

TEST(SimdKernels, SummarizeParity) {
  for (const RawBlock& b : raw_corpora()) {
    std::array<int32_t, kSummaryValues> ref1{}, ref2{};
    for_each_level([&](SimdLevel lvl) {
      std::array<int32_t, kSummaryValues> o1{}, o2{};
      simd::kernels().summarize_1d(b.data(), o1.data());
      simd::kernels().summarize_2d(b.data(), o2.data());
      if (lvl == SimdLevel::kScalar) {
        ref1 = o1;
        ref2 = o2;
      } else {
        EXPECT_EQ(o1, ref1) << "1d, level " << simd_level_name(lvl);
        EXPECT_EQ(o2, ref2) << "2d, level " << simd_level_name(lvl);
      }
    });
  }
}

TEST(SimdKernels, LerpGatherParity) {
  // A synthetic interpolation table with non-monotone gathers and the full
  // weight range — harsher than the real 1D/2D tables.
  constexpr int kLog2Den = 5;
  std::array<uint8_t, kValuesPerBlock> left, right;
  std::array<int8_t, kValuesPerBlock> w;
  for (uint32_t i = 0; i < kValuesPerBlock; ++i) {
    left[i] = static_cast<uint8_t>(i % kSummaryValues);
    right[i] = static_cast<uint8_t>((i * 7 + 3) % kSummaryValues);
    w[i] = static_cast<int8_t>(i % (1u << kLog2Den));
  }
  for (const RawBlock& b : raw_corpora()) {
    std::array<int32_t, kSummaryValues> avg;
    std::memcpy(avg.data(), b.data(), sizeof(avg));
    RawBlock ref{};
    for_each_level([&](SimdLevel lvl) {
      RawBlock out{};
      simd::kernels().lerp_gather(avg.data(), left.data(), right.data(), w.data(),
                                  kLog2Den, out.data(), kValuesPerBlock);
      if (lvl == SimdLevel::kScalar)
        ref = out;
      else
        EXPECT_EQ(std::memcmp(out.data(), ref.data(), sizeof(out)), 0)
            << "level " << simd_level_name(lvl);
    });
  }
}

TEST(SimdKernels, ReconstructParity) {
  // The real reconstruction entry points (1D gather lerp and the hoisted 2D
  // bilinear pass) over summaries that include the int32 delta-overflow
  // extremes — the whole-call scalar redo must engage identically.
  for (const RawBlock& b : raw_corpora()) {
    std::array<Fixed32, kSummaryValues> avg;
    for (uint32_t k = 0; k < kSummaryValues; ++k) avg[k] = Fixed32::from_raw(b[k]);
    std::array<Fixed32, kValuesPerBlock> ref1, ref2;
    for_each_level([&](SimdLevel lvl) {
      std::array<Fixed32, kValuesPerBlock> o1, o2;
      downsample::reconstruct_1d(avg, o1);
      downsample::reconstruct_2d(avg, o2);
      if (lvl == SimdLevel::kScalar) {
        ref1 = o1;
        ref2 = o2;
      } else {
        EXPECT_EQ(std::memcmp(o1.data(), ref1.data(), sizeof(o1)), 0)
            << "1d, level " << simd_level_name(lvl);
        EXPECT_EQ(std::memcmp(o2.data(), ref2.data(), sizeof(o2)), 0)
            << "2d, level " << simd_level_name(lvl);
      }
    });
  }
}

// ---- error-scan parity ----------------------------------------------------

struct ScanResult {
  bool ok = false;
  uint32_t n_outliers = 0;
  uint32_t non_outliers = 0;
  int64_t dm_sum = 0;
  std::array<uint64_t, 4> words{};
  std::array<uint32_t, kMaxBlockOutliers> bits{};
};

ScanResult run_scan(const FloatBlock& orig, const RawBlock& recon, int8_t bias,
                    uint32_t limit) {
  ScanResult r;
  Bitmap256 map;
  map.words().fill(~uint64_t{0});  // poison: the scan must zero it itself
  simd::ErrorScanState st;
  st.bitmap_words = map.words().data();
  st.outlier_bits = r.bits.data();
  st.max_outliers = kMaxBlockOutliers;
  r.ok = simd::kernels().error_scan_f32(orig.data(), recon.data(),
                                        kValuesPerBlock, bias, limit, &st);
  r.n_outliers = st.n_outliers;
  r.non_outliers = st.non_outliers;
  r.dm_sum = st.dm_sum;
  r.words = map.words();
  return r;
}

void expect_scan_parity(const FloatBlock& orig, const RawBlock& recon,
                        int8_t bias, uint32_t limit, const char* what) {
  ScanResult ref;
  for_each_level([&](SimdLevel lvl) {
    const ScanResult got = run_scan(orig, recon, bias, limit);
    if (lvl == SimdLevel::kScalar) {
      ref = got;
      return;
    }
    ASSERT_EQ(got.ok, ref.ok) << what << ", level " << simd_level_name(lvl);
    // An aborted scan's state is partial by contract and discarded by the
    // caller, so only the verdict must agree.
    if (!ref.ok) return;
    EXPECT_EQ(got.n_outliers, ref.n_outliers)
        << what << ", level " << simd_level_name(lvl);
    EXPECT_EQ(got.non_outliers, ref.non_outliers)
        << what << ", level " << simd_level_name(lvl);
    EXPECT_EQ(got.dm_sum, ref.dm_sum) << what << ", level " << simd_level_name(lvl);
    EXPECT_EQ(got.words, ref.words) << what << ", level " << simd_level_name(lvl);
    for (uint32_t k = 0; k < ref.n_outliers; ++k)
      ASSERT_EQ(got.bits[k], ref.bits[k])
          << what << ", outlier " << k << ", level " << simd_level_name(lvl);
  });
}

TEST(SimdKernels, ErrorScanParityOnPipelineBlocks) {
  // Realistic scans: run the actual compression stages 1-4 (at the scalar
  // level, so every level scans the same reconstruction) and scan the
  // original against the resulting Q16.16 image.
  const uint32_t limit = 1u << (kMantissaBits - 10);
  for (const FloatBlock& b : float_corpora()) {
    FloatBlock biased;
    std::array<Fixed32, kValuesPerBlock> fixed, recon;
    int8_t bias = 0;
    {
      ScopedLevel pin(SimdLevel::kScalar);
      bias = choose_bias(b);
      bias_block(b, biased, bias);
      fixed32_from_f32_batch(biased, fixed);
      downsample::reconstruct_1d(downsample::compress_1d(fixed), recon);
    }
    RawBlock recon_raw;
    static_assert(sizeof(recon) == sizeof(recon_raw));
    std::memcpy(recon_raw.data(), recon.data(), sizeof(recon_raw));
    expect_scan_parity(b, recon_raw, bias, limit, "pipeline block");
  }
}

TEST(SimdKernels, ErrorScanBudgetBoundaryParity) {
  // Exact-budget blocks: a base of 2.0 reconstructs exactly; each planted
  // 3.0 differs by mantissa 2^22 >= limit, an outlier. k == budget must
  // succeed with exactly k outliers in block order; k == budget+1 aborts.
  const uint32_t limit = 1u << (kMantissaBits - 10);
  RawBlock recon;
  recon.fill(2 << 16);  // Q16.16 of 2.0
  Xoshiro256 rng(7);
  for (uint32_t extra = 0; extra <= 1; ++extra) {
    const uint32_t k = kMaxBlockOutliers + extra;
    FloatBlock b;
    b.fill(2.0f);
    // k distinct positions, scattered so some 8-lane groups are mixed and
    // some all-outlier (Fisher-Yates prefix of a shuffled index array).
    std::array<uint32_t, kValuesPerBlock> idx;
    for (uint32_t i = 0; i < kValuesPerBlock; ++i) idx[i] = i;
    for (uint32_t i = kValuesPerBlock - 1; i > 0; --i)
      std::swap(idx[i], idx[rng.below(i + 1)]);
    for (uint32_t i = 0; i < k; ++i) b[idx[i]] = 3.0f;

    ScanResult ref;
    for_each_level([&](SimdLevel lvl) {
      const ScanResult got = run_scan(b, recon, 0, limit);
      if (lvl == SimdLevel::kScalar) ref = got;
      EXPECT_EQ(got.ok, extra == 0) << "level " << simd_level_name(lvl);
      if (extra == 0) {
        EXPECT_EQ(got.n_outliers, kMaxBlockOutliers)
            << "level " << simd_level_name(lvl);
        EXPECT_EQ(got.words, ref.words) << "level " << simd_level_name(lvl);
        for (uint32_t j = 0; j < got.n_outliers; ++j)
          ASSERT_EQ(got.bits[j], f32_bits(3.0f)) << "level " << simd_level_name(lvl);
      }
    });
  }
}

TEST(SimdKernels, ErrorScanSignedZeroParity) {
  // -0.0 originals against a +0.0 reconstruction: bitwise-unequal with a
  // differing sign, so exactly the -0.0 lanes are outliers at every level.
  FloatBlock b;
  b.fill(0.0f);
  uint32_t planted = 0;
  for (uint32_t i = 2; i < kValuesPerBlock; i += 19) {
    b[i] = -0.0f;
    ++planted;
  }
  RawBlock recon{};  // all-zero raws reconstruct to +0.0
  const uint32_t limit = 1u << (kMantissaBits - 10);
  expect_scan_parity(b, recon, 0, limit, "signed zero");
  ScopedLevel pin(SimdLevel::kScalar);
  const ScanResult r = run_scan(b, recon, 0, limit);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.n_outliers, planted);
  for (uint32_t j = 0; j < r.n_outliers; ++j) EXPECT_EQ(r.bits[j], f32_bits(-0.0f));
}

// ---- crc32c ---------------------------------------------------------------

TEST(SimdKernels, Crc32cKnownAnswer) {
  // The CRC-32C (Castagnoli) check value: crc of "123456789" == 0xE3069283.
  // Pins the polynomial, reflection and init/final conventions of the scalar
  // table — the hardware kernels are then held to it by the parity test.
  ScopedLevel pin(SimdLevel::kScalar);
  const uint8_t msg[] = "123456789";
  const uint32_t crc = ~simd::kernels().crc32c_update(0xFFFFFFFFu, msg, 9);
  EXPECT_EQ(crc, 0xE3069283u);
  // Empty input: init and final cancel to 0.
  EXPECT_EQ(~simd::kernels().crc32c_update(0xFFFFFFFFu, msg, 0), 0u);
}

TEST(SimdKernels, Crc32cParity) {
  // Every level, every length 0..64 plus a large unaligned slab: the 8-byte
  // hardware stride and its byte tail must agree with the table exactly,
  // including incremental (chained) updates split at odd offsets.
  Xoshiro256 rng(2024);
  std::vector<uint8_t> buf(4096 + 7);
  for (uint8_t& b : buf) b = static_cast<uint8_t>(rng.next());
  for (size_t len : {size_t{0},  size_t{1},  size_t{7},  size_t{8},
                     size_t{9},  size_t{15}, size_t{16}, size_t{63},
                     size_t{64}, size_t{333}, buf.size()}) {
    uint32_t ref = 0;
    for_each_level([&](SimdLevel lvl) {
      const uint32_t one =
          ~simd::kernels().crc32c_update(0xFFFFFFFFu, buf.data(), len);
      // Chained halves split at an odd offset must equal the one-shot crc.
      const size_t cut = len / 3;
      uint32_t chained = simd::kernels().crc32c_update(0xFFFFFFFFu, buf.data(), cut);
      chained = ~simd::kernels().crc32c_update(chained, buf.data() + cut, len - cut);
      EXPECT_EQ(chained, one) << "level " << simd_level_name(lvl) << " len " << len;
      if (lvl == SimdLevel::kScalar)
        ref = one;
      else
        EXPECT_EQ(one, ref) << "level " << simd_level_name(lvl) << " len " << len;
    });
  }
}

// ---- whole-compressor parity ----------------------------------------------

TEST(SimdKernels, CompressorEndToEndParity) {
  // The integrated check: compress + reconstruct every adversarial block at
  // every level and require identical encodings, errors and reconstructions.
  Compressor comp(AvrConfig{});
  for (const FloatBlock& b : float_corpora()) {
    std::optional<CompressionAttempt> ref;
    FloatBlock ref_out{};
    for_each_level([&](SimdLevel lvl) {
      std::optional<CompressionAttempt> att = comp.compress(b);
      if (lvl == SimdLevel::kScalar) {
        ref = att;
        if (ref) {
          ref_out.fill(0.0f);
          comp.reconstruct(ref->block, ref_out);
        }
        return;
      }
      ASSERT_EQ(att.has_value(), ref.has_value())
          << "level " << simd_level_name(lvl);
      if (!att) return;
      EXPECT_EQ(att->block.method, ref->block.method);
      EXPECT_EQ(att->block.bias, ref->block.bias);
      EXPECT_EQ(att->block.summary, ref->block.summary);
      EXPECT_EQ(att->block.outlier_map, ref->block.outlier_map);
      EXPECT_EQ(att->block.outliers, ref->block.outliers);
      EXPECT_EQ(att->block.encoded_bytes, ref->block.encoded_bytes);
      EXPECT_EQ(att->block.lines(), ref->block.lines());
      EXPECT_EQ(att->avg_error, ref->avg_error) << "level " << simd_level_name(lvl);
      FloatBlock out{};
      comp.reconstruct(att->block, out);
      EXPECT_EQ(std::memcmp(out.data(), ref_out.data(), sizeof(out)), 0)
          << "reconstruct, level " << simd_level_name(lvl);
    });
  }
}

// ---- dispatch contract ----------------------------------------------------

TEST(SimdDispatch, NameParseRoundTrip) {
  for (SimdLevel lvl : {SimdLevel::kScalar, SimdLevel::kSse4, SimdLevel::kAvx2}) {
    SimdLevel parsed = SimdLevel::kScalar;
    ASSERT_TRUE(simd_parse_level(simd_level_name(lvl), &parsed));
    EXPECT_EQ(parsed, lvl);
  }
  SimdLevel out;
  EXPECT_FALSE(simd_parse_level("AVX2", &out));  // grammar is lower-case
  EXPECT_FALSE(simd_parse_level("sse", &out));
  EXPECT_FALSE(simd_parse_level("", &out));
}

TEST(SimdDispatch, ChooseLevelContract) {
  const SimdLevel max = simd_max_supported_level();
  EXPECT_EQ(simd_choose_level(nullptr), max);  // no override -> best available
  EXPECT_EQ(simd_choose_level(""), max);
  EXPECT_EQ(simd_choose_level("scalar"), SimdLevel::kScalar);
  EXPECT_EQ(simd_choose_level(simd_level_name(max)), max);
  // Garbage warns and falls back to max; an unsupported level clamps.
  EXPECT_EQ(simd_choose_level("definitely-not-a-level"), max);
  EXPECT_EQ(simd_choose_level("avx2"), max >= SimdLevel::kAvx2 ? SimdLevel::kAvx2 : max);
}

TEST(SimdDispatch, EnvOverrideDrivesReinit) {
  const SimdLevel before = simd_level();
  const char* old = std::getenv("AVR_SIMD");
  const std::string saved = old ? old : "";

  setenv("AVR_SIMD", "scalar", 1);
  EXPECT_EQ(simd_reinit_from_env(), SimdLevel::kScalar);
  EXPECT_EQ(simd_level(), SimdLevel::kScalar);

  setenv("AVR_SIMD", "no-such-isa", 1);
  EXPECT_EQ(simd_reinit_from_env(), simd_max_supported_level());

  if (old)
    setenv("AVR_SIMD", saved.c_str(), 1);
  else
    unsetenv("AVR_SIMD");
  simd_reinit_from_env();
  EXPECT_TRUE(simd_set_level(before));
}

TEST(SimdDispatch, SetLevelValidatesSupport) {
  const SimdLevel before = simd_level();
  for (SimdLevel lvl : supported_levels()) {
    EXPECT_TRUE(simd_set_level(lvl));
    EXPECT_EQ(simd_level(), lvl);
  }
  if (simd_max_supported_level() < SimdLevel::kAvx2) {
    EXPECT_FALSE(simd_set_level(SimdLevel::kAvx2));
    EXPECT_EQ(simd_level(), supported_levels().back());
  }
  EXPECT_TRUE(simd_set_level(before));
}

}  // namespace
}  // namespace avr
