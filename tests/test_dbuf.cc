#include "avr/dbuf.hh"

#include <gtest/gtest.h>

namespace avr {
namespace {

TEST(Dbuf, StartsInvalid) {
  Dbuf d;
  EXPECT_FALSE(d.valid());
  EXPECT_FALSE(d.holds(0x1000));
}

TEST(Dbuf, HoldsLinesOfItsBlockOnly) {
  Dbuf d;
  d.refill(0x10000400);
  EXPECT_TRUE(d.valid());
  EXPECT_EQ(d.block(), 0x10000400u);
  EXPECT_TRUE(d.holds(0x10000400));
  EXPECT_TRUE(d.holds(0x100007C0));  // last line of the block
  EXPECT_FALSE(d.holds(0x10000800)); // next block
  EXPECT_FALSE(d.holds(0x100003C0)); // previous block
}

TEST(Dbuf, RequestTracking) {
  Dbuf d;
  d.refill(0x0);
  EXPECT_EQ(d.requested_count(), 0u);
  d.mark_requested(0x0);
  d.mark_requested(0x40);
  d.mark_requested(0x40);  // idempotent
  EXPECT_EQ(d.requested_count(), 2u);
}

TEST(Dbuf, PromotableExcludesLinesAlreadyInLlc) {
  Dbuf d;
  d.refill(0x0);
  d.mark_in_llc(0x0);
  d.mark_in_llc(0x3C0);  // line 15
  EXPECT_TRUE(d.line_in_llc(0x0));
  EXPECT_FALSE(d.line_in_llc(0x40));
  const uint16_t mask = d.promotable_mask();
  EXPECT_FALSE(mask & 0x0001);
  EXPECT_FALSE(mask & 0x8000);
  EXPECT_TRUE(mask & 0x0002);
}

TEST(Dbuf, RefillResetsState) {
  Dbuf d;
  d.refill(0x0);
  d.mark_requested(0x0);
  d.mark_in_llc(0x40);
  d.refill(0x400);
  EXPECT_EQ(d.requested_count(), 0u);
  EXPECT_FALSE(d.line_in_llc(0x440));
  EXPECT_TRUE(d.holds(0x400));
  EXPECT_FALSE(d.holds(0x0));
}

TEST(Dbuf, Invalidate) {
  Dbuf d;
  d.refill(0x1000);
  d.invalidate();
  EXPECT_FALSE(d.valid());
  EXPECT_FALSE(d.holds(0x1000));
}

}  // namespace
}  // namespace avr
