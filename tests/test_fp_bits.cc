#include "common/fp_bits.hh"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace avr {
namespace {

TEST(FpBits, FieldExtraction) {
  EXPECT_EQ(f32_sign(1.0f), 0u);
  EXPECT_EQ(f32_sign(-1.0f), 1u);
  EXPECT_EQ(f32_exponent(1.0f), 127u);
  EXPECT_EQ(f32_exponent(2.0f), 128u);
  EXPECT_EQ(f32_exponent(0.5f), 126u);
  EXPECT_EQ(f32_mantissa(1.0f), 0u);
  EXPECT_EQ(f32_mantissa(1.5f), 1u << 22);
}

TEST(FpBits, AssembleRoundTrip) {
  for (float f : {1.0f, -2.5f, 3.14159f, 1e-20f, 6.02e23f, -0.0f}) {
    EXPECT_EQ(f32_assemble(f32_sign(f), f32_exponent(f), f32_mantissa(f)), f)
        << f;
  }
}

TEST(FpBits, ZeroAndDenormal) {
  EXPECT_TRUE(f32_is_zero_or_denormal(0.0f));
  EXPECT_TRUE(f32_is_zero_or_denormal(-0.0f));
  EXPECT_TRUE(f32_is_zero_or_denormal(std::numeric_limits<float>::denorm_min()));
  EXPECT_FALSE(f32_is_zero_or_denormal(1e-30f));
}

TEST(FpBits, FiniteChecks) {
  EXPECT_TRUE(f32_is_finite(1.0f));
  EXPECT_TRUE(f32_is_finite(std::numeric_limits<float>::max()));
  EXPECT_FALSE(f32_is_finite(std::numeric_limits<float>::infinity()));
  EXPECT_FALSE(f32_is_finite(std::numeric_limits<float>::quiet_NaN()));
}

TEST(FpBits, ScaleExponentMultipliesByPowerOfTwo) {
  EXPECT_FLOAT_EQ(f32_scale_exponent(3.0f, 1), 6.0f);
  EXPECT_FLOAT_EQ(f32_scale_exponent(3.0f, -2), 0.75f);
  EXPECT_FLOAT_EQ(f32_scale_exponent(-1.5f, 3), -12.0f);
}

TEST(FpBits, ScaleExponentLeavesZeroAlone) {
  EXPECT_EQ(f32_bits(f32_scale_exponent(0.0f, 5)), f32_bits(0.0f));
  EXPECT_EQ(f32_bits(f32_scale_exponent(-0.0f, 5)), f32_bits(-0.0f));
}

TEST(FpBits, TruncateLowBits) {
  const float f = 1.23456789f;
  const float t = f32_truncate_low_bits(f, 16);
  EXPECT_EQ(f32_bits(t) & 0xFFFF, 0u);
  EXPECT_EQ(f32_sign(t), f32_sign(f));
  EXPECT_EQ(f32_exponent(t), f32_exponent(f));
  // Truncation moves toward zero by less than 2^-7 relative.
  EXPECT_LE(std::abs(t), std::abs(f));
  EXPECT_NEAR(t, f, std::abs(f) / 128.0f);
}

TEST(FpBits, TruncatePreservesNonFinite) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(f32_bits(f32_truncate_low_bits(inf, 16)), f32_bits(inf));
}

TEST(FpBits, RelativeError) {
  EXPECT_NEAR(relative_error(1.1, 1.0), 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(relative_error(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(relative_error(1.0, 0.0), 1.0);  // vs tiny: saturates
}

class TruncateSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(TruncateSweep, ErrorBoundedByBitPosition) {
  const unsigned n = GetParam();
  for (float f : {0.001f, 0.9f, 123.456f, 7e8f, -55.5f}) {
    const float t = f32_truncate_low_bits(f, n);
    // Dropping n low mantissa bits changes the value by < 2^(n-23) relative.
    EXPECT_LE(relative_error(t, f), std::ldexp(1.0, static_cast<int>(n) - 23))
        << "n=" << n << " f=" << f;
  }
}

INSTANTIATE_TEST_SUITE_P(Bits, TruncateSweep, ::testing::Values(1u, 4u, 8u, 12u, 16u, 20u));

}  // namespace
}  // namespace avr
