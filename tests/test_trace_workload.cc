// Trace replay as a first-class sweep point: deterministic replay, pinned
// golden digests for a bundled trace on every design, eager (startup-time)
// rejection of bad workload names and trace specs, and cache integration.
#include <gtest/gtest.h>

#include <bit>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "harness/sweep.hh"
#include "runtime/system.hh"
#include "trace/trace_gen.hh"
#include "workloads/trace.hh"
#include "workloads/workload.hh"
#include "workloads/workload_registry.hh"

namespace avr {
namespace {

/// Bundled starter traces live in data/traces/; CTest injects the absolute
/// source path via AVR_TRACE_DIR (tests run with CWD=build).
std::string trace_dir() {
  if (const char* env = std::getenv("AVR_TRACE_DIR")) return env;
  for (const char* guess : {"data/traces", "../data/traces"}) {
    std::ifstream probe(std::string(guess) + "/zipf.trace");
    if (probe.good()) return guess;
  }
  return "data/traces";
}

std::string bundled(const std::string& file) { return trace_dir() + "/" + file; }

/// The per-workload config the ExperimentRunner simulates under
/// (ExperimentRunner::config_for with the default base).
SimConfig point_config(const Workload& wl) {
  SimConfig cfg;
  cfg.scale_caches(wl.cache_scale());
  cfg.llc.size_bytes = wl.llc_bytes();
  cfg.avr.t1_mantissa_msbit = wl.t1_msbit();
  return cfg;
}

uint64_t fnv1a(const std::vector<double>& out) {
  uint64_t h = 1469598103934665603ull;
  for (double d : out) {
    uint64_t v = std::bit_cast<uint64_t>(d);
    for (int i = 0; i < 8; ++i) {
      h = (h ^ (v & 0xFF)) * 1099511628211ull;
      v >>= 8;
    }
  }
  return h;
}

trace::Trace test_trace() {
  trace::GenParams p;
  p.records = 4096;
  p.regions = 3;
  p.region_bytes = 32768;
  p.seed = 21;
  return trace::make_mixed_trace(p);
}

// ---- replay determinism ----------------------------------------------------

TEST(TraceWorkload, ReplayIsBitDeterministic) {
  std::vector<double> outs[2];
  RunMetrics ms[2];
  for (int run = 0; run < 2; ++run) {
    auto wl = make_trace_workload("trace:mem", test_trace());
    System sys(Design::kAvr, point_config(*wl));
    wl->run(sys);
    sys.finish();
    outs[run] = wl->output(sys);
    ms[run] = sys.metrics();
  }
  ASSERT_FALSE(outs[0].empty());
  ASSERT_EQ(outs[0].size(), outs[1].size());
  for (size_t i = 0; i < outs[0].size(); ++i)
    EXPECT_EQ(std::bit_cast<uint64_t>(outs[0][i]),
              std::bit_cast<uint64_t>(outs[1][i]))
        << "output word " << i << " differs between identical replays";
  EXPECT_EQ(ms[0].cycles, ms[1].cycles);
  EXPECT_EQ(ms[0].dram_bytes, ms[1].dram_bytes);
  EXPECT_EQ(ms[0].llc_misses, ms[1].llc_misses);
  EXPECT_EQ(ms[0].compression_ratio, ms[1].compression_ratio);
}

TEST(TraceWorkload, FunctionalAndTimingRunsAgreeOnOutput) {
  // Same design, timing on vs off: the functional payload must not depend
  // on the timing machinery (this is what makes golden runs meaningful).
  auto wl_t = make_trace_workload("trace:mem", test_trace());
  System timing(Design::kBaseline, point_config(*wl_t));
  wl_t->run(timing);
  timing.finish();

  auto wl_f = make_trace_workload("trace:mem", test_trace());
  System functional(Design::kBaseline, point_config(*wl_f), 1, /*timing=*/false);
  wl_f->run(functional);

  const auto a = wl_t->output(timing);
  const auto b = wl_f->output(functional);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(std::bit_cast<uint64_t>(a[i]), std::bit_cast<uint64_t>(b[i])) << i;
}

// ---- pinned golden digests -------------------------------------------------

// FNV-1a digests of the trace:zipf.trace output vector on every design,
// captured when the trace frontend landed. Replay must stay bit-identical:
// any drift in the PRNG, generators, replay order, or store values shows up
// here as a digest mismatch.
const std::map<Design, uint64_t> kZipfDigests = {
    {Design::kBaseline, 0xe3b7b62cbba8352cull},
    {Design::kDoppelganger, 0xe3b7b62cbba8352cull},
    {Design::kTruncate, 0x98f5ba7fc2baf0e5ull},
    {Design::kZeroAvr, 0xe3b7b62cbba8352cull},
    {Design::kAvr, 0xd5b05d23366c51a2ull},
};

class TraceGoldenDigest : public ::testing::TestWithParam<Design> {};

TEST_P(TraceGoldenDigest, BundledZipfTraceIsPinned) {
  const Design d = GetParam();
  auto wl = make_workload("trace:" + bundled("zipf.trace"));
  System sys(d, point_config(*wl));
  wl->run(sys);
  sys.finish();
  const uint64_t got = fnv1a(wl->output(sys));
  EXPECT_EQ(got, kZipfDigests.at(d))
      << to_string(d) << ": digest 0x" << std::hex << got;
}

INSTANTIATE_TEST_SUITE_P(AllDesigns, TraceGoldenDigest,
                         ::testing::ValuesIn(ExperimentRunner::paper_designs()),
                         [](const auto& info) { return to_string(info.param); });

// ---- eager error paths (the make_workload silent-success fix) --------------

TEST(TraceWorkloadErrors, UnknownWorkloadNameListsAlternatives) {
  try {
    (void)make_workload("definitely_not_a_workload");
    FAIL() << "unknown name must throw";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("known:"), std::string::npos) << msg;
    EXPECT_NE(msg.find("trace:<path>"), std::string::npos) << msg;
  }
}

TEST(TraceWorkloadErrors, MissingTraceFileFailsAtMakeWorkloadTime) {
  try {
    (void)make_workload("trace:/no/such/file.trace");
    FAIL() << "missing trace file must throw eagerly";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("trace:/no/such/file.trace"), std::string::npos) << msg;
    EXPECT_NE(msg.find("cannot open"), std::string::npos) << msg;
  }
}

TEST(TraceWorkloadErrors, EmptyAndCacheHostilePathsAreRejected) {
  EXPECT_THROW((void)make_workload("trace:"), std::invalid_argument);
  // ',' and newlines would corrupt the result-cache CSV key space.
  EXPECT_THROW((void)make_workload("trace:a,b.trace"), std::invalid_argument);
  EXPECT_THROW((void)make_workload("trace:a\nb.trace"), std::invalid_argument);
}

TEST(TraceWorkloadErrors, CorruptTraceFileFailsAtMakeWorkloadTime) {
  const std::string path = ::testing::TempDir() + "corrupt.trace";
  std::ofstream(path, std::ios::binary) << "not a trace";
  EXPECT_THROW((void)make_workload("trace:" + path), std::invalid_argument);
}

TEST(TraceWorkloadErrors, ParseWorkloadListValidatesTraceSpecsEagerly) {
  EXPECT_THROW(sweep::parse_workload_list("heat,trace:/no/such/file.trace"),
               std::invalid_argument);
  EXPECT_THROW(sweep::parse_workload_list("not_a_workload"),
               std::invalid_argument);
  const auto pts = sweep::parse_workload_list(
      "heat,trace:" + bundled("chase.trace"));
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_EQ(pts[0], "heat");
}

TEST(TraceWorkloadErrors, DuplicateRegistrationThrows) {
  // "heat" is taken by the built-in kernel at static-init time.
  EXPECT_THROW(register_workload("heat", nullptr), std::logic_error);
}

// ---- sweep-point integration ----------------------------------------------

TEST(TraceWorkloadSweep, AccessEstimateComesFromTheRecordStream) {
  auto wl = make_workload("trace:" + bundled("chase.trace"));
  EXPECT_EQ(wl->access_estimate(), 8192u);
  EXPECT_EQ(wl->name(), "trace:" + bundled("chase.trace"));
  // Built-in kernels keep the default "unknown" estimate.
  EXPECT_EQ(make_workload("heat")->access_estimate(), 0u);
}

TEST(TraceWorkloadSweep, RunnerCachesTracePointsAcrossProcessLifetimes) {
  const std::string cache = ::testing::TempDir() + "trace_point_cache.csv";
  std::remove(cache.c_str());
  const std::string point = "trace:" + bundled("chase.trace");

  ExperimentRunner r1({}, /*verbose=*/false, cache);
  EXPECT_FALSE(r1.cached(point, Design::kAvr));
  const ExperimentResult& fresh = r1.run(point, Design::kAvr);
  EXPECT_GE(fresh.m.output_error, 0.0);
  EXPECT_GT(fresh.m.llc_requests, 0u);
  EXPECT_TRUE(r1.cached(point, Design::kAvr));

  // A second runner on the same cache file must hit at construction and
  // reproduce the simulated metrics exactly.
  ExperimentRunner r2({}, /*verbose=*/false, cache);
  EXPECT_TRUE(r2.cached(point, Design::kAvr));
  const ExperimentResult& hit = r2.run(point, Design::kAvr);
  EXPECT_EQ(hit.m.cycles, fresh.m.cycles);
  EXPECT_EQ(hit.m.dram_bytes, fresh.m.dram_bytes);
  EXPECT_EQ(hit.m.output_error, fresh.m.output_error);
}

TEST(TraceWorkloadSweep, CostEstimateScalesWithRecordCountNotFootprint) {
  // Two traces over identical regions, 4x apart in record count: the
  // estimate must follow the record stream, not the (equal) footprint.
  // Large enough record counts to clear the estimate's 0.02s floor.
  auto write_chase = [](uint64_t records, const std::string& file) {
    trace::GenParams p;
    p.records = records;
    p.regions = 2;
    p.region_bytes = 65536;
    p.seed = 5;
    const std::string path = ::testing::TempDir() + file;
    std::string err;
    EXPECT_TRUE(trace::write_trace_file(path, trace::make_chase_trace(p), &err))
        << err;
    return path;
  };
  const std::string small = "trace:" + write_chase(200000, "cost_small.trace");
  const std::string large = "trace:" + write_chase(800000, "cost_large.trace");

  ExperimentRunner r({}, /*verbose=*/false, /*cache_path=*/"");
  const double s = r.cost_estimate(small, Design::kBaseline);
  const double l = r.cost_estimate(large, Design::kBaseline);
  EXPECT_GT(s, 0.0);
  EXPECT_NEAR(l / s, 4.0, 1e-9);
  // AVR simulates compression machinery per miss: costlier than baseline.
  EXPECT_GT(r.cost_estimate(large, Design::kAvr), l);
}

TEST(TraceWorkloadSweep, CaptureHookSeesEveryReplayedAccess) {
  const trace::Trace t = test_trace();
  auto wl = make_trace_workload("trace:mem", t);
  System sys(Design::kBaseline, point_config(*wl), 1, /*timing=*/false);
  uint64_t loads = 0, stores = 0;
  sys.set_access_hook([&](uint64_t, bool write) { ++(write ? stores : loads); });
  wl->run(sys);
  sys.set_access_hook(nullptr);
  EXPECT_EQ(loads + stores, t.access_count());
  EXPECT_GT(stores, 0u);
}

}  // namespace
}  // namespace avr
