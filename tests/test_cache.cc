#include "cache/set_assoc_cache.hh"

#include <gtest/gtest.h>

#include "common/prng.hh"

namespace avr {
namespace {

TEST(SetAssocCache, MissThenHit) {
  SetAssocCache c("t", 4096, 4);
  EXPECT_FALSE(c.access(0x1000, false));
  c.fill(0x1000, false);
  EXPECT_TRUE(c.access(0x1000, false));
  EXPECT_EQ(c.counters().hits, 1u);
  EXPECT_EQ(c.counters().misses, 1u);
}

TEST(SetAssocCache, RejectsBadGeometry) {
  EXPECT_THROW(SetAssocCache("t", 1000, 3), std::invalid_argument);
  EXPECT_THROW(SetAssocCache("t", 4096, 0), std::invalid_argument);
  // 4096/4/64 = 16 sets: fine. 4096+64 not a multiple.
  EXPECT_THROW(SetAssocCache("t", 4096 + 64, 4), std::invalid_argument);
}

TEST(SetAssocCache, LruEviction) {
  // 1 set x 2 ways of 64 B lines.
  SetAssocCache c("t", 128, 2);
  c.fill(0x0, false);
  c.fill(0x40 * 16, false);  // any addr maps to set 0 with 1 set... sets=1
  // Touch the first line so the second becomes LRU.
  c.access(0x0, false);
  const Eviction ev = c.fill(0x40 * 32, false);
  ASSERT_TRUE(ev.valid);
  EXPECT_EQ(ev.addr, 0x40u * 16);
}

TEST(SetAssocCache, DirtyBitOnWriteAndWritebackReporting) {
  SetAssocCache c("t", 128, 2);
  c.fill(0x0, false);
  c.access(0x0, /*write=*/true);
  c.fill(0x40 * 16, false);
  c.access(0x40 * 16, false);  // make line 0 LRU
  const Eviction ev = c.fill(0x40 * 32, false);
  ASSERT_TRUE(ev.valid);
  EXPECT_EQ(ev.addr, 0x0u);
  EXPECT_TRUE(ev.dirty);
}

TEST(SetAssocCache, FillWithDirtyFlag) {
  SetAssocCache c("t", 128, 2);
  c.fill(0x0, /*dirty=*/true);
  auto inv = c.invalidate(0x0);
  ASSERT_TRUE(inv.has_value());
  EXPECT_TRUE(*inv);
}

TEST(SetAssocCache, InvalidateMissing) {
  SetAssocCache c("t", 128, 2);
  EXPECT_FALSE(c.invalidate(0x123000).has_value());
}

TEST(SetAssocCache, MarkDirty) {
  SetAssocCache c("t", 128, 2);
  EXPECT_FALSE(c.mark_dirty(0x0));
  c.fill(0x0, false);
  EXPECT_TRUE(c.mark_dirty(0x0));
  EXPECT_TRUE(*c.invalidate(0x0));
}

TEST(SetAssocCache, ValidLinesEnumeratesAddressesCorrectly) {
  SetAssocCache c("t", 64 * 1024, 16);
  const uint64_t addrs[] = {0x10000, 0x2F040, 0xABCDE000};
  for (uint64_t a : addrs) c.fill(a, true);
  auto lines = c.valid_lines();
  EXPECT_EQ(lines.size(), 3u);
  for (uint64_t a : addrs) {
    bool found = false;
    for (auto& [addr, dirty] : lines)
      if (addr == line_addr(a)) {
        found = true;
        EXPECT_TRUE(dirty);
      }
    EXPECT_TRUE(found) << std::hex << a;
  }
}

TEST(SetAssocCache, ProbeHasNoSideEffects) {
  SetAssocCache c("t", 128, 2);
  c.fill(0x0, false);
  c.fill(0x40 * 16, false);
  c.probe(0x0);  // must NOT refresh LRU
  const Eviction ev = c.fill(0x40 * 32, false);
  ASSERT_TRUE(ev.valid);
  EXPECT_EQ(ev.addr, 0x0u);  // 0x0 was still LRU despite the probe
}

TEST(SetAssocCache, DistinctSetsDoNotInterfere) {
  SetAssocCache c("t", 8192, 2);  // 64 sets
  c.fill(0x0, false);
  c.fill(0x40, false);  // next line, different set
  EXPECT_TRUE(c.access(0x0, false));
  EXPECT_TRUE(c.access(0x40, false));
}

class CacheProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CacheProperty, OccupancyNeverExceedsCapacity) {
  SetAssocCache c("t", 16 * 1024, 8);  // 256 lines
  Xoshiro256 rng(GetParam());
  for (int i = 0; i < 5000; ++i) {
    const uint64_t addr = rng.below(1 << 20) * kCachelineBytes;
    if (!c.access(addr, rng.below(2)))
      c.fill(addr, false);
  }
  EXPECT_LE(c.valid_lines().size(), 256u);
  EXPECT_EQ(c.counters().accesses, 5000u);
  EXPECT_EQ(c.counters().hits + c.counters().misses, 5000u);
}

TEST_P(CacheProperty, SmallWorkingSetAlwaysHitsAfterWarmup) {
  SetAssocCache c("t", 16 * 1024, 8);
  Xoshiro256 rng(GetParam() * 7);
  // 64 lines working set in a 256-line cache.
  std::vector<uint64_t> ws;
  for (int i = 0; i < 64; ++i) ws.push_back(rng.below(1 << 16) * kCachelineBytes);
  for (uint64_t a : ws)
    if (!c.access(a, false)) c.fill(a, false);
  for (int round = 0; round < 3; ++round)
    for (uint64_t a : ws) EXPECT_TRUE(c.access(a, false));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheProperty, ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace avr
