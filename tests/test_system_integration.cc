// Cross-module integration: the full System facade under every design, with
// a synthetic streaming kernel small enough to keep tests fast.
#include <gtest/gtest.h>

#include "common/fp_bits.hh"
#include "runtime/system.hh"

namespace avr {
namespace {

SimConfig small_cfg() {
  SimConfig cfg;
  cfg.scale_caches(64);  // L1 1 kB, L2 4 kB, LLC 128 kB
  return cfg;
}

/// Writes then repeatedly reads a smooth field twice the LLC size.
RunMetrics run_streaming_kernel(Design d, bool approx = true) {
  System sys(d, small_cfg());
  const uint64_t n = 64 * 1024;  // floats = 256 kB
  const uint64_t a = sys.alloc("field", n * sizeof(float), approx);
  for (uint64_t i = 0; i < n; ++i)
    sys.store_f32(a + i * 4, 10.0f + 0.001f * static_cast<float>(i % 4096));
  double acc = 0;
  for (int pass = 0; pass < 2; ++pass)
    for (uint64_t i = 0; i < n; ++i) acc += sys.load_f32(a + i * 4);
  EXPECT_GT(acc, 0.0);
  sys.finish();
  return sys.metrics();
}

TEST(SystemIntegration, AvrMovesFewerBytesThanBaseline) {
  const RunMetrics base = run_streaming_kernel(Design::kBaseline);
  const RunMetrics avr = run_streaming_kernel(Design::kAvr);
  EXPECT_LT(avr.dram_bytes, base.dram_bytes / 2);
  EXPECT_LT(avr.cycles, base.cycles);
  EXPECT_GT(avr.compression_ratio, 4.0);
}

TEST(SystemIntegration, TruncateHalvesApproxTraffic) {
  const RunMetrics base = run_streaming_kernel(Design::kBaseline);
  const RunMetrics tr = run_streaming_kernel(Design::kTruncate);
  EXPECT_NEAR(static_cast<double>(tr.dram_bytes) / base.dram_bytes, 0.5, 0.1);
}

TEST(SystemIntegration, ZeroAvrBehavesLikeBaseline) {
  const RunMetrics base = run_streaming_kernel(Design::kBaseline);
  const RunMetrics z = run_streaming_kernel(Design::kZeroAvr);
  // Same traffic within 5 % (no compression, no metadata for non-approx).
  EXPECT_NEAR(static_cast<double>(z.dram_bytes) / base.dram_bytes, 1.0, 0.05);
  EXPECT_NEAR(static_cast<double>(z.cycles) / base.cycles, 1.0, 0.05);
  EXPECT_DOUBLE_EQ(z.compression_ratio, 1.0);
}

TEST(SystemIntegration, NonApproxDataIdenticalAcrossDesigns) {
  // With approx=false every design must leave values bit-exact.
  for (Design d : {Design::kBaseline, Design::kTruncate, Design::kDoppelganger,
                   Design::kZeroAvr, Design::kAvr}) {
    System sys(d, small_cfg());
    const uint64_t a = sys.alloc("x", 4096, /*approx=*/false);
    for (int i = 0; i < 1024; ++i) sys.store_f32(a + i * 4, 1.1f * i);
    sys.finish();
    for (int i = 0; i < 1024; ++i)
      EXPECT_FLOAT_EQ(sys.peek_f32(a + i * 4), 1.1f * i) << to_string(d);
  }
}

TEST(SystemIntegration, AvrValuesStayWithinThreshold) {
  System sys(Design::kAvr, small_cfg());
  const uint64_t n = 32 * 1024;
  const uint64_t a = sys.alloc("field", n * 4, true);
  std::vector<float> expect(n);
  for (uint64_t i = 0; i < n; ++i) {
    expect[i] = 100.0f + 0.002f * static_cast<float>(i % 1024);
    sys.store_f32(a + i * 4, expect[i]);
  }
  sys.finish();  // forces compression of everything dirty
  int outliers = 0;
  for (uint64_t i = 0; i < n; ++i) {
    const float v = sys.peek_f32(a + i * 4);
    if (relative_error(v, expect[i]) > 2 * 1.0 / 16) ++outliers;
  }
  EXPECT_EQ(outliers, 0) << "all values must stay within ~2*T1";
}

TEST(SystemIntegration, GoldenModeIsPureFunctional) {
  System sys(Design::kBaseline, small_cfg(), 1, /*timing=*/false);
  const uint64_t a = sys.alloc("x", 4096, true);
  sys.store_f32(a, 2.5f);
  EXPECT_FLOAT_EQ(sys.load_f32(a), 2.5f);
  sys.finish();
  const RunMetrics m = sys.metrics();
  EXPECT_EQ(m.cycles, 0u);
  EXPECT_EQ(m.instructions, 0u);
  EXPECT_GT(m.footprint_bytes, 0u);
}

TEST(SystemIntegration, MetricsDetailExported) {
  const RunMetrics avr = run_streaming_kernel(Design::kAvr);
  EXPECT_TRUE(avr.detail.count("compress_attempts"));
  EXPECT_TRUE(avr.detail.count("requests"));
  EXPECT_GT(avr.energy.total(), 0.0);
  EXPECT_GT(avr.energy.compressor, 0.0);
}

TEST(SystemIntegration, OpsAccumulateInstructions) {
  System sys(Design::kBaseline, small_cfg());
  sys.ops(1000);
  EXPECT_EQ(sys.metrics().instructions, 1000u);
}

}  // namespace
}  // namespace avr
