#include "runtime/region.hh"

#include <gtest/gtest.h>

namespace avr {
namespace {

TEST(RegionRegistry, AllocationIsBlockAligned) {
  RegionRegistry r;
  const uint64_t a = r.allocate("a", 100, true);
  EXPECT_EQ(a % kBlockBytes, 0u);
  const MemoryRegion* reg = r.find(a);
  ASSERT_NE(reg, nullptr);
  EXPECT_EQ(reg->bytes % kBlockBytes, 0u);
  EXPECT_GE(reg->bytes, 100u);
}

TEST(RegionRegistry, RejectsEmpty) {
  RegionRegistry r;
  EXPECT_THROW(r.allocate("x", 0, false), std::invalid_argument);
}

TEST(RegionRegistry, FindResolvesInteriorAndRejectsOutside) {
  RegionRegistry r;
  const uint64_t a = r.allocate("a", 4 * kBlockBytes, true);
  const uint64_t b = r.allocate("b", kBlockBytes, false);
  EXPECT_EQ(r.find(a + 4095)->name, "a");
  EXPECT_EQ(r.find(b)->name, "b");
  EXPECT_EQ(r.find(a - 1), nullptr);
  EXPECT_EQ(r.find(b + kBlockBytes), nullptr);
}

TEST(RegionRegistry, ApproxFlag) {
  RegionRegistry r;
  const uint64_t a = r.allocate("a", 64, true);
  const uint64_t b = r.allocate("b", 64, false);
  EXPECT_TRUE(r.is_approx(a));
  EXPECT_FALSE(r.is_approx(b));
  EXPECT_FALSE(r.is_approx(0));
}

TEST(RegionRegistry, LoadStoreRoundTrip) {
  RegionRegistry r;
  const uint64_t a = r.allocate("a", kBlockBytes, true);
  r.store<float>(a + 8, 3.5f);
  EXPECT_FLOAT_EQ(r.load<float>(a + 8), 3.5f);
  r.store<uint32_t>(a, 0xDEADBEEF);
  EXPECT_EQ(r.load<uint32_t>(a), 0xDEADBEEFu);
}

TEST(RegionRegistry, HostPtrThrowsOnUnmapped) {
  RegionRegistry r;
  EXPECT_THROW(r.host_ptr(0x123), std::out_of_range);
}

TEST(RegionRegistry, BlockValuesViewsWholeBlockInPlace) {
  RegionRegistry r;
  const uint64_t a = r.allocate("a", 2 * kBlockBytes, true);
  auto span = r.block_values(a + 300);  // any addr inside block 0
  ASSERT_EQ(span.size(), kValuesPerBlock);
  span[0] = 42.0f;
  span[255] = -1.0f;
  EXPECT_FLOAT_EQ(r.load<float>(a), 42.0f);
  EXPECT_FLOAT_EQ(r.load<float>(a + 255 * 4), -1.0f);
}

TEST(RegionRegistry, RegionsDoNotOverlapAndBlocksDoNotStraddle) {
  RegionRegistry r;
  uint64_t prev_end = 0;
  for (int i = 0; i < 10; ++i) {
    const uint64_t a = r.allocate("r" + std::to_string(i), 1000 + i * 333, i % 2);
    const MemoryRegion* reg = r.find(a);
    EXPECT_GE(a, prev_end);
    prev_end = a + reg->bytes;
  }
}

TEST(RegionRegistry, FootprintAccounting) {
  RegionRegistry r;
  r.allocate("a", kBlockBytes, true);
  r.allocate("b", 3 * kBlockBytes, false);
  EXPECT_EQ(r.total_bytes(), 4 * kBlockBytes);
  EXPECT_EQ(r.approx_bytes(), kBlockBytes);
}

TEST(RegionRegistry, ZeroInitialized) {
  RegionRegistry r;
  const uint64_t a = r.allocate("a", kBlockBytes, true);
  for (uint32_t i = 0; i < kValuesPerBlock; ++i)
    EXPECT_EQ(r.load<float>(a + i * 4), 0.0f);
}

}  // namespace
}  // namespace avr
