#include "common/fixed_point.hh"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <limits>

#include "common/prng.hh"

namespace avr {
namespace {

TEST(Fixed32, BasicConversion) {
  EXPECT_EQ(Fixed32::from_float(1.0f).raw(), Fixed32::kOne);
  EXPECT_EQ(Fixed32::from_float(-2.0f).raw(), -2 * Fixed32::kOne);
  EXPECT_FLOAT_EQ(Fixed32::from_float(3.25f).to_float(), 3.25f);
  EXPECT_FLOAT_EQ(Fixed32::from_float(-0.5f).to_float(), -0.5f);
}

TEST(Fixed32, QuantizationError) {
  // Q16.16 resolves to 2^-16; conversion error is at most half an LSB.
  for (float f : {0.1f, 1.0f / 3.0f, 2.71828f, -123.456f}) {
    EXPECT_NEAR(Fixed32::from_float(f).to_float(), f, 0.5f / Fixed32::kOne) << f;
  }
}

TEST(Fixed32, SaturatesOutOfRange) {
  EXPECT_EQ(Fixed32::from_float(1e9f).raw(), std::numeric_limits<int32_t>::max());
  EXPECT_EQ(Fixed32::from_float(-1e9f).raw(), std::numeric_limits<int32_t>::min());
  EXPECT_EQ(Fixed32::from_float(std::numeric_limits<float>::quiet_NaN()).raw(), 0);
}

TEST(Fixed32, Arithmetic) {
  const Fixed32 a = Fixed32::from_float(1.5f);
  const Fixed32 b = Fixed32::from_float(0.25f);
  EXPECT_FLOAT_EQ((a + b).to_float(), 1.75f);
  EXPECT_FLOAT_EQ((a - b).to_float(), 1.25f);
}

TEST(Fixed32, AverageExact) {
  std::array<Fixed32, 4> v = {Fixed32::from_float(1.0f), Fixed32::from_float(2.0f),
                              Fixed32::from_float(3.0f), Fixed32::from_float(4.0f)};
  EXPECT_FLOAT_EQ(Fixed32::average(v.begin(), v.end()).to_float(), 2.5f);
}

TEST(Fixed32, AverageOfEmptyRangeIsZero) {
  std::array<Fixed32, 1> v{};
  EXPECT_EQ(Fixed32::average(v.begin(), v.begin()).raw(), 0);
}

TEST(Fixed32, AverageRoundsToNearest) {
  // Average of {0, 1 LSB} should round to nearest, i.e. 1 (half away).
  std::array<Fixed32, 2> v = {Fixed32::from_raw(0), Fixed32::from_raw(1)};
  EXPECT_EQ(Fixed32::average(v.begin(), v.end()).raw(), 1);
  // Symmetric for negative values.
  std::array<Fixed32, 2> w = {Fixed32::from_raw(0), Fixed32::from_raw(-1)};
  EXPECT_EQ(Fixed32::average(w.begin(), w.end()).raw(), -1);
}

TEST(Fixed32, LerpEndpoints) {
  const Fixed32 a = Fixed32::from_float(2.0f);
  const Fixed32 b = Fixed32::from_float(6.0f);
  EXPECT_EQ(Fixed32::lerp(a, b, 0, 8).raw(), a.raw());
  EXPECT_EQ(Fixed32::lerp(a, b, 8, 8).raw(), b.raw());
  EXPECT_FLOAT_EQ(Fixed32::lerp(a, b, 4, 8).to_float(), 4.0f);
}

TEST(Fixed32, LerpMonotone) {
  const Fixed32 a = Fixed32::from_float(-3.0f);
  const Fixed32 b = Fixed32::from_float(9.0f);
  int32_t prev = Fixed32::lerp(a, b, 0, 32).raw();
  for (int w = 1; w <= 32; ++w) {
    const int32_t cur = Fixed32::lerp(a, b, w, 32).raw();
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

class AverageProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AverageProperty, AverageWithinMinMax) {
  Xoshiro256 rng(GetParam());
  std::array<Fixed32, 16> v;
  int32_t lo = std::numeric_limits<int32_t>::max();
  int32_t hi = std::numeric_limits<int32_t>::min();
  for (auto& x : v) {
    x = Fixed32::from_float(static_cast<float>(rng.uniform(-1000.0, 1000.0)));
    lo = std::min(lo, x.raw());
    hi = std::max(hi, x.raw());
  }
  const Fixed32 avg = Fixed32::average(v.begin(), v.end());
  EXPECT_GE(avg.raw(), lo);
  EXPECT_LE(avg.raw(), hi);
}

TEST_P(AverageProperty, AverageMatchesDoubleWithinLsb) {
  Xoshiro256 rng(GetParam() * 977);
  std::array<Fixed32, 16> v;
  double sum = 0;
  for (auto& x : v) {
    x = Fixed32::from_float(static_cast<float>(rng.uniform(-100.0, 100.0)));
    sum += x.to_double();
  }
  EXPECT_NEAR(Fixed32::average(v.begin(), v.end()).to_double(), sum / 16.0,
              1.0 / Fixed32::kOne);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AverageProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace avr
