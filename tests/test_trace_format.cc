// Trace format v1 wall: round-trip fidelity plus an adversarial corpus.
// Replay consumes untrusted bytes from disk, so every malformed input —
// truncated, torn, foreign, out-of-range, oversized — must fail by clean
// error return (never by crash or UB; this suite runs under the ASan/UBSan
// CI lane).
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>

#include "trace/trace_format.hh"
#include "trace/trace_gen.hh"

namespace avr {
namespace trace {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "trace_format_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out) << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Exactly 2 regions (chase emits one per p.regions — mixed would add its
// own sub-trace split), so the byte-surgery offsets below are stable.
Trace small_trace() {
  GenParams p;
  p.records = 64;
  p.regions = 2;
  p.region_bytes = 4096;
  p.seed = 3;
  return make_chase_trace(p);
}

/// Valid serialized bytes of small_trace(), for bit-surgery.
std::string valid_bytes() {
  const std::string path = temp_path("valid.trace");
  std::string err;
  EXPECT_TRUE(write_trace_file(path, small_trace(), &err)) << err;
  return slurp(path);
}

/// The reader must reject `bytes` by clean error return.
void expect_reader_rejects(const std::string& bytes, const std::string& why) {
  const std::string path = temp_path("bad.trace");
  spit(path, bytes);
  Trace t;
  std::string read_err;
  EXPECT_FALSE(read_trace_file(path, &t, &read_err)) << why;
  EXPECT_FALSE(read_err.empty()) << why;
}

/// Both entry points must reject `bytes`: corruption in the header/region
/// prefix or the byte-length contract, which probe validates too. (Record
/// *payload* corruption is reader-only — probe never parses records — so
/// those cases use expect_reader_rejects.)
void expect_rejected(const std::string& bytes, const std::string& why) {
  expect_reader_rejects(bytes, why);
  const std::string path = temp_path("bad.trace");
  spit(path, bytes);
  TraceInfo info;
  std::string probe_err;
  EXPECT_FALSE(probe_trace_file(path, &info, &probe_err)) << why;
  EXPECT_FALSE(probe_err.empty()) << why;
}

// ---- round trip ------------------------------------------------------------

TEST(TraceFormat, RoundTripIsBitIdentical) {
  for (const char* pattern : {"chase", "zipf", "walk", "mixed"}) {
    GenParams p;
    p.records = 500;
    p.regions = 3;
    p.region_bytes = 8192;
    p.seed = 17;
    const Trace t = make_synthetic_trace(pattern, p);
    const std::string path = temp_path(std::string(pattern) + ".trace");
    std::string err;
    ASSERT_TRUE(write_trace_file(path, t, &err)) << pattern << ": " << err;

    Trace back;
    ASSERT_TRUE(read_trace_file(path, &back, &err)) << pattern << ": " << err;
    ASSERT_EQ(back.regions.size(), t.regions.size());
    for (size_t i = 0; i < t.regions.size(); ++i) {
      EXPECT_EQ(back.regions[i].name, t.regions[i].name);
      EXPECT_EQ(back.regions[i].bytes, t.regions[i].bytes);
      EXPECT_EQ(back.regions[i].approx, t.regions[i].approx);
    }
    ASSERT_EQ(back.records.size(), t.records.size()) << pattern;
    for (size_t i = 0; i < t.records.size(); ++i) {
      EXPECT_EQ(back.records[i].op, t.records[i].op) << i;
      EXPECT_EQ(back.records[i].region, t.records[i].region) << i;
      EXPECT_EQ(back.records[i].size, t.records[i].size) << i;
      EXPECT_EQ(back.records[i].offset, t.records[i].offset) << i;
    }
    EXPECT_EQ(back.access_count(), t.access_count());
    EXPECT_EQ(back.footprint_bytes(), t.footprint_bytes());
  }
}

TEST(TraceFormat, WriterProducesCanonicalLength) {
  const Trace t = small_trace();
  const std::string bytes = valid_bytes();
  EXPECT_EQ(bytes.size(), kHeaderBytes + t.regions.size() * kRegionEntryBytes +
                              t.records.size() * kRecordBytes);
}

TEST(TraceFormat, ProbeReportsRegionsAndCount) {
  const Trace t = small_trace();
  const std::string path = temp_path("probe.trace");
  std::string err;
  ASSERT_TRUE(write_trace_file(path, t, &err)) << err;
  TraceInfo info;
  ASSERT_TRUE(probe_trace_file(path, &info, &err)) << err;
  EXPECT_EQ(info.record_count, t.records.size());
  ASSERT_EQ(info.regions.size(), t.regions.size());
  EXPECT_EQ(info.regions[0].name, t.regions[0].name);
}

// ---- adversarial corpus ----------------------------------------------------

TEST(TraceFormat, RejectsMissingAndEmptyFiles) {
  Trace t;
  std::string err;
  EXPECT_FALSE(read_trace_file(temp_path("nonexistent.trace"), &t, &err));
  EXPECT_FALSE(err.empty());
  expect_rejected("", "empty file");
}

TEST(TraceFormat, RejectsTruncatedHeader) {
  const std::string bytes = valid_bytes();
  expect_rejected(bytes.substr(0, 10), "mid-header cut");
  expect_rejected(bytes.substr(0, kHeaderBytes - 1), "one byte short of header");
}

TEST(TraceFormat, RejectsTruncatedRegionTable) {
  const std::string bytes = valid_bytes();
  expect_rejected(bytes.substr(0, kHeaderBytes + kRegionEntryBytes / 2),
                  "mid-region cut");
}

TEST(TraceFormat, RejectsTornFinalRecord) {
  const std::string bytes = valid_bytes();
  expect_rejected(bytes.substr(0, bytes.size() - 1), "last byte missing");
  expect_rejected(bytes.substr(0, bytes.size() - kRecordBytes + 3),
                  "record cut after 3 bytes");
}

TEST(TraceFormat, RejectsTrailingGarbage) {
  expect_rejected(valid_bytes() + "extra", "bytes past the promised length");
}

TEST(TraceFormat, RejectsWrongMagicAndVersion) {
  std::string bytes = valid_bytes();
  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  expect_rejected(bad_magic, "wrong magic");

  std::string bad_version = bytes;
  bad_version[8] = 9;  // u32 version little-endian low byte
  expect_rejected(bad_version, "foreign version");

  const std::string path = temp_path("badver.trace");
  spit(path, bad_version);
  Trace t;
  std::string err;
  ASSERT_FALSE(read_trace_file(path, &t, &err));
  EXPECT_NE(err.find("version"), std::string::npos) << err;
}

TEST(TraceFormat, RejectsZeroRegionFile) {
  std::string bytes = valid_bytes();
  bytes[12] = bytes[13] = bytes[14] = bytes[15] = 0;  // region_count = 0
  expect_rejected(bytes, "zero regions");
}

TEST(TraceFormat, RejectsAbsurdRegionCount) {
  std::string bytes = valid_bytes();
  bytes[12] = static_cast<char>(0xFF);  // region_count = huge
  bytes[13] = static_cast<char>(0xFF);
  bytes[14] = static_cast<char>(0xFF);
  bytes[15] = static_cast<char>(0x7F);
  expect_rejected(bytes, "region count beyond limit");
}

TEST(TraceFormat, RejectsRecordCountMismatch) {
  std::string bytes = valid_bytes();
  bytes[16] = static_cast<char>(bytes[16] + 1);  // record_count += 1, no bytes
  expect_rejected(bytes, "count promises more records than the file holds");
}

// Byte offsets of the first record's fields (header + 2 region entries).
constexpr size_t kRec0 = kHeaderBytes + 2 * kRegionEntryBytes;

TEST(TraceFormat, RejectsRegionIndexOutOfRange) {
  std::string bytes = valid_bytes();
  bytes[kRec0 + 2] = static_cast<char>(0xFF);  // u16 region index
  bytes[kRec0 + 3] = static_cast<char>(0xFF);
  const std::string path = temp_path("oor.trace");
  spit(path, bytes);
  Trace t;
  std::string err;
  ASSERT_FALSE(read_trace_file(path, &t, &err));
  EXPECT_NE(err.find("out of range"), std::string::npos) << err;
}

TEST(TraceFormat, RejectsOffsetPastRegionEnd) {
  std::string bytes = valid_bytes();
  for (size_t b = 0; b < 8; ++b)
    bytes[kRec0 + 8 + b] = static_cast<char>(0xF4);  // u64 offset = huge, 4-aligned
  const std::string path = temp_path("pastend.trace");
  spit(path, bytes);
  Trace t;
  std::string err;
  ASSERT_FALSE(read_trace_file(path, &t, &err));
  EXPECT_NE(err.find("past region"), std::string::npos) << err;
}

TEST(TraceFormat, RejectsBadOpSizeAlignmentAndReservedBytes) {
  const std::string base = valid_bytes();
  {
    std::string bytes = base;
    bytes[kRec0] = 7;  // op
    expect_reader_rejects(bytes, "unknown op");
  }
  {
    std::string bytes = base;
    bytes[kRec0 + 1] = 1;  // reserved byte
    expect_reader_rejects(bytes, "nonzero record reserved byte");
  }
  for (uint32_t bad_size : {0u, 2u, 6u, kMaxRecordSize + 4}) {
    std::string bytes = base;
    for (size_t b = 0; b < 4; ++b)
      bytes[kRec0 + 4 + b] = static_cast<char>((bad_size >> (8 * b)) & 0xFF);
    expect_reader_rejects(bytes, "bad size " + std::to_string(bad_size));
  }
  {
    std::string bytes = base;
    bytes[kRec0 + 8] = 2;  // offset = 2: unaligned
    for (size_t b = 1; b < 8; ++b) bytes[kRec0 + 8 + b] = 0;
    expect_reader_rejects(bytes, "unaligned offset");
  }
}

TEST(TraceFormat, RejectsHostileRegionTable) {
  const std::string base = valid_bytes();
  constexpr size_t kRegion0 = kHeaderBytes;
  {
    std::string bytes = base;
    bytes[kRegion0] = 0;  // empty name
    expect_rejected(bytes, "empty region name");
  }
  {
    std::string bytes = base;
    // bytes = 2^40: single region beyond kMaxRegionBytes.
    for (size_t b = 0; b < 8; ++b) bytes[kRegion0 + kRegionNameBytes + b] = 0;
    bytes[kRegion0 + kRegionNameBytes + 5] = 1;
    expect_rejected(bytes, "region size beyond limit");
  }
  {
    std::string bytes = base;
    bytes[kRegion0 + kRegionNameBytes + 8] = 0x04;  // unknown flag bit
    expect_rejected(bytes, "unknown region flags");
  }
  {
    std::string bytes = base;
    bytes[kRegion0 + kRegionNameBytes + 12] = 1;  // reserved field
    expect_rejected(bytes, "nonzero region reserved field");
  }
  {
    std::string bytes = base;
    bytes[kRegion0 + kRegionNameBytes - 2] = 'x';  // nonzero name padding
    expect_rejected(bytes, "nonzero name padding");
  }
  {
    // Duplicate region names: copy region 0's name field over region 1's.
    std::string bytes = base;
    for (size_t b = 0; b < kRegionNameBytes; ++b)
      bytes[kRegion0 + kRegionEntryBytes + b] = bytes[kRegion0 + b];
    expect_rejected(bytes, "duplicate region names");
  }
}

TEST(TraceFormat, WriterRefusesInvalidTraces) {
  std::string err;
  Trace t = small_trace();
  t.records[0].region = 99;
  EXPECT_FALSE(write_trace_file(temp_path("w1.trace"), t, &err));
  EXPECT_NE(err.find("out of range"), std::string::npos) << err;

  Trace zero;
  EXPECT_FALSE(write_trace_file(temp_path("w2.trace"), zero, &err));
  EXPECT_NE(err.find("zero regions"), std::string::npos) << err;

  Trace dup = small_trace();
  dup.regions[1].name = dup.regions[0].name;
  EXPECT_FALSE(write_trace_file(temp_path("w3.trace"), dup, &err));
  EXPECT_NE(err.find("duplicate"), std::string::npos) << err;

  Trace past = small_trace();
  past.records[0].offset = past.regions[past.records[0].region].bytes;
  EXPECT_FALSE(write_trace_file(temp_path("w4.trace"), past, &err));
  EXPECT_NE(err.find("past region"), std::string::npos) << err;
}

TEST(TraceFormat, FailedWriteLeavesNoFileBehind) {
  const std::string path = temp_path("never.trace");
  Trace bad;
  std::string err;
  ASSERT_FALSE(write_trace_file(path, bad, &err));
  std::ifstream in(path);
  EXPECT_FALSE(in.good()) << "invalid trace must not be materialized";
}

}  // namespace
}  // namespace trace
}  // namespace avr
