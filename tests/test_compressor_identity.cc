// Golden-capture pin for the compressor datapath: the full CompressedBlock
// encoding (method, bias, summary, outlier bitmap, exact outlier bits,
// avg_error) plus the reconstructed float bits, folded into one FNV-1a
// digest per workload over a corpus of blocks taken from each workload
// generator's real memory contents. The digests below were captured on the
// pre-pipeline compressor (commit c056ccf): the staged scratch-reusing
// pipeline must reproduce every encoding byte for byte.
//
// The corpus comes from functional (timing=false) workload runs, so the
// digests inherit the workloads' libm usage — they are pinned for the
// glibc/x86-64 toolchain this repo builds and tests on (the same contract
// the golden-run output-error metric already relies on).
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <map>
#include <string>

#include "avr/compressor.hh"
#include "common/fp_bits.hh"
#include "harness/experiment.hh"
#include "runtime/system.hh"
#include "workloads/workload_registry.hh"

namespace avr {
namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void fold_bytes(uint64_t& h, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) h = (h ^ p[i]) * kFnvPrime;
}

template <typename T>
void fold(uint64_t& h, T v) {
  fold_bytes(h, &v, sizeof(v));
}

/// Folds one compression attempt (or its absence) and, on success, the full
/// reconstruction, into the digest.
void fold_attempt(uint64_t& h, const Compressor& comp,
                  std::span<const float, kValuesPerBlock> vals, DType dtype) {
  auto att = comp.compress(vals, dtype);
  if (!att) {
    fold<uint8_t>(h, 0xEE);  // "did not compress" marker
    return;
  }
  fold<uint8_t>(h, 0x01);
  fold(h, static_cast<uint8_t>(att->block.method));
  fold(h, static_cast<uint8_t>(att->block.dtype));
  fold(h, att->block.bias);
  for (int32_t s : att->block.summary) fold(h, s);
  for (uint64_t w : att->block.outlier_map.words()) fold(h, w);
  fold(h, static_cast<uint32_t>(att->block.outliers.size()));
  for (uint32_t i = 0; i < att->block.outliers.size(); ++i)
    fold(h, att->block.outliers[i]);
  fold(h, att->block.lines());
  fold(h, std::bit_cast<uint64_t>(att->avg_error));

  std::array<float, kValuesPerBlock> out;
  comp.reconstruct(att->block, out);
  for (float v : out) fold(h, f32_bits(v));
}

/// Runs `name` functionally and digests a deterministic sample of blocks
/// from every approximable region (up to ~48 per region, evenly strided).
uint64_t workload_digest(const std::string& name) {
  auto wl = make_workload(name);
  const SimConfig cfg = ExperimentRunner({}, false, "").config_for(*wl);
  System sys(Design::kBaseline, cfg, 1, /*timing=*/false);
  wl->run(sys);

  const Compressor comp(cfg.avr);
  uint64_t h = kFnvOffset;
  for (const MemoryRegion& r : sys.regions().regions()) {
    if (!r.approx) continue;
    const uint64_t nblocks = r.bytes / kBlockBytes;
    const uint64_t stride = nblocks > 48 ? nblocks / 48 : 1;
    for (uint64_t b = 0; b < nblocks; b += stride) {
      const uint64_t addr = r.base + b * kBlockBytes;
      fold_attempt(h, comp, sys.regions().block_values(addr), r.dtype);
    }
  }
  return h;
}

// Captured on the pre-refactor compressor; see the header comment.
const std::map<std::string, uint64_t> kGolden = {
    {"heat", 0x79ea463748e3eebeull},     {"lattice", 0x4d463e18c9cf732bull},
    {"lbm", 0xa1e4d1942ef89044ull},      {"orbit", 0x332a89c7c9a37676ull},
    {"kmeans", 0x59b32a996f3b9e6full},   {"bscholes", 0x99ab328c9e97c3d0ull},
    {"wrf", 0x501130ea2ec9d9feull},
};

class CompressorIdentity : public ::testing::TestWithParam<std::string> {};

TEST_P(CompressorIdentity, EncodingsByteIdenticalToCapture) {
  const std::string wl = GetParam();
  const uint64_t digest = workload_digest(wl);
  EXPECT_EQ(digest, kGolden.at(wl))
      << "compressor output drifted for workload '" << wl << "'; digest is 0x"
      << std::hex << digest;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, CompressorIdentity,
                         ::testing::ValuesIn(workload_names()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace avr
