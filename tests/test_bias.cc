#include "avr/bias.hh"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <limits>

#include "common/fp_bits.hh"

namespace avr {
namespace {

using Block = std::array<float, kValuesPerBlock>;

Block filled(float v) {
  Block b;
  b.fill(v);
  return b;
}

TEST(Bias, LargeValuesGetNegativeBias) {
  const Block b = filled(1e20f);
  const int8_t bias = choose_bias(b);
  EXPECT_LT(bias, 0);
  // After biasing, values must land near the target exponent.
  Block c = b;
  apply_bias(c, bias);
  EXPECT_EQ(f32_exponent(c[0]), static_cast<uint32_t>(kBiasTargetExponent));
}

TEST(Bias, TinyValuesGetPositiveBias) {
  const Block b = filled(1e-20f);
  const int8_t bias = choose_bias(b);
  EXPECT_GT(bias, 0);
}

TEST(Bias, SkippedOnNanOrInf) {
  Block b = filled(1.0f);
  b[17] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_EQ(choose_bias(b), 0);
  b[17] = std::numeric_limits<float>::infinity();
  EXPECT_EQ(choose_bias(b), 0);
}

TEST(Bias, AllZeroBlockGetsZeroBias) {
  EXPECT_EQ(choose_bias(filled(0.0f)), 0);
}

TEST(Bias, NeverOverflowsAnyValue) {
  // Huge dynamic range: bias must keep every exponent within [1, 254].
  Block b = filled(1.0f);
  b[0] = 1e35f;
  b[1] = 1e-35f;
  const int8_t bias = choose_bias(b);
  for (float v : b) {
    const uint32_t e = f32_exponent(v);
    if (e == 0) continue;
    const int be = static_cast<int>(e) + bias;
    EXPECT_GE(be, 1);
    EXPECT_LE(be, 254);
  }
}

TEST(Bias, ApplyUnbiasRoundTripsExactly) {
  Block b;
  for (uint32_t i = 0; i < kValuesPerBlock; ++i)
    b[i] = std::ldexp(1.0f + 0.001f * static_cast<float>(i), (i % 40) - 20);
  const int8_t bias = choose_bias(b);
  Block c = b;
  apply_bias(c, bias);
  for (uint32_t i = 0; i < kValuesPerBlock; ++i)
    EXPECT_EQ(f32_bits(unbias_value(c[i], bias)), f32_bits(b[i])) << i;
}

TEST(Bias, BiasIsExactPowerOfTwoScaling) {
  Block b = filled(3.7f);
  const int8_t bias = choose_bias(b);
  Block c = b;
  apply_bias(c, bias);
  EXPECT_FLOAT_EQ(c[0], std::ldexp(3.7f, bias));
}

TEST(Bias, ZeroValuesUntouchedByApply) {
  Block b = filled(1000.0f);
  b[3] = 0.0f;
  const int8_t bias = choose_bias(b);
  Block c = b;
  apply_bias(c, bias);
  EXPECT_EQ(f32_bits(c[3]), f32_bits(0.0f));
}

TEST(Bias, UnbiasZeroBiasIsIdentity) {
  EXPECT_FLOAT_EQ(unbias_value(5.5f, 0), 5.5f);
}

TEST(Bias, TypicalMagnitudesLandInFixedRange) {
  // Values around 1.0, 1e3 and 1e-3 must all end up well inside Q16.16
  // (|v| < 32768) after biasing.
  for (float mag : {1.0f, 1e3f, 1e-3f, 1e6f, 1e-6f}) {
    Block b = filled(mag);
    const int8_t bias = choose_bias(b);
    Block c = b;
    apply_bias(c, bias);
    EXPECT_LT(std::abs(c[0]), 32768.0f) << mag;
    EXPECT_GT(std::abs(c[0]), 1.0f / 65536.0f) << mag;
  }
}

}  // namespace
}  // namespace avr
