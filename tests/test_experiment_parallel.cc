// Parallel sweep tests: run_all must produce bit-identical results to serial
// run() calls, stay deterministic across repeated sweeps, and keep the
// result/golden caches race-free under concurrent points.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "harness/experiment.hh"
#include "workloads/workload_registry.hh"

namespace avr {
namespace {

const std::vector<std::string> kWorkloads = {"bscholes", "orbit", "kmeans"};
const std::vector<Design> kDesigns = {Design::kBaseline, Design::kTruncate,
                                      Design::kAvr};

void expect_same(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.workload, b.workload);
  EXPECT_EQ(a.design, b.design);
  EXPECT_EQ(a.m.cycles, b.m.cycles);
  EXPECT_EQ(a.m.instructions, b.m.instructions);
  EXPECT_EQ(a.m.llc_requests, b.m.llc_requests);
  EXPECT_EQ(a.m.llc_misses, b.m.llc_misses);
  EXPECT_EQ(a.m.dram_bytes, b.m.dram_bytes);
  EXPECT_EQ(a.m.dram_bytes_approx, b.m.dram_bytes_approx);
  EXPECT_EQ(a.m.metadata_bytes, b.m.metadata_bytes);
  EXPECT_EQ(a.m.footprint_bytes, b.m.footprint_bytes);
  EXPECT_EQ(a.m.approx_bytes, b.m.approx_bytes);
  EXPECT_DOUBLE_EQ(a.m.ipc, b.m.ipc);
  EXPECT_DOUBLE_EQ(a.m.amat, b.m.amat);
  EXPECT_DOUBLE_EQ(a.m.llc_mpki, b.m.llc_mpki);
  EXPECT_DOUBLE_EQ(a.m.compression_ratio, b.m.compression_ratio);
  EXPECT_DOUBLE_EQ(a.m.output_error, b.m.output_error);
  EXPECT_DOUBLE_EQ(a.m.energy.total(), b.m.energy.total());
  EXPECT_EQ(a.m.detail, b.m.detail);
}

TEST(ExperimentRunnerParallel, RunAllMatchesSerialRun) {
  ExperimentRunner serial({}, false, "");
  ExperimentRunner parallel({}, false, "");

  std::vector<ExperimentResult> want;
  for (const auto& w : kWorkloads)
    for (Design d : kDesigns) want.push_back(serial.run(w, d));

  const auto got = parallel.run_all(kWorkloads, kDesigns, 4);
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) expect_same(got[i], want[i]);
}

TEST(ExperimentRunnerParallel, SingleThreadPoolMatchesSerial) {
  ExperimentRunner serial({}, false, "");
  ExperimentRunner pool1({}, false, "");
  const auto got = pool1.run_all({"bscholes"}, kDesigns, 1);
  ASSERT_EQ(got.size(), kDesigns.size());
  for (size_t i = 0; i < kDesigns.size(); ++i)
    expect_same(got[i], serial.run("bscholes", kDesigns[i]));
}

TEST(ExperimentRunnerParallel, RepeatedSweepIsCachedAndIdentical) {
  ExperimentRunner r({}, false, "");
  const auto first = r.run_all(kWorkloads, kDesigns, 4);
  // Second sweep must be pure cache lookup with identical values.
  const auto second = r.run_all(kWorkloads, kDesigns, 4);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) expect_same(first[i], second[i]);
}

TEST(ExperimentRunnerParallel, ResultsInWorkloadMajorOrder) {
  ExperimentRunner r({}, false, "");
  const auto got = r.run_all({"bscholes", "wrf"}, {Design::kBaseline, Design::kAvr}, 2);
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got[0].workload, "bscholes");
  EXPECT_EQ(got[0].design, Design::kBaseline);
  EXPECT_EQ(got[1].workload, "bscholes");
  EXPECT_EQ(got[1].design, Design::kAvr);
  EXPECT_EQ(got[2].workload, "wrf");
  EXPECT_EQ(got[2].design, Design::kBaseline);
  EXPECT_EQ(got[3].workload, "wrf");
  EXPECT_EQ(got[3].design, Design::kAvr);
}

TEST(ExperimentRunnerParallel, ConcurrentOverlappingRunsAreRaceFree) {
  // Many threads hammer run() on overlapping points (same workloads, same
  // designs) — the caches must stay consistent and every thread must observe
  // the same values. Run under TSan/ASan via -DAVR_SANITIZE=ON for the full
  // story; value equality catches torn results even without it.
  ExperimentRunner r({}, false, "");
  constexpr int kThreads = 8;
  std::vector<std::vector<ExperimentResult>> seen(kThreads);
  std::atomic<int> ready{0};
  std::vector<std::thread> ts;
  ts.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      for (const auto& w : {std::string("bscholes"), std::string("wrf")})
        for (Design d : {Design::kBaseline, Design::kAvr})
          seen[t].push_back(r.run(w, d));
    });
  }
  for (auto& t : ts) t.join();
  for (int t = 1; t < kThreads; ++t) {
    ASSERT_EQ(seen[t].size(), seen[0].size());
    for (size_t i = 0; i < seen[0].size(); ++i) expect_same(seen[t][i], seen[0][i]);
  }
}

TEST(ExperimentRunnerParallel, UnknownWorkloadPropagatesException) {
  ExperimentRunner r({}, false, "");
  EXPECT_THROW(r.run_all({"bscholes", "nosuch"}, {Design::kBaseline}, 4),
               std::invalid_argument);
}

}  // namespace
}  // namespace avr
