#include "dram/dram.hh"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/types.hh"

namespace avr {
namespace {

DramConfig cfg() { return DramConfig{}; }

TEST(Dram, ReadReturnsPositiveLatency) {
  Dram d(cfg());
  EXPECT_GT(d.read(0, 0x1000, 64), 0u);
}

TEST(Dram, RowHitFasterThanRowConflict) {
  Dram d(cfg());
  // Prime a row.
  d.read(0, 0x0, 64);
  // Same row (same 1 KB block region on the same bank/row).
  const uint64_t hit = d.read(100000, 0x40, 64);
  // Conflict: same bank, different row. Bank stride = row_bytes per channel
  // group; pick a far address mapping to bank 0 row 1.
  Dram d2(cfg());
  d2.read(0, 0x0, 64);
  const uint64_t row_stride =
      cfg().row_bytes * cfg().channels * cfg().banks_per_channel;
  const uint64_t miss = d2.read(100000, row_stride, 64);
  EXPECT_LT(hit, miss);
}

TEST(Dram, BlockReadStreamsCheaperThanScatteredLines) {
  // One 1 KB block read must complete far sooner than 16 dependent
  // line reads (the core of AVR's bandwidth advantage).
  Dram a(cfg());
  const uint64_t block_lat = a.read(0, 0x10000, 1024);

  Dram b(cfg());
  uint64_t t = 0;
  for (int i = 0; i < 16; ++i) t += b.read(t, 0x10000 + i * 64, 64);
  EXPECT_LT(block_lat * 4, t);  // at least 4x cheaper in total service time
}

TEST(Dram, BytesAccounting) {
  Dram d(cfg());
  d.read(0, 0x0, 64);
  d.write(0, 0x40, 64);
  d.read(0, 0x10000, 1024);
  EXPECT_EQ(d.bytes_read(), 64u + 1024u);
  EXPECT_EQ(d.bytes_written(), 64u);
  EXPECT_EQ(d.total_bytes(), 64u + 1024u + 64u);
}

TEST(Dram, HalfLineTransfersCountHalfBytes) {
  Dram d(cfg());
  d.read(0, 0x0, 32);  // Truncate-style half-line
  EXPECT_EQ(d.bytes_read(), 32u);
  Dram d2(cfg());
  const uint64_t full = d2.read(0, 0x0, 64);
  Dram d3(cfg());
  const uint64_t half = d3.read(0, 0x0, 32);
  EXPECT_LE(half, full);
}

TEST(Dram, ReadAndWriteLatencyStatsBothAdvance) {
  // Dram::write used to silently drop the latency accumulation that
  // Dram::read performs; both must advance their *_latency_total counter.
  Dram d(cfg());
  const uint64_t rlat = d.read(0, 0x0, 64);
  EXPECT_EQ(d.counters().read_latency_total, rlat);
  EXPECT_EQ(d.counters().write_latency_total, 0u);
  const uint64_t wlat = d.write(0, 0x10000, 64);
  EXPECT_GT(wlat, 0u);
  EXPECT_EQ(d.counters().write_latency_total, wlat);
  EXPECT_EQ(d.counters().read_latency_total, rlat);  // unchanged by the write
  // The snapshot exposes both under the historical key names.
  EXPECT_EQ(d.stats().get("read_latency_total"), rlat);
  EXPECT_EQ(d.stats().get("write_latency_total"), wlat);
}

TEST(Dram, StatsSnapshotMatchesCounters) {
  Dram d(cfg());
  d.read(0, 0x0, 1024);
  d.write(0, 0x40, 64);
  const StatGroup g = d.stats();
  EXPECT_EQ(g.get("reads"), d.counters().reads);
  EXPECT_EQ(g.get("writes"), d.counters().writes);
  EXPECT_EQ(g.get("bytes_read"), d.counters().bytes_read);
  EXPECT_EQ(g.get("bytes_written"), d.counters().bytes_written);
  EXPECT_EQ(g.get("activations"), d.counters().activations);
  // Zero-valued counters are omitted from the snapshot (a never-touched
  // string key was absent from the old map-backed StatGroup too).
  Dram fresh(cfg());
  EXPECT_EQ(fresh.stats().counters().size(), 0u);
}

TEST(DramConfigValidation, RowSmallerThanBlockIsRejected) {
  // row_bytes < 1 KB made bank_of/row_of divide by zero in the seed model.
  DramConfig c;
  c.row_bytes = 512;
  EXPECT_THROW(Dram{c}, std::invalid_argument);
}

TEST(DramConfigValidation, NonPowerOfTwoGeometryIsRejected) {
  {
    DramConfig c;
    c.channels = 3;
    EXPECT_THROW(Dram{c}, std::invalid_argument);
  }
  {
    DramConfig c;
    c.banks_per_channel = 12;
    EXPECT_THROW(Dram{c}, std::invalid_argument);
  }
  {
    DramConfig c;
    c.row_bytes = 3000;
    EXPECT_THROW(Dram{c}, std::invalid_argument);
  }
}

TEST(DramConfigValidation, ZeroFieldsAreRejected) {
  for (auto mutate : {+[](DramConfig& c) { c.channels = 0; },
                      +[](DramConfig& c) { c.banks_per_channel = 0; },
                      +[](DramConfig& c) { c.row_bytes = 0; },
                      +[](DramConfig& c) { c.cpu_per_dram_cycle = 0; }}) {
    DramConfig c;
    mutate(c);
    EXPECT_THROW(Dram{c}, std::invalid_argument);
  }
}

TEST(DramConfigValidation, ValidConfigsConstructAndMapBanks) {
  // A legal non-default geometry must construct and spread rows over banks.
  DramConfig c;
  c.channels = 4;
  c.banks_per_channel = 8;
  c.row_bytes = 4096;
  Dram d(c);
  d.read(0, 0x0, 64);
  EXPECT_EQ(d.activations(), 1u);
}

TEST(Dram, ActivationsCounted) {
  Dram d(cfg());
  d.read(0, 0x0, 64);
  EXPECT_EQ(d.activations(), 1u);
  d.read(1000, 0x40, 64);  // row hit: no new activation
  EXPECT_EQ(d.activations(), 1u);
}

TEST(Dram, ChannelsInterleaveAtBlockGranularity) {
  Dram d(cfg());
  // Two consecutive 1 KB blocks land on different channels: issuing both at
  // t=0 should overlap rather than serialize on one bus.
  const uint64_t l1 = d.read(0, 0x0, 1024);
  const uint64_t l2 = d.read(0, 0x400, 1024);
  // If they were on one channel, the second would wait a full block burst.
  EXPECT_LT(l2, l1 + 16 * cfg().t_burst * cfg().cpu_per_dram_cycle / 2);
}

TEST(Dram, BusContentionDelaysBackToBackReads) {
  Dram d(cfg());
  const uint64_t first = d.read(0, 0x0, 1024);
  // Same channel (stride 2 blocks), immediately after: queues behind.
  const uint64_t second = d.read(0, 0x800, 1024);
  EXPECT_GT(second, first);
}

TEST(Dram, LatencyIndependentOfAbsoluteTime) {
  Dram a(cfg()), b(cfg());
  const uint64_t l0 = a.read(0, 0x0, 64);
  const uint64_t l1 = b.read(1'000'000, 0x0, 64);
  EXPECT_EQ(l0, l1);
}

class DramBurstSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(DramBurstSweep, LatencyMonotoneInSize) {
  const uint32_t lines = GetParam();
  Dram a(cfg()), b(cfg());
  const uint64_t small = a.read(0, 0x0, 64);
  const uint64_t big = b.read(0, 0x0, lines * 64);
  EXPECT_GE(big, small);
  // First-line latency grows only by burst slots, not by full penalties.
  EXPECT_LE(big, small + lines * cfg().t_burst * cfg().cpu_per_dram_cycle);
}

INSTANTIATE_TEST_SUITE_P(Lines, DramBurstSweep, ::testing::Values(1u, 2u, 4u, 8u, 16u));

}  // namespace
}  // namespace avr
