// Shard slicing tests: spec parsing, exact grid partitioning (union of N
// shards == full grid, pairwise disjoint), and the end-to-end acceptance
// path — N avr_sweep processes against one cache produce the same merged
// cache as a single in-process sweep.
#include "harness/sweep.hh"

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "harness/result_cache.hh"
#include "workloads/workload_registry.hh"

namespace avr {
namespace {

using sweep::Point;

TEST(SweepShard, ParseShardAcceptsValidSpecs) {
  const auto s = sweep::parse_shard("1/3");
  EXPECT_EQ(s.index, 1u);
  EXPECT_EQ(s.count, 3u);
  const auto whole = sweep::parse_shard("0/1");
  EXPECT_EQ(whole.index, 0u);
  EXPECT_EQ(whole.count, 1u);
}

TEST(SweepShard, ParseShardRejectsBadSpecs) {
  for (const char* bad :
       {"", "3", "1/", "/3", "3/3", "4/3", "-1/3", "0/0", "0/-2", "a/b", "1/3x"})
    EXPECT_THROW(sweep::parse_shard(bad), std::invalid_argument) << bad;
}

TEST(SweepShard, FullGridIsWorkloadMajor) {
  const auto grid = sweep::full_grid({"a", "b"}, {Design::kBaseline, Design::kAvr});
  ASSERT_EQ(grid.size(), 4u);
  EXPECT_EQ(grid[0], Point("a", Design::kBaseline));
  EXPECT_EQ(grid[1], Point("a", Design::kAvr));
  EXPECT_EQ(grid[2], Point("b", Design::kBaseline));
  EXPECT_EQ(grid[3], Point("b", Design::kAvr));
}

TEST(SweepShard, SlicesPartitionTheGrid) {
  const auto grid =
      sweep::full_grid(workload_names(), ExperimentRunner::paper_designs());
  ASSERT_EQ(grid.size(), 35u);
  for (unsigned n : {1u, 2u, 3u, 5u, 7u, 35u, 40u}) {
    std::multiset<Point> merged;
    size_t total = 0;
    for (unsigned i = 0; i < n; ++i) {
      const auto slice = sweep::shard_slice(grid, {i, n});
      total += slice.size();
      merged.insert(slice.begin(), slice.end());
      // Balanced to within one point.
      EXPECT_LE(slice.size(), (grid.size() + n - 1) / n);
    }
    EXPECT_EQ(total, grid.size()) << "N=" << n;
    // A multiset equal to the grid's point set == union covers everything
    // exactly once (disjoint + complete).
    EXPECT_EQ(merged, std::multiset<Point>(grid.begin(), grid.end()));
  }
}

TEST(SweepShard, DesignAndWorkloadListParsing) {
  EXPECT_EQ(sweep::design_from_name("AVR"), Design::kAvr);
  EXPECT_EQ(sweep::design_from_name("avr"), Design::kAvr);
  EXPECT_EQ(sweep::design_from_name("ZeroAVR"), Design::kZeroAvr);
  EXPECT_THROW(sweep::design_from_name("nosuch"), std::invalid_argument);

  EXPECT_EQ(sweep::parse_design_list(""), ExperimentRunner::paper_designs());
  const auto d = sweep::parse_design_list("baseline,AVR");
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d[0], Design::kBaseline);
  EXPECT_EQ(d[1], Design::kAvr);

  EXPECT_EQ(sweep::parse_workload_list(""), workload_names());
  EXPECT_EQ(sweep::parse_workload_list("kmeans,heat"),
            (std::vector<std::string>{"kmeans", "heat"}));
  EXPECT_THROW(sweep::parse_workload_list("kmeans,nosuch"), std::invalid_argument);
}

// ---- end-to-end: N processes, one cache ------------------------------------

std::string sweep_binary() {
  const char* bin = std::getenv("AVR_SWEEP_BIN");
  return bin ? bin : "";
}

pid_t spawn_sweep(const std::vector<std::string>& args) {
  const pid_t pid = fork();
  if (pid != 0) return pid;
  std::vector<char*> argv;
  for (const auto& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);
  execv(argv[0], argv.data());
  _exit(127);  // exec failed
}

TEST(SweepShard, ThreeShardProcessesMatchSingleProcessSweep) {
  const std::string bin = sweep_binary();
  if (bin.empty()) GTEST_SKIP() << "AVR_SWEEP_BIN not set";

  const std::string cache =
      (std::filesystem::temp_directory_path() /
       ("avr_shard_e2e_" + std::to_string(::getpid()) + ".csv"))
          .string();
  std::remove(cache.c_str());

  // A small but representative sub-grid (6 points across 2 workloads and 3
  // designs, including AVR) to keep the three processes fast.
  const std::string workloads = "kmeans,bscholes";
  const std::string designs = "baseline,truncate,AVR";

  // All three shards run concurrently against ONE cache path — this is the
  // writer contract the flock+O_APPEND records exist for.
  std::vector<pid_t> pids;
  for (int i = 0; i < 3; ++i)
    pids.push_back(spawn_sweep({bin, "--shard", std::to_string(i) + "/3",
                                "--workloads", workloads, "--designs", designs,
                                "--cache", cache, "--jobs", "1", "--quiet"}));
  for (pid_t pid : pids) {
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
  }

  const auto merged = load_result_cache(cache);
  const auto grid = sweep::full_grid({"kmeans", "bscholes"},
                                     {Design::kBaseline, Design::kTruncate,
                                      Design::kAvr});
  ASSERT_EQ(merged.size(), grid.size());

  // Values must be identical (wall-clock aside) to a single-process sweep.
  ExperimentRunner single({}, /*verbose=*/false, /*cache_path=*/"");
  for (const auto& [w, d] : grid) {
    ASSERT_TRUE(merged.count({w, d})) << w << " x " << to_string(d);
    ExperimentResult got = merged.at({w, d});
    ExperimentResult want = single.run(w, d);
    got.wall_seconds = 0;
    want.wall_seconds = 0;
    EXPECT_EQ(encode_result_line(got), encode_result_line(want))
        << w << " x " << to_string(d);
  }
  std::remove(cache.c_str());
}

}  // namespace
}  // namespace avr
