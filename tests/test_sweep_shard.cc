// Shard slicing tests: spec parsing, exact grid partitioning (union of N
// shards == full grid, pairwise disjoint), and the end-to-end acceptance
// path — N avr_sweep processes against one cache produce the same merged
// cache as a single in-process sweep.
#include "harness/sweep.hh"

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "harness/result_cache.hh"
#include "workloads/workload_registry.hh"

namespace avr {
namespace {

using sweep::Point;

TEST(SweepShard, ParseShardAcceptsValidSpecs) {
  const auto s = sweep::parse_shard("1/3");
  EXPECT_EQ(s.index, 1u);
  EXPECT_EQ(s.count, 3u);
  const auto whole = sweep::parse_shard("0/1");
  EXPECT_EQ(whole.index, 0u);
  EXPECT_EQ(whole.count, 1u);
}

TEST(SweepShard, ParseShardRejectsBadSpecs) {
  for (const char* bad :
       {"", "3", "1/", "/3", "3/3", "4/3", "-1/3", "0/0", "0/-2", "a/b", "1/3x"})
    EXPECT_THROW(sweep::parse_shard(bad), std::invalid_argument) << bad;
}

TEST(SweepShard, FullGridIsWorkloadMajor) {
  const auto grid = sweep::full_grid({"a", "b"}, {Design::kBaseline, Design::kAvr});
  ASSERT_EQ(grid.size(), 4u);
  EXPECT_EQ(grid[0], Point("a", Design::kBaseline));
  EXPECT_EQ(grid[1], Point("a", Design::kAvr));
  EXPECT_EQ(grid[2], Point("b", Design::kBaseline));
  EXPECT_EQ(grid[3], Point("b", Design::kAvr));
}

TEST(SweepShard, SlicesPartitionTheGrid) {
  const auto grid =
      sweep::full_grid(workload_names(), ExperimentRunner::paper_designs());
  ASSERT_EQ(grid.size(), 35u);
  for (unsigned n : {1u, 2u, 3u, 5u, 7u, 35u, 40u}) {
    std::multiset<Point> merged;
    size_t total = 0;
    for (unsigned i = 0; i < n; ++i) {
      const auto slice = sweep::shard_slice(grid, {i, n});
      total += slice.size();
      merged.insert(slice.begin(), slice.end());
      // Balanced to within one point.
      EXPECT_LE(slice.size(), (grid.size() + n - 1) / n);
    }
    EXPECT_EQ(total, grid.size()) << "N=" << n;
    // A multiset equal to the grid's point set == union covers everything
    // exactly once (disjoint + complete).
    EXPECT_EQ(merged, std::multiset<Point>(grid.begin(), grid.end()));
  }
}

TEST(SweepShard, VariantGridIsT1MajorAndDefaultsToPlainGrid) {
  const auto grid = sweep::full_variant_grid({4, 6}, {"a", "b"},
                                             {Design::kBaseline, Design::kAvr});
  ASSERT_EQ(grid.size(), 8u);
  EXPECT_EQ(grid[0], (sweep::VariantPoint{4, {"a", Design::kBaseline}}));
  EXPECT_EQ(grid[3], (sweep::VariantPoint{4, {"b", Design::kAvr}}));
  EXPECT_EQ(grid[4], (sweep::VariantPoint{6, {"a", Design::kBaseline}}));
  EXPECT_EQ(grid[7], (sweep::VariantPoint{6, {"b", Design::kAvr}}));

  // The default axis {-1} reproduces the historical grid point-for-point.
  const auto plain = sweep::full_grid(workload_names(),
                                      ExperimentRunner::paper_designs());
  const auto variant = sweep::full_variant_grid({-1}, workload_names(),
                                                ExperimentRunner::paper_designs());
  ASSERT_EQ(variant.size(), plain.size());
  for (size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(variant[i].t1, -1);
    EXPECT_EQ(variant[i].point, plain[i]);
  }
}

TEST(SweepShard, VariantSlicesPartitionTheGrid) {
  const auto grid = sweep::full_variant_grid(
      {4, 6, 8}, workload_names(), ExperimentRunner::paper_designs());
  ASSERT_EQ(grid.size(), 105u);
  for (unsigned n : {1u, 3u, 7u, 105u}) {
    std::multiset<sweep::VariantPoint> merged;
    size_t total = 0;
    for (unsigned i = 0; i < n; ++i) {
      const auto slice = sweep::shard_slice(grid, {i, n});
      total += slice.size();
      merged.insert(slice.begin(), slice.end());
      EXPECT_LE(slice.size(), (grid.size() + n - 1) / n);
    }
    EXPECT_EQ(total, grid.size()) << "N=" << n;
    EXPECT_EQ(merged,
              std::multiset<sweep::VariantPoint>(grid.begin(), grid.end()));
  }
}

TEST(SweepShard, VariantConfigsHaveDistinctFingerprints) {
  // t1 == -1 must be THE default config (so existing caches keep working);
  // each forced threshold is a distinct cache key.
  EXPECT_EQ(config_fingerprint(sweep::variant_config(-1)),
            config_fingerprint(SimConfig{}));
  std::set<uint64_t> fps;
  for (int t1 : {-1, 0, 4, 6, 8, 22})
    fps.insert(config_fingerprint(sweep::variant_config(t1)));
  EXPECT_EQ(fps.size(), 6u);
}

TEST(SweepShard, ParseT1List) {
  EXPECT_EQ(sweep::parse_t1_list(""), (std::vector<int>{-1}));
  EXPECT_EQ(sweep::parse_t1_list("4"), (std::vector<int>{4}));
  EXPECT_EQ(sweep::parse_t1_list("4,6,8"), (std::vector<int>{4, 6, 8}));
  for (const char* bad : {"x", "-1", "23", "4.5"})
    EXPECT_THROW(sweep::parse_t1_list(bad), std::invalid_argument) << bad;
}

TEST(SweepShard, ParseMethodsList) {
  using namespace sweep;
  EXPECT_EQ(parse_methods_list(""), (std::vector<int>{kMethodsDefault}));
  EXPECT_EQ(parse_methods_list("1d"), (std::vector<int>{kMethods1D}));
  EXPECT_EQ(parse_methods_list("bdi"), (std::vector<int>{kMethodsBdi}));
  // "avr" is shorthand for the paper's full lossy table (1d+2d).
  EXPECT_EQ(parse_methods_list("avr"), (std::vector<int>{kMethods1D | kMethods2D}));
  EXPECT_EQ(parse_methods_list("avr+bdi"),
            (std::vector<int>{kMethods1D | kMethods2D | kMethodsBdi}));
  EXPECT_EQ(parse_methods_list("1d,avr+bdi"),
            (std::vector<int>{kMethods1D, kMethods1D | kMethods2D | kMethodsBdi}));
  // Empty CSV fields are skipped (same lenience as --t1), but an empty
  // '+'-joined token inside a selection is an error.
  EXPECT_EQ(parse_methods_list("1d,,2d"),
            (std::vector<int>{kMethods1D, kMethods2D}));
  for (const char* bad : {"x", "1d+", "+bdi", "1d++bdi", "3d", "bdi "})
    EXPECT_THROW(parse_methods_list(bad), std::invalid_argument) << bad;
}

TEST(SweepShard, MethodSetName) {
  using namespace sweep;
  EXPECT_EQ(method_set_name(kMethodsDefault), "default");
  EXPECT_EQ(method_set_name(kMethods1D), "1d");
  EXPECT_EQ(method_set_name(kMethods1D | kMethods2D), "1d+2d");
  EXPECT_EQ(method_set_name(kMethods1D | kMethods2D | kMethodsBdi), "1d+2d+bdi");
}

TEST(SweepShard, MethodsGridIsMethodsMajorOutsideT1) {
  using namespace sweep;
  const int avr_bdi = kMethods1D | kMethods2D | kMethodsBdi;
  const auto grid = full_variant_grid({4, 6}, {kMethodsDefault, avr_bdi}, {"a"},
                                      {Design::kAvr});
  ASSERT_EQ(grid.size(), 4u);
  EXPECT_EQ(grid[0], (VariantPoint{4, {"a", Design::kAvr}, kMethodsDefault}));
  EXPECT_EQ(grid[1], (VariantPoint{6, {"a", Design::kAvr}, kMethodsDefault}));
  EXPECT_EQ(grid[2], (VariantPoint{4, {"a", Design::kAvr}, avr_bdi}));
  EXPECT_EQ(grid[3], (VariantPoint{6, {"a", Design::kAvr}, avr_bdi}));

  // The 3-arg overload is the {kMethodsDefault} slice of the 4-arg one.
  const auto legacy = full_variant_grid({4, 6}, {"a"}, {Design::kAvr});
  ASSERT_EQ(legacy.size(), 2u);
  for (size_t i = 0; i < legacy.size(); ++i) EXPECT_EQ(legacy[i], grid[i]);
}

TEST(SweepShard, MethodsVariantConfigFingerprints) {
  using namespace sweep;
  // Explicitly selecting the paper's method set must reproduce the default
  // fingerprint bit-for-bit: "--methods avr" is not a new cache key.
  EXPECT_EQ(config_fingerprint(variant_config(-1, kMethods1D | kMethods2D)),
            config_fingerprint(SimConfig{}));
  // Every other selection is its own key, and the BDI bit composes with --t1.
  std::set<uint64_t> fps;
  for (int m : {kMethodsDefault, kMethods1D, kMethods2D, kMethods1D | kMethods2D,
                kMethods1D | kMethods2D | kMethodsBdi})
    for (int t1 : {-1, 6}) fps.insert(config_fingerprint(variant_config(t1, m)));
  // 5 masks x 2 thresholds, minus the two default==1d+2d collapses.
  EXPECT_EQ(fps.size(), 8u);

  const SimConfig bdi = variant_config(-1, kMethods1D | kMethods2D | kMethodsBdi);
  EXPECT_TRUE(bdi.avr.enable_1d);
  EXPECT_TRUE(bdi.avr.enable_2d);
  EXPECT_TRUE(bdi.avr.enable_bdi_hybrid);
  const SimConfig only_1d = variant_config(-1, kMethods1D);
  EXPECT_TRUE(only_1d.avr.enable_1d);
  EXPECT_FALSE(only_1d.avr.enable_2d);
  EXPECT_FALSE(only_1d.avr.enable_bdi_hybrid);
}

TEST(SweepShard, DesignAndWorkloadListParsing) {
  EXPECT_EQ(sweep::design_from_name("AVR"), Design::kAvr);
  EXPECT_EQ(sweep::design_from_name("avr"), Design::kAvr);
  EXPECT_EQ(sweep::design_from_name("ZeroAVR"), Design::kZeroAvr);
  EXPECT_THROW(sweep::design_from_name("nosuch"), std::invalid_argument);

  EXPECT_EQ(sweep::parse_design_list(""), ExperimentRunner::paper_designs());
  const auto d = sweep::parse_design_list("baseline,AVR");
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d[0], Design::kBaseline);
  EXPECT_EQ(d[1], Design::kAvr);

  EXPECT_EQ(sweep::parse_workload_list(""), workload_names());
  EXPECT_EQ(sweep::parse_workload_list("kmeans,heat"),
            (std::vector<std::string>{"kmeans", "heat"}));
  EXPECT_THROW(sweep::parse_workload_list("kmeans,nosuch"), std::invalid_argument);
}

// ---- end-to-end: N processes, one cache ------------------------------------

std::string sweep_binary() {
  const char* bin = std::getenv("AVR_SWEEP_BIN");
  return bin ? bin : "";
}

pid_t spawn_sweep(const std::vector<std::string>& args) {
  const pid_t pid = fork();
  if (pid != 0) return pid;
  std::vector<char*> argv;
  for (const auto& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);
  execv(argv[0], argv.data());
  _exit(127);  // exec failed
}

TEST(SweepShard, ThreeShardProcessesMatchSingleProcessSweep) {
  const std::string bin = sweep_binary();
  if (bin.empty()) GTEST_SKIP() << "AVR_SWEEP_BIN not set";

  const std::string cache =
      (std::filesystem::temp_directory_path() /
       ("avr_shard_e2e_" + std::to_string(::getpid()) + ".csv"))
          .string();
  std::remove(cache.c_str());

  // A small but representative sub-grid (6 points across 2 workloads and 3
  // designs, including AVR) to keep the three processes fast.
  const std::string workloads = "kmeans,bscholes";
  const std::string designs = "baseline,truncate,AVR";

  // All three shards run concurrently against ONE cache path — this is the
  // writer contract the flock+O_APPEND records exist for.
  std::vector<pid_t> pids;
  for (int i = 0; i < 3; ++i)
    pids.push_back(spawn_sweep({bin, "--shard", std::to_string(i) + "/3",
                                "--workloads", workloads, "--designs", designs,
                                "--cache", cache, "--jobs", "1", "--quiet"}));
  for (pid_t pid : pids) {
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
  }

  const auto merged = load_result_cache(cache);
  const auto grid = sweep::full_grid({"kmeans", "bscholes"},
                                     {Design::kBaseline, Design::kTruncate,
                                      Design::kAvr});
  ASSERT_EQ(merged.size(), grid.size());

  // Values must be identical (wall-clock aside) to a single-process sweep.
  ExperimentRunner single({}, /*verbose=*/false, /*cache_path=*/"");
  for (const auto& [w, d] : grid) {
    ASSERT_TRUE(merged.count({w, d})) << w << " x " << to_string(d);
    ExperimentResult got = merged.at({w, d});
    ExperimentResult want = single.run(w, d);
    got.wall_seconds = 0;
    want.wall_seconds = 0;
    EXPECT_EQ(encode_result_line(got), encode_result_line(want))
        << w << " x " << to_string(d);
  }
  std::remove(cache.c_str());
}

TEST(SweepShard, T1VariantShardsCoexistInOneCache) {
  const std::string bin = sweep_binary();
  if (bin.empty()) GTEST_SKIP() << "AVR_SWEEP_BIN not set";

  const std::string cache =
      (std::filesystem::temp_directory_path() /
       ("avr_t1_e2e_" + std::to_string(::getpid()) + ".csv"))
          .string();
  std::remove(cache.c_str());

  // Two --t1 variants of one cheap AVR point, split across two concurrent
  // shard processes appending to ONE cache file.
  std::vector<pid_t> pids;
  for (int i = 0; i < 2; ++i)
    pids.push_back(spawn_sweep({bin, "--shard", std::to_string(i) + "/2",
                                "--t1", "4,6", "--workloads", "bscholes",
                                "--designs", "AVR", "--cache", cache, "--jobs",
                                "1", "--quiet"}));
  for (pid_t pid : pids) {
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
  }

  // Each variant's record is keyed by its own config fingerprint, and both
  // match an in-process runner simulating under the same forced threshold.
  for (int t1 : {4, 6}) {
    const auto records =
        load_result_cache(cache, config_fingerprint(sweep::variant_config(t1)));
    ASSERT_EQ(records.size(), 1u) << "t1=" << t1;
    ASSERT_TRUE(records.count({"bscholes", Design::kAvr}));
    ExperimentRunner runner(sweep::variant_config(t1), /*verbose=*/false,
                            /*cache_path=*/"");
    ExperimentResult got = records.at({"bscholes", Design::kAvr});
    ExperimentResult want = runner.run("bscholes", Design::kAvr);
    got.wall_seconds = 0;
    want.wall_seconds = 0;
    EXPECT_EQ(encode_result_line(got), encode_result_line(want)) << "t1=" << t1;
  }
  // The default-config grid must see none of the variant records.
  EXPECT_TRUE(
      load_result_cache(cache, config_fingerprint(SimConfig{})).empty());
  std::remove(cache.c_str());
}

}  // namespace
}  // namespace avr
