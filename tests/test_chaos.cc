// Chaos end-to-end: three forked --claim workers run the sweep under a
// deterministic fault schedule that SIGKILLs each of them at a different
// site — mid-result-append (torn line), right after a claim lands (dangling
// intact claim), and after simulation but before the append (lost work).
// The test then audits the wreckage with fsck, repairs it, lets a clean
// finisher worker complete the grid, and asserts the final cache is
// bit-identical (wall-clock excluded) to a fault-free single-process sweep.
//
// This is the capstone for the whole robustness stack: fault injection,
// v5 checksummed records, quarantining loads, claim leases, fsck/repair and
// work stealing all have to cooperate for the final --assert-same to pass.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_inject.hh"
#include "harness/fsck.hh"
#include "harness/result_cache.hh"
#include "harness/sweep.hh"

namespace avr {
namespace {

std::string sweep_binary() {
  const char* bin = std::getenv("AVR_SWEEP_BIN");
  return bin ? bin : "";
}

std::string temp_path(const std::string& tag) {
  return (std::filesystem::temp_directory_path() /
          ("avr_chaos_" + tag + "_" + std::to_string(::getpid()) + ".csv"))
      .string();
}

/// fork/exec one avr_sweep with AVR_FAULTS set (or cleared) in the child.
pid_t spawn_sweep(const std::vector<std::string>& args,
                  const std::string& faults) {
  const pid_t pid = fork();
  if (pid != 0) return pid;
  if (faults.empty())
    unsetenv("AVR_FAULTS");
  else
    setenv("AVR_FAULTS", faults.c_str(), 1);
  std::vector<char*> argv;
  for (const auto& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);
  execv(argv[0], argv.data());
  _exit(127);  // exec failed
}

TEST(Chaos, CrashedWorkersFsckRepairThenFinishBitIdentical) {
  const std::string bin = sweep_binary();
  if (bin.empty()) GTEST_SKIP() << "AVR_SWEEP_BIN not set";
#if !AVR_FAULT_INJECT
  GTEST_SKIP() << "built with AVR_FAULT_INJECT=OFF";
#endif

  const std::string cache = temp_path("e2e");
  const std::string ref = temp_path("ref");
  std::remove(cache.c_str());
  std::remove(ref.c_str());

  // The same 6-point sub-grid the work-stealing e2e uses.
  const std::string workloads = "kmeans,bscholes";
  const std::string designs = "baseline,truncate,AVR";
  const std::vector<std::string> grid_args = {
      "--workloads", workloads, "--designs", designs, "--jobs", "1", "--quiet"};
  auto worker_args = [&](const std::string& owner) {
    std::vector<std::string> a = {bin,       "--claim",       "--owner",
                                  owner,     "--claim-lease", "1",
                                  "--cache", cache};
    a.insert(a.end(), grid_args.begin(), grid_args.end());
    return a;
  };

  // The chaos schedule, seed logged by each worker's "[fault] armed" line.
  // Every death is deterministic: with 6 points and the other two workers
  // dying after at most one landed result each, open points always remain,
  // so each worker's nth trigger is guaranteed to be reached.
  //   w0 dies halfway through its FIRST result append  -> a torn line;
  //   w1 rides an EINTR storm on appends, then dies just AFTER its SECOND
  //      claim lands                                    -> a dangling claim
  //      (its first point's result is the one record that survives);
  //   w2 dies after simulating its first point, before the append
  //                                                     -> lost work.
  const std::vector<std::string> schedules = {
      "1913:cache.append=kill@n1",
      "1913:cache.append=eintr@0.5,claim.stake=kill@n2",
      "1913:point.complete=kill@n1",
  };
  std::vector<pid_t> pids;
  for (size_t i = 0; i < schedules.size(); ++i)
    pids.push_back(
        spawn_sweep(worker_args("w" + std::to_string(i)), schedules[i]));
  for (pid_t pid : pids) {
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status)) << "worker exited instead of dying";
    EXPECT_EQ(WTERMSIG(status), SIGKILL);
  }

  // Let the dead workers' 1-second leases run out, so their dangling claims
  // audit as EXPIRED (crashed worker) rather than live (healthy mid-sweep).
  std::this_thread::sleep_for(std::chrono::milliseconds(2100));

  // The wreckage: one valid result (w1's first point), a torn line, and
  // expired dangling claims from all three corpses.
  const uint64_t now = static_cast<uint64_t>(std::time(nullptr));
  const FsckReport wreck = fsck_cache(cache, now);
  EXPECT_TRUE(wreck.has_issues());
  EXPECT_GE(wreck.corrupt.size(), 1u) << "w0's torn append is missing";
  EXPECT_GE(wreck.dangling_expired, 1u) << "no crashed-worker claims";
  const auto valid_v5 = wreck.result_versions.find(kResultCacheVersion);
  ASSERT_NE(valid_v5, wreck.result_versions.end())
      << "w1's surviving result is missing";
  EXPECT_GE(valid_v5->second, 1u);
  // The quarantining loader must shrug the torn line off already.
  const size_t valid_before = load_result_cache(cache).size();
  EXPECT_GE(valid_before, 1u);

  // Repair: drops the torn line and the expired claims, keeps the results.
  std::string error;
  ASSERT_TRUE(repair_cache(cache, now, &error)) << error;
  const FsckReport post = fsck_cache(cache, now);
  EXPECT_FALSE(post.has_issues());
  EXPECT_FALSE(post.needs_repair());
  EXPECT_EQ(load_result_cache(cache).size(), valid_before);

  // A clean finisher claims and completes the remaining points.
  const pid_t fin = spawn_sweep(worker_args("finisher"), "");
  int status = 0;
  ASSERT_EQ(waitpid(fin, &status, 0), fin);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 0);

  // Coverage + claim audit through the CLI: zero missing, zero dangling.
  {
    std::vector<std::string> a = {bin, "--check", "--cache", cache};
    a.insert(a.end(), grid_args.begin(), grid_args.end());
    const pid_t chk = spawn_sweep(a, "");
    ASSERT_EQ(waitpid(chk, &status, 0), chk);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0) << "--check failed after finish";
  }

  // The acceptance bar: value-identity with a fault-free single-process
  // sweep of the same grid, via the CLI's own comparator.
  {
    std::vector<std::string> a = {bin, "--cache", ref, "--profile-out", ""};
    a.insert(a.end(), grid_args.begin(), grid_args.end());
    const pid_t run = spawn_sweep(a, "");
    ASSERT_EQ(waitpid(run, &status, 0), run);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 0);
  }
  {
    std::vector<std::string> a = {bin, "--assert-same", ref, "--cache", cache};
    a.insert(a.end(), grid_args.begin(), grid_args.end());
    const pid_t cmp = spawn_sweep(a, "");
    ASSERT_EQ(waitpid(cmp, &status, 0), cmp);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0)
        << "chaos-built cache differs from the fault-free sweep";
  }

  for (const std::string& p : {cache, ref}) {
    // Profile sidecars of the dead workers may or may not exist; sweep them.
    std::remove(p.c_str());
    for (int i = 0; i < 3; ++i)
      std::remove((p + ".w" + std::to_string(i) + ".profile.json").c_str());
    std::remove((p + ".finisher.profile.json").c_str());
  }
}

TEST(Chaos, SweepSurvivesTransientFaultStormWithCorrectResults) {
  // Non-lethal chaos: EIO on some appends (ridden out by the bounded
  // retries) and EINTR storms on lock acquisition. The sweep must still
  // exit 0 with a complete, fault-free-identical cache — the injected
  // faults are transient, so no retry budget is ever exhausted.
  const std::string bin = sweep_binary();
  if (bin.empty()) GTEST_SKIP() << "AVR_SWEEP_BIN not set";
#if !AVR_FAULT_INJECT
  GTEST_SKIP() << "built with AVR_FAULT_INJECT=OFF";
#endif

  const std::string cache = temp_path("storm");
  const std::string ref = temp_path("stormref");
  std::remove(cache.c_str());
  std::remove(ref.c_str());
  const std::vector<std::string> grid_args = {
      "--workloads", "kmeans", "--designs", "baseline,AVR", "--jobs", "1",
      "--quiet"};

  std::vector<std::string> a = {bin, "--claim", "--owner", "stormy",
                                "--cache", cache};
  a.insert(a.end(), grid_args.begin(), grid_args.end());
  // p=0.3 EIO per append attempt: P(5 consecutive failures) ~ 0.24% per
  // record; with 2 records the run is overwhelmingly likely to stay inside
  // the retry budget, and the seed makes any surprise replayable.
  const pid_t pid =
      spawn_sweep(a, "7:cache.append=eio@0.3,lock.acquire=eintr@0.9");
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 0);

  std::vector<std::string> r = {bin, "--cache", ref, "--profile-out", ""};
  r.insert(r.end(), grid_args.begin(), grid_args.end());
  const pid_t rp = spawn_sweep(r, "");
  ASSERT_EQ(waitpid(rp, &status, 0), rp);
  ASSERT_EQ(WEXITSTATUS(status), 0);

  std::vector<std::string> c = {bin, "--assert-same", ref, "--cache", cache};
  c.insert(c.end(), grid_args.begin(), grid_args.end());
  const pid_t cp = spawn_sweep(c, "");
  ASSERT_EQ(waitpid(cp, &status, 0), cp);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);

  const FsckReport audit =
      fsck_cache(cache, static_cast<uint64_t>(std::time(nullptr)));
  EXPECT_FALSE(audit.has_issues());

  for (const std::string& p : {cache, ref}) {
    std::remove(p.c_str());
    std::remove((p + ".stormy.profile.json").c_str());
  }
}

}  // namespace
}  // namespace avr
