#include "lossless/bdi.hh"

#include <gtest/gtest.h>

#include <array>
#include <cstring>

#include "common/prng.hh"

namespace avr::lossless {
namespace {

using Line = std::array<std::byte, kCachelineBytes>;

Line from_u32(const std::array<uint32_t, 16>& words) {
  Line l;
  std::memcpy(l.data(), words.data(), kCachelineBytes);
  return l;
}

TEST(Bdi, ZeroLine) {
  Line l{};
  const BdiResult r = encode_line(l);
  EXPECT_EQ(r.encoding, BdiEncoding::kZeros);
  EXPECT_EQ(r.bytes, 1u);
}

TEST(Bdi, RepeatedValue) {
  std::array<uint32_t, 16> w;
  w.fill(0xABCD1234);
  const BdiResult r = encode_line(from_u32(w));
  EXPECT_EQ(r.encoding, BdiEncoding::kRepeated);
  EXPECT_EQ(r.bytes, 8u);
}

TEST(Bdi, SmallIntegerArrayUsesNarrowDeltas) {
  std::array<uint32_t, 16> w;
  for (uint32_t i = 0; i < 16; ++i) w[i] = 1000 + i;  // deltas fit in 1 byte
  const BdiResult r = encode_line(from_u32(w));
  EXPECT_EQ(r.encoding, BdiEncoding::kBase4Delta1);
  EXPECT_EQ(r.bytes, 4u + 16u);
}

TEST(Bdi, MediumDeltasPick2ByteEncoding) {
  std::array<uint32_t, 16> w;
  for (uint32_t i = 0; i < 16; ++i) w[i] = 100000 + 300 * i;
  const BdiResult r = encode_line(from_u32(w));
  EXPECT_EQ(r.encoding, BdiEncoding::kBase4Delta2);
  EXPECT_EQ(r.bytes, 4u + 32u);
}

TEST(Bdi, PointerArrayUses8ByteBase) {
  std::array<uint64_t, 8> ptrs;
  for (uint32_t i = 0; i < 8; ++i) ptrs[i] = 0x7FFF00001000ull + 64 * i;
  Line l;
  std::memcpy(l.data(), ptrs.data(), kCachelineBytes);
  const BdiResult r = encode_line(l);
  EXPECT_EQ(r.encoding, BdiEncoding::kBase8Delta2);
  EXPECT_EQ(r.bytes, 8u + 16u);
}

TEST(Bdi, RandomDataStaysUncompressed) {
  Xoshiro256 rng(9);
  Line l;
  for (auto& b : l) b = static_cast<std::byte>(rng.below(256));
  const BdiResult r = encode_line(l);
  EXPECT_EQ(r.encoding, BdiEncoding::kUncompressed);
  EXPECT_EQ(r.bytes, kCachelineBytes);
}

TEST(Bdi, EncodedSizeNeverExceedsLine) {
  Xoshiro256 rng(10);
  for (int trial = 0; trial < 200; ++trial) {
    Line l;
    const int kind = trial % 4;
    for (uint32_t i = 0; i < kCachelineBytes; ++i)
      l[i] = kind == 0   ? std::byte{0}
             : kind == 1 ? static_cast<std::byte>(i / 8)
                         : static_cast<std::byte>(rng.below(kind == 2 ? 4 : 256));
    const BdiResult r = encode_line(l);
    EXPECT_GE(r.bytes, 1u);
    EXPECT_LE(r.bytes, kCachelineBytes);
  }
}

TEST(Bdi, BufferSumsPerLine) {
  std::vector<std::byte> buf(4 * kCachelineBytes, std::byte{0});
  EXPECT_EQ(encoded_bytes(buf), 4u);  // four zero lines
  // Make one line random.
  Xoshiro256 rng(11);
  for (uint32_t i = 0; i < kCachelineBytes; ++i)
    buf[2 * kCachelineBytes + i] = static_cast<std::byte>(rng.below(256));
  EXPECT_EQ(encoded_bytes(buf), 3u + kCachelineBytes);
}

TEST(Bdi, FloatFieldsCompressModestly) {
  // Smooth float data: high exponent-byte similarity gives BDI some
  // traction but far less than AVR's 16:1 — the reason the paper treats
  // lossless as complementary rather than competing.
  std::array<uint32_t, 16> w;
  for (uint32_t i = 0; i < 16; ++i) {
    const float f = 100.0f + 0.001f * i;
    std::memcpy(&w[i], &f, 4);
  }
  const BdiResult r = encode_line(from_u32(w));
  EXPECT_LE(r.bytes, kCachelineBytes);
}

// ---- delta-class boundaries -------------------------------------------------
// Each signed delta width has a hard edge (int8: [-128,127], int16:
// [-32768,32767], int32). A delta one past the edge must demote the line to
// the next-wider class, never silently truncate.

Line from_u64(const std::array<uint64_t, 8>& words) {
  Line l;
  std::memcpy(l.data(), words.data(), kCachelineBytes);
  return l;
}

TEST(Bdi, Delta1BoundaryAt127) {
  std::array<uint64_t, 8> w;
  w.fill(0x1000000000000000ull);
  w[3] += 127;  // max int8 delta: still b8d1
  EXPECT_EQ(encode_line(from_u64(w)).encoding, BdiEncoding::kBase8Delta1);
  EXPECT_EQ(encode_line(from_u64(w)).bytes, 8u + 8u);
  w[3] += 1;  // 128 breaks int8 -> b8d2
  EXPECT_EQ(encode_line(from_u64(w)).encoding, BdiEncoding::kBase8Delta2);
  EXPECT_EQ(encode_line(from_u64(w)).bytes, 8u + 16u);
}

TEST(Bdi, Delta1NegativeBoundaryAtMinus128) {
  std::array<uint64_t, 8> w;
  w.fill(0x1000000000000000ull);
  w[5] -= 128;  // min int8 delta: still b8d1
  EXPECT_EQ(encode_line(from_u64(w)).encoding, BdiEncoding::kBase8Delta1);
  w[5] -= 1;  // -129 breaks int8 -> b8d2
  EXPECT_EQ(encode_line(from_u64(w)).encoding, BdiEncoding::kBase8Delta2);
}

TEST(Bdi, Delta2BoundaryAt32767) {
  std::array<uint64_t, 8> w;
  w.fill(0x1000000000000000ull);
  // 32767 = max int16. The paired 32-bit view sees tiny deltas too, but
  // b4d2 (36 B) costs more than b8d2 (24 B), so b8d2 must win.
  w[2] += 32767;
  EXPECT_EQ(encode_line(from_u64(w)).encoding, BdiEncoding::kBase8Delta2);
  w[2] += 1;  // 32768 breaks int16 -> b8d4
  EXPECT_EQ(encode_line(from_u64(w)).encoding, BdiEncoding::kBase8Delta4);
  EXPECT_EQ(encode_line(from_u64(w)).bytes, 8u + 32u);
}

TEST(Bdi, Delta4BoundaryLeavesLineUncompressed) {
  std::array<uint64_t, 8> w;
  w.fill(0x1000000000000000ull);
  w[6] += 1ull << 31;  // breaks int32; no wider delta class exists
  EXPECT_EQ(encode_line(from_u64(w)).encoding, BdiEncoding::kUncompressed);
  EXPECT_EQ(encode_line(from_u64(w)).bytes, kCachelineBytes);
}

TEST(Bdi, FourByteBaseDelta1Boundary) {
  std::array<uint32_t, 16> w;
  for (uint32_t i = 0; i < 16; ++i) w[i] = 1000 + i;
  w[9] = 1000 + 128;  // breaks int8 against base 1000 -> b4d2
  // (the 64-bit classes fail: adjacent-word pairing makes huge deltas)
  EXPECT_EQ(encode_line(from_u32(w)).encoding, BdiEncoding::kBase4Delta2);
  w[9] = 1000 + 127;  // back inside int8 -> b4d1 again
  EXPECT_EQ(encode_line(from_u32(w)).encoding, BdiEncoding::kBase4Delta1);
}

TEST(Bdi, EncodingNames) {
  EXPECT_STREQ(to_string(BdiEncoding::kZeros), "zeros");
  EXPECT_STREQ(to_string(BdiEncoding::kUncompressed), "uncompressed");
}

}  // namespace
}  // namespace avr::lossless
