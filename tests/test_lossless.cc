#include "lossless/bdi.hh"

#include <gtest/gtest.h>

#include <array>
#include <cstring>

#include "common/prng.hh"

namespace avr::lossless {
namespace {

using Line = std::array<std::byte, kCachelineBytes>;

Line from_u32(const std::array<uint32_t, 16>& words) {
  Line l;
  std::memcpy(l.data(), words.data(), kCachelineBytes);
  return l;
}

TEST(Bdi, ZeroLine) {
  Line l{};
  const BdiResult r = encode_line(l);
  EXPECT_EQ(r.encoding, BdiEncoding::kZeros);
  EXPECT_EQ(r.bytes, 1u);
}

TEST(Bdi, RepeatedValue) {
  std::array<uint32_t, 16> w;
  w.fill(0xABCD1234);
  const BdiResult r = encode_line(from_u32(w));
  EXPECT_EQ(r.encoding, BdiEncoding::kRepeated);
  EXPECT_EQ(r.bytes, 8u);
}

TEST(Bdi, SmallIntegerArrayUsesNarrowDeltas) {
  std::array<uint32_t, 16> w;
  for (uint32_t i = 0; i < 16; ++i) w[i] = 1000 + i;  // deltas fit in 1 byte
  const BdiResult r = encode_line(from_u32(w));
  EXPECT_EQ(r.encoding, BdiEncoding::kBase4Delta1);
  EXPECT_EQ(r.bytes, 4u + 16u);
}

TEST(Bdi, MediumDeltasPick2ByteEncoding) {
  std::array<uint32_t, 16> w;
  for (uint32_t i = 0; i < 16; ++i) w[i] = 100000 + 300 * i;
  const BdiResult r = encode_line(from_u32(w));
  EXPECT_EQ(r.encoding, BdiEncoding::kBase4Delta2);
  EXPECT_EQ(r.bytes, 4u + 32u);
}

TEST(Bdi, PointerArrayUses8ByteBase) {
  std::array<uint64_t, 8> ptrs;
  for (uint32_t i = 0; i < 8; ++i) ptrs[i] = 0x7FFF00001000ull + 64 * i;
  Line l;
  std::memcpy(l.data(), ptrs.data(), kCachelineBytes);
  const BdiResult r = encode_line(l);
  EXPECT_EQ(r.encoding, BdiEncoding::kBase8Delta2);
  EXPECT_EQ(r.bytes, 8u + 16u);
}

TEST(Bdi, RandomDataStaysUncompressed) {
  Xoshiro256 rng(9);
  Line l;
  for (auto& b : l) b = static_cast<std::byte>(rng.below(256));
  const BdiResult r = encode_line(l);
  EXPECT_EQ(r.encoding, BdiEncoding::kUncompressed);
  EXPECT_EQ(r.bytes, kCachelineBytes);
}

TEST(Bdi, EncodedSizeNeverExceedsLine) {
  Xoshiro256 rng(10);
  for (int trial = 0; trial < 200; ++trial) {
    Line l;
    const int kind = trial % 4;
    for (uint32_t i = 0; i < kCachelineBytes; ++i)
      l[i] = kind == 0   ? std::byte{0}
             : kind == 1 ? static_cast<std::byte>(i / 8)
                         : static_cast<std::byte>(rng.below(kind == 2 ? 4 : 256));
    const BdiResult r = encode_line(l);
    EXPECT_GE(r.bytes, 1u);
    EXPECT_LE(r.bytes, kCachelineBytes);
  }
}

TEST(Bdi, BufferSumsPerLine) {
  std::vector<std::byte> buf(4 * kCachelineBytes, std::byte{0});
  EXPECT_EQ(encoded_bytes(buf), 4u);  // four zero lines
  // Make one line random.
  Xoshiro256 rng(11);
  for (uint32_t i = 0; i < kCachelineBytes; ++i)
    buf[2 * kCachelineBytes + i] = static_cast<std::byte>(rng.below(256));
  EXPECT_EQ(encoded_bytes(buf), 3u + kCachelineBytes);
}

TEST(Bdi, FloatFieldsCompressModestly) {
  // Smooth float data: high exponent-byte similarity gives BDI some
  // traction but far less than AVR's 16:1 — the reason the paper treats
  // lossless as complementary rather than competing.
  std::array<uint32_t, 16> w;
  for (uint32_t i = 0; i < 16; ++i) {
    const float f = 100.0f + 0.001f * i;
    std::memcpy(&w[i], &f, 4);
  }
  const BdiResult r = encode_line(from_u32(w));
  EXPECT_LE(r.bytes, kCachelineBytes);
}

TEST(Bdi, EncodingNames) {
  EXPECT_STREQ(to_string(BdiEncoding::kZeros), "zeros");
  EXPECT_STREQ(to_string(BdiEncoding::kUncompressed), "uncompressed");
}

}  // namespace
}  // namespace avr::lossless
