// Tests of the comparison designs: baseline LLC, Truncate, Doppelganger.
#include <gtest/gtest.h>

#include <cstring>

#include "baselines/baseline_system.hh"
#include "baselines/doppelganger_system.hh"
#include "baselines/truncate_system.hh"
#include "common/fp_bits.hh"

namespace avr {
namespace {

SimConfig tiny_cfg() {
  SimConfig cfg;
  cfg.llc = {16 * 1024, 8, 15};
  return cfg;
}

TEST(BaselineSystem, MissReadsOneLineHitReadsNone) {
  RegionRegistry regions;
  BaselineSystem sys(tiny_cfg(), regions);
  const uint64_t a = regions.allocate("a", kBlockBytes, false);
  sys.request(0, a, false);
  EXPECT_TRUE(sys.last_was_miss());
  EXPECT_EQ(sys.dram().bytes_read(), kCachelineBytes);
  sys.request(0, a, false);
  EXPECT_FALSE(sys.last_was_miss());
  EXPECT_EQ(sys.dram().bytes_read(), kCachelineBytes);
}

TEST(BaselineSystem, DirtyEvictionWritesBack) {
  RegionRegistry regions;
  BaselineSystem sys(tiny_cfg(), regions);
  const uint64_t a = regions.allocate("a", 1 << 20, false);
  sys.request(0, a, true);
  // Stream over more than the LLC capacity.
  for (uint64_t i = 1; i < 1024; ++i) sys.request(0, a + i * 64, false);
  EXPECT_GE(sys.dram().bytes_written(), kCachelineBytes);
}

TEST(BaselineSystem, WritebackMarksResidentLineDirty) {
  RegionRegistry regions;
  BaselineSystem sys(tiny_cfg(), regions);
  const uint64_t a = regions.allocate("a", kBlockBytes, false);
  sys.request(0, a, false);  // clean fill
  sys.writeback(0, a);       // now dirty
  sys.drain(0);
  EXPECT_EQ(sys.dram().bytes_written(), kCachelineBytes);
}

TEST(BaselineSystem, TrafficSplitByApproxFlag) {
  RegionRegistry regions;
  BaselineSystem sys(tiny_cfg(), regions);
  const uint64_t ap = regions.allocate("ap", kBlockBytes, true);
  const uint64_t ex = regions.allocate("ex", kBlockBytes, false);
  sys.request(0, ap, false);
  sys.request(0, ex, false);
  EXPECT_EQ(sys.stats().get("traffic_approx_bytes"), kCachelineBytes);
  EXPECT_EQ(sys.stats().get("traffic_other_bytes"), kCachelineBytes);
}

TEST(TruncateSystem, ApproxLinesMoveHalfTheBytes) {
  RegionRegistry regions;
  TruncateSystem sys(tiny_cfg(), regions);
  const uint64_t ap = regions.allocate("ap", kBlockBytes, true);
  const uint64_t ex = regions.allocate("ex", kBlockBytes, false);
  sys.request(0, ap, false);
  EXPECT_EQ(sys.dram().bytes_read(), kCachelineBytes / 2);
  sys.request(0, ex, false);
  EXPECT_EQ(sys.dram().bytes_read(), kCachelineBytes / 2 + kCachelineBytes);
}

TEST(TruncateSystem, WritebackTruncatesBackingValues) {
  RegionRegistry regions;
  TruncateSystem sys(tiny_cfg(), regions);
  const uint64_t ap = regions.allocate("ap", kBlockBytes, true);
  const float precise = 1.23456789f;
  regions.store<float>(ap, precise);
  sys.request(0, ap, true);  // dirty in LLC
  sys.drain(0);
  const float stored = regions.load<float>(ap);
  EXPECT_NE(f32_bits(stored), f32_bits(precise));
  EXPECT_EQ(f32_bits(stored) & 0xFFFF, 0u);
  EXPECT_NEAR(stored, precise, std::abs(precise) / 128.0f);
}

TEST(TruncateSystem, ExactLinesUntouched) {
  RegionRegistry regions;
  TruncateSystem sys(tiny_cfg(), regions);
  const uint64_t ex = regions.allocate("ex", kBlockBytes, false);
  regions.store<float>(ex, 1.23456789f);
  sys.request(0, ex, true);
  sys.drain(0);
  EXPECT_FLOAT_EQ(regions.load<float>(ex), 1.23456789f);
}

class DgTest : public ::testing::Test {
 protected:
  DgTest() : sys_(tiny_cfg(), regions_) {
    ap_ = regions_.allocate("ap", 256 * kBlockBytes, true);
    ex_ = regions_.allocate("ex", 64 * kBlockBytes, false);
  }
  void fill_line(uint64_t line, float v) {
    for (uint32_t i = 0; i < kValuesPerLine; ++i)
      regions_.store<float>(line + i * 4, v + 0.001f * i);
  }
  RegionRegistry regions_;
  DoppelgangerSystem sys_{tiny_cfg(), regions_};
  uint64_t ap_ = 0, ex_ = 0;
};

TEST_F(DgTest, IdenticalLinesDeduplicate) {
  fill_line(ap_, 5.0f);
  fill_line(ap_ + 64, 5.0f);
  sys_.request(0, ap_, false);
  sys_.request(0, ap_ + 64, false);
  EXPECT_EQ(sys_.stats().get("dedup_hits"), 1u);
  EXPECT_GT(sys_.dedup_factor(), 1.0);
}

TEST_F(DgTest, DedupCopiesRepresentativeIntoBacking) {
  fill_line(ap_, 5.0f);
  // A slightly different line with the same average/range/shape.
  for (uint32_t i = 0; i < kValuesPerLine; ++i)
    regions_.store<float>(ap_ + 64 + i * 4, 5.0f + 0.001f * i + 1e-5f);
  const float before = regions_.load<float>(ap_ + 64);
  sys_.request(0, ap_, false);
  sys_.request(0, ap_ + 64, false);
  if (sys_.stats().get("dedup_hits") == 1) {
    // The second line's contents were replaced by the representative's.
    EXPECT_EQ(f32_bits(regions_.load<float>(ap_ + 64)),
              f32_bits(regions_.load<float>(ap_)));
  } else {
    EXPECT_FLOAT_EQ(regions_.load<float>(ap_ + 64), before);
  }
}

TEST_F(DgTest, DistinctLinesDoNotDedup) {
  fill_line(ap_, 5.0f);
  fill_line(ap_ + 64, 500.0f);
  sys_.request(0, ap_, false);
  sys_.request(0, ap_ + 64, false);
  EXPECT_EQ(sys_.stats().get("dedup_hits"), 0u);
}

TEST_F(DgTest, NonApproxNeverDedups) {
  for (uint32_t i = 0; i < kValuesPerLine; ++i) {
    regions_.store<float>(ex_ + i * 4, 7.0f);
    regions_.store<float>(ex_ + 64 + i * 4, 7.0f);
  }
  sys_.request(0, ex_, false);
  sys_.request(0, ex_ + 64, false);
  EXPECT_EQ(sys_.stats().get("dedup_hits"), 0u);
}

TEST_F(DgTest, WriteUnsharesDedupedLine) {
  fill_line(ap_, 5.0f);
  fill_line(ap_ + 64, 5.0f);
  sys_.request(0, ap_, false);
  sys_.request(0, ap_ + 64, false);
  ASSERT_EQ(sys_.stats().get("dedup_hits"), 1u);
  sys_.request(0, ap_ + 64, true);  // write: must split from the doppelganger
  EXPECT_EQ(sys_.stats().get("unshares"), 1u);
}

TEST_F(DgTest, HitsAvoidDram) {
  fill_line(ap_, 5.0f);
  sys_.request(0, ap_, false);
  const uint64_t bytes = sys_.dram().bytes_read();
  sys_.request(0, ap_, false);
  EXPECT_EQ(sys_.dram().bytes_read(), bytes);
  EXPECT_FALSE(sys_.last_was_miss());
}

TEST_F(DgTest, EffectiveCapacityExceedsDataArray) {
  // Insert 4x more identical-content lines than data entries: everything
  // dedups, so all of them remain indexable (the 4x tag array's purpose).
  const uint64_t data_entries = tiny_cfg().llc.size_bytes / kCachelineBytes;
  for (uint64_t i = 0; i < 2 * data_entries; ++i) fill_line(ap_ + i * 64, 9.0f);
  for (uint64_t i = 0; i < 2 * data_entries; ++i) sys_.request(0, ap_ + i * 64, false);
  const uint64_t before = sys_.dram().bytes_read();
  // Re-touch: should be hits (no DRAM).
  uint64_t misses = 0;
  for (uint64_t i = 0; i < 2 * data_entries; ++i) {
    sys_.request(0, ap_ + i * 64, false);
    misses += sys_.last_was_miss();
  }
  EXPECT_EQ(sys_.dram().bytes_read(), before);
  EXPECT_EQ(misses, 0u);
}

TEST_F(DgTest, DrainWritesDirtyLines) {
  fill_line(ap_, 5.0f);
  sys_.request(0, ap_, true);
  sys_.drain(0);
  EXPECT_GE(sys_.dram().bytes_written(), kCachelineBytes);
}

}  // namespace
}  // namespace avr
