// The two-tier compression-method layer: per-method size model, the
// lossless BDI-hybrid fallback stage, and the exactness guarantees the
// exact tier carries (reconstructed bits identical to the input, all the
// way through the AvrSystem functional datapath).
#include "avr/method.hh"

#include <gtest/gtest.h>

#include <array>
#include <cstring>

#include "avr/avr_system.hh"
#include "avr/compressor.hh"
#include "common/prng.hh"

namespace avr {
namespace {

TEST(MethodLayer, TierMapping) {
  EXPECT_EQ(method_tier(Method::kUncompressed), MethodTier::kNone);
  EXPECT_EQ(method_tier(Method::kDownsample1D), MethodTier::kLossySummary);
  EXPECT_EQ(method_tier(Method::kDownsample2D), MethodTier::kLossySummary);
  EXPECT_EQ(method_tier(Method::kBdiHybrid), MethodTier::kLosslessExact);
  EXPECT_FALSE(method_is_exact(Method::kDownsample2D));
  EXPECT_TRUE(method_is_exact(Method::kBdiHybrid));
}

TEST(MethodLayer, LossySizeModelMatchesLegacyFormula) {
  // The refactor moved the bitmap+outlier formula out of CompressedBlock;
  // the model must reproduce it for every legal outlier count.
  for (uint32_t n = 0; n <= kMaxBlockOutliers; ++n) {
    uint32_t expect;
    if (n == 0) {
      expect = 1;
    } else {
      const uint64_t payload = kBitmapBytes + 4 * n;
      expect = 1 + static_cast<uint32_t>((payload + kCachelineBytes - 1) /
                                         kCachelineBytes);
    }
    EXPECT_EQ(method_lines(Method::kDownsample1D, n, 0), expect) << n;
    EXPECT_EQ(method_lines(Method::kDownsample2D, n, 0), expect) << n;
  }
  // The budget boundary the outlier cap encodes: 104 outliers fit 8 lines.
  EXPECT_EQ(method_lines(Method::kDownsample1D, kMaxBlockOutliers, 0),
            kMaxCompressedLines);
}

TEST(MethodLayer, ExactSizeModelRoundsEncodedBytesUpToLines) {
  EXPECT_EQ(method_lines(Method::kBdiHybrid, 0, 1), 1u);    // never 0 lines
  EXPECT_EQ(method_lines(Method::kBdiHybrid, 0, 64), 1u);
  EXPECT_EQ(method_lines(Method::kBdiHybrid, 0, 65), 2u);
  EXPECT_EQ(method_lines(Method::kBdiHybrid, 0, 512), 8u);
  EXPECT_EQ(method_lines(Method::kBdiHybrid, 0, 513), 9u);  // over budget
  // The exact tier ignores the outlier count entirely.
  EXPECT_EQ(method_lines(Method::kBdiHybrid, 99, 128), 2u);
}

TEST(MethodLayer, CompressedBlockLinesDelegatesToModel) {
  CompressedBlock cb;
  cb.method = Method::kDownsample2D;
  EXPECT_EQ(cb.lines(), 1u);
  cb.outlier_map.set(0);
  cb.outliers.push_back(0x12345678);
  EXPECT_EQ(cb.lines(), 2u);  // bitmap + 1 outlier rounds up to one extra line

  CompressedBlock bdi;
  bdi.method = Method::kBdiHybrid;
  bdi.encoded_bytes = 130;
  EXPECT_EQ(bdi.lines(), 3u);
}

#if GTEST_HAS_DEATH_TEST && !defined(NDEBUG)
TEST(MethodLayer, OutlierListOverflowTrapsInDebug) {
  // The header calls push_back beyond capacity "the caller's bug"; Debug
  // builds must trap it instead of silently corrupting the neighbours.
  EXPECT_DEATH(
      {
        OutlierList list;
        for (uint32_t i = 0; i <= kMaxBlockOutliers; ++i) list.push_back(i);
      },
      "OutlierList overflow");
}
#endif

// ---- the BDI-hybrid fallback stage ----------------------------------------

/// AVR-hostile, BDI-friendly block: alternating distant magnitudes make
/// nearly every value a lossy outlier (far beyond the 104 budget), while
/// the raw bytes of every 64 B line are one repeated 8-byte pattern
/// (BDI kRepeated: 8 encoded bytes per line, 128 per block = 2 lines).
std::array<float, kValuesPerBlock> hostile_bdi_friendly() {
  std::array<float, kValuesPerBlock> vals;
  for (uint32_t i = 0; i < kValuesPerBlock; ++i)
    vals[i] = (i % 2) ? 1.0e10f : 1.0f;
  return vals;
}

/// AVR-hostile AND BDI-hostile: full-range random bits in every word.
std::array<float, kValuesPerBlock> hostile_everywhere() {
  Xoshiro256 rng(77);
  std::array<float, kValuesPerBlock> vals;
  for (auto& v : vals) v = static_cast<float>(rng.uniform(-1e6, 1e6));
  return vals;
}

TEST(BdiHybrid, DisabledFlagLeavesHostileBlockUncompressed) {
  const Compressor comp{AvrConfig{}};  // enable_bdi_hybrid defaults to false
  EXPECT_FALSE(comp.compress(hostile_bdi_friendly()).has_value());
}

TEST(BdiHybrid, FallbackEncodesHostileBlockExactly) {
  AvrConfig cfg;
  cfg.enable_bdi_hybrid = true;
  const Compressor comp(cfg);
  const auto att = comp.compress(hostile_bdi_friendly());
  ASSERT_TRUE(att.has_value());
  EXPECT_EQ(att->block.method, Method::kBdiHybrid);
  EXPECT_EQ(att->block.encoded_bytes, 8u * kBlockLines);  // repeated lines
  EXPECT_EQ(att->block.lines(), 2u);
  EXPECT_EQ(att->avg_error, 0.0);  // exact: the error path short-circuits
  EXPECT_TRUE(att->block.outliers.empty());
}

TEST(BdiHybrid, FallbackRespectsTheLineBudget) {
  AvrConfig cfg;
  cfg.enable_bdi_hybrid = true;
  const Compressor comp(cfg);
  // Random bits: BDI leaves every line at 64 B -> 16 lines > 8, so the
  // fallback must decline and the block stays uncompressed.
  EXPECT_FALSE(comp.compress(hostile_everywhere()).has_value());
}

TEST(BdiHybrid, LossySuccessIgnoresTheFallback) {
  // A smooth block compresses losslessly^Wlossily as before: enabling the
  // fallback must not change the chosen encoding in any way.
  std::array<float, kValuesPerBlock> vals;
  for (uint32_t i = 0; i < kValuesPerBlock; ++i)
    vals[i] = 50.0f + 0.05f * static_cast<float>(i % 16);
  AvrConfig on;
  on.enable_bdi_hybrid = true;
  const auto a = Compressor(AvrConfig{}).compress(vals);
  const auto b = Compressor(on).compress(vals);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->block.method, b->block.method);
  EXPECT_EQ(a->block.lines(), b->block.lines());
  EXPECT_EQ(a->block.summary, b->block.summary);
  EXPECT_EQ(a->avg_error, b->avg_error);
}

TEST(BdiHybrid, ReconstructIsANoOpForExactEncodings) {
  AvrConfig cfg;
  cfg.enable_bdi_hybrid = true;
  const Compressor comp(cfg);
  const auto vals = hostile_bdi_friendly();
  const auto att = comp.compress(vals);
  ASSERT_TRUE(att.has_value());
  ASSERT_EQ(att->block.method, Method::kBdiHybrid);
  // The caller's buffer IS the exact reconstruction: reconstruct() must
  // leave it untouched (sentinels survive).
  std::array<float, kValuesPerBlock> out;
  out.fill(-123.25f);
  comp.reconstruct(att->block, out);
  for (const float v : out) ASSERT_EQ(v, -123.25f);
}

// ---- round-trip exactness through the full AvrSystem datapath --------------

TEST(BdiHybrid, SystemRoundTripIsBitIdentical) {
  SimConfig cfg;
  cfg.llc = {16 * 1024, 8, 15};  // tiny LLC: evictions come fast
  cfg.avr.enable_bdi_hybrid = true;
  RegionRegistry regions;
  AvrSystem sys(cfg, regions);
  const uint64_t approx = regions.allocate("approx", 64 * kBlockBytes, true);
  const uint64_t exact = regions.allocate("exact", 64 * kBlockBytes, false);

  // Hostile-but-BDI-friendly data in the first block; keep the pre-image.
  const auto vals = hostile_bdi_friendly();
  {
    auto block_vals = regions.block_values(approx);
    for (uint32_t i = 0; i < kValuesPerBlock; ++i) block_vals[i] = vals[i];
  }

  // Touch every line dirty, then stream far data to force the eviction
  // (and with it the compression event) through Fig. 8's flow.
  for (uint32_t i = 0; i < kBlockLines; ++i)
    sys.request(0, approx + i * kCachelineBytes, true);
  for (uint64_t i = 0; i < 1024; ++i)
    sys.request(0, exact + (i * 64) % (48 * kBlockBytes), true);

  // The fallback tier won the block: compressed via BDI at 2 lines...
  EXPECT_GT(sys.counters().blocks_bdi, 0u);
  const BlockMeta* m = sys.cmt().peek(approx);
  ASSERT_NE(m, nullptr);
  EXPECT_TRUE(m->compressed());
  EXPECT_EQ(m->method, Method::kBdiHybrid);
  EXPECT_EQ(m->size_lines, 2u);

  // ...and the backing store still holds the input bits exactly: unlike the
  // lossy tier, compression did NOT replace values with a reconstruction.
  auto block_vals = regions.block_values(approx);
  for (uint32_t i = 0; i < kValuesPerBlock; ++i) {
    uint32_t got, want;
    std::memcpy(&got, &block_vals[i], 4);
    std::memcpy(&want, &vals[i], 4);
    ASSERT_EQ(got, want) << "value " << i;
  }
}

TEST(BdiHybrid, SystemSurfacesMethodHistogramOnlyWhenEnabled) {
  RegionRegistry regions;
  SimConfig off;
  off.llc = {16 * 1024, 8, 15};
  const AvrSystem sys_off(off, regions);
  EXPECT_EQ(sys_off.stats().get("blocks_bdi"), 0u);

  SimConfig on = off;
  on.avr.enable_bdi_hybrid = true;
  RegionRegistry regions2;
  AvrSystem sys_on(on, regions2);
  const uint64_t approx = regions2.allocate("a", 64 * kBlockBytes, true);
  const uint64_t exact = regions2.allocate("e", 64 * kBlockBytes, false);
  {
    const auto vals = hostile_bdi_friendly();
    auto bv = regions2.block_values(approx);
    for (uint32_t i = 0; i < kValuesPerBlock; ++i) bv[i] = vals[i];
  }
  for (uint32_t i = 0; i < kBlockLines; ++i)
    sys_on.request(0, approx + i * kCachelineBytes, true);
  for (uint64_t i = 0; i < 1024; ++i)
    sys_on.request(0, exact + (i * 64) % (48 * kBlockBytes), true);
  EXPECT_GT(sys_on.stats().get("blocks_bdi"), 0u);
}

}  // namespace
}  // namespace avr
