#include "avr/compressor.hh"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <limits>

#include "common/fp_bits.hh"
#include "common/prng.hh"

namespace avr {
namespace {

using Block = std::array<float, kValuesPerBlock>;

AvrConfig default_cfg() { return AvrConfig{}; }  // N=4 -> T1 = 6.25 %

Block smooth_2d_block(float base = 20.0f) {
  Block b;
  for (uint32_t r = 0; r < 16; ++r)
    for (uint32_t c = 0; c < 16; ++c)
      b[r * 16 + c] = base + 0.1f * r + 0.07f * c;
  return b;
}

Block noise_block(uint64_t seed, float lo, float hi) {
  Xoshiro256 rng(seed);
  Block b;
  for (auto& v : b) v = static_cast<float>(rng.uniform(lo, hi));
  return b;
}

TEST(Compressor, SmoothBlockCompressesToOneLine) {
  Compressor comp(default_cfg());
  const Block b = smooth_2d_block();
  auto att = comp.compress(b);
  ASSERT_TRUE(att.has_value());
  EXPECT_EQ(att->block.lines(), 1u);
  EXPECT_TRUE(att->block.outliers.empty());
  EXPECT_FALSE(att->block.outlier_map.any());
}

TEST(Compressor, ConstantBlockIsLossless) {
  Compressor comp(default_cfg());
  Block b;
  b.fill(123.456f);
  auto att = comp.compress(b);
  ASSERT_TRUE(att);
  Block out;
  comp.reconstruct(att->block, out);
  for (float v : out) EXPECT_FLOAT_EQ(v, 123.456f);
}

TEST(Compressor, WhiteNoiseFailsToCompress) {
  Compressor comp(default_cfg());
  // Full-range noise: nearly everything becomes an outlier -> > 8 lines.
  EXPECT_FALSE(comp.compress(noise_block(1, -1000.0f, 1000.0f)).has_value());
}

TEST(Compressor, OutliersStoredExactly) {
  Compressor comp(default_cfg());
  Block b = smooth_2d_block();
  b[37] = 5000.0f;  // spike
  b[200] = -3.0f;   // sign flip
  auto att = comp.compress(b);
  ASSERT_TRUE(att);
  EXPECT_TRUE(att->block.outlier_map.test(37));
  EXPECT_TRUE(att->block.outlier_map.test(200));
  Block out;
  comp.reconstruct(att->block, out);
  EXPECT_EQ(f32_bits(out[37]), f32_bits(5000.0f));
  EXPECT_EQ(f32_bits(out[200]), f32_bits(-3.0f));
}

TEST(Compressor, SizeFollowsOutlierCount) {
  // 0 outliers -> 1 line. 1..8 outliers -> bitmap(32 B)+outliers fit in one
  // extra line up to 8 outliers, then grow by one line per 16.
  CompressedBlock cb;
  cb.method = Method::kDownsample2D;
  EXPECT_EQ(cb.lines(), 1u);
  cb.outliers.assign(1, 0);
  EXPECT_EQ(cb.lines(), 2u);
  cb.outliers.assign(8, 0);
  EXPECT_EQ(cb.lines(), 2u);
  cb.outliers.assign(9, 0);
  EXPECT_EQ(cb.lines(), 3u);
  cb.outliers.assign(24, 0);
  EXPECT_EQ(cb.lines(), 3u);
  cb.outliers.assign(CompressedBlock::kMaxOutliers, 0);
  EXPECT_EQ(cb.lines(), kMaxCompressedLines);
}

TEST(Compressor, OutlierRuleSignExponentMantissa) {
  Compressor comp(default_cfg());
  // Same value: never an outlier.
  EXPECT_FALSE(comp.value_is_outlier(1.5f, 1.5f));
  // Sign mismatch.
  EXPECT_TRUE(comp.value_is_outlier(1.5f, -1.5f));
  // Exponent mismatch.
  EXPECT_TRUE(comp.value_is_outlier(1.5f, 3.0f));
  // Mantissa within the N=4 MSbit window (diff < 2^19) is fine.
  const float a = bits_f32(f32_bits(1.5f));
  const float b = bits_f32(f32_bits(1.5f) + (1u << 18));
  EXPECT_FALSE(comp.value_is_outlier(a, b));
  const float c = bits_f32(f32_bits(1.5f) + (1u << 19));
  EXPECT_TRUE(comp.value_is_outlier(a, c));
}

TEST(Compressor, NonFiniteOriginalIsOutlier) {
  Compressor comp(default_cfg());
  EXPECT_TRUE(comp.value_is_outlier(std::numeric_limits<float>::infinity(), 1.0f));
  EXPECT_TRUE(comp.value_is_outlier(std::numeric_limits<float>::quiet_NaN(), 1.0f));
}

TEST(Compressor, BlockWithNanStoresItExactly) {
  Compressor comp(default_cfg());
  Block b = smooth_2d_block();
  b[5] = std::numeric_limits<float>::quiet_NaN();
  auto att = comp.compress(b);
  ASSERT_TRUE(att);
  Block out;
  comp.reconstruct(att->block, out);
  EXPECT_TRUE(std::isnan(out[5]));
}

TEST(Compressor, ThresholdKnobTightensOutliers) {
  Block b = noise_block(3, 100.0f, 104.0f);  // ~2 % local variation
  AvrConfig loose = default_cfg();           // 6.25 %
  AvrConfig tight = default_cfg();
  tight.t1_mantissa_msbit = 8;  // 0.39 %
  auto la = Compressor(loose).compress(b);
  auto ta = Compressor(tight).compress(b);
  ASSERT_TRUE(la);
  const size_t loose_outliers = la->block.outliers.size();
  const size_t tight_outliers = ta ? ta->block.outliers.size()
                                   : CompressedBlock::kMaxOutliers + 1;
  EXPECT_LT(loose_outliers, tight_outliers);
}

TEST(Compressor, Method1DWinsOnLinearSequence) {
  // A 1D ramp is linear along the flattened index: 1D interpolation is
  // exact; 2D tiles see a sawtooth across rows and produce outliers.
  Compressor comp(default_cfg());
  Block b;
  for (uint32_t i = 0; i < kValuesPerBlock; ++i)
    b[i] = 1000.0f + 2.0f * static_cast<float>(i);
  auto att = comp.compress(b);
  ASSERT_TRUE(att);
  EXPECT_EQ(att->block.method, Method::kDownsample1D);
}

TEST(Compressor, Method2DWinsOnSmooth2DField) {
  Compressor comp(default_cfg());
  Block b;
  for (uint32_t r = 0; r < 16; ++r)
    for (uint32_t c = 0; c < 16; ++c)
      b[r * 16 + c] = 50.0f + 3.0f * std::sin(0.2f * r) * std::cos(0.2f * c);
  auto att = comp.compress(b);
  ASSERT_TRUE(att);
  EXPECT_EQ(att->block.method, Method::kDownsample2D);
}

TEST(Compressor, DisablingVariantsRestrictsMethods) {
  AvrConfig only1d = default_cfg();
  only1d.enable_2d = false;
  auto att = Compressor(only1d).compress(smooth_2d_block());
  ASSERT_TRUE(att);
  EXPECT_EQ(att->block.method, Method::kDownsample1D);

  AvrConfig none = default_cfg();
  none.enable_1d = none.enable_2d = false;
  EXPECT_FALSE(Compressor(none).compress(smooth_2d_block()).has_value());
}

TEST(Compressor, HugeMagnitudesCompressViaBiasing) {
  Compressor comp(default_cfg());
  Block b = smooth_2d_block();
  for (auto& v : b) v *= 1e30f;
  auto att = comp.compress(b);
  ASSERT_TRUE(att);
  EXPECT_LT(att->block.bias, 0);
  Block out;
  comp.reconstruct(att->block, out);
  for (uint32_t i = 0; i < kValuesPerBlock; ++i)
    EXPECT_NEAR(out[i] / 1e30f, b[i] / 1e30f, 0.07f * std::abs(b[i] / 1e30f)) << i;
}

TEST(Compressor, TinyMagnitudesCompressViaBiasing) {
  Compressor comp(default_cfg());
  Block b = smooth_2d_block();
  for (auto& v : b) v *= 1e-25f;
  auto att = comp.compress(b);
  ASSERT_TRUE(att);
  EXPECT_GT(att->block.bias, 0);
}

TEST(Compressor, FixedPointDTypeRoundTrip) {
  Compressor comp(default_cfg());
  Block b;
  for (uint32_t i = 0; i < kValuesPerBlock; ++i) {
    const Fixed32 f = Fixed32::from_float(10.0f + 0.01f * static_cast<float>(i));
    b[i] = std::bit_cast<float>(f.raw());
  }
  auto att = comp.compress(b, DType::kFixed32);
  ASSERT_TRUE(att);
  Block out;
  comp.reconstruct(att->block, out);
  for (uint32_t i = 0; i < kValuesPerBlock; ++i) {
    const auto orig = Fixed32::from_raw(std::bit_cast<int32_t>(b[i]));
    const auto rec = Fixed32::from_raw(std::bit_cast<int32_t>(out[i]));
    EXPECT_NEAR(rec.to_double(), orig.to_double(),
                std::abs(orig.to_double()) * comp.t1() + 1e-4)
        << i;
  }
}

// ---- property sweeps --------------------------------------------------------

class CompressorProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CompressorProperty, NonOutliersRespectT1) {
  Compressor comp(default_cfg());
  Xoshiro256 rng(GetParam());
  Block b;
  const float base = static_cast<float>(rng.uniform(1.0, 1e6));
  for (auto& v : b)
    v = base * (1.0f + 0.04f * static_cast<float>(rng.uniform(-1.0, 1.0)));
  auto att = comp.compress(b);
  if (!att) return;  // failing thresholds entirely is an allowed outcome
  Block out;
  comp.reconstruct(att->block, out);
  for (uint32_t i = 0; i < kValuesPerBlock; ++i) {
    if (att->block.outlier_map.test(i)) {
      EXPECT_EQ(f32_bits(out[i]), f32_bits(b[i])) << "outlier must be exact";
    } else {
      // Sec. 3.3: sign and exponent match and mantissa difference below the
      // N-th MSbit => relative error strictly below 2*T1 (mantissa metric
      // bounds the true relative error within a factor of 2).
      EXPECT_EQ(f32_sign(out[i]), f32_sign(b[i]));
      EXPECT_EQ(f32_exponent(out[i]), f32_exponent(b[i]));
      EXPECT_LE(relative_error(out[i], b[i]), 2.0 * comp.t1()) << i;
    }
  }
}

TEST_P(CompressorProperty, SizeAlwaysWithinBudget) {
  Compressor comp(default_cfg());
  Xoshiro256 rng(GetParam() * 13);
  Block b;
  const double roughness = rng.uniform(0.0, 0.3);
  for (auto& v : b)
    v = 100.0f * (1.0f + static_cast<float>(roughness * rng.uniform(-1.0, 1.0)));
  auto att = comp.compress(b);
  if (!att) return;
  EXPECT_GE(att->block.lines(), 1u);
  EXPECT_LE(att->block.lines(), kMaxCompressedLines);
  EXPECT_LE(att->avg_error, comp.t2());
  EXPECT_EQ(att->block.outlier_map.popcount(), att->block.outliers.size());
}

TEST_P(CompressorProperty, ReconstructionDeterministic) {
  Compressor comp(default_cfg());
  Xoshiro256 rng(GetParam() * 101);
  Block b;
  for (auto& v : b) v = static_cast<float>(rng.uniform(-5.0, 5.0));
  auto att = comp.compress(b);
  if (!att) return;
  Block o1, o2;
  comp.reconstruct(att->block, o1);
  comp.reconstruct(att->block, o2);
  for (uint32_t i = 0; i < kValuesPerBlock; ++i)
    EXPECT_EQ(f32_bits(o1[i]), f32_bits(o2[i]));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompressorProperty,
                         ::testing::Range<uint64_t>(1, 25));

}  // namespace
}  // namespace avr
