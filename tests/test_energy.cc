#include "energy/energy_model.hh"

#include <gtest/gtest.h>

namespace avr {
namespace {

TEST(Energy, ZeroEventsZeroEnergy) {
  EXPECT_DOUBLE_EQ(compute_energy(EnergyEvents{}).total(), 0.0);
}

TEST(Energy, ComponentsScaleLinearly) {
  EnergyEvents e;
  e.instructions = 1000;
  e.cycles = 500;
  const EnergyBreakdown b1 = compute_energy(e);
  e.instructions = 2000;
  e.cycles = 1000;
  const EnergyBreakdown b2 = compute_energy(e);
  EXPECT_DOUBLE_EQ(b2.core, 2 * b1.core);
}

TEST(Energy, CompressorOnlyWhenPresent) {
  EnergyEvents e;
  e.cycles = 1000;
  e.compressions = 10;
  e.decompressions = 20;
  e.has_compressor = false;
  EXPECT_DOUBLE_EQ(compute_energy(e).compressor, 0.0);
  e.has_compressor = true;
  EXPECT_GT(compute_energy(e).compressor, 0.0);
}

TEST(Energy, DramComponentsCounted) {
  EnergyEvents e;
  e.dram_bytes = 1024;
  e.dram_activations = 4;
  const EnergyBreakdown b = compute_energy(e);
  EnergyParams p;
  EXPECT_DOUBLE_EQ(b.dram, 1024 * p.dram_per_byte + 4 * p.dram_per_activate);
}

TEST(Energy, TotalIsSumOfParts) {
  EnergyEvents e;
  e.instructions = 123;
  e.cycles = 456;
  e.l1_accesses = 78;
  e.l2_accesses = 9;
  e.llc_accesses = 10;
  e.dram_bytes = 2048;
  e.dram_activations = 3;
  e.compressions = 1;
  e.decompressions = 2;
  e.has_compressor = true;
  const EnergyBreakdown b = compute_energy(e);
  EXPECT_DOUBLE_EQ(b.total(), b.core + b.l1l2 + b.llc + b.dram + b.compressor);
  EXPECT_GT(b.core, 0.0);
  EXPECT_GT(b.l1l2, 0.0);
  EXPECT_GT(b.llc, 0.0);
  EXPECT_GT(b.dram, 0.0);
  EXPECT_GT(b.compressor, 0.0);
}

TEST(Energy, CoreDominatesTypicalMix) {
  // Sanity of the constants against Fig. 10's shape: with a realistic event
  // mix the core is the largest component.
  EnergyEvents e;
  e.instructions = 10'000'000;
  e.cycles = 4'000'000;
  e.l1_accesses = 3'000'000;
  e.l2_accesses = 300'000;
  e.llc_accesses = 100'000;
  e.dram_bytes = 4'000'000;
  e.dram_activations = 30'000;
  const EnergyBreakdown b = compute_energy(e);
  EXPECT_GT(b.core, b.dram);
  EXPECT_GT(b.core, b.l1l2);
  EXPECT_GT(b.core, b.llc);
  EXPECT_GT(b.dram, b.l1l2);  // DRAM is the second-largest consumer
}

}  // namespace
}  // namespace avr
