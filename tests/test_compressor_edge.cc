// Compressor edge-case pins, written against the pre-pipeline datapath so
// they gate the staged-pipeline refactor: denormal-heavy blocks, all-NaN /
// all-Inf blocks, blocks with exactly kMaxOutliers outliers (the 8-line
// boundary), and DType::kFixed32 round-trips.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <limits>

#include "avr/compressor.hh"
#include "common/fp_bits.hh"
#include "common/prng.hh"

namespace avr {
namespace {

using Block = std::array<float, kValuesPerBlock>;

constexpr float kDenormal = 1e-40f;  // exponent field 0, nonzero mantissa

TEST(CompressorEdge, AllDenormalBlockCompressesToZeroSummary) {
  // Every value has exponent field 0: biasing is skipped (bias = 0) and the
  // fixed-point conversion flushes each value to raw 0, so the summary is
  // all-zero and every value whose mantissa difference from +0.0 reaches the
  // threshold bit becomes an outlier. kDenormal's mantissa (~7e4) sits far
  // below 2^(23-N), so no value is an outlier and the block reconstructs as
  // +0.0 everywhere.
  Compressor comp(AvrConfig{});
  Block b;
  b.fill(kDenormal);
  auto att = comp.compress(b);
  ASSERT_TRUE(att);
  EXPECT_EQ(att->block.bias, 0);
  EXPECT_EQ(att->block.lines(), 1u);
  EXPECT_TRUE(att->block.outliers.empty());
  for (uint32_t k = 0; k < kSummaryValues; ++k)
    EXPECT_EQ(att->block.summary[k], 0);
  Block out;
  comp.reconstruct(att->block, out);
  for (float v : out) EXPECT_EQ(f32_bits(v), f32_bits(0.0f));
}

TEST(CompressorEdge, LargeDenormalsBecomeOutliers) {
  // A denormal whose mantissa reaches the N-th MSbit differs from the +0.0
  // reconstruction by >= 2^(23-N): it must be stored exactly.
  Compressor comp(AvrConfig{});
  const float big_denormal = bits_f32(1u << (kMantissaBits - 4));  // N = 4
  Block b;
  b.fill(kDenormal);
  b[17] = big_denormal;
  b[99] = -big_denormal;
  auto att = comp.compress(b);
  ASSERT_TRUE(att);
  EXPECT_TRUE(att->block.outlier_map.test(17));
  EXPECT_TRUE(att->block.outlier_map.test(99));
  EXPECT_EQ(att->block.outliers.size(), 2u);
  Block out;
  comp.reconstruct(att->block, out);
  EXPECT_EQ(f32_bits(out[17]), f32_bits(big_denormal));
  EXPECT_EQ(f32_bits(out[99]), f32_bits(-big_denormal));
}

TEST(CompressorEdge, DenormalNormalInterleaveFailsToCompress) {
  // Denormals interleaved with ~100-magnitude values: biasing keys off the
  // normal values, every denormal flushes to zero in fixed point, and each
  // reconstructs to the sub-block's ~100 neighbourhood — an exponent
  // mismatch, so all 128 denormals are outliers and the budget (104) is
  // blown. The block must stay uncompressed, not mis-encode.
  Compressor comp(AvrConfig{});
  Block b;
  for (uint32_t i = 0; i < kValuesPerBlock; ++i)
    b[i] = (i % 2 == 0) ? kDenormal * static_cast<float>(1 + i % 7)
                        : 100.0f + 0.01f * static_cast<float>(i);
  EXPECT_FALSE(comp.compress(b).has_value());
}

TEST(CompressorEdge, AllNanBlockFailsToCompress) {
  // Non-finite originals are always outliers: 256 > kMaxOutliers.
  Compressor comp(AvrConfig{});
  Block b;
  b.fill(std::numeric_limits<float>::quiet_NaN());
  EXPECT_FALSE(comp.compress(b).has_value());
}

TEST(CompressorEdge, AllInfBlockFailsToCompress) {
  Compressor comp(AvrConfig{});
  Block b;
  for (uint32_t i = 0; i < kValuesPerBlock; ++i)
    b[i] = (i % 2 ? 1.0f : -1.0f) * std::numeric_limits<float>::infinity();
  EXPECT_FALSE(comp.compress(b).has_value());
}

TEST(CompressorEdge, MixedNanInfBlockStoresThemExactly) {
  // A handful of non-finite values in an otherwise smooth block: each is an
  // outlier holding its exact bit pattern (NaN payload included).
  Compressor comp(AvrConfig{});
  Block b;
  for (uint32_t i = 0; i < kValuesPerBlock; ++i)
    b[i] = 50.0f + 0.01f * static_cast<float>(i);
  const float payload_nan = bits_f32(0x7FC0BEEFu);
  b[3] = payload_nan;
  b[64] = std::numeric_limits<float>::infinity();
  b[255] = -std::numeric_limits<float>::infinity();
  auto att = comp.compress(b);
  ASSERT_TRUE(att);
  EXPECT_EQ(att->block.bias, 0);  // NaN/Inf present: biasing skipped
  Block out;
  comp.reconstruct(att->block, out);
  EXPECT_EQ(f32_bits(out[3]), 0x7FC0BEEFu);
  EXPECT_EQ(f32_bits(out[64]), f32_bits(std::numeric_limits<float>::infinity()));
  EXPECT_EQ(f32_bits(out[255]),
            f32_bits(-std::numeric_limits<float>::infinity()));
}

// -0.0 shares the all-zero fixed-point image with +0.0 but differs in sign,
// so it is an outlier against a +0.0 reconstruction while leaving the
// summary (and every other value's error) untouched — the one block shape
// that hits *exactly* a chosen outlier count.
Block zero_block_with_negzero_outliers(uint32_t n_outliers) {
  Block b;
  b.fill(0.0f);
  for (uint32_t i = 0; i < n_outliers; ++i) b[i] = -0.0f;
  return b;
}

TEST(CompressorEdge, ExactlyMaxOutliersFillsTheBudget) {
  Compressor comp(AvrConfig{});
  const Block b = zero_block_with_negzero_outliers(CompressedBlock::kMaxOutliers);
  auto att = comp.compress(b);
  ASSERT_TRUE(att);
  EXPECT_EQ(att->block.outliers.size(), CompressedBlock::kMaxOutliers);
  EXPECT_EQ(att->block.lines(), kMaxCompressedLines);
  EXPECT_EQ(att->avg_error, 0.0);
  Block out;
  comp.reconstruct(att->block, out);
  for (uint32_t i = 0; i < kValuesPerBlock; ++i)
    EXPECT_EQ(f32_bits(out[i]), f32_bits(b[i])) << i;
}

TEST(CompressorEdge, OneOverMaxOutliersFailsToCompress) {
  Compressor comp(AvrConfig{});
  const Block b =
      zero_block_with_negzero_outliers(CompressedBlock::kMaxOutliers + 1);
  EXPECT_FALSE(comp.compress(b).has_value());
}

// ---- DType::kFixed32 ------------------------------------------------------

Block fixed_block_from_doubles(const std::array<double, 4>& pattern,
                               double step) {
  Block b;
  for (uint32_t i = 0; i < kValuesPerBlock; ++i) {
    const double v = pattern[i % 4] + step * static_cast<double>(i / 4);
    b[i] = std::bit_cast<float>(Fixed32::from_float(static_cast<float>(v)).raw());
  }
  return b;
}

TEST(CompressorEdge, Fixed32SmoothRampRoundTrips) {
  Compressor comp(AvrConfig{});
  const Block b = fixed_block_from_doubles({10.0, 10.001, 10.002, 10.003}, 0.004);
  auto att = comp.compress(b, DType::kFixed32);
  ASSERT_TRUE(att);
  EXPECT_EQ(att->block.dtype, DType::kFixed32);
  EXPECT_EQ(att->block.bias, 0);  // fixed point never biases
  Block out;
  comp.reconstruct(att->block, out);
  for (uint32_t i = 0; i < kValuesPerBlock; ++i) {
    const double o = Fixed32::from_raw(std::bit_cast<int32_t>(b[i])).to_double();
    const double r = Fixed32::from_raw(std::bit_cast<int32_t>(out[i])).to_double();
    if (att->block.outlier_map.test(i))
      EXPECT_EQ(std::bit_cast<int32_t>(out[i]), std::bit_cast<int32_t>(b[i]));
    else
      EXPECT_LT(relative_error(r, o), comp.t1()) << i;
  }
}

TEST(CompressorEdge, Fixed32NegativeValuesRoundTrip) {
  Compressor comp(AvrConfig{});
  const Block b =
      fixed_block_from_doubles({-200.0, -200.5, -201.0, -201.5}, -0.25);
  auto att = comp.compress(b, DType::kFixed32);
  ASSERT_TRUE(att);
  Block out;
  comp.reconstruct(att->block, out);
  for (uint32_t i = 0; i < kValuesPerBlock; ++i) {
    const double o = Fixed32::from_raw(std::bit_cast<int32_t>(b[i])).to_double();
    const double r = Fixed32::from_raw(std::bit_cast<int32_t>(out[i])).to_double();
    if (!att->block.outlier_map.test(i)) {
      EXPECT_LT(relative_error(r, o), comp.t1()) << i;
    }
  }
}

TEST(CompressorEdge, Fixed32SpikesAreExactOutliers) {
  Compressor comp(AvrConfig{});
  Block b = fixed_block_from_doubles({100.0, 100.1, 100.2, 100.3}, 0.1);
  const int32_t spike = Fixed32::from_float(-30000.0f).raw();
  b[11] = std::bit_cast<float>(spike);
  b[130] = std::bit_cast<float>(spike);
  auto att = comp.compress(b, DType::kFixed32);
  ASSERT_TRUE(att);
  EXPECT_TRUE(att->block.outlier_map.test(11));
  EXPECT_TRUE(att->block.outlier_map.test(130));
  Block out;
  comp.reconstruct(att->block, out);
  EXPECT_EQ(std::bit_cast<int32_t>(out[11]), spike);
  EXPECT_EQ(std::bit_cast<int32_t>(out[130]), spike);
}

TEST(CompressorEdge, Fixed32WhiteNoiseFailsToCompress) {
  Compressor comp(AvrConfig{});
  Xoshiro256 rng(7);
  Block b;
  for (auto& v : b)
    v = std::bit_cast<float>(
        Fixed32::from_float(static_cast<float>(rng.uniform(-30000.0, 30000.0)))
            .raw());
  EXPECT_FALSE(comp.compress(b, DType::kFixed32).has_value());
}

}  // namespace
}  // namespace avr
