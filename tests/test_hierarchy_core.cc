#include <gtest/gtest.h>

#include "baselines/baseline_system.hh"
#include "cpu/hierarchy.hh"
#include "cpu/interval_core.hh"

namespace avr {
namespace {

SimConfig cfg() {
  SimConfig c;
  c.scale_caches(16);  // L1 4 kB, L2 16 kB, LLC 512 kB
  return c;
}

struct Rig {
  Rig() : llc(c, regions), hier(c, llc, 1), core(c.core, hier, 0) {
    base = regions.allocate("buf", 1 << 22, false);
  }
  SimConfig c = cfg();
  RegionRegistry regions;
  BaselineSystem llc;
  MemoryHierarchy hier;
  IntervalCore core;
  uint64_t base;
};

TEST(Hierarchy, L1HitAfterFill) {
  Rig r;
  auto first = r.hier.access(0, 0, r.base, false);
  EXPECT_EQ(first.level, ServedBy::kMemory);
  auto second = r.hier.access(0, 100, r.base, false);
  EXPECT_EQ(second.level, ServedBy::kL1);
  EXPECT_EQ(second.latency, r.c.core.l1_latency);
}

TEST(Hierarchy, L2CatchesL1Evictions) {
  Rig r;
  // Touch enough lines to overflow L1 (4 kB = 64 lines) but not L2.
  for (int i = 0; i < 128; ++i) r.hier.access(0, 0, r.base + i * 64, false);
  // The first line is gone from L1 but present in L2.
  auto out = r.hier.access(0, 1000, r.base, false);
  EXPECT_EQ(out.level, ServedBy::kL2);
}

TEST(Hierarchy, DirtyDataReachesMemoryOnDrain) {
  Rig r;
  r.hier.access(0, 0, r.base, true);
  EXPECT_EQ(r.llc.dram().bytes_written(), 0u);
  r.hier.drain(10000);
  EXPECT_GE(r.llc.dram().bytes_written(), kCachelineBytes);
}

TEST(Hierarchy, AmatAveragesLatencies) {
  Rig r;
  r.hier.access(0, 0, r.base, false);       // memory
  r.hier.access(0, 100, r.base, false);     // L1 hit
  EXPECT_EQ(r.hier.total_accesses(), 2u);
  EXPECT_GT(r.hier.amat(), 1.0);
}

TEST(Hierarchy, MpkiCountsOnlyLlcMisses) {
  Rig r;
  r.hier.access(0, 0, r.base, false);
  r.hier.access(0, 100, r.base, false);
  EXPECT_EQ(r.hier.llc_requests(), 1u);
  EXPECT_EQ(r.hier.llc_misses(), 1u);
}

TEST(IntervalCore, DispatchWidthBoundsIpc) {
  Rig r;
  r.core.ops(4000);
  EXPECT_EQ(r.core.cycles(), 1000u);  // 4-wide
  EXPECT_DOUBLE_EQ(r.core.ipc(), 4.0);
}

TEST(IntervalCore, L1HitsDoNotStall) {
  Rig r;
  r.core.load(r.base);  // cold miss: stalls
  const uint64_t after_miss = r.core.cycles();
  for (int i = 0; i < 100; ++i) r.core.load(r.base);
  // 100 L1 hits at 4-wide = 25 cycles, no stall beyond that.
  EXPECT_EQ(r.core.cycles(), after_miss + 25);
}

TEST(IntervalCore, MissStallsExceedHideWindow) {
  Rig r;
  const uint64_t rob_hide = r.c.core.rob_size / r.c.core.dispatch_width;
  r.core.load(r.base);
  EXPECT_GT(r.core.cycles(), 0u);
  // A single DRAM miss costs latency - hide, which must be positive.
  EXPECT_GT(r.core.cycles(), 1u);
  (void)rob_hide;
}

TEST(IntervalCore, BurstMissesOverlap) {
  // Two far-apart workloads: serial misses (separated by > ROB instructions
  // of ops) vs burst misses. The burst must cost less total time.
  Rig serial, burst;
  const int kMisses = 16;
  for (int i = 0; i < kMisses; ++i) {
    serial.core.load(serial.base + i * kBlockBytes * 8);
    serial.core.ops(1000);  // breaks the ROB window
  }
  for (int i = 0; i < kMisses; ++i)
    burst.core.load(burst.base + i * kBlockBytes * 8);
  burst.core.ops(1000 * kMisses);
  EXPECT_LT(burst.core.cycles(), serial.core.cycles());
}

TEST(IntervalCore, InstructionsCounted) {
  Rig r;
  r.core.ops(10);
  r.core.load(r.base);
  r.core.store(r.base);
  EXPECT_EQ(r.core.instructions(), 12u);
}

}  // namespace
}  // namespace avr
