// RegionHandle API proofs: handle-based access is equivalent to the
// address-based API (functionally and in every simulated metric), offsets
// are bounds-checked in Debug builds, and the handle-ported workloads still
// produce bit-identical golden outputs to the pre-port seed (FNV digests
// captured at commit 8a16036, before the port).
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <map>
#include <string>

#include "runtime/system.hh"
#include "workloads/workload.hh"
#include "workloads/workload_registry.hh"

namespace avr {
namespace {

SimConfig small_cfg() {
  SimConfig cfg;
  cfg.scale_caches(64);
  return cfg;
}

TEST(RegionHandle, ResolvesAllocatedRegions) {
  System sys(Design::kBaseline, small_cfg());
  const uint64_t base = sys.alloc("a", 3 * kBlockBytes, /*approx=*/true);
  const RegionHandle h = sys.region("a");
  ASSERT_TRUE(h.valid());
  EXPECT_EQ(h.sim_base, base);
  EXPECT_EQ(h.bytes, 3 * kBlockBytes);
  EXPECT_EQ(h.addr(100), base + 100);
  EXPECT_FALSE(sys.region("nosuch").valid());

  const RegionHandle h2 = sys.alloc_region("b", kBlockBytes, /*approx=*/false);
  ASSERT_TRUE(h2.valid());
  EXPECT_EQ(h2.sim_base, sys.region("b").sim_base);
  EXPECT_EQ(h2.bytes, kBlockBytes);
}

TEST(RegionHandle, HandleAndAddressAccessAreInterchangeable) {
  System sys(Design::kBaseline, small_cfg());
  const RegionHandle h = sys.alloc_region("buf", kBlockBytes, /*approx=*/true);
  // A store through the handle is visible through the address API and
  // vice versa: both hit the same backing bytes.
  sys.store_f32(h, 8, 3.5f);
  EXPECT_FLOAT_EQ(sys.load_f32(h.addr(8)), 3.5f);
  sys.store_f32(h.addr(16), -2.0f);
  EXPECT_FLOAT_EQ(sys.load_f32(h, 16), -2.0f);
  sys.poke_f32(h, 24, 7.0f);
  EXPECT_FLOAT_EQ(sys.peek_f32(h.addr(24)), 7.0f);
  EXPECT_FLOAT_EQ(sys.peek_f32(h, 24), 7.0f);
}

/// The same access sequence driven through addresses vs through handles
/// must leave two Systems in identical simulated states: the handle API
/// only collapses the functional path, never the timing path.
TEST(RegionHandle, TimingMetricsMatchAddressApi) {
  System by_addr(Design::kAvr, small_cfg());
  System by_handle(Design::kAvr, small_cfg());
  const uint64_t n = 4 * kValuesPerBlock;
  const uint64_t a = by_addr.alloc("x", n * sizeof(float), /*approx=*/true);
  const RegionHandle h = by_handle.alloc_region("x", n * sizeof(float),
                                                /*approx=*/true);
  for (uint64_t i = 0; i < n; ++i) {
    by_addr.store_f32(a + i * 4, 1.0f + 0.25f * static_cast<float>(i % 64));
    by_handle.store_f32(h, i * 4, 1.0f + 0.25f * static_cast<float>(i % 64));
  }
  for (int pass = 0; pass < 3; ++pass)
    for (uint64_t i = 0; i < n; ++i) {
      EXPECT_EQ(by_addr.load_f32(a + i * 4), by_handle.load_f32(h, i * 4));
    }
  by_addr.finish();
  by_handle.finish();
  const RunMetrics ma = by_addr.metrics();
  const RunMetrics mh = by_handle.metrics();
  EXPECT_EQ(ma.cycles, mh.cycles);
  EXPECT_EQ(ma.instructions, mh.instructions);
  EXPECT_DOUBLE_EQ(ma.amat, mh.amat);
  EXPECT_EQ(ma.llc_requests, mh.llc_requests);
  EXPECT_EQ(ma.llc_misses, mh.llc_misses);
  EXPECT_EQ(ma.dram_bytes, mh.dram_bytes);
  EXPECT_EQ(ma.detail, mh.detail);
}

#ifndef NDEBUG
using RegionHandleDeathTest = ::testing::Test;

TEST(RegionHandleDeathTest, OutOfRangeOffsetAssertsInDebug) {
  System sys(Design::kBaseline, small_cfg());
  const RegionHandle h = sys.alloc_region("buf", kBlockBytes, /*approx=*/false);
  EXPECT_DEATH((void)sys.load_f32(h, h.bytes), "out of range");
  EXPECT_DEATH(sys.store_f32(h, h.bytes - 3, 1.0f), "out of range");
  EXPECT_DEATH((void)sys.peek_f32(h, ~uint64_t{0}), "out of range");
  // An unresolved (invalid) handle has bytes == 0: any access must assert,
  // not dereference its null host pointer.
  const RegionHandle bad = sys.region("nosuch");
  EXPECT_DEATH((void)sys.load_f32(bad, 0), "out of range");
}
#endif

/// FNV-1a over the bit patterns of a workload's golden (functional) output.
uint64_t output_digest(const std::string& name) {
  auto wl = make_workload(name);
  System sys(Design::kBaseline, SimConfig{}, 1, /*timing=*/false);
  wl->run(sys);
  uint64_t h = 1469598103934665603ull;
  for (double d : wl->output(sys)) {
    uint64_t v = std::bit_cast<uint64_t>(d);
    for (int i = 0; i < 8; ++i) {
      h = (h ^ (v & 0xFF)) * 1099511628211ull;
      v >>= 8;
    }
  }
  return h;
}

// Captured from the seed model (commit 8a16036) BEFORE the workloads were
// ported to RegionHandle: the port must not change a single output bit.
const std::map<std::string, uint64_t> kSeedOutputDigests = {
    {"heat", 0x388231034f122353ull},    {"lattice", 0xf33c3598f87d44ffull},
    {"lbm", 0x630d071556338c5bull},     {"orbit", 0x910b34b167ae500full},
    {"kmeans", 0xd967ecba0e5864bbull},  {"bscholes", 0x7f0a40db864922e9ull},
    {"wrf", 0x9050bc8f1b8ead77ull},
};

class GoldenOutputDigest : public ::testing::TestWithParam<std::string> {};

TEST_P(GoldenOutputDigest, BitIdenticalToSeedCapture) {
  const std::string name = GetParam();
  EXPECT_EQ(output_digest(name), kSeedOutputDigests.at(name)) << name;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, GoldenOutputDigest,
                         ::testing::ValuesIn(workload_names()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace avr
