// Value-identity pin for the hot-path/flat-counter refactor: a small
// deterministic (workload x design) point whose harness-reported metrics
// were captured on the pre-refactor seed model (commit 0c25d73, -O2). Every
// metric must stay bit-identical — the stats flattening, the DRAM
// address-map shift/mask rewrite and the interval-core/hierarchy hoists are
// pure mechanical changes, and any drift here means simulated behaviour
// changed.
//
// The kernel uses only float +/* arithmetic (no libm), so the pinned values
// are reproducible across IEEE-754 platforms and compilers.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "runtime/system.hh"

namespace avr {
namespace {

SimConfig small_cfg() {
  SimConfig cfg;
  cfg.scale_caches(64);  // L1 1 kB, L2 4 kB, LLC 128 kB
  return cfg;
}

/// Writes then repeatedly reads a smooth field twice the LLC size — the
/// same kernel test_system_integration streams, which touches every request
/// and eviction path of every design.
RunMetrics run_kernel(Design d) {
  System sys(d, small_cfg());
  const uint64_t n = 64 * 1024;  // floats = 256 kB
  const uint64_t a = sys.alloc("field", n * sizeof(float), /*approx=*/true);
  for (uint64_t i = 0; i < n; ++i)
    sys.store_f32(a + i * 4, 10.0f + 0.001f * static_cast<float>(i % 4096));
  double acc = 0;
  for (int pass = 0; pass < 2; ++pass)
    for (uint64_t i = 0; i < n; ++i) acc += sys.load_f32(a + i * 4);
  EXPECT_GT(acc, 0.0);
  sys.finish();
  return sys.metrics();
}

struct Pinned {
  double amat;
  uint64_t cycles, instructions;
  uint64_t llc_requests, llc_misses;
  uint64_t dram_bytes, dram_bytes_approx, dram_bytes_other, metadata_bytes;
  double energy_core, energy_l1l2, energy_llc, energy_dram, energy_compressor;
  double compression_ratio;
  std::map<std::string, uint64_t> detail;
};

// Captured from the seed model. clang-format off keeps the table readable.
// clang-format off
const std::map<Design, Pinned> kSeed = {
    {Design::kBaseline,
     {18.988525390625,
      1778544, 983040, 12288, 12288, 1048576, 1048576, 0, 0,
      410033.28000000003, 42943.679999999993, 149041.91999999998,
      278636.48000000004, 0.0, 1.0,
      {{"requests", 12288}, {"traffic_approx_bytes", 1048576}}}},
    {Design::kDoppelganger,
     {6.93280029296875,
      612648, 983040, 12288, 6293, 664896, 664896, 0, 0,
      270125.76000000001, 19625.760000000002, 55770.240000000005,
      118500.48000000001, 0.0, 1.0,
      {{"data_evictions", 2197}, {"dedup_hits", 6143}, {"hits", 5995},
       {"requests", 12288}, {"traffic_approx_bytes", 664896},
       {"unshares", 4095}}}},
    {Design::kTruncate,
     {17.741902669270832,
      1655584, 983040, 12288, 12288, 524288, 524288, 0, 0,
      395278.07999999996, 40484.479999999996, 139205.12,
      224397.44000000003, 0.0, 1.0,
      {{"requests", 12288}, {"traffic_approx_bytes", 524288}}}},
    {Design::kZeroAvr,
     {18.988525390625,
      1778544, 983040, 12288, 12288, 1048576, 0, 1048576, 0,
      410033.28000000003, 42943.679999999993, 149041.91999999998,
      278636.48000000004, 7114.1760000000004, 1.0,
      {{"evict_other_wb", 4096}, {"req_miss_other", 12288},
       {"requests", 12288}, {"traffic_other_bytes", 1048576}}}},
    {Design::kAvr,
     {5.966206868489583,
      569056, 983040, 12288, 4608, 311296, 311296, 0, 768,
      264894.71999999997, 18753.919999999998, 52282.880000000005,
      83396.720000000001, 2685.8240000000001, 16.0,
      {{"approx_evictions", 256}, {"approx_requests", 12288},
       {"block_fetch_lines", 512}, {"block_fetches", 512},
       {"cms_block_evictions", 385}, {"compress_attempts", 256},
       {"compress_successes", 256}, {"decompressions", 512},
       {"evict_fetch_recompress", 256}, {"pfe_promotions", 511},
       {"req_hit_dbuf", 7680}, {"req_miss", 4608}, {"requests", 12288},
       {"traffic_approx_bytes", 311296}}}},
};
// clang-format on

class StatsIdentity : public ::testing::TestWithParam<Design> {};

TEST_P(StatsIdentity, MetricsBitIdenticalToSeedCapture) {
  const Design d = GetParam();
  const Pinned& p = kSeed.at(d);
  const RunMetrics m = run_kernel(d);

  EXPECT_EQ(m.cycles, p.cycles);
  EXPECT_EQ(m.instructions, p.instructions);
  EXPECT_EQ(m.llc_requests, p.llc_requests);
  EXPECT_EQ(m.llc_misses, p.llc_misses);
  EXPECT_EQ(m.dram_bytes, p.dram_bytes);
  EXPECT_EQ(m.dram_bytes_approx, p.dram_bytes_approx);
  EXPECT_EQ(m.dram_bytes_other, p.dram_bytes_other);
  EXPECT_EQ(m.metadata_bytes, p.metadata_bytes);

  // Derived doubles: deterministic functions of the integers above and the
  // energy constants, compared bit-exactly.
  EXPECT_DOUBLE_EQ(m.ipc, static_cast<double>(p.instructions) / p.cycles);
  EXPECT_DOUBLE_EQ(m.amat, p.amat);
  EXPECT_DOUBLE_EQ(m.llc_mpki, 1000.0 * static_cast<double>(p.llc_misses) /
                                   p.instructions);
  EXPECT_DOUBLE_EQ(m.energy.core, p.energy_core);
  EXPECT_DOUBLE_EQ(m.energy.l1l2, p.energy_l1l2);
  EXPECT_DOUBLE_EQ(m.energy.llc, p.energy_llc);
  EXPECT_DOUBLE_EQ(m.energy.dram, p.energy_dram);
  EXPECT_DOUBLE_EQ(m.energy.compressor, p.energy_compressor);
  EXPECT_DOUBLE_EQ(m.compression_ratio, p.compression_ratio);

  // The design-specific detail counters must match key set AND values —
  // in particular, counters that were never bumped must stay absent.
  EXPECT_EQ(m.detail, p.detail);
}

INSTANTIATE_TEST_SUITE_P(AllDesigns, StatsIdentity,
                         ::testing::Values(Design::kBaseline,
                                           Design::kDoppelganger,
                                           Design::kTruncate, Design::kZeroAvr,
                                           Design::kAvr),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

}  // namespace
}  // namespace avr
