// Harness tests: the result cache round-trips and config_for applies the
// per-workload knobs.
#include "harness/experiment.hh"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "workloads/workload_registry.hh"

namespace avr {
namespace {

TEST(ExperimentRunner, ConfigForAppliesWorkloadKnobs) {
  ExperimentRunner r({}, false, "");
  auto lbm = make_workload("lbm");
  const SimConfig cfg = r.config_for(*lbm);
  EXPECT_EQ(cfg.llc.size_bytes, lbm->llc_bytes());
  EXPECT_EQ(cfg.avr.t1_mantissa_msbit, lbm->t1_msbit());
  EXPECT_EQ(cfg.l1.size_bytes, SimConfig{}.l1.size_bytes / lbm->cache_scale());
}

TEST(ExperimentRunner, DiskCacheRoundTrip) {
  const std::string path = std::filesystem::temp_directory_path() /
                           "avr_test_cache.csv";
  std::remove(path.c_str());

  RunMetrics written;
  {
    ExperimentRunner r({}, false, path);
    // Smallest workload x cheapest design to keep this test quick.
    const ExperimentResult& res = r.run("kmeans", Design::kBaseline);
    written = res.m;
    EXPECT_GT(written.cycles, 0u);
  }
  {
    // A fresh runner must load the result instead of re-simulating; verify
    // by checking a few fields match bit-for-bit.
    ExperimentRunner r({}, false, path);
    const ExperimentResult& res = r.run("kmeans", Design::kBaseline);
    EXPECT_EQ(res.m.cycles, written.cycles);
    EXPECT_EQ(res.m.instructions, written.instructions);
    EXPECT_EQ(res.m.dram_bytes, written.dram_bytes);
    EXPECT_EQ(res.m.llc_misses, written.llc_misses);
    EXPECT_DOUBLE_EQ(res.m.output_error, written.output_error);
    EXPECT_EQ(res.m.detail.at("requests"), written.detail.at("requests"));
  }
  std::remove(path.c_str());
}

TEST(ExperimentRunner, PaperDesignsList) {
  const auto d = ExperimentRunner::paper_designs();
  ASSERT_EQ(d.size(), 5u);
  EXPECT_EQ(d.front(), Design::kBaseline);
  EXPECT_EQ(d.back(), Design::kAvr);
}

}  // namespace
}  // namespace avr
