// Harness tests: the result cache round-trips and config_for applies the
// per-workload knobs.
#include "harness/experiment.hh"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>

#include "harness/result_cache.hh"
#include "workloads/workload_registry.hh"

namespace avr {
namespace {

/// Points AVR_SEED_COSTS somewhere for one test, restoring the previous
/// value on destruction (the override could otherwise leak into sibling
/// tests, or clobber a value the developer exported).
class ScopedSeedCosts {
 public:
  explicit ScopedSeedCosts(const std::string& path) {
    if (const char* prev = ::getenv("AVR_SEED_COSTS")) previous_ = prev;
    ::setenv("AVR_SEED_COSTS", path.c_str(), 1);
  }
  ~ScopedSeedCosts() {
    if (previous_)
      ::setenv("AVR_SEED_COSTS", previous_->c_str(), 1);
    else
      ::unsetenv("AVR_SEED_COSTS");
  }

 private:
  std::optional<std::string> previous_;
};

TEST(ExperimentRunner, ConfigForAppliesWorkloadKnobs) {
  ExperimentRunner r({}, false, "");
  auto lbm = make_workload("lbm");
  const SimConfig cfg = r.config_for(*lbm);
  EXPECT_EQ(cfg.llc.size_bytes, lbm->llc_bytes());
  EXPECT_EQ(cfg.avr.t1_mantissa_msbit, lbm->t1_msbit());
  EXPECT_EQ(cfg.l1.size_bytes, SimConfig{}.l1.size_bytes / lbm->cache_scale());
}

TEST(ExperimentRunner, DiskCacheRoundTrip) {
  const std::string path = std::filesystem::temp_directory_path() /
                           "avr_test_cache.csv";
  std::remove(path.c_str());

  RunMetrics written;
  double written_wall = 0;
  {
    ExperimentRunner r({}, false, path);
    EXPECT_FALSE(r.cached("kmeans", Design::kBaseline));
    // Smallest workload x cheapest design to keep this test quick.
    const ExperimentResult& res = r.run("kmeans", Design::kBaseline);
    written = res.m;
    written_wall = res.wall_seconds;
    EXPECT_GT(written.cycles, 0u);
    EXPECT_GT(written_wall, 0.0);
    EXPECT_TRUE(r.cached("kmeans", Design::kBaseline));
  }
  {
    // A fresh runner must load the result instead of re-simulating; verify
    // by checking a few fields match bit-for-bit.
    ExperimentRunner r({}, false, path);
    EXPECT_TRUE(r.cached("kmeans", Design::kBaseline));
    const ExperimentResult& res = r.run("kmeans", Design::kBaseline);
    EXPECT_EQ(res.m.cycles, written.cycles);
    EXPECT_EQ(res.m.instructions, written.instructions);
    EXPECT_EQ(res.m.dram_bytes, written.dram_bytes);
    EXPECT_EQ(res.m.llc_misses, written.llc_misses);
    EXPECT_DOUBLE_EQ(res.m.output_error, written.output_error);
    EXPECT_EQ(res.m.detail.at("requests"), written.detail.at("requests"));
    // The wall-clock measurement is persisted too: it seeds the
    // longest-first scheduler's cost estimate.
    EXPECT_DOUBLE_EQ(res.wall_seconds, written_wall);
    EXPECT_DOUBLE_EQ(r.cost_estimate("kmeans", Design::kBaseline), written_wall);
  }
  std::remove(path.c_str());
}

TEST(ExperimentRunner, CostEstimateUsesSeedCostFileOnColdCache) {
  const std::string path =
      std::filesystem::temp_directory_path() / "avr_test_seed_costs.csv";
  {
    std::ofstream out(path);
    out << "# comment line\n";
    out << "kmeans,baseline,7.25\n";
    out << "kmeans,AVR,31.5\n";
    out << "nosuchworkload,baseline,1.0\n";  // tolerated: never queried
    out << "kmeans,nosuchdesign,1.0\n";      // skipped: unknown design
    out << "malformed line without commas\n";
  }
  ScopedSeedCosts env(path);
  ExperimentRunner r({}, false, "");
  // Cold cache: the committed measurement wins over the heuristic.
  EXPECT_DOUBLE_EQ(r.cost_estimate("kmeans", Design::kBaseline), 7.25);
  EXPECT_DOUBLE_EQ(r.cost_estimate("kmeans", Design::kAvr), 31.5);
  // Unlisted points still fall back to the heuristic.
  EXPECT_GT(r.cost_estimate("lbm", Design::kAvr), 0.0);
  std::remove(path.c_str());
}

TEST(ExperimentRunner, MeasuredWallSecondsBeatSeedCosts) {
  const std::string seed_path =
      std::filesystem::temp_directory_path() / "avr_test_seed_costs2.csv";
  const std::string cache_path =
      std::filesystem::temp_directory_path() / "avr_test_seed_cache.csv";
  std::remove(cache_path.c_str());
  {
    std::ofstream out(seed_path);
    out << "kmeans,baseline,7.0\n";
  }
  ExperimentResult res;
  res.workload = "kmeans";
  res.design = Design::kBaseline;
  // Records only warm a runner whose base-config fingerprint matches.
  res.config_hash = config_fingerprint(SimConfig{});
  res.wall_seconds = 42.0;
  ASSERT_TRUE(append_result_line(cache_path, res));

  ScopedSeedCosts env(seed_path);
  ExperimentRunner r({}, false, cache_path);
  // A persisted measurement from a real run outranks the committed seed.
  EXPECT_DOUBLE_EQ(r.cost_estimate("kmeans", Design::kBaseline), 42.0);
  std::remove(seed_path.c_str());
  std::remove(cache_path.c_str());
}

TEST(ExperimentRunner, CostEstimateHeuristicOrdersDesignsByWork) {
  // With nothing cached the estimate falls back to the static heuristic:
  // compression designs cost more than the baseline on the same workload,
  // and a bigger-footprint workload costs more than a smaller one.
  // (Point AVR_SEED_COSTS at a nonexistent file in case the build tree ever
  // gains a data/seed_costs.csv relative to the test's working directory.)
  ScopedSeedCosts env("/nonexistent/avr_seed_costs.csv");
  ExperimentRunner r({}, false, "");
  EXPECT_GT(r.cost_estimate("kmeans", Design::kAvr),
            r.cost_estimate("kmeans", Design::kBaseline));
  auto big = make_workload("lbm");
  auto small = make_workload("kmeans");
  if (big->llc_bytes() > small->llc_bytes()) {
    EXPECT_GT(r.cost_estimate("lbm", Design::kAvr),
              r.cost_estimate("kmeans", Design::kAvr));
  }
}

TEST(ExperimentRunner, RunPointsHandlesArbitrarySlicesAndDuplicates) {
  ExperimentRunner r({}, false, "");
  // A non-cross-product list with a duplicate — the shape a shard produces.
  const std::vector<std::pair<std::string, Design>> points = {
      {"kmeans", Design::kBaseline},
      {"bscholes", Design::kTruncate},
      {"kmeans", Design::kBaseline},
  };
  const auto got = r.run_points(points, 2);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].workload, "kmeans");
  EXPECT_EQ(got[1].workload, "bscholes");
  EXPECT_EQ(got[1].design, Design::kTruncate);
  EXPECT_EQ(got[2].m.cycles, got[0].m.cycles);
}

TEST(ExperimentRunner, PaperDesignsList) {
  const auto d = ExperimentRunner::paper_designs();
  ASSERT_EQ(d.size(), 5u);
  EXPECT_EQ(d.front(), Design::kBaseline);
  EXPECT_EQ(d.back(), Design::kAvr);
}

}  // namespace
}  // namespace avr
