#include "avr/avr_llc.hh"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/prng.hh"

namespace avr {
namespace {

CacheConfig small_cfg() {
  // 64 kB, 16-way => 64 sets; small enough to force interesting evictions.
  return CacheConfig{64 * 1024, 16, 15};
}

bool contains_ucl(const std::vector<LlcVictim>& v, uint64_t addr) {
  return std::any_of(v.begin(), v.end(), [&](const LlcVictim& x) {
    return x.kind == LlcVictim::kUcl && x.addr == addr;
  });
}
bool contains_cms(const std::vector<LlcVictim>& v, uint64_t block) {
  return std::any_of(v.begin(), v.end(), [&](const LlcVictim& x) {
    return x.kind == LlcVictim::kCmsBlock && x.addr == block;
  });
}

TEST(AvrLlc, UclInsertLookupHit) {
  AvrLlc llc(small_cfg());
  std::vector<LlcVictim> v;
  llc.ucl_insert(0x10000040, false, v);
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(llc.ucl_present(0x10000040));
  EXPECT_TRUE(llc.ucl_access(0x10000040, false));
  EXPECT_FALSE(llc.ucl_present(0x10000080));  // neighbour line absent
}

TEST(AvrLlc, SameSuffixDifferentBlocksDisambiguatedByTagWay) {
  AvrLlc llc(small_cfg());
  std::vector<LlcVictim> v;
  // Two lines with identical CL offset (suffix) in different blocks that
  // share the same UCL set: the BPA tag-way check must tell them apart.
  const uint64_t sets = llc.num_sets();
  const uint64_t a = 0x40000000;                  // block A, line 0
  const uint64_t b = a + sets * kCachelineBytes * 16;  // same indexes, block B
  llc.ucl_insert(a, false, v);
  EXPECT_FALSE(llc.ucl_present(b));
  llc.ucl_insert(b, false, v);
  EXPECT_TRUE(llc.ucl_present(a));
  EXPECT_TRUE(llc.ucl_present(b));
}

TEST(AvrLlc, UclDirtyTracking) {
  AvrLlc llc(small_cfg());
  std::vector<LlcVictim> v;
  llc.ucl_insert(0x20000000, false, v);
  llc.ucl_access(0x20000000, /*write=*/true);
  auto inv = llc.ucl_invalidate(0x20000000);
  ASSERT_TRUE(inv);
  EXPECT_TRUE(*inv);
  EXPECT_FALSE(llc.ucl_present(0x20000000));
}

TEST(AvrLlc, UclMarkClean) {
  AvrLlc llc(small_cfg());
  std::vector<LlcVictim> v;
  llc.ucl_insert(0x20000000, true, v);
  llc.ucl_mark_clean(0x20000000);
  EXPECT_FALSE(*llc.ucl_invalidate(0x20000000));
}

TEST(AvrLlc, CmsInsertPresentCount) {
  AvrLlc llc(small_cfg());
  std::vector<LlcVictim> v;
  llc.cms_insert(0x30000000, 3, false, v);
  EXPECT_TRUE(llc.cms_present(0x30000000));
  EXPECT_TRUE(llc.cms_present(0x30000200));  // any addr inside the block
  EXPECT_EQ(llc.cms_count(0x30000000), 3u);
  EXPECT_FALSE(llc.cms_dirty(0x30000000));
  llc.cms_mark_dirty(0x30000000);
  EXPECT_TRUE(llc.cms_dirty(0x30000000));
}

TEST(AvrLlc, CmsRemoveLeavesUcls) {
  AvrLlc llc(small_cfg());
  std::vector<LlcVictim> v;
  const uint64_t block = 0x30000000;
  llc.cms_insert(block, 2, true, v);
  llc.ucl_insert(block + 0x40, true, v);
  llc.cms_remove(block);
  EXPECT_FALSE(llc.cms_present(block));
  EXPECT_TRUE(llc.ucl_present(block + 0x40));  // tag survived for the UCL
}

TEST(AvrLlc, UclAndCmsCoexistWithoutConflict) {
  AvrLlc llc(small_cfg());
  std::vector<LlcVictim> v;
  const uint64_t block = 0x50000000;
  llc.cms_insert(block, 8, false, v);
  for (uint32_t i = 0; i < kBlockLines; ++i)
    llc.ucl_insert(block + i * kCachelineBytes, false, v);
  EXPECT_TRUE(v.empty()) << "16 UCLs + 8 CMSs must fit without evictions";
  EXPECT_TRUE(llc.cms_present(block));
  for (uint32_t i = 0; i < kBlockLines; ++i)
    EXPECT_TRUE(llc.ucl_present(block + i * kCachelineBytes)) << i;
}

TEST(AvrLlc, CmsVictimDragsWholeBlockOut) {
  AvrLlc llc(small_cfg());
  std::vector<LlcVictim> v;
  const uint64_t block = 0x60000000;
  llc.cms_insert(block, 4, true, v);
  ASSERT_TRUE(v.empty());
  // Flood the CMS's first set with UCLs of *other* blocks until the CMS
  // becomes the LRU victim.
  const uint64_t sets = llc.num_sets();
  const uint64_t tag_set = (block >> 10) & (sets - 1);
  int evicted_rounds = 0;
  for (uint64_t i = 0; i < 64 && !contains_cms(v, block); ++i) {
    // Lines whose UCL index == tag_set but from distinct far-away blocks.
    const uint64_t line = ((0x100000 + i * 16) * sets + tag_set) * kCachelineBytes;
    if (!llc.ucl_present(line)) llc.ucl_insert(line, false, v);
    ++evicted_rounds;
  }
  EXPECT_TRUE(contains_cms(v, block));
  EXPECT_FALSE(llc.cms_present(block));
  // The reported block eviction carries the dirty flag.
  for (const auto& x : v) {
    if (x.kind == LlcVictim::kCmsBlock && x.addr == block) {
      EXPECT_TRUE(x.dirty);
    }
  }
  (void)evicted_rounds;
}

TEST(AvrLlc, TagEvictionEvictsAllResidentLines) {
  // 16 tag ways per set: inserting 17 blocks with the same tag index forces
  // a tag eviction, which must push out the victim block's UCLs and CMSs.
  AvrLlc llc(small_cfg());
  std::vector<LlcVictim> v;
  const uint64_t sets = llc.num_sets();
  const uint64_t first = 0x70000000;
  llc.cms_insert(first, 2, true, v);
  llc.ucl_insert(first + 0x40, true, v);
  for (uint64_t i = 1; i <= 16; ++i) {
    const uint64_t block = first + i * sets * kBlockBytes;  // same tag index
    llc.ucl_insert(block, false, v);
  }
  EXPECT_TRUE(contains_cms(v, first));
  EXPECT_TRUE(contains_ucl(v, first + 0x40));
  EXPECT_FALSE(llc.cms_present(first));
  EXPECT_FALSE(llc.ucl_present(first + 0x40));
}

TEST(AvrLlc, UclsOfBlockFindsDirtyOnly) {
  AvrLlc llc(small_cfg());
  std::vector<LlcVictim> v;
  const uint64_t block = 0x40000000;
  llc.ucl_insert(block + 0x00, true, v);
  llc.ucl_insert(block + 0x40, false, v);
  llc.ucl_insert(block + 0x80, true, v);
  auto dirty = llc.ucls_of_block(block, /*dirty_only=*/true);
  auto all = llc.ucls_of_block(block, /*dirty_only=*/false);
  EXPECT_EQ(dirty.size(), 2u);
  EXPECT_EQ(all.size(), 3u);
  EXPECT_TRUE(std::count(dirty.begin(), dirty.end(), block + 0x00));
  EXPECT_TRUE(std::count(dirty.begin(), dirty.end(), block + 0x80));
}

TEST(AvrLlc, CmsTouchRefreshesLru) {
  AvrLlc llc(small_cfg());
  std::vector<LlcVictim> v;
  const uint64_t block = 0x60000000;
  llc.cms_insert(block, 1, false, v);
  const uint64_t sets = llc.num_sets();
  const uint64_t tag_set = (block >> 10) & (sets - 1);
  // Insert 15 UCLs from other blocks into the same set (fills 16 ways with
  // the CMS), then touch the CMS and insert one more: a UCL, not the CMS,
  // must be the victim.
  for (uint64_t i = 0; i < 15; ++i) {
    const uint64_t line = ((0x200000 + i * 16) * sets + tag_set) * kCachelineBytes;
    llc.ucl_insert(line, false, v);
  }
  ASSERT_TRUE(v.empty());
  llc.cms_touch(block);
  const uint64_t line = ((0x300000) * sets + tag_set) * kCachelineBytes;
  llc.ucl_insert(line, false, v);
  EXPECT_FALSE(contains_cms(v, block));
  EXPECT_TRUE(llc.cms_present(block));
}

TEST(AvrLlc, AllResidentEnumerates) {
  AvrLlc llc(small_cfg());
  std::vector<LlcVictim> v;
  llc.cms_insert(0x10000000, 2, true, v);
  llc.ucl_insert(0x20000040, true, v);
  llc.ucl_insert(0x20000080, false, v);
  auto all = llc.all_resident();
  int cms = 0, ucl = 0;
  for (const auto& x : all) (x.kind == LlcVictim::kCmsBlock ? cms : ucl)++;
  EXPECT_EQ(cms, 1);
  EXPECT_EQ(ucl, 2);
}

TEST(AvrLlc, RejectsBadGeometry) {
  EXPECT_THROW(AvrLlc(CacheConfig{1000, 3, 1}), std::invalid_argument);
  EXPECT_THROW(AvrLlc(CacheConfig{64 * 1024, 0, 1}), std::invalid_argument);
}

class AvrLlcStress : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AvrLlcStress, RandomOperationsKeepInvariants) {
  AvrLlc llc(CacheConfig{16 * 1024, 8, 15});
  Xoshiro256 rng(GetParam());
  std::vector<LlcVictim> v;
  for (int i = 0; i < 4000; ++i) {
    const uint64_t block = 0x10000000 + rng.below(256) * kBlockBytes;
    switch (rng.below(5)) {
      case 0: {
        const uint64_t line = block + rng.below(16) * kCachelineBytes;
        if (!llc.ucl_present(line)) llc.ucl_insert(line, rng.below(2), v);
        break;
      }
      case 1: {
        const uint64_t line = block + rng.below(16) * kCachelineBytes;
        llc.ucl_access(line, rng.below(2));
        break;
      }
      case 2:
        if (!llc.cms_present(block))
          llc.cms_insert(block, 1 + rng.below(kMaxCompressedLines), rng.below(2), v);
        break;
      case 3:
        llc.cms_remove(block);
        break;
      case 4:
        llc.cms_touch(block);
        break;
    }
    // Invariant: cms_count consistent with presence.
    EXPECT_EQ(llc.cms_present(block), llc.cms_count(block) > 0);
  }
  // Invariant: total resident entries fit the data array.
  uint64_t entries = 0;
  for (const auto& x : llc.all_resident())
    entries += x.kind == LlcVictim::kCmsBlock ? llc.cms_count(x.addr) : 1;
  EXPECT_LE(entries, 16ull * 1024 / kCachelineBytes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AvrLlcStress, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace avr
