// Tests for the deterministic fault-injection layer (common/fault_inject.hh):
// the AVR_FAULTS grammar, nth- and probability-triggered rules, hit/fired
// counters, interleaving-independence of the seeded decisions, the EINTR
// storm cap, and environment (re)initialization.
#include "common/fault_inject.hh"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

namespace avr::fault {
namespace {

// ---- grammar ---------------------------------------------------------------

TEST(FaultSchedule, ParsesSeedAndRules) {
  Schedule s;
  std::string err;
  ASSERT_TRUE(parse_schedule("42:cache.append=eintr@0.4,claim.stake=kill@n2",
                             &s, &err))
      << err;
  EXPECT_EQ(s.seed, 42u);
  const SiteRule& append = s.rules[size_t(Site::kCacheAppend)];
  EXPECT_EQ(append.kind, Kind::kEintr);
  EXPECT_EQ(append.nth, 0u);
  EXPECT_DOUBLE_EQ(append.prob, 0.4);
  const SiteRule& stake = s.rules[size_t(Site::kClaimStake)];
  EXPECT_EQ(stake.kind, Kind::kKill);
  EXPECT_EQ(stake.nth, 2u);
  EXPECT_TRUE(s.any());
}

TEST(FaultSchedule, ParsesEverySiteAndKind) {
  const char* sites[] = {"cache.append",   "cache.load",    "lock.acquire",
                         "claim.stake",    "point.complete", "sidecar.write",
                         "sidecar.rename"};
  const char* kinds[] = {"short_write", "eintr", "eio", "enospc", "timeout",
                         "kill"};
  for (const char* site : sites) {
    for (const char* kind : kinds) {
      Schedule s;
      std::string err;
      const std::string spec =
          std::string("7:") + site + "=" + kind + "@n1";
      EXPECT_TRUE(parse_schedule(spec, &s, &err)) << spec << ": " << err;
    }
  }
}

TEST(FaultSchedule, SiteAndKindNamesRoundTrip) {
  for (size_t i = 0; i < kNumSites; ++i) {
    Schedule s;
    std::string err;
    const std::string spec =
        std::string("1:") + site_name(Site(i)) + "=eio@n1";
    ASSERT_TRUE(parse_schedule(spec, &s, &err)) << spec << ": " << err;
    EXPECT_EQ(s.rules[i].kind, Kind::kEio);
  }
  EXPECT_STREQ(kind_name(Kind::kNone), "none");
  EXPECT_STREQ(kind_name(Kind::kKill), "kill");
}

TEST(FaultSchedule, RejectsMalformedSpecs) {
  const char* bad[] = {
      "",                            // empty
      "42",                          // no rules
      "42:",                         // empty rule list
      "x:cache.append=eio@n1",       // non-numeric seed
      "42:cache.append=eio",         // missing @when
      "42:cache.append@n1",          // missing =kind
      "42:nosuch.site=eio@n1",       // unknown site
      "42:cache.append=nosuch@n1",   // unknown kind
      "42:cache.append=eio@n0",      // nth must be >= 1
      "42:cache.append=eio@0",       // prob must be > 0
      "42:cache.append=eio@1.5",     // prob must be <= 1
      "42:cache.append=eio@-0.5",    // negative prob
      "42:cache.append=eio@wat",     // unparseable when
      "42:cache.append=eio@n1,",     // trailing comma = empty rule
      "cache.append=eio@n1",         // missing seed prefix
  };
  for (const char* spec : bad) {
    Schedule s;
    std::string err;
    EXPECT_FALSE(parse_schedule(spec, &s, &err)) << "accepted: " << spec;
    EXPECT_FALSE(err.empty()) << spec;
  }
}

TEST(FaultSchedule, LaterRuleForSameSiteWins) {
  Schedule s;
  std::string err;
  ASSERT_TRUE(parse_schedule("1:cache.load=eio@n1,cache.load=enospc@n3", &s,
                             &err))
      << err;
  EXPECT_EQ(s.rules[size_t(Site::kCacheLoad)].kind, Kind::kEnospc);
  EXPECT_EQ(s.rules[size_t(Site::kCacheLoad)].nth, 3u);
}

#if AVR_FAULT_INJECT

// Arm/disarm around every runtime test: leaked arming would inject faults
// into other tests' cache I/O.
class FaultRuntime : public ::testing::Test {
 protected:
  void TearDown() override {
    disarm();
    unsetenv("AVR_FAULTS");
  }
  static Schedule parse_ok(const std::string& spec) {
    Schedule s;
    std::string err;
    EXPECT_TRUE(parse_schedule(spec, &s, &err)) << err;
    return s;
  }
};

TEST_F(FaultRuntime, UnarmedFiresNothingAndCountsNothing) {
  disarm();
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(fire(Site::kCacheAppend), Kind::kNone);
  EXPECT_EQ(hits(Site::kCacheAppend), 0u);
  EXPECT_EQ(fired(Site::kCacheAppend), 0u);
}

TEST_F(FaultRuntime, NthRuleFiresOnExactlyThatHit) {
  arm(parse_ok("9:cache.append=eio@n3"));
  std::vector<Kind> got;
  for (int i = 0; i < 6; ++i) got.push_back(fire(Site::kCacheAppend));
  EXPECT_EQ(got[0], Kind::kNone);
  EXPECT_EQ(got[1], Kind::kNone);
  EXPECT_EQ(got[2], Kind::kEio);  // the 3rd hit, 1-based
  EXPECT_EQ(got[3], Kind::kNone);
  EXPECT_EQ(got[4], Kind::kNone);
  EXPECT_EQ(got[5], Kind::kNone);
  EXPECT_EQ(hits(Site::kCacheAppend), 6u);
  EXPECT_EQ(fired(Site::kCacheAppend), 1u);
  // An unruled site stays silent but still proceeds.
  EXPECT_EQ(fire(Site::kCacheLoad), Kind::kNone);
  EXPECT_EQ(hits(Site::kCacheLoad), 1u);
  EXPECT_EQ(fired(Site::kCacheLoad), 0u);
}

TEST_F(FaultRuntime, ProbabilisticDecisionsReplayExactly) {
  // Same seed => identical per-hit decisions, independent of when/where the
  // hits happen — the property that makes chaos schedules replayable.
  auto run = [&](uint64_t seed) {
    Schedule s = parse_ok(std::to_string(seed) + ":cache.load=eio@0.5");
    arm(s);
    std::vector<Kind> out;
    for (int i = 0; i < 64; ++i) out.push_back(fire(Site::kCacheLoad));
    disarm();
    return out;
  };
  const auto a = run(1234), b = run(1234), c = run(5678);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // (2^-64 false-failure odds: the streams are independent)
  // p=0.5 over 64 hits: both outcomes must appear.
  EXPECT_GT(std::count(a.begin(), a.end(), Kind::kEio), 0);
  EXPECT_GT(std::count(a.begin(), a.end(), Kind::kNone), 0);
}

TEST_F(FaultRuntime, EintrStormIsCappedPerSite) {
  // Probability 1.0 EINTR would wedge a retry loop forever; the layer caps
  // consecutive injections at kMaxEintrStorm, lets one through, and starts
  // a fresh storm — so armed loops always make progress.
  arm(parse_ok("5:lock.acquire=eintr@1.0"));
  uint64_t consecutive = 0, max_run = 0;
  for (int i = 0; i < 100; ++i) {
    if (fire(Site::kLockAcquire) == Kind::kEintr) {
      max_run = std::max(max_run, ++consecutive);
    } else {
      consecutive = 0;
    }
  }
  EXPECT_EQ(max_run, kMaxEintrStorm);
  EXPECT_LT(fired(Site::kLockAcquire), hits(Site::kLockAcquire));
}

TEST_F(FaultRuntime, ArmResetsCounters) {
  arm(parse_ok("1:cache.append=eio@n1"));
  EXPECT_EQ(fire(Site::kCacheAppend), Kind::kEio);
  EXPECT_EQ(hits(Site::kCacheAppend), 1u);
  arm(parse_ok("1:cache.append=eio@n1"));
  EXPECT_EQ(hits(Site::kCacheAppend), 0u);
  EXPECT_EQ(fire(Site::kCacheAppend), Kind::kEio);  // n1 fires again
}

TEST_F(FaultRuntime, ReinitFromEnvArmsAndDisarms) {
  setenv("AVR_FAULTS", "77:sidecar.write=enospc@n1", 1);
  EXPECT_TRUE(reinit_from_env());
  EXPECT_EQ(fire(Site::kSidecarWrite), Kind::kEnospc);
  unsetenv("AVR_FAULTS");
  EXPECT_FALSE(reinit_from_env());
  EXPECT_EQ(fire(Site::kSidecarWrite), Kind::kNone);
}

TEST_F(FaultRuntime, MalformedEnvDisarmsLoudly) {
  // A chaos run with a typoed schedule must not silently run fault-free:
  // the layer warns on stderr and stays disarmed.
  setenv("AVR_FAULTS", "not-a-schedule", 1);
  testing::internal::CaptureStderr();
  EXPECT_FALSE(reinit_from_env());
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("malformed AVR_FAULTS"), std::string::npos) << err;
  EXPECT_EQ(fire(Site::kCacheAppend), Kind::kNone);
}

#else  // !AVR_FAULT_INJECT

TEST(FaultRuntime, CompiledOutLayerFoldsToNone) {
  // The grammar still parses (tooling validates specs), but fire() is a
  // constant and arming is a no-op.
  Schedule s;
  std::string err;
  ASSERT_TRUE(parse_schedule("1:cache.append=kill@n1", &s, &err)) << err;
  arm(s);
  EXPECT_EQ(fire(Site::kCacheAppend), Kind::kNone);
  EXPECT_EQ(hits(Site::kCacheAppend), 0u);
}

#endif  // AVR_FAULT_INJECT

}  // namespace
}  // namespace avr::fault
