// Workload-level tests: registry completeness, determinism of the golden
// runs, output sanity and the error metric.
#include <gtest/gtest.h>
#include <cmath>
#include <limits>

#include "workloads/workload.hh"
#include "workloads/workload_registry.hh"

namespace avr {
namespace {

TEST(Workloads, RegistryHasAllSeven) {
  const auto names = workload_names();
  ASSERT_EQ(names.size(), 7u);
  for (const auto& n : names) {
    auto wl = make_workload(n);
    ASSERT_NE(wl, nullptr) << n;
    EXPECT_EQ(wl->name(), n);
    EXPECT_GT(wl->paper_compression_ratio(), 1.0) << n;
  }
}

TEST(Workloads, UnknownNameThrows) {
  EXPECT_THROW(make_workload("nosuch"), std::invalid_argument);
}

class WorkloadGolden : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadGolden, RunsAndProducesFiniteOutput) {
  auto wl = make_workload(GetParam());
  System sys(Design::kBaseline, SimConfig{}, 1, /*timing=*/false);
  wl->run(sys);
  const auto out = wl->output(sys);
  ASSERT_FALSE(out.empty());
  double mean_abs = 0;
  for (double v : out) {
    EXPECT_TRUE(std::isfinite(v)) << GetParam();
    mean_abs += std::abs(v);
  }
  EXPECT_GT(mean_abs / out.size(), 0.0) << "output must not be all zero";
}

TEST_P(WorkloadGolden, DeterministicAcrossRuns) {
  auto w1 = make_workload(GetParam());
  System s1(Design::kBaseline, SimConfig{}, 1, false);
  w1->run(s1);
  const auto o1 = w1->output(s1);

  auto w2 = make_workload(GetParam());
  System s2(Design::kBaseline, SimConfig{}, 1, false);
  w2->run(s2);
  const auto o2 = w2->output(s2);

  ASSERT_EQ(o1.size(), o2.size());
  for (size_t i = 0; i < o1.size(); ++i) EXPECT_EQ(o1[i], o2[i]) << i;
}

TEST_P(WorkloadGolden, AllocatesApproxData) {
  auto wl = make_workload(GetParam());
  System sys(Design::kBaseline, SimConfig{}, 1, false);
  wl->run(sys);
  EXPECT_GT(sys.regions().approx_bytes(), 0u);
  EXPECT_GE(sys.regions().total_bytes(), sys.regions().approx_bytes());
}

INSTANTIATE_TEST_SUITE_P(All, WorkloadGolden,
                         ::testing::ValuesIn(workload_names()),
                         [](const auto& info) { return info.param; });

TEST(ErrorMetric, ZeroForIdenticalOutputs) {
  const std::vector<double> a = {1, 2, 3};
  EXPECT_DOUBLE_EQ(mean_relative_error(a, a), 0.0);
}

TEST(ErrorMetric, SimpleRelativeError) {
  EXPECT_NEAR(mean_relative_error({1.1, 2.2}, {1.0, 2.0}), 0.1, 1e-9);
}

TEST(ErrorMetric, SizeMismatchThrows) {
  EXPECT_THROW(mean_relative_error({1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(mean_relative_error({}, {}), std::invalid_argument);
}

TEST(ErrorMetric, NearZeroValuesScoredAgainstScale) {
  // exact = {100, 1e-9}: the tiny element must not dominate the metric.
  const double err = mean_relative_error({100.0, 0.5}, {100.0, 1e-9});
  EXPECT_LT(err, 0.1);
}

TEST(ErrorMetric, NonFinitePenalized) {
  const double err = mean_relative_error(
      {std::numeric_limits<double>::quiet_NaN(), 2.0}, {1.0, 2.0});
  EXPECT_NEAR(err, 0.5, 1e-12);
}

}  // namespace
}  // namespace avr
