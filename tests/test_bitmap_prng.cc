#include <gtest/gtest.h>

#include "common/bitmap.hh"
#include "common/prng.hh"

namespace avr {
namespace {

TEST(Bitmap256, SetTestClear) {
  Bitmap256 b;
  EXPECT_FALSE(b.any());
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(255);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(255));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.popcount(), 4u);
  b.clear(64);
  EXPECT_FALSE(b.test(64));
  EXPECT_EQ(b.popcount(), 3u);
  b.reset();
  EXPECT_FALSE(b.any());
  EXPECT_EQ(b.popcount(), 0u);
}

TEST(Bitmap256, Equality) {
  Bitmap256 a, b;
  a.set(100);
  EXPECT_NE(a, b);
  b.set(100);
  EXPECT_EQ(a, b);
}

TEST(Bitmap256, WordLayoutMatchesBitIndex) {
  Bitmap256 b;
  b.set(65);
  EXPECT_EQ(b.words()[1], uint64_t{1} << 1);
  EXPECT_EQ(b.words()[0], 0u);
}

TEST(Xoshiro, Deterministic) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 2);
}

TEST(Xoshiro, UniformInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro, UniformMeanRoughlyHalf) {
  Xoshiro256 rng(99);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro, BelowBound) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Xoshiro, NormalMoments) {
  Xoshiro256 rng(11);
  double sum = 0, sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

}  // namespace
}  // namespace avr
