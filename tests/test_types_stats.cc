#include <gtest/gtest.h>

#include "common/stats.hh"
#include "common/types.hh"

namespace avr {
namespace {

TEST(Types, AddressHelpers) {
  EXPECT_EQ(line_addr(0x12345), 0x12340u);
  EXPECT_EQ(block_addr(0x12345), 0x12000u);
  EXPECT_EQ(page_addr(0x12345), 0x12000u);
  EXPECT_EQ(page_addr(0x13FFF), 0x13000u);
  EXPECT_EQ(line_in_block(0x12000), 0u);
  EXPECT_EQ(line_in_block(0x12040), 1u);
  EXPECT_EQ(line_in_block(0x123C0), 15u);
}

TEST(Types, Constants) {
  EXPECT_EQ(kBlockBytes, 1024u);
  EXPECT_EQ(kValuesPerBlock, 256u);
  EXPECT_EQ(kBlocksPerPage, 4u);
  EXPECT_EQ(kMaxCompressedLines, 8u);
}

TEST(Types, Names) {
  EXPECT_STREQ(to_string(Design::kAvr), "AVR");
  EXPECT_STREQ(to_string(Design::kZeroAvr), "ZeroAVR");
  EXPECT_STREQ(to_string(Design::kDoppelganger), "dganger");
  EXPECT_STREQ(to_string(Method::kDownsample2D), "ds2d");
  EXPECT_STREQ(to_string(DType::kFloat32), "float32");
}

TEST(StatGroup, CountersAccumulate) {
  StatGroup g("t");
  g.add("x");
  g.add("x", 4);
  g.add_f("y", 0.5);
  g.add_f("y", 0.25);
  EXPECT_EQ(g.get("x"), 5u);
  EXPECT_DOUBLE_EQ(g.get_f("y"), 0.75);
  EXPECT_EQ(g.get("missing"), 0u);
  EXPECT_DOUBLE_EQ(g.get_f("missing"), 0.0);
}

TEST(StatGroup, SetOverwrites) {
  StatGroup g("t");
  g.add("x", 10);
  g.set("x", 3);
  EXPECT_EQ(g.get("x"), 3u);
}

TEST(StatGroup, ResetAndToString) {
  StatGroup g("grp");
  g.add("a", 2);
  EXPECT_NE(g.to_string().find("grp"), std::string::npos);
  EXPECT_NE(g.to_string().find("a = 2"), std::string::npos);
  g.reset();
  EXPECT_EQ(g.get("a"), 0u);
}

TEST(Accumulator, Moments) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  a.add(1.0);
  a.add(3.0);
  a.add(-2.0);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.sum(), 2.0);
  EXPECT_NEAR(a.mean(), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), -2.0);
  EXPECT_DOUBLE_EQ(a.max(), 3.0);
}

}  // namespace
}  // namespace avr
