#include "avr/cmt.hh"

#include <gtest/gtest.h>

#include <tuple>

namespace avr {
namespace {

TEST(BlockMeta, DefaultIsUncompressed) {
  BlockMeta m;
  EXPECT_FALSE(m.compressed());
  EXPECT_EQ(m.lazy_space(), 0u);
}

TEST(BlockMeta, LazySpace) {
  BlockMeta m;
  m.method = Method::kDownsample2D;
  m.size_lines = 3;
  EXPECT_EQ(m.lazy_space(), 13u);
  m.lazy_count = 5;
  EXPECT_EQ(m.lazy_space(), 8u);
  m.lazy_count = 13;
  EXPECT_EQ(m.lazy_space(), 0u);
}

TEST(BlockMeta, PackFitsIn23Bits) {
  BlockMeta m;
  m.method = Method::kDownsample1D;
  m.size_lines = 8;
  m.lazy_count = 15;
  m.bias = -128;
  m.failed = 15;
  m.skipped = 3;
  EXPECT_EQ(m.pack() >> 23, 0u);
}

using MetaTuple = std::tuple<Method, uint8_t, uint8_t, int, uint8_t, uint8_t>;

class MetaRoundTrip : public ::testing::TestWithParam<MetaTuple> {};

TEST_P(MetaRoundTrip, PackUnpackIdentity) {
  const auto [method, size, lazy, bias, failed, skipped] = GetParam();
  BlockMeta m;
  m.method = method;
  m.size_lines = method == Method::kUncompressed ? 0 : size;
  m.lazy_count = lazy;
  m.bias = static_cast<int8_t>(bias);
  m.failed = failed;
  m.skipped = skipped;
  EXPECT_EQ(BlockMeta::unpack(m.pack()), m);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MetaRoundTrip,
    ::testing::Combine(
        ::testing::Values(Method::kUncompressed, Method::kDownsample1D,
                          Method::kDownsample2D),
        ::testing::Values<uint8_t>(1, 4, 8),
        ::testing::Values<uint8_t>(0, 7, 15),
        ::testing::Values(-128, -1, 0, 42, 127),
        ::testing::Values<uint8_t>(0, 9, 15),
        ::testing::Values<uint8_t>(0, 3)));

TEST(Cmt, LookupCreatesDefaultEntry) {
  Cmt cmt(16);
  BlockMeta& m = cmt.lookup(0x10000000);
  EXPECT_FALSE(m.compressed());
  m.method = Method::kDownsample2D;
  m.size_lines = 2;
  EXPECT_TRUE(cmt.lookup(0x10000000).compressed());
}

TEST(Cmt, EntriesArePerBlock) {
  Cmt cmt(16);
  cmt.lookup(0x10000000).size_lines = 1;
  cmt.lookup(0x10000400).size_lines = 2;  // next 1 KB block, same page
  EXPECT_EQ(cmt.lookup(0x10000000).size_lines, 1);
  EXPECT_EQ(cmt.lookup(0x10000400).size_lines, 2);
  // Same block, different line offset -> same entry.
  EXPECT_EQ(cmt.lookup(0x100003C0).size_lines, 1);
}

TEST(Cmt, MissesCostMetadataTraffic) {
  Cmt cmt(16);
  EXPECT_EQ(cmt.metadata_traffic_bytes(), 0u);
  cmt.lookup(0x10000000);
  const uint64_t after_first = cmt.metadata_traffic_bytes();
  EXPECT_GT(after_first, 0u);
  // Same page again: cached, no extra traffic.
  cmt.lookup(0x10000040);
  EXPECT_EQ(cmt.metadata_traffic_bytes(), after_first);
  // Far-away page: miss again.
  cmt.lookup(0x90000000);
  EXPECT_GT(cmt.metadata_traffic_bytes(), after_first);
}

TEST(Cmt, CapacityEvictionsCauseRepeatMisses) {
  Cmt cmt(4);  // 4 cached pages, 4-way => a single set in practice
  for (uint64_t p = 0; p < 8; ++p) cmt.lookup(0x10000000 + p * kPageBytes);
  const uint64_t t1 = cmt.metadata_traffic_bytes();
  cmt.lookup(0x10000000);  // long evicted
  EXPECT_GT(cmt.metadata_traffic_bytes(), t1);
}

TEST(Cmt, LazyLineTracking) {
  Cmt cmt(16);
  const uint64_t block = 0x10000400;
  EXPECT_TRUE(cmt.lazy_lines(block).empty());
  cmt.add_lazy_line(block, 3);
  cmt.add_lazy_line(block, 11);
  ASSERT_EQ(cmt.lazy_lines(block).size(), 2u);
  EXPECT_EQ(cmt.lazy_lines(block)[0], 3);
  EXPECT_EQ(cmt.lazy_lines(block)[1], 11);
  // Keyed by block: a line address inside the block maps to it.
  cmt.add_lazy_line(block + 0x80, 5);
  EXPECT_EQ(cmt.lazy_lines(block).size(), 3u);
  cmt.clear_lazy_lines(block);
  EXPECT_TRUE(cmt.lazy_lines(block).empty());
}

}  // namespace
}  // namespace avr
