// Multi-core plumbing: per-core private caches, shared LLC, cycle reporting
// as the max over cores.
#include <gtest/gtest.h>

#include "runtime/system.hh"

namespace avr {
namespace {

SimConfig cfg() {
  SimConfig c;
  c.scale_caches(64);
  return c;
}

TEST(Multicore, CoresHavePrivateL1s) {
  System sys(Design::kBaseline, cfg(), /*num_cores=*/2);
  const uint64_t a = sys.alloc("x", kBlockBytes, false);
  sys.use_core(0);
  sys.load_f32(a);  // miss everywhere, fills core 0's L1
  sys.load_f32(a);  // L1 hit on core 0
  sys.use_core(1);
  sys.load_f32(a);  // misses core 1's L1, hits the shared LLC
  EXPECT_EQ(sys.hierarchy().l1(0).counters().hits, 1u);
  EXPECT_EQ(sys.hierarchy().l1(1).counters().hits, 0u);
  EXPECT_EQ(sys.hierarchy().llc_requests(), 2u);
  EXPECT_EQ(sys.hierarchy().llc_misses(), 1u) << "second core hits shared LLC";
}

TEST(Multicore, SharedLlcServesBothCores) {
  System sys(Design::kAvr, cfg(), 2);
  const uint64_t a = sys.alloc("x", 4 * kBlockBytes, true);
  sys.use_core(0);
  for (int i = 0; i < 64; ++i) sys.store_f32(a + i * 4, 1.0f + i);
  sys.use_core(1);
  for (int i = 0; i < 64; ++i) sys.load_f32(a + i * 4);
  sys.finish();
  EXPECT_GT(sys.core(0).instructions(), 0u);
  EXPECT_GT(sys.core(1).instructions(), 0u);
  const RunMetrics m = sys.metrics();
  EXPECT_EQ(m.instructions,
            sys.core(0).instructions() + sys.core(1).instructions());
  EXPECT_GE(m.cycles, std::max(sys.core(0).cycles(), sys.core(1).cycles()));
}

TEST(Multicore, OpsChargeTheActiveCore) {
  // Explicit ops() bill to the core selected by use_core(), exactly like
  // the accesses they surround (ops() used to charge core 0 always).
  System sys(Design::kBaseline, cfg(), /*num_cores=*/2);
  const uint64_t a = sys.alloc("x", kBlockBytes, false);
  sys.use_core(1);
  sys.ops(100);
  sys.load_f32(a);
  EXPECT_EQ(sys.core(0).instructions(), 0u);
  EXPECT_EQ(sys.core(1).instructions(), 100u + 1u + cfg().ops_per_access);
  sys.use_core(0);
  sys.ops(7);
  EXPECT_EQ(sys.core(0).instructions(), 7u);
  EXPECT_EQ(sys.core(1).instructions(), 100u + 1u + cfg().ops_per_access);
}

TEST(Multicore, UseCoreOutOfRangeFallsBackToZero) {
  System sys(Design::kBaseline, cfg(), 2);
  const uint64_t a = sys.alloc("x", kBlockBytes, false);
  sys.use_core(99);  // clamps to core 0
  sys.load_f32(a);
  EXPECT_EQ(sys.core(0).instructions(),
            1u + cfg().ops_per_access);
}

}  // namespace
}  // namespace avr
