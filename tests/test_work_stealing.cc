// Claim-based work-stealing tests: the v4 claim-record grammar, the
// try_claim_point state machine (fresh / busy / expired / done), the
// makespan advantage over static round-robin shards on the committed seed
// costs, and the end-to-end acceptance paths — three concurrent --claim
// processes produce a cache identical to a single-process sweep, including
// after one of them is SIGKILLed mid-run and its claims expire.
#include "harness/result_cache.hh"

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/simd.hh"
#include "harness/experiment.hh"
#include "harness/sweep.hh"
#include "workloads/workload_registry.hh"

namespace avr {
namespace {

ClaimRecord claim(const std::string& wl, Design d, const std::string& owner,
                  uint64_t at, uint64_t lease, uint64_t cfg = 7) {
  ClaimRecord c;
  c.workload = wl;
  c.design = d;
  c.config_hash = cfg;
  c.owner = owner;
  c.claimed_at = at;
  c.lease_seconds = lease;
  return c;
}

TEST(ClaimRecordCodec, RoundTrips) {
  const ClaimRecord c = claim("kmeans", Design::kAvr, "host-42", 1700000000, 60);
  const std::string line = encode_claim_line(c);
  ClaimRecord back;
  ASSERT_TRUE(decode_claim_line(line, &back)) << line;
  EXPECT_EQ(back.workload, "kmeans");
  EXPECT_EQ(back.design, Design::kAvr);
  EXPECT_EQ(back.config_hash, 7u);
  EXPECT_EQ(back.owner, "host-42");
  EXPECT_EQ(back.claimed_at, 1700000000u);
  EXPECT_EQ(back.lease_seconds, 60u);
}

TEST(ClaimRecordCodec, ExpiryIsInclusiveOfLeaseEnd) {
  const ClaimRecord c = claim("kmeans", Design::kAvr, "o", 100, 30);
  EXPECT_FALSE(c.expired(100));
  EXPECT_FALSE(c.expired(129));
  EXPECT_TRUE(c.expired(130));
  EXPECT_TRUE(c.expired(1000));
}

TEST(ClaimRecordCodec, RejectsTornAndForeignLines) {
  const std::string line =
      encode_claim_line(claim("kmeans", Design::kAvr, "o", 5, 6));
  ClaimRecord c;
  // Every strict prefix is torn; none may decode.
  for (size_t cut = 0; cut < line.size(); ++cut)
    EXPECT_FALSE(decode_claim_line(line.substr(0, cut), &c)) << cut;
  EXPECT_FALSE(decode_claim_line("", &c));
  EXPECT_FALSE(decode_claim_line(line + ",extra", &c));
  // A result line is not a claim, and vice versa.
  ExperimentResult r;
  r.workload = "kmeans";
  EXPECT_FALSE(decode_claim_line(encode_result_line(r), &c));
  EXPECT_FALSE(decode_result_line(line, &r));
  // Claims are current-version-only transient state.
  std::string old = line;
  old[0] = '3';
  EXPECT_FALSE(decode_claim_line(old, &c));
}

TEST(ClaimRecordCodec, ResultLoaderSkipsClaims) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("avr_claims_skip_" + std::to_string(::getpid()) + ".csv"))
          .string();
  ExperimentResult r;
  r.workload = "kmeans";
  r.design = Design::kAvr;
  r.config_hash = 7;
  ASSERT_TRUE(append_result_line(path, r));
  {
    std::ofstream out(path, std::ios::app);
    out << encode_claim_line(claim("heat", Design::kAvr, "o", 1, 2)) << "\n";
  }
  const auto results = load_result_cache(path, uint64_t{7});
  EXPECT_EQ(results.size(), 1u);
  EXPECT_TRUE(results.count({"kmeans", Design::kAvr}));
  const auto claims = load_claims(path, uint64_t{7});
  EXPECT_EQ(claims.size(), 1u);
  EXPECT_TRUE(claims.count({"heat", Design::kAvr}));
  std::remove(path.c_str());
}

TEST(ClaimRecordCodec, LastClaimWinsAndConfigFilters) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("avr_claims_last_" + std::to_string(::getpid()) + ".csv"))
          .string();
  {
    std::ofstream out(path);
    out << encode_claim_line(claim("kmeans", Design::kAvr, "first", 1, 2)) << "\n"
        << encode_claim_line(claim("kmeans", Design::kAvr, "second", 3, 4)) << "\n"
        << encode_claim_line(claim("kmeans", Design::kAvr, "other-cfg", 5, 6, 99))
        << "\n";
  }
  const auto claims = load_claims(path, uint64_t{7});
  ASSERT_EQ(claims.size(), 1u);
  EXPECT_EQ(claims.at({"kmeans", Design::kAvr}).owner, "second");
  EXPECT_EQ(load_claims(path, uint64_t{99}).at({"kmeans", Design::kAvr}).owner,
            "other-cfg");
  std::remove(path.c_str());
}

TEST(TryClaimPoint, StateMachine) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("avr_claim_sm_" + std::to_string(::getpid()) + ".csv"))
          .string();
  std::remove(path.c_str());
  const ClaimRecord a = claim("kmeans", Design::kAvr, "A", 0, 30);
  const ClaimRecord b = claim("kmeans", Design::kAvr, "B", 0, 30);

  // Fresh point: A wins; B is locked out while A's lease is live; A's own
  // retry stays kClaimed without appending a duplicate record.
  EXPECT_EQ(try_claim_point(path, a, 100), ClaimOutcome::kClaimed);
  EXPECT_EQ(try_claim_point(path, b, 110), ClaimOutcome::kBusy);
  EXPECT_EQ(try_claim_point(path, a, 110), ClaimOutcome::kClaimed);
  {
    std::ifstream in(path);
    std::string line;
    size_t lines = 0;
    while (std::getline(in, line)) ++lines;
    EXPECT_EQ(lines, 1u) << "own live claim must not be re-appended";
  }

  // Lease expiry: B supersedes A's stale claim, and now A is the one busy.
  EXPECT_EQ(try_claim_point(path, b, 131), ClaimOutcome::kReclaimed);
  EXPECT_EQ(try_claim_point(path, a, 140), ClaimOutcome::kBusy);

  // A result ends the game for everyone, live claims notwithstanding.
  ExperimentResult r;
  r.workload = "kmeans";
  r.design = Design::kAvr;
  r.config_hash = 7;
  ASSERT_TRUE(append_result_line(path, r));
  EXPECT_EQ(try_claim_point(path, a, 141), ClaimOutcome::kDone);
  EXPECT_EQ(try_claim_point(path, b, 141), ClaimOutcome::kDone);

  // A different config_hash is a different point: claimable independently.
  ClaimRecord other = claim("kmeans", Design::kAvr, "A", 0, 30, 99);
  EXPECT_EQ(try_claim_point(path, other, 141), ClaimOutcome::kClaimed);
  std::remove(path.c_str());
}

// ---- scheduling quality ----------------------------------------------------

// Work stealing drains points longest-first into whichever worker is free —
// the classic LPT schedule. On the committed seed-cost mix its makespan must
// beat the static --shard i/N round-robin slices, which pin each point to a
// shard no matter how the costs land. This is the deterministic core of the
// "3-process claim sweep beats 3 static shards" acceptance criterion.
TEST(WorkStealing, LptBeatsStaticShardsOnSeedCosts) {
  ExperimentRunner runner({}, /*verbose=*/false, /*cache_path=*/"");
  const auto grid =
      sweep::full_grid(workload_names(), ExperimentRunner::paper_designs());
  std::vector<double> cost;
  for (const auto& [w, d] : grid) cost.push_back(runner.cost_estimate(w, d));
  // The seed file must actually be loaded (AVR_SEED_COSTS points at the
  // committed data/seed_costs.csv): estimates then span a wide cost mix.
  ASSERT_GT(*std::max_element(cost.begin(), cost.end()),
            4 * *std::min_element(cost.begin(), cost.end()))
      << "seed costs not loaded? AVR_SEED_COSTS=" << std::getenv("AVR_SEED_COSTS");

  constexpr unsigned kShards = 3;
  // Static: shard i owns points with canonical index == i (mod N).
  double static_makespan = 0;
  for (unsigned s = 0; s < kShards; ++s) {
    double sum = 0;
    for (size_t i = s; i < cost.size(); i += kShards) sum += cost[i];
    static_makespan = std::max(static_makespan, sum);
  }
  // Stealing: longest-first greedy onto the least-loaded worker.
  std::vector<size_t> order(cost.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) { return cost[a] > cost[b]; });
  std::vector<double> load(kShards, 0.0);
  for (size_t i : order)
    *std::min_element(load.begin(), load.end()) += cost[i];
  const double steal_makespan = *std::max_element(load.begin(), load.end());

  EXPECT_LT(steal_makespan, static_makespan);
  // And it must be close to the lower bound (perfect balance), not just
  // marginally better: LPT is within 4/3 of optimal, the static slices are
  // not.
  const double ideal =
      std::accumulate(cost.begin(), cost.end(), 0.0) / kShards;
  EXPECT_LT(steal_makespan, 1.34 * ideal);
}

// ---- end-to-end: concurrent --claim processes, one cache -------------------

std::string sweep_binary() {
  const char* bin = std::getenv("AVR_SWEEP_BIN");
  return bin ? bin : "";
}

pid_t spawn_sweep(const std::vector<std::string>& args) {
  const pid_t pid = fork();
  if (pid != 0) return pid;
  std::vector<char*> argv;
  for (const auto& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);
  execv(argv[0], argv.data());
  _exit(127);  // exec failed
}

void assert_matches_single_process_sweep(const std::string& cache,
                                         const std::vector<sweep::Point>& grid) {
  const auto merged = load_result_cache(cache);
  ASSERT_EQ(merged.size(), grid.size());
  ExperimentRunner single({}, /*verbose=*/false, /*cache_path=*/"");
  for (const auto& [w, d] : grid) {
    ASSERT_TRUE(merged.count({w, d})) << w << " x " << to_string(d);
    ExperimentResult got = merged.at({w, d});
    ExperimentResult want = single.run(w, d);
    got.wall_seconds = 0;
    want.wall_seconds = 0;
    EXPECT_EQ(encode_result_line(got), encode_result_line(want))
        << w << " x " << to_string(d);
  }
}

TEST(WorkStealing, ThreeClaimProcessesMatchSingleProcessSweep) {
  const std::string bin = sweep_binary();
  if (bin.empty()) GTEST_SKIP() << "AVR_SWEEP_BIN not set";

  const std::string cache =
      (std::filesystem::temp_directory_path() /
       ("avr_claim_e2e_" + std::to_string(::getpid()) + ".csv"))
          .string();
  std::remove(cache.c_str());

  // Same sub-grid as the static-shard e2e (6 points, AVR included) — but no
  // i/N slices: all three workers race for the whole grid through claims.
  const std::string workloads = "kmeans,bscholes";
  const std::string designs = "baseline,truncate,AVR";
  std::vector<pid_t> pids;
  for (int i = 0; i < 3; ++i)
    pids.push_back(spawn_sweep(
        {bin, "--claim", "--owner", "w" + std::to_string(i), "--workloads",
         workloads, "--designs", designs, "--cache", cache, "--profile-out",
         cache + ".w" + std::to_string(i) + ".json", "--jobs", "1", "--quiet"}));
  for (pid_t pid : pids) {
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
  }

  assert_matches_single_process_sweep(
      cache, sweep::full_grid({"kmeans", "bscholes"},
                              {Design::kBaseline, Design::kTruncate,
                               Design::kAvr}));

  // Every worker emitted its profile sidecar.
  for (int i = 0; i < 3; ++i) {
    const std::string sidecar = cache + ".w" + std::to_string(i) + ".json";
    std::ifstream in(sidecar);
    ASSERT_TRUE(in.good()) << sidecar;
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(text.find("\"schema\":\"avr-profile-v1\""), std::string::npos);
    EXPECT_NE(text.find("\"mode\":\"claim\""), std::string::npos);
    // The sidecar records which kernel dispatch level produced the numbers.
    const std::string simd =
        std::string("\"simd\":\"") + simd_level_name(simd_level()) + "\"";
    EXPECT_NE(text.find(simd), std::string::npos);
    std::remove(sidecar.c_str());
  }
  std::remove(cache.c_str());
}

TEST(WorkStealing, SurvivorReclaimsPointsOfSigkilledWorker) {
  const std::string bin = sweep_binary();
  if (bin.empty()) GTEST_SKIP() << "AVR_SWEEP_BIN not set";

  const std::string cache =
      (std::filesystem::temp_directory_path() /
       ("avr_claim_kill_" + std::to_string(::getpid()) + ".csv"))
          .string();
  std::remove(cache.c_str());

  const std::string workloads = "kmeans,bscholes";
  const std::string designs = "baseline,truncate,AVR";

  // Worker A starts alone (one thread, 1s leases), so its first move is to
  // claim the most expensive open point and start simulating it.
  const pid_t a = spawn_sweep({bin, "--claim", "--owner", "victim",
                               "--claim-lease", "1", "--workloads", workloads,
                               "--designs", designs, "--cache", cache, "--jobs",
                               "1", "--quiet"});

  // SIGKILL it the moment its first claim record lands — mid-simulation,
  // before the point's result. The kernel drops the flock with the process.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  bool claimed = false;
  while (!claimed && std::chrono::steady_clock::now() < deadline) {
    if (!load_claims(cache).empty()) {
      claimed = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(claimed) << "worker never staked a claim";
  ASSERT_EQ(kill(a, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(waitpid(a, &status, 0), a);
  ASSERT_TRUE(WIFSIGNALED(status));

  // The victim must leave at least one dangling claim (claimed, no result)
  // for the survivor to reclaim.
  std::set<ResultKey> dangling;
  {
    const auto results = load_result_cache(cache);
    for (const auto& [key, c] : load_claims(cache))
      if (!results.count(key)) dangling.insert(key);
  }
  ASSERT_FALSE(dangling.empty()) << "victim finished before SIGKILL landed";

  // The survivor sweeps the whole grid: the victim's dangling claims expire
  // (1s lease) and are reclaimed; everything else is claimed fresh.
  const pid_t b = spawn_sweep({bin, "--claim", "--owner", "survivor",
                               "--workloads", workloads, "--designs", designs,
                               "--cache", cache, "--quiet"});
  ASSERT_EQ(waitpid(b, &status, 0), b);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);

  // Full coverage — explicitly including every point the victim had claimed
  // but not finished — with values identical to a single-process sweep.
  const auto results = load_result_cache(cache);
  for (const ResultKey& key : dangling)
    EXPECT_TRUE(results.count(key))
        << "dangling claim not reclaimed: " << key.first << " x "
        << to_string(key.second);
  assert_matches_single_process_sweep(
      cache, sweep::full_grid({"kmeans", "bscholes"},
                              {Design::kBaseline, Design::kTruncate,
                               Design::kAvr}));
  // The reclaim trail is visible in the journal: the survivor's superseding
  // claim for a dangling key.
  const auto final_claims = load_claims(cache);
  bool superseded = false;
  for (const ResultKey& key : dangling) {
    auto it = final_claims.find(key);
    if (it != final_claims.end() && it->second.owner == "survivor")
      superseded = true;
  }
  EXPECT_TRUE(superseded) << "no dangling claim was superseded by the survivor";
  std::remove(cache.c_str());
}

}  // namespace
}  // namespace avr
