// End-to-end tests of the AVR request flow (Fig. 7) and eviction flow
// (Fig. 8) against a small LLC, exercising the functional value layer.
#include "avr/avr_system.hh"

#include <gtest/gtest.h>

#include <cmath>

#include "common/prng.hh"

namespace avr {
namespace {

SimConfig tiny_cfg() {
  SimConfig cfg;
  cfg.llc = {16 * 1024, 8, 15};  // 32 sets
  return cfg;
}

/// Fills a block with a smooth field (compresses to 1 line).
void fill_smooth(RegionRegistry& r, uint64_t block, float base) {
  auto vals = r.block_values(block);
  for (uint32_t i = 0; i < kValuesPerBlock; ++i)
    vals[i] = base + 0.05f * static_cast<float>(i % 16) +
              0.03f * static_cast<float>(i / 16);
}

/// Fills a block with full-range noise (never compresses).
void fill_noise(RegionRegistry& r, uint64_t block, uint64_t seed) {
  Xoshiro256 rng(seed);
  auto vals = r.block_values(block);
  for (auto& v : vals) v = static_cast<float>(rng.uniform(-1e6, 1e6));
}

class AvrSystemTest : public ::testing::Test {
 protected:
  AvrSystemTest() : sys_(tiny_cfg(), regions_) {
    approx_base_ = regions_.allocate("approx", 64 * kBlockBytes, true);
    exact_base_ = regions_.allocate("exact", 64 * kBlockBytes, false);
  }
  uint64_t stat(const char* k) const { return sys_.stats().get(k); }

  RegionRegistry regions_;
  AvrSystem sys_{tiny_cfg(), regions_};
  uint64_t approx_base_ = 0, exact_base_ = 0;
};

TEST_F(AvrSystemTest, ColdMissOnUncompressedBlockReadsOneLine) {
  fill_smooth(regions_, approx_base_, 100.0f);
  sys_.request(0, approx_base_, false);
  EXPECT_EQ(stat("req_miss"), 1u);
  EXPECT_EQ(sys_.dram().bytes_read(), kCachelineBytes);
}

TEST_F(AvrSystemTest, NonApproxFollowsBaselinePath) {
  sys_.request(0, exact_base_, false);
  EXPECT_EQ(stat("req_miss_other"), 1u);
  EXPECT_EQ(stat("req_miss"), 0u);
  EXPECT_EQ(stat("approx_requests"), 0u);
}

TEST_F(AvrSystemTest, DirtyEvictionCompressesBlockAndAppliesReconstruction) {
  const uint64_t block = approx_base_;
  fill_smooth(regions_, block, 50.0f);
  const float original = regions_.load<float>(block + 4);
  // Touch every line dirty, then force eviction by streaming far data.
  for (uint32_t i = 0; i < kBlockLines; ++i)
    sys_.request(0, block + i * kCachelineBytes, true);
  // Stream enough distinct lines to evict the whole tiny LLC.
  for (uint64_t i = 0; i < 1024; ++i)
    sys_.request(0, exact_base_ + (i * 64) % (48 * kBlockBytes), true);
  EXPECT_GT(stat("compress_successes"), 0u);
  // The CMT must know the block is compressed now.
  const BlockMeta* m = sys_.cmt().peek(block);
  ASSERT_NE(m, nullptr);
  EXPECT_TRUE(m->compressed());
  EXPECT_EQ(m->size_lines, 1u);
  // Functional effect: value replaced by its reconstruction (close, not
  // necessarily identical).
  const float now = regions_.load<float>(block + 4);
  EXPECT_NEAR(now, original, std::abs(original) * 0.13f);
}

TEST_F(AvrSystemTest, CompressedBlockFetchReadsSizeLines) {
  const uint64_t block = approx_base_;
  fill_smooth(regions_, block, 50.0f);
  // Manually mark the block compressed in memory.
  auto out = [&] {
    BlockMeta& m = sys_.cmt().lookup(block);
    m.method = Method::kDownsample2D;
    m.size_lines = 1;
    return 0;
  }();
  (void)out;
  const uint64_t before = sys_.dram().bytes_read();
  sys_.request(0, block + 0x80, false);
  EXPECT_EQ(sys_.dram().bytes_read() - before, kCachelineBytes);  // 1 CMS line
  EXPECT_EQ(stat("block_fetches"), 1u);
  // Following requests to other lines of the block hit the DBUF.
  sys_.request(0, block + 0xC0, false);
  EXPECT_EQ(stat("req_hit_dbuf"), 1u);
  EXPECT_FALSE(sys_.last_was_miss());
}

TEST_F(AvrSystemTest, CmsHitAvoidsDram) {
  const uint64_t block = approx_base_;
  fill_smooth(regions_, block, 50.0f);
  BlockMeta& m = sys_.cmt().lookup(block);
  m.method = Method::kDownsample2D;
  m.size_lines = 1;
  sys_.request(0, block, false);  // fetch: CMS now in LLC, DBUF filled
  // Displace the DBUF with a different block fetch.
  const uint64_t other = approx_base_ + kBlockBytes;
  fill_smooth(regions_, other, 80.0f);
  BlockMeta& m2 = sys_.cmt().lookup(other);
  m2.method = Method::kDownsample2D;
  m2.size_lines = 1;
  sys_.request(0, other, false);
  const uint64_t before = sys_.dram().bytes_read();
  // A different line of the first block: UCL miss, DBUF miss, CMS hit.
  sys_.request(0, block + 0x140, false);
  EXPECT_EQ(stat("req_hit_compressed"), 1u);
  EXPECT_EQ(sys_.dram().bytes_read(), before);
  EXPECT_FALSE(sys_.last_was_miss());
}

TEST_F(AvrSystemTest, LazyWritebackUsesOneLineAndCountsMeta) {
  const uint64_t block = approx_base_;
  fill_smooth(regions_, block, 50.0f);
  BlockMeta& m = sys_.cmt().lookup(block);
  m.method = Method::kDownsample2D;
  m.size_lines = 1;  // 15 lines of lazy space
  const uint64_t before_w = sys_.dram().bytes_written();
  // Dirty writeback of a line whose block is compressed in memory but has
  // no CMS image in the LLC: must take the lazy path.
  sys_.writeback(0, block + 0x40);
  // Evict it by streaming.
  for (uint64_t i = 0; i < 2048; ++i)
    sys_.request(0, exact_base_ + (i * 64) % (48 * kBlockBytes), false);
  EXPECT_GE(stat("evict_lazy_wb"), 1u);
  EXPECT_GE(sys_.dram().bytes_written() - before_w, kCachelineBytes);
  const BlockMeta* pm = sys_.cmt().peek(block);
  EXPECT_GE(pm->lazy_count, 1u);
  EXPECT_EQ(sys_.cmt().lazy_lines(block)[0], 1u);  // line index 1
}

TEST_F(AvrSystemTest, LazySpaceExhaustionTriggersFetchRecompress) {
  const uint64_t block = approx_base_;
  fill_smooth(regions_, block, 50.0f);
  BlockMeta& m = sys_.cmt().lookup(block);
  m.method = Method::kDownsample2D;
  m.size_lines = 8;
  m.lazy_count = 8;  // block slot full: no lazy space
  sys_.writeback(0, block + 0x40);
  for (uint64_t i = 0; i < 2048; ++i)
    sys_.request(0, exact_base_ + (i * 64) % (48 * kBlockBytes), false);
  EXPECT_GE(stat("evict_fetch_recompress"), 1u);
  const BlockMeta* pm = sys_.cmt().peek(block);
  EXPECT_EQ(pm->lazy_count, 0u);  // recompaction cleared the lazy region
}

TEST_F(AvrSystemTest, FailureHistorySkipsAttempts) {
  const uint64_t block = approx_base_ + 2 * kBlockBytes;
  fill_noise(regions_, block, 99);
  // Repeatedly dirty lines of the incompressible block and flush them out.
  for (int round = 0; round < 12; ++round) {
    sys_.writeback(0, block + (round % 16) * kCachelineBytes);
    for (uint64_t i = 0; i < 1024; ++i)
      sys_.request(0, exact_base_ + (i * 64) % (48 * kBlockBytes), false);
  }
  EXPECT_GT(stat("compress_failures"), 0u);
  EXPECT_GT(stat("attempts_skipped"), 0u);
  const BlockMeta* pm = sys_.cmt().peek(block);
  ASSERT_NE(pm, nullptr);
  EXPECT_FALSE(pm->compressed());
  EXPECT_GT(pm->failed, 0u);
}

TEST_F(AvrSystemTest, FailureHistoryDisabledNeverSkips) {
  SimConfig cfg = tiny_cfg();
  cfg.avr.enable_failure_history = false;
  RegionRegistry regions;
  AvrSystem sys(cfg, regions);
  const uint64_t a = regions.allocate("a", 16 * kBlockBytes, true);
  const uint64_t e = regions.allocate("e", 64 * kBlockBytes, false);
  fill_noise(regions, a, 1);
  for (int round = 0; round < 8; ++round) {
    sys.writeback(0, a + (round % 16) * kCachelineBytes);
    for (uint64_t i = 0; i < 1024; ++i)
      sys.request(0, e + (i * 64) % (48 * kBlockBytes), false);
  }
  EXPECT_EQ(sys.stats().get("attempts_skipped"), 0u);
}

TEST_F(AvrSystemTest, PfePromotesHotBlocks) {
  const uint64_t block = approx_base_;
  fill_smooth(regions_, block, 10.0f);
  BlockMeta& m = sys_.cmt().lookup(block);
  m.method = Method::kDownsample2D;
  m.size_lines = 1;
  // Fetch and touch >= pfe_threshold lines via the DBUF.
  for (uint32_t i = 0; i < 9; ++i) sys_.request(0, block + i * kCachelineBytes, false);
  // Displace the DBUF: the PFE must promote the remaining lines.
  const uint64_t other = approx_base_ + kBlockBytes;
  fill_smooth(regions_, other, 20.0f);
  BlockMeta& m2 = sys_.cmt().lookup(other);
  m2.method = Method::kDownsample2D;
  m2.size_lines = 1;
  sys_.request(0, other, false);
  EXPECT_EQ(stat("pfe_promotions"), 1u);
  EXPECT_GT(stat("pfe_lines"), 0u);
  // Promoted lines now hit as UCLs without DRAM traffic.
  const uint64_t before = sys_.dram().bytes_read();
  sys_.request(0, block + 15 * kCachelineBytes, false);
  EXPECT_EQ(sys_.dram().bytes_read(), before);
}

TEST_F(AvrSystemTest, PfeBelowThresholdDoesNotPromote) {
  const uint64_t block = approx_base_;
  fill_smooth(regions_, block, 10.0f);
  BlockMeta& m = sys_.cmt().lookup(block);
  m.method = Method::kDownsample2D;
  m.size_lines = 1;
  for (uint32_t i = 0; i < 3; ++i) sys_.request(0, block + i * kCachelineBytes, false);
  const uint64_t other = approx_base_ + kBlockBytes;
  fill_smooth(regions_, other, 20.0f);
  BlockMeta& m2 = sys_.cmt().lookup(other);
  m2.method = Method::kDownsample2D;
  m2.size_lines = 1;
  sys_.request(0, other, false);
  EXPECT_EQ(stat("pfe_promotions"), 0u);
}

TEST_F(AvrSystemTest, DrainWritesBackDirtyState) {
  const uint64_t block = approx_base_;
  fill_smooth(regions_, block, 30.0f);
  for (uint32_t i = 0; i < kBlockLines; ++i)
    sys_.request(0, block + i * kCachelineBytes, true);
  const uint64_t before = sys_.dram().bytes_written();
  sys_.drain(0);
  EXPECT_GT(sys_.dram().bytes_written(), before);
  // After drain the block is compressed in memory.
  const BlockMeta* pm = sys_.cmt().peek(block);
  ASSERT_NE(pm, nullptr);
  EXPECT_TRUE(pm->compressed());
}

TEST_F(AvrSystemTest, CompressionRatioReported) {
  for (int b = 0; b < 8; ++b)
    fill_smooth(regions_, approx_base_ + b * kBlockBytes, 5.0f * b + 1.0f);
  for (int b = 0; b < 8; ++b)
    for (uint32_t i = 0; i < kBlockLines; ++i)
      sys_.request(0, approx_base_ + b * kBlockBytes + i * kCachelineBytes, true);
  sys_.drain(0);
  EXPECT_GT(sys_.mean_compression_ratio(), 8.0);  // smooth data ~16:1
}

TEST_F(AvrSystemTest, OutliersSurviveRoundTrip) {
  const uint64_t block = approx_base_;
  fill_smooth(regions_, block, 50.0f);
  regions_.store<float>(block + 12 * 4, -9999.0f);  // spike -> outlier
  for (uint32_t i = 0; i < kBlockLines; ++i)
    sys_.request(0, block + i * kCachelineBytes, true);
  sys_.drain(0);
  const BlockMeta* pm = sys_.cmt().peek(block);
  ASSERT_TRUE(pm && pm->compressed());
  EXPECT_FLOAT_EQ(regions_.load<float>(block + 12 * 4), -9999.0f);
}

TEST_F(AvrSystemTest, MetadataTrafficAccrues) {
  fill_smooth(regions_, approx_base_, 1.0f);
  for (uint64_t p = 0; p < 8; ++p)
    sys_.request(0, approx_base_ + p * kBlockBytes, false);
  EXPECT_GT(sys_.cmt().metadata_traffic_bytes(), 0u);
}

TEST(AvrSystemTraffic, SmoothStreamBeatsUncompressed) {
  // Stream a large smooth approx array twice: the second pass must fetch
  // compressed blocks and move far fewer bytes than the footprint.
  SimConfig cfg = tiny_cfg();
  RegionRegistry regions;
  AvrSystem sys(cfg, regions);
  const uint64_t blocks = 128;
  const uint64_t base = regions.allocate("stream", blocks * kBlockBytes, true);
  for (uint64_t b = 0; b < blocks; ++b)
    fill_smooth(regions, base + b * kBlockBytes, static_cast<float>(b));
  // Pass 1: write everything (compresses on eviction).
  for (uint64_t b = 0; b < blocks; ++b)
    for (uint32_t i = 0; i < kBlockLines; ++i)
      sys.writeback(0, base + b * kBlockBytes + i * kCachelineBytes);
  sys.drain(0);
  const uint64_t start = sys.dram().bytes_read();
  // Pass 2: read everything.
  for (uint64_t b = 0; b < blocks; ++b)
    for (uint32_t i = 0; i < kBlockLines; ++i)
      sys.request(0, base + b * kBlockBytes + i * kCachelineBytes, false);
  const uint64_t read = sys.dram().bytes_read() - start;
  EXPECT_LT(read, blocks * kBlockBytes / 4) << "compressed reads should be ~16x smaller";
}

}  // namespace
}  // namespace avr
