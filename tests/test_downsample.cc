#include "avr/downsample.hh"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "common/prng.hh"

namespace avr {
namespace {

using Block = std::array<Fixed32, kValuesPerBlock>;

Block constant_block(float v) {
  Block b;
  for (auto& x : b) x = Fixed32::from_float(v);
  return b;
}

Block ramp_block_1d(float base, float step) {
  Block b;
  for (uint32_t i = 0; i < kValuesPerBlock; ++i)
    b[i] = Fixed32::from_float(base + step * static_cast<float>(i));
  return b;
}

TEST(Downsample1D, ConstantBlockIsExact) {
  const Block in = constant_block(42.5f);
  const auto avg = downsample::compress_1d(in);
  for (const Fixed32& a : avg) EXPECT_FLOAT_EQ(a.to_float(), 42.5f);
  Block out;
  downsample::reconstruct_1d(avg, out);
  for (uint32_t i = 0; i < kValuesPerBlock; ++i)
    EXPECT_EQ(out[i].raw(), in[i].raw()) << i;
}

TEST(Downsample2D, ConstantBlockIsExact) {
  const Block in = constant_block(-7.25f);
  const auto avg = downsample::compress_2d(in);
  Block out;
  downsample::reconstruct_2d(avg, out);
  for (uint32_t i = 0; i < kValuesPerBlock; ++i)
    EXPECT_EQ(out[i].raw(), in[i].raw()) << i;
}

TEST(Downsample1D, AveragesAreSubBlockMeans) {
  const Block in = ramp_block_1d(0.0f, 1.0f);
  const auto avg = downsample::compress_1d(in);
  for (uint32_t k = 0; k < 16; ++k) {
    // Mean of 16k .. 16k+15 = 16k + 7.5.
    EXPECT_NEAR(avg[k].to_float(), 16.0f * k + 7.5f, 1.0f / Fixed32::kOne);
  }
}

TEST(Downsample1D, LinearRampReconstructsWellInInterior) {
  const Block in = ramp_block_1d(10.0f, 0.5f);
  const auto avg = downsample::compress_1d(in);
  Block out;
  downsample::reconstruct_1d(avg, out);
  // Linear interpolation reproduces a linear signal exactly between the
  // first and last sub-block centers; edges clamp.
  for (uint32_t i = 8; i < kValuesPerBlock - 8; ++i)
    EXPECT_NEAR(out[i].to_float(), in[i].to_float(), 0.01f) << i;
  // Clamped edges deviate by at most the half-sub-block slope.
  for (uint32_t i = 0; i < 8; ++i)
    EXPECT_NEAR(out[i].to_float(), in[i].to_float(), 0.5f * 8.0f + 0.01f);
}

TEST(Downsample2D, BilinearPlaneReconstructsWellInInterior) {
  Block in;
  for (uint32_t r = 0; r < 16; ++r)
    for (uint32_t c = 0; c < 16; ++c)
      in[r * 16 + c] = Fixed32::from_float(2.0f + 0.25f * r - 0.125f * c);
  const auto avg = downsample::compress_2d(in);
  Block out;
  downsample::reconstruct_2d(avg, out);
  for (uint32_t r = 2; r < 14; ++r)
    for (uint32_t c = 2; c < 14; ++c)
      EXPECT_NEAR(out[r * 16 + c].to_float(), in[r * 16 + c].to_float(), 0.01f)
          << r << "," << c;
}

TEST(Downsample2D, TileAveragesRowMajor) {
  // Tile (tr, tc) holds value tr*10 + tc; check average placement.
  Block in;
  for (uint32_t r = 0; r < 16; ++r)
    for (uint32_t c = 0; c < 16; ++c)
      in[r * 16 + c] = Fixed32::from_float(static_cast<float>((r / 4) * 10 + (c / 4)));
  const auto avg = downsample::compress_2d(in);
  for (uint32_t tr = 0; tr < 4; ++tr)
    for (uint32_t tc = 0; tc < 4; ++tc)
      EXPECT_FLOAT_EQ(avg[tr * 4 + tc].to_float(), static_cast<float>(tr * 10 + tc));
}

TEST(Downsample1D, ReconstructionStaysWithinAverageEnvelope) {
  Xoshiro256 rng(5);
  Block in;
  for (auto& x : in) x = Fixed32::from_float(static_cast<float>(rng.uniform(-50, 50)));
  const auto avg = downsample::compress_1d(in);
  int32_t lo = avg[0].raw(), hi = avg[0].raw();
  for (const Fixed32& a : avg) {
    lo = std::min(lo, a.raw());
    hi = std::max(hi, a.raw());
  }
  Block out;
  downsample::reconstruct_1d(avg, out);
  for (const Fixed32& o : out) {
    EXPECT_GE(o.raw(), lo);
    EXPECT_LE(o.raw(), hi);
  }
}

class DownsampleProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DownsampleProperty, SmoothFieldErrorBounded2D) {
  Xoshiro256 rng(GetParam());
  const float fx = static_cast<float>(rng.uniform(0.02, 0.08));
  const float fy = static_cast<float>(rng.uniform(0.02, 0.08));
  const float amp = static_cast<float>(rng.uniform(1.0, 100.0));
  Block in;
  for (uint32_t r = 0; r < 16; ++r)
    for (uint32_t c = 0; c < 16; ++c)
      in[r * 16 + c] =
          Fixed32::from_float(amp * (2.0f + std::sin(fx * r) * std::cos(fy * c)));
  const auto avg = downsample::compress_2d(in);
  Block out;
  downsample::reconstruct_2d(avg, out);
  // Smooth fields (wavelength >> tile): the reconstruction error is bounded
  // by the edge-clamp slope (~2 samples of gradient) plus curvature.
  const float bound = amp * (2.5f * std::max(fx, fy) + 0.02f);
  for (uint32_t i = 0; i < kValuesPerBlock; ++i)
    EXPECT_NEAR(out[i].to_float(), in[i].to_float(), bound) << i;
}

TEST_P(DownsampleProperty, ReconstructIdempotentUnderRecompression) {
  // compress(reconstruct(compress(x))) == compress(reconstruct(...)) up to
  // an LSB: recompression of already-reconstructed data must not drift.
  Xoshiro256 rng(GetParam() * 31);
  Block in;
  for (auto& x : in) x = Fixed32::from_float(static_cast<float>(rng.uniform(-10, 10)));
  auto avg1 = downsample::compress_1d(in);
  Block rec1;
  downsample::reconstruct_1d(avg1, rec1);
  auto avg2 = downsample::compress_1d(
      std::span<const Fixed32, kValuesPerBlock>(rec1));
  Block rec2;
  downsample::reconstruct_1d(avg2, rec2);
  auto avg3 = downsample::compress_1d(
      std::span<const Fixed32, kValuesPerBlock>(rec2));
  // Downsample-then-interpolate is a convex (max-norm non-expansive)
  // operator: successive recompressions must contract, never amplify.
  float d12 = 0, d23 = 0;
  for (uint32_t k = 0; k < 16; ++k) {
    d12 = std::max(d12, std::abs(avg2[k].to_float() - avg1[k].to_float()));
    d23 = std::max(d23, std::abs(avg3[k].to_float() - avg2[k].to_float()));
  }
  EXPECT_LE(d23, d12 + 16.0f / Fixed32::kOne);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DownsampleProperty,
                         ::testing::Values(1, 7, 42, 99, 1234, 5150));

}  // namespace
}  // namespace avr
