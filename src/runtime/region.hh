// Region registry: maps simulated physical addresses to host memory.
//
// Workloads allocate buffers through the runtime; each allocation reserves a
// block-aligned simulated address range and registers whether it is
// approximable and what datatype it holds (the paper's malloc wrapper +
// OS page-table annotation, Sec. 3.1). The compression designs mutate the
// host memory through this registry, which is how approximation errors
// propagate into application output exactly as in the paper's methodology
// ("we actually update the values of the memory contents").
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/types.hh"

namespace avr {

struct MemoryRegion {
  uint64_t base = 0;    // simulated physical address, kBlockBytes-aligned
  uint64_t bytes = 0;   // padded to a whole number of blocks
  bool approx = false;
  DType dtype = DType::kFloat32;
  std::string name;
  std::unique_ptr<std::byte[]> host;  // backing store, `bytes` long
};

/// Resolved view of one region, handed to workloads so the per-access
/// functional path is a plain pointer add instead of a registry search.
/// Valid for the owning RegionRegistry's lifetime: the backing array never
/// moves (regions are never freed, and `host` owns the array independently
/// of the registry's region vector reallocating).
struct RegionHandle {
  std::byte* host = nullptr;  // backing store base
  uint64_t sim_base = 0;      // simulated physical base address
  uint64_t bytes = 0;         // padded region length

  /// Simulated address of byte offset `off` (for the timing path).
  uint64_t addr(uint64_t off) const { return sim_base + off; }
  bool valid() const { return host != nullptr; }
};

class RegionRegistry {
 public:
  /// Allocates a region of `bytes` (rounded up to whole memory blocks).
  /// Returns its simulated base address.
  uint64_t allocate(std::string name, uint64_t bytes, bool approx,
                    DType dtype = DType::kFloat32);

  /// Region containing `addr`, or nullptr.
  const MemoryRegion* find(uint64_t addr) const;

  /// Handle for the region named `name` (first match), or an invalid handle.
  RegionHandle handle(const std::string& name);

  bool is_approx(uint64_t addr) const {
    const MemoryRegion* r = find(addr);
    return r && r->approx;
  }

  /// Host pointer backing simulated address `addr` (must be mapped).
  std::byte* host_ptr(uint64_t addr);
  const std::byte* host_ptr(uint64_t addr) const;

  /// Typed access to the backing store.
  template <typename T>
  T load(uint64_t addr) const {
    T v;
    __builtin_memcpy(&v, host_ptr(addr), sizeof(T));
    return v;
  }
  template <typename T>
  void store(uint64_t addr, T v) {
    __builtin_memcpy(host_ptr(addr), &v, sizeof(T));
  }

  /// The 256 floats of the memory block containing `addr`, viewed in place.
  std::span<float, kValuesPerBlock> block_values(uint64_t addr);
  std::span<const float, kValuesPerBlock> block_values(uint64_t addr) const;

  const std::vector<MemoryRegion>& regions() const { return regions_; }

  /// Total footprint of all regions / of approximable regions, in bytes.
  uint64_t total_bytes() const;
  uint64_t approx_bytes() const;

 private:
  std::vector<MemoryRegion> regions_;  // sorted by base
  uint64_t next_base_ = 0x1000'0000;   // leave low addresses unmapped
};

}  // namespace avr
