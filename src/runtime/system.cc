#include "runtime/system.hh"

#include <algorithm>
#include <stdexcept>

#include "avr/avr_system.hh"
#include "baselines/baseline_system.hh"
#include "baselines/doppelganger_system.hh"
#include "baselines/truncate_system.hh"

namespace avr {
namespace {

/// Concrete-type LLC dispatch: the hierarchy calls through this function
/// pointer instead of two virtual hops (request + last_was_miss). The
/// qualified calls are resolved statically — every LLC implementation is
/// final, so `Llc` is the exact dynamic type System just constructed.
template <typename Llc>
MemoryHierarchy::LlcReply llc_request_thunk(LlcSystem& llc, uint64_t now,
                                            uint64_t line, bool write) {
  auto& t = static_cast<Llc&>(llc);
  const uint64_t latency = t.Llc::request(now, line, write);
  return {latency, t.Llc::last_was_miss()};
}

}  // namespace

System::System(Design design, SimConfig cfg, uint32_t num_cores, bool timing)
    : design_(design), cfg_(cfg), timing_(timing) {
  if (!timing_) return;  // golden/functional run: no machinery at all
  MemoryHierarchy::LlcRequestFn request_fn = nullptr;
  switch (design) {
    case Design::kBaseline:
      llc_ = std::make_unique<BaselineSystem>(cfg_, regions_);
      request_fn = &llc_request_thunk<BaselineSystem>;
      break;
    case Design::kTruncate:
      llc_ = std::make_unique<TruncateSystem>(cfg_, regions_);
      request_fn = &llc_request_thunk<TruncateSystem>;
      break;
    case Design::kDoppelganger:
      llc_ = std::make_unique<DoppelgangerSystem>(cfg_, regions_);
      request_fn = &llc_request_thunk<DoppelgangerSystem>;
      break;
    case Design::kZeroAvr:
    case Design::kAvr:
      llc_ = std::make_unique<AvrSystem>(cfg_, regions_);
      request_fn = &llc_request_thunk<AvrSystem>;
      break;
  }
  hier_ = std::make_unique<MemoryHierarchy>(cfg_, *llc_, num_cores, request_fn);
  for (uint32_t c = 0; c < num_cores; ++c)
    cores_.push_back(std::make_unique<IntervalCore>(cfg_.core, *hier_, c));
  ops_per_access_ = cfg_.ops_per_access;
  active_core_ptr_ = cores_[0].get();
}

System::~System() = default;

uint64_t System::alloc(const std::string& name, uint64_t bytes, bool approx,
                       DType dtype) {
  // ZeroAVR measures the AVR hardware with *nothing* marked approximate.
  const bool effective_approx = design_ == Design::kZeroAvr ? false : approx;
  return regions_.allocate(name, bytes, effective_approx, dtype);
}

void System::finish() {
  if (finished_ || !timing_) return;
  finished_ = true;
  const uint64_t now = cores_.empty() ? 0 : cores_[0]->cycles();
  hier_->drain(now);
}

RunMetrics System::metrics() const {
  RunMetrics m;
  m.footprint_bytes = regions_.total_bytes();
  m.approx_bytes = regions_.approx_bytes();
  if (!timing_) return m;

  for (const auto& c : cores_) {
    m.cycles = std::max(m.cycles, c->cycles());
    m.instructions += c->instructions();
  }
  m.ipc = m.cycles ? static_cast<double>(m.instructions) / m.cycles : 0;
  m.amat = hier_->amat();
  m.llc_requests = hier_->llc_requests();
  m.llc_misses = hier_->llc_misses();
  m.llc_mpki = m.instructions
                   ? 1000.0 * static_cast<double>(m.llc_misses) / m.instructions
                   : 0;

  const Dram& dram = llc_->dram();
  m.dram_bytes = dram.total_bytes();
  const StatGroup s = llc_->stats();  // cold-path snapshot of the flat counters
  m.dram_bytes_approx = s.get("traffic_approx_bytes");
  m.dram_bytes_other = s.get("traffic_other_bytes");
  for (const auto& [k, v] : s.counters()) m.detail[k] = v;

  const bool is_avr = design_ == Design::kAvr || design_ == Design::kZeroAvr;
  if (is_avr) {
    const auto& avr = static_cast<const AvrSystem&>(*llc_);
    m.metadata_bytes = avr.cmt().metadata_traffic_bytes();
    m.compression_ratio = avr.mean_compression_ratio();
  }

  EnergyEvents e;
  e.instructions = m.instructions;
  e.cycles = m.cycles;
  e.l1_accesses = hier_->l1_accesses();
  e.l2_accesses = hier_->l2_accesses();
  e.llc_accesses = m.llc_requests;
  e.dram_bytes = m.dram_bytes + m.metadata_bytes;
  e.dram_activations = dram.activations();
  e.compressions = s.get("compress_attempts");
  e.decompressions = s.get("decompressions");
  e.has_compressor = is_avr;
  m.energy = compute_energy(e);
  return m;
}

}  // namespace avr
