// Full simulated system for one design point: region registry + interval
// core(s) + private caches + design-specific LLC subsystem + DRAM + energy.
//
// This is also the *runtime API* workloads program against:
//   alloc()          — the paper's wrapped malloc + approximation annotation
//   load/store       — instrumented accesses (functional + timing)
//   ops()            — surrounding non-memory instructions
//   finish()         — drain dirty state, close the books
// Running the same workload against Design::kBaseline..kAvr reproduces the
// paper's design-point comparison; `timing=false` gives the golden
// (exact, un-instrumented) run used as the error reference.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/config.hh"
#include "common/types.hh"
#include "cpu/hierarchy.hh"
#include "cpu/interval_core.hh"
#include "energy/energy_model.hh"
#include "mem/llc_system.hh"
#include "runtime/region.hh"

namespace avr {

/// Everything the paper reports for one (workload, design) run.
struct RunMetrics {
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  double ipc = 0;
  double amat = 0;
  uint64_t llc_requests = 0;
  uint64_t llc_misses = 0;
  double llc_mpki = 0;
  uint64_t dram_bytes = 0;
  uint64_t dram_bytes_approx = 0;
  uint64_t dram_bytes_other = 0;
  uint64_t metadata_bytes = 0;
  EnergyBreakdown energy;
  double compression_ratio = 1.0;  // AVR only; 1.0 otherwise
  uint64_t footprint_bytes = 0;
  uint64_t approx_bytes = 0;
  double output_error = 0.0;  // filled by the harness (vs golden run)
  std::map<std::string, uint64_t> detail;  // design-specific counters
};

class System {
 public:
  System(Design design, SimConfig cfg, uint32_t num_cores = 1,
         bool timing = true);
  ~System();

  // ---- runtime API for workloads -------------------------------------------
  /// Block-aligned allocation; `approx` marks the region compressible
  /// (ignored — forced false — under ZeroAVR, which is the point of ZeroAVR).
  uint64_t alloc(const std::string& name, uint64_t bytes, bool approx,
                 DType dtype = DType::kFloat32);

  /// alloc() returning a resolved RegionHandle — the fast-path API the
  /// workloads program against: functional access through a handle is one
  /// pointer add instead of a registry search per load/store.
  RegionHandle alloc_region(const std::string& name, uint64_t bytes, bool approx,
                            DType dtype = DType::kFloat32) {
    alloc(name, bytes, approx, dtype);
    return regions_.handle(name);
  }
  /// Handle for an already-allocated region (invalid handle if unknown).
  RegionHandle region(const std::string& name) { return regions_.handle(name); }

  // Address-based accessors (kept for tests and generic tooling): resolve
  // the host pointer through the region registry on every access.
  float load_f32(uint64_t addr) {
    touch(addr, /*write=*/false);
    return regions_.load<float>(addr);
  }
  void store_f32(uint64_t addr, float v) {
    touch(addr, /*write=*/true);
    regions_.store(addr, v);
  }
  /// Functional peek/poke without timing (for output collection / init that
  /// must bypass the hierarchy — use sparingly).
  float peek_f32(uint64_t addr) const { return regions_.load<float>(addr); }
  void poke_f32(uint64_t addr, float v) { regions_.store(addr, v); }

  // Handle-based accessors: identical simulated behaviour to the address
  // forms (same touch() on h.sim_base + off), functional part collapsed to
  // host + off. Offsets are bounds-checked in Debug builds only.
  float load_f32(const RegionHandle& h, uint64_t off) {
    assert(h.bytes >= sizeof(float) && off <= h.bytes - sizeof(float) &&
           "handle load out of range");
    touch(h.sim_base + off, /*write=*/false);
    float v;
    __builtin_memcpy(&v, h.host + off, sizeof(float));
    return v;
  }
  void store_f32(const RegionHandle& h, uint64_t off, float v) {
    assert(h.bytes >= sizeof(float) && off <= h.bytes - sizeof(float) &&
           "handle store out of range");
    touch(h.sim_base + off, /*write=*/true);
    __builtin_memcpy(h.host + off, &v, sizeof(float));
  }
  float peek_f32(const RegionHandle& h, uint64_t off) const {
    assert(h.bytes >= sizeof(float) && off <= h.bytes - sizeof(float) &&
           "handle peek out of range");
    float v;
    __builtin_memcpy(&v, h.host + off, sizeof(float));
    return v;
  }
  void poke_f32(const RegionHandle& h, uint64_t off, float v) {
    assert(h.bytes >= sizeof(float) && off <= h.bytes - sizeof(float) &&
           "handle poke out of range");
    __builtin_memcpy(h.host + off, &v, sizeof(float));
  }

  /// Non-memory instructions surrounding the accesses, charged to the core
  /// selected by use_core() — the same core the accesses bill to.
  void ops(uint64_t n) {
    if (timing_) core(active_core_).ops(n);
  }
  /// Route subsequent accesses to a given simulated core (round-robin
  /// partitioning of multi-core workloads).
  void use_core(uint32_t c) {
    active_core_ = c < cores_.size() ? c : 0;
    active_core_ptr_ = cores_.empty() ? nullptr : cores_[active_core_].get();
  }

  void finish();
  RunMetrics metrics() const;

  /// Capture hook: observes every instrumented access (simulated address +
  /// direction) before it is charged — how avr_trace_gen re-records an
  /// existing workload into a replayable trace. Fires on functional
  /// (timing=false) runs too, so capture can skip the simulation machinery
  /// entirely. Null (the default) costs the hot path one never-taken
  /// branch; pass nullptr to detach.
  using AccessHook = std::function<void(uint64_t addr, bool write)>;
  void set_access_hook(AccessHook h) {
    hook_fn_ = std::move(h);
    hook_ = hook_fn_ ? &hook_fn_ : nullptr;
  }

  // ---- component access (tests, benches) ----------------------------------
  RegionRegistry& regions() { return regions_; }
  const RegionRegistry& regions() const { return regions_; }
  LlcSystem& llc_system() { return *llc_; }
  MemoryHierarchy& hierarchy() { return *hier_; }
  IntervalCore& core(uint32_t c = 0) { return *cores_[c]; }
  Design design() const { return design_; }
  const SimConfig& config() const { return cfg_; }

 private:
  void touch(uint64_t addr, bool write) {
    if (hook_) (*hook_)(addr, write);
    // active_core_ptr_ is null exactly when timing is off (no cores built),
    // so one test covers both "functional run" and "nothing to charge".
    if (IntervalCore* c = active_core_ptr_)
      c->access(addr, write, ops_per_access_);
  }

  Design design_;
  SimConfig cfg_;
  bool timing_;
  bool finished_ = false;
  uint32_t active_core_ = 0;
  uint64_t ops_per_access_ = 0;        // hoisted from cfg_ for touch()
  IntervalCore* active_core_ptr_ = nullptr;  // hoisted cores_[active_core_]
  AccessHook hook_fn_;                 // capture storage (set_access_hook)
  const AccessHook* hook_ = nullptr;   // non-null iff capture is attached
  RegionRegistry regions_;
  std::unique_ptr<LlcSystem> llc_;
  std::unique_ptr<MemoryHierarchy> hier_;
  std::vector<std::unique_ptr<IntervalCore>> cores_;
};

}  // namespace avr
