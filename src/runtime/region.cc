#include "runtime/region.hh"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>

namespace avr {

uint64_t RegionRegistry::allocate(std::string name, uint64_t bytes, bool approx,
                                  DType dtype) {
  if (bytes == 0) throw std::invalid_argument("empty region");
  const uint64_t padded = (bytes + kBlockBytes - 1) & ~(kBlockBytes - 1);
  MemoryRegion r;
  r.base = next_base_;
  r.bytes = padded;
  r.approx = approx;
  r.dtype = dtype;
  r.name = std::move(name);
  r.host = std::make_unique<std::byte[]>(padded);
  std::memset(r.host.get(), 0, padded);
  // Separate consecutive regions by a page so a block never straddles two
  // regions and allocation stays page-aligned like the paper's wrapper.
  next_base_ += (padded + kPageBytes - 1) & ~(kPageBytes - 1);
  const uint64_t base = r.base;
  regions_.push_back(std::move(r));
  return base;
}

RegionHandle RegionRegistry::handle(const std::string& name) {
  for (auto& r : regions_)
    if (r.name == name) return {r.host.get(), r.base, r.bytes};
  return {};
}

const MemoryRegion* RegionRegistry::find(uint64_t addr) const {
  // Regions are allocated in ascending order; binary search on base.
  auto it = std::upper_bound(regions_.begin(), regions_.end(), addr,
                             [](uint64_t a, const MemoryRegion& r) { return a < r.base; });
  if (it == regions_.begin()) return nullptr;
  --it;
  if (addr < it->base + it->bytes) return &*it;
  return nullptr;
}

std::byte* RegionRegistry::host_ptr(uint64_t addr) {
  const MemoryRegion* r = find(addr);
  if (!r) throw std::out_of_range("unmapped simulated address");
  return const_cast<MemoryRegion*>(r)->host.get() + (addr - r->base);
}

const std::byte* RegionRegistry::host_ptr(uint64_t addr) const {
  return const_cast<RegionRegistry*>(this)->host_ptr(addr);
}

std::span<float, kValuesPerBlock> RegionRegistry::block_values(uint64_t addr) {
  auto* p = reinterpret_cast<float*>(host_ptr(block_addr(addr)));
  return std::span<float, kValuesPerBlock>(p, kValuesPerBlock);
}

std::span<const float, kValuesPerBlock> RegionRegistry::block_values(uint64_t addr) const {
  auto* p = reinterpret_cast<const float*>(host_ptr(block_addr(addr)));
  return std::span<const float, kValuesPerBlock>(p, kValuesPerBlock);
}

uint64_t RegionRegistry::total_bytes() const {
  uint64_t n = 0;
  for (const auto& r : regions_) n += r.bytes;
  return n;
}

uint64_t RegionRegistry::approx_bytes() const {
  uint64_t n = 0;
  for (const auto& r : regions_)
    if (r.approx) n += r.bytes;
  return n;
}

}  // namespace avr
