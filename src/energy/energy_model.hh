// Per-event energy model producing the five-way breakdown of Fig. 10
// (Core / L1+L2 / LLC / DRAM / Compressor-Decompressor).
//
// Constants are CACTI/McPAT-class numbers for 32 nm (the paper's node):
// dynamic energy per access scaled by structure size, plus leakage
// proportional to execution time. The AVR module's energy comes from the
// paper's synthesis (~200k cells; per-block pipeline events).
#pragma once

#include <cstdint>

namespace avr {

struct EnergyParams {
  // Dynamic energy per event, nanojoules.
  double core_per_instr = 0.20;   // OoO core, 32 nm, per committed instr
  double l1_per_access = 0.03;    // 64 kB 4-way
  double l2_per_access = 0.12;    // 256 kB 8-way
  double llc_per_access = 0.55;   // 8 MB 16-way bank access
  double dram_per_byte = 0.08;    // ~10 pJ/bit I/O + array
  double dram_per_activate = 2.0; // row activation+precharge
  double comp_per_block = 0.9;    // compressor pipeline, per block pass
  double decomp_per_block = 0.35; // decompressor pipeline, per block pass

  // Leakage / background power, nanojoules per CPU cycle.
  double core_leak_per_cycle = 0.12;
  double l12_leak_per_cycle = 0.02;
  double llc_leak_per_cycle = 0.08;   // 8 MB SRAM
  double dram_background_per_cycle = 0.10;  // 2 channels refresh+standby
  double comp_leak_per_cycle = 0.004;       // ~200k cells
};

struct EnergyEvents {
  uint64_t instructions = 0;
  uint64_t cycles = 0;
  uint64_t l1_accesses = 0;
  uint64_t l2_accesses = 0;
  uint64_t llc_accesses = 0;
  uint64_t dram_bytes = 0;
  uint64_t dram_activations = 0;
  uint64_t compressions = 0;
  uint64_t decompressions = 0;
  bool has_compressor = false;  // only AVR/ZeroAVR pay its leakage
};

struct EnergyBreakdown {
  double core = 0;    // nJ
  double l1l2 = 0;
  double llc = 0;
  double dram = 0;
  double compressor = 0;
  double total() const { return core + l1l2 + llc + dram + compressor; }
};

inline EnergyBreakdown compute_energy(const EnergyEvents& e,
                                      const EnergyParams& p = {}) {
  EnergyBreakdown b;
  b.core = p.core_per_instr * static_cast<double>(e.instructions) +
           p.core_leak_per_cycle * static_cast<double>(e.cycles);
  b.l1l2 = p.l1_per_access * static_cast<double>(e.l1_accesses) +
           p.l2_per_access * static_cast<double>(e.l2_accesses) +
           p.l12_leak_per_cycle * static_cast<double>(e.cycles);
  b.llc = p.llc_per_access * static_cast<double>(e.llc_accesses) +
          p.llc_leak_per_cycle * static_cast<double>(e.cycles);
  b.dram = p.dram_per_byte * static_cast<double>(e.dram_bytes) +
           p.dram_per_activate * static_cast<double>(e.dram_activations) +
           p.dram_background_per_cycle * static_cast<double>(e.cycles);
  if (e.has_compressor)
    b.compressor = p.comp_per_block * static_cast<double>(e.compressions) +
                   p.decomp_per_block * static_cast<double>(e.decompressions) +
                   p.comp_leak_per_cycle * static_cast<double>(e.cycles);
  return b;
}

}  // namespace avr
