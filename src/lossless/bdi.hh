// Base-Delta-Immediate (BDI) lossless cacheline compression
// (Pekhimenko et al., PACT'12 family) — the orthogonal lossless layer the
// paper's related-work section discusses: it can compress non-approximated
// data, or run on top of AVR's compressed block images.
//
// A 64 B line is encoded as one base value plus narrow deltas when all
// words fit (b8d1/2/4, b4d1/2), as a zero line, or as a repeated value;
// otherwise it stays uncompressed. This is a size model (the simulator
// never stores encoded bytes), so encode() returns the encoded size only.
#pragma once

#include <cstdint>
#include <span>

#include "common/types.hh"

namespace avr::lossless {

enum class BdiEncoding : uint8_t {
  kZeros = 0,      // all-zero line: 1 B
  kRepeated = 1,   // one repeated 8 B value: 8 B
  kBase8Delta1 = 2,
  kBase8Delta2 = 3,
  kBase8Delta4 = 4,
  kBase4Delta1 = 5,
  kBase4Delta2 = 6,
  kUncompressed = 7,
};

struct BdiResult {
  BdiEncoding encoding = BdiEncoding::kUncompressed;
  uint32_t bytes = 64;  // encoded size, <= 64
};

/// Best BDI encoding of one 64 B cacheline.
BdiResult encode_line(std::span<const std::byte, kCachelineBytes> line);

/// Sum of per-line encodings over an arbitrary buffer (whole lines only).
uint64_t encoded_bytes(std::span<const std::byte> data);

const char* to_string(BdiEncoding e);

}  // namespace avr::lossless
