#include "lossless/bdi.hh"

#include <cstring>
#include <limits>

namespace avr::lossless {
namespace {

/// Do all `n`-byte words of the line fit in `delta_bytes` signed deltas
/// from the first word? Returns the encoded size or 0 on failure.
template <typename Base, typename Delta>
uint32_t try_base_delta(const std::byte* p) {
  constexpr uint32_t kWords = kCachelineBytes / sizeof(Base);
  Base base;
  std::memcpy(&base, p, sizeof(Base));
  for (uint32_t i = 1; i < kWords; ++i) {
    Base w;
    std::memcpy(&w, p + i * sizeof(Base), sizeof(Base));
    const auto delta = static_cast<int64_t>(w) - static_cast<int64_t>(base);
    if (delta < std::numeric_limits<Delta>::min() ||
        delta > std::numeric_limits<Delta>::max())
      return 0;
  }
  return sizeof(Base) + kWords * sizeof(Delta);
}

}  // namespace

BdiResult encode_line(std::span<const std::byte, kCachelineBytes> line) {
  const std::byte* p = line.data();

  bool zeros = true;
  for (std::byte b : line)
    if (b != std::byte{0}) {
      zeros = false;
      break;
    }
  if (zeros) return {BdiEncoding::kZeros, 1};

  uint64_t first;
  std::memcpy(&first, p, 8);
  bool repeated = true;
  for (uint32_t i = 1; i < 8; ++i) {
    uint64_t w;
    std::memcpy(&w, p + i * 8, 8);
    if (w != first) {
      repeated = false;
      break;
    }
  }
  if (repeated) return {BdiEncoding::kRepeated, 8};

  // Try encodings in increasing size order; first hit wins.
  struct Candidate {
    BdiEncoding e;
    uint32_t bytes;
  };
  const Candidate candidates[] = {
      {BdiEncoding::kBase8Delta1, try_base_delta<uint64_t, int8_t>(p)},
      {BdiEncoding::kBase4Delta1, try_base_delta<uint32_t, int8_t>(p)},
      {BdiEncoding::kBase8Delta2, try_base_delta<uint64_t, int16_t>(p)},
      {BdiEncoding::kBase4Delta2, try_base_delta<uint32_t, int16_t>(p)},
      {BdiEncoding::kBase8Delta4, try_base_delta<uint64_t, int32_t>(p)},
  };
  BdiResult best{BdiEncoding::kUncompressed, kCachelineBytes};
  for (const Candidate& c : candidates)
    if (c.bytes != 0 && c.bytes < best.bytes) best = {c.e, c.bytes};
  return best;
}

uint64_t encoded_bytes(std::span<const std::byte> data) {
  uint64_t total = 0;
  const uint64_t lines = data.size() / kCachelineBytes;
  for (uint64_t i = 0; i < lines; ++i)
    total += encode_line(std::span<const std::byte, kCachelineBytes>(
                             data.data() + i * kCachelineBytes, kCachelineBytes))
                 .bytes;
  return total;
}

const char* to_string(BdiEncoding e) {
  switch (e) {
    case BdiEncoding::kZeros: return "zeros";
    case BdiEncoding::kRepeated: return "repeated";
    case BdiEncoding::kBase8Delta1: return "b8d1";
    case BdiEncoding::kBase8Delta2: return "b8d2";
    case BdiEncoding::kBase8Delta4: return "b8d4";
    case BdiEncoding::kBase4Delta1: return "b4d1";
    case BdiEncoding::kBase4Delta2: return "b4d2";
    case BdiEncoding::kUncompressed: return "uncompressed";
  }
  return "?";
}

}  // namespace avr::lossless
