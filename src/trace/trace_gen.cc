#include "trace/trace_gen.hh"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "common/prng.hh"
#include "common/types.hh"

namespace avr {
namespace trace {
namespace {

uint64_t words_per_region(const GenParams& p) {
  // At least one cacheline so every pattern has room to move.
  return std::max<uint64_t>(p.region_bytes, kCachelineBytes) / 4;
}

std::vector<TraceRegion> make_regions(const GenParams& p, const std::string& stem) {
  std::vector<TraceRegion> regions;
  const uint32_t n = std::max<uint32_t>(1, p.regions);
  regions.reserve(n);
  for (uint32_t i = 0; i < n; ++i)
    regions.push_back({stem + std::to_string(i), words_per_region(p) * 4,
                       /*approx=*/true});
  return regions;
}

Op pick_op(Xoshiro256& rng, double store_fraction) {
  return rng.uniform() < store_fraction ? Op::kStore : Op::kLoad;
}

}  // namespace

Trace make_chase_trace(const GenParams& p) {
  Trace t;
  t.regions = make_regions(p, "chase");
  Xoshiro256 rng(p.seed * 0x9E3779B97F4A7C15ull + 1);

  // One random cyclic permutation of cachelines per region (Sattolo's
  // algorithm: a single cycle, so the chain never gets stuck in a short
  // loop), chased line to line.
  const uint64_t lines = words_per_region(p) * 4 / kCachelineBytes;
  std::vector<std::vector<uint32_t>> next(t.regions.size());
  for (auto& perm : next) {
    perm.resize(lines);
    for (uint64_t i = 0; i < lines; ++i) perm[i] = static_cast<uint32_t>(i);
    for (uint64_t i = lines - 1; i > 0; --i)
      std::swap(perm[i], perm[rng.below(i)]);
  }
  std::vector<uint32_t> line(t.regions.size(), 0);

  t.records.reserve(p.records);
  for (uint64_t i = 0; i < p.records; ++i) {
    const uint16_t r = static_cast<uint16_t>(i % t.regions.size());
    const uint64_t word_in_line = rng.below(kCachelineBytes / 4);
    t.records.push_back({pick_op(rng, p.store_fraction), r, 4,
                         uint64_t{line[r]} * kCachelineBytes + word_in_line * 4});
    line[r] = next[r][line[r]];
  }
  return t;
}

Trace make_zipf_trace(const GenParams& p) {
  Trace t;
  t.regions = make_regions(p, "zipf");
  Xoshiro256 rng(p.seed * 0x9E3779B97F4A7C15ull + 2);

  const uint64_t words = words_per_region(p);
  t.records.reserve(p.records);
  for (uint64_t i = 0; i < p.records; ++i) {
    const uint16_t r = static_cast<uint16_t>(i % t.regions.size());
    // u^4 concentrates ~80 % of accesses on ~20 % of ranks without libm;
    // the multiplicative hash scatters hot ranks across the region so the
    // hot set is not one contiguous (trivially cacheable) range.
    const double u = rng.uniform();
    const double u4 = (u * u) * (u * u);
    const uint64_t rank = static_cast<uint64_t>(u4 * static_cast<double>(words));
    const uint64_t word = (rank * 2654435761ull) % words;
    t.records.push_back({pick_op(rng, p.store_fraction), r, 4, word * 4});
  }
  return t;
}

Trace make_walk_trace(const GenParams& p) {
  Trace t;
  t.regions = make_regions(p, "walk");
  Xoshiro256 rng(p.seed * 0x9E3779B97F4A7C15ull + 3);

  const uint64_t words = words_per_region(p);
  std::vector<uint64_t> pos(t.regions.size(), words / 2);
  t.records.reserve(p.records);
  for (uint64_t i = 0; i < p.records; ++i) {
    const uint16_t r = static_cast<uint16_t>(i % t.regions.size());
    if (rng.uniform() < 0.01) {
      pos[r] = rng.below(words);  // long jump
    } else {
      const int64_t step = static_cast<int64_t>(rng.below(33)) - 16;
      const int64_t p2 = static_cast<int64_t>(pos[r]) + step;
      pos[r] = static_cast<uint64_t>(std::clamp<int64_t>(
          p2, 0, static_cast<int64_t>(words) - 1));
    }
    // Mostly single words, sometimes a 16 B or 64 B burst (clamped to the
    // region end) — the variable-size path of the format.
    uint32_t size = 4;
    const double s = rng.uniform();
    if (s < 0.05)
      size = static_cast<uint32_t>(kCachelineBytes);
    else if (s < 0.20)
      size = 16;
    const uint64_t max_size = (words - pos[r]) * 4;
    size = static_cast<uint32_t>(std::min<uint64_t>(size, max_size));
    t.records.push_back({pick_op(rng, p.store_fraction), r, size, pos[r] * 4});
  }
  return t;
}

Trace make_mixed_trace(const GenParams& p) {
  // Each pattern gets its own region group; records interleave round-robin,
  // so the stream switches pattern (and region) every record.
  GenParams sub = p;
  sub.regions = std::max<uint32_t>(1, p.regions / 3);
  sub.records = p.records / 3;
  const Trace parts[3] = {make_chase_trace(sub), make_zipf_trace(sub),
                          make_walk_trace(sub)};

  Trace t;
  uint16_t base[3];
  uint16_t next_region = 0;
  for (int g = 0; g < 3; ++g) {
    base[g] = next_region;
    for (const TraceRegion& r : parts[g].regions) {
      t.regions.push_back(r);
      ++next_region;
    }
  }
  t.records.reserve(3 * sub.records);
  for (uint64_t i = 0; i < sub.records; ++i)
    for (int g = 0; g < 3; ++g) {
      TraceRecord rec = parts[g].records[i];
      rec.region = static_cast<uint16_t>(rec.region + base[g]);
      t.records.push_back(rec);
    }
  return t;
}

Trace make_synthetic_trace(const std::string& pattern, const GenParams& p) {
  if (pattern == "chase") return make_chase_trace(p);
  if (pattern == "zipf") return make_zipf_trace(p);
  if (pattern == "walk") return make_walk_trace(p);
  if (pattern == "mixed") return make_mixed_trace(p);
  throw std::invalid_argument("unknown trace pattern: " + pattern +
                              " (want chase, zipf, walk or mixed)");
}

}  // namespace trace
}  // namespace avr
