// Synthetic access-stream generators: the irregular patterns the paper's
// loop-structured kernels cannot produce, used to stress the access-chain
// fast path (PR 5's L1 MRU filter was tuned on regular streams) and to seed
// `data/traces/`. Shared by the avr_trace_gen tool, the replay benches and
// the tests so all of them agree on what each pattern means.
//
// Every generator is a pure function of its arguments (deterministic PRNG,
// no global state): the same (pattern, records, regions, bytes, seed) tuple
// produces a bit-identical Trace on every machine.
#pragma once

#include <cstdint>
#include <string>

#include "trace/trace_format.hh"

namespace avr {
namespace trace {

struct GenParams {
  uint64_t records = 1 << 16;       // record count (one 4 B access each)
  uint32_t regions = 4;             // regions to spread the stream over
  uint64_t region_bytes = 1 << 18;  // bytes per region (4-aligned)
  double store_fraction = 0.25;     // stores in the stream
  uint64_t seed = 1;
};

/// Pointer-chasing: each region holds a random cyclic permutation of its
/// cachelines; the stream follows the chain, so consecutive accesses share
/// neither a line nor a predictable stride — the MRU filter's worst case.
Trace make_chase_trace(const GenParams& p);

/// Zipf-like hot set: accesses concentrate on a small hot subset of each
/// region's words (~80/20), with the cold tail touched occasionally —
/// server-churn locality rather than streaming locality.
Trace make_zipf_trace(const GenParams& p);

/// Bounded random walk: the offset wanders in small random steps with
/// occasional long jumps and variable record sizes (up to one cacheline),
/// the shape of heap-allocator and graph-traversal traffic.
Trace make_walk_trace(const GenParams& p);

/// All three interleaved round-robin, one pattern per region group.
Trace make_mixed_trace(const GenParams& p);

/// Generator by name: "chase", "zipf", "walk", "mixed". Throws
/// std::invalid_argument for unknown names.
Trace make_synthetic_trace(const std::string& pattern, const GenParams& p);

}  // namespace trace
}  // namespace avr
