// Compact binary trace format v1: recorded memory-access streams replayable
// through the RegionHandle runtime API (the `trace:<path>` workload).
//
// Layout (all integers little-endian, serialized field by field — never by
// struct copy, so padding bytes can neither leak nor alias):
//
//   header   (24 B)  magic "AVRTRACE", u32 version (=1), u32 region_count,
//                    u64 record_count
//   regions  (40 B each)  char name[24] NUL-padded, u64 bytes, u32 flags
//                    (bit 0 = approx, others reserved-zero), u32 reserved
//   records  (16 B each)  u8 op (0 = load, 1 = store), u8 reserved,
//                    u16 region index, u32 size (bytes), u64 offset
//
// Reader contract (the tolerant-reader wall): trace bytes come from disk
// and are UNTRUSTED. Every reject path — wrong magic/version, truncated
// header or region table, torn final record, region index out of range,
// offset/size past the region end, zero regions, absurd counts — returns
// false with a one-line reason; no input may crash, over-allocate, or
// invoke UB. The expected file size is computed from the header *before*
// any record is parsed, so a hostile count cannot drive allocation beyond
// the actual file size.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace avr {
namespace trace {

inline constexpr char kTraceMagic[8] = {'A', 'V', 'R', 'T', 'R', 'A', 'C', 'E'};
inline constexpr uint32_t kTraceVersion = 1;
inline constexpr size_t kHeaderBytes = 24;
inline constexpr size_t kRegionEntryBytes = 40;
inline constexpr size_t kRecordBytes = 16;
inline constexpr size_t kRegionNameBytes = 24;  // includes the NUL padding

// Sanity bounds enforced by reader AND writer. They exist so a hostile
// header cannot make replay allocate unbounded host memory: the region
// table is what sizes allocations, so it is capped independently of the
// (file-size-bounded) record stream.
inline constexpr uint32_t kMaxRegions = 4096;
inline constexpr uint64_t kMaxRegionBytes = 1ull << 30;        // 1 GiB each
inline constexpr uint64_t kMaxTraceFootprint = 256ull << 20;   // 256 MiB total
inline constexpr uint32_t kMaxRecordSize = 4096;               // bytes per record

enum class Op : uint8_t { kLoad = 0, kStore = 1 };

struct TraceRegion {
  std::string name;    // 1..23 printable non-comma chars
  uint64_t bytes = 0;  // > 0, <= kMaxRegionBytes
  bool approx = false;
};

struct TraceRecord {
  Op op = Op::kLoad;
  uint16_t region = 0;  // index into the region table
  uint32_t size = 0;    // bytes touched: 4-aligned, 4..kMaxRecordSize
  uint64_t offset = 0;  // 4-aligned, offset + size <= region bytes
};

struct Trace {
  std::vector<TraceRegion> regions;
  std::vector<TraceRecord> records;

  uint64_t footprint_bytes() const {
    uint64_t total = 0;
    for (const auto& r : regions) total += r.bytes;
    return total;
  }
  /// Total 4-byte words the record stream touches (= instrumented accesses a
  /// replay will issue); the scheduler's cost proxy.
  uint64_t access_count() const {
    uint64_t words = 0;
    for (const auto& r : records) words += r.size / 4;
    return words;
  }
};

/// Region table + record count without the record stream: everything needed
/// to validate a trace and estimate its cost at startup (`avr_sweep --list`)
/// without loading the records.
struct TraceInfo {
  std::vector<TraceRegion> regions;
  uint64_t record_count = 0;
};

/// Structural validity of an in-memory trace (the writer refuses to produce
/// a file the reader would reject). True, or false with a reason in *error.
bool validate_trace(const Trace& t, std::string* error);

/// Serializes `t` to `path`. False (with *error) on invalid trace or I/O
/// failure; a failed write never leaves a truncated file behind as `path`.
bool write_trace_file(const std::string& path, const Trace& t, std::string* error);

/// Parses `path` under the tolerant-reader contract above. On failure *out
/// is untouched.
bool read_trace_file(const std::string& path, Trace* out, std::string* error);

/// Validates header + region table + exact file length (so truncation and
/// torn records are caught here too) but does not load the records.
bool probe_trace_file(const std::string& path, TraceInfo* out, std::string* error);

}  // namespace trace
}  // namespace avr
