#include "trace/trace_format.hh"

#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>

namespace avr {
namespace trace {
namespace {

bool fail(std::string* error, std::string msg) {
  if (error) *error = std::move(msg);
  return false;
}

// ---- little-endian field codec ---------------------------------------------
// Byte-by-byte shifts: endian-portable and free of alignment/padding UB.

void put_u16(std::string& s, uint16_t v) {
  s.push_back(static_cast<char>(v & 0xFF));
  s.push_back(static_cast<char>((v >> 8) & 0xFF));
}

void put_u32(std::string& s, uint32_t v) {
  for (int i = 0; i < 4; ++i) s.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_u64(std::string& s, uint64_t v) {
  for (int i = 0; i < 8; ++i) s.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

/// Bounds-checked read cursor over the loaded file bytes. Every get_* is
/// total: past-the-end reads return 0 and latch `torn` instead of reading
/// out of bounds (callers check sizes up front, this is the defense line).
struct Cursor {
  const unsigned char* p;
  size_t size;
  size_t at = 0;
  bool torn = false;

  uint8_t get_u8() {
    if (at + 1 > size) {
      torn = true;
      return 0;
    }
    return p[at++];
  }
  uint16_t get_u16() {
    uint16_t v = get_u8();
    return static_cast<uint16_t>(v | (static_cast<uint16_t>(get_u8()) << 8));
  }
  uint32_t get_u32() {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(get_u8()) << (8 * i);
    return v;
  }
  uint64_t get_u64() {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(get_u8()) << (8 * i);
    return v;
  }
};

bool valid_region_name(const std::string& name) {
  if (name.empty() || name.size() >= kRegionNameBytes) return false;
  for (char c : name) {
    const unsigned char u = static_cast<unsigned char>(c);
    // Printable ASCII, no commas (region names may end up in CSV artifacts)
    // and no embedded NUL (the on-disk padding byte).
    if (u < 0x20 || u > 0x7E || c == ',') return false;
  }
  return true;
}

bool validate_regions(const std::vector<TraceRegion>& regions, std::string* error) {
  if (regions.empty()) return fail(error, "zero regions");
  if (regions.size() > kMaxRegions)
    return fail(error, "region count " + std::to_string(regions.size()) +
                           " exceeds limit " + std::to_string(kMaxRegions));
  uint64_t footprint = 0;
  for (size_t i = 0; i < regions.size(); ++i) {
    const TraceRegion& r = regions[i];
    if (!valid_region_name(r.name))
      return fail(error, "region " + std::to_string(i) +
                             ": name must be 1..23 printable non-comma chars");
    if (r.bytes == 0 || r.bytes > kMaxRegionBytes)
      return fail(error, "region " + r.name + ": bad size " +
                             std::to_string(r.bytes));
    // Replay resolves handles by name; a duplicate would silently alias two
    // table entries onto one allocation.
    for (size_t j = 0; j < i; ++j)
      if (regions[j].name == r.name)
        return fail(error, "duplicate region name '" + r.name + "'");
    footprint += r.bytes;
  }
  if (footprint > kMaxTraceFootprint)
    return fail(error, "total footprint " + std::to_string(footprint) +
                           " exceeds limit " + std::to_string(kMaxTraceFootprint));
  return true;
}

bool validate_record(const TraceRecord& rec, uint64_t index,
                     const std::vector<TraceRegion>& regions, std::string* error) {
  const std::string where = "record " + std::to_string(index) + ": ";
  if (rec.op != Op::kLoad && rec.op != Op::kStore)
    return fail(error, where + "bad op " +
                           std::to_string(static_cast<unsigned>(rec.op)));
  if (rec.region >= regions.size())
    return fail(error, where + "region index " + std::to_string(rec.region) +
                           " out of range (have " +
                           std::to_string(regions.size()) + ")");
  if (rec.size < 4 || rec.size % 4 != 0 || rec.size > kMaxRecordSize)
    return fail(error, where + "bad size " + std::to_string(rec.size));
  if (rec.offset % 4 != 0)
    return fail(error, where + "unaligned offset " + std::to_string(rec.offset));
  const uint64_t region_bytes = regions[rec.region].bytes;
  // Overflow-safe: size <= kMaxRecordSize and offset is checked first.
  if (rec.offset > region_bytes || region_bytes - rec.offset < rec.size)
    return fail(error, where + "offset " + std::to_string(rec.offset) + "+" +
                           std::to_string(rec.size) + " past region '" +
                           regions[rec.region].name + "' end (" +
                           std::to_string(region_bytes) + ")");
  return true;
}

/// Header + region table from the front of the file. On success, `cur` is
/// left positioned at the first record and *record_count is filled.
bool parse_prefix(Cursor& cur, size_t file_size, std::vector<TraceRegion>* regions,
                  uint64_t* record_count, std::string* error) {
  if (file_size < kHeaderBytes)
    return fail(error, "truncated header: " + std::to_string(file_size) +
                           " bytes, need " + std::to_string(kHeaderBytes));
  if (std::memcmp(cur.p, kTraceMagic, sizeof(kTraceMagic)) != 0)
    return fail(error, "bad magic (not an AVR trace file)");
  cur.at = sizeof(kTraceMagic);
  const uint32_t version = cur.get_u32();
  if (version != kTraceVersion)
    return fail(error, "unsupported trace version " + std::to_string(version) +
                           " (reader speaks v" + std::to_string(kTraceVersion) +
                           ")");
  const uint32_t region_count = cur.get_u32();
  *record_count = cur.get_u64();
  if (region_count == 0) return fail(error, "zero regions");
  if (region_count > kMaxRegions)
    return fail(error, "region count " + std::to_string(region_count) +
                           " exceeds limit " + std::to_string(kMaxRegions));
  // The exact length the header promises. Anything shorter is torn, anything
  // longer carries trailing garbage; both are rejected before records parse.
  const uint64_t expect = kHeaderBytes +
                          uint64_t{region_count} * kRegionEntryBytes +
                          *record_count * kRecordBytes;
  if (file_size != expect)
    return fail(error, "file is " + std::to_string(file_size) +
                           " bytes but header promises " + std::to_string(expect) +
                           " (truncated or torn trace)");

  regions->clear();
  regions->reserve(region_count);
  for (uint32_t i = 0; i < region_count; ++i) {
    char name[kRegionNameBytes];
    for (size_t b = 0; b < kRegionNameBytes; ++b)
      name[b] = static_cast<char>(cur.get_u8());
    if (name[kRegionNameBytes - 1] != '\0')
      return fail(error, "region " + std::to_string(i) + ": unterminated name");
    TraceRegion r;
    r.name = name;  // up to the first NUL
    // The padding after the NUL must be zero so every v1 file has exactly
    // one canonical byte representation.
    for (size_t b = r.name.size(); b < kRegionNameBytes; ++b)
      if (name[b] != '\0')
        return fail(error,
                    "region " + std::to_string(i) + ": nonzero name padding");
    r.bytes = cur.get_u64();
    const uint32_t flags = cur.get_u32();
    if (flags > 1)
      return fail(error, "region " + r.name + ": unknown flags " +
                             std::to_string(flags));
    r.approx = flags & 1;
    if (cur.get_u32() != 0)
      return fail(error, "region " + r.name + ": nonzero reserved field");
    regions->push_back(std::move(r));
  }
  if (cur.torn) return fail(error, "truncated region table");
  return validate_regions(*regions, error);
}

bool read_file_bytes(const std::string& path, std::string* bytes,
                     std::string* error, size_t limit) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return fail(error, "cannot open " + path);
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  if (size < 0) return fail(error, "cannot stat " + path);
  in.seekg(0);
  const size_t want = std::min<size_t>(static_cast<size_t>(size), limit);
  bytes->resize(want);
  if (want > 0 && !in.read(bytes->data(), static_cast<std::streamsize>(want)))
    return fail(error, "cannot read " + path);
  return true;
}

}  // namespace

bool validate_trace(const Trace& t, std::string* error) {
  if (!validate_regions(t.regions, error)) return false;
  for (uint64_t i = 0; i < t.records.size(); ++i)
    if (!validate_record(t.records[i], i, t.regions, error)) return false;
  return true;
}

bool write_trace_file(const std::string& path, const Trace& t, std::string* error) {
  if (!validate_trace(t, error)) return false;
  std::string s;
  s.reserve(kHeaderBytes + t.regions.size() * kRegionEntryBytes +
            t.records.size() * kRecordBytes);
  s.append(kTraceMagic, sizeof(kTraceMagic));
  put_u32(s, kTraceVersion);
  put_u32(s, static_cast<uint32_t>(t.regions.size()));
  put_u64(s, t.records.size());
  for (const TraceRegion& r : t.regions) {
    s.append(r.name);
    s.append(kRegionNameBytes - r.name.size(), '\0');
    put_u64(s, r.bytes);
    put_u32(s, r.approx ? 1u : 0u);
    put_u32(s, 0);
  }
  for (const TraceRecord& rec : t.records) {
    s.push_back(static_cast<char>(rec.op));
    s.push_back('\0');
    put_u16(s, rec.region);
    put_u32(s, rec.size);
    put_u64(s, rec.offset);
  }
  // Write to a sibling temp file and rename into place: a crashed or
  // disk-full writer must never leave a torn file under the final name.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return fail(error, "cannot create " + tmp);
    out.write(s.data(), static_cast<std::streamsize>(s.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return fail(error, "short write to " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return fail(error, "cannot rename " + tmp + " to " + path);
  }
  return true;
}

bool read_trace_file(const std::string& path, Trace* out, std::string* error) {
  std::string bytes;
  // No limit beyond the format's own: the exact-length check below bounds
  // record parsing to what was actually read.
  if (!read_file_bytes(path, &bytes, error, ~size_t{0})) return false;
  Cursor cur{reinterpret_cast<const unsigned char*>(bytes.data()), bytes.size()};

  Trace t;
  uint64_t record_count = 0;
  if (!parse_prefix(cur, bytes.size(), &t.regions, &record_count, error))
    return false;
  t.records.reserve(record_count);  // bounded: file_size == expected length
  for (uint64_t i = 0; i < record_count; ++i) {
    TraceRecord rec;
    rec.op = static_cast<Op>(cur.get_u8());
    const uint8_t reserved = cur.get_u8();
    rec.region = cur.get_u16();
    rec.size = cur.get_u32();
    rec.offset = cur.get_u64();
    if (reserved != 0)
      return fail(error, "record " + std::to_string(i) + ": nonzero reserved byte");
    if (!validate_record(rec, i, t.regions, error)) return false;
    t.records.push_back(rec);
  }
  if (cur.torn) return fail(error, "truncated record stream");
  *out = std::move(t);
  return true;
}

bool probe_trace_file(const std::string& path, TraceInfo* out, std::string* error) {
  // True file length first (for the exact-size check), then only the prefix
  // is loaded: probing a multi-GB trace costs its region table, not its
  // record stream.
  std::ifstream in(path, std::ios::binary);
  if (!in) return fail(error, "cannot open " + path);
  in.seekg(0, std::ios::end);
  const std::streamoff file_size = in.tellg();
  in.close();
  if (file_size < 0) return fail(error, "cannot stat " + path);

  std::string bytes;
  const size_t prefix = kHeaderBytes + size_t{kMaxRegions} * kRegionEntryBytes;
  if (!read_file_bytes(path, &bytes, error, prefix)) return false;
  Cursor cur{reinterpret_cast<const unsigned char*>(bytes.data()), bytes.size()};

  TraceInfo info;
  if (!parse_prefix(cur, static_cast<size_t>(file_size), &info.regions,
                    &info.record_count, error))
    return false;
  *out = std::move(info);
  return true;
}

}  // namespace trace
}  // namespace avr
