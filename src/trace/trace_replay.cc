#include "trace/trace_replay.hh"

#include <cassert>

#include "runtime/system.hh"

namespace avr {
namespace trace {

void replay(System& sys, const Trace& t, const std::vector<RegionHandle>& handles,
            ReplayCursor& cur) {
  assert(handles.size() == t.regions.size());
  assert(cur.load_sum.size() == t.regions.size());
  for (const TraceRecord& rec : t.records) {
    const RegionHandle& h = handles[rec.region];
    const uint32_t words = rec.size / 4;
    if (rec.op == Op::kLoad) {
      double sum = 0;
      float last = cur.last_loaded[rec.region];
      for (uint32_t w = 0; w < words; ++w) {
        last = sys.load_f32(h, rec.offset + uint64_t{w} * 4);
        sum += last;
      }
      cur.load_sum[rec.region] += sum;
      cur.last_loaded[rec.region] = last;
      cur.loads += words;
    } else {
      // Read-modify-write character: the stored value depends on what the
      // last load of this region *observed*, so value degradation feeds
      // forward exactly as in the hand-written kernels.
      const float base = 0.25f * cur.last_loaded[rec.region];
      for (uint32_t w = 0; w < words; ++w) {
        const float jitter =
            static_cast<float>(cur.rng.uniform(-0.5, 0.5));
        sys.store_f32(h, rec.offset + uint64_t{w} * 4, base + jitter);
      }
      cur.stores += words;
    }
    // Surrounding arithmetic of the recorded program (index math, the
    // mix/damp above), charged like the kernels charge theirs.
    sys.ops(2 * words);
  }
}

void init_region(System& sys, const RegionHandle& h, uint64_t seed) {
  Xoshiro256 rng(seed);
  float v = 100.0f + 50.0f * static_cast<float>(rng.uniform());
  for (uint64_t off = 0; off + 4 <= h.bytes; off += 4) {
    v += static_cast<float>(rng.uniform(-1.0, 1.0));
    float out = v;
    if (rng.uniform() < 0.02)  // sparse spikes -> compressor outliers
      out += 40.0f * static_cast<float>(rng.uniform(-1.0, 1.0));
    sys.poke_f32(h, off, out);
  }
}

}  // namespace trace
}  // namespace avr
