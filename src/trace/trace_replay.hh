// Replay core: drives a recorded access stream through the RegionHandle
// runtime API. Shared by the `trace:<path>` workload (src/workloads/trace.cc),
// the replay micro-benches and the tests, so all three exercise the exact
// same per-record loop.
#pragma once

#include <cstdint>
#include <vector>

#include "common/prng.hh"
#include "runtime/region.hh"
#include "trace/trace_format.hh"

namespace avr {

class System;

namespace trace {

/// Mutable replay state across records. The store-value stream is a
/// deterministic function of (seed, record order) *and* of the values loads
/// observe — stores write a damped mix of the region's last-loaded value
/// plus PRNG jitter — so approximation error propagates through the replay
/// the way it does through a real read-modify-write kernel, while two
/// replays of the same trace on the same design stay bit-identical.
struct ReplayCursor {
  explicit ReplayCursor(size_t num_regions, uint64_t seed = 0xC0FFEE)
      : load_sum(num_regions, 0.0), last_loaded(num_regions, 1.0f), rng(seed) {}

  std::vector<double> load_sum;    // per-region sum of values seen by loads
  std::vector<float> last_loaded;  // per-region most recent loaded value
  uint64_t loads = 0;              // replayed 4-byte load accesses
  uint64_t stores = 0;             // replayed 4-byte store accesses
  Xoshiro256 rng;
};

/// Replays every record of `t` through `sys`'s instrumented accessors.
/// `handles[i]` must be the resolved handle for `t.regions[i]` and `t` must
/// have passed validate_trace (offsets are only Debug-asserted here).
void replay(System& sys, const Trace& t, const std::vector<RegionHandle>& handles,
            ReplayCursor& cur);

/// Deterministic compressible fill for a replay region: a bounded random
/// walk (smooth base, occasional jumps), functionally poked so initialization
/// adds no simulated traffic — recorded contents behave like pre-existing
/// memory the trace's first loads miss on. Value character mirrors the
/// kernels' inputs: mostly smooth (compresses) with outlier spikes.
void init_region(System& sys, const RegionHandle& h, uint64_t seed);

}  // namespace trace
}  // namespace avr
