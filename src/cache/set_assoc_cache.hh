// Generic set-associative, write-back/write-allocate cache model with true
// LRU replacement. Stores tags and state only; data values live in the
// functional backing store owned by the runtime.
//
// Used directly for the private L1/L2 caches and for the baseline LLC; the
// AVR LLC (src/avr/avr_llc.hh) has its own decoupled structure.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace avr {

struct Eviction {
  uint64_t addr = 0;
  bool valid = false;
  bool dirty = false;
};

/// Plain-field counters: this sits on the L1 hit path, executed once per
/// instrumented load/store, so no string-keyed maps here.
struct CacheCounters {
  uint64_t accesses = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t fills = 0;
  uint64_t evictions = 0;
  uint64_t dirty_evictions = 0;
};

class SetAssocCache {
 public:
  SetAssocCache(std::string name, uint64_t size_bytes, uint32_t ways,
                uint64_t line_bytes = kCachelineBytes);

  /// Lookup without side effects.
  bool probe(uint64_t addr) const;

  /// Lookup; on hit updates LRU (and dirty bit for writes) and returns true.
  bool access(uint64_t addr, bool write);

  /// Allocate `addr` (must not be present), evicting the LRU victim of its
  /// set if the set is full. Returns the eviction (valid=false if none).
  Eviction fill(uint64_t addr, bool dirty);

  /// Remove the line if present; returns whether it was dirty.
  std::optional<bool> invalidate(uint64_t addr);

  /// Mark an existing line dirty (e.g. a writeback landing from above).
  /// Returns false if the line is absent.
  bool mark_dirty(uint64_t addr);

  /// Fold `n` MRU-filter hits (accounted by MemoryHierarchy's line filter,
  /// which bypasses access()) into the counters: n accesses, n hits.
  void count_filtered_hits(uint64_t n) {
    counters_.accesses += n;
    counters_.hits += n;
  }

  /// Enumerate all valid lines (used to drain dirty state at end of run).
  std::vector<std::pair<uint64_t, bool>> valid_lines() const;

  uint32_t num_sets() const { return sets_; }
  uint32_t ways() const { return ways_; }
  uint64_t line_bytes() const { return line_bytes_; }
  const std::string& name() const { return name_; }

  const CacheCounters& counters() const { return counters_; }
  /// Snapshot of the counters as a StatGroup (cold path, for reporting).
  StatGroup stats() const;

 private:
  // An invalid line stores the sentinel tag, so the lookup scan — executed
  // once per instrumented load/store for the L1 — is a single compare per
  // way instead of a valid-check plus a tag compare. No real tag can be the
  // sentinel: tags are addr / line_bytes / sets < 2^58.
  static constexpr uint64_t kNoTag = ~uint64_t{0};
  struct Line {
    uint64_t tag = kNoTag;
    uint64_t lru = 0;  // higher = more recently used
    bool dirty = false;

    bool valid() const { return tag != kNoTag; }
  };

  uint64_t set_of(uint64_t addr) const { return (addr / line_bytes_) & (sets_ - 1); }
  uint64_t tag_of(uint64_t addr) const { return addr / line_bytes_ / sets_; }
  Line* find(uint64_t addr);
  const Line* find(uint64_t addr) const;

  std::vector<Line> lines_;  // sets_ * ways_, set-major
  uint32_t sets_;
  uint32_t ways_;
  uint64_t line_bytes_;
  uint64_t lru_clock_ = 0;
  std::string name_;
  CacheCounters counters_;
};

}  // namespace avr
