#include "cache/set_assoc_cache.hh"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace avr {

SetAssocCache::SetAssocCache(std::string name, uint64_t size_bytes, uint32_t ways,
                             uint64_t line_bytes)
    : ways_(ways), line_bytes_(line_bytes), name_(std::move(name)) {
  if (ways == 0 || size_bytes % (ways * line_bytes) != 0)
    throw std::invalid_argument("cache size must be a multiple of ways*line");
  const uint64_t sets = size_bytes / (ways * line_bytes);
  if (!std::has_single_bit(sets))
    throw std::invalid_argument("number of sets must be a power of two");
  sets_ = static_cast<uint32_t>(sets);
  lines_.resize(uint64_t{sets_} * ways_);
}

SetAssocCache::Line* SetAssocCache::find(uint64_t addr) {
  const uint64_t set = set_of(addr);
  const uint64_t tag = tag_of(addr);
  Line* base = &lines_[set * ways_];
  for (uint32_t w = 0; w < ways_; ++w)
    if (base[w].tag == tag) return &base[w];
  return nullptr;
}

const SetAssocCache::Line* SetAssocCache::find(uint64_t addr) const {
  return const_cast<SetAssocCache*>(this)->find(addr);
}

bool SetAssocCache::probe(uint64_t addr) const { return find(addr) != nullptr; }

bool SetAssocCache::access(uint64_t addr, bool write) {
  Line* l = find(addr);
  ++counters_.accesses;
  if (!l) {
    ++counters_.misses;
    return false;
  }
  l->lru = ++lru_clock_;
  if (write) l->dirty = true;
  ++counters_.hits;
  return true;
}

Eviction SetAssocCache::fill(uint64_t addr, bool dirty) {
  assert(!probe(addr) && "fill of a line already present");
  const uint64_t set = set_of(addr);
  Line* base = &lines_[set * ways_];
  Line* victim = nullptr;
  for (uint32_t w = 0; w < ways_; ++w) {
    if (!base[w].valid()) {
      victim = &base[w];
      break;
    }
    if (!victim || base[w].lru < victim->lru) victim = &base[w];
  }
  Eviction ev;
  if (victim->valid()) {
    ev.valid = true;
    ev.dirty = victim->dirty;
    ev.addr = (victim->tag * sets_ + set) * line_bytes_;
    ++counters_.evictions;
    if (ev.dirty) ++counters_.dirty_evictions;
  }
  victim->dirty = dirty;
  victim->tag = tag_of(addr);
  victim->lru = ++lru_clock_;
  ++counters_.fills;
  return ev;
}

std::optional<bool> SetAssocCache::invalidate(uint64_t addr) {
  Line* l = find(addr);
  if (!l) return std::nullopt;
  const bool dirty = l->dirty;
  l->tag = kNoTag;
  return dirty;
}

bool SetAssocCache::mark_dirty(uint64_t addr) {
  Line* l = find(addr);
  if (!l) return false;
  l->dirty = true;
  l->lru = ++lru_clock_;
  return true;
}

std::vector<std::pair<uint64_t, bool>> SetAssocCache::valid_lines() const {
  std::vector<std::pair<uint64_t, bool>> out;
  for (uint64_t set = 0; set < sets_; ++set)
    for (uint32_t w = 0; w < ways_; ++w) {
      const Line& l = lines_[set * ways_ + w];
      if (l.valid()) out.emplace_back((l.tag * sets_ + set) * line_bytes_, l.dirty);
    }
  return out;
}

StatGroup SetAssocCache::stats() const {
  StatGroup g(name_);
  g.set("accesses", counters_.accesses);
  g.set("hits", counters_.hits);
  g.set("misses", counters_.misses);
  g.set("fills", counters_.fills);
  g.set("evictions", counters_.evictions);
  g.set("dirty_evictions", counters_.dirty_evictions);
  return g;
}

}  // namespace avr
