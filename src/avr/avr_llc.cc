#include "avr/avr_llc.hh"

#include <bit>
#include <cassert>
#include <cstring>
#include <stdexcept>

namespace avr {

uint64_t AvrLlc::bpa_match(const BpaEntry& e) {
  static_assert(offsetof(BpaEntry, tag_idx) == 0 && offsetof(BpaEntry, cl_id) == 4 &&
                offsetof(BpaEntry, is_cms) == 5 && offsetof(BpaEntry, valid) == 6 &&
                offsetof(BpaEntry, dirty) == 7 && sizeof(BpaEntry) == 16);
  if constexpr (std::endian::native == std::endian::little) {
    // One 8-byte load; mask off byte 7 (the dirty flag).
    uint64_t k;
    std::memcpy(&k, &e, sizeof(k));
    return k & 0x00FF'FFFF'FFFF'FFFFULL;
  } else {
    return uint64_t{e.tag_idx} | (uint64_t{e.cl_id} << 32) |
           (uint64_t{e.is_cms} << 40) | (uint64_t{e.valid} << 48);
  }
}

AvrLlc::AvrLlc(const CacheConfig& cfg) : ways_(cfg.ways) {
  const uint64_t entries = cfg.size_bytes / kCachelineBytes;
  if (cfg.ways == 0 || entries % cfg.ways != 0)
    throw std::invalid_argument("LLC size/ways mismatch");
  const uint64_t sets = entries / cfg.ways;
  if (!std::has_single_bit(sets)) throw std::invalid_argument("sets not power of two");
  sets_ = static_cast<uint32_t>(sets);
  set_bits_ = static_cast<uint32_t>(std::countr_zero(sets));
  tags_.resize(uint64_t{sets_} * ways_);
  bpa_.resize(uint64_t{sets_} * ways_);
}

// ---- tag array ------------------------------------------------------------

AvrLlc::TagEntry* AvrLlc::find_tag(uint64_t block) {
  const uint64_t set = tag_index(block);
  const uint64_t tag = block_tag(block);
  TagEntry* base = &tags_[set * ways_];
  for (uint32_t w = 0; w < ways_; ++w)
    if (base[w].block_tag == tag) return &base[w];
  return nullptr;
}

const AvrLlc::TagEntry* AvrLlc::find_tag(uint64_t block) const {
  return const_cast<AvrLlc*>(this)->find_tag(block);
}

uint32_t AvrLlc::ensure_tag(uint64_t block, std::vector<LlcVictim>& out) {
  const uint64_t set = tag_index(block);
  const uint64_t tag = block_tag(block);
  TagEntry* base = &tags_[set * ways_];
  for (uint32_t w = 0; w < ways_; ++w)
    if (base[w].block_tag == tag) return static_cast<uint32_t>(set * ways_ + w);

  // Allocate: free way if possible, else evict the LRU tag with all its
  // resident UCLs and CMSs (Sec. 3.4, "Allocation for a tag entry").
  uint32_t victim = ways_;
  for (uint32_t w = 0; w < ways_; ++w)
    if (!base[w].valid()) {
      victim = w;
      break;
    }
  if (victim == ways_) {
    victim = 0;
    for (uint32_t w = 1; w < ways_; ++w)
      if (base[w].lru < base[victim].lru) victim = w;
    evict_tag(static_cast<uint32_t>(set), victim, out);
    ++counters_.tag_evictions;
  }
  base[victim] = TagEntry{};
  base[victim].block_tag = tag;
  base[victim].lru = ++lru_clock_;
  return static_cast<uint32_t>(set * ways_ + victim);
}

AvrLlc::TagEntry& AvrLlc::revive_tag(uint32_t tag_idx, uint64_t block) {
  TagEntry& t = tags_[tag_idx];
  if (!t.valid()) {
    // The way is still ours: nothing allocates tag ways between ensure_tag
    // and the caller, maybe_free_tag only clears the tag.
    t = TagEntry{};
    t.block_tag = block_tag(block);
  }
  return t;
}

void AvrLlc::maybe_free_tag(uint32_t tag_idx) {
  TagEntry& t = tags_[tag_idx];
  if (t.valid() && t.cms == 0 && t.ucl == 0) t.invalidate();
}

void AvrLlc::evict_tag(uint32_t set, uint32_t way, std::vector<LlcVictim>& out) {
  const uint32_t tidx = set * ways_ + way;
  TagEntry& t = tags_[tidx];
  assert(t.valid());
  const uint64_t block = block_addr_of_tag(set, t);
  // UCLs of this block live in 16 known BPA sets.
  for (uint32_t cl = 0; cl < kBlockLines; ++cl) {
    const uint64_t line = block + cl * kCachelineBytes;
    const uint64_t s = ucl_index(line);
    const uint64_t want = bpa_key(tidx, static_cast<uint8_t>(cl), false);
    BpaEntry* base = &bpa_[s * ways_];
    for (uint32_t w = 0; w < ways_; ++w) {
      BpaEntry& e = base[w];
      if (bpa_match(e) == want) {
        out.push_back({LlcVictim::kUcl, line, e.dirty});
        e.valid = false;
        t.ucl--;
      }
    }
  }
  if (t.cms > 0) {
    out.push_back({LlcVictim::kCmsBlock, block, t.block_dirty});
    remove_cms_entries(block, static_cast<uint32_t>(tag_index(block)), t.cms);
    t.cms = 0;
  }
  assert(t.ucl == 0);
  t.invalidate();
}

// ---- BPA / data array -----------------------------------------------------

AvrLlc::BpaEntry* AvrLlc::find_ucl(uint64_t line) {
  const uint64_t block = block_addr(line);
  const TagEntry* t = find_tag(block);
  if (!t || t->ucl == 0) return nullptr;
  const uint32_t tidx = static_cast<uint32_t>(t - tags_.data());
  const uint64_t s = ucl_index(line);
  // Hit requires: matching CL tag suffix AND the back pointer naming the
  // way of the matching tag (Sec. 3.4, "LLC Lookup").
  const uint64_t want =
      bpa_key(tidx, static_cast<uint8_t>(line_in_block(line)), false);
  BpaEntry* base = &bpa_[s * ways_];
  for (uint32_t w = 0; w < ways_; ++w)
    if (bpa_match(base[w]) == want) return &base[w];
  return nullptr;
}

const AvrLlc::BpaEntry* AvrLlc::find_ucl(uint64_t line) const {
  return const_cast<AvrLlc*>(this)->find_ucl(line);
}

uint32_t AvrLlc::make_room(uint64_t set, std::vector<LlcVictim>& out) {
  BpaEntry* base = &bpa_[set * ways_];
  for (uint32_t w = 0; w < ways_; ++w)
    if (!base[w].valid) return w;
  uint32_t victim = 0;
  for (uint32_t w = 1; w < ways_; ++w)
    if (base[w].lru < base[victim].lru) victim = w;
  release_entry(set, victim, out);
  return victim;
}

void AvrLlc::release_entry(uint64_t set, uint32_t way, std::vector<LlcVictim>& out) {
  BpaEntry& e = bpa_[set * ways_ + way];
  assert(e.valid);
  TagEntry& t = tags_[e.tag_idx];
  const uint32_t tset = e.tag_idx / ways_;
  const uint64_t block = block_addr_of_tag(tset, t);
  if (!e.is_cms) {
    out.push_back({LlcVictim::kUcl, block + uint64_t{e.cl_id} * kCachelineBytes, e.dirty});
    e.valid = false;
    assert(t.ucl > 0);
    t.ucl--;
    maybe_free_tag(e.tag_idx);
    return;
  }
  // A CMS victim drags the entire compressed image out (Sec. 3.5).
  out.push_back({LlcVictim::kCmsBlock, block, t.block_dirty});
  remove_cms_entries(block, static_cast<uint32_t>(tag_index(block)), t.cms);
  t.cms = 0;
  t.block_dirty = false;
  maybe_free_tag(e.tag_idx);
  ++counters_.cms_collateral_evictions;
}

void AvrLlc::remove_cms_entries(uint64_t block, uint32_t set0, uint32_t count) {
  const TagEntry* t = find_tag(block);
  assert(t);
  const uint32_t tidx = static_cast<uint32_t>(t - tags_.data());
  for (uint32_t i = 0; i < count; ++i) {
    const uint64_t s = (set0 + i) & (sets_ - 1);
    const uint64_t want = bpa_key(tidx, static_cast<uint8_t>(i), true);
    BpaEntry* base = &bpa_[s * ways_];
    for (uint32_t w = 0; w < ways_; ++w) {
      BpaEntry& e = base[w];
      if (bpa_match(e) == want) {
        e.valid = false;
        break;
      }
    }
  }
}

// ---- UCL public operations --------------------------------------------------

bool AvrLlc::ucl_access(uint64_t line, bool write) {
  ++counters_.ucl_accesses;
  BpaEntry* e = find_ucl(line);
  if (!e) return false;
  e->lru = ++lru_clock_;
  if (write) e->dirty = true;
  const uint32_t tidx = e->tag_idx;
  TagEntry& t = tags_[tidx];
  t.lru = ++lru_clock_;
  // Accessing any UCL of a block refreshes its CMS entries' LRU (Sec. 3.4).
  // find_ucl already resolved the tag, so refresh it directly instead of
  // re-running the tag lookup through cms_touch().
  if (t.cms > 0) cms_touch_entry(tidx, t);
  ++counters_.ucl_hits;
  return true;
}

bool AvrLlc::ucl_present(uint64_t line) const { return find_ucl(line) != nullptr; }

void AvrLlc::ucl_insert(uint64_t line, bool dirty, std::vector<LlcVictim>& out) {
  assert(!ucl_present(line));
  const uint64_t block = block_addr(line);
  const uint32_t tidx = ensure_tag(block, out);
  const uint64_t s = ucl_index(line);
  const uint32_t w = make_room(s, out);
  BpaEntry& e = bpa_[s * ways_ + w];
  e.valid = true;
  e.dirty = dirty;
  e.is_cms = false;
  e.cl_id = static_cast<uint8_t>(line_in_block(line));
  e.tag_idx = tidx;
  e.lru = ++lru_clock_;
  // make_room may have collaterally freed this tag: the block's own CMS
  // image can live in this UCL set, and its eviction leaves the tag with
  // cms == 0 && ucl == 0.
  TagEntry& t = revive_tag(tidx, block);
  t.ucl++;
  t.lru = lru_clock_;
  ++counters_.ucl_fills;
}

std::optional<bool> AvrLlc::ucl_invalidate(uint64_t line) {
  BpaEntry* e = find_ucl(line);
  if (!e) return std::nullopt;
  const bool dirty = e->dirty;
  TagEntry& t = tags_[e->tag_idx];
  e->valid = false;
  assert(t.ucl > 0);
  t.ucl--;
  maybe_free_tag(e->tag_idx);
  return dirty;
}

void AvrLlc::ucl_mark_clean(uint64_t line) {
  if (BpaEntry* e = find_ucl(line)) e->dirty = false;
}

// ---- CMS public operations ---------------------------------------------------

bool AvrLlc::cms_present(uint64_t block) const {
  const TagEntry* t = find_tag(block_addr(block));
  return t && t->cms > 0;
}

uint32_t AvrLlc::cms_count(uint64_t block) const {
  const TagEntry* t = find_tag(block_addr(block));
  return t ? t->cms : 0;
}

bool AvrLlc::cms_dirty(uint64_t block) const {
  const TagEntry* t = find_tag(block_addr(block));
  return t && t->block_dirty;
}

void AvrLlc::cms_mark_dirty(uint64_t block) {
  if (TagEntry* t = find_tag(block_addr(block))) t->block_dirty = true;
}

void AvrLlc::cms_touch(uint64_t block) {
  block = block_addr(block);
  TagEntry* t = find_tag(block);
  if (!t || t->cms == 0) return;
  cms_touch_entry(static_cast<uint32_t>(t - tags_.data()), *t);
}

void AvrLlc::cms_touch_entry(uint32_t tag_idx, TagEntry& t) {
  const uint32_t tset = tag_idx / ways_;
  t.lru = ++lru_clock_;
  for (uint32_t i = 0; i < t.cms; ++i) {
    const uint64_t s = (tset + i) & (sets_ - 1);
    const uint64_t want = bpa_key(tag_idx, static_cast<uint8_t>(i), true);
    BpaEntry* base = &bpa_[s * ways_];
    for (uint32_t w = 0; w < ways_; ++w) {
      BpaEntry& e = base[w];
      if (bpa_match(e) == want) {
        e.lru = lru_clock_;
        break;
      }
    }
  }
}

void AvrLlc::cms_insert(uint64_t block, uint32_t count, bool dirty,
                        std::vector<LlcVictim>& out) {
  block = block_addr(block);
  assert(count >= 1 && count <= kMaxCompressedLines);
  assert(!cms_present(block) && "remove the old image first");
  const uint32_t tidx = ensure_tag(block, out);
  const uint32_t tset = tidx / ways_;
  // Consecutive-set allocation starting at the tag index (Sec. 3.4).
  for (uint32_t i = 0; i < count; ++i) {
    const uint64_t s = (tset + i) & (sets_ - 1);
    const uint32_t w = make_room(s, out);
    BpaEntry& e = bpa_[s * ways_ + w];
    e.valid = true;
    e.dirty = dirty;
    e.is_cms = true;
    e.cl_id = static_cast<uint8_t>(i);
    e.tag_idx = tidx;
    e.lru = ++lru_clock_;
  }
  // make_room may have collaterally freed this very tag: evicting the block's
  // last UCL while cms is still 0 makes maybe_free_tag clear it.
  TagEntry& t = revive_tag(tidx, block);
  t.cms = static_cast<uint8_t>(count);
  t.block_dirty = dirty;
  t.lru = ++lru_clock_;
  counters_.cms_fills += count;
}

void AvrLlc::cms_remove(uint64_t block) {
  block = block_addr(block);
  TagEntry* t = find_tag(block);
  if (!t || t->cms == 0) return;
  remove_cms_entries(block, static_cast<uint32_t>(tag_index(block)), t->cms);
  t->cms = 0;
  t->block_dirty = false;
  maybe_free_tag(static_cast<uint32_t>(t - tags_.data()));
}

// ---- block-level queries -----------------------------------------------------

std::vector<uint64_t> AvrLlc::ucls_of_block(uint64_t block, bool dirty_only) const {
  block = block_addr(block);
  std::vector<uint64_t> out;
  const TagEntry* t = find_tag(block);
  if (!t || t->ucl == 0) return out;
  const uint32_t tidx = static_cast<uint32_t>(t - tags_.data());
  for (uint32_t cl = 0; cl < kBlockLines; ++cl) {
    const uint64_t line = block + cl * kCachelineBytes;
    const uint64_t s = ucl_index(line);
    const uint64_t want = bpa_key(tidx, static_cast<uint8_t>(cl), false);
    const BpaEntry* base = &bpa_[s * ways_];
    for (uint32_t w = 0; w < ways_; ++w) {
      const BpaEntry& e = base[w];
      if (bpa_match(e) == want && (!dirty_only || e.dirty)) out.push_back(line);
    }
  }
  return out;
}

StatGroup AvrLlc::stats() const {
  StatGroup g("avr_llc");
  g.add_nonzero("ucl_accesses", counters_.ucl_accesses);
  g.add_nonzero("ucl_hits", counters_.ucl_hits);
  g.add_nonzero("ucl_fills", counters_.ucl_fills);
  g.add_nonzero("cms_fills", counters_.cms_fills);
  g.add_nonzero("tag_evictions", counters_.tag_evictions);
  g.add_nonzero("cms_collateral_evictions", counters_.cms_collateral_evictions);
  return g;
}

std::vector<LlcVictim> AvrLlc::all_resident() const {
  std::vector<LlcVictim> out;
  for (uint32_t set = 0; set < sets_; ++set)
    for (uint32_t w = 0; w < ways_; ++w) {
      const TagEntry& t = tags_[uint64_t{set} * ways_ + w];
      if (!t.valid()) continue;
      const uint64_t block = block_addr_of_tag(set, t);
      if (t.cms > 0) out.push_back({LlcVictim::kCmsBlock, block, t.block_dirty});
    }
  for (uint64_t s = 0; s < sets_; ++s)
    for (uint32_t w = 0; w < ways_; ++w) {
      const BpaEntry& e = bpa_[s * ways_ + w];
      if (!e.valid || e.is_cms) continue;
      const TagEntry& t = tags_[e.tag_idx];
      const uint64_t block = block_addr_of_tag(e.tag_idx / ways_, t);
      out.push_back({LlcVictim::kUcl, block + uint64_t{e.cl_id} * kCachelineBytes, e.dirty});
    }
  return out;
}

}  // namespace avr
