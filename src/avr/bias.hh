// Exponent biasing (Sec. 3.3, "Biasing & unbiasing").
//
// Very large or small floating-point values lose precision (or saturate)
// when converted to Q16.16. Before compression AVR picks a per-block bias
// that is added to every value's exponent field to bring the block into a
// comfortably representable range; the bias is undone after reconstruction.
// Biasing is skipped (bias = 0) when the block contains non-finite values
// or when no bias keeps every value's exponent inside [1, 254].
#pragma once

#include <cstdint>
#include <span>

#include "common/fp_bits.hh"
#include "common/types.hh"

namespace avr {

/// Exponent the block's largest magnitude is mapped to: 2^(137-127) = 2^10,
/// well inside Q16.16's +/-32767 with headroom for interpolation.
inline constexpr int kBiasTargetExponent = 137;

/// Chooses the bias for a block of floats. Returns 0 when biasing must be
/// skipped per the paper's rules.
int8_t choose_bias(std::span<const float, kValuesPerBlock> vals);

/// Applies `bias` to the exponent field of every finite non-zero value,
/// in place. Zero/denormal values are left untouched.
void apply_bias(std::span<float, kValuesPerBlock> vals, int8_t bias);

/// Fused copy + bias: writes the biased image of `in` to `out` in one pass
/// (stage 1 of the compressor pipeline; `bias == 0` degenerates to a plain
/// copy). Equivalent to copying then apply_bias, without the extra sweep.
void bias_block(std::span<const float, kValuesPerBlock> in,
                std::span<float, kValuesPerBlock> out, int8_t bias);

/// Undoes the bias on a single value (the 8-bit exponent adder of the
/// decompressor). Zero stays zero. Header-inline: the decompressor and the
/// compressor's error scan run this once per reconstructed value.
inline float unbias_value(float v, int8_t bias) {
  if (bias == 0) return v;
  return f32_scale_exponent(v, -bias);
}

}  // namespace avr
