// Exponent biasing (Sec. 3.3, "Biasing & unbiasing").
//
// Very large or small floating-point values lose precision (or saturate)
// when converted to Q16.16. Before compression AVR picks a per-block bias
// that is added to every value's exponent field to bring the block into a
// comfortably representable range; the bias is undone after reconstruction.
// Biasing is skipped (bias = 0) when the block contains non-finite values
// or when no bias keeps every value's exponent inside [1, 254].
#pragma once

#include <cstdint>
#include <span>

#include "common/types.hh"

namespace avr {

/// Exponent the block's largest magnitude is mapped to: 2^(137-127) = 2^10,
/// well inside Q16.16's +/-32767 with headroom for interpolation.
inline constexpr int kBiasTargetExponent = 137;

/// Chooses the bias for a block of floats. Returns 0 when biasing must be
/// skipped per the paper's rules.
int8_t choose_bias(std::span<const float, kValuesPerBlock> vals);

/// Applies `bias` to the exponent field of every finite non-zero value,
/// in place. Zero/denormal values are left untouched.
void apply_bias(std::span<float, kValuesPerBlock> vals, int8_t bias);

/// Undoes the bias on a single value (the 8-bit exponent adder of the
/// decompressor). Zero stays zero.
float unbias_value(float v, int8_t bias);

}  // namespace avr
