// The compression-method layer: which tier each Method belongs to and the
// per-method size model.
//
// Methods come in two tiers:
//   - *Lossy summary* methods (the paper's 1D/2D downsampling) encode a
//     block as a 16-value summary plus an outlier bitmap and exactly-stored
//     outliers; reconstruction is approximate and their size is a function
//     of the outlier count.
//   - *Lossless exact* methods (the BDI-hybrid extension) are size models
//     over the block's raw bit image: reconstruction is the identity (the
//     backing data IS the decoded block), and their size is the summed
//     per-line encoded bytes.
//
// Everything downstream of the compressor — CMT line accounting, LLC
// free-space and eviction logic — consumes only the line count this size
// model produces, so a new method plugs in here (tier + size) plus either a
// kMethodVariants row (lossy) or a Compressor::compress fallback stage
// (lossless) without touching those layers.
#pragma once

#include "common/types.hh"

namespace avr {

inline constexpr uint32_t kSummaryValues = 16;  // 16:1 target over 256 values
/// One bit per block value = 32 B = half a line (bitmap.hh's Bitmap256;
/// compressed_block.hh asserts the two stay in sync).
inline constexpr uint32_t kBitmapBytes = kValuesPerBlock / 8;

/// Largest outlier count that still fits the 8-line budget:
/// 7 lines * 64 B = 448 B minus the 32 B bitmap = 104 outliers.
inline constexpr uint32_t kMaxBlockOutliers =
    (7 * kCachelineBytes - kBitmapBytes) / 4;

/// The two encoding families a Method can belong to (plus "none").
enum class MethodTier : uint8_t {
  kNone = 0,           // kUncompressed
  kLossySummary = 1,   // summary + outliers, approximate reconstruction
  kLosslessExact = 2,  // per-line size model, exact reconstruction
};

constexpr MethodTier method_tier(Method m) {
  switch (m) {
    case Method::kUncompressed: return MethodTier::kNone;
    case Method::kDownsample1D:
    case Method::kDownsample2D: return MethodTier::kLossySummary;
    case Method::kBdiHybrid: return MethodTier::kLosslessExact;
  }
  return MethodTier::kNone;
}

/// True when reconstructing `m` reproduces the stored bits exactly — the
/// error path short-circuits (no outliers, zero block error) and the
/// functional datapath must NOT overwrite the backing store with a
/// reconstruction (there is nothing to approximate).
constexpr bool method_is_exact(Method m) {
  return method_tier(m) == MethodTier::kLosslessExact;
}

/// Per-method size model: 64 B cachelines the compressed image occupies
/// (Sec. 3.1 for the lossy tier). Lossy: summary alone is 1 line; with
/// outliers add the half-line bitmap plus 4 B per outlier, rounded up to
/// whole lines. Lossless exact: the summed per-line encoded bytes, rounded
/// up to whole lines (never 0 — a block occupies at least one line).
constexpr uint32_t method_lines(Method m, uint32_t outlier_count,
                                uint32_t encoded_bytes) {
  if (method_tier(m) == MethodTier::kLosslessExact) {
    const uint32_t lines = static_cast<uint32_t>(
        (encoded_bytes + kCachelineBytes - 1) / kCachelineBytes);
    return lines > 0 ? lines : 1;
  }
  if (outlier_count == 0) return 1;
  const uint64_t payload = kBitmapBytes + 4 * static_cast<uint64_t>(outlier_count);
  return 1 + static_cast<uint32_t>((payload + kCachelineBytes - 1) / kCachelineBytes);
}

}  // namespace avr
