#include "avr/bias.hh"

#include <algorithm>

#include "common/fp_bits.hh"

namespace avr {

int8_t choose_bias(std::span<const float, kValuesPerBlock> vals) {
  int e_max = -1;
  int e_min = 256;
  for (float v : vals) {
    const uint32_t e = f32_exponent(v);
    if (e == kExponentMask) return 0;  // NaN/Inf present: skip biasing
    if (e == 0) continue;              // zero/denormal: unaffected by bias
    e_max = std::max(e_max, static_cast<int>(e));
    e_min = std::min(e_min, static_cast<int>(e));
  }
  if (e_max < 0) return 0;  // all zero/denormal

  int bias = kBiasTargetExponent - e_max;
  // Clamp so no value's exponent over- or underflows (paper rule b); if the
  // block's dynamic range makes that impossible the small values flush to
  // zero in fixed point and surface as outliers instead.
  bias = std::min(bias, 254 - e_max);
  bias = std::max(bias, 1 - e_min);
  if (e_max + bias > 254 || e_min + bias < 1) return 0;
  return static_cast<int8_t>(std::clamp(bias, -128, 127));
}

void apply_bias(std::span<float, kValuesPerBlock> vals, int8_t bias) {
  if (bias == 0) return;
  for (float& v : vals) v = f32_scale_exponent(v, bias);
}

float unbias_value(float v, int8_t bias) {
  if (bias == 0) return v;
  return f32_scale_exponent(v, -bias);
}

}  // namespace avr
