#include "avr/bias.hh"

#include <algorithm>

#include "common/fp_bits.hh"
#include "common/simd.hh"

namespace avr {

int8_t choose_bias(std::span<const float, kValuesPerBlock> vals) {
  // Branch-free exponent min/max pass, dispatched to the SIMD kernel layer:
  // zero/denormal values contribute the identity of each reduction, and a
  // NaN/Inf value (e = 255) surfaces as e_max == 255 afterwards — same
  // outcome as bailing mid-loop.
  int e_max = 0;
  int e_min = 256;
  simd::kernels().exponent_minmax(vals.data(), vals.size(), &e_max, &e_min);
  if (e_max == static_cast<int>(kExponentMask)) return 0;  // NaN/Inf present
  if (e_max == 0) return 0;                                // all zero/denormal

  int bias = kBiasTargetExponent - e_max;
  // Clamp so no value's exponent over- or underflows (paper rule b); if the
  // block's dynamic range makes that impossible the small values flush to
  // zero in fixed point and surface as outliers instead.
  bias = std::min(bias, 254 - e_max);
  bias = std::max(bias, 1 - e_min);
  if (e_max + bias > 254 || e_min + bias < 1) return 0;
  return static_cast<int8_t>(std::clamp(bias, -128, 127));
}

void apply_bias(std::span<float, kValuesPerBlock> vals, int8_t bias) {
  if (bias == 0) return;
  simd::kernels().bias_block(vals.data(), vals.data(), vals.size(), bias);
}

void bias_block(std::span<const float, kValuesPerBlock> in,
                std::span<float, kValuesPerBlock> out, int8_t bias) {
  if (bias == 0) {
    std::copy(in.begin(), in.end(), out.begin());
    return;
  }
  simd::kernels().bias_block(in.data(), out.data(), kValuesPerBlock, bias);
}

}  // namespace avr
