#include "avr/compressor.hh"

#include <cmath>

#include "avr/bias.hh"
#include "avr/downsample.hh"
#include "avr/method.hh"
#include "common/fp_bits.hh"
#include "common/profile.hh"
#include "common/simd.hh"
#include "lossless/bdi.hh"

namespace avr {

std::span<const MethodVariant> method_variants() {
  // Selection-preference order: 2D first, so on ties it wins, matching the
  // hardware's preference for the variant that captures spatial locality.
  static constexpr MethodVariant kMethodVariants[] = {
      {Method::kDownsample2D, &AvrConfig::enable_2d, downsample::compress_2d,
       downsample::reconstruct_2d},
      {Method::kDownsample1D, &AvrConfig::enable_1d, downsample::compress_1d,
       downsample::reconstruct_1d},
  };
  return kMethodVariants;
}

const MethodVariant& variant_for(Method m) {
  const std::span<const MethodVariant> variants = method_variants();
  for (const MethodVariant& v : variants)
    if (v.method == m) return v;
  return variants.back();  // 1D row: the legacy default interpolation
}

bool Compressor::value_is_outlier(float original, float approx) const {
  const uint32_t n = cfg_.t1_mantissa_msbit;
  if (f32_bits(original) == f32_bits(approx)) return false;
  if (!f32_is_finite(original)) return true;  // NaN/Inf always stored exactly
  if (f32_sign(original) != f32_sign(approx)) return true;
  if (f32_exponent(original) != f32_exponent(approx)) return true;
  const int32_t dm = static_cast<int32_t>(f32_mantissa(original)) -
                     static_cast<int32_t>(f32_mantissa(approx));
  const uint32_t limit = 1u << (kMantissaBits - n);
  return static_cast<uint32_t>(dm < 0 ? -dm : dm) >= limit;
}

bool Compressor::try_method(const MethodVariant& variant,
                            std::span<const float, kValuesPerBlock> original,
                            int8_t bias, DType dtype,
                            CompressorScratch& scratch) const {
  CompressionAttempt& att = scratch.candidate;
  att.block.method = variant.method;
  att.block.bias = bias;
  att.block.dtype = dtype;
  att.block.outlier_map.reset();
  att.block.outliers.clear();

  // Stage 3: summarize (the shared fixed-point image feeds every variant).
  const std::array<Fixed32, kSummaryValues> avg = variant.summarize(scratch.fixed);
  for (uint32_t k = 0; k < kSummaryValues; ++k) att.block.summary[k] = avg[k].raw();

  // Stage 4: the common reconstruct kernel, into scratch.
  variant.reconstruct(avg, scratch.recon);

  // Stage 5: error check + incremental outlier scan (Sec. 3.3). The scan
  // aborts the variant the moment the outlier budget would be exceeded.
  CompressedBlock& blk = att.block;
  uint32_t non_outliers = 0;
  if (dtype == DType::kFixed32) {
    // Fixed point: relative error via subtraction and compare (footnote 1),
    // accumulated in the same double order as the error reports.
    double err_sum = 0.0;
    for (uint32_t i = 0; i < kValuesPerBlock; ++i) {
      const double o = scratch.fixed[i].to_double();
      const double a = Fixed32::from_raw(scratch.recon[i].raw()).to_double();
      const double rel = relative_error(a, o);
      if (rel >= t1()) {
        if (blk.outliers.full()) return false;  // cannot fit in 8 lines
        blk.outlier_map.set(i);
        blk.outliers.push_back(std::bit_cast<uint32_t>(original[i]));
      } else {
        err_sum += rel;
        ++non_outliers;
      }
    }
    att.avg_error = non_outliers ? err_sum / non_outliers : 0.0;
  } else {
    // Float: the outlier rule and the block-average error are both defined
    // on the mantissa field, so the whole scan runs in the integer domain —
    // one int64 accumulator of absolute mantissa differences replaces the
    // per-value double divisions (every |dm|/2^23 term is an exact multiple
    // of 2^-23 and the sum stays below 2^31 of them, so deferring the
    // division reproduces the old double accumulation bit for bit). The
    // scan itself is a dispatched SIMD kernel writing the bitmap words and
    // the outlier images directly; a false return is the budget abort.
    const uint32_t limit = 1u << (kMantissaBits - cfg_.t1_mantissa_msbit);
    simd::ErrorScanState st;
    st.bitmap_words = blk.outlier_map.words().data();
    st.outlier_bits = scratch.outlier_bits.data();
    st.max_outliers = kMaxBlockOutliers;
    static_assert(sizeof(Fixed32) == sizeof(int32_t));
    if (!simd::kernels().error_scan_f32(
            original.data(), reinterpret_cast<const int32_t*>(scratch.recon.data()),
            kValuesPerBlock, bias, limit, &st))
      return false;  // cannot fit in 8 lines
    for (uint32_t k = 0; k < st.n_outliers; ++k)
      blk.outliers.push_back(scratch.outlier_bits[k]);
    non_outliers = st.non_outliers;
    att.avg_error =
        non_outliers
            ? (static_cast<double>(st.dm_sum) /
               static_cast<double>(1u << kMantissaBits)) / non_outliers
            : 0.0;
  }

  if (att.avg_error > t2()) return false;
  if (blk.lines() > kMaxCompressedLines) return false;
  return true;
}

std::optional<CompressionAttempt> Compressor::compress(
    std::span<const float, kValuesPerBlock> vals, DType dtype,
    CompressorScratch& scratch) const {
  // Per block event, never per access: cheap enough to stay always-on.
  AVR_PROF_SCOPE(prof::Phase::kCompress);
  // Stages 1+2, shared by every variant: bias into the comfortable Q16.16
  // range, then batch-convert to fixed point.
  int8_t bias = 0;
  if (dtype == DType::kFloat32) {
    bias = choose_bias(vals);
    bias_block(vals, scratch.biased, bias);
    fixed32_from_f32_batch(scratch.biased, scratch.fixed);
  } else {
    fixed32_from_raw_bits_batch(vals, scratch.fixed);
  }

  bool have_best = false;
  for (const MethodVariant& v : method_variants()) {
    if (!(cfg_.*v.enabled)) continue;
    if (!try_method(v, vals, bias, dtype, scratch)) continue;
    const CompressionAttempt& att = scratch.candidate;
    if (!have_best || att.block.lines() < scratch.best.block.lines() ||
        (att.block.lines() == scratch.best.block.lines() &&
         att.block.outliers.size() < scratch.best.block.outliers.size())) {
      scratch.best = att;
      have_best = true;
    }
    // A 1-line, zero-outlier encoding is unbeatable: replacement requires
    // strictly fewer lines or outliers, so later variants cannot win —
    // skipping them picks the identical result.
    if (scratch.best.block.lines() == 1 && scratch.best.block.outliers.empty())
      break;
  }

  // Lossless-fallback tier: every enabled lossy variant blew the T1/T2
  // outlier budget, so before leaving the block uncompressed, size its raw
  // bit image under BDI. The encoding is exact — no summary, no outliers,
  // identically zero error — so none of the stage 3-5 machinery runs; the
  // only question is whether the encoded bytes fit the 8-line budget.
  if (!have_best && cfg_.enable_bdi_hybrid) {
    AVR_PROF_SCOPE(prof::Phase::kBdi);
    const uint64_t bytes = lossless::encoded_bytes(std::as_bytes(vals));
    CompressionAttempt& att = scratch.candidate;
    att.block = CompressedBlock{};
    att.block.method = Method::kBdiHybrid;
    att.block.dtype = dtype;
    att.block.encoded_bytes = static_cast<uint32_t>(bytes);
    att.avg_error = 0.0;
    if (att.block.lines() <= kMaxCompressedLines) {
      scratch.best = att;
      have_best = true;
    }
  }

  if (!have_best) return std::nullopt;
  return scratch.best;
}

void Compressor::reconstruct(const CompressedBlock& cb,
                             std::span<float, kValuesPerBlock> out) const {
  AVR_PROF_SCOPE(prof::Phase::kCompress);
  // Lossless-exact tier: the encoding stores no image (it is a size model
  // over the raw bits), and reconstruction is the identity — the caller
  // already holds the exact values, so there is nothing to overlay.
  if (method_is_exact(cb.method)) return;
  std::array<Fixed32, kSummaryValues> avg;
  for (uint32_t k = 0; k < kSummaryValues; ++k) avg[k] = Fixed32::from_raw(cb.summary[k]);

  std::array<Fixed32, kValuesPerBlock> recon;
  variant_for(cb.method).reconstruct(avg, recon);

  // Back to the float domain (decompressor right half of Fig. 4): kFixed32
  // regions store Q16.16 bit patterns verbatim; float regions unbias
  // through the dispatched batch kernel.
  if (cb.dtype == DType::kFixed32) {
    static_assert(sizeof(Fixed32) == sizeof(float));
    __builtin_memcpy(out.data(), recon.data(), sizeof(recon));
  } else {
    simd::kernels().fixed32_to_f32_unbias(
        reinterpret_cast<const int32_t*>(recon.data()), out.data(),
        kValuesPerBlock, cb.bias);
  }

  // Overlay the exactly-stored outliers per the bitmap (DBUF fill, Fig. 4).
  uint32_t oi = 0;
  for (uint32_t i = 0; i < kValuesPerBlock; ++i) {
    if (!cb.outlier_map.test(i)) continue;
    const uint32_t bits = cb.outliers[oi++];
    out[i] = cb.dtype == DType::kFixed32 ? std::bit_cast<float>(bits) : bits_f32(bits);
  }
}

}  // namespace avr
