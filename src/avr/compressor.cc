#include "avr/compressor.hh"

#include <array>
#include <cmath>

#include "avr/bias.hh"
#include "avr/downsample.hh"
#include "common/fp_bits.hh"

namespace avr {
namespace {

/// Reconstructed float for position i given the fixed-domain interpolation
/// result, undoing the bias (decompressor right half of Fig. 4).
float to_float_domain(Fixed32 fx, int8_t bias, DType dtype) {
  if (dtype == DType::kFixed32) return std::bit_cast<float>(fx.raw());
  return unbias_value(fx.to_float(), bias);
}

uint32_t raw_bits_of(float original, DType dtype) {
  if (dtype == DType::kFixed32) return std::bit_cast<uint32_t>(original);
  return f32_bits(original);
}

}  // namespace

bool Compressor::value_is_outlier(float original, float approx) const {
  const uint32_t n = cfg_.t1_mantissa_msbit;
  if (f32_bits(original) == f32_bits(approx)) return false;
  if (!f32_is_finite(original)) return true;  // NaN/Inf always stored exactly
  if (f32_sign(original) != f32_sign(approx)) return true;
  if (f32_exponent(original) != f32_exponent(approx)) return true;
  const int32_t dm = static_cast<int32_t>(f32_mantissa(original)) -
                     static_cast<int32_t>(f32_mantissa(approx));
  const uint32_t limit = 1u << (kMantissaBits - n);
  return static_cast<uint32_t>(dm < 0 ? -dm : dm) >= limit;
}

std::optional<CompressionAttempt> Compressor::try_method(
    Method m, std::span<const float, kValuesPerBlock> original,
    std::span<const Fixed32, kValuesPerBlock> fixed, int8_t bias,
    DType dtype) const {
  CompressionAttempt att;
  att.block.method = m;
  att.block.bias = bias;
  att.block.dtype = dtype;

  std::array<Fixed32, kSummaryValues> avg =
      m == Method::kDownsample2D
          ? downsample::compress_2d(fixed)
          : downsample::compress_1d(fixed);
  for (uint32_t k = 0; k < kSummaryValues; ++k) att.block.summary[k] = avg[k].raw();

  std::array<Fixed32, kValuesPerBlock> recon;
  if (m == Method::kDownsample2D)
    downsample::reconstruct_2d(avg, recon);
  else
    downsample::reconstruct_1d(avg, recon);

  // Error check + outlier selection (Sec. 3.3). The mantissa subtraction of
  // non-outliers accumulates into the block-average error.
  double err_sum = 0.0;
  uint32_t non_outliers = 0;
  for (uint32_t i = 0; i < kValuesPerBlock; ++i) {
    const float approx = to_float_domain(recon[i], bias, dtype);
    bool outlier;
    if (dtype == DType::kFixed32) {
      // Fixed point: relative error via subtraction and compare (footnote 1).
      const double o = fixed[i].to_double();
      const double a = Fixed32::from_raw(recon[i].raw()).to_double();
      outlier = relative_error(a, o) >= t1();
    } else {
      outlier = value_is_outlier(original[i], approx);
    }
    if (outlier) {
      att.block.outlier_map.set(i);
      att.block.outliers.push_back(raw_bits_of(original[i], dtype));
      if (att.block.outliers.size() > CompressedBlock::kMaxOutliers)
        return std::nullopt;  // cannot fit in 8 lines
    } else {
      if (dtype == DType::kFixed32) {
        err_sum += relative_error(Fixed32::from_raw(recon[i].raw()).to_double(),
                                  fixed[i].to_double());
      } else {
        const int32_t dm = static_cast<int32_t>(f32_mantissa(original[i])) -
                           static_cast<int32_t>(f32_mantissa(approx));
        err_sum += static_cast<double>(dm < 0 ? -dm : dm) /
                   static_cast<double>(1u << kMantissaBits);
      }
      ++non_outliers;
    }
  }

  att.avg_error = non_outliers ? err_sum / non_outliers : 0.0;
  if (att.avg_error > t2()) return std::nullopt;
  if (att.block.lines() > kMaxCompressedLines) return std::nullopt;
  return att;
}

std::optional<CompressionAttempt> Compressor::compress(
    std::span<const float, kValuesPerBlock> vals, DType dtype) const {
  int8_t bias = 0;
  std::array<float, kValuesPerBlock> biased;
  std::array<Fixed32, kValuesPerBlock> fixed;

  if (dtype == DType::kFloat32) {
    bias = choose_bias(vals);
    for (uint32_t i = 0; i < kValuesPerBlock; ++i) biased[i] = vals[i];
    apply_bias(biased, bias);
    for (uint32_t i = 0; i < kValuesPerBlock; ++i)
      fixed[i] = f32_is_finite(biased[i]) ? Fixed32::from_float(biased[i])
                                          : Fixed32::from_raw(0);
  } else {
    for (uint32_t i = 0; i < kValuesPerBlock; ++i)
      fixed[i] = Fixed32::from_raw(std::bit_cast<int32_t>(vals[i]));
  }

  std::optional<CompressionAttempt> best;
  auto consider = [&](Method m) {
    auto att = try_method(m, vals, fixed, bias, dtype);
    if (!att) return;
    if (!best || att->block.lines() < best->block.lines() ||
        (att->block.lines() == best->block.lines() &&
         att->block.outliers.size() < best->block.outliers.size()))
      best = std::move(att);
  };
  // 2D first: on ties it wins, matching the hardware's preference for the
  // variant that captures spatial locality.
  if (cfg_.enable_2d) consider(Method::kDownsample2D);
  if (cfg_.enable_1d) consider(Method::kDownsample1D);
  return best;
}

void Compressor::reconstruct(const CompressedBlock& cb,
                             std::span<float, kValuesPerBlock> out) const {
  std::array<Fixed32, kSummaryValues> avg;
  for (uint32_t k = 0; k < kSummaryValues; ++k) avg[k] = Fixed32::from_raw(cb.summary[k]);

  std::array<Fixed32, kValuesPerBlock> recon;
  if (cb.method == Method::kDownsample2D)
    downsample::reconstruct_2d(avg, recon);
  else
    downsample::reconstruct_1d(avg, recon);

  for (uint32_t i = 0; i < kValuesPerBlock; ++i)
    out[i] = to_float_domain(recon[i], cb.bias, cb.dtype);

  // Overlay the exactly-stored outliers per the bitmap (DBUF fill, Fig. 4).
  uint32_t oi = 0;
  for (uint32_t i = 0; i < kValuesPerBlock; ++i) {
    if (!cb.outlier_map.test(i)) continue;
    const uint32_t bits = cb.outliers[oi++];
    out[i] = cb.dtype == DType::kFixed32 ? std::bit_cast<float>(bits) : bits_f32(bits);
  }
}

}  // namespace avr
