#include "avr/downsample.hh"

namespace avr::downsample {
namespace {

/// Index and weight of the left neighbour for a sample at integer position
/// `pos` among `n` averages whose centers sit at stride*k + (stride-1)/2.
/// Weights are expressed in 2*stride-ths so everything stays integral:
///   w2s = 2*(pos - stride*k) - (stride - 1), in [0, 2*stride).
struct Lerp {
  uint32_t left;
  int w_num;  // weight of the *right* neighbour, denominator 2*stride
};

constexpr Lerp locate(uint32_t pos, uint32_t stride, uint32_t n) {
  const int two_pos = 2 * static_cast<int>(pos);
  const int offset = static_cast<int>(stride) - 1;  // 2*center_0 = offset
  if (two_pos <= offset) return {0, 0};             // before first center
  const uint32_t k = static_cast<uint32_t>((two_pos - offset) / (2 * static_cast<int>(stride)));
  if (k >= n - 1) return {n - 1, 0};                // after last center
  const int w = (two_pos - offset) - 2 * static_cast<int>(stride) * static_cast<int>(k);
  return {k, w};
}

}  // namespace

std::array<Fixed32, 16> compress_1d(std::span<const Fixed32, kValuesPerBlock> in) {
  std::array<Fixed32, 16> out;
  for (uint32_t k = 0; k < 16; ++k)
    out[k] = Fixed32::average(in.begin() + k * kSubBlock1D,
                              in.begin() + (k + 1) * kSubBlock1D);
  return out;
}

std::array<Fixed32, 16> compress_2d(std::span<const Fixed32, kValuesPerBlock> in) {
  std::array<Fixed32, 16> out;
  for (uint32_t tr = 0; tr < kGrid2D / kTile2D; ++tr)
    for (uint32_t tc = 0; tc < kGrid2D / kTile2D; ++tc) {
      int64_t acc = 0;
      for (uint32_t r = 0; r < kTile2D; ++r)
        for (uint32_t c = 0; c < kTile2D; ++c)
          acc += in[(tr * kTile2D + r) * kGrid2D + tc * kTile2D + c].raw();
      // Round-to-nearest over the 16 tile values.
      const int64_t q = acc >= 0 ? (acc + 8) / 16 : -((-acc + 8) / 16);
      out[tr * 4 + tc] = Fixed32::from_raw(static_cast<int32_t>(q));
    }
  return out;
}

void reconstruct_1d(const std::array<Fixed32, 16>& avg,
                    std::span<Fixed32, kValuesPerBlock> out) {
  constexpr int kDen = 2 * kSubBlock1D;  // 32
  for (uint32_t i = 0; i < kValuesPerBlock; ++i) {
    const Lerp l = locate(i, kSubBlock1D, 16);
    const uint32_t r = l.left + 1 < 16 ? l.left + 1 : l.left;
    out[i] = Fixed32::lerp(avg[l.left], avg[r], l.w_num, kDen);
  }
}

void reconstruct_2d(const std::array<Fixed32, 16>& avg,
                    std::span<Fixed32, kValuesPerBlock> out) {
  constexpr int kDen = 2 * kTile2D;  // 8
  for (uint32_t r = 0; r < kGrid2D; ++r) {
    const Lerp lr = locate(r, kTile2D, 4);
    const uint32_t r1 = lr.left + 1 < 4 ? lr.left + 1 : lr.left;
    for (uint32_t c = 0; c < kGrid2D; ++c) {
      const Lerp lc = locate(c, kTile2D, 4);
      const uint32_t c1 = lc.left + 1 < 4 ? lc.left + 1 : lc.left;
      const Fixed32 top =
          Fixed32::lerp(avg[lr.left * 4 + lc.left], avg[lr.left * 4 + c1], lc.w_num, kDen);
      const Fixed32 bot =
          Fixed32::lerp(avg[r1 * 4 + lc.left], avg[r1 * 4 + c1], lc.w_num, kDen);
      out[r * kGrid2D + c] = Fixed32::lerp(top, bot, lr.w_num, kDen);
    }
  }
}

}  // namespace avr::downsample
