#include "avr/downsample.hh"

#include "common/simd.hh"

namespace avr::downsample {
namespace {

/// Index and weight of the left neighbour for a sample at integer position
/// `pos` among `n` averages whose centers sit at stride*k + (stride-1)/2.
/// Weights are expressed in 2*stride-ths so everything stays integral:
///   w2s = 2*(pos - stride*k) - (stride - 1), in [0, 2*stride).
struct Lerp {
  uint32_t left;
  int w_num;  // weight of the *right* neighbour, denominator 2*stride
};

constexpr Lerp locate(uint32_t pos, uint32_t stride, uint32_t n) {
  const int two_pos = 2 * static_cast<int>(pos);
  const int offset = static_cast<int>(stride) - 1;  // 2*center_0 = offset
  if (two_pos <= offset) return {0, 0};             // before first center
  const uint32_t k = static_cast<uint32_t>((two_pos - offset) / (2 * static_cast<int>(stride)));
  if (k >= n - 1) return {n - 1, 0};                // after last center
  const int w = (two_pos - offset) - 2 * static_cast<int>(stride) * static_cast<int>(k);
  return {k, w};
}

/// The precomputed interpolation network in structure-of-arrays form: per
/// position, the two neighbour averages and the right neighbour's weight as
/// flat index/weight arrays the SIMD lerp kernels consume directly.
/// locate() runs once per entry at compile time; the reconstruct kernels
/// stay pure table-driven lerps.
template <size_t N>
struct LerpTable {
  std::array<uint8_t, N> left{};
  std::array<uint8_t, N> right{};
  std::array<int8_t, N> w{};  // in [0, 2*stride)
};

template <size_t N>
constexpr LerpTable<N> make_table(uint32_t stride, uint32_t n) {
  LerpTable<N> t;
  for (uint32_t i = 0; i < N; ++i) {
    const Lerp l = locate(i, stride, n);
    t.left[i] = static_cast<uint8_t>(l.left);
    t.right[i] = static_cast<uint8_t>(l.left + 1 < n ? l.left + 1 : l.left);
    t.w[i] = static_cast<int8_t>(l.w_num);
  }
  return t;
}

/// 1D placement: per linear position, neighbours among the 16 averages.
constexpr auto k1DTable = make_table<kValuesPerBlock>(kSubBlock1D, 16);
/// 2D placement: per row/column coordinate, neighbours among the 4 tile
/// centers along that axis (rows and columns share one table).
constexpr auto k2DTable = make_table<kGrid2D>(kTile2D, 4);

// Weight denominators as shift counts: 2*kSubBlock1D = 32, 2*kTile2D = 8.
constexpr int kLog2Den1D = 5;
constexpr int kLog2Den2D = 3;
static_assert((1u << kLog2Den1D) == 2 * kSubBlock1D);
static_assert((1u << kLog2Den2D) == 2 * kTile2D);

// A Fixed32 array IS a raw int32 array (the SoA layout the kernels take).
static_assert(sizeof(Fixed32) == sizeof(int32_t) &&
              alignof(Fixed32) == alignof(int32_t));

inline const int32_t* raw(const Fixed32* p) {
  return reinterpret_cast<const int32_t*>(p);
}
inline int32_t* raw(Fixed32* p) { return reinterpret_cast<int32_t*>(p); }

}  // namespace

std::array<Fixed32, 16> compress_1d(std::span<const Fixed32, kValuesPerBlock> in) {
  std::array<Fixed32, 16> out;
  simd::kernels().summarize_1d(raw(in.data()), raw(out.data()));
  return out;
}

std::array<Fixed32, 16> compress_2d(std::span<const Fixed32, kValuesPerBlock> in) {
  std::array<Fixed32, 16> out;
  simd::kernels().summarize_2d(raw(in.data()), raw(out.data()));
  return out;
}

void reconstruct_1d(const std::array<Fixed32, 16>& avg,
                    std::span<Fixed32, kValuesPerBlock> out) {
  simd::kernels().lerp_gather(raw(avg.data()), k1DTable.left.data(),
                              k1DTable.right.data(), k1DTable.w.data(),
                              kLog2Den1D, raw(out.data()), kValuesPerBlock);
}

void reconstruct_2d(const std::array<Fixed32, 16>& avg,
                    std::span<Fixed32, kValuesPerBlock> out) {
  // One dispatched call for the whole bi-linear pass: the kernel hoists the
  // 4x16 column interpolation and reuses it for every output row (320 lerps
  // instead of the naive 768), bit-identical to the scalar reference.
  simd::kernels().reconstruct_2d(raw(avg.data()), k2DTable.left.data(),
                                 k2DTable.right.data(), k2DTable.w.data(),
                                 raw(out.data()));
}

}  // namespace avr::downsample
