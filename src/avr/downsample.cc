#include "avr/downsample.hh"

namespace avr::downsample {
namespace {

/// Index and weight of the left neighbour for a sample at integer position
/// `pos` among `n` averages whose centers sit at stride*k + (stride-1)/2.
/// Weights are expressed in 2*stride-ths so everything stays integral:
///   w2s = 2*(pos - stride*k) - (stride - 1), in [0, 2*stride).
struct Lerp {
  uint32_t left;
  int w_num;  // weight of the *right* neighbour, denominator 2*stride
};

constexpr Lerp locate(uint32_t pos, uint32_t stride, uint32_t n) {
  const int two_pos = 2 * static_cast<int>(pos);
  const int offset = static_cast<int>(stride) - 1;  // 2*center_0 = offset
  if (two_pos <= offset) return {0, 0};             // before first center
  const uint32_t k = static_cast<uint32_t>((two_pos - offset) / (2 * static_cast<int>(stride)));
  if (k >= n - 1) return {n - 1, 0};                // after last center
  const int w = (two_pos - offset) - 2 * static_cast<int>(stride) * static_cast<int>(k);
  return {k, w};
}

/// One precomputed interpolation step: the two neighbour averages and the
/// right neighbour's weight. locate() runs once per table entry at compile
/// time; the reconstruct kernels are pure table-driven lerps.
struct LerpEntry {
  uint8_t left;
  uint8_t right;
  int8_t w;  // in [0, 2*stride)
};

constexpr LerpEntry entry_for(uint32_t pos, uint32_t stride, uint32_t n) {
  const Lerp l = locate(pos, stride, n);
  const uint32_t r = l.left + 1 < n ? l.left + 1 : l.left;
  return {static_cast<uint8_t>(l.left), static_cast<uint8_t>(r),
          static_cast<int8_t>(l.w_num)};
}

/// 1D placement: per linear position, neighbours among the 16 averages.
constexpr auto k1DTable = [] {
  std::array<LerpEntry, kValuesPerBlock> t{};
  for (uint32_t i = 0; i < kValuesPerBlock; ++i)
    t[i] = entry_for(i, kSubBlock1D, 16);
  return t;
}();

/// 2D placement: per row/column coordinate, neighbours among the 4 tile
/// centers along that axis (rows and columns share one table).
constexpr auto k2DTable = [] {
  std::array<LerpEntry, kGrid2D> t{};
  for (uint32_t i = 0; i < kGrid2D; ++i) t[i] = entry_for(i, kTile2D, 4);
  return t;
}();

}  // namespace

std::array<Fixed32, 16> compress_1d(std::span<const Fixed32, kValuesPerBlock> in) {
  // Flat accumulation (same round-half-away shift as Fixed32::average with
  // n = 16, spelled as a direct loop the compiler unrolls/vectorizes).
  std::array<Fixed32, 16> out;
  for (uint32_t k = 0; k < 16; ++k) {
    int64_t acc = 0;
    for (uint32_t i = 0; i < kSubBlock1D; ++i)
      acc += in[k * kSubBlock1D + i].raw();
    const int64_t q = acc >= 0 ? (acc + 8) / 16 : -((-acc + 8) / 16);
    out[k] = Fixed32::from_raw(static_cast<int32_t>(q));
  }
  return out;
}

std::array<Fixed32, 16> compress_2d(std::span<const Fixed32, kValuesPerBlock> in) {
  std::array<Fixed32, 16> out;
  for (uint32_t tr = 0; tr < kGrid2D / kTile2D; ++tr)
    for (uint32_t tc = 0; tc < kGrid2D / kTile2D; ++tc) {
      int64_t acc = 0;
      for (uint32_t r = 0; r < kTile2D; ++r)
        for (uint32_t c = 0; c < kTile2D; ++c)
          acc += in[(tr * kTile2D + r) * kGrid2D + tc * kTile2D + c].raw();
      // Round-to-nearest over the 16 tile values.
      const int64_t q = acc >= 0 ? (acc + 8) / 16 : -((-acc + 8) / 16);
      out[tr * 4 + tc] = Fixed32::from_raw(static_cast<int32_t>(q));
    }
  return out;
}

void reconstruct_1d(const std::array<Fixed32, 16>& avg,
                    std::span<Fixed32, kValuesPerBlock> out) {
  constexpr int kDen = 2 * kSubBlock1D;  // 32
  for (uint32_t i = 0; i < kValuesPerBlock; ++i) {
    const LerpEntry& t = k1DTable[i];
    out[i] = Fixed32::lerp(avg[t.left], avg[t.right], t.w, kDen);
  }
}

void reconstruct_2d(const std::array<Fixed32, 16>& avg,
                    std::span<Fixed32, kValuesPerBlock> out) {
  constexpr int kDen = 2 * kTile2D;  // 8
  // The horizontal (column) interpolation of each of the 4 average rows is
  // shared by every output row that blends it: hoist the 4x16 column pass,
  // then the main loop is one vertical lerp per value — 320 lerps instead
  // of the naive 768, computing bit-identical results.
  Fixed32 col[4][kGrid2D];
  for (uint32_t ar = 0; ar < 4; ++ar) {
    const Fixed32* row = &avg[ar * 4u];
    for (uint32_t c = 0; c < kGrid2D; ++c) {
      const LerpEntry& tc = k2DTable[c];
      col[ar][c] = Fixed32::lerp(row[tc.left], row[tc.right], tc.w, kDen);
    }
  }
  for (uint32_t r = 0; r < kGrid2D; ++r) {
    const LerpEntry& tr = k2DTable[r];
    const Fixed32* top = col[tr.left];
    const Fixed32* bot = col[tr.right];
    for (uint32_t c = 0; c < kGrid2D; ++c)
      out[r * kGrid2D + c] = Fixed32::lerp(top[c], bot[c], tr.w, kDen);
  }
}

}  // namespace avr::downsample
