// Decompressed Block Buffer (DBUF) and Prefetch Engine (PFE), Sec. 3.3.
//
// After decompression only the requested cacheline goes to the LLC; the
// remaining 15 reconstructed lines wait in the DBUF, serving later requests
// to the same block without touching DRAM. When a new block arrives the PFE
// decides whether the displaced block's lines should be promoted to the LLC:
// it promotes all remaining lines iff at least `threshold` of the block's
// lines were explicitly requested while it was buffered (paper: half).
#pragma once

#include <bit>
#include <cstdint>

#include "common/types.hh"

namespace avr {

class Dbuf {
 public:
  /// Is a decompressed block currently buffered?
  bool valid() const { return valid_; }
  /// Block address of the buffered block (meaningful only when valid()).
  uint64_t block() const { return block_; }

  /// Does the buffer hold the block containing `addr`?
  bool holds(uint64_t addr) const { return valid_ && block_addr(addr) == block_; }

  /// Record an explicit request served from the buffer.
  void mark_requested(uint64_t line) { requested_ |= mask_of(line); }
  /// Record that a line was copied into the LLC (so the PFE skips it).
  void mark_in_llc(uint64_t line) { in_llc_ |= mask_of(line); }

  /// How many distinct lines were explicitly requested since the refill
  /// (the PFE's promotion criterion input).
  uint32_t requested_count() const { return std::popcount(requested_); }
  /// Lines the PFE would promote: buffered, not yet in the LLC.
  uint16_t promotable_mask() const { return static_cast<uint16_t>(~in_llc_); }
  bool line_in_llc(uint64_t line) const { return in_llc_ & mask_of(line); }

  /// Load a freshly decompressed block, displacing the previous one.
  void refill(uint64_t block) {
    valid_ = true;
    block_ = block_addr(block);
    requested_ = 0;
    in_llc_ = 0;
  }
  /// Drop the buffered block (e.g. its backing block was recompressed).
  void invalidate() { valid_ = false; }

 private:
  static uint16_t mask_of(uint64_t line) {
    return static_cast<uint16_t>(1u << line_in_block(line));
  }
  bool valid_ = false;
  uint64_t block_ = 0;
  uint16_t requested_ = 0;
  uint16_t in_llc_ = 0;
};

}  // namespace avr
