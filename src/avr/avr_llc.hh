// The AVR Last Level Cache (Sec. 3.4, Fig. 6).
//
// A decoupled sectored cache: the tag array tracks memory *blocks*
// (16-cacheline granularity) while the back-pointer array (BPA) + data
// array track individual 64 B entries, each of which is either an
// uncompressed cacheline (UCL) or one compressed memory sub-block (CMS).
//
// Indexing (address = | block tag m | tag index n | CL offset 4 | byte 6 |):
//   * tag array set        = tag index            (block granularity)
//   * UCL set              = (addr >> 6) mod sets (conventional indexing)
//   * CMS #i of a block    = set (tag index + i) mod sets
// so a block's UCLs and its CMSs never contend for the same associativity.
//
// This class owns the arrays and the replacement machinery; the eviction
// *flows* (Fig. 8) are driven by AvrSystem, which receives every victim this
// cache produces and decides recompression / lazy writeback / etc.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace avr {

/// A victim pushed out of the LLC. For a UCL, `addr` is the cacheline
/// address. For a CMS victim the *whole block* leaves the cache (partial
/// compressed blocks are useless, Sec. 3.5) and `addr` is the block address.
struct LlcVictim {
  enum Kind { kUcl, kCmsBlock } kind = kUcl;
  uint64_t addr = 0;
  bool dirty = false;
};

/// Plain-field counters, bumped on every UCL/CMS operation: ucl_access sits
/// behind every LLC request the interval core issues, so no string-keyed
/// maps here (same convention as CacheCounters).
struct AvrLlcCounters {
  uint64_t ucl_accesses = 0;
  uint64_t ucl_hits = 0;
  uint64_t ucl_fills = 0;
  uint64_t cms_fills = 0;
  uint64_t tag_evictions = 0;
  uint64_t cms_collateral_evictions = 0;
};

class AvrLlc {
 public:
  explicit AvrLlc(const CacheConfig& cfg);

  // ---- UCL path -----------------------------------------------------------
  /// Lookup an uncompressed cacheline; on hit updates LRU (block tag LRU and
  /// the block's CMS LRU bits refresh too) and the dirty bit for writes.
  bool ucl_access(uint64_t line, bool write);
  bool ucl_present(uint64_t line) const;
  /// Insert a UCL (must be absent). Victims are appended to `out`.
  void ucl_insert(uint64_t line, bool dirty, std::vector<LlcVictim>& out);
  /// Drop a UCL without writeback; returns its dirty bit if present.
  std::optional<bool> ucl_invalidate(uint64_t line);
  /// Mark an existing UCL clean (it was folded into a recompressed block).
  void ucl_mark_clean(uint64_t line);

  // ---- CMS path -----------------------------------------------------------
  /// Is the compressed image of `block` resident (all CMSs)?
  bool cms_present(uint64_t block) const;
  uint32_t cms_count(uint64_t block) const;
  bool cms_dirty(uint64_t block) const;
  void cms_mark_dirty(uint64_t block);
  void cms_touch(uint64_t block);  // LRU refresh on block access
  /// Insert the `count` CMSs of a compressed block (old copy, if any, must
  /// have been removed). Victims are appended to `out`.
  void cms_insert(uint64_t block, uint32_t count, bool dirty,
                  std::vector<LlcVictim>& out);
  /// Remove a block's CMSs without writeback (e.g. before re-inserting the
  /// recompressed image). The tag stays while UCLs remain.
  void cms_remove(uint64_t block);

  // ---- block-level queries -------------------------------------------------
  /// Cacheline addresses of this block's UCLs currently in the LLC.
  std::vector<uint64_t> ucls_of_block(uint64_t block, bool dirty_only) const;

  /// Every resident entry, for the end-of-run drain.
  std::vector<LlcVictim> all_resident() const;

  uint32_t num_sets() const { return sets_; }
  uint32_t ways() const { return ways_; }

  /// Static structure overhead in bits per data-array entry (Sec. 4.2):
  /// BPA entry bits beyond a conventional cache's dirty/valid/LRU.
  static constexpr uint32_t kBpaExtraBitsPerEntry = 18;

  const AvrLlcCounters& counters() const { return counters_; }
  /// Snapshot of the counters as a StatGroup (cold path, for reporting);
  /// zero-valued counters are omitted, as a never-touched map key used to be.
  StatGroup stats() const;

 private:
  // Both arrays are scanned way-by-way on every lookup, so the entries are
  // packed tight (24 B tags, 16 B BPA entries: a 16-way scan stays inside a
  // few cachelines) and keyed for single-compare scans: an invalid tag
  // stores a sentinel block_tag (no real block tag reaches 2^54), and the
  // BPA match fields are laid out so one masked 8-byte load compares
  // (tag_idx, cl_id, is_cms, valid) at once. cms <= 8 and ucl <= 16 fit a
  // byte; the owning tag is a single flat index (set * ways + way).
  static constexpr uint64_t kNoTag = ~uint64_t{0};
  struct TagEntry {
    uint64_t block_tag = kNoTag;
    uint64_t lru = 0;
    uint8_t cms = 0;  // CMS count, 0 = compressed image absent
    uint8_t ucl = 0;  // number of UCLs of this block in the LLC
    bool block_dirty = false;  // the compressed image is dirty

    bool valid() const { return block_tag != kNoTag; }
    void invalidate() { block_tag = kNoTag; }
  };
  struct BpaEntry {
    uint32_t tag_idx = 0;  // flat index of the owning tag entry
    uint8_t cl_id = 0;     // UCL: CL offset in block; CMS: sub-block index
    bool is_cms = false;
    bool valid = false;
    bool dirty = false;  // byte 7: the only field a lookup does not match on
    uint64_t lru = 0;
  };

  /// The match word a resident entry must equal: bytes 0..6 of a BpaEntry,
  /// i.e. everything but the dirty flag.
  static uint64_t bpa_key(uint32_t tag_idx, uint8_t cl_id, bool is_cms) {
    return uint64_t{tag_idx} | (uint64_t{cl_id} << 32) |
           (uint64_t{is_cms} << 40) | (uint64_t{1} << 48);
  }
  static uint64_t bpa_match(const BpaEntry& e);

  uint64_t tag_index(uint64_t block) const { return (block >> 10) & (sets_ - 1); }
  uint64_t ucl_index(uint64_t line) const { return (line >> 6) & (sets_ - 1); }
  uint64_t block_tag(uint64_t block) const { return block >> 10 >> set_bits_; }
  uint64_t block_addr_of_tag(uint32_t set, const TagEntry& t) const {
    return ((t.block_tag << set_bits_) | set) << 10;
  }

  TagEntry* find_tag(uint64_t block);
  const TagEntry* find_tag(uint64_t block) const;
  /// Find-or-allocate the tag entry; allocation may evict a victim tag and
  /// therefore all of its resident lines (appended to `out`). Returns the
  /// flat tag index.
  uint32_t ensure_tag(uint64_t block, std::vector<LlcVictim>& out);
  /// Re-validate the tag at `tag_idx` in place if make_room collaterally
  /// freed it after ensure_tag (its last resident entry was evicted while
  /// the caller's insert was still in flight). Returns the tag entry.
  TagEntry& revive_tag(uint32_t tag_idx, uint64_t block);
  void maybe_free_tag(uint32_t tag_idx);
  /// Evict everything belonging to the tag at (set, way).
  void evict_tag(uint32_t set, uint32_t way, std::vector<LlcVictim>& out);
  /// LRU-refresh the tag and its CMS entries (`t` == tags_[tag_idx]).
  void cms_touch_entry(uint32_t tag_idx, TagEntry& t);

  BpaEntry* find_ucl(uint64_t line);
  const BpaEntry* find_ucl(uint64_t line) const;
  /// Pick the LRU victim way in BPA set `set` and release it, appending any
  /// eviction to `out`. Returns the freed way.
  uint32_t make_room(uint64_t set, std::vector<LlcVictim>& out);
  /// Release the BPA entry at (set, way): for a UCL report it; for a CMS
  /// evict the whole owning block's compressed image.
  void release_entry(uint64_t set, uint32_t way, std::vector<LlcVictim>& out);
  void remove_cms_entries(uint64_t block, uint32_t set0, uint32_t count);

  std::vector<TagEntry> tags_;  // sets_ x ways_
  std::vector<BpaEntry> bpa_;   // sets_ x ways_
  uint32_t sets_ = 0;
  uint32_t ways_ = 0;
  uint32_t set_bits_ = 0;
  uint64_t lru_clock_ = 0;
  AvrLlcCounters counters_;
};

}  // namespace avr
