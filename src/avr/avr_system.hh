// The AVR LLC+memory subsystem: glues together the decoupled LLC, the
// compressor/decompressor, the CMT, the DBUF/PFE and the DRAM model, and
// implements the request flow of Fig. 7 and the eviction flow of Fig. 8.
//
// Functional semantics: compression events run the real construction /
// reconstruction on the workload's backing store (RegionRegistry), so
// application output error emerges from the data path exactly as in the
// paper's methodology. One modeling simplification: a recompression reads
// the *current* backing values for all lines of the block, which folds in
// stores that architecturally still sit dirty in L1/L2; this slightly lowers
// the number of approximation round-trips a value experiences and is
// documented in DESIGN.md.
#pragma once

#include <cstdint>
#include <vector>

#include "avr/avr_llc.hh"
#include "avr/cmt.hh"
#include "avr/compressor.hh"
#include "avr/dbuf.hh"
#include "common/config.hh"
#include "mem/llc_system.hh"
#include "runtime/region.hh"

namespace avr {

/// Plain-field counters for everything the request/eviction flows count.
/// request() runs once per LLC request of every core, so no string-keyed
/// maps here; stats() snapshots these into the reporting StatGroup.
struct AvrSystemCounters {
  uint64_t requests = 0;
  uint64_t approx_requests = 0;
  uint64_t req_hit_dbuf = 0;
  uint64_t req_hit_ucl = 0;
  uint64_t req_hit_ucl_other = 0;
  uint64_t req_hit_compressed = 0;
  uint64_t req_miss = 0;
  uint64_t req_miss_other = 0;
  uint64_t hit_compressed_latency_total = 0;
  uint64_t decompressions = 0;
  uint64_t block_fetches = 0;
  uint64_t block_fetch_lines = 0;
  uint64_t traffic_approx_bytes = 0;
  uint64_t traffic_other_bytes = 0;
  uint64_t compress_attempts = 0;
  uint64_t compress_successes = 0;
  uint64_t compress_failures = 0;
  // Per-method success histogram (which tier/variant won each compression).
  // Surfaced in stats() only when the BDI-hybrid tier is enabled, so
  // pre-existing configurations' snapshots stay byte-identical.
  uint64_t blocks_1d = 0;
  uint64_t blocks_2d = 0;
  uint64_t blocks_bdi = 0;
  uint64_t attempts_skipped = 0;
  uint64_t approx_evictions = 0;
  uint64_t evict_other_wb = 0;
  uint64_t evict_recompress = 0;
  uint64_t evict_lazy_wb = 0;
  uint64_t evict_fetch_recompress = 0;
  uint64_t evict_uncompressed_wb = 0;
  uint64_t cms_block_evictions = 0;
  uint64_t pfe_promotions = 0;
  uint64_t pfe_lines = 0;
};

class AvrSystem final : public LlcSystem {
 public:
  AvrSystem(const SimConfig& cfg, RegionRegistry& regions);

  uint64_t request(uint64_t now, uint64_t line, bool write) override;
  void writeback(uint64_t now, uint64_t line) override;
  void drain(uint64_t now) override;
  bool last_was_miss() const override { return last_was_miss_; }

  StatGroup stats() const override;
  const AvrSystemCounters& counters() const { return counters_; }
  Dram& dram() override { return dram_; }
  const Dram& dram() const override { return dram_; }

  /// Component access for tests/benches: metadata table, decoupled LLC and
  /// the (stateless) compressor instance this subsystem drives.
  const Cmt& cmt() const { return cmt_; }
  Cmt& cmt() { return cmt_; }
  const AvrLlc& llc() const { return llc_; }
  const Compressor& compressor() const { return compressor_; }

  /// Compression ratio achieved over all approx blocks ever compressed:
  /// 16 / (mean compressed size in lines), as reported in Table 4.
  double mean_compression_ratio() const;

 private:
  bool approx(uint64_t addr) const { return regions_.is_approx(addr); }
  DType dtype_of(uint64_t addr) const;

  uint64_t dram_read(uint64_t now, uint64_t addr, uint32_t bytes, bool is_approx);
  void dram_write(uint64_t now, uint64_t addr, uint32_t bytes, bool is_approx);

  struct CompressOutcome {
    uint32_t lines = 0;  // 0 = compression failed
    Method method = Method::kUncompressed;
    int8_t bias = 0;
  };
  /// Runs the compressor on the block's current backing values, reusing
  /// this subsystem's scratch_. On success applies the reconstruction to
  /// the backing store (the functional effect of the block now living in
  /// compressed form) and returns the compressed size/method/bias;
  /// lines == 0 on failure. Counts compressor events.
  CompressOutcome compress_block_values(uint64_t block);

  /// Fig. 8, dirty-UCL branch.
  void handle_dirty_ucl(uint64_t now, uint64_t line, int depth);
  /// Fig. 8, dirty-CMS branch: the whole compressed block leaves the LLC.
  void handle_cms_block_evict(uint64_t now, uint64_t block, bool dirty, int depth);
  void process_victims(uint64_t now, std::vector<LlcVictim>& victims, int depth);

  /// PFE decision when the DBUF is about to be displaced (Sec. 3.3).
  void run_pfe(uint64_t now, int depth);

  /// Failure-history gate (Sec. 3.5): true if this attempt must be skipped.
  bool should_skip_attempt(BlockMeta& meta);

  SimConfig cfg_;
  RegionRegistry& regions_;
  Dram dram_;
  AvrLlc llc_;
  Cmt cmt_;
  Compressor compressor_;
  // Scratch-ownership convention: the per-event caller owns the pipeline's
  // working buffers and threads them through every compression attempt, so
  // the datapath never allocates. One scratch per AvrSystem suffices —
  // compression events within one simulated system are serial.
  CompressorScratch scratch_;
  Dbuf dbuf_;
  AvrSystemCounters counters_;
  bool last_was_miss_ = false;

  // Running tally for Table 4: sum of compressed sizes and #compressions.
  uint64_t compressed_lines_sum_ = 0;
  uint64_t compressed_blocks_ = 0;

  static constexpr int kMaxDepth = 4;
};

}  // namespace avr
