// Fixed-point downsampling and interpolating reconstruction (Sec. 3.3,
// Fig. 5). Two placement variants are implemented, matching the paper:
//   1D: the block is a 256-entry linear array; sub-blocks are 16 consecutive
//       values; reconstruction is linear interpolation between averages.
//   2D: the block is a 16x16 square; sub-blocks are 4x4 tiles; reconstruction
//       is bi-linear interpolation between tile averages.
// All arithmetic is Q16.16 with small integer interpolation weights, i.e.
// what the synthesized datapath computes. The neighbour indices and weights
// for every position are precomputed into compile-time tables (the
// hardware's hard-wired interpolation network), so the reconstruct kernels
// are branch-free table-driven lerp loops shared by the compressor's error
// check and the decompressor.
#pragma once

#include <array>
#include <span>

#include "common/fixed_point.hh"
#include "common/types.hh"

namespace avr::downsample {

inline constexpr uint32_t kSubBlock1D = 16;      // values per 1D sub-block
inline constexpr uint32_t kGrid2D = 16;          // block is 16x16
inline constexpr uint32_t kTile2D = 4;           // 4x4 tiles -> 4x4 averages

/// 256 fixed values -> 16 averages, linear placement.
std::array<Fixed32, 16> compress_1d(std::span<const Fixed32, kValuesPerBlock> in);

/// 256 fixed values -> 16 averages, 4x4 tiles of the 16x16 square
/// (averages stored row-major: index = tile_row * 4 + tile_col).
std::array<Fixed32, 16> compress_2d(std::span<const Fixed32, kValuesPerBlock> in);

/// Inverse of compress_1d: distribute averages at sub-block centers and
/// linearly interpolate; positions before the first / after the last center
/// clamp to the nearest average.
void reconstruct_1d(const std::array<Fixed32, 16>& avg,
                    std::span<Fixed32, kValuesPerBlock> out);

/// Inverse of compress_2d with bi-linear interpolation and edge clamping.
void reconstruct_2d(const std::array<Fixed32, 16>& avg,
                    std::span<Fixed32, kValuesPerBlock> out);

}  // namespace avr::downsample
