// Compression Metadata Table (Sec. 3.2, Fig. 3).
//
// Each 1 KB memory block owns a 23-bit metadata entry:
//   method (2b) | size (3b) | lazy count (4b) | bias (8b) |
//   failed count (4b) | skipped count (2b)
// Four entries per 4 KB page. The full table lives in main memory; a
// TLB-like on-chip cache (the CMT proper) is accessed in parallel with the
// LLC and refilled on TLB misses, costing a few bytes of metadata traffic.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cache/set_assoc_cache.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace avr {

struct BlockMeta {
  Method method = Method::kUncompressed;
  uint8_t size_lines = 0;  // 1..8 when compressed, 0 otherwise
  uint8_t lazy_count = 0;  // lazily evicted uncompressed CLs in the block
  int8_t bias = 0;
  uint8_t failed = 0;   // consecutive failed compression attempts (sat. 15)
  uint8_t skipped = 0;  // attempts skipped since the last failure (sat. 3)

  bool compressed() const { return method != Method::kUncompressed; }
  /// Free cachelines available for lazy evictions (Sec. 3.1).
  uint32_t lazy_space() const {
    return compressed() ? kBlockLines - size_lines - lazy_count : 0;
  }

  /// Pack into the 23-bit hardware encoding (size stored as lines-1).
  uint32_t pack() const;
  static BlockMeta unpack(uint32_t bits);
  bool operator==(const BlockMeta&) const = default;
};

/// Plain-field counters: lookup() runs on every AVR request that reaches the
/// metadata layer, so no string-keyed maps here.
struct CmtCounters {
  uint64_t lookups = 0;
  uint64_t misses = 0;
  uint64_t metadata_bytes = 0;
};

class Cmt {
 public:
  /// `entries` on-chip cached pages; 4 block entries per page.
  explicit Cmt(uint32_t cached_pages = 1024);

  /// Metadata of the block containing `addr` (default entry if untouched).
  /// Models the on-chip lookup: counts a metadata-traffic miss when the
  /// page's entries are not cached.
  BlockMeta& lookup(uint64_t addr);
  /// Side-effect-free lookup: nullptr when the block was never touched.
  const BlockMeta* peek(uint64_t addr) const;

  /// Record which cacheline indices of a block currently sit in its lazy
  /// region in memory (the block image stores them; we track identity so a
  /// fetch knows how many lines to read).
  void add_lazy_line(uint64_t block, uint32_t line_idx);
  const std::vector<uint8_t>& lazy_lines(uint64_t block);
  void clear_lazy_lines(uint64_t block);

  /// Metadata DRAM traffic in bytes (reads + writes), charged per CMT miss.
  uint64_t metadata_traffic_bytes() const { return counters_.metadata_bytes; }
  const CmtCounters& counters() const { return counters_; }
  /// Snapshot of the counters as a StatGroup (cold path, for reporting).
  StatGroup stats() const;

 private:
  std::unordered_map<uint64_t, BlockMeta> table_;           // by block address
  std::unordered_map<uint64_t, std::vector<uint8_t>> lazy_;  // by block address
  SetAssocCache cache_;
  CmtCounters counters_;
};

}  // namespace avr
