// In-memory representation of an AVR compressed memory block (Fig. 2a).
//
// Layout in the 1 KB memory block:
//   line 0          : block summary (16 sub-block averages)
//   line 1 (half)   : outlier bitmap (256 bits), present iff outliers exist
//   line 1.5 ..     : outliers, packed in block order
//   tail            : free space for lazily-evicted uncompressed cachelines
//
// The summary is kept in the biased fixed-point domain; `bias` and `method`
// travel in the CMT entry (Fig. 3) but are duplicated here for convenience.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/bitmap.hh"
#include "common/types.hh"

namespace avr {

inline constexpr uint32_t kSummaryValues = 16;  // 16:1 target over 256 values
inline constexpr uint32_t kBitmapBytes = Bitmap256::kBits / 8;  // 32 B = half a line

struct CompressedBlock {
  Method method = Method::kUncompressed;
  DType dtype = DType::kFloat32;
  int8_t bias = 0;  // exponent bias applied before fixed-point conversion
  std::array<int32_t, kSummaryValues> summary{};  // Q16.16 raw, biased domain
  Bitmap256 outlier_map;
  std::vector<uint32_t> outliers;  // raw 32-bit images of outlier values

  /// Number of 64 B cachelines the compressed image occupies (Sec. 3.1):
  /// summary alone is 1 line; with outliers add the half-line bitmap plus
  /// 4 B per outlier, rounded up to whole lines.
  uint32_t lines() const {
    if (outliers.empty()) return 1;
    const uint64_t payload = kBitmapBytes + 4 * outliers.size();
    return 1 + static_cast<uint32_t>((payload + kCachelineBytes - 1) / kCachelineBytes);
  }

  bool compressed() const { return method != Method::kUncompressed; }

  /// Largest outlier count that still fits the 8-line budget:
  /// 7 lines * 64 B = 448 B minus the 32 B bitmap = 104 outliers.
  static constexpr uint32_t kMaxOutliers =
      (7 * kCachelineBytes - kBitmapBytes) / 4;
};

}  // namespace avr
