// In-memory representation of an AVR compressed memory block (Fig. 2a).
//
// Layout in the 1 KB memory block:
//   line 0          : block summary (16 sub-block averages)
//   line 1 (half)   : outlier bitmap (256 bits), present iff outliers exist
//   line 1.5 ..     : outliers, packed in block order
//   tail            : free space for lazily-evicted uncompressed cachelines
//
// The summary is kept in the biased fixed-point domain; `bias` and `method`
// travel in the CMT entry (Fig. 3) but are duplicated here for convenience.
//
// The whole struct is trivially copyable: the outlier list is a
// fixed-capacity inline array (the 8-line budget bounds it at
// kMaxBlockOutliers entries), so building or copying an encoding never
// touches the heap — the compressor datapath reuses one of these per
// attempt through CompressorScratch.
#pragma once

#include <array>
#include <cstdint>

#include "common/bitmap.hh"
#include "common/types.hh"

namespace avr {

inline constexpr uint32_t kSummaryValues = 16;  // 16:1 target over 256 values
inline constexpr uint32_t kBitmapBytes = Bitmap256::kBits / 8;  // 32 B = half a line

/// Largest outlier count that still fits the 8-line budget:
/// 7 lines * 64 B = 448 B minus the 32 B bitmap = 104 outliers.
inline constexpr uint32_t kMaxBlockOutliers =
    (7 * kCachelineBytes - kBitmapBytes) / 4;

/// Fixed-capacity inline list of raw 32-bit outlier images. Mirrors the
/// std::vector surface the encoding consumers use (size/empty/iteration/
/// indexing) without per-attempt allocation; push_back beyond capacity is
/// the caller's bug (the error-check loop aborts an attempt *before*
/// exceeding kMaxBlockOutliers).
class OutlierList {
 public:
  constexpr uint32_t size() const { return n_; }
  constexpr bool empty() const { return n_ == 0; }
  constexpr bool full() const { return n_ == kMaxBlockOutliers; }
  constexpr void clear() { n_ = 0; }

  constexpr void push_back(uint32_t bits) { v_[n_++] = bits; }
  constexpr void assign(uint32_t n, uint32_t bits) {
    n_ = n;
    for (uint32_t i = 0; i < n; ++i) v_[i] = bits;
  }

  constexpr uint32_t operator[](uint32_t i) const { return v_[i]; }
  constexpr uint32_t& operator[](uint32_t i) { return v_[i]; }
  constexpr const uint32_t* data() const { return v_.data(); }
  constexpr const uint32_t* begin() const { return v_.data(); }
  constexpr const uint32_t* end() const { return v_.data() + n_; }

  constexpr bool operator==(const OutlierList& o) const {
    if (n_ != o.n_) return false;
    for (uint32_t i = 0; i < n_; ++i)
      if (v_[i] != o.v_[i]) return false;
    return true;
  }

 private:
  std::array<uint32_t, kMaxBlockOutliers> v_{};
  uint32_t n_ = 0;
};

struct CompressedBlock {
  Method method = Method::kUncompressed;
  DType dtype = DType::kFloat32;
  int8_t bias = 0;  // exponent bias applied before fixed-point conversion
  std::array<int32_t, kSummaryValues> summary{};  // Q16.16 raw, biased domain
  Bitmap256 outlier_map;
  OutlierList outliers;  // raw 32-bit images of outlier values

  /// Number of 64 B cachelines the compressed image occupies (Sec. 3.1):
  /// summary alone is 1 line; with outliers add the half-line bitmap plus
  /// 4 B per outlier, rounded up to whole lines.
  uint32_t lines() const {
    if (outliers.empty()) return 1;
    const uint64_t payload = kBitmapBytes + 4 * outliers.size();
    return 1 + static_cast<uint32_t>((payload + kCachelineBytes - 1) / kCachelineBytes);
  }

  bool compressed() const { return method != Method::kUncompressed; }

  static constexpr uint32_t kMaxOutliers = kMaxBlockOutliers;
};

}  // namespace avr
