// In-memory representation of an AVR compressed memory block (Fig. 2a).
//
// Layout in the 1 KB memory block:
//   line 0          : block summary (16 sub-block averages)
//   line 1 (half)   : outlier bitmap (256 bits), present iff outliers exist
//   line 1.5 ..     : outliers, packed in block order
//   tail            : free space for lazily-evicted uncompressed cachelines
//
// The summary is kept in the biased fixed-point domain; `bias` and `method`
// travel in the CMT entry (Fig. 3) but are duplicated here for convenience.
// A lossless-exact encoding (Method::kBdiHybrid) uses none of the summary
// machinery: it is a pure size record (`encoded_bytes`) over the block's
// raw bit image — the simulator never stores BDI-encoded bytes, and the
// backing data itself is the exact reconstruction.
//
// The whole struct is trivially copyable: the outlier list is a
// fixed-capacity inline array (the 8-line budget bounds it at
// kMaxBlockOutliers entries), so building or copying an encoding never
// touches the heap — the compressor datapath reuses one of these per
// attempt through CompressorScratch.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>

#include "avr/method.hh"
#include "common/bitmap.hh"
#include "common/types.hh"

namespace avr {

// The size constants live in avr/method.hh with the per-method size model;
// the bitmap type must stay one-bit-per-block-value for them to agree.
static_assert(kBitmapBytes == Bitmap256::kBits / 8);

/// Fixed-capacity inline list of raw 32-bit outlier images. Mirrors the
/// std::vector surface the encoding consumers use (size/empty/iteration/
/// indexing) without per-attempt allocation; push_back beyond capacity is
/// the caller's bug (the error-check loop aborts an attempt *before*
/// exceeding kMaxBlockOutliers) — Debug builds trap it.
class OutlierList {
 public:
  constexpr uint32_t size() const { return n_; }
  constexpr bool empty() const { return n_ == 0; }
  constexpr bool full() const { return n_ == kMaxBlockOutliers; }
  constexpr void clear() { n_ = 0; }

  constexpr void push_back(uint32_t bits) {
    assert(n_ < kMaxBlockOutliers && "OutlierList overflow: attempt not aborted");
    v_[n_++] = bits;
  }
  constexpr void assign(uint32_t n, uint32_t bits) {
    n_ = n;
    for (uint32_t i = 0; i < n; ++i) v_[i] = bits;
  }

  constexpr uint32_t operator[](uint32_t i) const { return v_[i]; }
  constexpr uint32_t& operator[](uint32_t i) { return v_[i]; }
  constexpr const uint32_t* data() const { return v_.data(); }
  constexpr const uint32_t* begin() const { return v_.data(); }
  constexpr const uint32_t* end() const { return v_.data() + n_; }

  constexpr bool operator==(const OutlierList& o) const {
    if (n_ != o.n_) return false;
    for (uint32_t i = 0; i < n_; ++i)
      if (v_[i] != o.v_[i]) return false;
    return true;
  }

 private:
  std::array<uint32_t, kMaxBlockOutliers> v_{};
  uint32_t n_ = 0;
};

struct CompressedBlock {
  Method method = Method::kUncompressed;
  DType dtype = DType::kFloat32;
  int8_t bias = 0;  // exponent bias applied before fixed-point conversion
  std::array<int32_t, kSummaryValues> summary{};  // Q16.16 raw, biased domain
  Bitmap256 outlier_map;
  OutlierList outliers;  // raw 32-bit images of outlier values
  /// Lossless-exact tier only (method_is_exact): summed per-line encoded
  /// bytes of the block's raw bit image. Lossy-tier encodings leave it 0 —
  /// their size is a function of the outlier count alone.
  uint32_t encoded_bytes = 0;

  /// Number of 64 B cachelines the compressed image occupies, per the
  /// method's tier-specific size model (avr/method.hh). Everything that
  /// meters compressed space — CMT size fields, LLC free-space/eviction —
  /// consumes this, so new methods only extend the size model.
  uint32_t lines() const {
    return method_lines(method, outliers.size(), encoded_bytes);
  }

  bool compressed() const { return method != Method::kUncompressed; }

  static constexpr uint32_t kMaxOutliers = kMaxBlockOutliers;
};

}  // namespace avr
