#include "avr/cmt.hh"

#include <cassert>

namespace avr {

uint32_t BlockMeta::pack() const {
  const uint32_t size_field = size_lines == 0 ? 0 : (size_lines - 1) & 0x7;
  return (static_cast<uint32_t>(method) & 0x3) | (size_field << 2) |
         ((lazy_count & 0xF) << 5) |
         ((static_cast<uint32_t>(static_cast<uint8_t>(bias))) << 9) |
         ((failed & 0xF) << 17) | ((skipped & 0x3) << 21);
}

BlockMeta BlockMeta::unpack(uint32_t bits) {
  BlockMeta m;
  m.method = static_cast<Method>(bits & 0x3);
  const uint32_t size_field = (bits >> 2) & 0x7;
  m.size_lines = m.method == Method::kUncompressed ? 0 : size_field + 1;
  m.lazy_count = (bits >> 5) & 0xF;
  m.bias = static_cast<int8_t>((bits >> 9) & 0xFF);
  m.failed = (bits >> 17) & 0xF;
  m.skipped = (bits >> 21) & 0x3;
  return m;
}

Cmt::Cmt(uint32_t cached_pages)
    : cache_("cmt_cache", uint64_t{cached_pages} * kPageBytes, 4, kPageBytes) {}

BlockMeta& Cmt::lookup(uint64_t addr) {
  const uint64_t page = page_addr(addr);
  ++counters_.lookups;
  if (!cache_.access(page, /*write=*/false)) {
    // TLB/CMT miss: fetch the page's 4 entries (4 x 23 bits ~ 12 B) and
    // write back the victim's entries if dirty. We charge 12 B each way.
    const Eviction ev = cache_.fill(page, /*dirty=*/false);
    ++counters_.misses;
    counters_.metadata_bytes += 12;
    if (ev.valid && ev.dirty) counters_.metadata_bytes += 12;
  }
  // Any lookup may update the entry; mark the cached page dirty. This is
  // conservative (extra writeback traffic is a few bytes per miss).
  cache_.mark_dirty(page);
  return table_[block_addr(addr)];
}

const BlockMeta* Cmt::peek(uint64_t addr) const {
  auto it = table_.find(block_addr(addr));
  return it == table_.end() ? nullptr : &it->second;
}

void Cmt::add_lazy_line(uint64_t block, uint32_t line_idx) {
  assert(line_idx < kBlockLines);
  lazy_[block_addr(block)].push_back(static_cast<uint8_t>(line_idx));
}

const std::vector<uint8_t>& Cmt::lazy_lines(uint64_t block) {
  return lazy_[block_addr(block)];
}

void Cmt::clear_lazy_lines(uint64_t block) { lazy_[block_addr(block)].clear(); }

StatGroup Cmt::stats() const {
  StatGroup g("cmt");
  g.add_nonzero("lookups", counters_.lookups);
  g.add_nonzero("misses", counters_.misses);
  g.add_nonzero("metadata_bytes", counters_.metadata_bytes);
  return g;
}

}  // namespace avr
