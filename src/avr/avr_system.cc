#include "avr/avr_system.hh"

#include <algorithm>
#include <cassert>

namespace avr {

AvrSystem::AvrSystem(const SimConfig& cfg, RegionRegistry& regions)
    : cfg_(cfg),
      regions_(regions),
      dram_(cfg.dram),
      llc_(cfg.llc),
      cmt_(),
      compressor_(cfg.avr) {}

DType AvrSystem::dtype_of(uint64_t addr) const {
  const MemoryRegion* r = regions_.find(addr);
  return r ? r->dtype : DType::kFloat32;
}

uint64_t AvrSystem::dram_read(uint64_t now, uint64_t addr, uint32_t bytes,
                              bool is_approx) {
  if (is_approx)
    counters_.traffic_approx_bytes += bytes;
  else
    counters_.traffic_other_bytes += bytes;
  return dram_.read(now, addr, bytes);
}

void AvrSystem::dram_write(uint64_t now, uint64_t addr, uint32_t bytes,
                           bool is_approx) {
  if (is_approx)
    counters_.traffic_approx_bytes += bytes;
  else
    counters_.traffic_other_bytes += bytes;
  dram_.write(now, addr, bytes);
}

AvrSystem::CompressOutcome AvrSystem::compress_block_values(uint64_t block) {
  ++counters_.compress_attempts;
  auto vals = regions_.block_values(block);
  auto att = compressor_.compress(vals, dtype_of(block), scratch_);
  if (!att) {
    ++counters_.compress_failures;
    return {};
  }
  // The block now lives in summarized form: every subsequent read observes
  // the reconstruction. Outliers are stored exactly, so reconstruct() leaves
  // them bit-identical. Exact-tier encodings (BDI-hybrid) skip this — their
  // reconstruction is the identity, so the backing store must stay untouched.
  if (!method_is_exact(att->block.method))
    compressor_.reconstruct(att->block, vals);
  ++counters_.compress_successes;
  switch (att->block.method) {
    case Method::kDownsample1D: ++counters_.blocks_1d; break;
    case Method::kDownsample2D: ++counters_.blocks_2d; break;
    case Method::kBdiHybrid: ++counters_.blocks_bdi; break;
    default: break;
  }
  compressed_lines_sum_ += att->block.lines();
  compressed_blocks_ += 1;
  return {att->block.lines(), att->block.method, att->block.bias};
}

double AvrSystem::mean_compression_ratio() const {
  if (compressed_blocks_ == 0) return 1.0;
  const double mean_lines =
      static_cast<double>(compressed_lines_sum_) / static_cast<double>(compressed_blocks_);
  return static_cast<double>(kBlockLines) / mean_lines;
}

bool AvrSystem::should_skip_attempt(BlockMeta& meta) {
  if (!cfg_.avr.enable_failure_history) return false;
  if (meta.failed == 0) return false;
  // "Max tries" (Fig. 8): a block that failed persistently is treated as
  // incompressible for good — re-attempting means re-fetching its missing
  // lines from memory, which would hand back all of the bandwidth savings.
  if (meta.failed >= cfg_.avr.max_failures) {
    ++counters_.attempts_skipped;
    return true;
  }
  const uint32_t budget = std::min<uint32_t>(meta.failed, cfg_.avr.max_skips);
  if (meta.skipped < budget) {
    meta.skipped = static_cast<uint8_t>(meta.skipped + 1);
    ++counters_.attempts_skipped;
    return true;
  }
  meta.skipped = 0;  // budget exhausted: allow one real attempt
  return false;
}

// ---------------------------------------------------------------------------
// Request flow (Fig. 7)
// ---------------------------------------------------------------------------

uint64_t AvrSystem::request(uint64_t now, uint64_t line, bool write) {
  line = line_addr(line);
  const uint64_t block = block_addr(line);
  const bool ap = approx(line);
  last_was_miss_ = false;
  ++counters_.requests;
  if (ap) ++counters_.approx_requests;

  std::vector<LlcVictim> victims;

  // 1. DBUF lookup, in parallel with the tag array.
  if (ap && dbuf_.holds(line)) {
    ++counters_.req_hit_dbuf;
    dbuf_.mark_requested(line);
    // The UCL is also written from the DBUF into the LLC (Sec. 3.5).
    if (!llc_.ucl_present(line)) {
      llc_.ucl_insert(line, write, victims);
      dbuf_.mark_in_llc(line);
      process_victims(now, victims, 0);
    } else {
      llc_.ucl_access(line, write);
    }
    return cfg_.llc.latency;
  }

  // 2. UCL lookup.
  if (llc_.ucl_access(line, write)) {
    if (ap)
      ++counters_.req_hit_ucl;
    else
      ++counters_.req_hit_ucl_other;
    return cfg_.llc.latency;
  }

  // 3. CMS lookup: is the compressed image resident?
  if (ap && llc_.cms_present(block)) {
    ++counters_.req_hit_compressed;
    const uint32_t k = llc_.cms_count(block);
    llc_.cms_touch(block);
    ++counters_.decompressions;
    // Displace the DBUF: consult the PFE about the outgoing block first.
    run_pfe(now, 0);
    dbuf_.refill(block);
    dbuf_.mark_requested(line);
    llc_.ucl_insert(line, write, victims);
    dbuf_.mark_in_llc(line);
    process_victims(now, victims, 0);
    const uint64_t lat = cfg_.llc.latency +
                         uint64_t{cfg_.avr.cms_stream_cycles} * (k - 1) +
                         cfg_.avr.decompress_latency;
    counters_.hit_compressed_latency_total += lat;
    return lat;
  }

  // 4. Miss.
  last_was_miss_ = true;
  if (ap)
    ++counters_.req_miss;
  else
    ++counters_.req_miss_other;

  if (!ap) {
    const uint64_t lat = dram_read(now, line, kCachelineBytes, false);
    llc_.ucl_insert(line, write, victims);
    process_victims(now, victims, 0);
    return lat + cfg_.llc.latency;
  }

  BlockMeta& meta = cmt_.lookup(block);
  if (meta.compressed()) {
    // Fetch the compressed image together with any lazily evicted lines.
    const uint32_t lines = meta.size_lines + meta.lazy_count;
    const uint64_t lat_dram =
        dram_read(now, block, lines * kCachelineBytes, true);
    ++counters_.decompressions;
    ++counters_.block_fetches;
    counters_.block_fetch_lines += lines;

    bool inserted_cms = false;
    if (meta.lazy_count > 0) {
      // Incorporate lazy lines and recompress immediately; the merged block
      // is marked dirty in the LLC (Sec. 3.5).
      const CompressOutcome out = compress_block_values(block);
      if (out.lines > 0) {
        llc_.cms_insert(block, out.lines, /*dirty=*/true, victims);
        inserted_cms = true;
      } else {
        // Merged block no longer compresses: it becomes uncompressed in
        // memory right away.
        dram_write(now, block, kBlockBytes, true);
        meta.method = Method::kUncompressed;
        meta.size_lines = 0;
        meta.failed = std::min<uint32_t>(meta.failed + 1, 15);
        meta.lazy_count = 0;
        cmt_.clear_lazy_lines(block);
      }
      if (inserted_cms) {
        meta.lazy_count = 0;
        cmt_.clear_lazy_lines(block);
        // The dirty LLC image supersedes the memory image; CMT size is
        // refreshed when it is written back.
      }
    } else {
      llc_.cms_insert(block, meta.size_lines, /*dirty=*/false, victims);
      inserted_cms = true;
    }

    run_pfe(now, 0);
    dbuf_.refill(block);
    dbuf_.mark_requested(line);
    if (!llc_.ucl_present(line)) {
      llc_.ucl_insert(line, write, victims);
      dbuf_.mark_in_llc(line);
    } else {
      llc_.ucl_access(line, write);
    }
    process_victims(now, victims, 0);
    const uint32_t k = inserted_cms ? llc_.cms_count(block) : meta.size_lines;
    return lat_dram + uint64_t{cfg_.avr.cms_stream_cycles} * (k > 0 ? k - 1 : 0) +
           cfg_.avr.decompress_latency + cfg_.llc.latency;
  }

  // Uncompressed (or never-compressed) block: per-line access like baseline.
  const uint64_t lat = dram_read(now, line, kCachelineBytes, true);
  llc_.ucl_insert(line, write, victims);
  process_victims(now, victims, 0);
  return lat + cfg_.llc.latency;
}

void AvrSystem::writeback(uint64_t now, uint64_t line) {
  line = line_addr(line);
  std::vector<LlcVictim> victims;
  if (llc_.ucl_access(line, /*write=*/true)) return;  // landed on a resident UCL
  llc_.ucl_insert(line, /*dirty=*/true, victims);
  if (dbuf_.holds(line)) dbuf_.mark_in_llc(line);
  process_victims(now, victims, 0);
}

// ---------------------------------------------------------------------------
// Eviction flow (Fig. 8)
// ---------------------------------------------------------------------------

void AvrSystem::process_victims(uint64_t now, std::vector<LlcVictim>& victims,
                                int depth) {
  // Victims may cascade (tag evictions, CMS reallocation); process a copy so
  // re-entrant inserts can use a fresh vector.
  std::vector<LlcVictim> local;
  local.swap(victims);
  for (const LlcVictim& v : local) {
    if (v.kind == LlcVictim::kUcl) {
      if (!v.dirty) continue;  // clean lines vanish silently
      handle_dirty_ucl(now, v.addr, depth);
    } else {
      handle_cms_block_evict(now, v.addr, v.dirty, depth);
    }
  }
}

void AvrSystem::handle_dirty_ucl(uint64_t now, uint64_t line, int depth) {
  const uint64_t block = block_addr(line);
  if (!approx(line)) {
    dram_write(now, line, kCachelineBytes, false);
    ++counters_.evict_other_wb;
    return;
  }
  ++counters_.approx_evictions;

  // Case 1: the compressed image is in the LLC -> update and recompress it
  // on chip (no memory traffic).
  if (llc_.cms_present(block) && depth < kMaxDepth) {
    ++counters_.evict_recompress;
    ++counters_.decompressions;
    const CompressOutcome out = compress_block_values(block);
    std::vector<LlcVictim> victims;
    llc_.cms_remove(block);
    if (out.lines > 0) {
      llc_.cms_insert(block, out.lines, /*dirty=*/true, victims);
    } else {
      // Compression failed: the block leaves the LLC uncompressed.
      BlockMeta& meta = cmt_.lookup(block);
      dram_write(now, block, kBlockBytes, true);
      meta.method = Method::kUncompressed;
      meta.size_lines = 0;
      meta.failed = std::min<uint32_t>(meta.failed + 1, 15);
      meta.lazy_count = 0;
      cmt_.clear_lazy_lines(block);
    }
    process_victims(now, victims, depth + 1);
    return;
  }

  BlockMeta& meta = cmt_.lookup(block);

  // Case 2: block compressed in memory and there is room in its 1 KB slot:
  // lazily write the line back uncompressed (Sec. 3.1).
  if (meta.compressed() && cfg_.avr.enable_lazy_eviction && meta.lazy_space() > 0) {
    ++counters_.evict_lazy_wb;
    dram_write(now, line, kCachelineBytes, true);
    cmt_.add_lazy_line(block, line_in_block(line));
    meta.lazy_count = static_cast<uint8_t>(meta.lazy_count + 1);
    return;
  }

  // Case 3: block compressed in memory, no lazy space: fetch, merge,
  // recompress, write back.
  if (meta.compressed()) {
    ++counters_.evict_fetch_recompress;
    const uint32_t lines = meta.size_lines + meta.lazy_count;
    dram_read(now, block, lines * kCachelineBytes, true);
    ++counters_.decompressions;
    const CompressOutcome out = compress_block_values(block);
    if (out.lines > 0) {
      dram_write(now, block, out.lines * kCachelineBytes, true);
      meta.size_lines = static_cast<uint8_t>(out.lines);
      meta.method = out.method;
      meta.bias = out.bias;
      meta.failed = 0;
      meta.skipped = 0;
    } else {
      dram_write(now, block, kBlockBytes, true);
      meta.method = Method::kUncompressed;
      meta.size_lines = 0;
      meta.failed = std::min<uint32_t>(meta.failed + 1, 15);
    }
    meta.lazy_count = 0;
    cmt_.clear_lazy_lines(block);
    return;
  }

  // Case 4: block is uncompressed in memory. Consult the failure history to
  // decide whether to attempt compression at all (Sec. 3.5). This path only
  // touches memory (no LLC re-insertion), so it is safe at any depth.
  if (should_skip_attempt(meta)) {
    ++counters_.evict_uncompressed_wb;
    dram_write(now, line, kCachelineBytes, true);
    return;
  }

  // Attempt: missing lines of the block must be read from memory first.
  const uint32_t resident =
      static_cast<uint32_t>(llc_.ucls_of_block(block, /*dirty_only=*/false).size());
  const uint32_t missing = kBlockLines - std::min<uint32_t>(resident + 1, kBlockLines);
  if (missing > 0) dram_read(now, block, missing * kCachelineBytes, true);
  const CompressOutcome out = compress_block_values(block);
  if (out.lines > 0) {
    ++counters_.evict_fetch_recompress;
    dram_write(now, block, out.lines * kCachelineBytes, true);
    meta.method = out.method;
    meta.bias = out.bias;
    meta.size_lines = static_cast<uint8_t>(out.lines);
    meta.failed = 0;
    meta.skipped = 0;
    meta.lazy_count = 0;
    cmt_.clear_lazy_lines(block);
    // Other dirty UCLs of the block were folded into the written image.
    for (uint64_t l : llc_.ucls_of_block(block, /*dirty_only=*/true))
      llc_.ucl_mark_clean(l);
  } else {
    ++counters_.evict_uncompressed_wb;
    dram_write(now, line, kCachelineBytes, true);
    meta.failed = std::min<uint32_t>(meta.failed + 1, 15);
    meta.skipped = 0;
  }
}

void AvrSystem::handle_cms_block_evict(uint64_t now, uint64_t block, bool dirty,
                                       int depth) {
  ++counters_.cms_block_evictions;
  if (!dirty) return;  // memory still holds a valid compressed image

  // Decompress on chip, overlay the block's dirty UCLs, recompress, write
  // back to memory (Sec. 3.5). Backing values are already current.
  ++counters_.decompressions;
  BlockMeta& meta = cmt_.lookup(block);
  const CompressOutcome out = compress_block_values(block);
  if (out.lines > 0) {
    dram_write(now, block, out.lines * kCachelineBytes, true);
    meta.method = out.method;
    meta.bias = out.bias;
    meta.size_lines = static_cast<uint8_t>(out.lines);
    meta.failed = 0;
    meta.skipped = 0;
  } else {
    dram_write(now, block, kBlockBytes, true);
    meta.method = Method::kUncompressed;
    meta.size_lines = 0;
    meta.failed = std::min<uint32_t>(meta.failed + 1, 15);
  }
  meta.lazy_count = 0;
  cmt_.clear_lazy_lines(block);
  for (uint64_t l : llc_.ucls_of_block(block, /*dirty_only=*/true))
    llc_.ucl_mark_clean(l);
  (void)depth;
}

// ---------------------------------------------------------------------------

StatGroup AvrSystem::stats() const {
  StatGroup g("avr_system");
  g.add_nonzero("requests", counters_.requests);
  g.add_nonzero("approx_requests", counters_.approx_requests);
  g.add_nonzero("req_hit_dbuf", counters_.req_hit_dbuf);
  g.add_nonzero("req_hit_ucl", counters_.req_hit_ucl);
  g.add_nonzero("req_hit_ucl_other", counters_.req_hit_ucl_other);
  g.add_nonzero("req_hit_compressed", counters_.req_hit_compressed);
  g.add_nonzero("req_miss", counters_.req_miss);
  g.add_nonzero("req_miss_other", counters_.req_miss_other);
  g.add_nonzero("hit_compressed_latency_total", counters_.hit_compressed_latency_total);
  g.add_nonzero("decompressions", counters_.decompressions);
  g.add_nonzero("block_fetches", counters_.block_fetches);
  g.add_nonzero("block_fetch_lines", counters_.block_fetch_lines);
  g.add_nonzero("traffic_approx_bytes", counters_.traffic_approx_bytes);
  g.add_nonzero("traffic_other_bytes", counters_.traffic_other_bytes);
  g.add_nonzero("compress_attempts", counters_.compress_attempts);
  g.add_nonzero("compress_successes", counters_.compress_successes);
  g.add_nonzero("compress_failures", counters_.compress_failures);
  // Per-method histogram, zero-omitting and gated on the BDI-hybrid flag:
  // RunMetrics.detail is persisted in result caches and compared bit for bit
  // (--assert-same, the pinned stats tests), so every configuration that
  // existed before the two-tier method layer must keep its exact snapshot.
  if (cfg_.avr.enable_bdi_hybrid) {
    g.add_nonzero("blocks_1d", counters_.blocks_1d);
    g.add_nonzero("blocks_2d", counters_.blocks_2d);
    g.add_nonzero("blocks_bdi", counters_.blocks_bdi);
  }
  g.add_nonzero("attempts_skipped", counters_.attempts_skipped);
  g.add_nonzero("approx_evictions", counters_.approx_evictions);
  g.add_nonzero("evict_other_wb", counters_.evict_other_wb);
  g.add_nonzero("evict_recompress", counters_.evict_recompress);
  g.add_nonzero("evict_lazy_wb", counters_.evict_lazy_wb);
  g.add_nonzero("evict_fetch_recompress", counters_.evict_fetch_recompress);
  g.add_nonzero("evict_uncompressed_wb", counters_.evict_uncompressed_wb);
  g.add_nonzero("cms_block_evictions", counters_.cms_block_evictions);
  g.add_nonzero("pfe_promotions", counters_.pfe_promotions);
  g.add_nonzero("pfe_lines", counters_.pfe_lines);
  return g;
}

void AvrSystem::run_pfe(uint64_t now, int depth) {
  if (!dbuf_.valid()) return;
  if (!cfg_.avr.enable_pfe) return;
  if (dbuf_.requested_count() < cfg_.avr.pfe_threshold) return;
  ++counters_.pfe_promotions;
  const uint64_t block = dbuf_.block();
  std::vector<LlcVictim> victims;
  for (uint32_t cl = 0; cl < kBlockLines; ++cl) {
    const uint64_t line = block + cl * kCachelineBytes;
    if (dbuf_.line_in_llc(line) || llc_.ucl_present(line)) continue;
    llc_.ucl_insert(line, /*dirty=*/false, victims);
    ++counters_.pfe_lines;
  }
  process_victims(now, victims, depth + 1);
}

void AvrSystem::drain(uint64_t now) {
  dbuf_.invalidate();
  // First write back dirty compressed images (this also folds in and cleans
  // their dirty UCLs), then the remaining dirty UCLs.
  for (const LlcVictim& v : llc_.all_resident())
    if (v.kind == LlcVictim::kCmsBlock && v.dirty) {
      handle_cms_block_evict(now, v.addr, true, 0);
      llc_.cms_remove(v.addr);
    }
  for (const LlcVictim& v : llc_.all_resident())
    if (v.kind == LlcVictim::kUcl && v.dirty) {
      handle_dirty_ucl(now, v.addr, kMaxDepth);  // no LLC re-insertions
      llc_.ucl_mark_clean(v.addr);
    }
}

}  // namespace avr
