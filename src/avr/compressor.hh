// The AVR compressor / decompressor module (Sec. 3.3, Fig. 4), structured
// as the staged pipeline the hardware synthesizes:
//
//   compress():  stage 1  bias exponents            (shared by all variants)
//                stage 2  float -> Q16.16 batch     (shared by all variants)
//                per lossy variant from the method table:
//                stage 3  summarize (downsample)
//                stage 4  reconstruct kernel        (same kernel the
//                                                    decompressor runs)
//                stage 5  integer-domain error check + incremental outlier
//                         scan (aborts the variant the moment the outlier
//                         budget is exceeded)
//                pick the best passing variant;
//                fallback  when every lossy variant failed and
//                          enable_bdi_hybrid is set, encode the raw bit
//                          image losslessly with BDI (src/lossless) — an
//                          exact encoding, so the error path of stages 3-5
//                          short-circuits entirely.
//   reconstruct(): summary -> table-driven fixed-point interpolation ->
//                fixed-to-float -> unbias -> overlay outliers per bitmap.
//                Lossless-exact encodings reconstruct to the stored image
//                itself, so reconstruct() is a documented no-op for them.
//
// The class itself stays a pure function of its inputs (no architectural
// state), so the LLC-side machinery can reuse one instance everywhere. All
// intermediate block-sized buffers live in a caller-owned CompressorScratch:
// the per-event hot paths (AvrSystem's compress_block_values) thread one
// scratch through every attempt, so a compression event performs zero heap
// allocations.
//
// The method layer is two-tiered (avr/method.hh): new *lossy* methods plug
// in by adding a Method enum value, an AvrConfig enable flag and a
// kMethodVariants row; new *lossless* methods add a fallback stage like the
// BDI-hybrid's plus a size-model arm in method_lines(). compress()'s call
// sites are method-agnostic either way — they consume lines() only.
#pragma once

#include <array>
#include <optional>
#include <span>

#include "avr/compressed_block.hh"
#include "common/config.hh"
#include "common/fixed_point.hh"

namespace avr {

/// A successful compression: the encoded block plus the quality the error
/// check measured (compress() returns the best passing attempt).
struct CompressionAttempt {
  CompressedBlock block;
  double avg_error = 0.0;  // mean mantissa-relative error of non-outliers
};

/// Caller-owned working set of the compression pipeline: the biased float
/// image, its fixed-point conversion (both shared across variants), the
/// per-variant reconstruction, and the candidate encoding the error check
/// fills in place. Everything is a flat array (structure-of-arrays), sized
/// for one 256-value block; reusing one scratch across events keeps the
/// datapath allocation-free and its working set cache-resident.
struct CompressorScratch {
  std::array<float, kValuesPerBlock> biased;
  std::array<Fixed32, kValuesPerBlock> fixed;
  std::array<Fixed32, kValuesPerBlock> recon;
  /// Outlier bit images the dispatched error-scan kernel collects before
  /// they are pushed (in block order) into the candidate's outlier list.
  std::array<uint32_t, kMaxBlockOutliers> outlier_bits;
  CompressionAttempt candidate;
  CompressionAttempt best;
};

/// One row of the *lossy-tier* method dispatch table: how to summarize a
/// fixed-point block and how to reconstruct it, plus the AvrConfig flag
/// gating the variant. Table order is selection-preference order on ties
/// (2D first, matching the hardware's preference for spatial locality).
/// Lossless-exact methods have no row here — they carry no summary and
/// reconstruct to the stored image itself (see the fallback stage above).
struct MethodVariant {
  Method method;
  bool AvrConfig::*enabled;
  std::array<Fixed32, kSummaryValues> (*summarize)(
      std::span<const Fixed32, kValuesPerBlock>);
  void (*reconstruct)(const std::array<Fixed32, kSummaryValues>&,
                      std::span<Fixed32, kValuesPerBlock>);
};

/// The registered variants, in preference order.
std::span<const MethodVariant> method_variants();

/// The table row implementing `m` (1D row for unknown methods, mirroring
/// the legacy decompressor's default interpolation).
const MethodVariant& variant_for(Method m);

class Compressor {
 public:
  explicit Compressor(const AvrConfig& cfg) : cfg_(cfg) {}

  /// Tries to compress a block of 256 values, reusing `scratch` for every
  /// intermediate buffer. Returns std::nullopt when no enabled variant
  /// meets the T1/T2 thresholds within 8 lines (the block then stays
  /// uncompressed, Fig. 2b) — unless cfg.enable_bdi_hybrid is set and the
  /// raw bit image BDI-encodes within 8 lines, in which case the result is
  /// an exact Method::kBdiHybrid encoding with avg_error == 0.
  std::optional<CompressionAttempt> compress(
      std::span<const float, kValuesPerBlock> vals, DType dtype,
      CompressorScratch& scratch) const;

  /// Convenience overload with a private stack scratch (tests, examples,
  /// one-off calls; per-event paths should thread a persistent scratch).
  std::optional<CompressionAttempt> compress(
      std::span<const float, kValuesPerBlock> vals,
      DType dtype = DType::kFloat32) const {
    CompressorScratch scratch;
    return compress(vals, dtype, scratch);
  }

  /// Reconstructs the approximate block values: interpolated summary with
  /// outliers overlaid exactly. For lossless-exact encodings (BDI-hybrid)
  /// this is a no-op: the caller's backing data IS the exact reconstruction
  /// (nothing of the image is stored), so `out` is left untouched.
  void reconstruct(const CompressedBlock& cb,
                   std::span<float, kValuesPerBlock> out) const;

  /// Per-value outlier test of Sec. 3.3: sign and exponent must match and
  /// the mantissa difference must stay below the N-th most significant
  /// mantissa bit (error < 1/2^N). Exposed for tests.
  bool value_is_outlier(float original, float approx) const;

  /// The individual-value threshold T1 = 1/2^N as a fraction.
  double t1() const { return 1.0 / static_cast<double>(1u << cfg_.t1_mantissa_msbit); }
  /// Block-average threshold T2 = T1/2 (paper: T1 = 2*T2).
  double t2() const { return t1() / 2.0; }

 private:
  /// Runs stages 3-5 of one variant against the shared fixed-point image in
  /// `scratch`, filling scratch.candidate. False when the variant fails the
  /// outlier budget or a threshold.
  bool try_method(const MethodVariant& variant,
                  std::span<const float, kValuesPerBlock> original,
                  int8_t bias, DType dtype, CompressorScratch& scratch) const;

  AvrConfig cfg_;
};

}  // namespace avr
