// The AVR compressor / decompressor module (Sec. 3.3, Fig. 4).
//
// compress():  bias exponents -> float-to-fixed -> downsample (1D and 2D
//              variants in parallel) -> reconstruct -> error check ->
//              outlier selection -> pick the best passing variant.
// reconstruct(): summary -> fixed-point interpolation -> fixed-to-float ->
//              unbias -> overlay outliers per the bitmap.
//
// The class is a pure function of its inputs (no architectural state), so
// the LLC-side machinery can reuse one instance everywhere.
#pragma once

#include <optional>
#include <span>

#include "avr/compressed_block.hh"
#include "common/config.hh"
#include "common/fixed_point.hh"

namespace avr {

/// A successful compression: the encoded block plus the quality the error
/// check measured (compress() returns the best passing attempt).
struct CompressionAttempt {
  CompressedBlock block;
  double avg_error = 0.0;  // mean mantissa-relative error of non-outliers
};

class Compressor {
 public:
  explicit Compressor(const AvrConfig& cfg) : cfg_(cfg) {}

  /// Tries to compress a block of 256 values. Returns std::nullopt when no
  /// enabled variant meets the T1/T2 thresholds within 8 lines
  /// (the block then stays uncompressed, Fig. 2b).
  std::optional<CompressionAttempt> compress(
      std::span<const float, kValuesPerBlock> vals,
      DType dtype = DType::kFloat32) const;

  /// Reconstructs the approximate block values: interpolated summary with
  /// outliers overlaid exactly.
  void reconstruct(const CompressedBlock& cb,
                   std::span<float, kValuesPerBlock> out) const;

  /// Per-value outlier test of Sec. 3.3: sign and exponent must match and
  /// the mantissa difference must stay below the N-th most significant
  /// mantissa bit (error < 1/2^N). Exposed for tests.
  bool value_is_outlier(float original, float approx) const;

  /// The individual-value threshold T1 = 1/2^N as a fraction.
  double t1() const { return 1.0 / static_cast<double>(1u << cfg_.t1_mantissa_msbit); }
  /// Block-average threshold T2 = T1/2 (paper: T1 = 2*T2).
  double t2() const { return t1() / 2.0; }

 private:
  std::optional<CompressionAttempt> try_method(
      Method m, std::span<const float, kValuesPerBlock> original,
      std::span<const Fixed32, kValuesPerBlock> fixed, int8_t bias,
      DType dtype) const;

  AvrConfig cfg_;
};

}  // namespace avr
