#include "dram/dram.hh"

#include <algorithm>
#include <cassert>

#include "common/types.hh"

namespace avr {

Dram::Dram(const DramConfig& cfg) : cfg_(cfg) {
  channels_.resize(cfg.channels);
  for (auto& ch : channels_) ch.banks.resize(cfg.banks_per_channel);
  t_cl_ = uint64_t{cfg.t_cl} * cfg.cpu_per_dram_cycle;
  t_rcd_ = uint64_t{cfg.t_rcd} * cfg.cpu_per_dram_cycle;
  t_rp_ = uint64_t{cfg.t_rp} * cfg.cpu_per_dram_cycle;
  t_burst_ = uint64_t{cfg.t_burst} * cfg.cpu_per_dram_cycle;
}

uint32_t Dram::channel_of(uint64_t addr) const {
  // Channel interleaving at memory-block (1 KB) granularity so a whole AVR
  // block transfer stays on one channel and streams from one row.
  return static_cast<uint32_t>((addr / kBlockBytes) % cfg_.channels);
}

uint32_t Dram::bank_of(uint64_t addr) const {
  const uint64_t per_channel = addr / (kBlockBytes * cfg_.channels);
  return static_cast<uint32_t>((per_channel / (cfg_.row_bytes / kBlockBytes)) %
                               cfg_.banks_per_channel);
}

uint64_t Dram::row_of(uint64_t addr) const {
  const uint64_t per_channel = addr / (kBlockBytes * cfg_.channels);
  return per_channel / (cfg_.row_bytes / kBlockBytes) / cfg_.banks_per_channel;
}

uint64_t Dram::access(uint64_t now, uint64_t addr, uint32_t bytes, bool is_write,
                      uint64_t* stream_done) {
  Channel& ch = channels_[channel_of(addr)];
  Bank& bank = ch.banks[bank_of(addr)];
  const uint64_t row = row_of(addr);

  uint64_t t = std::max<uint64_t>(now + cfg_.controller_latency, bank.ready_at);

  if (!bank.row_open) {
    t += t_rcd_;  // activate
    stats_.add("activations");
    bank.row_open = true;
    bank.open_row = row;
  } else if (bank.open_row != row) {
    t += t_rp_ + t_rcd_;  // precharge + activate
    stats_.add("activations");
    stats_.add("row_conflicts");
    bank.open_row = row;
  } else {
    stats_.add("row_hits");
  }

  // Transfer granularity is half a cacheline (32 B, DDR4 burst-chop), so the
  // Truncate baseline's 32 B line transfers occupy the bus for half the time.
  const uint64_t half_burst = std::max<uint64_t>(t_burst_ / 2, 1);
  const uint32_t chops = static_cast<uint32_t>((bytes + 31) / 32);
  const uint64_t first_len = std::min<uint64_t>(chops, 2) * half_burst;

  // Column access; data beats occupy the channel bus back to back.
  uint64_t bus_start = std::max(t + t_cl_, ch.bus_free_at);
  const uint64_t first_done = bus_start + first_len;
  const uint64_t all_done = bus_start + uint64_t{chops} * half_burst;

  ch.bus_free_at = all_done;
  ch.busy_cycles += uint64_t{chops} * half_burst;
  bank.ready_at = all_done;
  if (stream_done) *stream_done = all_done;

  stats_.add(is_write ? "writes" : "reads");
  stats_.add(is_write ? "bytes_written" : "bytes_read", uint64_t{chops} * 32);
  return first_done - now;
}

uint64_t Dram::read(uint64_t now, uint64_t addr, uint32_t bytes) {
  assert(bytes > 0);
  uint64_t stream_done = 0;
  const uint64_t lat = access(now, addr, bytes, /*is_write=*/false, &stream_done);
  stats_.add("read_latency_total", lat);
  return lat;
}

uint64_t Dram::write(uint64_t now, uint64_t addr, uint32_t bytes) {
  assert(bytes > 0);
  uint64_t stream_done = 0;
  return access(now, addr, bytes, /*is_write=*/true, &stream_done);
}

uint64_t Dram::max_channel_busy() const {
  uint64_t m = 0;
  for (const auto& ch : channels_) m = std::max(m, ch.busy_cycles);
  return m;
}

}  // namespace avr
