#include "dram/dram.hh"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>

#include "common/types.hh"

namespace avr {
namespace {

uint32_t checked_log2(uint64_t v, const char* what) {
  if (v == 0 || !std::has_single_bit(v))
    throw std::invalid_argument(std::string("DramConfig: ") + what +
                                " must be a nonzero power of two");
  return static_cast<uint32_t>(std::countr_zero(v));
}

}  // namespace

Dram::Dram(const DramConfig& cfg) : cfg_(cfg) {
  // Validate the geometry up front: a bad config must fail construction with
  // a clear message, not divide by zero in the per-access address mapping
  // (row_bytes < kBlockBytes made the old bank_of/row_of divide by 0).
  channel_shift_ = checked_log2(cfg.channels, "channels");
  bank_shift_ = checked_log2(cfg.banks_per_channel, "banks_per_channel");
  const uint32_t row_shift = checked_log2(cfg.row_bytes, "row_bytes");
  block_shift_ = static_cast<uint32_t>(std::countr_zero(kBlockBytes));
  if (cfg.row_bytes < kBlockBytes)
    throw std::invalid_argument(
        "DramConfig: row_bytes must be >= the 1 KB memory block (the "
        "bank/row interleaving is block-granular)");
  blocks_per_row_shift_ = row_shift - block_shift_;
  if (cfg.cpu_per_dram_cycle == 0)
    throw std::invalid_argument("DramConfig: cpu_per_dram_cycle must be nonzero");
  channel_mask_ = cfg.channels - 1;
  bank_mask_ = cfg.banks_per_channel - 1;

  banks_.resize(uint64_t{cfg.channels} * cfg.banks_per_channel);
  buses_.resize(cfg.channels);
  t_cl_ = uint64_t{cfg.t_cl} * cfg.cpu_per_dram_cycle;
  t_rcd_ = uint64_t{cfg.t_rcd} * cfg.cpu_per_dram_cycle;
  t_rp_ = uint64_t{cfg.t_rp} * cfg.cpu_per_dram_cycle;
  t_burst_ = uint64_t{cfg.t_burst} * cfg.cpu_per_dram_cycle;
  // Transfer granularity is half a cacheline (32 B, DDR4 burst-chop), so the
  // Truncate baseline's 32 B line transfers occupy the bus for half the time.
  half_burst_ = std::max<uint64_t>(t_burst_ / 2, 1);
}

uint64_t Dram::access(uint64_t now, uint64_t addr, uint32_t bytes, bool is_write,
                      uint64_t* stream_done) {
  const uint32_t channel = channel_of(addr);
  ChannelBus& ch = buses_[channel];
  Bank& bank = banks_[uint64_t{channel} * cfg_.banks_per_channel + bank_of(addr)];
  const uint64_t row = row_of(addr);

  uint64_t t = std::max<uint64_t>(now + cfg_.controller_latency, bank.ready_at);

  if (!bank.row_open) {
    t += t_rcd_;  // activate
    ++counters_.activations;
    bank.row_open = true;
    bank.open_row = row;
  } else if (bank.open_row != row) {
    t += t_rp_ + t_rcd_;  // precharge + activate
    ++counters_.activations;
    ++counters_.row_conflicts;
    bank.open_row = row;
  } else {
    ++counters_.row_hits;
  }

  // 32 B burst chops; see half_burst_ in the constructor.
  const uint32_t chops = static_cast<uint32_t>((bytes + 31) / 32);
  const uint64_t first_len = std::min<uint64_t>(chops, 2) * half_burst_;

  // Column access; data beats occupy the channel bus back to back.
  uint64_t bus_start = std::max(t + t_cl_, ch.bus_free_at);
  const uint64_t first_done = bus_start + first_len;
  const uint64_t all_done = bus_start + uint64_t{chops} * half_burst_;

  ch.bus_free_at = all_done;
  ch.busy_cycles += uint64_t{chops} * half_burst_;
  bank.ready_at = all_done;
  if (stream_done) *stream_done = all_done;

  const uint64_t chop_bytes = uint64_t{chops} * 32;
  if (is_write) {
    ++counters_.writes;
    counters_.bytes_written += chop_bytes;
  } else {
    ++counters_.reads;
    counters_.bytes_read += chop_bytes;
  }
  return first_done - now;
}

uint64_t Dram::read(uint64_t now, uint64_t addr, uint32_t bytes) {
  assert(bytes > 0);
  uint64_t stream_done = 0;
  const uint64_t lat = access(now, addr, bytes, /*is_write=*/false, &stream_done);
  counters_.read_latency_total += lat;
  return lat;
}

uint64_t Dram::write(uint64_t now, uint64_t addr, uint32_t bytes) {
  assert(bytes > 0);
  uint64_t stream_done = 0;
  const uint64_t lat = access(now, addr, bytes, /*is_write=*/true, &stream_done);
  counters_.write_latency_total += lat;
  return lat;
}

StatGroup Dram::stats() const {
  StatGroup g("dram");
  g.add_nonzero("reads", counters_.reads);
  g.add_nonzero("writes", counters_.writes);
  g.add_nonzero("bytes_read", counters_.bytes_read);
  g.add_nonzero("bytes_written", counters_.bytes_written);
  g.add_nonzero("activations", counters_.activations);
  g.add_nonzero("row_hits", counters_.row_hits);
  g.add_nonzero("row_conflicts", counters_.row_conflicts);
  g.add_nonzero("read_latency_total", counters_.read_latency_total);
  g.add_nonzero("write_latency_total", counters_.write_latency_total);
  return g;
}

uint64_t Dram::max_channel_busy() const {
  uint64_t m = 0;
  for (const auto& ch : buses_) m = std::max(m, ch.busy_cycles);
  return m;
}

}  // namespace avr
