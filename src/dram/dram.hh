// DDR4 bank/channel timing model (DRAMSim2-class fidelity for the effects
// that matter to AVR: row-buffer locality, burst pipelining of multi-line
// block transfers, per-channel bus contention, activation energy).
//
// The model is request-driven: the caller passes the current CPU cycle and
// receives the completion latency; internal bank/channel state advances
// accordingly. Requests of up to one memory block (16 lines) are issued as
// a single call so consecutive-line transfers pipeline on the open row,
// which is precisely why AVR's "one request per block" access pattern wins.
#pragma once

#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"

namespace avr {

/// Plain-field counters, bumped on every access: this model sits behind
/// every LLC miss of every design point, so no string-keyed maps here
/// (same convention as CacheCounters in cache/set_assoc_cache.hh).
struct DramCounters {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t activations = 0;
  uint64_t row_hits = 0;
  uint64_t row_conflicts = 0;
  uint64_t read_latency_total = 0;
  uint64_t write_latency_total = 0;
};

class Dram {
 public:
  /// Validates the geometry: channels, banks_per_channel and row_bytes must
  /// be nonzero powers of two, row_bytes >= kBlockBytes (the bank/row mapping
  /// divides by row_bytes / kBlockBytes), and the clock ratio nonzero.
  /// Throws std::invalid_argument otherwise.
  explicit Dram(const DramConfig& cfg);

  /// Issue a read of `bytes` starting at `addr` at CPU time `now`.
  /// Returns the latency in CPU cycles until the *first* critical line is
  /// on chip (subsequent lines of a block stream behind it).
  uint64_t read(uint64_t now, uint64_t addr, uint32_t bytes);

  /// Issue a (posted) write; returns the occupancy latency, which the core
  /// never waits on but which keeps banks/bus busy.
  uint64_t write(uint64_t now, uint64_t addr, uint32_t bytes);

  const DramCounters& counters() const { return counters_; }
  /// Snapshot of the counters as a StatGroup (cold path, for reporting).
  /// Keys match the historical string-keyed counters; zero-valued counters
  /// are omitted, exactly as a never-touched map key used to be.
  StatGroup stats() const;

  uint64_t bytes_read() const { return counters_.bytes_read; }
  uint64_t bytes_written() const { return counters_.bytes_written; }
  uint64_t total_bytes() const { return bytes_read() + bytes_written(); }
  uint64_t activations() const { return counters_.activations; }

  /// Busy time of the most loaded channel, for bandwidth-utilization stats.
  uint64_t max_channel_busy() const;

 private:
  struct Bank {
    bool row_open = false;
    uint64_t open_row = 0;
    uint64_t ready_at = 0;  // CPU cycle when the bank can accept a command
  };
  // Channel bus state, kept separate from the flat bank array: banks are
  // indexed [channel * banks_per_channel + bank] so the per-access lookup is
  // one indexed load instead of a vector-of-vectors pointer chase.
  struct ChannelBus {
    uint64_t bus_free_at = 0;
    uint64_t busy_cycles = 0;
  };

  /// One transaction (<= row) on a single bank; returns completion time of
  /// the first 64 B beat.
  uint64_t access(uint64_t now, uint64_t addr, uint32_t bytes, bool is_write,
                  uint64_t* stream_done);

  // Address mapping, all shift/mask: the constructor validated that every
  // divisor is a power of two.
  uint32_t channel_of(uint64_t addr) const {
    return static_cast<uint32_t>((addr >> block_shift_) & channel_mask_);
  }
  uint32_t bank_of(uint64_t addr) const {
    return static_cast<uint32_t>(
        (addr >> (block_shift_ + channel_shift_ + blocks_per_row_shift_)) &
        bank_mask_);
  }
  uint64_t row_of(uint64_t addr) const {
    return addr >>
           (block_shift_ + channel_shift_ + blocks_per_row_shift_ + bank_shift_);
  }

  DramConfig cfg_;
  std::vector<Bank> banks_;        // channels * banks_per_channel, flat
  std::vector<ChannelBus> buses_;  // one per channel
  DramCounters counters_;
  // Timings pre-converted to CPU cycles.
  uint64_t t_cl_, t_rcd_, t_rp_, t_burst_, half_burst_;
  // Address-mapping shifts/masks, precomputed at construction.
  uint32_t block_shift_ = 0;           // log2(kBlockBytes)
  uint32_t channel_shift_ = 0;         // log2(channels)
  uint32_t blocks_per_row_shift_ = 0;  // log2(row_bytes / kBlockBytes)
  uint32_t bank_shift_ = 0;            // log2(banks_per_channel)
  uint64_t channel_mask_ = 0;
  uint64_t bank_mask_ = 0;
};

}  // namespace avr
