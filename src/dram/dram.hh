// DDR4 bank/channel timing model (DRAMSim2-class fidelity for the effects
// that matter to AVR: row-buffer locality, burst pipelining of multi-line
// block transfers, per-channel bus contention, activation energy).
//
// The model is request-driven: the caller passes the current CPU cycle and
// receives the completion latency; internal bank/channel state advances
// accordingly. Requests of up to one memory block (16 lines) are issued as
// a single call so consecutive-line transfers pipeline on the open row,
// which is precisely why AVR's "one request per block" access pattern wins.
#pragma once

#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"

namespace avr {

class Dram {
 public:
  explicit Dram(const DramConfig& cfg);

  /// Issue a read of `bytes` starting at `addr` at CPU time `now`.
  /// Returns the latency in CPU cycles until the *first* critical line is
  /// on chip (subsequent lines of a block stream behind it).
  uint64_t read(uint64_t now, uint64_t addr, uint32_t bytes);

  /// Issue a (posted) write; returns the occupancy latency, which the core
  /// never waits on but which keeps banks/bus busy.
  uint64_t write(uint64_t now, uint64_t addr, uint32_t bytes);

  const StatGroup& stats() const { return stats_; }
  StatGroup& stats() { return stats_; }

  uint64_t bytes_read() const { return stats_.get("bytes_read"); }
  uint64_t bytes_written() const { return stats_.get("bytes_written"); }
  uint64_t total_bytes() const { return bytes_read() + bytes_written(); }
  uint64_t activations() const { return stats_.get("activations"); }

  /// Busy time of the most loaded channel, for bandwidth-utilization stats.
  uint64_t max_channel_busy() const;

 private:
  struct Bank {
    bool row_open = false;
    uint64_t open_row = 0;
    uint64_t ready_at = 0;  // CPU cycle when the bank can accept a command
  };
  struct Channel {
    std::vector<Bank> banks;
    uint64_t bus_free_at = 0;
    uint64_t busy_cycles = 0;
  };

  /// One transaction (<= row) on a single bank; returns completion time of
  /// the first 64 B beat.
  uint64_t access(uint64_t now, uint64_t addr, uint32_t bytes, bool is_write,
                  uint64_t* stream_done);

  uint32_t channel_of(uint64_t addr) const;
  uint32_t bank_of(uint64_t addr) const;
  uint64_t row_of(uint64_t addr) const;

  DramConfig cfg_;
  std::vector<Channel> channels_;
  StatGroup stats_{"dram"};
  // Timings pre-converted to CPU cycles.
  uint64_t t_cl_, t_rcd_, t_rp_, t_burst_;
};

}  // namespace avr
