// Abstract interface of the shared-LLC + memory-controller subsystem.
// Each evaluated design point (baseline, Truncate, Doppelganger, AVR /
// ZeroAVR) provides its own implementation; the private L1/L2 hierarchy and
// the interval core are design-independent.
#pragma once

#include <cstdint>

#include "common/stats.hh"
#include "dram/dram.hh"

namespace avr {

class LlcSystem {
 public:
  virtual ~LlcSystem() = default;

  /// A demand read or write-allocate request for cacheline `line` arriving
  /// from a private L2 at CPU time `now`. Returns the latency in cycles
  /// until the line is available to the L2.
  virtual uint64_t request(uint64_t now, uint64_t line, bool write) = 0;

  /// A dirty writeback of cacheline `line` arriving from a private L2.
  /// Posted: the core does not wait, but the operation generates traffic.
  virtual void writeback(uint64_t now, uint64_t line) = 0;

  /// Drain all dirty state to memory (end of simulation).
  virtual void drain(uint64_t now) = 0;

  /// Did the *last* request() call hit on chip (LLC or DBUF)?
  /// Used for MPKI accounting by the hierarchy.
  virtual bool last_was_miss() const = 0;

  /// Snapshot of the design's counters (cold path: built on demand from the
  /// plain-field counters every implementation keeps on its hot paths —
  /// never call this per access). Zero-valued counters are omitted.
  virtual StatGroup stats() const = 0;
  virtual Dram& dram() = 0;
  virtual const Dram& dram() const = 0;
};

}  // namespace avr
