#include "harness/fsck.hh"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <tuple>

#include "common/file_lock.hh"

namespace avr {
namespace {

// Full point identity: fsck audits whole files, never config-filtered, so
// the key must carry the fingerprint the loaders filter on.
using PointId = std::tuple<std::string, int, uint64_t>;

PointId id_of(const std::string& wl, Design d, uint64_t cfg) {
  return {wl, static_cast<int>(d), cfg};
}

// Metric-value identity, wall-clock excluded — the same definition
// avr_sweep --assert-same uses: encoded-line comparison keeps it in
// lockstep with the cache schema.
std::string value_identity(ExperimentResult r) {
  r.wall_seconds = 0;
  return encode_result_line(r);
}

struct ScanState {
  FsckReport report;
  std::map<PointId, ExperimentResult> last_result;  // load semantics: last wins
  std::map<PointId, std::string> last_identity;
  std::map<PointId, ClaimRecord> governing;
};

bool scan(const std::string& path, ScanState* st) {
  errno = 0;
  std::ifstream in(path);
  if (!in) {
    st->report.io_error = std::strerror(errno ? errno : EIO);
    return false;
  }
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    ++st->report.total_lines;
    ExperimentResult r;
    ClaimRecord c;
    std::string reason;
    int version = 0;
    switch (classify_cache_line(line, &r, &c, &reason, &version)) {
      case CacheLineKind::kBlank:
        ++st->report.blank_lines;
        break;
      case CacheLineKind::kForeign:
        ++st->report.foreign_lines;
        break;
      case CacheLineKind::kCorrupt:
        st->report.corrupt.push_back({line_no, std::move(reason)});
        break;
      case CacheLineKind::kResult: {
        ++st->report.result_versions[version];
        const PointId id = id_of(r.workload, r.design, r.config_hash);
        std::string ident = value_identity(r);
        auto it = st->last_identity.find(id);
        if (it != st->last_identity.end()) {
          if (it->second == ident)
            ++st->report.duplicate_results;
          else
            ++st->report.conflicting_results;
        }
        st->last_identity[id] = std::move(ident);
        st->last_result[id] = std::move(r);
        break;
      }
      case CacheLineKind::kClaim: {
        ++st->report.claims;
        const PointId id = id_of(c.workload, c.design, c.config_hash);
        if (st->governing.count(id)) ++st->report.superseded_claims;
        st->governing[id] = std::move(c);
        break;
      }
    }
  }
  return true;
}

void finalize(ScanState* st, uint64_t now) {
  for (const auto& [id, c] : st->governing) {
    if (st->last_result.count(id))
      ++st->report.moot_claims;
    else if (c.expired(now))
      ++st->report.dangling_expired;
    else
      ++st->report.dangling_live;
  }
}

}  // namespace

size_t FsckReport::legacy_results() const {
  size_t n = 0;
  for (const auto& [version, count] : result_versions)
    if (version != kResultCacheVersion) n += count;
  return n;
}

FsckReport fsck_cache(const std::string& path, uint64_t now) {
  ScanState st;
  if (scan(path, &st)) finalize(&st, now);
  return std::move(st.report);
}

void print_fsck_report(std::FILE* out, const std::string& path,
                       const FsckReport& r) {
  std::fprintf(out, "== fsck %s ==\n", path.c_str());
  if (!r.io_error.empty()) {
    std::fprintf(out, "  UNREADABLE: %s\n", r.io_error.c_str());
    return;
  }
  std::fprintf(out, "  lines: %zu total (%zu blank, %zu foreign)\n",
               r.total_lines, r.blank_lines, r.foreign_lines);
  std::fprintf(out, "  results:");
  size_t total_results = 0;
  for (const auto& [version, count] : r.result_versions) {
    std::fprintf(out, " v%d=%zu%s", version, count,
                 version != kResultCacheVersion ? " (legacy)" : "");
    total_results += count;
  }
  if (r.result_versions.empty()) std::fprintf(out, " none");
  std::fprintf(out, "; %zu duplicate, %zu CONFLICTING\n", r.duplicate_results,
               r.conflicting_results);
  std::fprintf(out,
               "  claims: %zu (%zu superseded, %zu moot, %zu live dangling, "
               "%zu EXPIRED dangling)\n",
               r.claims, r.superseded_claims, r.moot_claims, r.dangling_live,
               r.dangling_expired);
  constexpr size_t kMaxListed = 20;
  std::fprintf(out, "  corrupt: %zu quarantined line(s)\n", r.corrupt.size());
  for (size_t i = 0; i < r.corrupt.size() && i < kMaxListed; ++i)
    std::fprintf(out, "    line %zu: %s\n", r.corrupt[i].line_no,
                 r.corrupt[i].reason.c_str());
  if (r.corrupt.size() > kMaxListed)
    std::fprintf(out, "    ... and %zu more\n", r.corrupt.size() - kMaxListed);
  if (r.has_issues())
    std::fprintf(out, "  verdict: NEEDS ATTENTION (run --fsck --repair)\n");
  else if (r.needs_repair())
    std::fprintf(out,
                 "  verdict: clean (a --repair would tidy legacy/duplicate/"
                 "stale-claim clutter)\n");
  else
    std::fprintf(out, "  verdict: clean\n");
  (void)total_results;
}

bool repair_cache(const std::string& path, uint64_t now, std::string* error) {
  // Under the cache flock: writers are serialized out while we read and
  // swap the file, so no concurrent append can fall between scan and
  // rename. (Writers re-open per append, so they pick up the new inode.)
  FileLock lock = FileLock::acquire_with_retry(path, O_RDWR);
  if (!lock.ok()) {
    *error = "cannot lock " + path + ": " + lock.error_detail();
    return false;
  }
  ScanState st;
  if (!scan(path, &st)) {
    *error = "cannot read " + path + ": " + st.report.io_error;
    return false;
  }
  finalize(&st, now);

  std::string out;
  for (const auto& [id, r] : st.last_result) {
    out += encode_result_line(r);  // re-encoded at the current version
    out += '\n';
  }
  for (const auto& [id, c] : st.governing) {
    // Keep only live dangling claims: their owner may be mid-simulation.
    if (st.last_result.count(id) || c.expired(now)) continue;
    out += encode_claim_line(c);
    out += '\n';
  }

  const std::string tmp =
      path + ".repair." + std::to_string(static_cast<long>(::getpid())) +
      ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (!f) {
    *error = "cannot create " + tmp + ": " + std::strerror(errno);
    return false;
  }
  const bool written = std::fwrite(out.data(), 1, out.size(), f) == out.size();
  // The repaired cache replaces good-enough data: make sure it is durably
  // on disk before the rename makes it the only copy.
  const bool flushed = std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
  const bool closed = std::fclose(f) == 0;
  if (!written || !flushed || !closed) {
    *error = "short write to " + tmp;
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    *error = "rename " + tmp + " -> " + path + ": " + std::strerror(errno);
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace avr
