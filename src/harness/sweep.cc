#include "harness/sweep.hh"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "common/backoff.hh"
#include "harness/experiment.hh"
#include "harness/result_cache.hh"
#include "workloads/workload_registry.hh"

namespace avr {
namespace sweep {
namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= csv.size()) {
    const size_t comma = csv.find(',', start);
    const size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) out.push_back(csv.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

Shard parse_shard(const std::string& spec) {
  const size_t slash = spec.find('/');
  Shard s;
  try {
    if (slash == std::string::npos || slash == 0 || slash + 1 >= spec.size())
      throw std::invalid_argument("");
    size_t pos_i = 0, pos_n = 0;
    const std::string is = spec.substr(0, slash), ns = spec.substr(slash + 1);
    const int i = std::stoi(is, &pos_i);
    const int n = std::stoi(ns, &pos_n);
    if (pos_i != is.size() || pos_n != ns.size() || i < 0 || n <= 0 || i >= n)
      throw std::invalid_argument("");
    s.index = static_cast<unsigned>(i);
    s.count = static_cast<unsigned>(n);
  } catch (const std::exception&) {
    throw std::invalid_argument("bad shard spec '" + spec +
                                "' (want i/N with 0 <= i < N)");
  }
  return s;
}

std::vector<Point> full_grid(const std::vector<std::string>& workloads,
                             const std::vector<Design>& designs) {
  std::vector<Point> grid;
  grid.reserve(workloads.size() * designs.size());
  for (const auto& w : workloads)
    for (Design d : designs) grid.emplace_back(w, d);
  return grid;
}

std::vector<Point> shard_slice(const std::vector<Point>& grid, Shard s) {
  std::vector<Point> slice;
  slice.reserve(grid.size() / s.count + 1);
  for (size_t i = s.index; i < grid.size(); i += s.count) slice.push_back(grid[i]);
  return slice;
}

std::vector<VariantPoint> full_variant_grid(
    const std::vector<int>& t1_values, const std::vector<std::string>& workloads,
    const std::vector<Design>& designs) {
  return full_variant_grid(t1_values, {kMethodsDefault}, workloads, designs);
}

std::vector<VariantPoint> full_variant_grid(
    const std::vector<int>& t1_values, const std::vector<int>& methods_values,
    const std::vector<std::string>& workloads,
    const std::vector<Design>& designs) {
  std::vector<VariantPoint> grid;
  grid.reserve(methods_values.size() * t1_values.size() * workloads.size() *
               designs.size());
  for (int methods : methods_values)
    for (int t1 : t1_values)
      for (const auto& w : workloads)
        for (Design d : designs) grid.push_back({t1, {w, d}, methods});
  return grid;
}

std::vector<VariantPoint> shard_slice(const std::vector<VariantPoint>& grid,
                                      Shard s) {
  std::vector<VariantPoint> slice;
  slice.reserve(grid.size() / s.count + 1);
  for (size_t i = s.index; i < grid.size(); i += s.count) slice.push_back(grid[i]);
  return slice;
}

SimConfig variant_config(int t1, int methods) {
  SimConfig cfg;
  cfg.avr.t1_override = t1 < 0 ? -1 : t1;
  if (methods >= 0) {
    cfg.avr.enable_1d = (methods & kMethods1D) != 0;
    cfg.avr.enable_2d = (methods & kMethods2D) != 0;
    cfg.avr.enable_bdi_hybrid = (methods & kMethodsBdi) != 0;
  }
  return cfg;
}

std::vector<int> parse_methods_list(const std::string& csv) {
  if (csv.empty()) return {kMethodsDefault};
  std::vector<int> out;
  for (const auto& sel : split_csv(csv)) {
    int mask = 0;
    size_t start = 0;
    while (start <= sel.size()) {
      const size_t plus = sel.find('+', start);
      const size_t end = plus == std::string::npos ? sel.size() : plus;
      const std::string tok = lower(sel.substr(start, end - start));
      if (tok == "1d")
        mask |= kMethods1D;
      else if (tok == "2d")
        mask |= kMethods2D;
      else if (tok == "bdi")
        mask |= kMethodsBdi;
      else if (tok == "avr")  // the paper's lossy pair
        mask |= kMethods1D | kMethods2D;
      else
        throw std::invalid_argument(
            "bad --methods token '" + tok + "' in '" + sel +
            "' (want '+'-joined 1d/2d/bdi/avr, e.g. avr+bdi)");
      if (plus == std::string::npos) break;
      start = plus + 1;
    }
    if (mask == 0) throw std::invalid_argument("empty --methods selection");
    out.push_back(mask);
  }
  if (out.empty()) throw std::invalid_argument("empty --methods list");
  return out;
}

std::string method_set_name(int methods) {
  if (methods < 0) return "default";
  std::string name;
  auto append = [&name](const char* tok) {
    if (!name.empty()) name += '+';
    name += tok;
  };
  if (methods & kMethods1D) append("1d");
  if (methods & kMethods2D) append("2d");
  if (methods & kMethodsBdi) append("bdi");
  return name;
}

std::vector<int> parse_t1_list(const std::string& csv) {
  if (csv.empty()) return {-1};
  std::vector<int> out;
  for (const auto& tok : split_csv(csv)) {
    size_t pos = 0;
    int v = 0;
    try {
      v = std::stoi(tok, &pos);
    } catch (const std::exception&) {
      throw std::invalid_argument("bad --t1 value: " + tok);
    }
    // 0..22: an fp32 mantissa MSbit index the compressor can bound against.
    if (pos != tok.size() || v < 0 || v > 22)
      throw std::invalid_argument("bad --t1 value: " + tok +
                                  " (want an integer in 0..22)");
    out.push_back(v);
  }
  if (out.empty()) throw std::invalid_argument("empty --t1 list");
  return out;
}

Design design_from_name(const std::string& name) {
  const std::string n = lower(name);
  for (Design d : {Design::kBaseline, Design::kDoppelganger, Design::kTruncate,
                   Design::kZeroAvr, Design::kAvr})
    if (n == lower(to_string(d))) return d;
  throw std::invalid_argument("unknown design: " + name);
}

std::vector<Design> parse_design_list(const std::string& csv) {
  if (csv.empty()) return ExperimentRunner::paper_designs();
  std::vector<Design> out;
  for (const auto& name : split_csv(csv)) out.push_back(design_from_name(name));
  if (out.empty()) throw std::invalid_argument("empty design list");
  return out;
}

std::vector<std::string> parse_workload_list(const std::string& csv) {
  if (csv.empty()) return workload_names();
  const auto known = workload_names();
  std::vector<std::string> out;
  for (const auto& name : split_csv(csv)) {
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      // Not a built-in kernel: either a trace spec or a typo. Constructing
      // it is the validation — make_workload loads and checks a trace file
      // eagerly and throws a diagnosable std::invalid_argument for both
      // cases, so a bad point fails at --list/startup, never mid-sweep.
      (void)make_workload(name);
    }
    out.push_back(name);
  }
  if (out.empty()) throw std::invalid_argument("empty workload list");
  return out;
}

StealOutcome run_work_stealing(
    const std::vector<VariantPoint>& grid,
    const std::function<ExperimentRunner&(const VariantPoint&)>& runner_for,
    const std::string& cache_path, const StealOptions& opts,
    unsigned n_threads) {
  if (cache_path.empty())
    throw std::invalid_argument(
        "work stealing needs a shared cache file (claims live in it)");
  const std::string owner =
      opts.owner.empty() ? prof::default_owner() : opts.owner;

  // Resolve each point's runner, cost and lease once up front; workers then
  // scan in descending-cost order, which is exactly the longest-first
  // schedule run_points uses — but now across processes: whichever process
  // gets there first claims the expensive tail.
  const size_t n = grid.size();
  std::vector<ExperimentRunner*> runner(n);
  std::vector<double> cost(n);
  std::vector<uint64_t> lease(n);
  for (size_t i = 0; i < n; ++i) {
    runner[i] = &runner_for(grid[i]);
    cost[i] = runner[i]->cost_estimate(grid[i].point.first, grid[i].point.second);
    lease[i] = opts.lease_seconds
                   ? opts.lease_seconds
                   : static_cast<uint64_t>(std::max(30.0, 20.0 * cost[i]));
  }
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) { return cost[a] > cost[b]; });

  // Per-point state: 0 = open, 1 = reserved by a thread of this process,
  // 2 = done (result exists, ours or anyone's). The CAS 0->1 keeps two
  // threads of one process off the same point; the claim record keeps two
  // *processes* off it.
  std::vector<std::atomic<int>> state(n);
  std::atomic<size_t> open_count{n};

  StealOutcome outcome;
  std::mutex stats_mu;
  std::atomic<bool> failed{false};
  std::atomic<bool> warned_degraded{false};
  std::exception_ptr first_error;

  auto now = [] { return static_cast<uint64_t>(::time(nullptr)); };

  auto worker = [&] {
    // Scheduler-side profile: claim I/O and win/loss counters land here;
    // each simulated point installs its own sink inside run(), so point
    // time is never double-counted as scheduler time.
    prof::Totals sched;
    prof::ScopedSink sink(&sched);
    while (!failed.load(std::memory_order_relaxed) &&
           open_count.load(std::memory_order_relaxed) > 0) {
      bool progressed = false;
      for (size_t k : order) {
        if (failed.load(std::memory_order_relaxed)) break;
        int expect = 0;
        if (!state[k].compare_exchange_strong(expect, 1)) continue;
        const auto& [wl, d] = grid[k].point;
        ClaimRecord want;
        want.workload = wl;
        want.design = d;
        want.config_hash = runner[k]->config_hash();
        want.owner = owner;
        want.lease_seconds = lease[k];
        // One claim attempt per retry round; try_claim_point already rides
        // out transient lock contention internally, so kError here means
        // the cache kept failing — back off and re-try a bounded number of
        // times before giving up on coordination for this point.
        ClaimOutcome got = try_claim_point(cache_path, want, now());
        for (int attempt = 1;
             got == ClaimOutcome::kError && attempt < kIoRetryAttempts;
             ++attempt) {
          backoff_sleep(attempt - 1,
                        static_cast<uint64_t>(k) ^
                            (static_cast<uint64_t>(attempt) << 24));
          got = try_claim_point(cache_path, want, now());
        }
        if (got == ClaimOutcome::kError) {
          // Degrade, don't abort: simulate without a claim. Another process
          // may duplicate the point (waste), but never corrupt it — points
          // are deterministic and result loads duplicate-tolerant. The
          // sweep's output stays complete and correct; the persistent I/O
          // failure is reported through StealOutcome and the tool's exit
          // code, not by throwing away the run.
          if (!warned_degraded.exchange(true))
            std::fprintf(stderr,
                         "[steal] WARNING: cache %s unusable for claims "
                         "after %d attempts; degrading to uncoordinated "
                         "simulation (duplicate work possible, results stay "
                         "correct)\n",
                         cache_path.c_str(), kIoRetryAttempts);
          {
            std::lock_guard<std::mutex> lk(stats_mu);
            outcome.claim_errors++;
            outcome.degraded = true;
          }
          got = ClaimOutcome::kClaimed;
        }
        if (got == ClaimOutcome::kClaimed || got == ClaimOutcome::kReclaimed) {
          if (got == ClaimOutcome::kReclaimed)
            std::fprintf(stderr, "[steal] %s reclaims %s x %s (lease expired)\n",
                         owner.c_str(), wl.c_str(), to_string(d));
          try {
            (void)runner[k]->run(wl, d);
          } catch (...) {
            failed.store(true, std::memory_order_relaxed);
            std::lock_guard<std::mutex> lk(stats_mu);
            if (!first_error) first_error = std::current_exception();
            break;
          }
          state[k].store(2);
          open_count.fetch_sub(1);
          progressed = true;
          std::lock_guard<std::mutex> lk(stats_mu);
          outcome.simulated++;
          if (got == ClaimOutcome::kReclaimed) outcome.reclaimed++;
        } else if (got == ClaimOutcome::kDone) {
          state[k].store(2);
          open_count.fetch_sub(1);
          progressed = true;
          std::lock_guard<std::mutex> lk(stats_mu);
          outcome.done_elsewhere++;
        } else {  // kBusy (kError was degraded to kClaimed above)
          state[k].store(0);  // a live foreign claim — poll again later
        }
      }
      // Every remaining point is claimed by a live foreign owner: wait for
      // their results (or their leases) instead of hammering the flock.
      if (!progressed && open_count.load(std::memory_order_relaxed) > 0 &&
          !failed.load(std::memory_order_relaxed))
        std::this_thread::sleep_for(
            std::chrono::duration<double>(opts.poll_seconds));
    }
    std::lock_guard<std::mutex> lk(stats_mu);
    outcome.sched.merge(sched);
  };

  if (n_threads == 0) n_threads = std::thread::hardware_concurrency();
  n_threads = std::max<unsigned>(1, std::min<size_t>(n_threads, std::max<size_t>(n, 1)));
  std::vector<std::thread> pool;
  pool.reserve(n_threads - 1);
  for (unsigned t = 1; t < n_threads; ++t) pool.emplace_back(worker);
  worker();
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
  return outcome;
}

}  // namespace sweep
}  // namespace avr
