#include "harness/sweep.hh"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "harness/experiment.hh"
#include "workloads/workload_registry.hh"

namespace avr {
namespace sweep {
namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= csv.size()) {
    const size_t comma = csv.find(',', start);
    const size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) out.push_back(csv.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

Shard parse_shard(const std::string& spec) {
  const size_t slash = spec.find('/');
  Shard s;
  try {
    if (slash == std::string::npos || slash == 0 || slash + 1 >= spec.size())
      throw std::invalid_argument("");
    size_t pos_i = 0, pos_n = 0;
    const std::string is = spec.substr(0, slash), ns = spec.substr(slash + 1);
    const int i = std::stoi(is, &pos_i);
    const int n = std::stoi(ns, &pos_n);
    if (pos_i != is.size() || pos_n != ns.size() || i < 0 || n <= 0 || i >= n)
      throw std::invalid_argument("");
    s.index = static_cast<unsigned>(i);
    s.count = static_cast<unsigned>(n);
  } catch (const std::exception&) {
    throw std::invalid_argument("bad shard spec '" + spec +
                                "' (want i/N with 0 <= i < N)");
  }
  return s;
}

std::vector<Point> full_grid(const std::vector<std::string>& workloads,
                             const std::vector<Design>& designs) {
  std::vector<Point> grid;
  grid.reserve(workloads.size() * designs.size());
  for (const auto& w : workloads)
    for (Design d : designs) grid.emplace_back(w, d);
  return grid;
}

std::vector<Point> shard_slice(const std::vector<Point>& grid, Shard s) {
  std::vector<Point> slice;
  slice.reserve(grid.size() / s.count + 1);
  for (size_t i = s.index; i < grid.size(); i += s.count) slice.push_back(grid[i]);
  return slice;
}

std::vector<VariantPoint> full_variant_grid(
    const std::vector<int>& t1_values, const std::vector<std::string>& workloads,
    const std::vector<Design>& designs) {
  std::vector<VariantPoint> grid;
  grid.reserve(t1_values.size() * workloads.size() * designs.size());
  for (int t1 : t1_values)
    for (const auto& w : workloads)
      for (Design d : designs) grid.push_back({t1, {w, d}});
  return grid;
}

std::vector<VariantPoint> shard_slice(const std::vector<VariantPoint>& grid,
                                      Shard s) {
  std::vector<VariantPoint> slice;
  slice.reserve(grid.size() / s.count + 1);
  for (size_t i = s.index; i < grid.size(); i += s.count) slice.push_back(grid[i]);
  return slice;
}

SimConfig variant_config(int t1) {
  SimConfig cfg;
  cfg.avr.t1_override = t1 < 0 ? -1 : t1;
  return cfg;
}

std::vector<int> parse_t1_list(const std::string& csv) {
  if (csv.empty()) return {-1};
  std::vector<int> out;
  for (const auto& tok : split_csv(csv)) {
    size_t pos = 0;
    int v = 0;
    try {
      v = std::stoi(tok, &pos);
    } catch (const std::exception&) {
      throw std::invalid_argument("bad --t1 value: " + tok);
    }
    // 0..22: an fp32 mantissa MSbit index the compressor can bound against.
    if (pos != tok.size() || v < 0 || v > 22)
      throw std::invalid_argument("bad --t1 value: " + tok +
                                  " (want an integer in 0..22)");
    out.push_back(v);
  }
  if (out.empty()) throw std::invalid_argument("empty --t1 list");
  return out;
}

Design design_from_name(const std::string& name) {
  const std::string n = lower(name);
  for (Design d : {Design::kBaseline, Design::kDoppelganger, Design::kTruncate,
                   Design::kZeroAvr, Design::kAvr})
    if (n == lower(to_string(d))) return d;
  throw std::invalid_argument("unknown design: " + name);
}

std::vector<Design> parse_design_list(const std::string& csv) {
  if (csv.empty()) return ExperimentRunner::paper_designs();
  std::vector<Design> out;
  for (const auto& name : split_csv(csv)) out.push_back(design_from_name(name));
  if (out.empty()) throw std::invalid_argument("empty design list");
  return out;
}

std::vector<std::string> parse_workload_list(const std::string& csv) {
  if (csv.empty()) return workload_names();
  const auto known = workload_names();
  std::vector<std::string> out;
  for (const auto& name : split_csv(csv)) {
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      // Not a built-in kernel: either a trace spec or a typo. Constructing
      // it is the validation — make_workload loads and checks a trace file
      // eagerly and throws a diagnosable std::invalid_argument for both
      // cases, so a bad point fails at --list/startup, never mid-sweep.
      (void)make_workload(name);
    }
    out.push_back(name);
  }
  if (out.empty()) throw std::invalid_argument("empty workload list");
  return out;
}

}  // namespace sweep
}  // namespace avr
