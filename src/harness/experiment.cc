#include "harness/experiment.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <numeric>
#include <sstream>
#include <thread>

#include "common/fault_inject.hh"
#include "harness/result_cache.hh"
#include "harness/sweep.hh"
#include "workloads/workload_registry.hh"

namespace avr {
namespace {

/// Static cost heuristic, used for points with no persisted measurement:
/// simulation time scales with the workload's footprint (tracked by its LLC
/// size, which preserves the paper's footprint-to-LLC ratio) times how much
/// work the design adds per access. Normalized to rough seconds so the
/// values are comparable with measured wall_seconds.
double design_cost_factor(Design d) {
  switch (d) {
    case Design::kBaseline: return 1.0;
    case Design::kTruncate: return 1.1;
    case Design::kZeroAvr: return 1.3;
    case Design::kDoppelganger: return 1.6;
    case Design::kAvr: return 2.0;
  }
  return 1.0;
}

}  // namespace

std::string ExperimentRunner::default_cache_path() {
  if (const char* p = std::getenv("AVR_RESULT_CACHE")) return p;
  return "avr_results_cache.csv";
}

std::string ExperimentRunner::default_seed_cost_path() {
  if (const char* p = std::getenv("AVR_SEED_COSTS")) return p;
  return "data/seed_costs.csv";
}

ExperimentRunner::ExperimentRunner(SimConfig base, bool verbose,
                                   std::string cache_path)
    : base_(base),
      cfg_hash_(config_fingerprint(base)),
      verbose_(verbose),
      cache_path_(std::move(cache_path)) {
  load_disk_cache();
  load_seed_costs();
}

ExperimentRunner::~ExperimentRunner() {
  const char* out = std::getenv("AVR_PROFILE_OUT");
  if (!out || !*out) return;
  prof::Report report;
  report.owner = prof::default_owner();
  report.mode = "runner";
  report.aggregate = profile_totals();
  report.points = profile_points();
  for (const prof::PointProfile& p : report.points)
    report.wall_seconds += p.wall_seconds;
  if (!report.aggregate.empty() && !prof::write_profile_json(out, report))
    std::fprintf(stderr, "[profile] WARNING: could not write %s\n", out);
}

prof::Totals ExperimentRunner::profile_totals() {
  std::lock_guard<std::mutex> lk(mu_);
  return prof_totals_;
}

std::vector<prof::PointProfile> ExperimentRunner::profile_points() {
  std::lock_guard<std::mutex> lk(mu_);
  return prof_points_;
}

void ExperimentRunner::load_disk_cache() {
  if (cache_path_.empty()) return;
  // Construction is single-threaded: route the load's cache-io time into
  // the aggregate without taking mu_.
  prof::ScopedSink sink(&prof_totals_);
  // Only records simulated under this runner's configuration: ablation
  // variants and the default grid can share one cache file.
  auto loaded = load_result_cache(cache_path_, cfg_hash_);
  for (auto& [key, r] : loaded) cache_[key] = std::move(r);
  if (verbose_ && !cache_.empty())
    std::fprintf(stderr, "[cache] loaded %zu results from %s\n", cache_.size(),
                 cache_path_.c_str());
}

void ExperimentRunner::load_seed_costs() {
  // Format: "workload,design_name,seconds", one point per line; '#' starts a
  // comment. Unknown workloads/designs and malformed lines are skipped, so a
  // stale seed file can never break a sweep — it only degrades scheduling.
  // The path is CWD-relative by default, so a binary launched outside the
  // repo root simply runs without the seed; the "[cost] loaded" line below
  // (mirroring "[cache] loaded") is how to tell which case you're in.
  std::ifstream in(default_seed_cost_path());
  if (!in) return;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string wl, design, secs;
    if (!std::getline(ls, wl, ',') || !std::getline(ls, design, ',') ||
        !std::getline(ls, secs))
      continue;
    try {
      const double v = std::stod(secs);
      if (v > 0) seed_costs_[{wl, sweep::design_from_name(design)}] = v;
    } catch (const std::exception&) {
      continue;
    }
  }
  if (verbose_ && !seed_costs_.empty())
    std::fprintf(stderr, "[cost] loaded %zu seed cost estimates from %s\n",
                 seed_costs_.size(), default_seed_cost_path().c_str());
}

SimConfig ExperimentRunner::config_for(const Workload& wl) const {
  SimConfig cfg = base_;
  cfg.scale_caches(wl.cache_scale());
  cfg.llc.size_bytes = wl.llc_bytes();
  // The --t1 sweep axis forces one threshold across all workloads; the
  // default (-1) keeps the paper's per-application thresholds.
  cfg.avr.t1_mantissa_msbit = base_.avr.t1_override >= 0
                                  ? static_cast<uint32_t>(base_.avr.t1_override)
                                  : wl.t1_msbit();
  return cfg;
}

const std::vector<double>& ExperimentRunner::golden(const std::string& name) {
  // One golden run per workload even when several design points of the same
  // workload start concurrently: the per-workload once_flag makes every other
  // thread wait for (not duplicate) the computation.
  std::once_flag* flag;
  {
    std::lock_guard<std::mutex> lk(mu_);
    flag = &golden_once_[name];
  }
  std::call_once(*flag, [&] {
    auto wl = make_workload(name);
    System sys(Design::kBaseline, config_for(*wl), 1, /*timing=*/false);
    wl->run(sys);
    std::vector<double> out = wl->output(sys);
    std::lock_guard<std::mutex> lk(mu_);
    golden_[name] = std::move(out);
  });
  std::lock_guard<std::mutex> lk(mu_);
  return golden_.at(name);
}

bool ExperimentRunner::cached(const std::string& wl, Design d) {
  std::lock_guard<std::mutex> lk(mu_);
  return cache_.count({wl, d}) != 0;
}

double ExperimentRunner::cost_estimate(const std::string& wl, Design d) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = cache_.find({wl, d});
    if (it != cache_.end() && it->second.wall_seconds > 0)
      return it->second.wall_seconds;
  }
  // Cold cache: the committed seed costs (measured on the default config)
  // still order points far better than the footprint heuristic below.
  if (auto it = seed_costs_.find({wl, d}); it != seed_costs_.end())
    return it->second;
  uint64_t footprint = 64 * 1024;
  uint64_t accesses = 0;
  try {
    auto w = make_workload(wl);
    footprint = w->llc_bytes();
    accesses = w->access_estimate();
  } catch (const std::exception&) {
    // Unknown workload: keep the default; run() will surface the error.
  }
  // Replayed workloads declare their access count up front, and their cost
  // scales with records, not footprint: ~2e6 replayed accesses per second
  // on the baseline design (measured on the bundled data/traces/ set after
  // the PR-5 fast path; dominated by per-point System construction for
  // short traces, hence the floor).
  if (accesses > 0)
    return std::max(0.02, static_cast<double>(accesses) *
                              design_cost_factor(d) / 2e6);
  // ~5e5 footprint-bytes per simulated second (median fit from the default
  // sweep re-measured after the PR-5 access-chain fast path).
  return static_cast<double>(footprint) * design_cost_factor(d) / 5e5;
}

const ExperimentResult& ExperimentRunner::run(const std::string& name, Design d) {
  const auto key = std::make_pair(name, d);
  // Per-point once_flag: concurrent callers of the same uncached point wait
  // for one simulation instead of each running a duplicate. A throwing run
  // leaves the flag unset, so a later call retries.
  std::once_flag* flag;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      prof_totals_.bump(prof::Counter::kCacheHits);
      return it->second;
    }
    flag = &run_once_[key];
  }
  std::call_once(*flag, [&] {
    if (verbose_)
      std::fprintf(stderr, "[run] %-8s x %-8s ...\n", name.c_str(), to_string(d));
    const auto t0 = std::chrono::steady_clock::now();

    // Everything the point does on this thread — setup, the runs, the
    // compressor sub-spans, the cache append — accumulates into one
    // per-point Totals, merged into the runner aggregate at the end.
    prof::Totals pt;
    ExperimentResult res;
    {
      prof::ScopedSink sink(&pt);

      auto wl = [&] {
        AVR_PROF_SCOPE(prof::Phase::kSetup);
        return make_workload(name);
      }();
      System sys = [&] {
        AVR_PROF_SCOPE(prof::Phase::kSetup);
        return System(d, config_for(*wl));
      }();
      std::vector<double> out;
      {
        AVR_PROF_SCOPE(prof::Phase::kTiming);
        wl->run(sys);
        // Output is collected before the drain: it reflects the values the
        // application observes at the end of execution (see DESIGN.md).
        out = wl->output(sys);
        sys.finish();
      }

      res.workload = name;
      res.design = d;
      res.config_hash = cfg_hash_;
      res.m = sys.metrics();
      {
        AVR_PROF_SCOPE(prof::Phase::kFunctional);
        res.m.output_error = mean_relative_error(out, golden(name));
      }
      res.wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      prof::count(prof::Counter::kPointsSimulated);

      // "point.complete": the crash window between a finished simulation
      // and its result append — a kill here loses the work and leaves this
      // process's claim dangling until the lease expires (the chaos test's
      // favorite wound).
      if (fault::fire(fault::Site::kPointComplete) == fault::Kind::kKill)
        fault::kill_now(fault::Site::kPointComplete);

      // Append before taking mu_: the cross-process flock inside can block on
      // another shard's writer, and stalling this process's other workers on
      // mu_ for that would serialize point completion across processes.
      if (!cache_path_.empty() && !append_result_line(cache_path_, res)) {
        disk_write_failures_.fetch_add(1);
        std::fprintf(stderr,
                     "[cache] WARNING: could not append %s x %s to %s; "
                     "keeping the result in memory only\n",
                     name.c_str(), to_string(d), cache_path_.c_str());
      }
    }
    std::lock_guard<std::mutex> lk(mu_);
    prof_totals_.merge(pt);
    prof_points_.push_back({name, to_string(d), base_.avr.t1_override,
                            res.wall_seconds, pt});
    cache_.emplace(key, std::move(res));
  });
  std::lock_guard<std::mutex> lk(mu_);
  return cache_.at(key);
}

std::vector<ExperimentResult> ExperimentRunner::run_all(
    const std::vector<std::string>& workloads, const std::vector<Design>& designs,
    unsigned n_threads) {
  // sweep::full_grid is the single definition of the canonical order the
  // shard slicing partitions.
  return run_points(sweep::full_grid(workloads, designs), n_threads);
}

std::vector<ExperimentResult> ExperimentRunner::run_points(
    const std::vector<std::pair<std::string, Design>>& points,
    unsigned n_threads) {
  // Longest-first: the pool drains points in descending estimated cost, so a
  // ~30x-cost outlier starts immediately instead of serializing the tail of
  // the sweep. Already-cached points are skipped by the workers (run() on
  // them is a pure lookup), so only fresh work is ordered and reported.
  std::vector<size_t> order(points.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> est(points.size());
  std::vector<char> warm(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    est[i] = cost_estimate(points[i].first, points[i].second);
    warm[i] = cached(points[i].first, points[i].second) ? 1 : 0;
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) { return est[a] > est[b]; });
  const size_t fresh_total = static_cast<size_t>(
      std::count(warm.begin(), warm.end(), static_cast<char>(0)));

  if (n_threads == 0) n_threads = std::thread::hardware_concurrency();
  n_threads = std::max(1u, std::min<unsigned>(n_threads, points.size()));

  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  std::atomic<bool> failed{false};
  std::mutex err_mu;
  std::exception_ptr first_error;
  auto worker = [&] {
    for (size_t i = next.fetch_add(1); i < order.size(); i = next.fetch_add(1)) {
      if (failed.load(std::memory_order_relaxed)) return;  // don't start new points
      const auto& [w, d] = points[order[i]];
      try {
        const ExperimentResult& r = run(w, d);
        if (!warm[order[i]] && verbose_) {
          const size_t k = done.fetch_add(1) + 1;
          std::fprintf(stderr, "[sweep %3zu/%zu] %-8s x %-8s %7.2fs\n", k,
                       fresh_total, w.c_str(), to_string(d), r.wall_seconds);
        }
      } catch (...) {
        failed.store(true, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lk(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(n_threads - 1);
  for (unsigned t = 1; t < n_threads; ++t) pool.emplace_back(worker);
  worker();  // the calling thread is part of the pool
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);

  std::vector<ExperimentResult> out;
  out.reserve(points.size());
  for (const auto& [w, d] : points) out.push_back(run(w, d));
  return out;
}

void print_normalized_table(
    ExperimentRunner& r, const std::string& title,
    const std::vector<std::string>& workloads, const std::vector<Design>& designs,
    const std::function<double(const RunMetrics&)>& metric, bool include_geomean) {
  std::printf("\n== %s (normalized to baseline) ==\n", title.c_str());
  std::printf("%-10s", "design");
  for (const auto& w : workloads) std::printf(" %9s", w.c_str());
  if (include_geomean) std::printf(" %9s", "geomean");
  std::printf("\n");
  for (Design d : designs) {
    std::printf("%-10s", to_string(d));
    double logsum = 0;
    int n = 0;
    for (const auto& w : workloads) {
      const double base = metric(r.run(w, Design::kBaseline).m);
      const double val = metric(r.run(w, d).m);
      const double norm = base > 0 ? val / base : 0.0;
      std::printf(" %9.3f", norm);
      if (norm > 0) {
        logsum += std::log(norm);
        ++n;
      }
    }
    if (include_geomean) std::printf(" %9.3f", n ? std::exp(logsum / n) : 0.0);
    std::printf("\n");
  }
}

void print_value_table(
    ExperimentRunner& r, const std::string& title,
    const std::vector<std::string>& workloads, const std::vector<Design>& designs,
    const std::function<double(const RunMetrics&)>& metric, const std::string& unit) {
  std::printf("\n== %s (%s) ==\n", title.c_str(), unit.c_str());
  std::printf("%-10s", "design");
  for (const auto& w : workloads) std::printf(" %9s", w.c_str());
  std::printf("\n");
  for (Design d : designs) {
    std::printf("%-10s", to_string(d));
    for (const auto& w : workloads) std::printf(" %9.3f", metric(r.run(w, d).m));
    std::printf("\n");
  }
}

}  // namespace avr
