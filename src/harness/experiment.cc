#include "harness/experiment.hh"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <sstream>
#include <thread>

#include "workloads/workload_registry.hh"

namespace avr {
namespace {

// Bump whenever results become incomparable (config or model changes).
constexpr int kCacheVersion = 1;

Design design_from_int(int v) { return static_cast<Design>(v); }

}  // namespace

std::string ExperimentRunner::default_cache_path() {
  if (const char* p = std::getenv("AVR_RESULT_CACHE")) return p;
  return "avr_results_cache.csv";
}

ExperimentRunner::ExperimentRunner(SimConfig base, bool verbose,
                                   std::string cache_path)
    : base_(base), verbose_(verbose), cache_path_(std::move(cache_path)) {
  load_disk_cache();
}

void ExperimentRunner::load_disk_cache() {
  if (cache_path_.empty()) return;
  std::ifstream in(cache_path_);
  if (!in) return;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string field;
    std::vector<std::string> f;
    while (std::getline(ls, field, ',')) f.push_back(field);
    if (f.size() < 22 || f[0] != std::to_string(kCacheVersion)) continue;
    ExperimentResult r;
    size_t i = 1;
    r.workload = f[i++];
    r.design = design_from_int(std::stoi(f[i++]));
    RunMetrics& m = r.m;
    m.cycles = std::stoull(f[i++]);
    m.instructions = std::stoull(f[i++]);
    m.ipc = std::stod(f[i++]);
    m.amat = std::stod(f[i++]);
    m.llc_requests = std::stoull(f[i++]);
    m.llc_misses = std::stoull(f[i++]);
    m.llc_mpki = std::stod(f[i++]);
    m.dram_bytes = std::stoull(f[i++]);
    m.dram_bytes_approx = std::stoull(f[i++]);
    m.dram_bytes_other = std::stoull(f[i++]);
    m.metadata_bytes = std::stoull(f[i++]);
    m.energy.core = std::stod(f[i++]);
    m.energy.l1l2 = std::stod(f[i++]);
    m.energy.llc = std::stod(f[i++]);
    m.energy.dram = std::stod(f[i++]);
    m.energy.compressor = std::stod(f[i++]);
    m.compression_ratio = std::stod(f[i++]);
    m.footprint_bytes = std::stoull(f[i++]);
    m.approx_bytes = std::stoull(f[i++]);
    m.output_error = std::stod(f[i++]);
    while (i + 1 < f.size()) {
      m.detail[f[i]] = std::stoull(f[i + 1]);
      i += 2;
    }
    cache_[{r.workload, r.design}] = std::move(r);
  }
  if (verbose_ && !cache_.empty())
    std::fprintf(stderr, "[cache] loaded %zu results from %s\n", cache_.size(),
                 cache_path_.c_str());
}

void ExperimentRunner::append_disk_cache(const ExperimentResult& r) {
  if (cache_path_.empty()) return;
  std::ofstream out(cache_path_, std::ios::app);
  const RunMetrics& m = r.m;
  out << kCacheVersion << ',' << r.workload << ',' << static_cast<int>(r.design)
      << ',' << m.cycles << ',' << m.instructions << ',' << m.ipc << ',' << m.amat
      << ',' << m.llc_requests << ',' << m.llc_misses << ',' << m.llc_mpki << ','
      << m.dram_bytes << ',' << m.dram_bytes_approx << ',' << m.dram_bytes_other
      << ',' << m.metadata_bytes << ',' << m.energy.core << ',' << m.energy.l1l2
      << ',' << m.energy.llc << ',' << m.energy.dram << ',' << m.energy.compressor
      << ',' << m.compression_ratio << ',' << m.footprint_bytes << ','
      << m.approx_bytes << ',' << m.output_error;
  for (const auto& [k, v] : m.detail) out << ',' << k << ',' << v;
  out << '\n';
}

SimConfig ExperimentRunner::config_for(const Workload& wl) const {
  SimConfig cfg = base_;
  cfg.scale_caches(wl.cache_scale());
  cfg.llc.size_bytes = wl.llc_bytes();
  cfg.avr.t1_mantissa_msbit = wl.t1_msbit();
  return cfg;
}

const std::vector<double>& ExperimentRunner::golden(const std::string& name) {
  // One golden run per workload even when several design points of the same
  // workload start concurrently: the per-workload once_flag makes every other
  // thread wait for (not duplicate) the computation.
  std::once_flag* flag;
  {
    std::lock_guard<std::mutex> lk(mu_);
    flag = &golden_once_[name];
  }
  std::call_once(*flag, [&] {
    auto wl = make_workload(name);
    System sys(Design::kBaseline, config_for(*wl), 1, /*timing=*/false);
    wl->run(sys);
    std::vector<double> out = wl->output(sys);
    std::lock_guard<std::mutex> lk(mu_);
    golden_[name] = std::move(out);
  });
  std::lock_guard<std::mutex> lk(mu_);
  return golden_.at(name);
}

const ExperimentResult& ExperimentRunner::run(const std::string& name, Design d) {
  const auto key = std::make_pair(name, d);
  // Per-point once_flag: concurrent callers of the same uncached point wait
  // for one simulation instead of each running a duplicate. A throwing run
  // leaves the flag unset, so a later call retries.
  std::once_flag* flag;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
    flag = &run_once_[key];
  }
  std::call_once(*flag, [&] {
    if (verbose_)
      std::fprintf(stderr, "[run] %-8s x %-8s ...\n", name.c_str(), to_string(d));

    auto wl = make_workload(name);
    System sys(d, config_for(*wl));
    wl->run(sys);
    // Output is collected before the drain: it reflects the values the
    // application observes at the end of execution (see DESIGN.md).
    const std::vector<double> out = wl->output(sys);
    sys.finish();

    ExperimentResult res;
    res.workload = name;
    res.design = d;
    res.m = sys.metrics();
    res.m.output_error = mean_relative_error(out, golden(name));

    std::lock_guard<std::mutex> lk(mu_);
    append_disk_cache(res);
    cache_.emplace(key, std::move(res));
  });
  std::lock_guard<std::mutex> lk(mu_);
  return cache_.at(key);
}

std::vector<ExperimentResult> ExperimentRunner::run_all(
    const std::vector<std::string>& workloads, const std::vector<Design>& designs,
    unsigned n_threads) {
  std::vector<std::pair<std::string, Design>> points;
  points.reserve(workloads.size() * designs.size());
  for (const auto& w : workloads)
    for (Design d : designs) points.emplace_back(w, d);

  if (n_threads == 0) n_threads = std::thread::hardware_concurrency();
  n_threads = std::max(1u, std::min<unsigned>(n_threads, points.size()));

  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex err_mu;
  std::exception_ptr first_error;
  auto worker = [&] {
    for (size_t i = next.fetch_add(1); i < points.size(); i = next.fetch_add(1)) {
      if (failed.load(std::memory_order_relaxed)) return;  // don't start new points
      try {
        run(points[i].first, points[i].second);
      } catch (...) {
        failed.store(true, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lk(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(n_threads - 1);
  for (unsigned t = 1; t < n_threads; ++t) pool.emplace_back(worker);
  worker();  // the calling thread is part of the pool
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);

  std::vector<ExperimentResult> out;
  out.reserve(points.size());
  for (const auto& [w, d] : points) out.push_back(run(w, d));
  return out;
}

void print_normalized_table(
    ExperimentRunner& r, const std::string& title,
    const std::vector<std::string>& workloads, const std::vector<Design>& designs,
    const std::function<double(const RunMetrics&)>& metric, bool include_geomean) {
  std::printf("\n== %s (normalized to baseline) ==\n", title.c_str());
  std::printf("%-10s", "design");
  for (const auto& w : workloads) std::printf(" %9s", w.c_str());
  if (include_geomean) std::printf(" %9s", "geomean");
  std::printf("\n");
  for (Design d : designs) {
    std::printf("%-10s", to_string(d));
    double logsum = 0;
    int n = 0;
    for (const auto& w : workloads) {
      const double base = metric(r.run(w, Design::kBaseline).m);
      const double val = metric(r.run(w, d).m);
      const double norm = base > 0 ? val / base : 0.0;
      std::printf(" %9.3f", norm);
      if (norm > 0) {
        logsum += std::log(norm);
        ++n;
      }
    }
    if (include_geomean) std::printf(" %9.3f", n ? std::exp(logsum / n) : 0.0);
    std::printf("\n");
  }
}

void print_value_table(
    ExperimentRunner& r, const std::string& title,
    const std::vector<std::string>& workloads, const std::vector<Design>& designs,
    const std::function<double(const RunMetrics&)>& metric, const std::string& unit) {
  std::printf("\n== %s (%s) ==\n", title.c_str(), unit.c_str());
  std::printf("%-10s", "design");
  for (const auto& w : workloads) std::printf(" %9s", w.c_str());
  std::printf("\n");
  for (Design d : designs) {
    std::printf("%-10s", to_string(d));
    for (const auto& w : workloads) std::printf(" %9.3f", metric(r.run(w, d).m));
    std::printf("\n");
  }
}

}  // namespace avr
