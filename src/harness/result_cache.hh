// On-disk result cache: an append-only CSV journal holding one line per
// completed (workload, design) point — and, since format v4, one line per
// *claim* a work-stealing shard stakes on a point it is about to simulate.
//
// Format v5 adds explicit framing and a checksum. Every record is
//
//   5,L<len>,C<crc8hex>,<payload>
//
// where <payload> runs from the character after the third comma to the end
// of the line (the trailing "end#" sentinel included), <len> is the decimal
// payload byte count, and <crc8hex> is the CRC-32C of the payload bytes
// (Castagnoli, reflected, ~crc32c(~0, payload); 8 lower-case hex digits,
// computed through the dispatched SIMD kernel table — hardware crc32 on
// SSE4.2+, table-driven scalar otherwise). The length catches short writes
// the sentinel alone cannot (a torn tail that happens to end in ",end#"),
// and the CRC catches bit rot that still parses.
//
// Result payload (identical to the v4/v3 field layout minus the version):
//
//   workload,design,config_hash,<19 metric fields>,output_error,
//       wall_seconds[,detail_key,detail_value]...,end#
//
// Claim payload (see docs/OPERATIONS.md for the protocol):
//
//   claim#,workload,design,config_hash,owner,claimed_at,lease_seconds,end#
//
// The "claim#" kind marker occupies the workload slot of a result payload;
// the '#' keeps it disjoint from workload names (identifiers and
// trace:<path> specs), exactly as the "end#" sentinel stays disjoint from
// detail-counter keys. `claimed_at` is wall-clock (epoch) seconds; a claim
// is live until claimed_at + lease_seconds, expired afterwards. Claims are
// advisory scheduler hints: results remain the only source of truth, and a
// duplicate result produced by an over-eager reclaim is harmless
// (deterministic points, duplicate-tolerant loads).
//
// config_hash is the config_fingerprint() of the runner's *base* SimConfig
// (per-workload scaling is deterministic from it), so records produced
// under different configurations — e.g. the bench_ablation or --t1
// variants — can share one cache file: loads filter on the hash.
// Back-compat: v4/v3 result lines (unframed, version-prefixed v5 payload
// layout) and v2 lines (v3 without config_hash; decodes with the
// default-config fingerprint) keep decoding forever, so existing caches
// and merge-by-concatenation stay valid. Claim records are transient
// scheduler state and only decode at the current version.
//
// Contract for concurrent *writer processes* (the sharded sweep):
//   - a record is encoded to one string and appended with a single write(2)
//     on an O_APPEND fd, under an exclusive flock(2) on the cache file —
//     writers never interleave partial lines. Lock acquisition and the
//     write are retried with bounded exponential backoff (common/
//     backoff.hh) before the writer degrades to in-memory-only results;
//   - claim staking (try_claim_point) is read-modify-append under the same
//     flock, so two shards can never both win a fresh claim on one point;
//   - readers take no lock: load_result_cache() *quarantines* corrupt,
//     truncated or checksum-failing lines — each skipped with a one-line
//     stderr reason (capped per load) — skips claims and foreign versions,
//     and tolerates duplicate records (points are deterministic, so
//     duplicates carry identical values; the last one wins). Merging shard
//     caches is therefore plain concatenation. avr_sweep --fsck audits a
//     cache offline; --fsck --repair rewrites it clean (harness/fsck.hh).
//
// Fault sites on this path (common/fault_inject.hh): "cache.append" inside
// the result-record write loop (kill = torn line), "cache.load" ahead of a
// warm-up read, "claim.stake" before the claim append (kill = die with the
// stake durably on disk), "lock.acquire" inside FileLock.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <utility>

#include "harness/experiment.hh"

namespace avr {

/// Bump whenever results become incomparable (model changes) or the record
/// framing changes; config changes need no bump — records carry a config
/// fingerprint. Loads accept this version plus the legacy result layouts
/// (4/3 identical unframed, 2 without config_hash).
inline constexpr int kResultCacheVersion = 5;

/// The (workload, design) pair results and claims are keyed by.
using ResultKey = std::pair<std::string, Design>;

/// One work-stealing claim: `owner` (a comma-free token, unique per
/// process) staked the point at wall-clock second `claimed_at` and promises
/// a result within `lease_seconds`. Later claim records for the same key
/// supersede earlier ones (last-writer-wins, serialized by the flock).
struct ClaimRecord {
  std::string workload;
  Design design = Design::kBaseline;
  uint64_t config_hash = 0;
  std::string owner;
  uint64_t claimed_at = 0;      // epoch seconds (wall clock)
  uint64_t lease_seconds = 0;

  /// True once the lease has run out as of wall-clock second `now`: the
  /// owner is presumed dead and the point may be reclaimed.
  bool expired(uint64_t now) const { return now >= claimed_at + lease_seconds; }
};

/// Outcome of one atomic claim attempt (try_claim_point).
enum class ClaimOutcome {
  kClaimed,    // we hold a live claim on the point — simulate it
  kReclaimed,  // same, but we superseded another owner's expired claim
  kDone,       // a result already exists — nothing to do
  kBusy,       // another owner holds a live claim — try again later
  kError,      // the cache file could not be opened/read/written
};

/// What one cache line turned out to be under the shared version/framing
/// policy (the single classifier behind decode_*, the loaders and fsck).
enum class CacheLineKind {
  kBlank,    // empty line
  kResult,   // a valid result record (v2..v5) — *result is filled
  kClaim,    // a valid current-version claim — *claim is filled
  kForeign,  // another tool's/version's line (future version, stale claim):
             //   not ours to judge, skipped silently
  kCorrupt,  // torn, checksum-failing or unparseable — *reason says why
};

/// Classifies `line`. `result`/`claim` receive the decoded record for
/// kResult/kClaim; `reason` (optional) the one-line quarantine cause for
/// kCorrupt; `version` (optional) the record's version field when one was
/// recognized (2..5), untouched otherwise.
CacheLineKind classify_cache_line(const std::string& line,
                                  ExperimentResult* result, ClaimRecord* claim,
                                  std::string* reason = nullptr,
                                  int* version = nullptr);

/// One result CSV record (v5 framed), no trailing newline. Doubles are
/// written with max_digits10 precision so decode() round-trips them
/// bit-exactly — re-encoding a decoded legacy record is value-identical.
std::string encode_result_line(const ExperimentResult& r);

/// Parses one result record (v2..v5). Returns false (leaving `*out`
/// unspecified) for blank, malformed, truncated, checksum-failing,
/// wrong-version — or claim — lines.
bool decode_result_line(const std::string& line, ExperimentResult* out);

/// One claim CSV record (v5 framed), no trailing newline.
std::string encode_claim_line(const ClaimRecord& c);

/// Parses one claim record; false for anything else (results included).
bool decode_claim_line(const std::string& line, ClaimRecord* out);

/// Appends one result record under the locking contract above, riding out
/// transient failures with bounded backoff. Returns false once retries are
/// exhausted (best-effort: the in-memory cache is the source of truth
/// within a process, and the caller warns loudly).
bool append_result_line(const std::string& path, const ExperimentResult& r);

/// Loads every valid result record; missing file yields an empty map.
/// Corrupt lines are quarantined with a one-line stderr reason each
/// (capped); transient read errors are retried with backoff, after which
/// the load degrades to an empty (in-memory-only) cache with a loud
/// warning rather than failing the sweep. When `config_filter` is set,
/// records whose config_hash differs are skipped — a runner only warms
/// from points simulated under its own configuration.
std::map<ResultKey, ExperimentResult> load_result_cache(
    const std::string& path,
    std::optional<uint64_t> config_filter = std::nullopt);

/// Loads the *governing* claim per point: the last claim record in file
/// order for each (workload, design) key, config-filtered like
/// load_result_cache (but silent — the result loader owns the quarantine
/// warnings). Points that already have a result are still listed if
/// claimed — callers decide whether a claim is moot (result exists), live,
/// or expired.
std::map<ResultKey, ClaimRecord> load_claims(
    const std::string& path,
    std::optional<uint64_t> config_filter = std::nullopt);

/// Atomically stakes a claim for (want.workload, want.design) under
/// want.config_hash: holding the cache flock, re-reads the file and
///   - returns kDone if a result for the point already exists,
///   - returns kBusy if another owner's claim is live at wall-clock second
///     `now` (a live claim by want.owner itself returns kClaimed without
///     appending a duplicate),
///   - otherwise appends `want` (stamped claimed_at = now) and returns
///     kClaimed — or kReclaimed when it superseded an expired foreign claim.
/// kError means the cache file could not be opened/read/written even after
/// the bounded lock-acquire retries; callers back off and retry, then
/// degrade to uncoordinated simulation (sweep.cc) rather than abort.
ClaimOutcome try_claim_point(const std::string& path, const ClaimRecord& want,
                             uint64_t now);

}  // namespace avr
