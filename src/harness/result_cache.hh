// On-disk result cache: one CSV line per completed (workload, design) point.
//
// File format (version 3), one record per line, no header:
//
//   version,workload,design,config_hash,<19 metric fields>,output_error,
//       wall_seconds[,detail_key,detail_value]...,end#
//
// config_hash is the config_fingerprint() of the runner's *base* SimConfig
// (per-workload scaling is deterministic from it), so records produced under
// different configurations — e.g. the bench_ablation variants — can share
// one cache file: loads filter on the hash. Version-2 lines (the same
// layout without config_hash) are still decoded and are assigned the
// default-config fingerprint, which is what produced every v2 cache.
//
// The trailing "end#" sentinel closes every record: a line torn mid-append
// is missing it and is rejected as a whole (a cut inside the final numeric
// token would otherwise decode as a shorter, valid-looking number).
//
// Contract for concurrent *writer processes* (the sharded sweep):
//   - a record is encoded to one string and appended with a single write(2)
//     on an O_APPEND fd, under an exclusive flock(2) on the cache file —
//     writers never interleave partial lines;
//   - readers take no lock: load_result_cache() skips lines that are
//     malformed, truncated (a reader racing the last append) or from another
//     format version, and tolerates duplicate records (points are
//     deterministic, so duplicates carry identical values; the last one
//     wins). Merging shard caches is therefore plain concatenation.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <utility>

#include "harness/experiment.hh"

namespace avr {

/// Bump whenever results become incomparable (model changes); config
/// changes no longer need a bump — records carry a config fingerprint.
/// Loads ignore records from any version other than this one or 2 (v2
/// lines decode with the default-config fingerprint).
inline constexpr int kResultCacheVersion = 3;

using ResultKey = std::pair<std::string, Design>;

/// One CSV record, no trailing newline. Doubles are written with
/// max_digits10 precision so decode() round-trips them bit-exactly.
std::string encode_result_line(const ExperimentResult& r);

/// Parses one record. Returns false (leaving `*out` unspecified) for blank,
/// malformed, truncated or wrong-version lines.
bool decode_result_line(const std::string& line, ExperimentResult* out);

/// Appends one record under the locking contract above. Returns false if the
/// file could not be opened or the write failed (best-effort: the in-memory
/// cache is the source of truth within a process).
bool append_result_line(const std::string& path, const ExperimentResult& r);

/// Loads every valid record; missing file yields an empty map. When
/// `config_filter` is set, records whose config_hash differs are skipped —
/// a runner only warms from points simulated under its own configuration.
std::map<ResultKey, ExperimentResult> load_result_cache(
    const std::string& path,
    std::optional<uint64_t> config_filter = std::nullopt);

}  // namespace avr
