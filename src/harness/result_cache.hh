// On-disk result cache: an append-only CSV journal holding one line per
// completed (workload, design) point — and, since format v4, one line per
// *claim* a work-stealing shard stakes on a point it is about to simulate.
//
// Result record (version 4; the v3 layout under a new version number):
//
//   version,workload,design,config_hash,<19 metric fields>,output_error,
//       wall_seconds[,detail_key,detail_value]...,end#
//
// Claim record (version 4 only — transient scheduler state, see
// docs/OPERATIONS.md for the protocol):
//
//   version,claim#,workload,design,config_hash,owner,claimed_at,
//       lease_seconds,end#
//
// The "claim#" kind marker occupies the workload field of a result record;
// the '#' keeps it disjoint from workload names (identifiers and
// trace:<path> specs), exactly as the "end#" sentinel stays disjoint from
// detail-counter keys. `claimed_at` is wall-clock (epoch) seconds; a claim
// is live until claimed_at + lease_seconds, expired afterwards. Claims are
// advisory scheduler hints: results remain the only source of truth, and a
// duplicate result produced by an over-eager reclaim is harmless
// (deterministic points, duplicate-tolerant loads).
//
// config_hash is the config_fingerprint() of the runner's *base* SimConfig
// (per-workload scaling is deterministic from it), so records produced under
// different configurations — e.g. the bench_ablation or --t1 variants — can
// share one cache file: loads filter on the hash. Version-2 lines (the v3
// layout without config_hash) decode with the default-config fingerprint,
// and version-3 lines decode unchanged — every pre-v4 cache stays readable.
//
// The trailing "end#" sentinel closes every record: a line torn mid-append
// is missing it and is rejected as a whole (a cut inside the final numeric
// token would otherwise decode as a shorter, valid-looking number).
//
// Contract for concurrent *writer processes* (the sharded sweep):
//   - a record is encoded to one string and appended with a single write(2)
//     on an O_APPEND fd, under an exclusive flock(2) on the cache file —
//     writers never interleave partial lines;
//   - claim staking (try_claim_point) is read-modify-append under the same
//     flock, so two shards can never both win a fresh claim on one point;
//   - readers take no lock: load_result_cache() skips lines that are
//     malformed, truncated (a reader racing the last append), claims, or
//     from another format version, and tolerates duplicate records (points
//     are deterministic, so duplicates carry identical values; the last one
//     wins). Merging shard caches is therefore plain concatenation.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <utility>

#include "harness/experiment.hh"

namespace avr {

/// Bump whenever results become incomparable (model changes); config
/// changes no longer need a bump — records carry a config fingerprint.
/// Loads ignore records from any version other than this one, 3 (identical
/// result layout) or 2 (decodes with the default-config fingerprint).
inline constexpr int kResultCacheVersion = 4;

/// The (workload, design) pair results and claims are keyed by.
using ResultKey = std::pair<std::string, Design>;

/// One work-stealing claim: `owner` (a comma-free token, unique per
/// process) staked the point at wall-clock second `claimed_at` and promises
/// a result within `lease_seconds`. Later claim records for the same key
/// supersede earlier ones (last-writer-wins, serialized by the flock).
struct ClaimRecord {
  std::string workload;
  Design design = Design::kBaseline;
  uint64_t config_hash = 0;
  std::string owner;
  uint64_t claimed_at = 0;      // epoch seconds (wall clock)
  uint64_t lease_seconds = 0;

  /// True once the lease has run out as of wall-clock second `now`: the
  /// owner is presumed dead and the point may be reclaimed.
  bool expired(uint64_t now) const { return now >= claimed_at + lease_seconds; }
};

/// Outcome of one atomic claim attempt (try_claim_point).
enum class ClaimOutcome {
  kClaimed,    // we hold a live claim on the point — simulate it
  kReclaimed,  // same, but we superseded another owner's expired claim
  kDone,       // a result already exists — nothing to do
  kBusy,       // another owner holds a live claim — try again later
  kError,      // the cache file could not be opened/read/written
};

/// One result CSV record, no trailing newline. Doubles are written with
/// max_digits10 precision so decode() round-trips them bit-exactly.
std::string encode_result_line(const ExperimentResult& r);

/// Parses one result record. Returns false (leaving `*out` unspecified) for
/// blank, malformed, truncated, wrong-version — or claim — lines.
bool decode_result_line(const std::string& line, ExperimentResult* out);

/// One claim CSV record, no trailing newline.
std::string encode_claim_line(const ClaimRecord& c);

/// Parses one claim record; false for anything else (results included).
bool decode_claim_line(const std::string& line, ClaimRecord* out);

/// Appends one result record under the locking contract above. Returns
/// false if the file could not be opened or the write failed (best-effort:
/// the in-memory cache is the source of truth within a process).
bool append_result_line(const std::string& path, const ExperimentResult& r);

/// Loads every valid result record; missing file yields an empty map. When
/// `config_filter` is set, records whose config_hash differs are skipped —
/// a runner only warms from points simulated under its own configuration.
std::map<ResultKey, ExperimentResult> load_result_cache(
    const std::string& path,
    std::optional<uint64_t> config_filter = std::nullopt);

/// Loads the *governing* claim per point: the last claim record in file
/// order for each (workload, design) key, config-filtered like
/// load_result_cache. Points that already have a result are still listed if
/// claimed — callers decide whether a claim is moot (result exists), live,
/// or expired.
std::map<ResultKey, ClaimRecord> load_claims(
    const std::string& path,
    std::optional<uint64_t> config_filter = std::nullopt);

/// Atomically stakes a claim for (want.workload, want.design) under
/// want.config_hash: holding the cache flock, re-reads the file and
///   - returns kDone if a result for the point already exists,
///   - returns kBusy if another owner's claim is live at wall-clock second
///     `now` (a live claim by want.owner itself returns kClaimed without
///     appending a duplicate),
///   - otherwise appends `want` (stamped claimed_at = now) and returns
///     kClaimed — or kReclaimed when it superseded an expired foreign claim.
/// kError means the cache file itself is unusable; callers should abort
/// rather than spin.
ClaimOutcome try_claim_point(const std::string& path, const ClaimRecord& want,
                             uint64_t now);

}  // namespace avr
