// On-disk result cache: one CSV line per completed (workload, design) point.
//
// File format (version 2), one record per line, no header:
//
//   version,workload,design,<19 metric fields>,output_error,wall_seconds
//       [,detail_key,detail_value]...,end#
//
// The trailing "end#" sentinel closes every record: a line torn mid-append
// is missing it and is rejected as a whole (a cut inside the final numeric
// token would otherwise decode as a shorter, valid-looking number).
//
// Contract for concurrent *writer processes* (the sharded sweep):
//   - a record is encoded to one string and appended with a single write(2)
//     on an O_APPEND fd, under an exclusive flock(2) on the cache file —
//     writers never interleave partial lines;
//   - readers take no lock: load_result_cache() skips lines that are
//     malformed, truncated (a reader racing the last append) or from another
//     format version, and tolerates duplicate records (points are
//     deterministic, so duplicates carry identical values; the last one
//     wins). Merging shard caches is therefore plain concatenation.
#pragma once

#include <map>
#include <string>
#include <utility>

#include "harness/experiment.hh"

namespace avr {

/// Bump whenever results become incomparable (config or model changes);
/// loads ignore records from any other version.
inline constexpr int kResultCacheVersion = 2;

using ResultKey = std::pair<std::string, Design>;

/// One CSV record, no trailing newline. Doubles are written with
/// max_digits10 precision so decode() round-trips them bit-exactly.
std::string encode_result_line(const ExperimentResult& r);

/// Parses one record. Returns false (leaving `*out` unspecified) for blank,
/// malformed, truncated or wrong-version lines.
bool decode_result_line(const std::string& line, ExperimentResult* out);

/// Appends one record under the locking contract above. Returns false if the
/// file could not be opened or the write failed (best-effort: the in-memory
/// cache is the source of truth within a process).
bool append_result_line(const std::string& path, const ExperimentResult& r);

/// Loads every valid record; missing file yields an empty map.
std::map<ResultKey, ExperimentResult> load_result_cache(const std::string& path);

}  // namespace avr
