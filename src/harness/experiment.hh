// Experiment driver: runs (workload x design) points, computes application
// output error against a golden functional run, and prints paper-style
// tables (rows normalized to baseline where the paper normalizes).
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/profile.hh"
#include "common/types.hh"
#include "runtime/system.hh"
#include "workloads/workload.hh"

namespace avr {

struct ExperimentResult {
  std::string workload;
  Design design = Design::kBaseline;
  RunMetrics m;
  /// config_fingerprint() of the base SimConfig the point was simulated
  /// under. Persisted (result-cache format v3+) so caches can hold points
  /// from several configurations — the ablation sweeps — side by side.
  uint64_t config_hash = 0;
  /// Wall-clock seconds the point took to simulate. Persisted in the disk
  /// cache and fed back as the cost estimate for longest-first scheduling;
  /// NOT part of the simulated result (shard caches produced on different
  /// machines differ here while agreeing on every metric).
  double wall_seconds = 0;
};

class ExperimentRunner {
 public:
  /// `cache_path`: optional CSV file persisting results across the figure
  /// binaries and sweep shards (they all share one default-config sweep).
  /// Appends are safe against concurrent writer *processes* — see
  /// harness/result_cache.hh for the format and locking contract. Records
  /// carry the base config's fingerprint (format v3+), so runners with
  /// different configurations — the bench_ablation variants — share one
  /// file safely: each loads only its own records. Pass "" to disable
  /// caching entirely. The environment variable AVR_RESULT_CACHE overrides
  /// the default path.
  explicit ExperimentRunner(SimConfig base = {}, bool verbose = true,
                            std::string cache_path = default_cache_path());

  /// If the environment variable AVR_PROFILE_OUT names a path, writes the
  /// runner's profile there as sidecar JSON (mode "runner"). avr_sweep
  /// bypasses this and writes a richer per-shard report itself.
  ~ExperimentRunner();

  static std::string default_cache_path();
  /// Committed per-point cost seed (see data/seed_costs.csv): measured
  /// wall_seconds for the default-config grid, so even the very first
  /// cold-cache sweep schedules longest-first instead of falling back to the
  /// footprint x design heuristic. The environment variable AVR_SEED_COSTS
  /// overrides the path; a missing file just disables the seed.
  static std::string default_seed_cost_path();

  /// Run one (workload, design) point. Golden outputs are computed once per
  /// workload and cached; results are cached too, so table printers can
  /// share runs. Thread-safe: concurrent calls on distinct points proceed in
  /// parallel, each with its own System; the caches are mutex-guarded and
  /// returned references stay valid for the runner's lifetime.
  const ExperimentResult& run(const std::string& wl, Design d);

  /// True if the point is already in the in-memory cache (hit at
  /// construction from disk, or simulated earlier in this process).
  bool cached(const std::string& wl, Design d);

  /// Run the full (workload x design) sweep, independent points concurrently
  /// on a thread pool of `n_threads` (0 = hardware concurrency). Warms the
  /// same result cache `run()` uses, so subsequent table printing is pure
  /// lookup. Returns the results in workload-major, design-minor order —
  /// identical values to calling `run()` serially in that order.
  std::vector<ExperimentResult> run_all(const std::vector<std::string>& workloads,
                                        const std::vector<Design>& designs,
                                        unsigned n_threads = 0);

  /// Run an arbitrary point list (e.g. one shard's slice of the grid) on the
  /// pool. Uncached points are scheduled longest-first by cost_estimate() —
  /// points vary ~30x in cost, so starting the expensive ones first keeps
  /// the pool busy until the end of the sweep. Returns results in the given
  /// order; duplicates are allowed (each point still simulates once).
  std::vector<ExperimentResult> run_points(
      const std::vector<std::pair<std::string, Design>>& points,
      unsigned n_threads = 0);

  /// Estimated cost of a point, in arbitrary but mutually comparable units.
  /// A persisted wall_seconds measurement (loaded from the disk cache or
  /// observed this process) wins, then the committed seed-cost file, then a
  /// static heuristic scaling the workload's footprint by a per-design
  /// factor.
  double cost_estimate(const std::string& wl, Design d);

  /// All four comparison designs of Sec. 4 plus the baseline.
  static std::vector<Design> paper_designs() {
    return {Design::kBaseline, Design::kDoppelganger, Design::kTruncate,
            Design::kZeroAvr, Design::kAvr};
  }

  const SimConfig& base_config() const { return base_; }
  /// Fingerprint identifying base_config() in persisted cache records: the
  /// runner loads only records carrying it and stamps it on new results.
  uint64_t config_hash() const { return cfg_hash_; }
  /// Per-workload config (cache hierarchy scaled per Workload::cache_scale).
  SimConfig config_for(const Workload& wl) const;

  /// Number of results that could not be appended to the disk cache (disk
  /// full, permissions, ...). Simulation carries on from the in-memory
  /// cache — each failure warns on stderr — but a persistence-critical
  /// caller (avr_sweep: the shard cache IS its output) must check this and
  /// fail loudly.
  size_t disk_write_failures() const { return disk_write_failures_.load(); }

  /// Aggregate profile of everything this runner did: per-phase time of all
  /// simulated points plus the runner's own cache I/O, and the counters
  /// (points simulated, cache hits, appends). Snapshot — safe to call
  /// concurrently with run().
  prof::Totals profile_totals();

  /// One PointProfile per point this runner *simulated* (cache hits carry
  /// no profile), in completion order, each with its per-phase breakdown.
  std::vector<prof::PointProfile> profile_points();

 private:
  const std::vector<double>& golden(const std::string& wl);
  void load_disk_cache();
  void load_seed_costs();

  SimConfig base_;
  uint64_t cfg_hash_;
  bool verbose_;
  std::string cache_path_;
  // Immutable after construction; read without mu_.
  std::map<std::pair<std::string, Design>, double> seed_costs_;
  std::atomic<size_t> disk_write_failures_{0};
  // mu_ guards golden_, golden_once_ and cache_. Both maps are node-based,
  // so references handed out stay valid across concurrent inserts; nothing
  // is ever erased.
  std::mutex mu_;
  std::map<std::string, std::vector<double>> golden_;
  std::map<std::string, std::once_flag> golden_once_;
  std::map<std::pair<std::string, Design>, ExperimentResult> cache_;
  std::map<std::pair<std::string, Design>, std::once_flag> run_once_;
  // Profile accumulation (guarded by mu_): the merged totals and the
  // per-point slices, appended as each simulated point completes.
  prof::Totals prof_totals_;
  std::vector<prof::PointProfile> prof_points_;
};

// ---- table printing --------------------------------------------------------

/// Prints one row per design, one column per workload, each cell
/// extractor(result)/extractor(baseline result) — the shape of Figs. 9-13.
void print_normalized_table(
    ExperimentRunner& r, const std::string& title,
    const std::vector<std::string>& workloads, const std::vector<Design>& designs,
    const std::function<double(const RunMetrics&)>& metric,
    bool include_geomean = true);

/// Prints an absolute-valued table (Table 3 / Table 4 shape).
void print_value_table(
    ExperimentRunner& r, const std::string& title,
    const std::vector<std::string>& workloads, const std::vector<Design>& designs,
    const std::function<double(const RunMetrics&)>& metric,
    const std::string& unit);

}  // namespace avr
