#include "harness/result_cache.hh"

#include <sys/stat.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "common/backoff.hh"
#include "common/fault_inject.hh"
#include "common/file_lock.hh"
#include "common/profile.hh"
#include "common/simd.hh"

namespace avr {
namespace {

// Result-payload fixed fields (workload through wall_seconds, before the
// variable detail pairs): v3+ carry config_hash, v2 does not.
constexpr size_t kResultPayloadFixed = 24;
constexpr size_t kResultPayloadFixedV2 = 23;

// A v5 claim line has exactly 11 fields: version, L<len>, C<crc>, claim#,
// workload, design, config_hash, owner, claimed_at, lease_seconds, end#.
constexpr size_t kClaimFieldsV5 = 11;

// Every record ends with this sentinel field. A line torn mid-append —
// even one cut inside the final numeric token, which would otherwise parse
// as a shorter valid number — loses it and is rejected wholesale. The '#'
// keeps it disjoint from detail-counter key names.
constexpr const char* kRecordEnd = "end#";

// Kind marker in the workload slot of a claim payload; the '#' keeps it
// disjoint from workload names (identifiers / "trace:<path>" specs).
constexpr const char* kClaimKind = "claim#";

// Quarantine chatter cap per load: enough to diagnose, not enough to drown
// a terminal when a whole cache went bad (fsck gives the full accounting).
constexpr size_t kMaxQuarantineWarnings = 8;

void put(std::string& s, uint64_t v) { s += std::to_string(v); }

void put(std::string& s, double v) {
  char buf[64];
  // max_digits10 for binary64: decode round-trips the exact bit pattern.
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  s += buf;
}

// Strict numeric parses: the whole field must be consumed and there is no
// leading whitespace/sign, so corrupt fields like "12garbage" or "-1" (which
// stoull would happily wrap to 2^64-1) are rejected, not misread. Every
// numeric metric in a record is non-negative by construction.
uint64_t to_u64(const std::string& f) {
  if (f.empty() || !std::isdigit(static_cast<unsigned char>(f[0])))
    throw std::invalid_argument("not a non-negative integer: " + f);
  size_t pos = 0;
  const uint64_t v = std::stoull(f, &pos);
  if (pos != f.size()) throw std::invalid_argument("trailing junk: " + f);
  return v;
}

int to_int(const std::string& f) {
  const uint64_t v = to_u64(f);
  if (v > static_cast<uint64_t>(std::numeric_limits<int>::max()))
    throw std::out_of_range("int overflow: " + f);
  return static_cast<int>(v);
}

double to_dbl(const std::string& f) {
  if (f.empty() || std::isspace(static_cast<unsigned char>(f[0])) || f[0] == '-')
    throw std::invalid_argument("not a non-negative number: " + f);
  size_t pos = 0;
  const double v = std::stod(f, &pos);
  if (pos != f.size()) throw std::invalid_argument("trailing junk: " + f);
  return v;
}

std::vector<std::string> split_fields(const std::string& line) {
  std::istringstream ls(line);
  std::string field;
  std::vector<std::string> f;
  while (std::getline(ls, field, ',')) f.push_back(field);
  return f;
}

// Shared record-closing check: the sentinel must be the final field and the
// line must not end in ',' (getline would silently drop an empty last
// field, letting "…,end#," pass as closed).
bool record_closed(const std::vector<std::string>& f, const std::string& line) {
  return !f.empty() && f.back() == kRecordEnd && line.back() != ',';
}

// CRC-32C of the payload bytes with the standard pre/post conditioning,
// through the dispatched kernel table (hardware crc32 on SSE4.2+).
uint32_t record_crc(const char* data, size_t n) {
  return ~simd::kernels().crc32c_update(
      0xFFFFFFFFu, reinterpret_cast<const uint8_t*>(data), n);
}

// "5,L<len>,C<crc8hex>," prepended to an already-built payload.
std::string frame_v5(const std::string& payload) {
  char head[48];
  std::snprintf(head, sizeof(head), "%d,L%zu,C%08x,", kResultCacheVersion,
                payload.size(), record_crc(payload.data(), payload.size()));
  return head + payload;
}

// Parses the 8-lower-case-hex-digit CRC field body ("C" stripped).
bool parse_crc_hex(const std::string& f, uint32_t* out) {
  if (f.size() != 8) return false;
  uint32_t v = 0;
  for (char ch : f) {
    uint32_t d;
    if (ch >= '0' && ch <= '9')
      d = static_cast<uint32_t>(ch - '0');
    else if (ch >= 'a' && ch <= 'f')
      d = static_cast<uint32_t>(ch - 'a') + 10;
    else
      return false;
    v = (v << 4) | d;
  }
  *out = v;
  return true;
}

// Fixed fields + detail pairs of a result payload; f[start] is the
// workload field and f.back() the already-verified sentinel.
bool parse_result_payload(const std::vector<std::string>& f, size_t start,
                          bool has_hash, ExperimentResult* out) {
  const size_t fixed =
      start + (has_hash ? kResultPayloadFixed : kResultPayloadFixedV2);
  if (f.size() < fixed + 1) return false;
  try {
    ExperimentResult r;
    size_t i = start;
    r.workload = f[i++];
    if (r.workload.empty()) return false;
    r.design = static_cast<Design>(to_int(f[i++]));
    r.config_hash = has_hash ? to_u64(f[i++]) : config_fingerprint(SimConfig{});
    RunMetrics& m = r.m;
    m.cycles = to_u64(f[i++]);
    m.instructions = to_u64(f[i++]);
    m.ipc = to_dbl(f[i++]);
    m.amat = to_dbl(f[i++]);
    m.llc_requests = to_u64(f[i++]);
    m.llc_misses = to_u64(f[i++]);
    m.llc_mpki = to_dbl(f[i++]);
    m.dram_bytes = to_u64(f[i++]);
    m.dram_bytes_approx = to_u64(f[i++]);
    m.dram_bytes_other = to_u64(f[i++]);
    m.metadata_bytes = to_u64(f[i++]);
    m.energy.core = to_dbl(f[i++]);
    m.energy.l1l2 = to_dbl(f[i++]);
    m.energy.llc = to_dbl(f[i++]);
    m.energy.dram = to_dbl(f[i++]);
    m.energy.compressor = to_dbl(f[i++]);
    m.compression_ratio = to_dbl(f[i++]);
    m.footprint_bytes = to_u64(f[i++]);
    m.approx_bytes = to_u64(f[i++]);
    m.output_error = to_dbl(f[i++]);
    r.wall_seconds = to_dbl(f[i++]);
    // A record cut inside the detail pairs would leave a dangling key; the
    // sentinel already rejects it, but keep the parity check as defense.
    if ((f.size() - 1 - i) % 2 != 0) return false;
    while (i + 2 < f.size()) {
      m.detail[f[i]] = to_u64(f[i + 1]);
      i += 2;
    }
    *out = std::move(r);
    return true;
  } catch (const std::exception&) {
    return false;  // stoi/stoull/stod rejected a corrupt field
  }
}

// Claim payload; f[start] is the "claim#" marker.
bool parse_claim_payload(const std::vector<std::string>& f, size_t start,
                         ClaimRecord* out) {
  if (f.size() != start + 8) return false;
  if (f[start + 1].empty() || f[start + 4].empty()) return false;  // wl/owner
  try {
    ClaimRecord c;
    c.workload = f[start + 1];
    c.design = static_cast<Design>(to_int(f[start + 2]));
    c.config_hash = to_u64(f[start + 3]);
    c.owner = f[start + 4];
    c.claimed_at = to_u64(f[start + 5]);
    c.lease_seconds = to_u64(f[start + 6]);
    *out = std::move(c);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

CacheLineKind corrupt(std::string* reason, std::string why) {
  if (reason) *reason = std::move(why);
  return CacheLineKind::kCorrupt;
}

// Appends `line` (newline included by the caller) through an already-held
// lock, starting on a fresh line if a previous writer died mid-record.
// Rolls the file back on a failed write so a partial record of ours cannot
// corrupt the next writer's. `site` (when set) is consulted per write
// round: injected eintr re-enters the loop, short_write/eio/enospc fail the
// round (exercising the rollback), kill tears the record mid-write and
// dies — the crash the v5 framing exists to catch.
bool append_line_locked(const FileLock& lock, std::string line,
                        std::optional<fault::Site> site) {
  struct stat st;
  if (::fstat(lock.fd(), &st) != 0) return false;
  if (st.st_size > 0) {
    char last = '\n';
    if (::pread(lock.fd(), &last, 1, st.st_size - 1) == 1 && last != '\n')
      line.insert(line.begin(), '\n');
  }
  // One write() per record: with O_APPEND the kernel picks the offset
  // atomically, and the flock guarantees no interleaving even for short
  // writes — retry only ever continues our own record.
  size_t off = 0;
  while (off < line.size()) {
    const size_t want = line.size() - off;
    ssize_t n = -1;
    const fault::Kind fk =
        site ? fault::fire(*site) : fault::Kind::kNone;
    switch (fk) {
      case fault::Kind::kEintr:
        continue;  // one injected EINTR round
      case fault::Kind::kKill: {
        // Maximum damage: half the remaining bytes land, then SIGKILL —
        // a genuinely torn line with no rollback possible.
        ssize_t torn = ::write(lock.fd(), line.data() + off, want / 2);
        (void)torn;
        fault::kill_now(*site);
      }
      case fault::Kind::kShortWrite: {
        // A real partial write lands, then the device errors: the rollback
        // below must undo the landed bytes.
        n = ::write(lock.fd(), line.data() + off, want > 1 ? want / 2 : 1);
        if (n > 0) off += static_cast<size_t>(n);
        errno = EIO;
        n = -1;
        break;
      }
      case fault::Kind::kEio:
        errno = EIO;
        n = -1;
        break;
      case fault::Kind::kEnospc:
        errno = ENOSPC;
        n = -1;
        break;
      case fault::Kind::kTimeout:
        errno = ETIMEDOUT;
        n = -1;
        break;
      case fault::Kind::kNone:
        n = ::write(lock.fd(), line.data() + off, want);
        break;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      // Roll the file back to the pre-append size (the flock is still
      // held), so our partial record cannot corrupt the next writer's.
      if (::ftruncate(lock.fd(), st.st_size) != 0) {
        // Rollback failed; leave the partial record on its own line for
        // decode to reject (and fsck to report).
      }
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

CacheLineKind classify_cache_line(const std::string& line,
                                  ExperimentResult* result, ClaimRecord* claim,
                                  std::string* reason, int* version) {
  if (line.empty()) return CacheLineKind::kBlank;
  const std::vector<std::string> f = split_fields(line);
  if (f.empty()) return CacheLineKind::kBlank;
  const std::string& v = f[0];

  if (v == "5") {
    if (version) *version = 5;
    if (f.size() < 4 || f[1].size() < 2 || f[1][0] != 'L' || f[2].size() != 9 ||
        f[2][0] != 'C')
      return corrupt(reason, "bad v5 framing (want 5,L<len>,C<crc8hex>,...)");
    uint64_t framed_len;
    try {
      framed_len = to_u64(f[1].substr(1));
    } catch (const std::exception&) {
      return corrupt(reason, "bad length field '" + f[1] + "'");
    }
    uint32_t framed_crc;
    if (!parse_crc_hex(f[2].substr(1), &framed_crc))
      return corrupt(reason, "bad crc field '" + f[2] + "'");
    // Payload = everything after the third comma. Fields carry no commas
    // (split_fields round-trips), so the offset arithmetic is exact. Check
    // the length before the sentinel: a torn tail fails both, and the byte
    // counts are the more useful diagnostic.
    const size_t off = f[0].size() + f[1].size() + f[2].size() + 3;
    const size_t payload_len = line.size() - off;
    if (payload_len != framed_len) {
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    "length mismatch: framed %llu bytes, found %zu "
                    "(short write?)",
                    static_cast<unsigned long long>(framed_len), payload_len);
      return corrupt(reason, buf);
    }
    if (!record_closed(f, line))
      return corrupt(reason, "missing end# sentinel (torn append?)");
    const uint32_t actual_crc = record_crc(line.data() + off, payload_len);
    if (actual_crc != framed_crc) {
      char buf[80];
      std::snprintf(buf, sizeof(buf),
                    "crc mismatch: recorded %08x, computed %08x", framed_crc,
                    actual_crc);
      return corrupt(reason, buf);
    }
    if (f[3] == kClaimKind) {
      if (f.size() != kClaimFieldsV5 || !parse_claim_payload(f, 3, claim))
        return corrupt(reason, "corrupt claim payload (crc-valid framing)");
      return CacheLineKind::kClaim;
    }
    if (!parse_result_payload(f, 3, /*has_hash=*/true, result))
      return corrupt(reason, "corrupt result payload (crc-valid framing)");
    return CacheLineKind::kResult;
  }

  if (v == "2" || v == "3" || v == "4") {
    if (version) *version = v[0] - '0';
    // Claims are transient scheduler state: only the current version is
    // understood, older ones are another epoch's leftovers, not corruption.
    if (f.size() > 1 && f[1] == kClaimKind) return CacheLineKind::kForeign;
    if (!record_closed(f, line))
      return corrupt(reason, "missing end# sentinel (torn append?)");
    if (!parse_result_payload(f, 1, /*has_hash=*/v != "2", result))
      return corrupt(reason, "corrupt v" + v + " result payload");
    return CacheLineKind::kResult;
  }

  // A decimal version we do not know is a future format — foreign, not
  // corrupt (forward compatibility for merges). Anything else is garbage.
  bool numeric = !v.empty();
  for (char ch : v)
    if (ch < '0' || ch > '9') numeric = false;
  if (numeric) return CacheLineKind::kForeign;
  return corrupt(reason, "unrecognized record (no version field)");
}

std::string encode_result_line(const ExperimentResult& r) {
  const RunMetrics& m = r.m;
  std::string s = r.workload;  // workload names are identifiers: no commas
  s += ',';
  put(s, static_cast<uint64_t>(r.design));
  s += ',';
  put(s, r.config_hash);
  auto field = [&s](auto v) {
    s += ',';
    put(s, v);
  };
  field(m.cycles);
  field(m.instructions);
  field(m.ipc);
  field(m.amat);
  field(m.llc_requests);
  field(m.llc_misses);
  field(m.llc_mpki);
  field(m.dram_bytes);
  field(m.dram_bytes_approx);
  field(m.dram_bytes_other);
  field(m.metadata_bytes);
  field(m.energy.core);
  field(m.energy.l1l2);
  field(m.energy.llc);
  field(m.energy.dram);
  field(m.energy.compressor);
  field(m.compression_ratio);
  field(m.footprint_bytes);
  field(m.approx_bytes);
  field(m.output_error);
  field(r.wall_seconds);
  for (const auto& [k, v] : m.detail) {
    s += ',';
    s += k;
    s += ',';
    put(s, v);
  }
  s += ',';
  s += kRecordEnd;
  return frame_v5(s);
}

bool decode_result_line(const std::string& line, ExperimentResult* out) {
  ExperimentResult r;
  ClaimRecord c;
  if (classify_cache_line(line, &r, &c) != CacheLineKind::kResult) return false;
  *out = std::move(r);
  return true;
}

std::string encode_claim_line(const ClaimRecord& c) {
  std::string s = kClaimKind;
  s += ',';
  s += c.workload;
  s += ',';
  put(s, static_cast<uint64_t>(c.design));
  s += ',';
  put(s, c.config_hash);
  s += ',';
  s += c.owner;  // comma-free token (prof::default_owner sanitizes)
  s += ',';
  put(s, c.claimed_at);
  s += ',';
  put(s, c.lease_seconds);
  s += ',';
  s += kRecordEnd;
  return frame_v5(s);
}

bool decode_claim_line(const std::string& line, ClaimRecord* out) {
  ExperimentResult r;
  ClaimRecord c;
  if (classify_cache_line(line, &r, &c) != CacheLineKind::kClaim) return false;
  *out = std::move(c);
  return true;
}

bool append_result_line(const std::string& path, const ExperimentResult& r) {
  AVR_PROF_SCOPE(prof::Phase::kCacheIo);
  const std::string line = encode_result_line(r) + '\n';
  FileLock lock =
      FileLock::acquire_with_retry(path, O_RDWR | O_CREAT | O_APPEND);
  if (!lock.ok()) {
    std::fprintf(stderr, "[cache] append to %s: %s\n", path.c_str(),
                 lock.error_detail().c_str());
    return false;
  }
  for (int attempt = 0; attempt < kIoRetryAttempts; ++attempt) {
    if (attempt > 0)
      backoff_sleep(attempt - 1, static_cast<uint64_t>(::getpid()) ^
                                     (uint64_t{0xA99} << 32) ^
                                     static_cast<uint64_t>(attempt));
    if (append_line_locked(lock, line, fault::Site::kCacheAppend)) {
      prof::count(prof::Counter::kCacheAppends);
      return true;
    }
    std::fprintf(stderr,
                 "[cache] transient append failure on %s (%s), attempt "
                 "%d/%d\n",
                 path.c_str(), std::strerror(errno), attempt + 1,
                 kIoRetryAttempts);
  }
  return false;
}

std::map<ResultKey, ExperimentResult> load_result_cache(
    const std::string& path, std::optional<uint64_t> config_filter) {
  AVR_PROF_SCOPE(prof::Phase::kCacheIo);
  std::map<ResultKey, ExperimentResult> out;
  for (int attempt = 0; attempt < kIoRetryAttempts; ++attempt) {
    if (attempt > 0)
      backoff_sleep(attempt - 1, static_cast<uint64_t>(::getpid()) ^
                                     (uint64_t{0x10AD} << 32) ^
                                     static_cast<uint64_t>(attempt));
    const fault::Kind fk = fault::fire(fault::Site::kCacheLoad);
    if (fk == fault::Kind::kKill) fault::kill_now(fault::Site::kCacheLoad);
    if (fk != fault::Kind::kNone && fk != fault::Kind::kEintr) {
      std::fprintf(stderr,
                   "[cache] transient read failure on %s (injected %s), "
                   "attempt %d/%d\n",
                   path.c_str(), fault::kind_name(fk), attempt + 1,
                   kIoRetryAttempts);
      continue;
    }
    errno = 0;
    std::ifstream in(path);
    if (!in) {
      if (errno == ENOENT) return out;  // no cache yet: a cold start
      std::fprintf(stderr,
                   "[cache] transient open failure on %s (%s), attempt "
                   "%d/%d\n",
                   path.c_str(), std::strerror(errno), attempt + 1,
                   kIoRetryAttempts);
      continue;
    }
    std::string line;
    size_t line_no = 0;
    size_t quarantined = 0;
    while (std::getline(in, line)) {
      ++line_no;
      ExperimentResult r;
      ClaimRecord c;
      std::string reason;
      switch (classify_cache_line(line, &r, &c, &reason)) {
        case CacheLineKind::kResult:
          if (config_filter && r.config_hash != *config_filter) break;
          out[ResultKey{r.workload, r.design}] = std::move(r);
          break;
        case CacheLineKind::kCorrupt:
          if (++quarantined <= kMaxQuarantineWarnings)
            std::fprintf(stderr, "[cache] quarantined %s:%zu: %s\n",
                         path.c_str(), line_no, reason.c_str());
          break;
        default:  // blank / claim / foreign: not result material
          break;
      }
    }
    if (quarantined > kMaxQuarantineWarnings)
      std::fprintf(stderr,
                   "[cache] ... and %zu more quarantined lines in %s (run "
                   "avr_sweep --fsck for the full audit)\n",
                   quarantined - kMaxQuarantineWarnings, path.c_str());
    return out;
  }
  std::fprintf(stderr,
               "[cache] WARNING: could not read %s after %d attempts; "
               "degrading to an empty in-memory cache\n",
               path.c_str(), kIoRetryAttempts);
  return out;
}

std::map<ResultKey, ClaimRecord> load_claims(
    const std::string& path, std::optional<uint64_t> config_filter) {
  AVR_PROF_SCOPE(prof::Phase::kCacheIo);
  std::map<ResultKey, ClaimRecord> out;
  std::ifstream in(path);
  if (!in) return out;
  std::string line;
  while (std::getline(in, line)) {
    ClaimRecord c;
    if (!decode_claim_line(line, &c)) continue;
    if (config_filter && c.config_hash != *config_filter) continue;
    ResultKey key{c.workload, c.design};
    out[key] = std::move(c);  // later records supersede earlier ones
  }
  return out;
}

ClaimOutcome try_claim_point(const std::string& path, const ClaimRecord& want,
                             uint64_t now) {
  AVR_PROF_SCOPE(prof::Phase::kCacheIo);
  // Read-modify-append under the same exclusive flock the writers use: no
  // other process can append a result or claim between our scan and our
  // claim line, so exactly one owner wins a fresh claim on a point.
  FileLock lock =
      FileLock::acquire_with_retry(path, O_RDWR | O_CREAT | O_APPEND);
  if (!lock.ok()) {
    std::fprintf(stderr, "[cache] claim lock on %s: %s\n", path.c_str(),
                 lock.error_detail().c_str());
    return ClaimOutcome::kError;
  }

  bool done = false;
  bool have_claim = false;
  ClaimRecord governing;
  {
    std::ifstream in(path);
    if (!in) return ClaimOutcome::kError;
    std::string line;
    while (std::getline(in, line)) {
      ExperimentResult r;
      ClaimRecord c;
      switch (classify_cache_line(line, &r, &c)) {
        case CacheLineKind::kResult:
          if (r.workload == want.workload && r.design == want.design &&
              r.config_hash == want.config_hash)
            done = true;
          break;
        case CacheLineKind::kClaim:
          if (c.workload == want.workload && c.design == want.design &&
              c.config_hash == want.config_hash) {
            governing = std::move(c);  // last claim in file order governs
            have_claim = true;
          }
          break;
        default:
          break;
      }
    }
  }
  if (done) return ClaimOutcome::kDone;
  if (have_claim && !governing.expired(now)) {
    if (governing.owner == want.owner) return ClaimOutcome::kClaimed;
    prof::count(prof::Counter::kClaimsLost);
    return ClaimOutcome::kBusy;
  }

  // "claim.stake" fires only when a stake is really about to land, so the
  // k-th hit is the k-th stake this process wins — deterministic chaos
  // choreography. Error kinds fail the attempt before anything is written;
  // kill dies with the stake durably on disk (the dangling-claim crash).
  const fault::Kind fk = fault::fire(fault::Site::kClaimStake);
  if (fk != fault::Kind::kNone && fk != fault::Kind::kKill &&
      fk != fault::Kind::kEintr)
    return ClaimOutcome::kError;

  ClaimRecord stake = want;
  stake.claimed_at = now;
  if (!append_line_locked(lock, encode_claim_line(stake) + '\n', std::nullopt))
    return ClaimOutcome::kError;
  if (fk == fault::Kind::kKill) fault::kill_now(fault::Site::kClaimStake);
  const bool reclaimed = have_claim && governing.owner != want.owner;
  prof::count(reclaimed ? prof::Counter::kClaimsReclaimed
                        : prof::Counter::kClaimsWon);
  return reclaimed ? ClaimOutcome::kReclaimed : ClaimOutcome::kClaimed;
}

}  // namespace avr
