#include "harness/result_cache.hh"

#include <sys/stat.h>
#include <unistd.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "common/file_lock.hh"
#include "common/profile.hh"

namespace avr {
namespace {

// Fixed fields (through wall_seconds) before the variable detail pairs:
// v3/v4 carry config_hash between design and the metrics, v2 does not.
constexpr size_t kFixedFieldsV3 = 25;
constexpr size_t kFixedFieldsV2 = 24;

// Every record ends with this sentinel field. A line torn mid-append —
// even one cut inside the final numeric token, which would otherwise parse
// as a shorter valid number — loses it and is rejected wholesale. The '#'
// keeps it disjoint from detail-counter key names.
constexpr const char* kRecordEnd = "end#";

// Kind marker in the workload field of a claim record; the '#' keeps it
// disjoint from workload names (identifiers / "trace:<path>" specs).
constexpr const char* kClaimKind = "claim#";

// A claim record has exactly 9 fields: version, kind, workload, design,
// config_hash, owner, claimed_at, lease_seconds, end#.
constexpr size_t kClaimFields = 9;

void put(std::string& s, uint64_t v) { s += std::to_string(v); }

void put(std::string& s, double v) {
  char buf[64];
  // max_digits10 for binary64: decode round-trips the exact bit pattern.
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  s += buf;
}

// Strict numeric parses: the whole field must be consumed and there is no
// leading whitespace/sign, so corrupt fields like "12garbage" or "-1" (which
// stoull would happily wrap to 2^64-1) are rejected, not misread. Every
// numeric metric in a record is non-negative by construction.
uint64_t to_u64(const std::string& f) {
  if (f.empty() || !std::isdigit(static_cast<unsigned char>(f[0])))
    throw std::invalid_argument("not a non-negative integer: " + f);
  size_t pos = 0;
  const uint64_t v = std::stoull(f, &pos);
  if (pos != f.size()) throw std::invalid_argument("trailing junk: " + f);
  return v;
}

int to_int(const std::string& f) {
  const uint64_t v = to_u64(f);
  if (v > static_cast<uint64_t>(std::numeric_limits<int>::max()))
    throw std::out_of_range("int overflow: " + f);
  return static_cast<int>(v);
}

double to_dbl(const std::string& f) {
  if (f.empty() || std::isspace(static_cast<unsigned char>(f[0])) || f[0] == '-')
    throw std::invalid_argument("not a non-negative number: " + f);
  size_t pos = 0;
  const double v = std::stod(f, &pos);
  if (pos != f.size()) throw std::invalid_argument("trailing junk: " + f);
  return v;
}

std::vector<std::string> split_fields(const std::string& line) {
  std::istringstream ls(line);
  std::string field;
  std::vector<std::string> f;
  while (std::getline(ls, field, ',')) f.push_back(field);
  return f;
}

// Shared record-closing check: the sentinel must be the final field and the
// line must not end in ',' (getline would silently drop an empty last
// field, letting "…,end#," pass as closed).
bool record_closed(const std::vector<std::string>& f, const std::string& line) {
  return !f.empty() && f.back() == kRecordEnd && line.back() != ',';
}

// Appends `line` (newline included by the caller) through an already-held
// lock, starting on a fresh line if a previous writer died mid-record.
// Rolls the file back on a failed write so a partial record of ours cannot
// corrupt the next writer's.
bool append_line_locked(const FileLock& lock, std::string line) {
  struct stat st;
  if (::fstat(lock.fd(), &st) != 0) return false;
  if (st.st_size > 0) {
    char last = '\n';
    if (::pread(lock.fd(), &last, 1, st.st_size - 1) == 1 && last != '\n')
      line.insert(line.begin(), '\n');
  }
  // One write() per record: with O_APPEND the kernel picks the offset
  // atomically, and the flock guarantees no interleaving even for short
  // writes — retry only ever continues our own record.
  size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = ::write(lock.fd(), line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      // Roll the file back to the pre-append size (the flock is still
      // held), so our partial record cannot corrupt the next writer's.
      if (::ftruncate(lock.fd(), st.st_size) != 0) {
        // Rollback failed; leave the partial record on its own line for
        // decode to reject.
      }
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

std::string encode_result_line(const ExperimentResult& r) {
  const RunMetrics& m = r.m;
  std::string s = std::to_string(kResultCacheVersion);
  s += ',';
  s += r.workload;  // workload names are identifiers: no commas/newlines
  s += ',';
  put(s, static_cast<uint64_t>(r.design));
  s += ',';
  put(s, r.config_hash);
  auto field = [&s](auto v) {
    s += ',';
    put(s, v);
  };
  field(m.cycles);
  field(m.instructions);
  field(m.ipc);
  field(m.amat);
  field(m.llc_requests);
  field(m.llc_misses);
  field(m.llc_mpki);
  field(m.dram_bytes);
  field(m.dram_bytes_approx);
  field(m.dram_bytes_other);
  field(m.metadata_bytes);
  field(m.energy.core);
  field(m.energy.l1l2);
  field(m.energy.llc);
  field(m.energy.dram);
  field(m.energy.compressor);
  field(m.compression_ratio);
  field(m.footprint_bytes);
  field(m.approx_bytes);
  field(m.output_error);
  field(r.wall_seconds);
  for (const auto& [k, v] : m.detail) {
    s += ',';
    s += k;
    s += ',';
    put(s, v);
  }
  s += ',';
  s += kRecordEnd;
  return s;
}

bool decode_result_line(const std::string& line, ExperimentResult* out) {
  if (line.empty()) return false;
  const std::vector<std::string> f = split_fields(line);
  if (f.empty()) return false;
  // v4 is the native format; v3 (identical result layout) and v2 (the
  // pre-config-hash layout) are still valid — every v2 cache was produced
  // under the default configuration, so v2 decodes with the default
  // fingerprint.
  const bool v2 = f[0] == "2";
  if (!v2 && f[0] != "3" && f[0] != std::to_string(kResultCacheVersion))
    return false;
  if (f.size() > 1 && f[1] == kClaimKind) return false;  // a claim, no result
  const size_t fixed = v2 ? kFixedFieldsV2 : kFixedFieldsV3;
  if (f.size() < fixed + 1) return false;
  // The sentinel must close the record: a torn tail — even one ending in
  // digits that happen to parse — cannot end with it.
  if (!record_closed(f, line)) return false;
  try {
    ExperimentResult r;
    size_t i = 1;
    r.workload = f[i++];
    r.design = static_cast<Design>(to_int(f[i++]));
    r.config_hash = v2 ? config_fingerprint(SimConfig{}) : to_u64(f[i++]);
    RunMetrics& m = r.m;
    m.cycles = to_u64(f[i++]);
    m.instructions = to_u64(f[i++]);
    m.ipc = to_dbl(f[i++]);
    m.amat = to_dbl(f[i++]);
    m.llc_requests = to_u64(f[i++]);
    m.llc_misses = to_u64(f[i++]);
    m.llc_mpki = to_dbl(f[i++]);
    m.dram_bytes = to_u64(f[i++]);
    m.dram_bytes_approx = to_u64(f[i++]);
    m.dram_bytes_other = to_u64(f[i++]);
    m.metadata_bytes = to_u64(f[i++]);
    m.energy.core = to_dbl(f[i++]);
    m.energy.l1l2 = to_dbl(f[i++]);
    m.energy.llc = to_dbl(f[i++]);
    m.energy.dram = to_dbl(f[i++]);
    m.energy.compressor = to_dbl(f[i++]);
    m.compression_ratio = to_dbl(f[i++]);
    m.footprint_bytes = to_u64(f[i++]);
    m.approx_bytes = to_u64(f[i++]);
    m.output_error = to_dbl(f[i++]);
    r.wall_seconds = to_dbl(f[i++]);
    // A record cut inside the detail pairs would leave a dangling key; the
    // sentinel already rejects it, but keep the parity check as defense.
    if ((f.size() - 1 - i) % 2 != 0) return false;
    while (i + 2 < f.size()) {
      m.detail[f[i]] = to_u64(f[i + 1]);
      i += 2;
    }
    *out = std::move(r);
    return true;
  } catch (const std::exception&) {
    return false;  // stoi/stoull/stod rejected a corrupt field
  }
}

std::string encode_claim_line(const ClaimRecord& c) {
  std::string s = std::to_string(kResultCacheVersion);
  s += ',';
  s += kClaimKind;
  s += ',';
  s += c.workload;
  s += ',';
  put(s, static_cast<uint64_t>(c.design));
  s += ',';
  put(s, c.config_hash);
  s += ',';
  s += c.owner;  // comma-free token (prof::default_owner sanitizes)
  s += ',';
  put(s, c.claimed_at);
  s += ',';
  put(s, c.lease_seconds);
  s += ',';
  s += kRecordEnd;
  return s;
}

bool decode_claim_line(const std::string& line, ClaimRecord* out) {
  if (line.empty()) return false;
  const std::vector<std::string> f = split_fields(line);
  // Claims are transient scheduler state, not archival data: only the
  // current format version is understood.
  if (f.size() != kClaimFields) return false;
  if (f[0] != std::to_string(kResultCacheVersion) || f[1] != kClaimKind)
    return false;
  if (!record_closed(f, line)) return false;
  if (f[2].empty() || f[5].empty()) return false;  // workload / owner
  try {
    ClaimRecord c;
    c.workload = f[2];
    c.design = static_cast<Design>(to_int(f[3]));
    c.config_hash = to_u64(f[4]);
    c.owner = f[5];
    c.claimed_at = to_u64(f[6]);
    c.lease_seconds = to_u64(f[7]);
    *out = std::move(c);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

bool append_result_line(const std::string& path, const ExperimentResult& r) {
  AVR_PROF_SCOPE(prof::Phase::kCacheIo);
  const std::string line = encode_result_line(r) + '\n';
  FileLock lock(path, O_RDWR | O_CREAT | O_APPEND);
  if (!lock.ok()) return false;
  if (!append_line_locked(lock, line)) return false;
  prof::count(prof::Counter::kCacheAppends);
  return true;
}

std::map<ResultKey, ExperimentResult> load_result_cache(
    const std::string& path, std::optional<uint64_t> config_filter) {
  AVR_PROF_SCOPE(prof::Phase::kCacheIo);
  std::map<ResultKey, ExperimentResult> out;
  std::ifstream in(path);
  if (!in) return out;
  std::string line;
  while (std::getline(in, line)) {
    ExperimentResult r;
    if (!decode_result_line(line, &r)) continue;
    if (config_filter && r.config_hash != *config_filter) continue;
    ResultKey key{r.workload, r.design};
    out[key] = std::move(r);
  }
  return out;
}

std::map<ResultKey, ClaimRecord> load_claims(
    const std::string& path, std::optional<uint64_t> config_filter) {
  AVR_PROF_SCOPE(prof::Phase::kCacheIo);
  std::map<ResultKey, ClaimRecord> out;
  std::ifstream in(path);
  if (!in) return out;
  std::string line;
  while (std::getline(in, line)) {
    ClaimRecord c;
    if (!decode_claim_line(line, &c)) continue;
    if (config_filter && c.config_hash != *config_filter) continue;
    ResultKey key{c.workload, c.design};
    out[key] = std::move(c);  // later records supersede earlier ones
  }
  return out;
}

ClaimOutcome try_claim_point(const std::string& path, const ClaimRecord& want,
                             uint64_t now) {
  AVR_PROF_SCOPE(prof::Phase::kCacheIo);
  // Read-modify-append under the same exclusive flock the writers use: no
  // other process can append a result or claim between our scan and our
  // claim line, so exactly one owner wins a fresh claim on a point.
  FileLock lock(path, O_RDWR | O_CREAT | O_APPEND);
  if (!lock.ok()) return ClaimOutcome::kError;

  bool done = false;
  bool have_claim = false;
  ClaimRecord governing;
  {
    std::ifstream in(path);
    if (!in) return ClaimOutcome::kError;
    std::string line;
    while (std::getline(in, line)) {
      ExperimentResult r;
      if (decode_result_line(line, &r)) {
        if (r.workload == want.workload && r.design == want.design &&
            r.config_hash == want.config_hash)
          done = true;
        continue;
      }
      ClaimRecord c;
      if (decode_claim_line(line, &c) && c.workload == want.workload &&
          c.design == want.design && c.config_hash == want.config_hash) {
        governing = std::move(c);  // last claim in file order governs
        have_claim = true;
      }
    }
  }
  if (done) return ClaimOutcome::kDone;
  if (have_claim && !governing.expired(now)) {
    if (governing.owner == want.owner) return ClaimOutcome::kClaimed;
    prof::count(prof::Counter::kClaimsLost);
    return ClaimOutcome::kBusy;
  }

  ClaimRecord stake = want;
  stake.claimed_at = now;
  if (!append_line_locked(lock, encode_claim_line(stake) + '\n'))
    return ClaimOutcome::kError;
  const bool reclaimed = have_claim && governing.owner != want.owner;
  prof::count(reclaimed ? prof::Counter::kClaimsReclaimed
                        : prof::Counter::kClaimsWon);
  return reclaimed ? ClaimOutcome::kReclaimed : ClaimOutcome::kClaimed;
}

}  // namespace avr
