// Grid enumeration, shard slicing and the claim-based work-stealing
// scheduler for the distributed paper sweep.
//
// The canonical grid order is workload-major, design-minor — the same order
// run_all() returns. Two ways to split it across processes:
//
//   - *Static shards* (--shard i/N): shard i owns every grid point whose
//     canonical index ≡ i (mod N). Slices are computed independently by
//     each process from nothing but the (workloads, designs, i, N) tuple,
//     are pairwise disjoint, and their union is exactly the full grid.
//     Round-robin spreads cheap and expensive designs across shards, but a
//     ~30x cost spread still leaves shards idle while a straggler finishes.
//   - *Work stealing* (--claim): every process sees the full grid and
//     claims points one at a time by appending claim records through the
//     flock'd cache file (run_work_stealing below, protocol in
//     harness/result_cache.hh and docs/OPERATIONS.md). Stragglers
//     rebalance automatically, a killed process's claims expire and get
//     reclaimed, and no i/N coordination is needed up front.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/config.hh"
#include "common/profile.hh"
#include "common/types.hh"

namespace avr {

class ExperimentRunner;

namespace sweep {

/// One static slice of the grid: this process is shard `index` of `count`.
struct Shard {
  unsigned index = 0;
  unsigned count = 1;
};

using Point = std::pair<std::string, Design>;

/// Method-selection bitmask values for the --methods config axis: which
/// compression methods variant_config() enables. -1 (kMethodsDefault) keeps
/// the default configuration's flags (1D+2D lossy, BDI-hybrid off).
inline constexpr int kMethodsDefault = -1;
inline constexpr int kMethods1D = 1;   // AvrConfig::enable_1d
inline constexpr int kMethods2D = 2;   // AvrConfig::enable_2d
inline constexpr int kMethodsBdi = 4;  // AvrConfig::enable_bdi_hybrid

/// One point of a (config x workload x design) grid: the config axes are
/// the forced T1 threshold (t1 == -1 means the default per-workload
/// thresholds) and the method-selection mask (methods == -1 means the
/// default method set). Records of different variants carry different v3
/// config fingerprints, so one cache file holds the whole variant grid.
struct VariantPoint {
  int t1 = -1;
  Point point;
  int methods = kMethodsDefault;

  bool operator==(const VariantPoint&) const = default;
  auto operator<=>(const VariantPoint&) const = default;
};

/// Parses "i/N" (e.g. "0/3"). Throws std::invalid_argument unless
/// 0 <= i < N.
Shard parse_shard(const std::string& spec);

/// Full cross product in canonical (workload-major) order.
std::vector<Point> full_grid(const std::vector<std::string>& workloads,
                             const std::vector<Design>& designs);

/// Full (t1 x workload x design) cross product: t1-major, then the
/// canonical workload-major order within each variant.
std::vector<VariantPoint> full_variant_grid(
    const std::vector<int>& t1_values, const std::vector<std::string>& workloads,
    const std::vector<Design>& designs);

/// Full (methods x t1 x workload x design) cross product: methods-major,
/// then t1-major, then the canonical workload-major order. The default axes
/// ({-1}, {-1}) reproduce the historical grid point-for-point.
std::vector<VariantPoint> full_variant_grid(
    const std::vector<int>& t1_values, const std::vector<int>& methods_values,
    const std::vector<std::string>& workloads,
    const std::vector<Design>& designs);

/// The points shard `s` owns, in canonical order.
std::vector<Point> shard_slice(const std::vector<Point>& grid, Shard s);
std::vector<VariantPoint> shard_slice(const std::vector<VariantPoint>& grid,
                                      Shard s);

/// The base SimConfig simulating variant (`t1`, `methods`): default except
/// avr.t1_override (see AvrConfig::t1_override) and — when methods >= 0 —
/// the three method-enable flags set from the kMethods* mask. The default
/// axes (-1, -1) are exactly the default config, fingerprint included; so
/// is the mask that spells out the default method set (1d+2d, no BDI).
SimConfig variant_config(int t1, int methods = kMethodsDefault);

/// Comma-separated list of T1 mantissa-msbit indices (e.g. "4,6,8");
/// "" yields {-1}, the default per-workload-threshold grid. Throws
/// std::invalid_argument for non-numeric or out-of-range (0..22) entries.
std::vector<int> parse_t1_list(const std::string& csv);

/// Comma-separated list of method selections, each a '+'-joined set of
/// tokens "1d", "2d", "bdi" or the alias "avr" (= 1d+2d): e.g.
/// "avr,avr+bdi" sweeps the default lossy pair against the BDI-hybrid.
/// "" yields {kMethodsDefault}. Throws std::invalid_argument for unknown
/// tokens or an empty selection.
std::vector<int> parse_methods_list(const std::string& csv);

/// Canonical display name of a selection mask: "default" for
/// kMethodsDefault, else the '+'-joined enabled tokens (e.g. "1d+2d+bdi").
std::string method_set_name(int methods);

/// Parses one design name as printed by to_string(Design) —
/// "baseline", "dganger", "truncate", "ZeroAVR", "AVR" — case-insensitively.
/// Throws std::invalid_argument for unknown names.
Design design_from_name(const std::string& name);

/// Comma-separated design names; "" yields ExperimentRunner::paper_designs().
std::vector<Design> parse_design_list(const std::string& csv);

/// Comma-separated workload names — built-in kernels and/or trace specs
/// ("trace:<path>", whose file is loaded and validated here, eagerly); ""
/// yields workload_names(). Throws std::invalid_argument for unknown names
/// and for missing/corrupt trace files.
std::vector<std::string> parse_workload_list(const std::string& csv);

// ---- claim-based work stealing ---------------------------------------------

/// Knobs for run_work_stealing.
struct StealOptions {
  /// Claim-owner token (comma-free; "" uses prof::default_owner()).
  std::string owner;
  /// Fixed lease in seconds for every claim; 0 picks an adaptive lease of
  /// max(30, 20 x cost_estimate) seconds per point — generous enough that a
  /// live shard never loses a point it is still simulating, short enough
  /// that a killed shard's points come back within a minute.
  uint64_t lease_seconds = 0;
  /// Sleep between rescans when every remaining point is claimed by a live
  /// foreign owner (waiting for their results — or their leases — to land).
  double poll_seconds = 0.5;
};

/// What one process's run_work_stealing did, for logs and --profile.
struct StealOutcome {
  size_t simulated = 0;       // points this process claimed and simulated
  size_t reclaimed = 0;       // of those, won by superseding an expired claim
  size_t done_elsewhere = 0;  // points another owner completed
  size_t claim_errors = 0;    // points whose claim I/O failed even after the
                              // bounded retries (each ran uncoordinated)
  bool degraded = false;      // true once any point ran without a claim:
                              // waste (duplicate work) became possible, but
                              // results stay correct — points are
                              // deterministic and loads duplicate-tolerant
  prof::Totals sched;         // scheduler-side cache I/O + claim counters
};

/// Runs `grid` to completion cooperatively with any number of concurrent
/// processes sharing `cache_path`: each of `n_threads` workers (0 =
/// hardware concurrency) repeatedly scans the remaining points in
/// descending cost_estimate order, stakes a claim through the cache flock
/// (result_cache.hh), and simulates the points it wins via
/// `runner_for(vp)` — which must return, for each (t1, methods) variant in
/// the grid, a runner writing to `cache_path` (the same runner every
/// call; vp.point is irrelevant to the lookup). Returns
/// once *every* point has a result, whether produced here or by another
/// process; a process that finishes early keeps polling (poll_seconds) and
/// reclaims expired claims, so a SIGKILLed peer's points are picked up
/// automatically. Throws on a simulation error. Cache I/O failure does NOT
/// abort the sweep: a claim that still fails after bounded backoff retries
/// degrades that point to uncoordinated simulation with a loud warning
/// (waste over wrongness — see StealOutcome::degraded).
StealOutcome run_work_stealing(
    const std::vector<VariantPoint>& grid,
    const std::function<ExperimentRunner&(const VariantPoint&)>& runner_for,
    const std::string& cache_path, const StealOptions& opts,
    unsigned n_threads = 0);

}  // namespace sweep
}  // namespace avr
