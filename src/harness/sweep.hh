// Grid enumeration and shard slicing for the distributed paper sweep.
//
// The canonical grid order is workload-major, design-minor — the same order
// run_all() returns. Shard i of N owns every grid point whose canonical
// index ≡ i (mod N): slices are computed independently by each process from
// nothing but the (workloads, designs, i, N) tuple, are pairwise disjoint,
// and their union is exactly the full grid. Round-robin (rather than
// contiguous ranges) spreads each workload's cheap and expensive designs
// across shards, which keeps shard wall-clocks close even before the
// longest-first scheduler kicks in.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/config.hh"
#include "common/types.hh"

namespace avr {
namespace sweep {

struct Shard {
  unsigned index = 0;
  unsigned count = 1;
};

using Point = std::pair<std::string, Design>;

/// One point of a (config, workload, design) grid: the config axis is the
/// forced T1 threshold (t1 == -1 means the default per-workload
/// thresholds). Records of different t1 values carry different v3 config
/// fingerprints, so one cache file holds the whole variant grid.
struct VariantPoint {
  int t1 = -1;
  Point point;

  bool operator==(const VariantPoint&) const = default;
  auto operator<=>(const VariantPoint&) const = default;
};

/// Parses "i/N" (e.g. "0/3"). Throws std::invalid_argument unless
/// 0 <= i < N.
Shard parse_shard(const std::string& spec);

/// Full cross product in canonical (workload-major) order.
std::vector<Point> full_grid(const std::vector<std::string>& workloads,
                             const std::vector<Design>& designs);

/// Full (t1 x workload x design) cross product: t1-major, then the
/// canonical workload-major order within each variant.
std::vector<VariantPoint> full_variant_grid(
    const std::vector<int>& t1_values, const std::vector<std::string>& workloads,
    const std::vector<Design>& designs);

/// The points shard `s` owns, in canonical order.
std::vector<Point> shard_slice(const std::vector<Point>& grid, Shard s);
std::vector<VariantPoint> shard_slice(const std::vector<VariantPoint>& grid,
                                      Shard s);

/// The base SimConfig simulating variant `t1`: default except
/// avr.t1_override (see AvrConfig::t1_override). t1 == -1 is exactly the
/// default config, fingerprint included.
SimConfig variant_config(int t1);

/// Comma-separated list of T1 mantissa-msbit indices (e.g. "4,6,8");
/// "" yields {-1}, the default per-workload-threshold grid. Throws
/// std::invalid_argument for non-numeric or out-of-range (0..22) entries.
std::vector<int> parse_t1_list(const std::string& csv);

/// Parses one design name as printed by to_string(Design) —
/// "baseline", "dganger", "truncate", "ZeroAVR", "AVR" — case-insensitively.
/// Throws std::invalid_argument for unknown names.
Design design_from_name(const std::string& name);

/// Comma-separated design names; "" yields ExperimentRunner::paper_designs().
std::vector<Design> parse_design_list(const std::string& csv);

/// Comma-separated workload names — built-in kernels and/or trace specs
/// ("trace:<path>", whose file is loaded and validated here, eagerly); ""
/// yields workload_names(). Throws std::invalid_argument for unknown names
/// and for missing/corrupt trace files.
std::vector<std::string> parse_workload_list(const std::string& csv);

}  // namespace sweep
}  // namespace avr
