// Offline audit and repair for result-cache files (`avr_sweep --fsck
// [--repair]`, incident-response runbook in docs/OPERATIONS.md).
//
// The loaders quarantine bad lines one at a time as they stream past; fsck
// is the full accounting pass: it classifies every line of a cache —
// checksum failures, torn tails, unparseable payloads, duplicate and
// *conflicting* duplicate results, superseded/moot/dangling claims, legacy
// format versions — and repair_cache() rewrites the file as a clean
// current-version cache via tmp + rename under the cache flock.
//
// Repair policy (waste nothing that is still meaningful):
//   - keep the LAST valid result per (workload, design, config_hash) key —
//     the same record a load would have used — re-encoded at the current
//     version (doubles round-trip bit-exactly, so values are preserved);
//   - keep governing claims that are dangling and still LIVE (their owner
//     may be mid-simulation); drop moot, superseded and expired claims
//     (an expired dangling claim is a crashed worker: dropping it lets the
//     next --claim run stake the point fresh);
//   - drop corrupt, foreign and blank lines.
#pragma once

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "harness/result_cache.hh"

namespace avr {

/// One quarantined line: where and why.
struct FsckIssue {
  size_t line_no = 0;  // 1-based
  std::string reason;
};

struct FsckReport {
  std::string io_error;       // non-empty: the file could not be read at all
  size_t total_lines = 0;
  size_t blank_lines = 0;
  size_t foreign_lines = 0;   // future versions, stale claim epochs
  std::map<int, size_t> result_versions;  // version -> valid result records
  size_t claims = 0;              // valid claim records
  size_t superseded_claims = 0;   // replaced by a later claim on the same key
  size_t moot_claims = 0;         // governing claim, but the point has a result
  size_t dangling_live = 0;       // governing claim, no result, lease live
  size_t dangling_expired = 0;    // same, lease run out: a crashed worker
  size_t duplicate_results = 0;   // re-records with identical metric values
  size_t conflicting_results = 0; // duplicates whose metric values DIFFER
  std::vector<FsckIssue> corrupt; // quarantined lines, file order

  /// Valid result records not at kResultCacheVersion (they load fine; a
  /// repair upgrades them so the CRC guards them too).
  size_t legacy_results() const;

  /// The cache needs attention: unreadable, corrupt or value-conflicting
  /// lines, or expired dangling claims (a crashed worker's leftovers).
  /// Live dangling claims are NOT an issue — that is what a healthy
  /// mid-sweep cache looks like.
  bool has_issues() const {
    return !io_error.empty() || !corrupt.empty() || conflicting_results > 0 ||
           dangling_expired > 0;
  }

  /// A repair would change the file: any issue, or mere clutter (legacy
  /// versions, duplicates, superseded/moot/expired claims).
  bool needs_repair() const {
    return has_issues() || legacy_results() > 0 || duplicate_results > 0 ||
           superseded_claims > 0 || moot_claims > 0;
  }
};

/// Audits `path` without taking the cache lock (readers never do). `now`
/// (wall-clock epoch seconds) decides live vs expired for claims.
FsckReport fsck_cache(const std::string& path, uint64_t now);

/// Human-readable multi-line report.
void print_fsck_report(std::FILE* out, const std::string& path,
                       const FsckReport& r);

/// Rewrites `path` per the repair policy above, atomically (tmp + rename)
/// and under the cache flock so no concurrent writer's append is lost.
/// False + *error on failure; the original file is untouched then.
bool repair_cache(const std::string& path, uint64_t now, std::string* error);

}  // namespace avr
