// Q16.16 fixed-point arithmetic used by the AVR compressor datapath.
//
// Sec. 3.3: "The core part of the compression is using fixed point
// arithmetic to reduce complexity. Consequently, memory blocks containing
// floating point numbers are converted to fixed point before compression
// and back to floating point after decompression."
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <span>

namespace avr {

/// Two's-complement Q16.16 fixed point value (the hardware converters of
/// Saldanha et al. [35] map to/from this format in one cycle).
class Fixed32 {
 public:
  static constexpr int kFracBits = 16;
  static constexpr int32_t kOne = 1 << kFracBits;

  constexpr Fixed32() = default;
  static constexpr Fixed32 from_raw(int32_t raw) {
    Fixed32 f;
    f.raw_ = raw;
    return f;
  }

  /// Saturating conversion from float. Values outside the representable
  /// range clamp to +/- max; the biasing stage is responsible for keeping
  /// block values inside range so saturation is the uncommon path.
  ///
  /// Rounding is half-away-from-zero, spelled as inline arithmetic instead
  /// of std::lround so the (batch) conversion stage inlines: `scaled` is
  /// exact (a float times 2^16 in a double) and |scaled| < 2^31 after the
  /// clamps, so adding ±0.5 is exact and truncation reproduces lround's
  /// result bit for bit.
  static Fixed32 from_float(float v) {
    if (std::isnan(v)) return from_raw(0);
    const double scaled = static_cast<double>(v) * kOne;
    if (scaled >= static_cast<double>(std::numeric_limits<int32_t>::max()))
      return from_raw(std::numeric_limits<int32_t>::max());
    if (scaled <= static_cast<double>(std::numeric_limits<int32_t>::min()))
      return from_raw(std::numeric_limits<int32_t>::min());
    return from_raw(static_cast<int32_t>(scaled >= 0 ? scaled + 0.5 : scaled - 0.5));
  }

  constexpr int32_t raw() const { return raw_; }
  float to_float() const { return static_cast<float>(raw_) / kOne; }
  double to_double() const { return static_cast<double>(raw_) / kOne; }

  constexpr Fixed32 operator+(Fixed32 o) const { return from_raw(raw_ + o.raw_); }
  constexpr Fixed32 operator-(Fixed32 o) const { return from_raw(raw_ - o.raw_); }
  constexpr bool operator==(const Fixed32&) const = default;

  /// Average of `n` values accumulated in 64-bit (the downsampler sums a
  /// sub-block in a wide accumulator and shifts; for n = 16 this is a plain
  /// arithmetic right shift by 4 in hardware).
  template <typename It>
  static Fixed32 average(It first, It last) {
    int64_t acc = 0;
    int64_t n = 0;
    for (It it = first; it != last; ++it, ++n) acc += it->raw();
    if (n == 0) return from_raw(0);
    // Round-to-nearest division, matching a hardware round-half-away shift.
    const int64_t half = n / 2;
    const int64_t q = acc >= 0 ? (acc + half) / n : -((-acc + half) / n);
    return from_raw(static_cast<int32_t>(q));
  }

  /// Linear blend raw = a + (b - a) * w / wmax with integer weights,
  /// as used by the interpolating reconstructor.
  static constexpr Fixed32 lerp(Fixed32 a, Fixed32 b, int w, int wmax) {
    const int64_t d = static_cast<int64_t>(b.raw_) - a.raw_;
    return from_raw(static_cast<int32_t>(a.raw_ + (d * w) / wmax));
  }

 private:
  int32_t raw_ = 0;
};

// ---- batch (structure-of-arrays) conversion kernels ------------------------
//
// The compressor pipeline runs its conversion stages over whole 256-value
// blocks held in flat arrays (a Fixed32 is one int32, so an array of them IS
// the SoA layout). The float conversion dispatches to the runtime-selected
// SIMD kernel (common/simd.hh) — one indirect call per block, with the
// scalar reference loop preserved verbatim in simd.cc.

/// Float block -> Q16.16 block. Non-finite inputs (the NaN/Inf values the
/// error check later stores exactly as outliers) map to raw 0, matching the
/// scalar compressor convention, not saturation.
///
/// The fast path is a single range test around the branch-heavy scalar
/// conversion: any `scaled` strictly inside (INT32_MIN-0.5, INT32_MAX+0.5)
/// rounds half-away to the same value from_float produces (the saturating
/// comparisons in from_float only redirect values that round to the clamp
/// anyway), and NaN fails the range test, so the slow path sees exactly the
/// non-finite and saturating inputs. Defined in simd.cc; every dispatch
/// level is bit-identical.
void fixed32_from_f32_batch(std::span<const float> in, std::span<Fixed32> out);

/// Reinterpret a block of raw 32-bit images (DType::kFixed32 regions store
/// Q16.16 bit patterns in float-typed storage) as fixed-point values.
inline void fixed32_from_raw_bits_batch(std::span<const float> in,
                                        std::span<Fixed32> out) {
  static_assert(sizeof(Fixed32) == sizeof(float));
  __builtin_memcpy(out.data(), in.data(), in.size() * sizeof(float));
}

}  // namespace avr
