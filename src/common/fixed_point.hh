// Q16.16 fixed-point arithmetic used by the AVR compressor datapath.
//
// Sec. 3.3: "The core part of the compression is using fixed point
// arithmetic to reduce complexity. Consequently, memory blocks containing
// floating point numbers are converted to fixed point before compression
// and back to floating point after decompression."
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace avr {

/// Two's-complement Q16.16 fixed point value (the hardware converters of
/// Saldanha et al. [35] map to/from this format in one cycle).
class Fixed32 {
 public:
  static constexpr int kFracBits = 16;
  static constexpr int32_t kOne = 1 << kFracBits;

  constexpr Fixed32() = default;
  static constexpr Fixed32 from_raw(int32_t raw) {
    Fixed32 f;
    f.raw_ = raw;
    return f;
  }

  /// Saturating conversion from float. Values outside the representable
  /// range clamp to +/- max; the biasing stage is responsible for keeping
  /// block values inside range so saturation is the uncommon path.
  static Fixed32 from_float(float v) {
    if (std::isnan(v)) return from_raw(0);
    const double scaled = static_cast<double>(v) * kOne;
    if (scaled >= static_cast<double>(std::numeric_limits<int32_t>::max()))
      return from_raw(std::numeric_limits<int32_t>::max());
    if (scaled <= static_cast<double>(std::numeric_limits<int32_t>::min()))
      return from_raw(std::numeric_limits<int32_t>::min());
    return from_raw(static_cast<int32_t>(std::lround(scaled)));
  }

  constexpr int32_t raw() const { return raw_; }
  float to_float() const { return static_cast<float>(raw_) / kOne; }
  double to_double() const { return static_cast<double>(raw_) / kOne; }

  constexpr Fixed32 operator+(Fixed32 o) const { return from_raw(raw_ + o.raw_); }
  constexpr Fixed32 operator-(Fixed32 o) const { return from_raw(raw_ - o.raw_); }
  constexpr bool operator==(const Fixed32&) const = default;

  /// Average of `n` values accumulated in 64-bit (the downsampler sums a
  /// sub-block in a wide accumulator and shifts; for n = 16 this is a plain
  /// arithmetic right shift by 4 in hardware).
  template <typename It>
  static Fixed32 average(It first, It last) {
    int64_t acc = 0;
    int64_t n = 0;
    for (It it = first; it != last; ++it, ++n) acc += it->raw();
    if (n == 0) return from_raw(0);
    // Round-to-nearest division, matching a hardware round-half-away shift.
    const int64_t half = n / 2;
    const int64_t q = acc >= 0 ? (acc + half) / n : -((-acc + half) / n);
    return from_raw(static_cast<int32_t>(q));
  }

  /// Linear blend raw = a + (b - a) * w / wmax with integer weights,
  /// as used by the interpolating reconstructor.
  static constexpr Fixed32 lerp(Fixed32 a, Fixed32 b, int w, int wmax) {
    const int64_t d = static_cast<int64_t>(b.raw_) - a.raw_;
    return from_raw(static_cast<int32_t>(a.raw_ + (d * w) / wmax));
  }

 private:
  int32_t raw_ = 0;
};

}  // namespace avr
