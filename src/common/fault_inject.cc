#include "common/fault_inject.hh"

#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace avr::fault {
namespace {

// Index-aligned with Site. The dotted names are the user-facing grammar;
// they also appear verbatim in the "[fault]" log lines so a chaos failure
// can be replayed by copying the schedule out of the log.
constexpr const char* kSiteNames[kNumSites] = {
    "cache.append", "cache.load",    "lock.acquire",   "claim.stake",
    "point.complete", "sidecar.write", "sidecar.rename",
};

constexpr const char* kKindNames[] = {
    "none", "short_write", "eintr", "eio", "enospc", "timeout", "kill",
};

// splitmix64 finalizer: the per-(seed, site, hit) decision hash. Stateless,
// so the verdict for hit #k of a site is the same no matter which thread or
// interleaving got there — chaos runs replay exactly from the seed.
uint64_t mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

double decision_unit(uint64_t seed, Site site, uint64_t hit) {
  uint64_t x = mix64(seed + 0x632BE59BD9B4E019ull *
                                (static_cast<uint64_t>(site) + 1));
  x = mix64(x ^ hit);
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

bool parse_u64(const std::string& tok, uint64_t* out) {
  if (tok.empty()) return false;
  uint64_t v = 0;
  for (char ch : tok) {
    if (ch < '0' || ch > '9') return false;
    if (v > (UINT64_MAX - (ch - '0')) / 10) return false;
    v = v * 10 + static_cast<uint64_t>(ch - '0');
  }
  *out = v;
  return true;
}

bool parse_site(const std::string& tok, Site* out) {
  for (size_t i = 0; i < kNumSites; ++i) {
    if (tok == kSiteNames[i]) {
      *out = static_cast<Site>(i);
      return true;
    }
  }
  return false;
}

bool parse_kind(const std::string& tok, Kind* out) {
  for (size_t i = 1; i < sizeof(kKindNames) / sizeof(kKindNames[0]); ++i) {
    if (tok == kKindNames[i]) {
      *out = static_cast<Kind>(i);
      return true;
    }
  }
  return false;
}

}  // namespace

const char* site_name(Site s) { return kSiteNames[static_cast<size_t>(s)]; }
const char* kind_name(Kind k) { return kKindNames[static_cast<size_t>(k)]; }

bool parse_schedule(const std::string& spec, Schedule* out,
                    std::string* error) {
  Schedule sched;
  const size_t colon = spec.find(':');
  if (colon == std::string::npos) {
    *error = "missing ':' after seed (grammar: <seed>:<site>=<kind>@<when>)";
    return false;
  }
  if (!parse_u64(spec.substr(0, colon), &sched.seed)) {
    *error = "seed is not a decimal uint64: '" + spec.substr(0, colon) + "'";
    return false;
  }
  std::string rest = spec.substr(colon + 1);
  if (rest.empty()) {
    *error = "no rules after ':' (a fault-free schedule is spelled by unsetting "
             "AVR_FAULTS, not by an empty rule list)";
    return false;
  }
  while (!rest.empty()) {
    const size_t comma = rest.find(',');
    const std::string rule =
        comma == std::string::npos ? rest : rest.substr(0, comma);
    rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
    // Strict: an empty rule means a stray comma — plausibly a truncated
    // schedule, which must not silently run with fewer faults than asked.
    if (rule.empty() || (comma != std::string::npos && rest.empty())) {
      *error = "empty rule (stray comma) in '" + spec + "'";
      return false;
    }

    const size_t eq = rule.find('=');
    const size_t at = rule.find('@');
    if (eq == std::string::npos || at == std::string::npos || at < eq) {
      *error = "rule '" + rule + "' is not <site>=<kind>@<when>";
      return false;
    }
    Site site;
    if (!parse_site(rule.substr(0, eq), &site)) {
      *error = "unknown site '" + rule.substr(0, eq) + "'";
      return false;
    }
    SiteRule r;
    if (!parse_kind(rule.substr(eq + 1, at - eq - 1), &r.kind)) {
      *error = "unknown kind '" + rule.substr(eq + 1, at - eq - 1) + "'";
      return false;
    }
    const std::string when = rule.substr(at + 1);
    if (!when.empty() && when[0] == 'n') {
      if (!parse_u64(when.substr(1), &r.nth) || r.nth == 0) {
        *error = "bad hit index '" + when + "' (want n<k>, k >= 1)";
        return false;
      }
    } else {
      char* end = nullptr;
      errno = 0;
      r.prob = std::strtod(when.c_str(), &end);
      if (when.empty() || errno != 0 || end != when.c_str() + when.size() ||
          !(r.prob > 0.0) || r.prob > 1.0) {
        *error = "bad probability '" + when + "' (want n<k> or 0 < p <= 1)";
        return false;
      }
    }
    sched.rules[static_cast<size_t>(site)] = r;
  }
  *out = sched;
  return true;
}

#if AVR_FAULT_INJECT

namespace detail {
std::atomic<bool> g_armed{false};
}  // namespace detail

namespace {

Schedule g_schedule;
std::atomic<uint64_t> g_hits[kNumSites];
std::atomic<uint64_t> g_fired[kNumSites];
std::atomic<uint64_t> g_eintr_streak[kNumSites];

void reset_counters() {
  for (size_t i = 0; i < kNumSites; ++i) {
    g_hits[i].store(0, std::memory_order_relaxed);
    g_fired[i].store(0, std::memory_order_relaxed);
    g_eintr_streak[i].store(0, std::memory_order_relaxed);
  }
}

// Arm from the environment once, before main() can reach any site. Sites
// are never on static-initialization paths, so cross-TU init order is moot.
[[maybe_unused]] const bool g_armed_at_start = reinit_from_env();

}  // namespace

namespace detail {

Kind fire_slow(Site s) {
  const size_t i = static_cast<size_t>(s);
  const uint64_t hit = g_hits[i].fetch_add(1, std::memory_order_relaxed) + 1;
  const SiteRule& r = g_schedule.rules[i];
  if (r.kind == Kind::kNone) return Kind::kNone;

  bool inject;
  if (r.nth != 0) {
    inject = hit == r.nth;
  } else {
    inject = decision_unit(g_schedule.seed, s, hit) < r.prob;
  }
  if (inject && r.kind == Kind::kEintr) {
    // Bound the storm: at most kMaxEintrStorm consecutive injected EINTRs
    // per site, so retry loops always make progress even at p = 1.
    if (g_eintr_streak[i].fetch_add(1, std::memory_order_relaxed) >=
        kMaxEintrStorm) {
      g_eintr_streak[i].store(0, std::memory_order_relaxed);
      inject = false;
    }
  } else if (r.kind == Kind::kEintr) {
    g_eintr_streak[i].store(0, std::memory_order_relaxed);
  }
  if (!inject) return Kind::kNone;

  g_fired[i].fetch_add(1, std::memory_order_relaxed);
  std::fprintf(stderr,
               "[fault] %s: injecting %s (hit %llu, seed %llu)\n",
               site_name(s), kind_name(r.kind),
               static_cast<unsigned long long>(hit),
               static_cast<unsigned long long>(g_schedule.seed));
  return r.kind;
}

}  // namespace detail

void arm(const Schedule& s) {
  g_schedule = s;
  reset_counters();
  detail::g_armed.store(s.any(), std::memory_order_relaxed);
}

void disarm() {
  detail::g_armed.store(false, std::memory_order_relaxed);
  g_schedule = Schedule{};
  reset_counters();
}

bool reinit_from_env() {
  const char* env = std::getenv("AVR_FAULTS");
  if (env == nullptr || *env == '\0') {
    disarm();
    return false;
  }
  Schedule s;
  std::string error;
  if (!parse_schedule(env, &s, &error)) {
    // Disarm loudly: a typo'd schedule that silently ran fault-free would
    // let a chaos test pass without testing anything.
    std::fprintf(stderr,
                 "[fault] WARNING: ignoring malformed AVR_FAULTS=\"%s\": %s\n",
                 env, error.c_str());
    disarm();
    return false;
  }
  arm(s);
  if (s.any())
    std::fprintf(stderr, "[fault] armed: AVR_FAULTS=%s\n", env);
  return s.any();
}

uint64_t hits(Site s) {
  return g_hits[static_cast<size_t>(s)].load(std::memory_order_relaxed);
}

uint64_t fired(Site s) {
  return g_fired[static_cast<size_t>(s)].load(std::memory_order_relaxed);
}

#endif  // AVR_FAULT_INJECT

void kill_now(Site s) {
  std::fprintf(stderr, "[fault] %s: SIGKILL here\n", site_name(s));
  std::fflush(stderr);
  ::raise(SIGKILL);
  ::_exit(137);  // unreachable unless SIGKILL is somehow not delivered
}

}  // namespace avr::fault
