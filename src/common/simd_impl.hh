// Internal interface between the dispatch core (simd.cc) and the
// ISA-specific kernel translation units (simd_sse42.cc, simd_avx2.cc).
//
// The vector TUs are compiled with per-file -msse4.2 / -mavx2 flags, so
// they must not pull inline code out of shared headers: an inline symbol
// compiled with AVX2 enabled could be the copy the linker keeps, and would
// then be handed to scalar callers on a baseline CPU. This header therefore
// carries only constants, declarations of the *out-of-line* scalar helpers
// (defined in simd.cc, compiled for baseline x86-64) that the vector
// kernels fall back to for slow-path lanes, and the per-level table
// symbols. It intentionally includes nothing beyond simd.hh.
#pragma once

#include "common/simd.hh"

namespace avr::simd::detail {

// float32 field layout (mirrors common/fp_bits.hh, which the vector TUs
// must not include — see the header comment).
inline constexpr int kF32MantissaBits = 23;
inline constexpr uint32_t kF32ExponentMask = 0xFF;
inline constexpr uint32_t kF32MantissaMask = (1u << kF32MantissaBits) - 1;

// Q16.16 conversion constants (mirrors common/fixed_point.hh): scale
// factor, and the open in-range interval of the scaled double — outside it
// the scalar reference saturates or zeroes, so vector lanes fall back.
inline constexpr double kFixedOne = 65536.0;
inline constexpr float kFixedOneInv = 1.0f / 65536.0f;  // exact: 2^-16
inline constexpr double kConvertLo = static_cast<double>(INT32_MIN) - 0.5;
inline constexpr double kConvertHi = static_cast<double>(INT32_MAX) + 0.5;

// ---- scalar reference kernels (the KernelTable entries of kScalarTable) ----
// Also the slow paths: a vector kernel re-runs these over any lane or range
// its fast-path preconditions exclude. Bit-identity of the other levels is
// always *relative to these*.
void fixed32_from_f32_scalar(const float* in, int32_t* out, size_t n);
void fixed32_to_f32_unbias_scalar(const int32_t* in, float* out, size_t n,
                                  int8_t bias);
void bias_block_scalar(const float* in, float* out, size_t n, int8_t bias);
void exponent_minmax_scalar(const float* in, size_t n, int* e_max, int* e_min);
void truncate_low_bits_scalar(float* vals, size_t n, unsigned bits);
void summarize_1d_scalar(const int32_t* in, int32_t* out);
void summarize_2d_scalar(const int32_t* in, int32_t* out);
void lerp_gather_scalar(const int32_t* avg, const uint8_t* left,
                        const uint8_t* right, const int8_t* w, int log2_den,
                        int32_t* out, size_t n);
void reconstruct_2d_scalar(const int32_t* avg, const uint8_t* left,
                           const uint8_t* right, const int8_t* w, int32_t* out);
uint32_t crc32c_update_scalar(uint32_t crc, const uint8_t* data, size_t n);

/// Scalar error scan over the index range [begin, end), continuing an
/// in-progress scan: `st` carries counters and outputs across vector and
/// scalar segments (integer accumulation is order-free, so segment
/// interleaving cannot change the result). Does NOT zero the bitmap; the
/// full-block kernels do that once up front. Returns false on budget abort.
bool error_scan_range_scalar(const float* original, const int32_t* recon_raw,
                             int8_t bias, uint32_t limit, size_t begin,
                             size_t end, ErrorScanState* st);

/// Vertical row lerp shared by reconstruct_2d: out[i] = top[i] +
/// trunc((bot[i] - top[i]) * w / 2^log2_den). Slow path for the vector
/// kernels' int32 delta-overflow fallback.
void lerp_rows_scalar(const int32_t* top, const int32_t* bot, int w,
                      int log2_den, int32_t* out, size_t n);

// Declared unconditionally (so the vector TUs' definitions get external
// linkage); simd.cc references the vector tables only when the build
// compiles them in (AVR_SIMD_DISPATCH).
extern const KernelTable kScalarTable;
extern const KernelTable kSse4Table;
extern const KernelTable kAvx2Table;

}  // namespace avr::simd::detail
