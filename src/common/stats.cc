#include "common/stats.hh"

#include <sstream>

namespace avr {

std::string StatGroup::to_string() const {
  std::ostringstream os;
  os << "[" << name_ << "]\n";
  for (const auto& [k, v] : counters_) os << "  " << k << " = " << v << "\n";
  for (const auto& [k, v] : fcounters_) os << "  " << k << " = " << v << "\n";
  return os.str();
}

}  // namespace avr
