// Always-on harness self-profiling: scoped wall-clock timers plus event
// counters, cheap enough to leave compiled into every build.
//
// Design:
//   - A Totals record holds per-phase {nanoseconds, call count} pairs and a
//     fixed set of event counters — plain uint64 fields, no strings, no
//     allocation.
//   - Instrumented code writes through a *thread-local sink pointer*
//     (set_thread_sink / ScopedSink). When no sink is installed, a scoped
//     timer is one TLS load and a branch (~1 ns); when one is installed it
//     adds two steady_clock reads (~40 ns per scope, amortized per *phase*,
//     never per access). Each experiment point runs on exactly one thread,
//     so the sink needs no atomics: the harness installs a per-point Totals
//     for the duration of the point and merges it into shard aggregates
//     under its own lock afterwards.
//   - Phases may nest (kCompress runs inside kTiming); the report treats
//     nested phases as sub-spans, not disjoint buckets.
//   - Compiling with -DAVR_PROFILE=0 turns every timer, counter and sink
//     operation into a no-op with zero code generated (the report plumbing
//     stays, reporting all-zero totals).
//
// The report side (profile.cc) renders a Totals set either as a
// machine-readable sidecar JSON (schema "avr-profile-v1", documented in
// docs/OPERATIONS.md) or as a human summary table (`avr_sweep --profile`).
#pragma once

#include <array>
#include <cstdint>
#include <cstdio>
#include <ctime>
#include <string>
#include <vector>

#ifndef AVR_PROFILE
#define AVR_PROFILE 1
#endif

namespace avr {
namespace prof {

/// The harness phases a sweep spends its wall-clock in. kCompress is a
/// sub-span of kTiming (the compressor runs inside the timing simulation);
/// everything else is disjoint.
enum class Phase : uint32_t {
  kSetup = 0,    // make_workload + System construction
  kFunctional,   // golden (timing-free) run of a workload
  kTiming,       // the timing simulation: run + output + finish
  kCompress,     // Compressor::compress/reconstruct (inside kTiming)
  kCacheIo,      // result-cache file I/O: loads, appends, claim records
  kBdi,          // lossless-fallback BDI encode (inside kCompress)
};
inline constexpr size_t kNumPhases = 6;

/// Event counters the harness bumps alongside the timers.
enum class Counter : uint32_t {
  kPointsSimulated = 0,  // points actually simulated (not cache hits)
  kCacheHits,            // run() satisfied from the in-memory/disk cache
  kCacheAppends,         // result records appended to the disk cache
  kClaimsWon,            // work-stealing: fresh claims this process won
  kClaimsReclaimed,      // claims won by superseding an expired claim
  kClaimsLost,           // claim attempts that found a live foreign claim
};
inline constexpr size_t kNumCounters = 6;

/// Stable lower-case identifier for a phase (JSON keys / table rows).
const char* phase_name(Phase p);
/// Stable lower-case identifier for a counter.
const char* counter_name(Counter c);

/// One accumulation bucket: per-phase time and calls plus the counters.
/// Plain addition semantics throughout — merge() makes any tree of Totals
/// (per point -> per runner -> per shard) sum exactly.
struct Totals {
  std::array<uint64_t, kNumPhases> ns{};
  std::array<uint64_t, kNumPhases> calls{};
  std::array<uint64_t, kNumCounters> counts{};

  void add(Phase p, uint64_t dns) {
    ns[static_cast<size_t>(p)] += dns;
    calls[static_cast<size_t>(p)] += 1;
  }
  void bump(Counter c, uint64_t n = 1) { counts[static_cast<size_t>(c)] += n; }
  void merge(const Totals& o) {
    for (size_t i = 0; i < kNumPhases; ++i) {
      ns[i] += o.ns[i];
      calls[i] += o.calls[i];
    }
    for (size_t i = 0; i < kNumCounters; ++i) counts[i] += o.counts[i];
  }
  uint64_t phase_ns(Phase p) const { return ns[static_cast<size_t>(p)]; }
  uint64_t phase_calls(Phase p) const { return calls[static_cast<size_t>(p)]; }
  uint64_t count(Counter c) const { return counts[static_cast<size_t>(c)]; }
  bool empty() const {
    for (uint64_t v : calls)
      if (v) return false;
    for (uint64_t v : counts)
      if (v) return false;
    return true;
  }
};

#if AVR_PROFILE

namespace detail {
inline Totals*& sink_slot() {
  thread_local Totals* sink = nullptr;
  return sink;
}
inline uint64_t now_ns() {
  // steady_clock via clock_gettime: one vDSO call, no syscall on Linux.
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}
}  // namespace detail

/// The calling thread's current sink (nullptr = profiling inactive here).
inline Totals* thread_sink() { return detail::sink_slot(); }
/// Installs `t` as the calling thread's sink; returns the previous one.
inline Totals* set_thread_sink(Totals* t) {
  Totals* prev = detail::sink_slot();
  detail::sink_slot() = t;
  return prev;
}

/// RAII sink installation: all timers/counters on this thread accumulate
/// into `t` until scope exit, then the previous sink is restored.
class ScopedSink {
 public:
  explicit ScopedSink(Totals* t) : prev_(set_thread_sink(t)) {}
  ~ScopedSink() { set_thread_sink(prev_); }
  ScopedSink(const ScopedSink&) = delete;
  ScopedSink& operator=(const ScopedSink&) = delete;

 private:
  Totals* prev_;
};

/// Accumulates the scope's wall time into the thread sink's phase bucket.
/// With no sink installed, construction and destruction are one TLS load
/// and a branch each.
class ScopedTimer {
 public:
  explicit ScopedTimer(Phase p) : sink_(detail::sink_slot()), phase_(p) {
    if (sink_) t0_ = detail::now_ns();
  }
  ~ScopedTimer() {
    if (sink_) sink_->add(phase_, detail::now_ns() - t0_);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Totals* sink_;
  Phase phase_;
  uint64_t t0_ = 0;
};

/// Bumps a counter on the thread sink (no-op without a sink).
inline void count(Counter c, uint64_t n = 1) {
  if (Totals* s = detail::sink_slot()) s->bump(c, n);
}

#else  // !AVR_PROFILE — every operation compiles away.

inline Totals* thread_sink() { return nullptr; }
inline Totals* set_thread_sink(Totals*) { return nullptr; }

class ScopedSink {
 public:
  explicit ScopedSink(Totals*) {}
};

class ScopedTimer {
 public:
  explicit ScopedTimer(Phase) {}
};

inline void count(Counter, uint64_t = 1) {}

#endif  // AVR_PROFILE

#define AVR_PROF_CAT2(a, b) a##b
#define AVR_PROF_CAT(a, b) AVR_PROF_CAT2(a, b)
/// Times the rest of the enclosing scope into `phase` (see ScopedTimer).
#define AVR_PROF_SCOPE(phase) \
  ::avr::prof::ScopedTimer AVR_PROF_CAT(avr_prof_scope_, __LINE__)(phase)

// ---- reporting -------------------------------------------------------------

/// Sidecar JSON schema identifier (see docs/OPERATIONS.md for the schema).
inline constexpr const char* kProfileSchema = "avr-profile-v1";

/// Per-point slice of a report: which grid point, its measured wall time,
/// and the phase totals its simulation accumulated.
struct PointProfile {
  std::string workload;
  std::string design;
  int t1 = -1;  // --t1 variant; -1 = default per-workload thresholds
  double wall_seconds = 0;
  Totals totals;
};

/// Everything one process reports: identity, overall wall time, per-point
/// breakdowns, and the aggregate (sum of points + harness/scheduler time).
struct Report {
  std::string owner;  // claim-owner token or "<host>-<pid>"
  std::string mode;   // "claim", "shard", "runner", ...
  std::string simd;   // active kernel dispatch level: "scalar"|"sse4"|"avx2"
  double wall_seconds = 0;
  Totals aggregate;
  std::vector<PointProfile> points;
};

/// Serializes the report as schema "avr-profile-v1" JSON (tmp + rename, so
/// a crashed writer never leaves a torn sidecar). Returns false on I/O
/// failure — the sidecar is diagnostics, callers may warn and carry on.
bool write_profile_json(const std::string& path, const Report& report);

/// Human summary: one row per phase (total seconds, share of wall, calls),
/// the counters, and the most expensive points — the `--profile` table.
void print_summary(std::FILE* out, const Report& report);

/// "<host>-<pid>" with non-identifier characters mapped to '-': unique per
/// live process, comma-free (claim records embed it as a CSV field).
std::string default_owner();

}  // namespace prof
}  // namespace avr
