// SIMD dispatch core + the scalar reference kernels.
//
// Everything in this file is compiled for baseline x86-64 (no -m flags):
// the scalar kernels double as the slow paths the vector TUs fall back to,
// so they must be callable from any CPU the binary runs on. The vector
// tables live in simd_sse42.cc / simd_avx2.cc, referenced only when the
// build enables dispatch (AVR_SIMD_DISPATCH, set by the AVR_SIMD CMake
// option on x86-64).
#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/fixed_point.hh"
#include "common/fp_bits.hh"
#include "common/simd_impl.hh"

namespace avr {
namespace {

std::atomic<const simd::KernelTable*> g_table{nullptr};
std::atomic<SimdLevel> g_level{SimdLevel::kScalar};

const simd::KernelTable* table_for(SimdLevel lvl) {
#if defined(AVR_SIMD_DISPATCH)
  switch (lvl) {
    case SimdLevel::kAvx2:
      return &simd::detail::kAvx2Table;
    case SimdLevel::kSse4:
      return &simd::detail::kSse4Table;
    case SimdLevel::kScalar:
      break;
  }
#endif
  (void)lvl;
  return &simd::detail::kScalarTable;
}

void activate(SimdLevel lvl) {
  g_level.store(lvl, std::memory_order_relaxed);
  g_table.store(table_for(lvl), std::memory_order_release);
}

/// One-time startup selection (thread-safe via the static's guard; any
/// thread racing the first datapath call initializes or waits here).
SimdLevel init_level() {
  static const bool once = [] {
    activate(simd_choose_level(std::getenv("AVR_SIMD")));
    return true;
  }();
  (void)once;
  return g_level.load(std::memory_order_relaxed);
}

}  // namespace

SimdLevel simd_max_supported_level() {
#if defined(AVR_SIMD_DISPATCH)
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
  if (__builtin_cpu_supports("sse4.2")) return SimdLevel::kSse4;
#endif
  return SimdLevel::kScalar;
}

const char* simd_level_name(SimdLevel lvl) {
  switch (lvl) {
    case SimdLevel::kSse4:
      return "sse4";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kScalar:
      break;
  }
  return "scalar";
}

bool simd_parse_level(std::string_view name, SimdLevel* out) {
  for (SimdLevel lvl : {SimdLevel::kScalar, SimdLevel::kSse4, SimdLevel::kAvx2}) {
    if (name == simd_level_name(lvl)) {
      *out = lvl;
      return true;
    }
  }
  return false;
}

SimdLevel simd_choose_level(const char* env_value) {
  const SimdLevel max = simd_max_supported_level();
  if (env_value == nullptr || *env_value == '\0') return max;
  SimdLevel want;
  if (!simd_parse_level(env_value, &want)) {
    std::fprintf(stderr,
                 "[simd] unknown AVR_SIMD value '%s' (want scalar|sse4|avx2); "
                 "using %s\n",
                 env_value, simd_level_name(max));
    return max;
  }
  if (want > max) {
    std::fprintf(stderr, "[simd] AVR_SIMD=%s unsupported here; clamping to %s\n",
                 env_value, simd_level_name(max));
    return max;
  }
  return want;
}

SimdLevel simd_level() { return init_level(); }

bool simd_set_level(SimdLevel lvl) {
  init_level();
  if (lvl > simd_max_supported_level()) return false;
  activate(lvl);
  return true;
}

SimdLevel simd_reinit_from_env() {
  const SimdLevel lvl = simd_choose_level(std::getenv("AVR_SIMD"));
  activate(lvl);
  return lvl;
}

namespace simd {

const KernelTable& kernels() {
  const KernelTable* t = g_table.load(std::memory_order_acquire);
  if (t == nullptr) {
    init_level();
    t = g_table.load(std::memory_order_acquire);
  }
  return *t;
}

namespace detail {

// ---- scalar reference kernels ----------------------------------------------
// Exact transcriptions of the PR-4 scalar loops these kernels replaced
// (fixed_point.hh, bias.cc, downsample.cc, compressor.cc): the definition
// of "bit-identical" for every other dispatch level.

void fixed32_from_f32_scalar(const float* in, int32_t* out, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    const float v = in[i];
    const double scaled = static_cast<double>(v) * kFixedOne;
    if (scaled > kConvertLo && scaled < kConvertHi) {
      out[i] = static_cast<int32_t>(scaled >= 0 ? scaled + 0.5 : scaled - 0.5);
    } else {
      out[i] = std::isfinite(v) ? Fixed32::from_float(v).raw() : 0;
    }
  }
}

void fixed32_to_f32_unbias_scalar(const int32_t* in, float* out, size_t n,
                                  int8_t bias) {
  for (size_t i = 0; i < n; ++i) {
    const float f = static_cast<float>(in[i]) / Fixed32::kOne;
    out[i] = bias == 0 ? f : f32_scale_exponent(f, -bias);
  }
}

void bias_block_scalar(const float* in, float* out, size_t n, int8_t bias) {
  for (size_t i = 0; i < n; ++i) out[i] = f32_scale_exponent(in[i], bias);
}

void exponent_minmax_scalar(const float* in, size_t n, int* e_max, int* e_min) {
  int mx = 0;
  int mn = 256;
  for (size_t i = 0; i < n; ++i) {
    const int e = static_cast<int>(f32_exponent(in[i]));
    mx = std::max(mx, e);
    mn = std::min(mn, e == 0 ? 256 : e);
  }
  *e_max = mx;
  *e_min = mn;
}

void truncate_low_bits_scalar(float* vals, size_t n, unsigned bits) {
  const uint32_t keep = ~((1u << bits) - 1u);
  for (size_t i = 0; i < n; ++i) {
    if (f32_is_finite(vals[i])) vals[i] = bits_f32(f32_bits(vals[i]) & keep);
  }
}

void summarize_1d_scalar(const int32_t* in, int32_t* out) {
  for (uint32_t k = 0; k < 16; ++k) {
    int64_t acc = 0;
    for (uint32_t i = 0; i < 16; ++i) acc += in[k * 16 + i];
    const int64_t q = acc >= 0 ? (acc + 8) / 16 : -((-acc + 8) / 16);
    out[k] = static_cast<int32_t>(q);
  }
}

void summarize_2d_scalar(const int32_t* in, int32_t* out) {
  for (uint32_t tr = 0; tr < 4; ++tr) {
    for (uint32_t tc = 0; tc < 4; ++tc) {
      int64_t acc = 0;
      for (uint32_t r = 0; r < 4; ++r) {
        for (uint32_t c = 0; c < 4; ++c) acc += in[(tr * 4 + r) * 16 + tc * 4 + c];
      }
      const int64_t q = acc >= 0 ? (acc + 8) / 16 : -((-acc + 8) / 16);
      out[tr * 4 + tc] = static_cast<int32_t>(q);
    }
  }
}

void lerp_gather_scalar(const int32_t* avg, const uint8_t* left,
                        const uint8_t* right, const int8_t* w, int log2_den,
                        int32_t* out, size_t n) {
  const int64_t den = int64_t{1} << log2_den;
  for (size_t i = 0; i < n; ++i) {
    const int32_t a = avg[left[i]];
    const int64_t d = static_cast<int64_t>(avg[right[i]]) - a;
    out[i] = static_cast<int32_t>(a + (d * w[i]) / den);
  }
}

void lerp_rows_scalar(const int32_t* top, const int32_t* bot, int w,
                      int log2_den, int32_t* out, size_t n) {
  const int64_t den = int64_t{1} << log2_den;
  for (size_t i = 0; i < n; ++i) {
    const int32_t a = top[i];
    const int64_t d = static_cast<int64_t>(bot[i]) - a;
    out[i] = static_cast<int32_t>(a + (d * w) / den);
  }
}

void reconstruct_2d_scalar(const int32_t* avg, const uint8_t* left,
                           const uint8_t* right, const int8_t* w, int32_t* out) {
  // Same hoisted shape as downsample.cc's reconstruct_2d: the 4x16 column
  // pass, then one vertical lerp per value.
  int32_t col[4][16];
  for (uint32_t ar = 0; ar < 4; ++ar)
    lerp_gather_scalar(avg + ar * 4, left, right, w, 3, col[ar], 16);
  for (uint32_t r = 0; r < 16; ++r)
    lerp_rows_scalar(col[left[r]], col[right[r]], w[r], 3, out + r * 16, 16);
}

namespace {

// Reflected Castagnoli polynomial; the byte-at-a-time table is generated at
// compile time. The chaining convention (reflected state, no pre/post
// conditioning here) matches the x86 crc32 instruction exactly, so the
// hardware kernels are drop-in bit-identical.
constexpr uint32_t kCrc32cPoly = 0x82F63B78u;

struct Crc32cTable {
  uint32_t t[256];
};

constexpr Crc32cTable make_crc32c_table() {
  Crc32cTable tb{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? (c >> 1) ^ kCrc32cPoly : c >> 1;
    tb.t[i] = c;
  }
  return tb;
}

constexpr Crc32cTable kCrc32cTable = make_crc32c_table();

}  // namespace

uint32_t crc32c_update_scalar(uint32_t crc, const uint8_t* data, size_t n) {
  for (size_t i = 0; i < n; ++i)
    crc = (crc >> 8) ^ kCrc32cTable.t[(crc ^ data[i]) & 0xFF];
  return crc;
}

bool error_scan_range_scalar(const float* original, const int32_t* recon_raw,
                             int8_t bias, uint32_t limit, size_t begin,
                             size_t end, ErrorScanState* st) {
  for (size_t i = begin; i < end; ++i) {
    const uint32_t ob = std::bit_cast<uint32_t>(original[i]);
    const float rf = static_cast<float>(recon_raw[i]) / Fixed32::kOne;
    const uint32_t ab =
        std::bit_cast<uint32_t>(bias == 0 ? rf : f32_scale_exponent(rf, -bias));
    if (ob == ab) {  // exact reconstruction: non-outlier, zero error
      ++st->non_outliers;
      continue;
    }
    const bool nonfinite = ((ob >> kMantissaBits) & kExponentMask) == kExponentMask;
    bool outlier;
    int32_t dm = 0;
    if (nonfinite || ((ob ^ ab) >> kMantissaBits) != 0) {
      outlier = true;
    } else {
      dm = static_cast<int32_t>(ob & kMantissaMask) -
           static_cast<int32_t>(ab & kMantissaMask);
      if (dm < 0) dm = -dm;
      outlier = static_cast<uint32_t>(dm) >= limit;
    }
    if (outlier) {
      if (st->n_outliers == st->max_outliers) return false;  // budget blown
      st->bitmap_words[i >> 6] |= uint64_t{1} << (i & 63);
      st->outlier_bits[st->n_outliers++] = ob;
    } else {
      st->dm_sum += dm;
      ++st->non_outliers;
    }
  }
  return true;
}

namespace {

bool error_scan_f32_scalar(const float* original, const int32_t* recon_raw,
                           size_t n, int8_t bias, uint32_t limit,
                           ErrorScanState* st) {
  std::memset(st->bitmap_words, 0, ((n + 63) / 64) * sizeof(uint64_t));
  return error_scan_range_scalar(original, recon_raw, bias, limit, 0, n, st);
}

}  // namespace

const KernelTable kScalarTable = {
    fixed32_from_f32_scalar, fixed32_to_f32_unbias_scalar,
    bias_block_scalar,       exponent_minmax_scalar,
    truncate_low_bits_scalar, summarize_1d_scalar,
    summarize_2d_scalar,     lerp_gather_scalar,
    reconstruct_2d_scalar,   error_scan_f32_scalar,
    crc32c_update_scalar,
};

}  // namespace detail
}  // namespace simd

// ---- dispatched definitions of the header-declared batch entry points ------

void fixed32_from_f32_batch(std::span<const float> in, std::span<Fixed32> out) {
  static_assert(sizeof(Fixed32) == sizeof(int32_t) &&
                alignof(Fixed32) == alignof(int32_t));
  simd::kernels().fixed32_from_f32(
      in.data(), reinterpret_cast<int32_t*>(out.data()), in.size());
}

void f32_truncate_low_bits_batch(std::span<float> vals, unsigned n) {
  simd::kernels().truncate_low_bits(vals.data(), vals.size(), n);
}

}  // namespace avr
