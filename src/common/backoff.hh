// Bounded exponential backoff with jitter for transient-I/O retry loops
// (cache appends, lock acquisition, claim staking). The schedule is short
// and capped — retries exist to ride out momentary contention or an
// injected fault storm, not to wait out a dead disk: callers give up after
// a handful of attempts and degrade loudly instead of hanging a sweep.
#pragma once

#include <time.h>

#include <cstdint>

namespace avr {

/// Attempts a caller should make before degrading (first try + retries).
inline constexpr int kIoRetryAttempts = 5;

/// Sleeps ~base * 2^attempt milliseconds (attempt counts from 0, base 5 ms,
/// capped at 100 ms) plus up to one base-interval of jitter derived from
/// `salt` (pid ^ attempt works well) so colliding writers deschedule apart.
inline void backoff_sleep(int attempt, uint64_t salt) {
  uint64_t base_ms = 5ull << (attempt < 0 ? 0 : attempt);
  if (base_ms > 100) base_ms = 100;
  // splitmix64 finalizer: cheap, stateless jitter.
  uint64_t x = salt + 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  const uint64_t ms = base_ms + (x ^ (x >> 31)) % (base_ms + 1);
  struct timespec ts;
  ts.tv_sec = static_cast<time_t>(ms / 1000);
  ts.tv_nsec = static_cast<long>((ms % 1000) * 1000000ull);
  ::nanosleep(&ts, nullptr);  // EINTR: close enough — this is only backoff
}

}  // namespace avr
