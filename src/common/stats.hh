// Lightweight named-counter statistics registry.
//
// Every simulator component owns a StatGroup; the harness walks groups to
// print per-experiment metrics and to compute the paper's derived numbers
// (MPKI, AMAT, normalized traffic, ...).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace avr {

class StatGroup {
 public:
  explicit StatGroup(std::string name) : name_(std::move(name)) {}

  void add(const std::string& key, uint64_t delta = 1) { counters_[key] += delta; }
  /// Snapshot-builder helper: record `value` only when nonzero, so a flat
  /// counter that was never bumped stays absent — exactly as a never-added
  /// map key would be. Every component's stats() builder relies on this for
  /// byte-identical reporting versus the old map-backed counters.
  void add_nonzero(const std::string& key, uint64_t value) {
    if (value) counters_[key] += value;
  }
  void add_f(const std::string& key, double delta) { fcounters_[key] += delta; }
  void set(const std::string& key, uint64_t value) { counters_[key] = value; }
  void set_f(const std::string& key, double value) { fcounters_[key] = value; }

  uint64_t get(const std::string& key) const {
    auto it = counters_.find(key);
    return it == counters_.end() ? 0 : it->second;
  }
  double get_f(const std::string& key) const {
    auto it = fcounters_.find(key);
    return it == fcounters_.end() ? 0.0 : it->second;
  }

  const std::string& name() const { return name_; }
  const std::map<std::string, uint64_t>& counters() const { return counters_; }
  const std::map<std::string, double>& fcounters() const { return fcounters_; }

  void reset() {
    counters_.clear();
    fcounters_.clear();
  }

  std::string to_string() const;

 private:
  std::string name_;
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, double> fcounters_;
};

/// Simple streaming mean/min/max accumulator.
class Accumulator {
 public:
  void add(double v) {
    sum_ += v;
    if (n_ == 0 || v < min_) min_ = v;
    if (n_ == 0 || v > max_) max_ = v;
    ++n_;
  }
  uint64_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  double sum_ = 0, min_ = 0, max_ = 0;
  uint64_t n_ = 0;
};

}  // namespace avr
