// AVX2 (8-lane) kernel implementations. Compiled with -mavx2 (per-file; see
// CMakeLists), reached only through the dispatch table, and bit-identical to
// the scalar reference: every fast path proves its lanes round exactly like
// the scalar code, and any lane outside the proof's preconditions re-runs
// the baseline-compiled scalar helper. Per the simd.hh contract this TU
// includes nothing that could emit an externally visible inline symbol.
#include <immintrin.h>

#include "common/simd_impl.hh"

namespace avr::simd::detail {
namespace {

inline int mask32(__m256i m) {
  return _mm256_movemask_ps(_mm256_castsi256_ps(m));
}

inline int64_t hsum_epi64(__m256i v) {
  const __m128i s =
      _mm_add_epi64(_mm256_castsi256_si128(v), _mm256_extracti128_si256(v, 1));
  return _mm_cvtsi128_si64(s) + _mm_extract_epi64(s, 1);
}

inline int64_t hsum_epi32(__m256i v) {
  __m128i s =
      _mm_add_epi32(_mm256_castsi256_si128(v), _mm256_extracti128_si256(v, 1));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(s);
}

/// Round-half-away-from-zero average of 16 values summed in `acc`
/// (downsample.cc's rounding formula, verbatim).
inline int64_t round_avg16(int64_t acc) {
  return acc >= 0 ? (acc + 8) / 16 : -((-acc + 8) / 16);
}

/// Adds `delta` (!= 0) to the exponent field of each float-bits lane of `b`:
/// zero-field lanes pass through; `*bad` flags lanes whose new field leaves
/// [0, 255] (the scalar spill encoding differs there — callers re-run those
/// lanes through the scalar helper). For in-range lanes, adding delta<<23 to
/// the whole word IS the scalar field replacement: the 8-bit field absorbs
/// the add with no carry into the sign bit and no borrow from it.
inline __m256i exp_add_guarded(__m256i b, int delta, int* bad) {
  const __m256i ff = _mm256_set1_epi32(0xFF);
  const __m256i zero = _mm256_setzero_si256();
  const __m256i e = _mm256_and_si256(_mm256_srli_epi32(b, 23), ff);
  const __m256i zero_e = _mm256_cmpeq_epi32(e, zero);
  const __m256i esum = _mm256_add_epi32(e, _mm256_set1_epi32(delta));
  const __m256i oor = _mm256_or_si256(_mm256_cmpgt_epi32(zero, esum),
                                      _mm256_cmpgt_epi32(esum, ff));
  *bad = mask32(_mm256_andnot_si256(zero_e, oor));
  const __m256i biased = _mm256_add_epi32(
      b, _mm256_set1_epi32(static_cast<int>(static_cast<uint32_t>(delta) << 23)));
  return _mm256_blendv_epi8(biased, b, zero_e);
}

/// q = trunc((d * w) / 2^log2_den) per lane (the Fixed32::lerp quotient),
/// exact for any int32 d and 0 <= w < 2^log2_den: |d|*w runs in 64-bit via
/// the even/odd epu32 multiplies (abs_epi32(INT32_MIN) reads as 2^31
/// unsigned, which is correct here), the shift keeps the quotient < 2^31,
/// and the sign is restored by two's-complement negation — matching C++
/// truncating division of the signed product.
inline __m256i lerp_q(__m256i d, __m256i vw, __m128i shift) {
  const __m256i ad = _mm256_abs_epi32(d);
  const __m256i pe = _mm256_srl_epi64(_mm256_mul_epu32(ad, vw), shift);
  const __m256i po = _mm256_srl_epi64(
      _mm256_mul_epu32(_mm256_srli_epi64(ad, 32), _mm256_srli_epi64(vw, 32)),
      shift);
  const __m256i q = _mm256_blend_epi32(pe, _mm256_slli_epi64(po, 32), 0xAA);
  const __m256i sgn = _mm256_srai_epi32(d, 31);
  return _mm256_sub_epi32(_mm256_xor_si256(q, sgn), sgn);
}

/// int32 overflow lanes of d = b - a (sign bit of the return): the scalar
/// lerp computes d in 64-bit, so any overflow means the whole call must
/// re-run scalar.
inline __m256i sub_overflow(__m256i a, __m256i b, __m256i d) {
  return _mm256_and_si256(_mm256_xor_si256(b, a), _mm256_xor_si256(b, d));
}

void fixed32_from_f32_avx2(const float* in, int32_t* out, size_t n) {
  const __m256d lo = _mm256_set1_pd(kConvertLo);
  const __m256d hi = _mm256_set1_pd(kConvertHi);
  const __m256d one = _mm256_set1_pd(kFixedOne);
  const __m256d half = _mm256_set1_pd(0.5);
  const __m256d sign = _mm256_set1_pd(-0.0);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(in + i);
    const __m256d s0 = _mm256_mul_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(v)), one);
    const __m256d s1 = _mm256_mul_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(v, 1)), one);
    // Round half away from zero: add copysign(0.5, s), truncate. (For
    // s == -0.0 the scalar adds +0.5 and this adds -0.5; both truncate to
    // 0.) The scaled value and the +/-0.5 add are exact, as in from_float.
    const __m256d r0 = _mm256_add_pd(s0, _mm256_or_pd(half, _mm256_and_pd(s0, sign)));
    const __m256d r1 = _mm256_add_pd(s1, _mm256_or_pd(half, _mm256_and_pd(s1, sign)));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), _mm256_cvttpd_epi32(r0));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 4),
                     _mm256_cvttpd_epi32(r1));
    // Ordered in-range compares: NaN lanes fail into the slow path exactly
    // like the scalar range test; out-of-range lanes (saturate / Inf) too.
    const int ok =
        _mm256_movemask_pd(_mm256_and_pd(_mm256_cmp_pd(s0, lo, _CMP_GT_OQ),
                                         _mm256_cmp_pd(s0, hi, _CMP_LT_OQ))) |
        (_mm256_movemask_pd(_mm256_and_pd(_mm256_cmp_pd(s1, lo, _CMP_GT_OQ),
                                          _mm256_cmp_pd(s1, hi, _CMP_LT_OQ)))
         << 4);
    if (ok != 0xFF) {
      for (int l = 0; l < 8; ++l) {
        if (!((ok >> l) & 1)) fixed32_from_f32_scalar(in + i + l, out + i + l, 1);
      }
    }
  }
  if (i < n) fixed32_from_f32_scalar(in + i, out + i, n - i);
}

void fixed32_to_f32_unbias_avx2(const int32_t* in, float* out, size_t n,
                                int8_t bias) {
  const __m256 scale = _mm256_set1_ps(kFixedOneInv);
  const int delta = -static_cast<int>(bias);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i raw = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i));
    // cvtepi32_ps rounds to nearest even like the scalar (float) cast, and
    // the 2^-16 multiply is the exact /65536 (no Q16.16 result is denormal).
    const __m256 f = _mm256_mul_ps(_mm256_cvtepi32_ps(raw), scale);
    if (delta == 0) {
      _mm256_storeu_ps(out + i, f);
      continue;
    }
    int bad = 0;
    const __m256i res = exp_add_guarded(_mm256_castps_si256(f), delta, &bad);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), res);
    if (bad) {
      for (int l = 0; l < 8; ++l) {
        if ((bad >> l) & 1)
          fixed32_to_f32_unbias_scalar(in + i + l, out + i + l, 1, bias);
      }
    }
  }
  if (i < n) fixed32_to_f32_unbias_scalar(in + i, out + i, n - i, bias);
}

void bias_block_avx2(const float* in, float* out, size_t n, int8_t bias) {
  const int delta = bias;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i));
    int bad = 0;
    const __m256i res = exp_add_guarded(b, delta, &bad);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), res);
    if (bad) {
      // The call may be in-place (apply_bias), so spill lanes re-run from
      // the loaded originals, not from in[] (already overwritten above).
      alignas(32) float orig[8];
      _mm256_store_ps(orig, _mm256_castsi256_ps(b));
      for (int l = 0; l < 8; ++l) {
        if ((bad >> l) & 1) bias_block_scalar(orig + l, out + i + l, 1, bias);
      }
    }
  }
  if (i < n) bias_block_scalar(in + i, out + i, n - i, bias);
}

void exponent_minmax_avx2(const float* in, size_t n, int* e_max, int* e_min) {
  const __m256i ff = _mm256_set1_epi32(0xFF);
  const __m256i big = _mm256_set1_epi32(256);
  const __m256i zero = _mm256_setzero_si256();
  __m256i vmax = zero;
  __m256i vmin = big;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i));
    const __m256i e = _mm256_and_si256(_mm256_srli_epi32(b, 23), ff);
    vmax = _mm256_max_epi32(vmax, e);
    vmin = _mm256_min_epi32(
        vmin, _mm256_blendv_epi8(e, big, _mm256_cmpeq_epi32(e, zero)));
  }
  __m128i mx =
      _mm_max_epi32(_mm256_castsi256_si128(vmax), _mm256_extracti128_si256(vmax, 1));
  mx = _mm_max_epi32(mx, _mm_shuffle_epi32(mx, _MM_SHUFFLE(1, 0, 3, 2)));
  mx = _mm_max_epi32(mx, _mm_shuffle_epi32(mx, _MM_SHUFFLE(2, 3, 0, 1)));
  __m128i mn =
      _mm_min_epi32(_mm256_castsi256_si128(vmin), _mm256_extracti128_si256(vmin, 1));
  mn = _mm_min_epi32(mn, _mm_shuffle_epi32(mn, _MM_SHUFFLE(1, 0, 3, 2)));
  mn = _mm_min_epi32(mn, _mm_shuffle_epi32(mn, _MM_SHUFFLE(2, 3, 0, 1)));
  int rmax = _mm_cvtsi128_si32(mx);
  int rmin = _mm_cvtsi128_si32(mn);
  if (i < n) {
    int tmx = 0;
    int tmn = 256;
    exponent_minmax_scalar(in + i, n - i, &tmx, &tmn);
    rmax = rmax > tmx ? rmax : tmx;
    rmin = rmin < tmn ? rmin : tmn;
  }
  *e_max = rmax;
  *e_min = rmin;
}

void truncate_low_bits_avx2(float* vals, size_t n, unsigned bits) {
  const __m256i keep = _mm256_set1_epi32(static_cast<int>(~((1u << bits) - 1u)));
  const __m256i ff = _mm256_set1_epi32(0xFF);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(vals + i));
    const __m256i nonfin =
        _mm256_cmpeq_epi32(_mm256_and_si256(_mm256_srli_epi32(b, 23), ff), ff);
    const __m256i res = _mm256_blendv_epi8(_mm256_and_si256(b, keep), b, nonfin);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(vals + i), res);
  }
  if (i < n) truncate_low_bits_scalar(vals + i, n - i, bits);
}

void summarize_1d_avx2(const int32_t* in, int32_t* out) {
  for (int k = 0; k < 16; ++k) {
    const int32_t* p = in + k * 16;
    const __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
    const __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 8));
    const __m256i s = _mm256_add_epi64(
        _mm256_add_epi64(_mm256_cvtepi32_epi64(_mm256_castsi256_si128(a)),
                         _mm256_cvtepi32_epi64(_mm256_extracti128_si256(a, 1))),
        _mm256_add_epi64(_mm256_cvtepi32_epi64(_mm256_castsi256_si128(b)),
                         _mm256_cvtepi32_epi64(_mm256_extracti128_si256(b, 1))));
    out[k] = static_cast<int32_t>(round_avg16(hsum_epi64(s)));
  }
}

void summarize_2d_avx2(const int32_t* in, int32_t* out) {
  for (int tr = 0; tr < 4; ++tr) {
    __m256i acc[4] = {_mm256_setzero_si256(), _mm256_setzero_si256(),
                      _mm256_setzero_si256(), _mm256_setzero_si256()};
    for (int r = 0; r < 4; ++r) {
      const int32_t* row = in + (tr * 4 + r) * 16;
      const __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row));
      const __m256i b =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + 8));
      acc[0] = _mm256_add_epi64(
          acc[0], _mm256_cvtepi32_epi64(_mm256_castsi256_si128(a)));
      acc[1] = _mm256_add_epi64(
          acc[1], _mm256_cvtepi32_epi64(_mm256_extracti128_si256(a, 1)));
      acc[2] = _mm256_add_epi64(
          acc[2], _mm256_cvtepi32_epi64(_mm256_castsi256_si128(b)));
      acc[3] = _mm256_add_epi64(
          acc[3], _mm256_cvtepi32_epi64(_mm256_extracti128_si256(b, 1)));
    }
    for (int tc = 0; tc < 4; ++tc)
      out[tr * 4 + tc] = static_cast<int32_t>(round_avg16(hsum_epi64(acc[tc])));
  }
}

/// 8 table lookups from a 16-entry int32 table held in two registers: two
/// cross-lane permutes (low/high half of the table) blended on index bit 3.
/// The hardware vpgatherdd is microcoded (and Downfall-mitigated) on common
/// parts, an order of magnitude slower than this for a table this small —
/// the lerp_gather contract guarantees avg holds 16 readable entries.
inline __m256i lut16(__m256i lo, __m256i hi, __m256i idx) {
  const __m256i a = _mm256_permutevar8x32_epi32(lo, idx);
  const __m256i b = _mm256_permutevar8x32_epi32(hi, idx);
  return _mm256_blendv_epi8(a, b,
                            _mm256_cmpgt_epi32(idx, _mm256_set1_epi32(7)));
}

void lerp_gather_avx2(const int32_t* avg, const uint8_t* left,
                      const uint8_t* right, const int8_t* w, int log2_den,
                      int32_t* out, size_t n) {
  const __m128i shift = _mm_cvtsi32_si128(log2_den);
  const __m256i tlo = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(avg));
  const __m256i thi =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(avg + 8));
  __m256i ov = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i il = _mm256_cvtepu8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(left + i)));
    const __m256i ir = _mm256_cvtepu8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(right + i)));
    const __m256i vw = _mm256_cvtepi8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(w + i)));
    const __m256i a = lut16(tlo, thi, il);
    const __m256i b = lut16(tlo, thi, ir);
    const __m256i d = _mm256_sub_epi32(b, a);
    ov = _mm256_or_si256(ov, sub_overflow(a, b, d));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_add_epi32(a, lerp_q(d, vw, shift)));
  }
  if (i < n)
    lerp_gather_scalar(avg, left + i, right + i, w + i, log2_den, out + i, n - i);
  // Any int32 delta overflow (adversarial kFixed32 raws): the scalar lerp
  // works in 64-bit there, so redo the whole call scalar.
  if (mask32(ov)) lerp_gather_scalar(avg, left, right, w, log2_den, out, n);
}

void reconstruct_2d_avx2(const int32_t* avg, const uint8_t* left,
                         const uint8_t* right, const int8_t* w, int32_t* out) {
  // Same hoisted shape as the scalar kernel: 4x16 column pass, then the
  // vertical lerps. Each average row is 4 values, replicated across both
  // register halves so the 0..3 axis-table indices select via one permute.
  // Delta overflow anywhere (adversarial kFixed32 raws) redoes the whole
  // block scalar at the end, like the scalar kernel's 64-bit math.
  const __m128i shift = _mm_cvtsi32_si128(3);
  __m256i ov = _mm256_setzero_si256();
  alignas(32) int32_t col[4][16];
  for (int ar = 0; ar < 4; ++ar) {
    const __m256i row = _mm256_broadcastsi128_si256(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(avg + ar * 4)));
    for (int c = 0; c < 16; c += 8) {
      const __m256i il = _mm256_cvtepu8_epi32(
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(left + c)));
      const __m256i ir = _mm256_cvtepu8_epi32(
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(right + c)));
      const __m256i vw = _mm256_cvtepi8_epi32(
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(w + c)));
      const __m256i a = _mm256_permutevar8x32_epi32(row, il);
      const __m256i b = _mm256_permutevar8x32_epi32(row, ir);
      const __m256i d = _mm256_sub_epi32(b, a);
      ov = _mm256_or_si256(ov, sub_overflow(a, b, d));
      _mm256_store_si256(reinterpret_cast<__m256i*>(col[ar] + c),
                         _mm256_add_epi32(a, lerp_q(d, vw, shift)));
    }
  }
  for (int r = 0; r < 16; ++r) {
    const int32_t* top = col[left[r]];
    const int32_t* bot = col[right[r]];
    const __m256i vw = _mm256_set1_epi32(w[r]);
    for (int c = 0; c < 16; c += 8) {
      const __m256i a = _mm256_load_si256(reinterpret_cast<const __m256i*>(top + c));
      const __m256i b = _mm256_load_si256(reinterpret_cast<const __m256i*>(bot + c));
      const __m256i d = _mm256_sub_epi32(b, a);
      ov = _mm256_or_si256(ov, sub_overflow(a, b, d));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + r * 16 + c),
                          _mm256_add_epi32(a, lerp_q(d, vw, shift)));
    }
  }
  if (mask32(ov)) reconstruct_2d_scalar(avg, left, right, w, out);
}

bool error_scan_f32_avx2(const float* original, const int32_t* recon_raw,
                         size_t n, int8_t bias, uint32_t limit,
                         ErrorScanState* st) {
  for (size_t k = 0; k < (n + 63) / 64; ++k) st->bitmap_words[k] = 0;
  const __m256 scale = _mm256_set1_ps(kFixedOneInv);
  const __m256i ff = _mm256_set1_epi32(0xFF);
  const __m256i zero = _mm256_setzero_si256();
  const __m256i ones = _mm256_set1_epi32(-1);
  const __m256i mant = _mm256_set1_epi32(static_cast<int>(kF32MantissaMask));
  const __m256i limm1 = _mm256_set1_epi32(static_cast<int>(limit) - 1);
  const int delta = -static_cast<int>(bias);
  __m256i dmacc = zero;
  int64_t dm_sum = 0;
  uint32_t fast_lanes = 0;
  int groups_since_flush = 0;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i ob =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(original + i));
    const __m256i raw =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(recon_raw + i));
    __m256i ab = _mm256_castps_si256(_mm256_mul_ps(_mm256_cvtepi32_ps(raw), scale));
    int bad = 0;
    if (delta != 0) ab = exp_add_guarded(ab, delta, &bad);
    const __m256i eq = _mm256_cmpeq_epi32(ob, ab);
    const __m256i nonfin = _mm256_cmpeq_epi32(
        _mm256_and_si256(_mm256_srli_epi32(ob, 23), ff), ff);
    const __m256i hieq = _mm256_cmpeq_epi32(
        _mm256_srli_epi32(_mm256_xor_si256(ob, ab), 23), zero);
    const __m256i dm = _mm256_abs_epi32(_mm256_sub_epi32(
        _mm256_and_si256(ob, mant), _mm256_and_si256(ab, mant)));
    const __m256i outl = _mm256_andnot_si256(
        eq, _mm256_or_si256(_mm256_or_si256(nonfin, _mm256_cmpgt_epi32(dm, limm1)),
                            _mm256_xor_si256(hieq, ones)));
    if (bad | mask32(outl)) {
      // A slow lane (outlier, or unbias spill): the whole group re-runs
      // scalar, preserving outlier order and the budget-abort point.
      if (!error_scan_range_scalar(original, recon_raw, bias, limit, i, i + 8, st))
        return false;
    } else {
      dmacc = _mm256_add_epi32(dmacc, _mm256_andnot_si256(eq, dm));
      fast_lanes += 8;
      // Lane bound: 32 adds of < 2^23 keep each lane < 2^28 and the 8-lane
      // horizontal sum < 2^31.
      if (++groups_since_flush == 32) {
        dm_sum += hsum_epi32(dmacc);
        dmacc = zero;
        groups_since_flush = 0;
      }
    }
  }
  dm_sum += hsum_epi32(dmacc);
  st->dm_sum += dm_sum;
  st->non_outliers += fast_lanes;
  if (i < n)
    return error_scan_range_scalar(original, recon_raw, bias, limit, i, n, st);
  return true;
}

// -mavx2 implies SSE4.2, so the AVX2 level reuses the hardware crc32
// instruction (there is no wider CRC datapath to exploit; carry-less
// multiply folding would need PCLMUL and buys nothing at record sizes).
uint32_t crc32c_update_avx2(uint32_t crc, const uint8_t* data, size_t n) {
  size_t i = 0;
  uint64_t c = crc;
  for (; i + 8 <= n; i += 8) {
    uint64_t v;
    __builtin_memcpy(&v, data + i, 8);
    c = _mm_crc32_u64(c, v);
  }
  uint32_t c32 = static_cast<uint32_t>(c);
  for (; i < n; ++i) c32 = _mm_crc32_u8(c32, data[i]);
  return c32;
}

}  // namespace

const KernelTable kAvx2Table = {
    fixed32_from_f32_avx2, fixed32_to_f32_unbias_avx2,
    bias_block_avx2,       exponent_minmax_avx2,
    truncate_low_bits_avx2, summarize_1d_avx2,
    summarize_2d_avx2,     lerp_gather_avx2,
    reconstruct_2d_avx2,   error_scan_f32_avx2,
    crc32c_update_avx2,
};

}  // namespace avr::simd::detail
