// Deterministic xoshiro256** PRNG for workload input synthesis.
// All experiments must be reproducible bit-for-bit run to run, so workloads
// never touch std::random_device or global RNG state.
#pragma once

#include <cstdint>

namespace avr {

class Xoshiro256 {
 public:
  explicit Xoshiro256(uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 seeding, the reference initialization for xoshiro.
    uint64_t x = seed;
    for (auto& s : s_) {
      x += 0x9E3779B97F4A7C15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
  }

  uint64_t next() {
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }
  /// Uniform integer in [0, n).
  uint64_t below(uint64_t n) { return next() % n; }
  /// Standard normal via Box-Muller (one value per call; simple and stateless).
  double normal() {
    double u1 = uniform();
    double u2 = uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    return __builtin_sqrt(-2.0 * __builtin_log(u1)) * __builtin_cos(6.28318530717958647692 * u2);
  }

 private:
  static constexpr uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

}  // namespace avr
