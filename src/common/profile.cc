#include "common/profile.hh"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/fault_inject.hh"

namespace avr {
namespace prof {
namespace {

constexpr const char* kPhaseNames[kNumPhases] = {
    "setup", "functional", "timing", "compress", "cache_io", "bdi"};
constexpr const char* kCounterNames[kNumCounters] = {
    "points_simulated", "cache_hits",       "cache_appends",
    "claims_won",       "claims_reclaimed", "claims_lost"};

void append_json_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
}

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

/// {"phases":{"setup":{"ns":..,"calls":..},...},"counters":{...}}
void append_totals(std::string& out, const Totals& t) {
  out += "{\"phases\":{";
  for (size_t i = 0; i < kNumPhases; ++i) {
    if (i) out += ',';
    out += '"';
    out += kPhaseNames[i];
    out += "\":{\"ns\":";
    out += std::to_string(t.ns[i]);
    out += ",\"calls\":";
    out += std::to_string(t.calls[i]);
    out += '}';
  }
  out += "},\"counters\":{";
  for (size_t i = 0; i < kNumCounters; ++i) {
    if (i) out += ',';
    out += '"';
    out += kCounterNames[i];
    out += "\":";
    out += std::to_string(t.counts[i]);
  }
  out += "}}";
}

}  // namespace

const char* phase_name(Phase p) {
  return kPhaseNames[static_cast<size_t>(p)];
}

const char* counter_name(Counter c) {
  return kCounterNames[static_cast<size_t>(c)];
}

bool write_profile_json(const std::string& path, const Report& report) {
  std::string out = "{\"schema\":\"";
  out += kProfileSchema;
  out += "\",\"owner\":\"";
  append_json_escaped(out, report.owner);
  out += "\",\"mode\":\"";
  append_json_escaped(out, report.mode);
  out += "\",\"simd\":\"";
  append_json_escaped(out, report.simd);
  out += "\",\"wall_seconds\":";
  append_double(out, report.wall_seconds);
  out += ",\"aggregate\":";
  append_totals(out, report.aggregate);
  out += ",\"points\":[";
  for (size_t i = 0; i < report.points.size(); ++i) {
    const PointProfile& p = report.points[i];
    if (i) out += ',';
    out += "{\"workload\":\"";
    append_json_escaped(out, p.workload);
    out += "\",\"design\":\"";
    append_json_escaped(out, p.design);
    out += "\",\"t1\":";
    out += std::to_string(p.t1);
    out += ",\"wall_seconds\":";
    append_double(out, p.wall_seconds);
    out += ",\"totals\":";
    append_totals(out, p.totals);
    out += '}';
  }
  out += "]}\n";

  // tmp + rename: a reader (or artifact upload) never sees a torn sidecar.
  // The tmp name carries the owner (pid fallback), so concurrent writers
  // aimed at one final path — two shards misconfigured onto the same
  // AVR_PROFILE_OUT — can never tear each other's tmp file; last rename
  // wins whole. Sidecar failure is never fatal: every caller warns and
  // moves on (the sweep's results do not live here).
  const std::string uniq = report.owner.empty()
                               ? std::to_string(static_cast<long>(::getpid()))
                               : report.owner;
  const std::string tmp = path + "." + uniq + ".tmp";
  const fault::Kind wf = fault::fire(fault::Site::kSidecarWrite);
  if (wf == fault::Kind::kKill) fault::kill_now(fault::Site::kSidecarWrite);
  std::FILE* f =
      wf == fault::Kind::kNone ? std::fopen(tmp.c_str(), "w") : nullptr;
  if (!f) return false;
  const bool written = std::fwrite(out.data(), 1, out.size(), f) == out.size();
  const bool closed = std::fclose(f) == 0;
  if (!written || !closed) {
    std::remove(tmp.c_str());
    return false;
  }
  const fault::Kind rf = fault::fire(fault::Site::kSidecarRename);
  if (rf == fault::Kind::kKill) fault::kill_now(fault::Site::kSidecarRename);
  if (rf != fault::Kind::kNone ||
      std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

void print_summary(std::FILE* out, const Report& report) {
  const Totals& t = report.aggregate;
  const double wall = report.wall_seconds;
  std::fprintf(out, "\n== profile: %s (%s, simd %s, %.2fs wall) ==\n",
               report.owner.c_str(), report.mode.c_str(),
               report.simd.empty() ? "?" : report.simd.c_str(), wall);
  std::fprintf(out, "%-12s %10s %8s %8s\n", "phase", "seconds", "% wall",
               "calls");
  for (size_t i = 0; i < kNumPhases; ++i) {
    const double secs = static_cast<double>(t.ns[i]) * 1e-9;
    const double pct = wall > 0 ? 100.0 * secs / wall : 0.0;
    std::fprintf(out, "%-12s %10.3f %7.1f%% %8llu\n", kPhaseNames[i], secs,
                 pct, static_cast<unsigned long long>(t.calls[i]));
  }
  std::fprintf(out, "counters:");
  for (size_t i = 0; i < kNumCounters; ++i)
    std::fprintf(out, " %s=%llu", kCounterNames[i],
                 static_cast<unsigned long long>(t.counts[i]));
  std::fprintf(out, "\n");

  // The top of the cost distribution is what names the next hot path.
  std::vector<const PointProfile*> by_cost;
  by_cost.reserve(report.points.size());
  for (const PointProfile& p : report.points) by_cost.push_back(&p);
  std::stable_sort(by_cost.begin(), by_cost.end(),
                   [](const PointProfile* a, const PointProfile* b) {
                     return a->wall_seconds > b->wall_seconds;
                   });
  const size_t top = std::min<size_t>(5, by_cost.size());
  if (top > 0) std::fprintf(out, "top points by wall time:\n");
  for (size_t i = 0; i < top; ++i) {
    const PointProfile& p = *by_cost[i];
    const double timing =
        static_cast<double>(p.totals.phase_ns(Phase::kTiming)) * 1e-9;
    const double compress =
        static_cast<double>(p.totals.phase_ns(Phase::kCompress)) * 1e-9;
    if (p.t1 < 0)
      std::fprintf(out, "  %-10s x %-8s %7.2fs (timing %.2fs, compress %.2fs)\n",
                   p.workload.c_str(), p.design.c_str(), p.wall_seconds, timing,
                   compress);
    else
      std::fprintf(out,
                   "  %-10s x %-8s %7.2fs (timing %.2fs, compress %.2fs, "
                   "t1=%d)\n",
                   p.workload.c_str(), p.design.c_str(), p.wall_seconds, timing,
                   compress, p.t1);
  }
}

std::string default_owner() {
  char host[256] = {0};
  if (::gethostname(host, sizeof(host) - 1) != 0) std::strcpy(host, "host");
  std::string owner = host;
  owner += '-';
  owner += std::to_string(static_cast<long>(::getpid()));
  for (char& c : owner) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_';
    if (!ok) c = '-';
  }
  return owner;
}

}  // namespace prof
}  // namespace avr
