// Fixed-size 256-bit bitmap: one bit per 32-bit value in a memory block.
// Used as the outlier-location bitmap of a compressed block (Fig. 2a).
#pragma once

#include <array>
#include <bit>
#include <cstdint>

namespace avr {

class Bitmap256 {
 public:
  static constexpr uint32_t kBits = 256;

  constexpr void set(uint32_t i) { words_[i >> 6] |= (uint64_t{1} << (i & 63)); }
  constexpr void clear(uint32_t i) { words_[i >> 6] &= ~(uint64_t{1} << (i & 63)); }
  constexpr bool test(uint32_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  constexpr void reset() { words_ = {}; }

  constexpr uint32_t popcount() const {
    uint32_t n = 0;
    for (uint64_t w : words_) n += static_cast<uint32_t>(std::popcount(w));
    return n;
  }
  constexpr bool any() const {
    for (uint64_t w : words_)
      if (w) return true;
    return false;
  }

  constexpr bool operator==(const Bitmap256&) const = default;

  /// Raw words, e.g. for serialization into the compressed block image.
  constexpr const std::array<uint64_t, 4>& words() const { return words_; }
  constexpr std::array<uint64_t, 4>& words() { return words_; }

 private:
  std::array<uint64_t, 4> words_{};
};

}  // namespace avr
