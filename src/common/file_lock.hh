// RAII advisory file lock: opens (creating if needed) `path` and takes a
// blocking exclusive flock(2) on it. Used to serialize *processes* appending
// to the shared result cache; threads within one process are serialized by
// the runner's mutex, so the flock only ever blocks against other processes.
//
// flock is advisory: every writer must go through this helper. The lock is
// released (and the fd closed) on destruction, including on exceptions.
#pragma once

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <cerrno>
#include <string>

namespace avr {

class FileLock {
 public:
  /// Opens `path` with `oflags` (mode 0644 when creating) and blocks until
  /// an exclusive flock is held. On failure `ok()` is false and no lock is
  /// held; the caller decides whether that is fatal.
  explicit FileLock(const std::string& path, int oflags = O_RDWR | O_CREAT) {
    do {
      fd_ = ::open(path.c_str(), oflags | O_CLOEXEC, 0644);
    } while (fd_ < 0 && errno == EINTR);
    if (fd_ < 0) return;
    int rc;
    do {
      rc = ::flock(fd_, LOCK_EX);
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  ~FileLock() { release(); }

  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;
  FileLock(FileLock&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  FileLock& operator=(FileLock&& o) noexcept {
    if (this != &o) {
      release();
      fd_ = o.fd_;
      o.fd_ = -1;
    }
    return *this;
  }

  bool ok() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Unlock early (also closes the fd). Idempotent.
  void release() {
    if (fd_ >= 0) {
      ::flock(fd_, LOCK_UN);
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
};

}  // namespace avr
