// RAII advisory file lock: opens (creating if needed) `path` and takes a
// blocking exclusive flock(2) on it. Used to serialize *processes* appending
// to the shared result cache; threads within one process are serialized by
// the runner's mutex, so the flock only ever blocks against other processes.
//
// flock is advisory: every writer must go through this helper. The lock is
// released (and the fd closed) on destruction, including on exceptions.
//
// Failure is reported, never swallowed: on a failed acquire ok() is false
// and error()/failed_step()/error_detail() say which syscall failed and
// why, so callers can log a useful one-liner instead of a bare "could not
// lock". The cache writer acquires through acquire_with_retry(), which
// rides out transient failures (injected or real EINTR/EIO storms,
// momentary ENOSPC) with bounded exponential backoff before giving up.
//
// Fault site "lock.acquire" (common/fault_inject.hh) sits between open and
// flock: injected eintr re-enters the retry loop, eio/enospc/timeout fail
// the acquire with the matching errno, kill dies waiting for the lock.
#pragma once

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

#include "common/backoff.hh"
#include "common/fault_inject.hh"

namespace avr {

class FileLock {
 public:
  /// Opens `path` with `oflags` (mode 0644 when creating) and blocks until
  /// an exclusive flock is held. On failure `ok()` is false, no lock is
  /// held, and error()/failed_step() describe the failure; the caller
  /// decides whether that is fatal.
  explicit FileLock(const std::string& path, int oflags = O_RDWR | O_CREAT) {
    do {
      fd_ = ::open(path.c_str(), oflags | O_CLOEXEC, 0644);
    } while (fd_ < 0 && errno == EINTR);
    if (fd_ < 0) {
      errno_ = errno;
      step_ = "open";
      return;
    }
    for (;;) {
      switch (fault::fire(fault::Site::kLockAcquire)) {
        case fault::Kind::kNone:
          break;
        case fault::Kind::kEintr:
          continue;  // one injected EINTR round through this loop
        case fault::Kind::kKill:
          fault::kill_now(fault::Site::kLockAcquire);
        case fault::Kind::kTimeout:
          fail_acquire(ETIMEDOUT);
          return;
        case fault::Kind::kEnospc:
          fail_acquire(ENOSPC);
          return;
        default:  // short_write / eio: a hard I/O error on the lock path
          fail_acquire(EIO);
          return;
      }
      if (::flock(fd_, LOCK_EX) == 0) break;
      if (errno != EINTR) {
        fail_acquire(errno);
        return;
      }
    }
  }

  /// Acquires with up to `attempts` tries, sleeping an exponentially
  /// growing, jittered interval between failures (common/backoff.hh). The
  /// returned lock may still be !ok() after the final attempt — transient
  /// storms end, dead disks do not.
  static FileLock acquire_with_retry(const std::string& path,
                                     int oflags = O_RDWR | O_CREAT,
                                     int attempts = kIoRetryAttempts) {
    for (int attempt = 0;; ++attempt) {
      FileLock lock(path, oflags);
      if (lock.ok() || attempt + 1 >= attempts) return lock;
      backoff_sleep(attempt,
                    static_cast<uint64_t>(::getpid()) ^
                        (static_cast<uint64_t>(attempt) << 32));
    }
  }

  ~FileLock() { release(); }

  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;
  FileLock(FileLock&& o) noexcept
      : fd_(o.fd_), errno_(o.errno_), step_(o.step_) {
    o.fd_ = -1;
  }
  FileLock& operator=(FileLock&& o) noexcept {
    if (this != &o) {
      release();
      fd_ = o.fd_;
      errno_ = o.errno_;
      step_ = o.step_;
      o.fd_ = -1;
    }
    return *this;
  }

  bool ok() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// errno of the failed syscall (0 after a successful acquire).
  int error() const { return errno_; }

  /// Which step failed: "open" or "flock"; nullptr after success.
  const char* failed_step() const { return step_; }

  /// One-line human-readable failure description, e.g.
  /// "flock failed: No space left on device".
  std::string error_detail() const {
    if (ok()) return "ok";
    return std::string(step_ ? step_ : "acquire") +
           " failed: " + std::strerror(errno_);
  }

  /// Unlock early (also closes the fd). Idempotent.
  void release() {
    if (fd_ >= 0) {
      ::flock(fd_, LOCK_UN);
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  void fail_acquire(int err) {
    ::close(fd_);
    fd_ = -1;
    errno_ = err;
    step_ = "flock";
  }

  int fd_ = -1;
  int errno_ = 0;
  const char* step_ = nullptr;
};

}  // namespace avr
