// IEEE-754 single-precision bit-level utilities.
//
// The AVR error check (Sec. 3.3) is defined at the bit level: a value is an
// outlier unless sign and exponent match exactly and the mantissa difference
// stays below the N-th most-significant mantissa bit. Exponent biasing
// (Sec. 3.3, "Biasing & unbiasing") operates directly on the exponent field.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <span>

namespace avr {

inline constexpr uint32_t kMantissaBits = 23;
inline constexpr uint32_t kExponentBits = 8;
inline constexpr uint32_t kMantissaMask = (1u << kMantissaBits) - 1;
inline constexpr uint32_t kExponentMask = 0xFFu;

inline uint32_t f32_bits(float f) { return std::bit_cast<uint32_t>(f); }
inline float bits_f32(uint32_t b) { return std::bit_cast<float>(b); }

inline uint32_t f32_sign(float f) { return f32_bits(f) >> 31; }
/// Raw (biased) exponent field, 0..255.
inline uint32_t f32_exponent(float f) { return (f32_bits(f) >> kMantissaBits) & kExponentMask; }
inline uint32_t f32_mantissa(float f) { return f32_bits(f) & kMantissaMask; }

inline float f32_assemble(uint32_t sign, uint32_t exponent, uint32_t mantissa) {
  return bits_f32((sign << 31) | ((exponent & kExponentMask) << kMantissaBits) |
                  (mantissa & kMantissaMask));
}

inline bool f32_is_finite(float f) { return f32_exponent(f) != kExponentMask; }
inline bool f32_is_zero_or_denormal(float f) { return f32_exponent(f) == 0; }

/// Adds `delta` to the exponent field of a finite, non-zero float.
/// The caller must have established that the result neither overflows into
/// the Inf/NaN encoding nor underflows below the denormal range
/// (the biasing stage checks this per block before applying).
inline float f32_scale_exponent(float f, int delta) {
  uint32_t b = f32_bits(f);
  uint32_t e = (b >> kMantissaBits) & kExponentMask;
  if (e == 0) return f;  // zero / denormal: biasing leaves these untouched
  e = static_cast<uint32_t>(static_cast<int>(e) + delta);
  return bits_f32((b & ~(kExponentMask << kMantissaBits)) | (e << kMantissaBits));
}

/// Truncates the low `n` mantissa bits to zero (the "Truncate" baseline,
/// fp32 -> fp16-style precision with n = 16 keeps sign+exp+7 mantissa bits;
/// the paper truncates 16 bits total which we model as 16 mantissa bits,
/// the closest free-running equivalent that keeps the value a valid fp32).
inline float f32_truncate_low_bits(float f, unsigned n) {
  if (!f32_is_finite(f)) return f;
  return bits_f32(f32_bits(f) & ~((1u << n) - 1u));
}

/// In-place batch form of f32_truncate_low_bits over a flat value array
/// (structure-of-arrays style, like the fixed-point block kernels): the
/// Truncate baseline chops every fp32 of an evicted line in one pass.
/// Dispatches to the runtime-selected SIMD kernel (common/simd.hh); defined
/// in simd.cc, bit-identical at every dispatch level.
void f32_truncate_low_bits_batch(std::span<float> vals, unsigned n);

/// Relative error |a-b| / max(|b|, tiny); used for *reporting* application
/// output error, not for the hardware outlier check.
inline double relative_error(double approx, double exact) {
  const double denom = std::abs(exact);
  if (denom < 1e-30) return std::abs(approx - exact) < 1e-30 ? 0.0 : 1.0;
  return std::abs(approx - exact) / denom;
}

}  // namespace avr
