// SSE4.2 (4-lane) kernel implementations: the 128-bit mirror of
// simd_avx2.cc, for x86-64 CPUs without AVX2. Compiled with -msse4.2
// (per-file; see CMakeLists) and reached only through the dispatch table.
// Same bit-identity structure as the AVX2 TU: proven fast paths, scalar
// helper fallback for excluded lanes, no shared inline symbols.
#include <immintrin.h>

#include "common/simd_impl.hh"

namespace avr::simd::detail {
namespace {

inline int mask32(__m128i m) { return _mm_movemask_ps(_mm_castsi128_ps(m)); }

inline int64_t hsum_epi64(__m128i v) {
  return _mm_cvtsi128_si64(v) + _mm_extract_epi64(v, 1);
}

inline int64_t hsum_epi32(__m128i v) {
  __m128i s = _mm_add_epi32(v, _mm_shuffle_epi32(v, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(s);
}

inline int64_t round_avg16(int64_t acc) {
  return acc >= 0 ? (acc + 8) / 16 : -((-acc + 8) / 16);
}

/// See simd_avx2.cc exp_add_guarded: same proof, 4 lanes.
inline __m128i exp_add_guarded(__m128i b, int delta, int* bad) {
  const __m128i ff = _mm_set1_epi32(0xFF);
  const __m128i zero = _mm_setzero_si128();
  const __m128i e = _mm_and_si128(_mm_srli_epi32(b, 23), ff);
  const __m128i zero_e = _mm_cmpeq_epi32(e, zero);
  const __m128i esum = _mm_add_epi32(e, _mm_set1_epi32(delta));
  const __m128i oor =
      _mm_or_si128(_mm_cmpgt_epi32(zero, esum), _mm_cmpgt_epi32(esum, ff));
  *bad = mask32(_mm_andnot_si128(zero_e, oor));
  const __m128i biased = _mm_add_epi32(
      b, _mm_set1_epi32(static_cast<int>(static_cast<uint32_t>(delta) << 23)));
  return _mm_blendv_epi8(biased, b, zero_e);
}

/// See simd_avx2.cc lerp_q: same proof, 4 lanes (blend_epi16 mask 0xCC
/// selects the odd 32-bit lanes).
inline __m128i lerp_q(__m128i d, __m128i vw, __m128i shift) {
  const __m128i ad = _mm_abs_epi32(d);
  const __m128i pe = _mm_srl_epi64(_mm_mul_epu32(ad, vw), shift);
  const __m128i po = _mm_srl_epi64(
      _mm_mul_epu32(_mm_srli_epi64(ad, 32), _mm_srli_epi64(vw, 32)), shift);
  const __m128i q = _mm_blend_epi16(pe, _mm_slli_epi64(po, 32), 0xCC);
  const __m128i sgn = _mm_srai_epi32(d, 31);
  return _mm_sub_epi32(_mm_xor_si128(q, sgn), sgn);
}

inline __m128i sub_overflow(__m128i a, __m128i b, __m128i d) {
  return _mm_and_si128(_mm_xor_si128(b, a), _mm_xor_si128(b, d));
}

void fixed32_from_f32_sse4(const float* in, int32_t* out, size_t n) {
  const __m128d lo = _mm_set1_pd(kConvertLo);
  const __m128d hi = _mm_set1_pd(kConvertHi);
  const __m128d one = _mm_set1_pd(kFixedOne);
  const __m128d half = _mm_set1_pd(0.5);
  const __m128d sign = _mm_set1_pd(-0.0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 v = _mm_loadu_ps(in + i);
    const __m128d s0 = _mm_mul_pd(_mm_cvtps_pd(v), one);
    const __m128d s1 = _mm_mul_pd(_mm_cvtps_pd(_mm_movehl_ps(v, v)), one);
    const __m128d r0 = _mm_add_pd(s0, _mm_or_pd(half, _mm_and_pd(s0, sign)));
    const __m128d r1 = _mm_add_pd(s1, _mm_or_pd(half, _mm_and_pd(s1, sign)));
    _mm_storeu_si128(
        reinterpret_cast<__m128i*>(out + i),
        _mm_unpacklo_epi64(_mm_cvttpd_epi32(r0), _mm_cvttpd_epi32(r1)));
    const int ok =
        _mm_movemask_pd(_mm_and_pd(_mm_cmpgt_pd(s0, lo), _mm_cmplt_pd(s0, hi))) |
        (_mm_movemask_pd(_mm_and_pd(_mm_cmpgt_pd(s1, lo), _mm_cmplt_pd(s1, hi)))
         << 2);
    if (ok != 0xF) {
      for (int l = 0; l < 4; ++l) {
        if (!((ok >> l) & 1)) fixed32_from_f32_scalar(in + i + l, out + i + l, 1);
      }
    }
  }
  if (i < n) fixed32_from_f32_scalar(in + i, out + i, n - i);
}

void fixed32_to_f32_unbias_sse4(const int32_t* in, float* out, size_t n,
                                int8_t bias) {
  const __m128 scale = _mm_set1_ps(kFixedOneInv);
  const int delta = -static_cast<int>(bias);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i raw = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + i));
    const __m128 f = _mm_mul_ps(_mm_cvtepi32_ps(raw), scale);
    if (delta == 0) {
      _mm_storeu_ps(out + i, f);
      continue;
    }
    int bad = 0;
    const __m128i res = exp_add_guarded(_mm_castps_si128(f), delta, &bad);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), res);
    if (bad) {
      for (int l = 0; l < 4; ++l) {
        if ((bad >> l) & 1)
          fixed32_to_f32_unbias_scalar(in + i + l, out + i + l, 1, bias);
      }
    }
  }
  if (i < n) fixed32_to_f32_unbias_scalar(in + i, out + i, n - i, bias);
}

void bias_block_sse4(const float* in, float* out, size_t n, int8_t bias) {
  const int delta = bias;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + i));
    int bad = 0;
    const __m128i res = exp_add_guarded(b, delta, &bad);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), res);
    if (bad) {
      // May be in-place: spill lanes re-run from the loaded originals.
      alignas(16) float orig[4];
      _mm_store_ps(orig, _mm_castsi128_ps(b));
      for (int l = 0; l < 4; ++l) {
        if ((bad >> l) & 1) bias_block_scalar(orig + l, out + i + l, 1, bias);
      }
    }
  }
  if (i < n) bias_block_scalar(in + i, out + i, n - i, bias);
}

void exponent_minmax_sse4(const float* in, size_t n, int* e_max, int* e_min) {
  const __m128i ff = _mm_set1_epi32(0xFF);
  const __m128i big = _mm_set1_epi32(256);
  const __m128i zero = _mm_setzero_si128();
  __m128i vmax = zero;
  __m128i vmin = big;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + i));
    const __m128i e = _mm_and_si128(_mm_srli_epi32(b, 23), ff);
    vmax = _mm_max_epi32(vmax, e);
    vmin = _mm_min_epi32(vmin, _mm_blendv_epi8(e, big, _mm_cmpeq_epi32(e, zero)));
  }
  __m128i mx = _mm_max_epi32(vmax, _mm_shuffle_epi32(vmax, _MM_SHUFFLE(1, 0, 3, 2)));
  mx = _mm_max_epi32(mx, _mm_shuffle_epi32(mx, _MM_SHUFFLE(2, 3, 0, 1)));
  __m128i mn = _mm_min_epi32(vmin, _mm_shuffle_epi32(vmin, _MM_SHUFFLE(1, 0, 3, 2)));
  mn = _mm_min_epi32(mn, _mm_shuffle_epi32(mn, _MM_SHUFFLE(2, 3, 0, 1)));
  int rmax = _mm_cvtsi128_si32(mx);
  int rmin = _mm_cvtsi128_si32(mn);
  if (i < n) {
    int tmx = 0;
    int tmn = 256;
    exponent_minmax_scalar(in + i, n - i, &tmx, &tmn);
    rmax = rmax > tmx ? rmax : tmx;
    rmin = rmin < tmn ? rmin : tmn;
  }
  *e_max = rmax;
  *e_min = rmin;
}

void truncate_low_bits_sse4(float* vals, size_t n, unsigned bits) {
  const __m128i keep = _mm_set1_epi32(static_cast<int>(~((1u << bits) - 1u)));
  const __m128i ff = _mm_set1_epi32(0xFF);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(vals + i));
    const __m128i nonfin =
        _mm_cmpeq_epi32(_mm_and_si128(_mm_srli_epi32(b, 23), ff), ff);
    const __m128i res = _mm_blendv_epi8(_mm_and_si128(b, keep), b, nonfin);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(vals + i), res);
  }
  if (i < n) truncate_low_bits_scalar(vals + i, n - i, bits);
}

void summarize_1d_sse4(const int32_t* in, int32_t* out) {
  for (int k = 0; k < 16; ++k) {
    const int32_t* p = in + k * 16;
    __m128i s = _mm_setzero_si128();
    for (int j = 0; j < 16; j += 4) {
      const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + j));
      s = _mm_add_epi64(s, _mm_cvtepi32_epi64(v));
      s = _mm_add_epi64(s, _mm_cvtepi32_epi64(_mm_srli_si128(v, 8)));
    }
    out[k] = static_cast<int32_t>(round_avg16(hsum_epi64(s)));
  }
}

void summarize_2d_sse4(const int32_t* in, int32_t* out) {
  for (int tr = 0; tr < 4; ++tr) {
    for (int tc = 0; tc < 4; ++tc) {
      __m128i s = _mm_setzero_si128();
      for (int r = 0; r < 4; ++r) {
        const __m128i v = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(in + (tr * 4 + r) * 16 + tc * 4));
        s = _mm_add_epi64(s, _mm_cvtepi32_epi64(v));
        s = _mm_add_epi64(s, _mm_cvtepi32_epi64(_mm_srli_si128(v, 8)));
      }
      out[tr * 4 + tc] = static_cast<int32_t>(round_avg16(hsum_epi64(s)));
    }
  }
}

void lerp_gather_sse4(const int32_t* avg, const uint8_t* left,
                      const uint8_t* right, const int8_t* w, int log2_den,
                      int32_t* out, size_t n) {
  const __m128i shift = _mm_cvtsi32_si128(log2_den);
  __m128i ov = _mm_setzero_si128();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // No vector gather below AVX2: build the neighbour vectors with scalar
    // indexed loads.
    const __m128i a = _mm_setr_epi32(avg[left[i]], avg[left[i + 1]],
                                     avg[left[i + 2]], avg[left[i + 3]]);
    const __m128i b = _mm_setr_epi32(avg[right[i]], avg[right[i + 1]],
                                     avg[right[i + 2]], avg[right[i + 3]]);
    const __m128i vw = _mm_setr_epi32(w[i], w[i + 1], w[i + 2], w[i + 3]);
    const __m128i d = _mm_sub_epi32(b, a);
    ov = _mm_or_si128(ov, sub_overflow(a, b, d));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm_add_epi32(a, lerp_q(d, vw, shift)));
  }
  if (i < n)
    lerp_gather_scalar(avg, left + i, right + i, w + i, log2_den, out + i, n - i);
  if (mask32(ov)) lerp_gather_scalar(avg, left, right, w, log2_den, out, n);
}

void reconstruct_2d_sse4(const int32_t* avg, const uint8_t* left,
                         const uint8_t* right, const int8_t* w, int32_t* out) {
  alignas(16) int32_t col[4][16];
  for (int ar = 0; ar < 4; ++ar)
    lerp_gather_sse4(avg + ar * 4, left, right, w, 3, col[ar], 16);
  const __m128i shift = _mm_cvtsi32_si128(3);
  __m128i ov = _mm_setzero_si128();
  for (int r = 0; r < 16; ++r) {
    const int32_t* top = col[left[r]];
    const int32_t* bot = col[right[r]];
    const __m128i vw = _mm_set1_epi32(w[r]);
    for (int c = 0; c < 16; c += 4) {
      const __m128i a = _mm_load_si128(reinterpret_cast<const __m128i*>(top + c));
      const __m128i b = _mm_load_si128(reinterpret_cast<const __m128i*>(bot + c));
      const __m128i d = _mm_sub_epi32(b, a);
      ov = _mm_or_si128(ov, sub_overflow(a, b, d));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + r * 16 + c),
                       _mm_add_epi32(a, lerp_q(d, vw, shift)));
    }
  }
  if (mask32(ov)) reconstruct_2d_scalar(avg, left, right, w, out);
}

bool error_scan_f32_sse4(const float* original, const int32_t* recon_raw,
                         size_t n, int8_t bias, uint32_t limit,
                         ErrorScanState* st) {
  for (size_t k = 0; k < (n + 63) / 64; ++k) st->bitmap_words[k] = 0;
  const __m128 scale = _mm_set1_ps(kFixedOneInv);
  const __m128i ff = _mm_set1_epi32(0xFF);
  const __m128i zero = _mm_setzero_si128();
  const __m128i ones = _mm_set1_epi32(-1);
  const __m128i mant = _mm_set1_epi32(static_cast<int>(kF32MantissaMask));
  const __m128i limm1 = _mm_set1_epi32(static_cast<int>(limit) - 1);
  const int delta = -static_cast<int>(bias);
  __m128i dmacc = zero;
  int64_t dm_sum = 0;
  uint32_t fast_lanes = 0;
  int groups_since_flush = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i ob =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(original + i));
    const __m128i raw =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(recon_raw + i));
    __m128i ab = _mm_castps_si128(_mm_mul_ps(_mm_cvtepi32_ps(raw), scale));
    int bad = 0;
    if (delta != 0) ab = exp_add_guarded(ab, delta, &bad);
    const __m128i eq = _mm_cmpeq_epi32(ob, ab);
    const __m128i nonfin =
        _mm_cmpeq_epi32(_mm_and_si128(_mm_srli_epi32(ob, 23), ff), ff);
    const __m128i hieq =
        _mm_cmpeq_epi32(_mm_srli_epi32(_mm_xor_si128(ob, ab), 23), zero);
    const __m128i dm = _mm_abs_epi32(
        _mm_sub_epi32(_mm_and_si128(ob, mant), _mm_and_si128(ab, mant)));
    const __m128i outl = _mm_andnot_si128(
        eq, _mm_or_si128(_mm_or_si128(nonfin, _mm_cmpgt_epi32(dm, limm1)),
                         _mm_xor_si128(hieq, ones)));
    if (bad | mask32(outl)) {
      if (!error_scan_range_scalar(original, recon_raw, bias, limit, i, i + 4, st))
        return false;
    } else {
      dmacc = _mm_add_epi32(dmacc, _mm_andnot_si128(eq, dm));
      fast_lanes += 4;
      // Lane bound: 64 adds of < 2^23 keep each lane < 2^29 and the 4-lane
      // horizontal sum < 2^31.
      if (++groups_since_flush == 64) {
        dm_sum += hsum_epi32(dmacc);
        dmacc = zero;
        groups_since_flush = 0;
      }
    }
  }
  dm_sum += hsum_epi32(dmacc);
  st->dm_sum += dm_sum;
  st->non_outliers += fast_lanes;
  if (i < n)
    return error_scan_range_scalar(original, recon_raw, bias, limit, i, n, st);
  return true;
}

// The SSE4.2 crc32 instruction computes exactly the reflected Castagnoli
// update the scalar table does, 8 bytes per step. Bit-identity is by
// architecture definition, and test_simd_kernels pins it anyway.
uint32_t crc32c_update_sse4(uint32_t crc, const uint8_t* data, size_t n) {
  size_t i = 0;
  uint64_t c = crc;
  for (; i + 8 <= n; i += 8) {
    uint64_t v;
    __builtin_memcpy(&v, data + i, 8);
    c = _mm_crc32_u64(c, v);
  }
  uint32_t c32 = static_cast<uint32_t>(c);
  for (; i < n; ++i) c32 = _mm_crc32_u8(c32, data[i]);
  return c32;
}

}  // namespace

const KernelTable kSse4Table = {
    fixed32_from_f32_sse4, fixed32_to_f32_unbias_sse4,
    bias_block_sse4,       exponent_minmax_sse4,
    truncate_low_bits_sse4, summarize_1d_sse4,
    summarize_2d_sse4,     lerp_gather_sse4,
    reconstruct_2d_sse4,   error_scan_f32_sse4,
    crc32c_update_sse4,
};

}  // namespace avr::simd::detail
