// Deterministic, site-tagged fault injection for the harness I/O paths.
//
// Every fragile operation in the sweep stack — cache appends, cache loads,
// lock acquisition, claim staking, profile-sidecar writes — carries a named
// *site*. A site is a single call to fault::fire(Site) on the operation's
// path; when the layer is unarmed (the overwhelmingly common case) fire()
// is one relaxed atomic load and a predictably-not-taken branch, so sites
// are always compiled in (the apex model: instrumentation that is cheap
// enough to never ifdef out of production).
//
// Arming happens through the environment:
//
//   AVR_FAULTS=<seed>:<site>=<kind>@<when>[,<site>=<kind>@<when>]...
//
//     <seed>  decimal uint64; the PRNG seed that makes probabilistic rules
//             replayable. Always logged by chaos drivers.
//     <site>  dotted site name (see site_name / kSiteNames below), e.g.
//             cache.append, cache.load, lock.acquire, claim.stake,
//             point.complete, sidecar.write, sidecar.rename.
//     <kind>  short_write | eintr | eio | enospc | timeout | kill
//     <when>  n<k>   — fire on exactly the k-th hit of the site (1-based),
//             or a decimal probability in (0,1] — fire per hit with that
//             probability, decided by hash(seed, site, hit#) so the outcome
//             is independent of thread/process interleaving.
//
//   Example: AVR_FAULTS=42:cache.append=eintr@0.4,claim.stake=kill@n2
//
// fire() only *decides*; the call site implements the semantics (a short
// write really writes half the record, an injected EINTR re-enters the
// retry loop, kill_now() raises SIGKILL). Injected EINTR storms are capped
// at kMaxEintrStorm consecutive hits per site so armed retry loops always
// terminate. A malformed AVR_FAULTS value disarms the layer with a loud
// stderr warning — a chaos run that silently ran fault-free would defeat
// its own assertions downstream.
//
// Build-time escape hatch: configure with -DAVR_FAULT_INJECT=OFF and fire()
// compiles to a constant (no atomic, no branch); parse_schedule() remains
// available (it is pure string logic) so tooling still validates specs.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#ifndef AVR_FAULT_INJECT
#define AVR_FAULT_INJECT 1
#endif

namespace avr::fault {

/// Named injection points. Keep in sync with kSiteNames in fault_inject.cc.
enum class Site : uint32_t {
  kCacheAppend = 0,  // "cache.append"  — result-record write; kill = torn line
  kCacheLoad,        // "cache.load"    — warm-up read; kill = die before read
  kLockAcquire,      // "lock.acquire"  — open/flock of the cache lock
  kClaimStake,       // "claim.stake"   — claim-record write; kill = die
                     //                   immediately *after* the stake lands
  kPointComplete,    // "point.complete"— after simulate, before the result
                     //                   append; kill = lose the work
  kSidecarWrite,     // "sidecar.write" — profile JSON tmp-file write
  kSidecarRename,    // "sidecar.rename"— tmp -> final rename
};
inline constexpr size_t kNumSites = 7;

/// What to inject. kNone means "proceed normally".
enum class Kind : uint8_t {
  kNone = 0,
  kShortWrite,  // write only part of the buffer, then fail with EIO
  kEintr,       // one EINTR round through the caller's retry loop
  kEio,         // hard I/O error
  kEnospc,      // no space left on device
  kTimeout,     // lock acquisition gives up as if it timed out
  kKill,        // SIGKILL at the site (callers place it for maximum damage)
};

/// Consecutive injected-EINTR cap per site: storms exercise retry loops
/// without being able to wedge them forever even at probability 1.
inline constexpr uint64_t kMaxEintrStorm = 16;

const char* site_name(Site s);
const char* kind_name(Kind k);

/// One site's rule: fire `kind` on exactly hit `nth` (1-based) when nth != 0,
/// else per-hit with probability `prob`.
struct SiteRule {
  Kind kind = Kind::kNone;
  uint64_t nth = 0;
  double prob = 0.0;
};

struct Schedule {
  uint64_t seed = 0;
  std::array<SiteRule, kNumSites> rules{};

  bool any() const {
    for (const SiteRule& r : rules)
      if (r.kind != Kind::kNone) return true;
    return false;
  }
};

/// Parses the AVR_FAULTS grammar above. On failure returns false and sets
/// *error to a one-line reason; *out is unspecified. Available even when
/// AVR_FAULT_INJECT is OFF (pure string logic, used by spec-validating
/// tests and tools).
bool parse_schedule(const std::string& spec, Schedule* out, std::string* error);

#if AVR_FAULT_INJECT

namespace detail {
extern std::atomic<bool> g_armed;
Kind fire_slow(Site s);
}  // namespace detail

/// The per-site decision point. Unarmed: one relaxed load, branch not
/// taken, returns kNone. Armed: counts the hit, consults the schedule, logs
/// any injected fault to stderr, and returns what to inject — the caller
/// implements the fault's semantics.
inline Kind fire(Site s) {
  if (!detail::g_armed.load(std::memory_order_relaxed)) [[likely]]
    return Kind::kNone;
  return detail::fire_slow(s);
}

/// Arm with an explicit schedule (tests) / disarm. Resets all counters.
void arm(const Schedule& s);
void disarm();

/// Re-reads AVR_FAULTS and arms/disarms accordingly; returns whether the
/// layer ended up armed. Called once automatically at process start.
bool reinit_from_env();

/// Introspection for tests and chaos drivers: how often a site was reached /
/// actually faulted since the last arm()/disarm().
uint64_t hits(Site s);
uint64_t fired(Site s);

/// Logs the site and raises SIGKILL — the crash-here primitive. Callers
/// invoke it when fire() returns kKill, at the exact instruction where death
/// hurts the most (mid-write for a torn line, post-append for a dangling
/// claim).
[[noreturn]] void kill_now(Site s);

#else  // !AVR_FAULT_INJECT: the whole layer folds to constants.

inline Kind fire(Site) { return Kind::kNone; }
inline void arm(const Schedule&) {}
inline void disarm() {}
inline bool reinit_from_env() { return false; }
inline uint64_t hits(Site) { return 0; }
inline uint64_t fired(Site) { return 0; }
[[noreturn]] void kill_now(Site s);  // still defined: aborts loudly

#endif  // AVR_FAULT_INJECT

}  // namespace avr::fault
