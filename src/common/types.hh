// Core constants and small shared types for the AVR reproduction.
//
// Terminology follows the paper (ICPP'19):
//   cacheline (CL)      = 64 B, the DRAM access granularity
//   memory block        = 16 consecutive cachelines = 1 KB (1/4 of a 4 KB page)
//   CMS                 = compressed memory sub-block, one 64 B piece of a
//                         compressed block stored in the LLC
//   UCL                 = uncompressed cacheline stored in the LLC
#pragma once

#include <cstddef>
#include <cstdint>

namespace avr {

inline constexpr uint64_t kCachelineBytes = 64;
inline constexpr uint64_t kBlockLines = 16;                      // CLs per memory block
inline constexpr uint64_t kBlockBytes = kCachelineBytes * kBlockLines;  // 1 KB
inline constexpr uint64_t kPageBytes = 4096;
inline constexpr uint64_t kBlocksPerPage = kPageBytes / kBlockBytes;    // 4
inline constexpr uint64_t kValuesPerLine = kCachelineBytes / sizeof(float);   // 16
inline constexpr uint64_t kValuesPerBlock = kBlockBytes / sizeof(float);      // 256

// Maximum number of cachelines a *compressed* block may occupy. Beyond this
// the block is stored uncompressed (2:1 worst-case ratio, Sec. 3.1).
inline constexpr uint32_t kMaxCompressedLines = 8;

/// Address helpers. Simulated physical addresses are plain 64-bit integers.
constexpr uint64_t line_addr(uint64_t addr) { return addr & ~(kCachelineBytes - 1); }
constexpr uint64_t block_addr(uint64_t addr) { return addr & ~(kBlockBytes - 1); }
constexpr uint64_t page_addr(uint64_t addr) { return addr & ~(kPageBytes - 1); }
/// Offset of a cacheline within its memory block, 0..15.
constexpr uint32_t line_in_block(uint64_t addr) {
  return static_cast<uint32_t>((addr >> 6) & (kBlockLines - 1));
}

/// Datatype of values in an approximable region (Sec. 3.3 supports 32-bit
/// float and fixed point; the compressor dispatches on this).
enum class DType : uint8_t {
  kFloat32 = 0,
  kFixed32 = 1,  // Q16.16 two's-complement fixed point
};

/// Compression method recorded in the CMT (2-bit field, Fig. 3). The first
/// three values are the paper's; kBdiHybrid is the extension design point:
/// lossless base-delta-immediate fallback when a block blows the lossy
/// outlier budget (avr/method.hh maps each method to its tier and size
/// model). Four values fill the 2-bit field exactly.
enum class Method : uint8_t {
  kUncompressed = 0,
  kDownsample1D = 1,  // block treated as a 256-entry linear array
  kDownsample2D = 2,  // block treated as a 16x16 square array
  kBdiHybrid = 3,     // lossless BDI image (src/lossless), exact reconstruction
};

/// The design points evaluated in Sec. 4.
enum class Design : uint8_t {
  kBaseline = 0,
  kDoppelganger = 1,
  kTruncate = 2,
  kZeroAvr = 3,  // AVR hardware present, nothing marked approximate
  kAvr = 4,
};

const char* to_string(Design d);
const char* to_string(Method m);
const char* to_string(DType t);

}  // namespace avr
