// Runtime-dispatched SIMD kernels for the compressor datapath.
//
// The Sec. 3.3 pipeline was rewritten (PR 4) as structure-of-arrays batch
// loops over 256-value blocks precisely so it could vectorize; this layer
// supplies the explicit vector implementations. The hardware the paper
// models converts a whole line per cycle (the one-cycle fixed-point
// converters of Saldanha et al., see fixed_point.hh) — AVX2 lanes are the
// software analogue.
//
// Dispatch contract:
//   - Three implementation levels: kScalar (the reference, always built),
//     kSse4 (SSE4.2, 4 lanes) and kAvx2 (AVX2, 8 lanes). The active level
//     is chosen ONCE, on first use, as the highest level both the build
//     (CMake option AVR_SIMD) and the CPU (__builtin_cpu_supports) provide,
//     overridable with the environment variable AVR_SIMD=scalar|sse4|avx2
//     (an unsupported or unparseable override warns and clamps).
//   - Every kernel is *proven bit-identical* to the scalar reference on all
//     inputs: the vector bodies run an in-range fast path and re-run the
//     scalar reference for any lane (or block) whose value falls outside it
//     (non-finite, saturating, exponent-field over/underflow, 32-bit
//     interpolation-delta overflow). test_simd_kernels sweeps every level
//     against scalar on adversarial corpora; test_compressor_identity's
//     pinned digests and the full-sweep --assert-same hold at every level.
//   - Kernels are reached through a function-pointer table (kernels()), one
//     indirect call per *block-sized batch*, never per value. The active
//     table pointer is an atomic: simulation threads may race the first
//     call, and tests/benches switch levels between (not during) runs via
//     simd_set_level.
//
// The SSE4.2/AVX2 translation units are compiled with per-file -m flags
// (no global -march), so the binary still runs on baseline x86-64: only the
// dispatched calls execute ISA-specific instructions. Those TUs must not
// call inline functions from shared headers (the linker could keep the
// AVX2-compiled copy of an inline symbol and hand it to scalar callers);
// they include only <immintrin.h> plus simd_impl.hh and cross back into
// baseline code through the out-of-line detail:: helpers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace avr {

/// Implementation levels, in increasing preference order.
enum class SimdLevel : uint8_t { kScalar = 0, kSse4 = 1, kAvx2 = 2 };

/// The level the dispatched kernels currently run at (initializing the
/// dispatch on first call: build/CPU detection + the AVR_SIMD override).
SimdLevel simd_level();

/// Highest level both this build and this CPU support.
SimdLevel simd_max_supported_level();

/// Rebinds the kernel table to `lvl`; false (and no change) if `lvl` is
/// unsupported. For tests and benchmarks — switch between runs, not while
/// another thread is inside the datapath.
bool simd_set_level(SimdLevel lvl);

/// Stable lower-case identifier: "scalar", "sse4", "avx2" (the AVR_SIMD
/// env grammar, profile sidecar field, and bench/test labels).
const char* simd_level_name(SimdLevel lvl);

/// Parses a simd_level_name; false for unknown names.
bool simd_parse_level(std::string_view name, SimdLevel* out);

/// The level startup would pick given this AVR_SIMD value (nullptr/"" =
/// no override): parse, warn on garbage, clamp to max supported. Pure
/// selection logic, exposed so tests can pin the env contract.
SimdLevel simd_choose_level(const char* env_value);

/// Re-runs startup selection against the current environment and activates
/// the result (tests of the env override; startup calls this once).
SimdLevel simd_reinit_from_env();

namespace simd {

/// Caller-wired state of the float-path error scan (error_scan_f32): the
/// scan zeroes and fills `bitmap_words`, appends exact outlier images to
/// `outlier_bits` in block order, and accumulates the counters. On a false
/// return (outlier budget exceeded, scan aborted) the state is partial and
/// must be discarded, mirroring the scalar scan's abandoned attempt.
struct ErrorScanState {
  uint64_t* bitmap_words = nullptr;  // ceil(n/64) words, zeroed by the scan
  uint32_t* outlier_bits = nullptr;  // capacity >= max_outliers
  uint32_t max_outliers = 0;
  uint32_t n_outliers = 0;
  uint32_t non_outliers = 0;
  int64_t dm_sum = 0;  // sum of non-outlier absolute mantissa differences
};

/// One dispatch level's kernel set. All pointers are into flat SoA arrays
/// (a Fixed32 is one int32_t; the avr-layer wrappers static_assert the
/// layout); n is a value count, not bytes. Semantics are defined by the
/// scalar reference implementations in simd.cc — every other level must be
/// bit-identical on every input.
struct KernelTable {
  /// Float block -> Q16.16 raw block: saturating round-half-away-from-zero
  /// conversion, non-finite inputs -> 0 (fixed_point.hh's batch contract).
  void (*fixed32_from_f32)(const float* in, int32_t* out, size_t n);

  /// Q16.16 raw -> float with the block bias undone: out[i] =
  /// unbias(raw/2^16). The decompressor's fixed->float stage.
  void (*fixed32_to_f32_unbias)(const int32_t* in, float* out, size_t n,
                                int8_t bias);

  /// Fused copy + exponent bias (bias != 0; callers special-case 0 to a
  /// copy): out[i] = in[i] with `bias` added to the exponent field of
  /// every value whose field is nonzero. in == out is allowed (in-place).
  void (*bias_block)(const float* in, float* out, size_t n, int8_t bias);

  /// choose_bias's reduction: max exponent field over the block, and min
  /// over nonzero fields with zero fields contributing 256.
  void (*exponent_minmax)(const float* in, size_t n, int* e_max, int* e_min);

  /// In-place low-mantissa truncation of every finite value (the Truncate
  /// baseline's line chop).
  void (*truncate_low_bits)(float* vals, size_t n, unsigned bits);

  /// 1D summarize: 16 round-half-away-from-zero averages of 16 consecutive
  /// Q16.16 raws each (in: 256 values, out: 16).
  void (*summarize_1d)(const int32_t* in, int32_t* out);

  /// 2D summarize: 4x4 tile averages over the 16x16 grid, row-major
  /// (in: 256 values, out: 16).
  void (*summarize_2d)(const int32_t* in, int32_t* out);

  /// Table-driven interpolation: out[i] = avg[left[i]] +
  /// trunc((avg[right[i]] - avg[left[i]]) * w[i] / 2^log2_den), the 64-bit
  /// Fixed32::lerp arithmetic. `avg` must hold (at least) the 16 summary
  /// values and every index must be < 16: the vector kernels keep the whole
  /// table in registers instead of gathering from memory.
  void (*lerp_gather)(const int32_t* avg, const uint8_t* left,
                      const uint8_t* right, const int8_t* w, int log2_den,
                      int32_t* out, size_t n);

  /// The full 2D reconstruction: hoisted per-average-row column lerps, then
  /// one vertical lerp per value (downsample.cc's reconstruct_2d), driven
  /// by the shared 16-entry (left, right, w) axis table with denominator 8.
  void (*reconstruct_2d)(const int32_t* avg, const uint8_t* left,
                         const uint8_t* right, const int8_t* w, int32_t* out);

  /// The float-path error check of Compressor::try_method: classifies every
  /// value against its reconstruction (exact / outlier / mantissa delta),
  /// fills `st`, and returns false the moment the outlier budget would be
  /// exceeded. `recon_raw` is the biased-domain Q16.16 reconstruction;
  /// `limit` the mantissa-difference outlier threshold.
  bool (*error_scan_f32)(const float* original, const int32_t* recon_raw,
                         size_t n, int8_t bias, uint32_t limit,
                         ErrorScanState* st);

  /// CRC-32C (Castagnoli, reflected) running update: folds data[0..n) into
  /// `crc` and returns the new state — same chaining convention as the
  /// x86 crc32 instruction, so callers start from ~0 and finalize with ~.
  /// Guards the result-cache v5 record framing (result_cache.cc); the
  /// sse4/avx2 entries use the hardware instruction, 8 bytes per step.
  uint32_t (*crc32c_update)(uint32_t crc, const uint8_t* data, size_t n);
};

/// The active level's table (one atomic load; initializes dispatch on the
/// first call).
const KernelTable& kernels();

}  // namespace simd
}  // namespace avr
