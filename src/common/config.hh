// Simulation configuration, mirroring Table 1 of the paper plus the AVR
// design knobs exposed in Sec. 3. Defaults reproduce the paper setup
// except where noted (LLC size is scaled per workload so that the scaled
// workload footprint keeps the paper's footprint-to-LLC ratio).
#pragma once

#include <bit>
#include <cstdint>

#include "common/types.hh"

namespace avr {

struct CoreConfig {
  uint32_t dispatch_width = 4;   // 4-way issue/commit OoO
  uint32_t rob_size = 192;       // instruction window for miss overlap
  double freq_ghz = 3.2;
  // Fraction of a long-latency miss penalty hidden by MLP when a second
  // miss falls inside the same ROB window (interval model, Genbrugge'10).
  uint32_t l1_latency = 1;
  uint32_t l2_latency = 8;
};

struct CacheConfig {
  uint64_t size_bytes = 0;
  uint32_t ways = 0;
  uint32_t latency = 0;
};

struct DramConfig {
  uint32_t channels = 2;
  uint32_t banks_per_channel = 16;
  uint64_t row_bytes = 2048;  // 2 KB row buffer per bank
  // DDR4-1600 timing in *memory bus* cycles (800 MHz clock).
  uint32_t t_cl = 11;
  uint32_t t_rcd = 11;
  uint32_t t_rp = 11;
  uint32_t t_burst = 4;  // 8 beats on a 64-bit bus = 64 B
  // CPU cycles per DRAM bus cycle (3.2 GHz / 800 MHz).
  uint32_t cpu_per_dram_cycle = 4;
  uint32_t controller_latency = 20;  // queueing/scheduling overhead, CPU cycles
};

struct AvrConfig {
  // Error thresholds (Sec. 3.3): T1 bounds each individual value's relative
  // error, T2 bounds the block-average error; the paper uses T1 = 2*T2.
  // T1 is expressed as the index N of the mantissa MSbit the difference may
  // not reach: error < 1/2^N. N=4 -> T1 = 6.25 %.
  uint32_t t1_mantissa_msbit = 4;
  // Sweep override: when >= 0, the harness forces this T1 msbit index for
  // every workload instead of the per-workload Workload::t1_msbit() default
  // (the avr_sweep --t1 config axis). -1 = per-workload thresholds.
  int32_t t1_override = -1;
  bool enable_1d = true;
  bool enable_2d = true;
  // Lossless-fallback tier (extension design point, not in the paper): when
  // every enabled lossy variant blows the T1/T2 outlier budget, try BDI
  // (src/lossless) over the block's raw bit image before giving up. BDI
  // reconstruction is exact, so enabling it never adds approximation error —
  // it only converts would-be-uncompressed blocks into compressed ones.
  bool enable_bdi_hybrid = false;
  bool enable_lazy_eviction = true;
  bool enable_failure_history = true;
  bool enable_pfe = true;
  // PFE threshold: promote remaining DBUF lines if at least this many of the
  // block's 16 lines were explicitly requested (paper: half).
  uint32_t pfe_threshold = 8;
  // Pipeline latencies from the paper's synthesis (Sec. 3.3).
  uint32_t compress_latency = 49;
  uint32_t decompress_latency = 12;
  // Extra LLC array accesses to stream a k-line compressed block are
  // pipelined; each extra CMS costs this many cycles after the first.
  uint32_t cms_stream_cycles = 2;
  // Failure-history policy: after f consecutive failed compressions skip
  // min(f, max_skips) subsequent attempts (2-bit skip counter, Fig. 3);
  // at max_failures consecutive failures the block is permanently treated
  // as incompressible ("Max tries" in Fig. 8).
  uint32_t max_skips = 3;
  uint32_t max_failures = 4;
};

struct SimConfig {
  CoreConfig core;
  CacheConfig l1{64 * 1024, 4, 1};
  CacheConfig l2{256 * 1024, 8, 8};
  CacheConfig llc{8 * 1024 * 1024, 16, 15};
  DramConfig dram;
  AvrConfig avr;

  // Truncate baseline: bits removed from each fp32 (16 -> 2:1 link ratio).
  uint32_t truncate_bits = 16;

  // Doppelganger: tag array entries = dg_tag_factor * data entries.
  uint32_t dg_tag_factor = 4;
  // Approximate-hash quantization buckets for line average / range.
  uint32_t dg_avg_buckets = 512;
  uint32_t dg_range_buckets = 64;

  // Instructions charged per instrumented memory access in addition to the
  // load/store itself (models the surrounding arithmetic of the kernel).
  uint32_t ops_per_access = 4;

  /// Divide all cache capacities by `f` (used to keep scaled-down workload
  /// footprints in proportion to the paper's 8 MB LLC).
  void scale_caches(uint32_t f) {
    if (f <= 1) return;
    l1.size_bytes /= f;
    l2.size_bytes /= f;
    llc.size_bytes /= f;
  }
};

/// Deterministic 64-bit fingerprint of every simulation knob (FNV-1a over
/// the fields, field by field — never over raw struct bytes, which would
/// hash padding). Two SimConfigs produce comparable simulation results iff
/// their fingerprints match, so the result cache keys records with it: the
/// ablation sweeps can share one cache file with the default-config grid.
/// Extend the fold list whenever a config field is added — a missed field
/// would silently alias distinct configs.
inline uint64_t config_fingerprint(const SimConfig& c) {
  uint64_t h = 1469598103934665603ull;
  auto fold = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h = (h ^ (v & 0xFF)) * 1099511628211ull;
      v >>= 8;
    }
  };
  auto fold_d = [&](double v) { fold(std::bit_cast<uint64_t>(v)); };
  fold(c.core.dispatch_width);
  fold(c.core.rob_size);
  fold_d(c.core.freq_ghz);
  fold(c.core.l1_latency);
  fold(c.core.l2_latency);
  for (const CacheConfig* cc : {&c.l1, &c.l2, &c.llc}) {
    fold(cc->size_bytes);
    fold(cc->ways);
    fold(cc->latency);
  }
  fold(c.dram.channels);
  fold(c.dram.banks_per_channel);
  fold(c.dram.row_bytes);
  fold(c.dram.t_cl);
  fold(c.dram.t_rcd);
  fold(c.dram.t_rp);
  fold(c.dram.t_burst);
  fold(c.dram.cpu_per_dram_cycle);
  fold(c.dram.controller_latency);
  fold(c.avr.t1_mantissa_msbit);
  // Folded only when set: the default (-1, per-workload thresholds) must
  // keep the exact pre-override fingerprint so existing result caches stay
  // valid. The marker byte keeps an override from aliasing a config whose
  // next folded field happens to match the override value.
  if (c.avr.t1_override >= 0) {
    fold(0x7431);  // 't1' marker
    fold(static_cast<uint64_t>(c.avr.t1_override));
  }
  // enable_bdi_hybrid defaults to false, so folding it as a fresh bit keeps
  // every pre-existing configuration's fingerprint (and result cache) valid.
  fold(static_cast<uint64_t>(c.avr.enable_1d) << 0 |
       static_cast<uint64_t>(c.avr.enable_2d) << 1 |
       static_cast<uint64_t>(c.avr.enable_lazy_eviction) << 2 |
       static_cast<uint64_t>(c.avr.enable_failure_history) << 3 |
       static_cast<uint64_t>(c.avr.enable_pfe) << 4 |
       static_cast<uint64_t>(c.avr.enable_bdi_hybrid) << 5);
  fold(c.avr.pfe_threshold);
  fold(c.avr.compress_latency);
  fold(c.avr.decompress_latency);
  fold(c.avr.cms_stream_cycles);
  fold(c.avr.max_skips);
  fold(c.avr.max_failures);
  fold(c.truncate_bits);
  fold(c.dg_tag_factor);
  fold(c.dg_avg_buckets);
  fold(c.dg_range_buckets);
  fold(c.ops_per_access);
  return h;
}

}  // namespace avr
