#include "common/types.hh"

namespace avr {

const char* to_string(Design d) {
  switch (d) {
    case Design::kBaseline: return "baseline";
    case Design::kDoppelganger: return "dganger";
    case Design::kTruncate: return "truncate";
    case Design::kZeroAvr: return "ZeroAVR";
    case Design::kAvr: return "AVR";
  }
  return "?";
}

const char* to_string(Method m) {
  switch (m) {
    case Method::kUncompressed: return "uncompressed";
    case Method::kDownsample1D: return "ds1d";
    case Method::kDownsample2D: return "ds2d";
    case Method::kBdiHybrid: return "bdi";
  }
  return "?";
}

const char* to_string(DType t) {
  switch (t) {
    case DType::kFloat32: return "float32";
    case DType::kFixed32: return "fixed32";
  }
  return "?";
}

}  // namespace avr
