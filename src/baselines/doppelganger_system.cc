#include "baselines/doppelganger_system.hh"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstring>
#include <stdexcept>

namespace avr {

DoppelgangerSystem::DoppelgangerSystem(const SimConfig& cfg, RegionRegistry& regions)
    : cfg_(cfg), regions_(regions), dram_(cfg.dram) {
  const uint64_t data_entries = cfg.llc.size_bytes / kCachelineBytes;
  const uint64_t tag_entries = data_entries * cfg.dg_tag_factor;
  tag_ways_ = cfg.llc.ways;
  const uint64_t sets = tag_entries / tag_ways_;
  if (!std::has_single_bit(sets)) throw std::invalid_argument("dg tag sets not pow2");
  tag_sets_ = static_cast<uint32_t>(sets);
  tags_.resize(tag_entries);
  data_.resize(data_entries);
  free_data_.reserve(data_entries);
  for (uint32_t i = 0; i < data_entries; ++i)
    free_data_.push_back(static_cast<uint32_t>(data_entries - 1 - i));
}

DoppelgangerSystem::TagEntry* DoppelgangerSystem::find_tag(uint64_t line) {
  TagEntry* base = &tags_[tag_set_of(line) * tag_ways_];
  for (uint32_t w = 0; w < tag_ways_; ++w)
    if (base[w].valid && base[w].line == line) return &base[w];
  return nullptr;
}

uint64_t DoppelgangerSystem::map_key(uint64_t line) {
  const MemoryRegion* r = regions_.find(line);
  assert(r && r->approx);
  float lo = 0, hi = 0, sum = 0;
  for (uint32_t i = 0; i < kValuesPerLine; ++i) {
    const float v = regions_.load<float>(line + i * sizeof(float));
    const float f = std::isfinite(v) ? v : 0.0f;
    if (i == 0) lo = hi = f;
    lo = std::min(lo, f);
    hi = std::max(hi, f);
    sum += f;
  }
  const float avg = sum / kValuesPerLine;

  Span& span = spans_[r->base];
  if (!span.init) {
    span = {lo, hi, true};
  } else {
    span.lo = std::min(span.lo, lo);
    span.hi = std::max(span.hi, hi);
  }
  const double width = std::max<double>(span.hi - span.lo, 1e-12);
  const auto clampq = [](double q, uint32_t buckets) {
    return static_cast<uint64_t>(
        std::clamp<double>(q, 0.0, static_cast<double>(buckets - 1)));
  };
  const uint64_t q_avg =
      clampq(std::floor((avg - span.lo) / width * cfg_.dg_avg_buckets),
             cfg_.dg_avg_buckets);
  const uint64_t q_rng =
      clampq(std::floor((hi - lo) / width * cfg_.dg_range_buckets),
             cfg_.dg_range_buckets);
  // Per-value 2-bit shape signature (each value quantized within the line's
  // own [lo, hi] span): two lines dedup only when their internal shapes
  // agree, not merely their average. Lines at the extremes of the region
  // span still alias (q_avg saturates at the edge buckets), which is the
  // edge-case artefact the paper observes.
  uint64_t shape = 0;
  const float lw = std::max(hi - lo, 1e-12f);
  for (uint32_t i = 0; i < kValuesPerLine; ++i) {
    const float v = regions_.load<float>(line + i * sizeof(float));
    const float f = std::isfinite(v) ? v : 0.0f;
    const uint32_t q = static_cast<uint32_t>(
        std::clamp((f - lo) / lw * 4.0f, 0.0f, 3.0f));
    shape = (shape << 2) | q;
  }
  // Edge-case artefact (called out in Sec. 4.3): lines sitting at the
  // extreme edges of the region's expected value span saturate the average
  // quantizer, so their shape no longer disambiguates them — lines with very
  // different contents alias onto one map entry. This is what produces
  // Doppelganger's runaway error on orbit-like data.
  if (q_avg == 0 || q_avg == cfg_.dg_avg_buckets - 1) shape = 0;
  // Keys are namespaced by region so unrelated structures never collide.
  const uint64_t quant = (q_avg << 8) | q_rng;
  return (r->base << 20) ^ (quant << 32) ^ shape;
}

uint32_t DoppelgangerSystem::alloc_data_entry(uint64_t now, uint64_t key) {
  if (free_data_.empty()) {
    // Evict the LRU data entry (and every tag that shares it).
    uint32_t victim = 0;
    bool found = false;
    for (uint32_t i = 0; i < data_.size(); ++i)
      if (data_[i].valid && (!found || data_[i].lru < data_[victim].lru)) {
        victim = i;
        found = true;
      }
    assert(found);
    evict_data_entry(now, victim);
  }
  const uint32_t idx = free_data_.back();
  free_data_.pop_back();
  DataEntry& d = data_[idx];
  d.valid = true;
  d.key = key;
  d.lru = ++lru_clock_;
  d.sharers.clear();
  if (key) by_key_[key] = idx;
  return idx;
}

void DoppelgangerSystem::evict_data_entry(uint64_t now, uint32_t idx) {
  DataEntry& d = data_[idx];
  // Invalidate all sharers; dirty ones write back their (representative)
  // contents.
  for (uint64_t line : std::vector<uint64_t>(d.sharers)) {
    TagEntry* t = find_tag(line);
    if (!t) continue;
    if (t->dirty) {
      dram_.write(now, line, kCachelineBytes);
      count_traffic(line, kCachelineBytes);
    }
    t->valid = false;
  }
  by_key_.erase(d.key);
  d.valid = false;
  d.sharers.clear();
  free_data_.push_back(idx);
  ++counters_.data_evictions;
}

void DoppelgangerSystem::detach_tag(uint64_t now, TagEntry& t, bool write_back) {
  DataEntry& d = data_[t.data_idx];
  auto it = std::find(d.sharers.begin(), d.sharers.end(), t.line);
  if (it != d.sharers.end()) d.sharers.erase(it);
  if (t.dirty && write_back) {
    dram_.write(now, t.line, kCachelineBytes);
    count_traffic(t.line, kCachelineBytes);
  }
  if (d.sharers.empty() && d.valid) {
    by_key_.erase(d.key);
    d.valid = false;
    free_data_.push_back(t.data_idx);
  }
  t.valid = false;
}

void DoppelgangerSystem::unshare_for_write(uint64_t now, TagEntry& t) {
  DataEntry& d = data_[t.data_idx];
  if (d.sharers.size() <= 1) return;  // private already
  // A written line diverges from its doppelganger: give it a private entry.
  auto it = std::find(d.sharers.begin(), d.sharers.end(), t.line);
  if (it != d.sharers.end()) d.sharers.erase(it);
  const uint64_t line = t.line;
  const uint32_t idx = alloc_data_entry(now, 0);
  data_[idx].key = 0;
  std::memcpy(data_[idx].repr.data(), regions_.host_ptr(line), kCachelineBytes);
  data_[idx].sharers.push_back(line);
  // alloc_data_entry may have evicted tags; re-find ours.
  TagEntry* t2 = find_tag(line);
  if (t2) t2->data_idx = idx;
  ++counters_.unshares;
}

bool DoppelgangerSystem::install(uint64_t now, uint64_t line, bool dirty) {
  // Tag allocation first (LRU within the 4x tag array set).
  TagEntry* base = &tags_[tag_set_of(line) * tag_ways_];
  TagEntry* victim = nullptr;
  for (uint32_t w = 0; w < tag_ways_; ++w) {
    if (!base[w].valid) {
      victim = &base[w];
      break;
    }
    if (!victim || base[w].lru < victim->lru) victim = &base[w];
  }
  if (victim->valid) detach_tag(now, *victim, /*write_back=*/true);

  bool deduped = false;
  uint32_t idx;
  if (regions_.is_approx(line)) {
    const uint64_t key = map_key(line);
    auto it = by_key_.find(key);
    if (it != by_key_.end() && data_[it->second].valid) {
      idx = it->second;
      // The line adopts the representative's values: this is the
      // approximation. Copy them into the backing store so the application
      // observes them on every future read.
      std::memcpy(regions_.host_ptr(line), data_[idx].repr.data(), kCachelineBytes);
      deduped = true;
      ++counters_.dedup_hits;
    } else {
      idx = alloc_data_entry(now, key);
      std::memcpy(data_[idx].repr.data(), regions_.host_ptr(line), kCachelineBytes);
    }
  } else {
    idx = alloc_data_entry(now, 0);
    std::memcpy(data_[idx].repr.data(), regions_.host_ptr(line), kCachelineBytes);
  }
  data_[idx].sharers.push_back(line);
  data_[idx].lru = ++lru_clock_;

  // alloc/evict may have recycled our victim slot; find a free way again.
  base = &tags_[tag_set_of(line) * tag_ways_];
  victim = nullptr;
  for (uint32_t w = 0; w < tag_ways_; ++w) {
    if (!base[w].valid) {
      victim = &base[w];
      break;
    }
    if (!victim || base[w].lru < victim->lru) victim = &base[w];
  }
  if (victim->valid) detach_tag(now, *victim, /*write_back=*/true);
  victim->valid = true;
  victim->dirty = dirty;
  victim->line = line;
  victim->data_idx = idx;
  victim->lru = ++lru_clock_;
  return deduped;
}

uint64_t DoppelgangerSystem::request(uint64_t now, uint64_t line, bool write) {
  line = line_addr(line);
  ++counters_.requests;
  last_was_miss_ = false;
  if (TagEntry* t = find_tag(line)) {
    t->lru = ++lru_clock_;
    data_[t->data_idx].lru = lru_clock_;
    if (write) {
      unshare_for_write(now, *t);
      if (TagEntry* t2 = find_tag(line)) t2->dirty = true;
    }
    ++counters_.hits;
    return cfg_.llc.latency;
  }
  last_was_miss_ = true;
  const uint64_t lat = dram_.read(now, line, kCachelineBytes);
  count_traffic(line, kCachelineBytes);
  install(now, line, write);
  return lat + cfg_.llc.latency;
}

void DoppelgangerSystem::writeback(uint64_t now, uint64_t line) {
  line = line_addr(line);
  if (TagEntry* t = find_tag(line)) {
    t->lru = ++lru_clock_;
    unshare_for_write(now, *t);
    if (TagEntry* t2 = find_tag(line)) t2->dirty = true;
    return;
  }
  install(now, line, /*dirty=*/true);
}

void DoppelgangerSystem::drain(uint64_t now) {
  for (TagEntry& t : tags_) {
    if (!t.valid || !t.dirty) continue;
    dram_.write(now, t.line, kCachelineBytes);
    count_traffic(t.line, kCachelineBytes);
    t.dirty = false;
  }
}

StatGroup DoppelgangerSystem::stats() const {
  StatGroup g("dganger_system");
  g.add_nonzero("requests", counters_.requests);
  g.add_nonzero("hits", counters_.hits);
  g.add_nonzero("dedup_hits", counters_.dedup_hits);
  g.add_nonzero("unshares", counters_.unshares);
  g.add_nonzero("data_evictions", counters_.data_evictions);
  g.add_nonzero("traffic_approx_bytes", counters_.traffic_approx_bytes);
  g.add_nonzero("traffic_other_bytes", counters_.traffic_other_bytes);
  return g;
}

double DoppelgangerSystem::dedup_factor() const {
  uint64_t tags = 0, entries = 0;
  for (const TagEntry& t : tags_) tags += t.valid;
  for (const DataEntry& d : data_) entries += d.valid;
  return entries ? static_cast<double>(tags) / static_cast<double>(entries) : 1.0;
}

}  // namespace avr
