#include "baselines/baseline_system.hh"

namespace avr {

uint64_t BaselineSystem::request(uint64_t now, uint64_t line, bool write) {
  line = line_addr(line);
  ++counters_.requests;
  last_was_miss_ = false;
  if (llc_.access(line, write)) return cfg_.llc.latency;

  last_was_miss_ = true;
  const uint64_t lat = dram_.read(now, line, kCachelineBytes);
  count_traffic(line, kCachelineBytes);
  const Eviction ev = llc_.fill(line, write);
  if (ev.valid && ev.dirty) {
    dram_.write(now, ev.addr, kCachelineBytes);
    count_traffic(ev.addr, kCachelineBytes);
  }
  return lat + cfg_.llc.latency;
}

void BaselineSystem::writeback(uint64_t now, uint64_t line) {
  line = line_addr(line);
  if (llc_.mark_dirty(line)) return;
  const Eviction ev = llc_.fill(line, /*dirty=*/true);
  if (ev.valid && ev.dirty) {
    dram_.write(now, ev.addr, kCachelineBytes);
    count_traffic(ev.addr, kCachelineBytes);
  }
}

StatGroup BaselineSystem::stats() const {
  StatGroup g("baseline_system");
  g.add_nonzero("requests", counters_.requests);
  g.add_nonzero("traffic_approx_bytes", counters_.traffic_approx_bytes);
  g.add_nonzero("traffic_other_bytes", counters_.traffic_other_bytes);
  return g;
}

void BaselineSystem::drain(uint64_t now) {
  for (const auto& [addr, dirty] : llc_.valid_lines())
    if (dirty) {
      dram_.write(now, addr, kCachelineBytes);
      count_traffic(addr, kCachelineBytes);
    }
}

}  // namespace avr
