// "Truncate" comparison design (Sec. 4.1): approximate values are compressed
// to half precision on the memory link by truncating 16 bits, as proposed in
// Jain'16 / Judd'16 / Sathish'12. Fixed 2:1 ratio on approximate lines:
// 32 B transferred per 64 B line; precision loss applied at writeback.
#pragma once

#include "baselines/baseline_system.hh"
#include "common/fp_bits.hh"

namespace avr {

class TruncateSystem final : public BaselineSystem {
 public:
  // Approximate lines become half precision whenever they are written back
  // to memory; data still in caches stays exact, exactly like the hardware.
  TruncateSystem(const SimConfig& cfg, RegionRegistry& regions)
      : BaselineSystem(cfg, regions) {}

  uint64_t request(uint64_t now, uint64_t line, bool write) override;
  void writeback(uint64_t now, uint64_t line) override;
  void drain(uint64_t now) override;

 private:
  uint32_t line_bytes(uint64_t line) const {
    return regions_.is_approx(line) ? kCachelineBytes / 2
                                    : static_cast<uint32_t>(kCachelineBytes);
  }
  /// Drop the low `truncate_bits` of every fp32 in the backing line.
  void truncate_line(uint64_t line);
};

}  // namespace avr
