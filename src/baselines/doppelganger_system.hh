// Doppelganger (San Miguel et al., MICRO'15), the paper's closest related
// design (Sec. 4.1): an LLC that deduplicates *similar* cachelines of
// approximate data. Configured as in the paper: identical data-array
// capacity to the other designs and a 4x larger tag array, so it can index
// up to 4x more cachelines than it stores.
//
// Lines are mapped by an approximate hash (quantized average + quantized
// range over the line's 16 floats, bucketed within the region's observed
// value span). Lines whose hashes collide share one stored representative;
// a read of a deduplicated line returns the representative's values, which
// is where Doppelganger's approximation error comes from — including the
// edge-case artefacts the paper observes on orbit/lbm/wrf where lines at
// the extremes of the span are treated as equal despite very different
// absolute values.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/config.hh"
#include "mem/llc_system.hh"
#include "runtime/region.hh"

namespace avr {

/// Plain-field counters for the Doppelganger request path: one request()
/// per LLC access, so no string-keyed maps here.
struct DoppelgangerCounters {
  uint64_t requests = 0;
  uint64_t hits = 0;
  uint64_t dedup_hits = 0;
  uint64_t unshares = 0;
  uint64_t data_evictions = 0;
  uint64_t traffic_approx_bytes = 0;
  uint64_t traffic_other_bytes = 0;
};

class DoppelgangerSystem final : public LlcSystem {
 public:
  DoppelgangerSystem(const SimConfig& cfg, RegionRegistry& regions);

  uint64_t request(uint64_t now, uint64_t line, bool write) override;
  void writeback(uint64_t now, uint64_t line) override;
  void drain(uint64_t now) override;
  bool last_was_miss() const override { return last_was_miss_; }

  StatGroup stats() const override;
  const DoppelgangerCounters& counters() const { return counters_; }
  Dram& dram() override { return dram_; }
  const Dram& dram() const override { return dram_; }

  /// Effective dedup factor: indexed lines / stored entries.
  double dedup_factor() const;

 private:
  struct TagEntry {
    bool valid = false;
    bool dirty = false;
    uint64_t line = 0;
    uint32_t data_idx = 0;
    uint64_t lru = 0;
  };
  struct DataEntry {
    bool valid = false;
    uint64_t key = 0;
    uint64_t lru = 0;
    std::array<std::byte, kCachelineBytes> repr{};  // representative contents
    std::vector<uint64_t> sharers;                  // line addresses
  };

  uint64_t tag_set_of(uint64_t line) const { return (line >> 6) & (tag_sets_ - 1); }
  TagEntry* find_tag(uint64_t line);
  /// Approximate map hash of the line's current backing contents.
  uint64_t map_key(uint64_t line);
  /// Insert `line` after a fill; returns true if it deduplicated.
  bool install(uint64_t now, uint64_t line, bool dirty);
  uint32_t alloc_data_entry(uint64_t now, uint64_t key);
  void evict_data_entry(uint64_t now, uint32_t idx);
  void detach_tag(uint64_t now, TagEntry& t, bool write_back);
  void count_traffic(uint64_t line, uint32_t bytes) {
    if (regions_.is_approx(line))
      counters_.traffic_approx_bytes += bytes;
    else
      counters_.traffic_other_bytes += bytes;
  }
  void unshare_for_write(uint64_t now, TagEntry& t);

  SimConfig cfg_;
  RegionRegistry& regions_;
  Dram dram_;
  std::vector<TagEntry> tags_;
  std::vector<DataEntry> data_;
  std::unordered_map<uint64_t, uint32_t> by_key_;
  std::vector<uint32_t> free_data_;
  uint32_t tag_sets_ = 0;
  uint32_t tag_ways_ = 0;
  uint64_t lru_clock_ = 0;
  uint64_t next_private_key_ = 1;  // keys for non-deduplicated entries
  // Per-region observed span for quantization.
  struct Span {
    float lo = 0, hi = 0;
    bool init = false;
  };
  std::unordered_map<uint64_t, Span> spans_;  // by region base
  DoppelgangerCounters counters_;
  bool last_was_miss_ = false;
};

}  // namespace avr
