// Baseline shared LLC: a conventional set-associative write-back cache in
// front of DRAM. All the Sec. 4 results are normalized to this design.
#pragma once

#include "cache/set_assoc_cache.hh"
#include "common/config.hh"
#include "mem/llc_system.hh"
#include "runtime/region.hh"

namespace avr {

/// Plain-field counters for the baseline (and Truncate) request path: one
/// request() per LLC access, so no string-keyed maps here.
struct BaselineCounters {
  uint64_t requests = 0;
  uint64_t traffic_approx_bytes = 0;
  uint64_t traffic_other_bytes = 0;
};

// Not `final` itself — TruncateSystem derives from it — but System's
// dispatch thunk still devirtualizes it with qualified calls: the thunk is
// only ever bound when the dynamic type is exactly BaselineSystem.
class BaselineSystem : public LlcSystem {
 public:
  BaselineSystem(const SimConfig& cfg, RegionRegistry& regions)
      : cfg_(cfg),
        regions_(regions),
        dram_(cfg.dram),
        llc_("baseline_llc", cfg.llc.size_bytes, cfg.llc.ways) {}

  uint64_t request(uint64_t now, uint64_t line, bool write) override;
  void writeback(uint64_t now, uint64_t line) override;
  void drain(uint64_t now) override;
  bool last_was_miss() const override { return last_was_miss_; }

  StatGroup stats() const override;
  const BaselineCounters& counters() const { return counters_; }
  Dram& dram() override { return dram_; }
  const Dram& dram() const override { return dram_; }

 protected:
  /// Traffic split for Fig. 11 (approx vs other bytes).
  void count_traffic(uint64_t line, uint32_t bytes) {
    if (regions_.is_approx(line))
      counters_.traffic_approx_bytes += bytes;
    else
      counters_.traffic_other_bytes += bytes;
  }

  SimConfig cfg_;
  RegionRegistry& regions_;
  Dram dram_;
  SetAssocCache llc_;
  BaselineCounters counters_;
  bool last_was_miss_ = false;
};

}  // namespace avr
