#include "baselines/truncate_system.hh"

#include <array>

namespace avr {

void TruncateSystem::truncate_line(uint64_t line) {
  line = line_addr(line);
  // Batch kernel over the line's 16 values (same SoA convention as the
  // compressor pipeline stages).
  std::array<float, kValuesPerLine> vals;
  for (uint64_t i = 0; i < kValuesPerLine; ++i)
    vals[i] = regions_.load<float>(line + i * sizeof(float));
  f32_truncate_low_bits_batch(vals, cfg_.truncate_bits);
  for (uint64_t i = 0; i < kValuesPerLine; ++i)
    regions_.store(line + i * sizeof(float), vals[i]);
}

uint64_t TruncateSystem::request(uint64_t now, uint64_t line, bool write) {
  line = line_addr(line);
  ++counters_.requests;
  last_was_miss_ = false;
  if (llc_.access(line, write)) return cfg_.llc.latency;

  last_was_miss_ = true;
  const uint32_t bytes = line_bytes(line);
  const uint64_t lat = dram_.read(now, line, bytes);
  count_traffic(line, bytes);
  const Eviction ev = llc_.fill(line, write);
  if (ev.valid && ev.dirty) {
    const uint32_t eb = line_bytes(ev.addr);
    if (regions_.is_approx(ev.addr)) truncate_line(ev.addr);
    dram_.write(now, ev.addr, eb);
    count_traffic(ev.addr, eb);
  }
  return lat + cfg_.llc.latency;
}

void TruncateSystem::writeback(uint64_t now, uint64_t line) {
  line = line_addr(line);
  if (llc_.mark_dirty(line)) return;
  const Eviction ev = llc_.fill(line, /*dirty=*/true);
  if (ev.valid && ev.dirty) {
    const uint32_t eb = line_bytes(ev.addr);
    if (regions_.is_approx(ev.addr)) truncate_line(ev.addr);
    dram_.write(now, ev.addr, eb);
    count_traffic(ev.addr, eb);
  }
}

void TruncateSystem::drain(uint64_t now) {
  for (const auto& [addr, dirty] : llc_.valid_lines())
    if (dirty) {
      const uint32_t eb = line_bytes(addr);
      if (regions_.is_approx(addr)) truncate_line(addr);
      dram_.write(now, addr, eb);
      count_traffic(addr, eb);
    }
}

}  // namespace avr
