// wrf — weather-forecast proxy (SPEC CPU2006 481.wrf character): a
// multi-field atmospheric stencil over geographically ordered data. Only the
// geo-ordered weather metrics (~15 % of the footprint) are approximable;
// the prognostic state is exact. Terrain-driven fields are rough, so
// compression is modest (3.4x, Table 4) and AVR's impact small — the
// paper's "low benefit, low overhead" case.
// Output: the forecast temperature field.
#include <cmath>

#include "common/prng.hh"
#include "workloads/workload.hh"
#include "workloads/workload_registry.hh"

namespace avr {
namespace {

class WrfWorkload final : public Workload {
 public:
  static constexpr uint32_t kNx = 448;
  static constexpr uint32_t kNy = 448;
  static constexpr uint32_t kSteps = 3;

  std::string name() const override { return "wrf"; }
  double paper_compression_ratio() const override { return 3.4; }
  uint64_t llc_bytes() const override { return 128 * 1024; }

  void run(System& sys) override {
    const uint64_t n = uint64_t{kNx} * kNy * sizeof(float);
    // Approximable geo metrics: surface temperature + humidity (2 of 7
    // fields ~ 15 % once scratch is counted, matching Table 2).
    temp_ = sys.alloc_region("wrf.temp", n, /*approx=*/true);
    humid_ = sys.alloc_region("wrf.humid", n, /*approx=*/true);
    // Exact prognostic/auxiliary state.
    press_ = sys.alloc_region("wrf.press", n, false);
    wind_u_ = sys.alloc_region("wrf.wind_u", n, false);
    wind_v_ = sys.alloc_region("wrf.wind_v", n, false);
    terrain_ = sys.alloc_region("wrf.terrain", n, false);
    scratch_ = sys.alloc_region("wrf.scratch", 5 * n, false);  // model working set

    init_fields(sys);

    for (uint32_t s = 0; s < kSteps; ++s) step(sys);
  }

  std::vector<double> output(const System& sys) const override {
    std::vector<double> out;
    out.reserve(uint64_t{kNx} * kNy);
    for (uint64_t i = 0; i < uint64_t{kNx} * kNy; ++i)
      out.push_back(sys.peek_f32(temp_, i * sizeof(float)));
    return out;
  }

 private:
  uint64_t at(uint32_t x, uint32_t y) const {
    return (uint64_t{y} * kNx + x) * sizeof(float);
  }

  /// Terrain: 2D value-noise fBm (rough). Temperature/humidity follow the
  /// terrain with lapse-rate structure, i.e. geographically ordered but with
  /// high-frequency content that limits downsampling.
  void init_fields(System& sys) {
    Xoshiro256 rng(1234);
    const uint32_t gs = 32;  // noise lattice
    std::vector<float> lattice[3];
    for (auto& l : lattice) {
      l.resize((gs + 1) * (gs + 1));
      for (auto& v : l) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    }
    auto noise = [&](const std::vector<float>& l, float fx, float fy) {
      // Periodic lattice: wrap coordinates so any octave frequency is valid.
      const uint32_t ix = static_cast<uint32_t>(fx), iy = static_cast<uint32_t>(fy);
      const float tx = fx - ix, ty = fy - iy;
      const uint32_t x0 = ix % gs, y0 = iy % gs;
      const float a = l[y0 * (gs + 1) + x0], b = l[y0 * (gs + 1) + x0 + 1];
      const float c = l[(y0 + 1) * (gs + 1) + x0], d = l[(y0 + 1) * (gs + 1) + x0 + 1];
      return (a * (1 - tx) + b * tx) * (1 - ty) + (c * (1 - tx) + d * tx) * ty;
    };
    for (uint32_t y = 0; y < kNy; ++y)
      for (uint32_t x = 0; x < kNx; ++x) {
        float h = 0, amp = 800.0f, freq = 4.0f;
        for (int oct = 0; oct < 3; ++oct) {
          h += amp * noise(lattice[oct], freq * x / kNx * (gs / 8.0f),
                           freq * y / kNy * (gs / 8.0f));
          amp *= 0.45f;
          freq *= 2.7f;
        }
        const float elev = std::max(0.0f, 500.0f + h);
        sys.store_f32(terrain_, at(x, y), elev);
        // Temperature in Celsius: 6.5 K/km lapse rate + synoptic gradient +
        // strong local roughness (surface heterogeneity). This value scale
        // is what limits wrf to the paper's modest 3.4x compression.
        const float t =
            18.0f - 0.0065f * elev + 4.0f * std::sin(0.013f * x) +
            0.8f * static_cast<float>(rng.uniform(-1.0, 1.0));
        sys.store_f32(temp_, at(x, y), t);
        sys.store_f32(humid_, at(x, y),
                      std::clamp(0.7f - elev / 4000.0f +
                                     0.04f * static_cast<float>(rng.uniform(-1.0, 1.0)),
                                 0.05f, 1.0f));
        sys.store_f32(press_, at(x, y), 1013.0f * std::exp(-elev / 8400.0f));
        sys.store_f32(wind_u_, at(x, y), 3.0f + 0.5f * std::sin(0.02f * y));
        sys.store_f32(wind_v_, at(x, y), 1.0f);
      }
  }

  void step(System& sys) {
    // Semi-Lagrangian-ish advection + diffusion of temperature/humidity by
    // the wind field, with pressure coupling; interior points only.
    for (uint32_t y = 1; y + 1 < kNy; ++y)
      for (uint32_t x = 1; x + 1 < kNx; ++x) {
        const float u = sys.load_f32(wind_u_, at(x, y));
        const float v = sys.load_f32(wind_v_, at(x, y));
        const float t = sys.load_f32(temp_, at(x, y));
        const float tl = sys.load_f32(temp_, at(x - 1, y));
        const float tr = sys.load_f32(temp_, at(x + 1, y));
        const float tu = sys.load_f32(temp_, at(x, y - 1));
        const float td = sys.load_f32(temp_, at(x, y + 1));
        const float h = sys.load_f32(humid_, at(x, y));
        const float p = sys.load_f32(press_, at(x, y));
        const float adv = -0.02f * (u * (tr - tl) + v * (td - tu));
        const float diff = 0.05f * (tl + tr + tu + td - 4 * t);
        const float latent = 0.3f * h * std::max(0.0f, t - 10.0f) * 0.01f;
        sys.ops(30);
        sys.store_f32(temp_, at(x, y), t + adv + diff + latent * (p / 1013.0f));
        sys.store_f32(humid_, at(x, y),
                      std::clamp(h - 0.002f * latent + 0.0005f * diff, 0.0f, 1.0f));
      }
  }

  RegionHandle temp_, humid_, press_, wind_u_, wind_v_, terrain_, scratch_;
};

}  // namespace

void link_wrf_workload() {
  static const bool registered = register_workload("wrf", [] {
    return std::unique_ptr<Workload>(new WrfWorkload());
  });
  (void)registered;
}

}  // namespace avr
