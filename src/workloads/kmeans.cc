// kmeans — 1D k-means clustering over a geographic elevation map (the paper
// uses the Swedish Topological Survey HDB 50+ tile; we synthesize fractal
// terrain with the same character: long-range trends plus rough local
// detail, which is why the paper sees only 2.3x compression here).
// Approximated data: the elevation samples. Output: the cluster centroids.
//
// Note (Sec. 4.3): kmeans is the one benchmark whose *work* depends on the
// approximation quality — degraded values change how many iterations
// convergence takes, which the paper calls out for AVR.
#include <cmath>

#include "common/prng.hh"
#include "workloads/workload.hh"
#include "workloads/workload_registry.hh"

namespace avr {
namespace {

class KmeansWorkload final : public Workload {
 public:
  static constexpr uint32_t kPoints = 96 * 1024;
  static constexpr uint32_t kK = 12;
  static constexpr uint32_t kMaxIters = 30;  // Lloyd iteration cap (sklearn-style)

  std::string name() const override { return "kmeans"; }
  double paper_compression_ratio() const override { return 2.3; }
  uint64_t llc_bytes() const override { return 64 * 1024; }

  void run(System& sys) override {
    data_ = sys.alloc_region("kmeans.elevation", kPoints * sizeof(float),
                             /*approx=*/true);
    cent_ = sys.alloc_region("kmeans.centroids", kK * sizeof(float),
                             /*approx=*/false);

    synthesize_terrain(sys);

    // Initial centroids spread over the elevation range.
    for (uint32_t k = 0; k < kK; ++k)
      sys.store_f32(cent_, k * sizeof(float),
                    100.0f + 900.0f * static_cast<float>(k) / (kK - 1));

    std::vector<double> sums(kK);
    std::vector<uint64_t> counts(kK);
    float prev_shift = 1e30f;
    for (uint32_t it = 0; it < kMaxIters; ++it) {
      std::fill(sums.begin(), sums.end(), 0.0);
      std::fill(counts.begin(), counts.end(), 0);
      // Assignment pass (streams the whole elevation array).
      for (uint32_t i = 0; i < kPoints; ++i) {
        const float v = sys.load_f32(data_, uint64_t{i} * sizeof(float));
        uint32_t best = 0;
        float best_d = 1e30f;
        for (uint32_t k = 0; k < kK; ++k) {
          const float c = sys.load_f32(cent_, k * sizeof(float));
          const float d = std::abs(v - c);
          if (d < best_d) {
            best_d = d;
            best = k;
          }
        }
        sys.ops(2 * kK);
        sums[best] += v;
        counts[best] += 1;
      }
      // Update pass.
      float shift = 0;
      for (uint32_t k = 0; k < kK; ++k) {
        if (counts[k] == 0) continue;
        const float nc = static_cast<float>(sums[k] / counts[k]);
        shift += std::abs(nc - sys.load_f32(cent_, k * sizeof(float)));
        sys.store_f32(cent_, k * sizeof(float), nc);
      }
      sys.ops(8 * kK);
      iterations_ = it + 1;
      // Converged when total centroid motion is well below the cluster
      // spacing (robust to approximation-level jitter in the data).
      if (shift < 2.0f && prev_shift < 2.0f) break;
      prev_shift = shift;
    }
  }

  std::vector<double> output(const System& sys) const override {
    std::vector<double> out;
    out.reserve(kK);
    for (uint32_t k = 0; k < kK; ++k)
      out.push_back(sys.peek_f32(cent_, k * sizeof(float)));
    return out;
  }

  uint32_t iterations() const { return iterations_; }

 private:
  /// Midpoint-displacement fractal terrain in [0, 1200] m: smooth at long
  /// range, rough locally (elevation data character).
  void synthesize_terrain(System& sys) {
    std::vector<float> h(kPoints);
    Xoshiro256 rng(42);
    h[0] = 400.0f;
    h[kPoints - 1] = 600.0f;
    struct Seg {
      uint32_t lo, hi;
      float amp;
    };
    std::vector<Seg> stack{{0, kPoints - 1, 350.0f}};
    while (!stack.empty()) {
      const Seg s = stack.back();
      stack.pop_back();
      if (s.hi - s.lo < 2) continue;
      const uint32_t mid = (s.lo + s.hi) / 2;
      h[mid] = 0.5f * (h[s.lo] + h[s.hi]) +
               s.amp * static_cast<float>(rng.uniform(-1.0, 1.0));
      stack.push_back({s.lo, mid, s.amp * 0.62f});
      stack.push_back({mid, s.hi, s.amp * 0.62f});
    }
    // Survey-grade elevation is bimodal: small measurement noise everywhere
    // plus frequent large spikes (tree canopy, buildings, ridges). The
    // spikes become AVR outliers, which is what limits the paper's kmeans
    // compression to 2.3x while the block-average error stays within T2.
    for (uint32_t i = 0; i < kPoints; ++i) {
      const float v = std::clamp(h[i], 0.0f, 1200.0f);
      float rough =
          0.012f * (v + 150.0f) * static_cast<float>(rng.uniform(-1.0, 1.0));
      if (rng.uniform() < 0.33)  // canopy/building spike -> outlier
        rough += 0.25f * (v + 150.0f) * static_cast<float>(rng.uniform(-1.0, 1.0));
      sys.store_f32(data_, uint64_t{i} * sizeof(float),
                    std::max(0.0f, v + rough));
    }
  }

  RegionHandle data_, cent_;
  uint32_t iterations_ = 0;
};

}  // namespace

void link_kmeans_workload() {
  static const bool registered = register_workload("kmeans", [] {
    return std::unique_ptr<Workload>(new KmeansWorkload());
  });
  (void)registered;
}

}  // namespace avr
