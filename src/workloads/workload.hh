// Benchmark applications (Table 2 of the paper).
//
// Each workload programs against the System runtime API: it allocates its
// data structures (annotating the approximable ones), performs every
// algorithmically relevant load/store through the instrumented accessors,
// and exposes its output values for the error metric ("mean of the relative
// errors for each output value", Sec. 4.1).
//
// Inputs are synthesized deterministically (see DESIGN.md for the
// substitutions of the paper's proprietary inputs); sizes are scaled down
// together with the cache hierarchy so the footprint-to-LLC ratios of
// Table 2 are preserved.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "runtime/system.hh"

namespace avr {

class Workload {
 public:
  virtual ~Workload() = default;
  virtual std::string name() const = 0;
  /// Allocate, initialize and execute. All value-relevant traffic goes
  /// through `sys`'s instrumented accessors.
  virtual void run(System& sys) = 0;
  /// Output values (functional read; call after run()).
  virtual std::vector<double> output(const System& sys) const = 0;
  /// Compression ratio the paper reports for this app (Table 4), for the
  /// experiment logs.
  virtual double paper_compression_ratio() const = 0;

  /// Private-cache scale divisor (default 16: L1 = 4 kB, L2 = 16 kB).
  virtual uint32_t cache_scale() const { return 16; }

  /// Per-application error threshold knob (Sec. 3.1: "the programmer may
  /// further indicate an upper error threshold"; thresholds are common for
  /// all approximations *in a program*). N = mantissa MSbit index:
  /// T1 = 1/2^N. Iterative solvers that round-trip their state many times
  /// (the LBM codes) ask for tighter thresholds than single-pass kernels.
  virtual uint32_t t1_msbit() const { return 4; }  // 6.25 %

  /// LLC capacity for this workload. The paper's 8 MB LLC is shared by
  /// 8 cores (~1 MB effective per core); each workload picks the LLC size
  /// that preserves its paper footprint-to-LLC-share ratio (Table 2), so
  /// capacity pressure — and therefore memory traffic — matches in shape.
  virtual uint64_t llc_bytes() const { return 64 * 1024; }

  /// Instrumented accesses a run will issue, when knowable up front (trace
  /// replay: the record stream IS the access count). 0 = unknown; the
  /// scheduler then falls back to the footprint heuristic. Simulation cost
  /// scales with this, not with footprint, for replayed workloads.
  virtual uint64_t access_estimate() const { return 0; }
};

/// Factory. Known names: heat, lattice, lbm, orbit, kmeans, bscholes, wrf —
/// plus "trace:<path>" for any trace file (see workloads/trace.hh). Throws
/// std::invalid_argument, with a diagnosable message, for unknown names and
/// for trace specs whose file is missing or fails validation: callers that
/// enumerate points (avr_sweep --list, startup parsing) surface bad points
/// before any simulation starts.
std::unique_ptr<Workload> make_workload(const std::string& name);
/// The seven built-in kernels, in the paper's order (trace points are
/// enumerated by the caller, not listed here).
std::vector<std::string> workload_names();

/// Mean relative error between two output vectors (the paper's quality
/// metric). Sizes must match.
double mean_relative_error(const std::vector<double>& approx,
                           const std::vector<double>& exact);

}  // namespace avr
