// orbit — the FLASH two-particle orbit problem: integrate two gravitating
// bodies and record their trajectory history. Roughly half the footprint
// (the position/velocity history, laid out SoA so each coordinate series is
// smooth) is approximable and compresses almost perfectly (16x, Table 4);
// the other half (analysis scratch) is exact.
// Output: sampled physical data (separation, energy, momentum over time).
//
// This is the benchmark where Doppelganger's span artefacts blow up
// (>100 % error): coordinate series swing across +/-R, and lines at the
// extremes of the span alias onto each other.
#include <cmath>

#include "workloads/workload.hh"
#include "workloads/workload_registry.hh"

namespace avr {
namespace {

class OrbitWorkload final : public Workload {
 public:
  static constexpr uint32_t kSteps = 192 * 1024;
  static constexpr uint32_t kSample = 64;  // output every kSample steps

  std::string name() const override { return "orbit"; }
  double paper_compression_ratio() const override { return 16.0; }
  uint64_t llc_bytes() const override { return 64 * 1024; }

  void run(System& sys) override {
    const uint64_t n = uint64_t{kSteps} * sizeof(float);
    // Trajectory history, one series per coordinate (SoA): approximable.
    for (int c = 0; c < 6; ++c)
      pos_[c] = sys.alloc_region("orbit.pos" + std::to_string(c), n, /*approx=*/true);
    for (int c = 0; c < 6; ++c)
      vel_[c] = sys.alloc_region("orbit.vel" + std::to_string(c), n, /*approx=*/true);
    // Analysis buffers: exact (program output).
    const uint64_t samples = kSteps / kSample;
    sep_ = sys.alloc_region("orbit.sep", samples * sizeof(float), false);
    energy_ = sys.alloc_region("orbit.energy", samples * sizeof(float), false);
    angmom_ = sys.alloc_region("orbit.angmom", samples * sizeof(float), false);

    // Leapfrog integration of a mildly eccentric orbit (G*m = 1).
    double p1[3] = {1.0, 0.0, 0.05}, p2[3] = {-1.0, 0.0, -0.05};
    double v1[3] = {0.0, 0.45, 0.0}, v2[3] = {0.0, -0.45, 0.0};
    for (uint32_t s = 0; s < kSteps; ++s) {
      integrate(p1, p2, v1, v2);
      sys.ops(60);
      for (int c = 0; c < 3; ++c) {
        sys.store_f32(pos_[c], s * 4ull, static_cast<float>(p1[c]));
        sys.store_f32(pos_[c + 3], s * 4ull, static_cast<float>(p2[c]));
        sys.store_f32(vel_[c], s * 4ull, static_cast<float>(v1[c]));
        sys.store_f32(vel_[c + 3], s * 4ull, static_cast<float>(v2[c]));
      }
    }

    // Analysis pass reads the recorded (possibly approximated) history.
    for (uint32_t s = 0; s < kSteps; s += kSample) {
      float q1[3], q2[3], w1[3], w2[3];
      for (int c = 0; c < 3; ++c) {
        q1[c] = sys.load_f32(pos_[c], s * 4ull);
        q2[c] = sys.load_f32(pos_[c + 3], s * 4ull);
        w1[c] = sys.load_f32(vel_[c], s * 4ull);
        w2[c] = sys.load_f32(vel_[c + 3], s * 4ull);
      }
      const float dx = q1[0] - q2[0], dy = q1[1] - q2[1], dz = q1[2] - q2[2];
      const float r = std::sqrt(dx * dx + dy * dy + dz * dz);
      const float ke = 0.5f * (dot(w1, w1) + dot(w2, w2));
      const float pe = r > 1e-6f ? -1.0f / r : 0.0f;
      const float lz = q1[0] * w1[1] - q1[1] * w1[0] + q2[0] * w2[1] - q2[1] * w2[0];
      sys.ops(40);
      const uint64_t i = s / kSample;
      sys.store_f32(sep_, i * 4ull, r);
      sys.store_f32(energy_, i * 4ull, ke + pe);
      sys.store_f32(angmom_, i * 4ull, lz);
    }
  }

  std::vector<double> output(const System& sys) const override {
    const uint64_t samples = kSteps / kSample;
    std::vector<double> out;
    out.reserve(samples * 3);
    for (uint64_t i = 0; i < samples; ++i) {
      out.push_back(sys.peek_f32(sep_, i * 4ull));
      out.push_back(sys.peek_f32(energy_, i * 4ull));
      out.push_back(sys.peek_f32(angmom_, i * 4ull));
    }
    return out;
  }

 private:
  static float dot(const float a[3], const float b[3]) {
    return a[0] * b[0] + a[1] * b[1] + a[2] * b[2];
  }
  static void integrate(double p1[3], double p2[3], double v1[3], double v2[3]) {
    constexpr double dt = 1e-3;
    double d[3] = {p2[0] - p1[0], p2[1] - p1[1], p2[2] - p1[2]};
    const double r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
    const double inv_r3 = 1.0 / (std::sqrt(r2) * r2);
    for (int c = 0; c < 3; ++c) {
      const double a = d[c] * inv_r3;  // G*m = 1 for both bodies
      v1[c] += a * dt;
      v2[c] -= a * dt;
    }
    for (int c = 0; c < 3; ++c) {
      p1[c] += v1[c] * dt;
      p2[c] += v2[c] * dt;
    }
  }

  RegionHandle pos_[6], vel_[6];
  RegionHandle sep_, energy_, angmom_;
};

}  // namespace

void link_orbit_workload() {
  static const bool registered = register_workload("orbit", [] {
    return std::unique_ptr<Workload>(new OrbitWorkload());
  });
  (void)registered;
}

}  // namespace avr
