// heat — 2D thermodynamics (Quinn, "Parallel Programming in C with MPI and
// OpenMP"): Jacobi iteration propagating heat across a grid from fixed
// sources. Approximated data: the temperature grids (ping-pong pair).
// Output: the final temperatures. Paper: 8.2 MB/core footprint, 10.5x
// compression — temperatures vary smoothly, ideal for downsampling.
#include <cmath>

#include "common/prng.hh"
#include "workloads/workload.hh"
#include "workloads/workload_registry.hh"

namespace avr {
namespace {

class HeatWorkload final : public Workload {
 public:
  static constexpr uint32_t kN = 256;    // grid side
  static constexpr uint32_t kIters = 40;

  std::string name() const override { return "heat"; }
  double paper_compression_ratio() const override { return 10.5; }
  uint64_t llc_bytes() const override { return 64 * 1024; }

  void run(System& sys) override {
    const uint64_t bytes = uint64_t{kN} * kN * sizeof(float);
    a_ = sys.alloc_region("heat.t0", bytes, /*approx=*/true);
    b_ = sys.alloc_region("heat.t1", bytes, /*approx=*/true);

    // Initial field: ambient temperature with a few hot sources along one
    // edge and a cold sink, all smooth after the first iterations.
    for (uint32_t r = 0; r < kN; ++r)
      for (uint32_t c = 0; c < kN; ++c) {
        float t = 20.0f;
        if (r == 0) t = 90.0f + 10.0f * std::sin(c * 0.05f);
        if (r == kN - 1) t = 5.0f;
        sys.store_f32(a_, at(r, c), t);
      }

    RegionHandle cur = a_, nxt = b_;
    for (uint32_t it = 0; it < kIters; ++it) {
      for (uint32_t r = 0; r < kN; ++r)
        for (uint32_t c = 0; c < kN; ++c) {
          if (r == 0 || r == kN - 1 || c == 0 || c == kN - 1) {
            sys.store_f32(nxt, at(r, c), sys.load_f32(cur, at(r, c)));
            continue;
          }
          const float up = sys.load_f32(cur, at(r - 1, c));
          const float dn = sys.load_f32(cur, at(r + 1, c));
          const float lf = sys.load_f32(cur, at(r, c - 1));
          const float rt = sys.load_f32(cur, at(r, c + 1));
          sys.store_f32(nxt, at(r, c), 0.25f * (up + dn + lf + rt));
        }
      std::swap(cur, nxt);
    }
    final_ = cur;
  }

  std::vector<double> output(const System& sys) const override {
    std::vector<double> out;
    out.reserve(uint64_t{kN} * kN);
    for (uint32_t r = 0; r < kN; ++r)
      for (uint32_t c = 0; c < kN; ++c)
        out.push_back(sys.peek_f32(final_, at(r, c)));
    return out;
  }

 private:
  uint64_t at(uint32_t r, uint32_t c) const {
    return (uint64_t{r} * kN + c) * sizeof(float);
  }
  RegionHandle a_, b_, final_;
};

}  // namespace

void link_heat_workload() {
  static const bool registered = register_workload("heat", [] {
    return std::unique_ptr<Workload>(new HeatWorkload());
  });
  (void)registered;
}

}  // namespace avr
