// bscholes — Black-Scholes option pricing (AxBench flavor). Predicts option
// prices from per-option parameters. The input data has fields that repeat
// across many entries (noted in Sec. 4.3 as what Doppelganger exploits).
// Approximated data: the input parameter arrays (~30 % of the footprint).
// Output: the option prices. Compute-bound: each option carries substantial
// arithmetic, so memory designs have limited impact (as in the paper).
#include <cmath>

#include "common/prng.hh"
#include "workloads/workload.hh"
#include "workloads/workload_registry.hh"

namespace avr {
namespace {

class BscholesWorkload final : public Workload {
 public:
  static constexpr uint32_t kOptions = 24 * 1024;
  static constexpr uint32_t kRounds = 4;  // re-priced per "trading day"

  std::string name() const override { return "bscholes"; }
  double paper_compression_ratio() const override { return 4.7; }
  uint64_t llc_bytes() const override { return 128 * 1024; }
  uint32_t t1_msbit() const override { return 6; }  // 1.56 %: price inputs

  void run(System& sys) override {
    const uint64_t n = kOptions * sizeof(float);
    // ~30 % of the footprint approximable: spot/strike/vol inputs.
    spot_ = sys.alloc_region("bs.spot", n, /*approx=*/true);
    strike_ = sys.alloc_region("bs.strike", n, /*approx=*/true);
    vol_ = sys.alloc_region("bs.vol", n, /*approx=*/true);
    rate_ = sys.alloc_region("bs.rate", n, /*approx=*/false);
    time_ = sys.alloc_region("bs.time", n, /*approx=*/false);
    price_ = sys.alloc_region("bs.price", n, /*approx=*/false);
    put_ = sys.alloc_region("bs.put", n, /*approx=*/false);

    // Inputs are laid out as option *chains*: consecutive entries belong to
    // the same underlying, so the spot field repeats for a whole chain, the
    // strikes form an ascending ladder and the implied-vol smile varies
    // smoothly across it — the repeated-field structure the paper notes in
    // the AxBench dataset (and what Doppelganger deduplicates).
    Xoshiro256 rng(7);
    constexpr uint32_t kChain = 128;  // options per underlying
    for (uint32_t u = 0; u < kOptions / kChain; ++u) {
      const float spot = 80.0f + 0.5f * static_cast<float>(rng.below(120));
      const float base_vol = 0.12f + 0.02f * static_cast<float>(rng.below(8));
      const float rate = 0.01f * static_cast<float>(1 + rng.below(5));
      const float tte = 0.25f * static_cast<float>(1 + rng.below(8));
      for (uint32_t j = 0; j < kChain; ++j) {
        const uint32_t i = u * kChain + j;
        const float moneyness = 0.5f + static_cast<float>(j) / kChain;  // 0.5..1.5
        const float strike = spot * moneyness;
        // Volatility smile: quadratic in log-moneyness.
        const float lm = std::log(moneyness);
        const float vol = base_vol + 0.25f * lm * lm;
        sys.store_f32(spot_, i * 4ull, spot);
        sys.store_f32(strike_, i * 4ull, strike);
        sys.store_f32(vol_, i * 4ull, vol);
        sys.store_f32(rate_, i * 4ull, rate);
        sys.store_f32(time_, i * 4ull, tte);
      }
    }

    for (uint32_t round = 0; round < kRounds; ++round) {
      for (uint32_t i = 0; i < kOptions; ++i) {
        const float s = sys.load_f32(spot_, i * 4ull);
        const float k = sys.load_f32(strike_, i * 4ull);
        const float v = sys.load_f32(vol_, i * 4ull);
        const float r = sys.load_f32(rate_, i * 4ull);
        const float t = sys.load_f32(time_, i * 4ull);
        const auto [call, put] = black_scholes(s, k, v, r, t);
        sys.ops(320);  // exp/log/sqrt/CNDF pipeline per option
        sys.store_f32(price_, i * 4ull, call);
        sys.store_f32(put_, i * 4ull, put);
      }
    }
  }

  std::vector<double> output(const System& sys) const override {
    std::vector<double> out;
    out.reserve(2ull * kOptions);
    for (uint32_t i = 0; i < kOptions; ++i) {
      out.push_back(sys.peek_f32(price_, i * 4ull));
      out.push_back(sys.peek_f32(put_, i * 4ull));
    }
    return out;
  }

 private:
  static float cndf(float x) {
    return 0.5f * std::erfc(-x * 0.70710678f);
  }
  static std::pair<float, float> black_scholes(float s, float k, float v, float r,
                                               float t) {
    const float sq = v * std::sqrt(t);
    const float d1 = (std::log(s / k) + (r + 0.5f * v * v) * t) / sq;
    const float d2 = d1 - sq;
    const float disc = std::exp(-r * t);
    const float call = s * cndf(d1) - k * disc * cndf(d2);
    const float put = k * disc * cndf(-d2) - s * cndf(-d1);
    return {call, put};
  }

  RegionHandle spot_, strike_, vol_, rate_, time_, price_, put_;
};

}  // namespace

void link_bscholes_workload() {
  static const bool registered = register_workload("bscholes", [] {
    return std::unique_ptr<Workload>(new BscholesWorkload());
  });
  (void)registered;
}

}  // namespace avr
