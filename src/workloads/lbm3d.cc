// lbm — 3D Lattice-Boltzmann (SPEC CPU2006 470.lbm character): fluid flow
// around a sphere, D3Q7 stencil scaled to simulator size. ~98 % of the
// footprint (the two distribution arrays) is approximable; the flow field is
// very smooth, giving the paper's highest compression (15.6x).
// Output: the velocity field.
#include <array>
#include <cmath>

#include "workloads/workload.hh"
#include "workloads/workload_registry.hh"

namespace avr {
namespace {

class Lbm3dWorkload final : public Workload {
 public:
  static constexpr uint32_t kN = 40;  // cubic grid side
  static constexpr uint32_t kQ = 7;   // D3Q7
  static constexpr uint32_t kIters = 8;

  std::string name() const override { return "lbm"; }
  double paper_compression_ratio() const override { return 15.6; }
  uint64_t llc_bytes() const override { return 64 * 1024; }
  uint32_t t1_msbit() const override { return 7; }  // 0.78 %: iterative state

  void run(System& sys) override {
    const uint64_t cells = uint64_t{kN} * kN * kN;
    const uint64_t dist_bytes = cells * kQ * sizeof(float);
    f_ = sys.alloc_region("lbm.f", dist_bytes, /*approx=*/true);
    g_ = sys.alloc_region("lbm.g", dist_bytes, /*approx=*/true);
    out_ = sys.alloc_region("lbm.vel", cells * 3 * sizeof(float), /*approx=*/false);

    // Sphere obstacle in the middle of the duct.
    obstacle_.assign(cells, 0);
    const float cx = kN / 2.0f, cy = kN / 2.0f, cz = kN / 2.0f, r = kN / 6.0f;
    for (uint32_t z = 0; z < kN; ++z)
      for (uint32_t y = 0; y < kN; ++y)
        for (uint32_t x = 0; x < kN; ++x) {
          const float dx = x - cx, dy = y - cy, dz = z - cz;
          if (dx * dx + dy * dy + dz * dz < r * r)
            obstacle_[cell(x, y, z)] = 1;
        }

    for (uint64_t c = 0; c < cells; ++c)
      for (uint32_t q = 0; q < kQ; ++q)
        sys.store_f32(f_, (q * cells + c) * sizeof(float),
                      feq(q, 1.0f, kInflow, 0.0f, 0.0f));

    RegionHandle cur = f_, nxt = g_;
    for (uint32_t it = 0; it < kIters; ++it) {
      step(sys, cur, nxt, cells);
      std::swap(cur, nxt);
    }

    for (uint64_t c = 0; c < cells; ++c) {
      float rho = 0, mx = 0, my = 0, mz = 0;
      for (uint32_t q = 0; q < kQ; ++q) {
        const float fv = sys.load_f32(cur, (q * cells + c) * sizeof(float));
        rho += fv;
        mx += fv * kCx[q];
        my += fv * kCy[q];
        mz += fv * kCz[q];
      }
      sys.ops(10);
      const float inv = rho > 1e-6f ? 1.0f / rho : 0.0f;
      sys.store_f32(out_, (c * 3 + 0) * sizeof(float), mx * inv);
      sys.store_f32(out_, (c * 3 + 1) * sizeof(float), my * inv);
      sys.store_f32(out_, (c * 3 + 2) * sizeof(float), mz * inv);
    }
  }

  std::vector<double> output(const System& sys) const override {
    // Output metric: per-cell velocity magnitude (the "velocities" output of
    // Table 2). Components near zero would make a per-value relative metric
    // meaningless; magnitude is the physically reported quantity.
    const uint64_t cells = uint64_t{kN} * kN * kN;
    std::vector<double> out;
    out.reserve(cells);
    for (uint64_t c = 0; c < cells; ++c) {
      const double vx = sys.peek_f32(out_, (c * 3 + 0) * sizeof(float));
      const double vy = sys.peek_f32(out_, (c * 3 + 1) * sizeof(float));
      const double vz = sys.peek_f32(out_, (c * 3 + 2) * sizeof(float));
      out.push_back(std::sqrt(vx * vx + vy * vy + vz * vz));
    }
    return out;
  }

 private:
  static constexpr float kInflow = 0.05f;
  static constexpr std::array<int, kQ> kCx = {0, 1, -1, 0, 0, 0, 0};
  static constexpr std::array<int, kQ> kCy = {0, 0, 0, 1, -1, 0, 0};
  static constexpr std::array<int, kQ> kCz = {0, 0, 0, 0, 0, 1, -1};
  static constexpr std::array<uint32_t, kQ> kOpp = {0, 2, 1, 4, 3, 6, 5};
  static constexpr float kW0 = 1.0f / 4.0f, kWi = 1.0f / 8.0f;
  static constexpr float kOmega = 1.0f;

  static uint64_t cell(uint32_t x, uint32_t y, uint32_t z) {
    return (uint64_t{z} * kN + y) * kN + x;
  }
  static float feq(uint32_t q, float rho, float ux, float uy, float uz) {
    const float w = q == 0 ? kW0 : kWi;
    const float cu = 4.0f * (kCx[q] * ux + kCy[q] * uy + kCz[q] * uz);
    const float usq = 2.0f * (ux * ux + uy * uy + uz * uz);
    return w * rho * (1.0f + cu + 0.5f * cu * cu - usq);
  }

  void step(System& sys, const RegionHandle& cur, const RegionHandle& nxt,
            uint64_t cells) {
    for (uint32_t z = 0; z < kN; ++z)
      for (uint32_t y = 0; y < kN; ++y)
        for (uint32_t x = 0; x < kN; ++x) {
          const uint64_t c = cell(x, y, z);
          if (obstacle_[c]) {
            for (uint32_t q = 0; q < kQ; ++q)
              sys.store_f32(nxt, (q * cells + c) * sizeof(float),
                            sys.load_f32(cur, (kOpp[q] * cells + c) * sizeof(float)));
            continue;
          }
          float rho = 0, mx = 0, my = 0, mz = 0;
          std::array<float, kQ> fv;
          for (uint32_t q = 0; q < kQ; ++q) {
            fv[q] = sys.load_f32(cur, (q * cells + c) * sizeof(float));
            rho += fv[q];
            mx += fv[q] * kCx[q];
            my += fv[q] * kCy[q];
            mz += fv[q] * kCz[q];
          }
          float ux = rho > 1e-6f ? mx / rho : 0, uy = rho > 1e-6f ? my / rho : 0,
                uz = rho > 1e-6f ? mz / rho : 0;
          if (x == 0) {
            ux = kInflow;
            uy = uz = 0;
            rho = 1.0f;
          }
          sys.ops(24);
          for (uint32_t q = 0; q < kQ; ++q) {
            const float post = fv[q] + kOmega * (feq(q, rho, ux, uy, uz) - fv[q]);
            const uint32_t xx = (x + kN + kCx[q]) % kN;
            const uint32_t yy = (y + kN + kCy[q]) % kN;
            const uint32_t zz = (z + kN + kCz[q]) % kN;
            sys.store_f32(nxt, (q * cells + cell(xx, yy, zz)) * sizeof(float), post);
          }
        }
  }

  RegionHandle f_, g_, out_;
  std::vector<uint8_t> obstacle_;
};

}  // namespace

void link_lbm_workload() {
  static const bool registered = register_workload("lbm", [] {
    return std::unique_ptr<Workload>(new Lbm3dWorkload());
  });
  (void)registered;
}

}  // namespace avr
