// Trace-replay workload. Unlike the kernels, the "program" here is data
// read from disk: construction validates it in full (tolerant reader +
// validate_trace), so by the time run() executes, every record is known to
// be in bounds and replay needs no per-access checks beyond the Debug
// asserts every workload gets.
#include "workloads/trace.hh"

#include <stdexcept>
#include <utility>
#include <vector>

#include "runtime/system.hh"
#include "trace/trace_replay.hh"
#include "workloads/workload_registry.hh"

namespace avr {
namespace {

class TraceWorkload final : public Workload {
 public:
  TraceWorkload(std::string name, trace::Trace t)
      : name_(std::move(name)), trace_(std::move(t)) {}

  std::string name() const override { return name_; }
  /// Not one of the paper's Table 2 applications: no reference ratio.
  double paper_compression_ratio() const override { return 0.0; }
  uint64_t access_estimate() const override { return trace_.access_count(); }

  void run(System& sys) override {
    handles_.clear();
    handles_.reserve(trace_.regions.size());
    for (size_t i = 0; i < trace_.regions.size(); ++i) {
      const trace::TraceRegion& r = trace_.regions[i];
      handles_.push_back(sys.alloc_region(r.name, r.bytes, r.approx));
      // Recorded contents act like pre-existing memory: poked (functional
      // only), so the replayed stream is exactly the recorded one.
      trace::init_region(sys, handles_.back(), 0x517EC0DE + i);
    }
    cursor_ = trace::ReplayCursor(trace_.regions.size());
    trace::replay(sys, trace_, handles_, cursor_);
  }

  std::vector<double> output(const System& sys) const override {
    // Two checksum-style values per region: what the replayed loads
    // observed (value degradation seen by the "program") and what the
    // region holds afterwards (degradation persisted by stores/evictions),
    // one sample per cacheline.
    std::vector<double> out;
    out.reserve(2 * handles_.size());
    for (double s : cursor_.load_sum) out.push_back(s);
    for (const RegionHandle& h : handles_) {
      double sum = 0;
      for (uint64_t off = 0; off + 4 <= h.bytes; off += kCachelineBytes)
        sum += sys.peek_f32(h, off);
      out.push_back(sum);
    }
    return out;
  }

 private:
  std::string name_;
  trace::Trace trace_;
  std::vector<RegionHandle> handles_;
  trace::ReplayCursor cursor_{0};
};

constexpr const char* kTracePrefix = "trace:";

}  // namespace

bool is_trace_workload_name(const std::string& name) {
  return name.rfind(kTracePrefix, 0) == 0;
}

std::unique_ptr<Workload> make_trace_workload(std::string name, trace::Trace t) {
  std::string err;
  if (!trace::validate_trace(t, &err))
    throw std::invalid_argument("trace workload '" + name + "': " + err);
  return std::make_unique<TraceWorkload>(std::move(name), std::move(t));
}

std::unique_ptr<Workload> make_trace_workload_from_spec(const std::string& name) {
  const std::string path = name.substr(std::string(kTracePrefix).size());
  if (path.empty())
    throw std::invalid_argument(
        "trace workload needs a file: trace:<path/to/file.trace>");
  // The name is the result-cache key, and cache records are comma-separated
  // single lines.
  if (path.find(',') != std::string::npos ||
      path.find('\n') != std::string::npos)
    throw std::invalid_argument("trace workload '" + name +
                                "': path may not contain ',' or newlines");
  trace::Trace t;
  std::string err;
  if (!trace::read_trace_file(path, &t, &err))
    throw std::invalid_argument("trace workload '" + name + "': " + err);
  return make_trace_workload(name, std::move(t));
}

}  // namespace avr
