// The `trace:<path>` workload: replays a recorded access stream (binary
// trace format v1, src/trace/trace_format.hh) through the RegionHandle
// runtime API, so every trace file is a first-class sweep point —
// shardable, cacheable, `--check`- and `--assert-same`-able like the seven
// hand-written kernels.
#pragma once

#include <memory>
#include <string>

#include "trace/trace_format.hh"
#include "workloads/workload.hh"

namespace avr {

/// Workload over an in-memory trace (benches and tests); `name` becomes the
/// sweep-point key. Throws std::invalid_argument if `t` fails
/// trace::validate_trace.
std::unique_ptr<Workload> make_trace_workload(std::string name, trace::Trace t);

/// Workload for the sweep-point name "trace:<path>": loads and fully
/// validates the file EAGERLY, so a missing/corrupt trace fails here — at
/// make_workload time, i.e. at `avr_sweep --list`/startup — with a
/// diagnosable std::invalid_argument, never mid-sweep at replay time.
std::unique_ptr<Workload> make_trace_workload_from_spec(const std::string& name);

/// True iff `name` is a trace sweep-point spec ("trace:<path>").
bool is_trace_workload_name(const std::string& name);

}  // namespace avr
