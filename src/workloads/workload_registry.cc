#include "workloads/workload_registry.hh"

#include <cmath>
#include <map>
#include <stdexcept>

#include "workloads/trace.hh"

namespace avr {

// Defined one per workload translation unit. Explicit hooks (rather than
// static-initializer self-registration) so that linking the static library
// cannot silently drop workloads.
void link_heat_workload();
void link_lattice_workload();
void link_lbm_workload();
void link_orbit_workload();
void link_kmeans_workload();
void link_bscholes_workload();
void link_wrf_workload();

namespace {

std::map<std::string, WorkloadFactory>& registry() {
  static std::map<std::string, WorkloadFactory> r;
  return r;
}

void link_all() {
  static const bool once = [] {
    link_heat_workload();
    link_lattice_workload();
    link_lbm_workload();
    link_orbit_workload();
    link_kmeans_workload();
    link_bscholes_workload();
    link_wrf_workload();
    return true;
  }();
  (void)once;
}

}  // namespace

bool register_workload(const std::string& name, WorkloadFactory factory) {
  // A duplicate registration would silently shadow an existing workload —
  // the registry's one silent-success path; refuse it loudly instead.
  auto [it, inserted] = registry().emplace(name, std::move(factory));
  if (!inserted)
    throw std::logic_error("workload '" + name + "' registered twice");
  return true;
}

std::unique_ptr<Workload> make_workload(const std::string& name) {
  // "trace:<path>" dispatches to the trace frontend, which validates the
  // file eagerly — a bad path/file throws HERE, not at replay time.
  if (is_trace_workload_name(name)) return make_trace_workload_from_spec(name);
  link_all();
  auto it = registry().find(name);
  if (it == registry().end()) {
    std::string known;
    for (const auto& n : workload_names()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    throw std::invalid_argument("unknown workload: " + name + " (known: " +
                                known + ", or trace:<path>)");
  }
  return it->second();
}

std::vector<std::string> workload_names() {
  // Paper order (Table 2).
  return {"heat", "lattice", "lbm", "orbit", "kmeans", "bscholes", "wrf"};
}

double mean_relative_error(const std::vector<double>& approx,
                           const std::vector<double>& exact) {
  if (approx.size() != exact.size() || exact.empty())
    throw std::invalid_argument("output size mismatch");
  // Robust denominator: a value whose exact magnitude is far below the
  // output's overall scale (e.g. the ~0 velocity inside an obstacle) is
  // scored against that scale, not against its own near-zero magnitude —
  // otherwise a 1e-9 absolute deviation would read as >100 % error.
  double scale = 0;
  for (double v : exact) scale += std::abs(v);
  scale /= static_cast<double>(exact.size());
  const double floor_denom = std::max(0.05 * scale, 1e-30);
  double sum = 0;
  for (size_t i = 0; i < exact.size(); ++i) {
    const double a = approx[i];
    const double e = exact[i];
    if (!std::isfinite(a) || !std::isfinite(e)) {
      sum += (std::isfinite(a) == std::isfinite(e)) ? 0.0 : 1.0;
      continue;
    }
    sum += std::abs(a - e) / std::max(std::abs(e), floor_denom);
  }
  return sum / static_cast<double>(exact.size());
}

}  // namespace avr
