// Self-registration of workloads: each translation unit registers a factory
// at static-init time, so make_workload() needs no central include list.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "workloads/workload.hh"

namespace avr {

using WorkloadFactory = std::function<std::unique_ptr<Workload>()>;

/// Registers `factory` under `name`; returns true (for static-init idiom).
/// Throws std::logic_error if `name` is already registered — a duplicate
/// would otherwise silently shadow the earlier workload.
bool register_workload(const std::string& name, WorkloadFactory factory);

}  // namespace avr
