// lattice — 2D Lattice-Boltzmann (D2Q9, Ansumali et al. entropic-kinetic
// flavor simplified to BGK): air flow over a solid object. The paper uses a
// car silhouette as the obstacle; we synthesize an equivalent silhouette
// mask (a blocky car profile). Approximated data: the two distribution
// arrays (P and M in Table 2). Output: velocities and pressure (density).
// Paper: 5 MB/core, 9.6x compression.
#include <array>
#include <cmath>

#include "workloads/workload.hh"
#include "workloads/workload_registry.hh"

namespace avr {
namespace {

class LatticeWorkload final : public Workload {
 public:
  static constexpr uint32_t kNx = 96;
  static constexpr uint32_t kNy = 64;
  static constexpr uint32_t kQ = 9;
  static constexpr uint32_t kIters = 24;

  std::string name() const override { return "lattice"; }
  double paper_compression_ratio() const override { return 9.6; }
  uint64_t llc_bytes() const override { return 128 * 1024; }
  uint32_t t1_msbit() const override { return 7; }  // 0.78 %: iterative state

  void run(System& sys) override {
    const uint64_t dist_bytes = uint64_t{kNx} * kNy * kQ * sizeof(float);
    f_ = sys.alloc_region("lattice.P", dist_bytes, /*approx=*/true);
    g_ = sys.alloc_region("lattice.M", dist_bytes, /*approx=*/true);
    // Macroscopic output buffers are exact (they are the program output).
    rho_ = sys.alloc_region("lattice.rho", uint64_t{kNx} * kNy * sizeof(float), false);
    ux_ = sys.alloc_region("lattice.ux", uint64_t{kNx} * kNy * sizeof(float), false);
    uy_ = sys.alloc_region("lattice.uy", uint64_t{kNx} * kNy * sizeof(float), false);

    build_obstacle();

    // Equilibrium initialization with a uniform inflow velocity.
    for (uint32_t y = 0; y < kNy; ++y)
      for (uint32_t x = 0; x < kNx; ++x)
        for (uint32_t q = 0; q < kQ; ++q)
          sys.store_f32(f_, at(x, y, q), feq(q, 1.0f, kInflow, 0.0f));

    RegionHandle cur = f_, nxt = g_;
    for (uint32_t it = 0; it < kIters; ++it) {
      step(sys, cur, nxt);
      std::swap(cur, nxt);
    }

    // Final macroscopic fields = program output.
    for (uint32_t y = 0; y < kNy; ++y)
      for (uint32_t x = 0; x < kNx; ++x) {
        float rho = 0, mx = 0, my = 0;
        for (uint32_t q = 0; q < kQ; ++q) {
          const float fv = sys.load_f32(cur, at(x, y, q));
          rho += fv;
          mx += fv * kCx[q];
          my += fv * kCy[q];
        }
        sys.ops(8);
        const uint64_t idx = (uint64_t{y} * kNx + x) * sizeof(float);
        sys.store_f32(rho_, idx, rho);
        sys.store_f32(ux_, idx, rho > 1e-6f ? mx / rho : 0.0f);
        sys.store_f32(uy_, idx, rho > 1e-6f ? my / rho : 0.0f);
      }
  }

  std::vector<double> output(const System& sys) const override {
    // Output: pressure (density) and velocity magnitude per cell ("Vel.+Pr."
    // in Table 2); magnitude avoids the near-zero-component metric artifact.
    std::vector<double> out;
    out.reserve(2ull * kNx * kNy);
    for (uint64_t i = 0; i < uint64_t{kNx} * kNy; ++i) {
      out.push_back(sys.peek_f32(rho_, i * sizeof(float)));
      const double vx = sys.peek_f32(ux_, i * sizeof(float));
      const double vy = sys.peek_f32(uy_, i * sizeof(float));
      out.push_back(std::sqrt(vx * vx + vy * vy));
    }
    return out;
  }

 private:
  static constexpr float kInflow = 0.08f;
  static constexpr std::array<int, kQ> kCx = {0, 1, 0, -1, 0, 1, -1, -1, 1};
  static constexpr std::array<int, kQ> kCy = {0, 0, 1, 0, -1, 1, 1, -1, -1};
  static constexpr std::array<float, kQ> kW = {4.f / 9,  1.f / 9,  1.f / 9,
                                               1.f / 9,  1.f / 9,  1.f / 36,
                                               1.f / 36, 1.f / 36, 1.f / 36};
  static constexpr std::array<uint32_t, kQ> kOpp = {0, 3, 4, 1, 2, 7, 8, 5, 6};
  static constexpr float kOmega = 1.0f;  // BGK relaxation (stable)

  uint64_t at(uint32_t x, uint32_t y, uint32_t q) const {
    return ((uint64_t{q} * kNy + y) * kNx + x) * sizeof(float);
  }

  static float feq(uint32_t q, float rho, float ux, float uy) {
    const float cu = 3.0f * (kCx[q] * ux + kCy[q] * uy);
    const float usq = 1.5f * (ux * ux + uy * uy);
    return kW[q] * rho * (1.0f + cu + 0.5f * cu * cu - usq);
  }

  /// Blocky "car silhouette": cabin + hood + wheels, mirroring the paper's
  /// input of a car profile.
  void build_obstacle() {
    obstacle_.assign(uint64_t{kNx} * kNy, 0);
    auto solid = [&](uint32_t x0, uint32_t x1, uint32_t y0, uint32_t y1) {
      for (uint32_t y = y0; y < y1 && y < kNy; ++y)
        for (uint32_t x = x0; x < x1 && x < kNx; ++x)
          obstacle_[uint64_t{y} * kNx + x] = 1;
    };
    solid(30, 62, 10, 18);  // body
    solid(38, 54, 18, 25);  // cabin
    solid(32, 37, 6, 10);   // front wheel
    solid(55, 60, 6, 10);   // rear wheel
  }
  bool is_solid(uint32_t x, uint32_t y) const {
    return obstacle_[uint64_t{y} * kNx + x] != 0;
  }

  void step(System& sys, const RegionHandle& cur, const RegionHandle& nxt) {
    for (uint32_t y = 0; y < kNy; ++y)
      for (uint32_t x = 0; x < kNx; ++x) {
        if (is_solid(x, y)) {
          // Bounce-back: reflect distributions in place.
          for (uint32_t q = 0; q < kQ; ++q)
            sys.store_f32(nxt, at(x, y, q), sys.load_f32(cur, at(x, y, kOpp[q])));
          continue;
        }
        // Collide.
        float rho = 0, mx = 0, my = 0;
        std::array<float, kQ> fv;
        for (uint32_t q = 0; q < kQ; ++q) {
          fv[q] = sys.load_f32(cur, at(x, y, q));
          rho += fv[q];
          mx += fv[q] * kCx[q];
          my += fv[q] * kCy[q];
        }
        float ux = rho > 1e-6f ? mx / rho : 0.0f;
        float uy = rho > 1e-6f ? my / rho : 0.0f;
        if (x == 0) {  // inflow boundary drives the flow
          ux = kInflow;
          uy = 0.0f;
          rho = 1.0f;
        }
        sys.ops(20);
        // Stream into the neighbour cells (periodic wrap).
        for (uint32_t q = 0; q < kQ; ++q) {
          const float post = fv[q] + kOmega * (feq(q, rho, ux, uy) - fv[q]);
          const uint32_t xx = (x + kNx + kCx[q]) % kNx;
          const uint32_t yy = (y + kNy + kCy[q]) % kNy;
          sys.store_f32(nxt, at(xx, yy, q), post);
        }
      }
  }

  RegionHandle f_, g_, rho_, ux_, uy_;
  std::vector<uint8_t> obstacle_;
};

}  // namespace

void link_lattice_workload() {
  static const bool registered = register_workload("lattice", [] {
    return std::unique_ptr<Workload>(new LatticeWorkload());
  });
  (void)registered;
}

}  // namespace avr
