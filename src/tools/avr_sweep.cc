// avr_sweep: shardable command-line driver for the paper's (workload x
// design) sweep. Each invocation owns a slice of the grid — a fixed
// round-robin `--shard i/N` slice, or (preferred) whatever it wins under
// `--claim` work stealing — and appends its results to a writer-safe CSV
// cache, so a full reproduction splits across processes (or CI jobs) and
// the caches merge by concatenation. Every run also emits a per-phase
// profile sidecar (docs/OPERATIONS.md documents both the claim protocol
// and the profile schema).
//
//   avr_sweep --claim --cache sweep.csv &          three cooperating
//   avr_sweep --claim --cache sweep.csv &          workers splitting the
//   avr_sweep --claim --cache sweep.csv            grid by work stealing
//   avr_sweep --shard 1/3 --cache shard1.csv       static slice 1 of 3
//   avr_sweep --check --cache merged.csv           assert full-grid coverage
//   avr_sweep --assert-same other.csv --cache a.csv   compare two caches
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <exception>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/profile.hh"
#include "common/simd.hh"
#include "harness/experiment.hh"
#include "harness/fsck.hh"
#include "harness/result_cache.hh"
#include "harness/sweep.hh"

namespace {

constexpr const char* kUsage = R"(usage: avr_sweep [options]

Runs (a shard of) the full (workload x design) sweep and appends results to
the shared CSV cache. Exits nonzero if any point fails.

  --claim            work-stealing mode: claim points one at a time through
                     the shared cache file until the whole grid has results;
                     any number of concurrent --claim processes cooperate
                     (mutually exclusive with --shard; requires a cache)
  --claim-lease s    fixed claim lease in seconds (default 0 = adaptive:
                     max(30, 20 x estimated point cost))
  --owner name       claim-owner token, unique per process, comma-free
                     (default <hostname>-<pid>)
  --shard i/N        static mode: run grid points with canonical index == i
                     (mod N) (default 0/1: the whole grid)
  --jobs n           thread-pool size (default 0 = hardware concurrency)
  --workloads a,b    comma-separated workload subset (default: all seven)
  --designs x,y      comma-separated design subset, names as printed in the
                     tables: baseline,dganger,truncate,ZeroAVR,AVR
                     (default: all five)
  --t1 N[,N...]      config axis: sweep with the T1 error threshold forced
                     to mantissa-MSbit index N for every workload (records
                     carry each variant's config fingerprint, so variants
                     coexist in one cache file). Default: the per-workload
                     paper thresholds only.
  --methods m[,m...] config axis: sweep method selections, each a '+'-joined
                     set of 1d, 2d, bdi or the alias avr (= 1d+2d): e.g.
                     "avr,avr+bdi" compares the paper's lossy pair against
                     the BDI-hybrid fallback. Like --t1, each selection is a
                     config-fingerprint variant in the shared cache.
                     Default: the default method set (1d+2d, BDI off).
  --cache path       result cache file (default: avr_results_cache.csv or
                     $AVR_RESULT_CACHE); "" disables persistence
  --profile          print the per-phase profile summary table on exit
  --profile-out p    profile sidecar JSON path (default
                     <cache>.<owner>.profile.json; "" disables the sidecar)
  --list             print this shard's points and exit (runs nothing)
  --check            verify the cache already covers this shard's points and
                     audit its claim records; exit 1 listing any missing
                     point (runs nothing)
  --assert-same p    verify the cache and cache file `p` contain the same
                     point set with identical metric values (wall-clock
                     timing excluded); exit 1 on any difference (runs nothing)
  --fsck             audit every line of the cache file — checksum failures,
                     torn appends, duplicate/conflicting results, stale and
                     dangling claims, legacy record versions — and print the
                     accounting; exit 1 if the cache needs attention (runs
                     nothing)
  --repair           with --fsck: rewrite the cache as a clean current-version
                     file (atomically, under the cache flock), keeping the
                     last valid result per point and any live dangling claims;
                     exits by the post-repair audit
  --quiet            suppress per-point progress lines
  --help             this text
)";

struct Options {
  avr::sweep::Shard shard;
  bool shard_set = false;
  bool claim = false;
  uint64_t claim_lease = 0;
  std::string owner = avr::prof::default_owner();
  unsigned jobs = 0;
  std::vector<std::string> workloads;
  std::vector<avr::Design> designs;
  std::vector<int> t1_values{-1};
  std::vector<int> methods_values{avr::sweep::kMethodsDefault};
  std::string cache_path = avr::ExperimentRunner::default_cache_path();
  std::string assert_same_path;
  std::string profile_out;
  bool profile_out_set = false;
  bool profile = false;
  bool list = false;
  bool check = false;
  bool assert_same = false;
  bool fsck = false;
  bool repair = false;
  bool quiet = false;
};

Options parse_args(int argc, char** argv) {
  Options o;
  o.workloads = avr::workload_names();
  o.designs = avr::ExperimentRunner::paper_designs();
  auto value = [&](int& i, const char* flag) -> std::string {
    if (i + 1 >= argc)
      throw std::invalid_argument(std::string(flag) + " needs a value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--shard") {
      o.shard = avr::sweep::parse_shard(value(i, "--shard"));
      o.shard_set = true;
    } else if (a == "--claim") {
      o.claim = true;
    } else if (a == "--claim-lease") {
      const std::string v = value(i, "--claim-lease");
      size_t pos = 0;
      const long lease = std::stol(v, &pos);
      if (pos != v.size() || lease <= 0)
        throw std::invalid_argument("bad --claim-lease value: " + v);
      o.claim_lease = static_cast<uint64_t>(lease);
    } else if (a == "--owner") {
      o.owner = value(i, "--owner");
      if (o.owner.empty() || o.owner.find(',') != std::string::npos ||
          o.owner.find('\n') != std::string::npos)
        throw std::invalid_argument("--owner must be a non-empty comma-free token");
    } else if (a == "--profile") {
      o.profile = true;
    } else if (a == "--profile-out") {
      o.profile_out = value(i, "--profile-out");
      o.profile_out_set = true;
    } else if (a == "--jobs") {
      const std::string v = value(i, "--jobs");
      size_t pos = 0;
      const int jobs = std::stoi(v, &pos);
      if (pos != v.size() || jobs < 0)
        throw std::invalid_argument("bad --jobs value: " + v);
      o.jobs = static_cast<unsigned>(jobs);
    } else if (a == "--workloads") {
      o.workloads = avr::sweep::parse_workload_list(value(i, "--workloads"));
    } else if (a == "--designs") {
      o.designs = avr::sweep::parse_design_list(value(i, "--designs"));
    } else if (a == "--t1") {
      o.t1_values = avr::sweep::parse_t1_list(value(i, "--t1"));
    } else if (a == "--methods") {
      o.methods_values = avr::sweep::parse_methods_list(value(i, "--methods"));
    } else if (a == "--cache") {
      o.cache_path = value(i, "--cache");
    } else if (a == "--assert-same") {
      o.assert_same = true;
      o.assert_same_path = value(i, "--assert-same");
    } else if (a == "--list") {
      o.list = true;
    } else if (a == "--check") {
      o.check = true;
    } else if (a == "--fsck") {
      o.fsck = true;
    } else if (a == "--repair") {
      o.repair = true;
    } else if (a == "--quiet") {
      o.quiet = true;
    } else if (a == "--help" || a == "-h") {
      std::fputs(kUsage, stdout);
      std::exit(0);
    } else {
      throw std::invalid_argument("unknown flag: " + a);
    }
  }
  if (o.claim && o.shard_set)
    throw std::invalid_argument(
        "--claim and --shard are mutually exclusive (claim mode splits the "
        "grid dynamically)");
  if (o.claim && o.cache_path.empty())
    throw std::invalid_argument("--claim needs a cache file (claims live in it)");
  if (o.repair && !o.fsck)
    throw std::invalid_argument("--repair only makes sense with --fsck");
  if (o.fsck && o.cache_path.empty())
    throw std::invalid_argument("--fsck needs a cache file");
  return o;
}

/// --fsck [--repair]: audit (and optionally rewrite) the cache, exit by the
/// final audit's verdict. Unlike --check this is grid-agnostic — it judges
/// the file itself, not its coverage of any particular slice.
int run_fsck(const Options& o) {
  const uint64_t now = static_cast<uint64_t>(std::time(nullptr));
  avr::FsckReport report = avr::fsck_cache(o.cache_path, now);
  avr::print_fsck_report(stdout, o.cache_path, report);
  if (!o.repair) return report.has_issues() ? 1 : 0;
  if (!report.needs_repair()) {
    std::printf("nothing to repair\n");
    return 0;
  }
  std::string error;
  if (!avr::repair_cache(o.cache_path, now, &error)) {
    std::fprintf(stderr, "avr_sweep: repair failed: %s (original untouched)\n",
                 error.c_str());
    return 1;
  }
  std::printf("repaired %s; re-auditing:\n", o.cache_path.c_str());
  report = avr::fsck_cache(o.cache_path, now);
  avr::print_fsck_report(stdout, o.cache_path, report);
  return report.has_issues() ? 1 : 0;
}

/// Metric-value identity between two results: every simulated field, but not
/// wall_seconds (machine-dependent by design). Encoded-line comparison keeps
/// this in lockstep with the cache schema.
bool same_metrics(avr::ExperimentResult a, avr::ExperimentResult b) {
  a.wall_seconds = 0;
  b.wall_seconds = 0;
  return avr::encode_result_line(a) == avr::encode_result_line(b);
}

/// A (t1, methods) config variant — the key every per-variant structure
/// (runner map, coverage groups) is indexed by.
using Variant = std::pair<int, int>;

/// Coverage and identity checks must see only records simulated under the
/// variant being checked: the shared cache file may hold records for the
/// same (workload, design) keys under other fingerprints (ablation, --t1
/// or --methods variants), which would otherwise shadow the grid's records
/// in the loaded map. (-1, -1) is the default configuration.
uint64_t variant_fingerprint(Variant v) {
  return avr::config_fingerprint(avr::sweep::variant_config(v.first, v.second));
}

/// "(t1=6, methods=avr+bdi)" suffix for diagnostics; "" for the default
/// variant, matching the historical message format.
std::string variant_suffix(Variant v) {
  std::string s;
  if (v.first >= 0) s += " t1=" + std::to_string(v.first);
  if (v.second >= 0) s += " methods=" + avr::sweep::method_set_name(v.second);
  return s.empty() ? s : " (" + s.substr(1) + ")";
}

/// The slice grouped by (t1, methods) variant, preserving point order
/// within a group.
std::map<Variant, std::vector<avr::sweep::Point>> by_variant(
    const std::vector<avr::sweep::VariantPoint>& slice) {
  std::map<Variant, std::vector<avr::sweep::Point>> groups;
  for (const auto& vp : slice)
    groups[{vp.t1, vp.methods}].push_back(vp.point);
  return groups;
}

int check_coverage(const Options& o,
                   const std::vector<avr::sweep::VariantPoint>& slice) {
  size_t missing = 0;
  // Claim audit alongside coverage: a claim is *moot* once its point has a
  // result, *dangling* otherwise (its point is also missing, so dangling
  // claims imply a nonzero exit — "zero unclaimed points" in CI is exactly
  // this check passing).
  size_t claims = 0, dangling = 0;
  const uint64_t now = static_cast<uint64_t>(std::time(nullptr));
  for (const auto& [variant, points] : by_variant(slice)) {
    const uint64_t fp = variant_fingerprint(variant);
    const auto cache = avr::load_result_cache(o.cache_path, fp);
    for (const auto& [key, c] : avr::load_claims(o.cache_path, fp)) {
      ++claims;
      if (cache.count(key)) continue;
      ++dangling;
      std::fprintf(stderr, "dangling claim: %s x %s by %s (%s)\n",
                   key.first.c_str(), avr::to_string(key.second),
                   c.owner.c_str(), c.expired(now) ? "expired" : "live");
    }
    for (const auto& p : points) {
      if (!cache.count(p)) {
        std::fprintf(stderr, "missing: %s x %s%s\n", p.first.c_str(),
                     avr::to_string(p.second), variant_suffix(variant).c_str());
        ++missing;
      }
    }
  }
  if (missing || dangling) {
    std::fprintf(stderr,
                 "%s covers %zu/%zu points (%zu missing, %zu dangling "
                 "claim(s))\n",
                 o.cache_path.c_str(), slice.size() - missing, slice.size(),
                 missing, dangling);
    return 1;
  }
  std::printf("%s covers all %zu points (%zu claim record(s), all moot)\n",
              o.cache_path.c_str(), slice.size(), claims);
  return 0;
}

int check_same(const Options& o) {
  size_t differences = 0, compared = 0;
  std::vector<Variant> variants;
  for (int methods : o.methods_values)
    for (int t1 : o.t1_values) variants.push_back({t1, methods});
  for (const Variant& variant : variants) {
    const uint64_t fp = variant_fingerprint(variant);
    const auto a = avr::load_result_cache(o.cache_path, fp);
    const auto b = avr::load_result_cache(o.assert_same_path, fp);
    // A missing or record-free file would make the comparison vacuously
    // true — exactly what a path typo in a verification command must not do.
    if (a.empty() || b.empty()) {
      std::fprintf(stderr, "avr_sweep: no valid records in %s\n",
                   a.empty() ? o.cache_path.c_str() : o.assert_same_path.c_str());
      return 1;
    }
    compared += a.size();
    for (const auto& [key, ra] : a) {
      auto it = b.find(key);
      if (it == b.end()) {
        std::fprintf(stderr, "only in %s: %s x %s\n", o.cache_path.c_str(),
                     key.first.c_str(), avr::to_string(key.second));
        ++differences;
      } else if (!same_metrics(ra, it->second)) {
        std::fprintf(stderr, "values differ: %s x %s\n", key.first.c_str(),
                     avr::to_string(key.second));
        ++differences;
      }
    }
    for (const auto& [key, rb] : b) {
      if (!a.count(key)) {
        std::fprintf(stderr, "only in %s: %s x %s\n",
                     o.assert_same_path.c_str(), key.first.c_str(),
                     avr::to_string(key.second));
        ++differences;
      }
    }
  }
  if (differences) {
    std::fprintf(stderr, "%s and %s disagree on %zu point(s)\n",
                 o.cache_path.c_str(), o.assert_same_path.c_str(), differences);
    return 1;
  }
  std::printf("%s and %s agree on all %zu points\n", o.cache_path.c_str(),
              o.assert_same_path.c_str(), compared);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace avr;
  Options o;
  try {
    o = parse_args(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "avr_sweep: %s\n%s", e.what(), kUsage);
    return 2;
  }

  // The (methods x t1 x workload x design) variant grid; the default --t1
  // and --methods lists ({-1} each) make it exactly the historical
  // (workload x design) grid. In claim mode every process works the full
  // grid — the claims do the splitting.
  const auto grid = sweep::full_variant_grid(o.t1_values, o.methods_values,
                                             o.workloads, o.designs);
  const auto slice = o.claim ? grid : sweep::shard_slice(grid, o.shard);
  const bool t1_axis = o.t1_values.size() > 1 || o.t1_values[0] >= 0;
  const bool methods_axis =
      o.methods_values.size() > 1 || o.methods_values[0] >= 0;

  if (o.list) {
    for (const auto& [t1, p, methods] : slice) {
      if (methods_axis)
        std::printf("%s,", sweep::method_set_name(methods).c_str());
      if (t1_axis || methods_axis) std::printf("%d,", t1);
      std::printf("%s,%s\n", p.first.c_str(), to_string(p.second));
    }
    return 0;
  }
  if (o.check) return check_coverage(o, slice);
  if (o.assert_same) return check_same(o);
  if (o.fsck) return run_fsck(o);

  // One runner per (t1, methods) variant in this slice: each loads and
  // appends only records carrying its own config fingerprint, so all
  // variants share the one cache file.
  const auto groups = by_variant(slice);
  size_t warm = 0;
  std::vector<std::pair<Variant, std::unique_ptr<ExperimentRunner>>> runners;
  for (const auto& [variant, points] : groups) {
    runners.emplace_back(
        variant, std::make_unique<ExperimentRunner>(
                     sweep::variant_config(variant.first, variant.second),
                     /*verbose=*/!o.quiet, o.cache_path));
    for (const auto& [w, d] : points)
      if (runners.back().second->cached(w, d)) ++warm;
  }

  if (o.claim)
    std::fprintf(stderr,
                 "[sweep] claim mode (owner %s): %zu grid points (%zu cached, "
                 "%zu variant(s)), %u jobs, cache=%s\n",
                 o.owner.c_str(), grid.size(), warm, groups.size(), o.jobs,
                 o.cache_path.c_str());
  else
    std::fprintf(stderr,
                 "[sweep] shard %u/%u: %zu of %zu grid points (%zu cached, "
                 "%zu variant(s)), %u jobs, cache=%s\n",
                 o.shard.index, o.shard.count, slice.size(), grid.size(), warm,
                 groups.size(), o.jobs,
                 o.cache_path.empty() ? "<disabled>" : o.cache_path.c_str());

  const auto t0 = std::chrono::steady_clock::now();
  size_t write_failures = 0;
  sweep::StealOutcome steal;
  try {
    if (o.claim) {
      std::map<Variant, ExperimentRunner*> rmap;
      for (auto& [variant, runner] : runners) rmap[variant] = runner.get();
      sweep::StealOptions so;
      so.owner = o.owner;
      so.lease_seconds = o.claim_lease;
      steal = sweep::run_work_stealing(
          grid,
          [&](const sweep::VariantPoint& vp) -> ExperimentRunner& {
            return *rmap.at({vp.t1, vp.methods});
          },
          o.cache_path, so, o.jobs);
      for (auto& [variant, runner] : runners)
        write_failures += runner->disk_write_failures();
    } else {
      for (auto& [variant, runner] : runners) {
        runner->run_points(groups.at(variant), o.jobs);
        write_failures += runner->disk_write_failures();
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "avr_sweep: point failed: %s\n", e.what());
    return 1;
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  // The shard cache IS this process's output: results that only exist in
  // memory are lost when it exits, so persistence failures are fatal here
  // (unlike in the figure benches, which still print their tables).
  if (!o.cache_path.empty() && write_failures > 0) {
    std::fprintf(stderr, "avr_sweep: %zu result(s) could not be appended to %s\n",
                 write_failures, o.cache_path.c_str());
    return 1;
  }

  // Per-phase profile: aggregate of every runner (and, in claim mode, the
  // scheduler's claim I/O), one slice per simulated point. The sidecar is
  // written unconditionally — it documents what this process did even when
  // nobody asked for the table.
  prof::Report report;
  report.owner = o.owner;
  report.mode = o.claim ? "claim" : "shard";
  report.simd = simd_level_name(simd_level());
  report.wall_seconds = secs;
  report.aggregate = steal.sched;
  for (auto& [variant, runner] : runners) {
    report.aggregate.merge(runner->profile_totals());
    auto pts = runner->profile_points();
    report.points.insert(report.points.end(),
                         std::make_move_iterator(pts.begin()),
                         std::make_move_iterator(pts.end()));
  }
  std::string profile_path = o.profile_out;
  if (!o.profile_out_set && !o.cache_path.empty())
    profile_path = o.cache_path + "." + o.owner + ".profile.json";
  if (!profile_path.empty() &&
      !prof::write_profile_json(profile_path, report))
    std::fprintf(stderr, "avr_sweep: WARNING: could not write profile %s\n",
                 profile_path.c_str());
  if (o.profile) prof::print_summary(stdout, report);

  if (steal.degraded)
    std::fprintf(stderr,
                 "[sweep] WARNING: %zu point(s) ran without a claim (cache "
                 "I/O kept failing); results are correct but duplicate work "
                 "was possible — consider avr_sweep --fsck on %s\n",
                 steal.claim_errors, o.cache_path.c_str());
  if (o.claim)
    std::printf(
        "[sweep] claim done (owner %s): %zu simulated (%zu reclaimed), "
        "%zu already done, in %.1fs\n",
        o.owner.c_str(), steal.simulated, steal.reclaimed, steal.done_elsewhere,
        secs);
  else
    std::printf("[sweep] shard %u/%u done: %zu points (%zu simulated) in %.1fs\n",
                o.shard.index, o.shard.count, slice.size(), slice.size() - warm,
                secs);
  return 0;
}
