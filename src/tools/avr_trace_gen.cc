// avr_trace_gen: produces replayable access-stream traces (binary trace
// format v1) for the `trace:<path>` workload frontend. Two modes:
//
//   synthesize  irregular patterns the hand-written kernels cannot produce
//               (pointer-chasing, Zipf hot sets, random walks):
//                 avr_trace_gen --out chase.trace --pattern chase --records 65536
//
//   re-record   any existing workload, by running it through a System with
//               the capture hook attached (functional run: capture costs
//               seconds, not a simulation):
//                 avr_trace_gen --out kmeans.trace --record kmeans --limit 1000000
//
// Output is deterministic for a given flag tuple, so CI shards can each
// regenerate an identical trace instead of shipping it between jobs.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "runtime/system.hh"
#include "trace/trace_format.hh"
#include "trace/trace_gen.hh"
#include "workloads/workload.hh"

namespace {

constexpr const char* kUsage = R"(usage: avr_trace_gen --out path [options]

Synthesize a replayable access trace, or re-record a workload as one.

  --out path         output trace file (required)
  --pattern p        chase | zipf | walk | mixed (default mixed)
  --records N        synthetic records to emit (default 65536)
  --regions K        regions to spread the stream over (default 4)
  --bytes B          bytes per region, 4-aligned (default 262144)
  --stores F         store fraction 0..1 (default 0.25)
  --seed S           generator seed (default 1)
  --record W         re-record workload W (a kernel name or trace:<path>)
                     instead of synthesizing; captures its instrumented
                     access stream through a functional run
  --limit N          keep only the first N captured accesses (default
                     4194304); the overflow count is reported, not silently
                     dropped
  --help             this text
)";

struct Options {
  std::string out;
  std::string pattern = "mixed";
  std::string record_workload;
  avr::trace::GenParams gen;
  uint64_t limit = 4u << 20;
};

uint64_t parse_u64(const std::string& v, const char* flag) {
  size_t pos = 0;
  long long n = 0;
  try {
    n = std::stoll(v, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != v.size() || n < 0)
    throw std::invalid_argument(std::string("bad ") + flag + " value: " + v);
  return static_cast<uint64_t>(n);
}

Options parse_args(int argc, char** argv) {
  Options o;
  auto value = [&](int& i, const char* flag) -> std::string {
    if (i + 1 >= argc)
      throw std::invalid_argument(std::string(flag) + " needs a value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--out") {
      o.out = value(i, "--out");
    } else if (a == "--pattern") {
      o.pattern = value(i, "--pattern");
    } else if (a == "--records") {
      o.gen.records = parse_u64(value(i, "--records"), "--records");
    } else if (a == "--regions") {
      o.gen.regions =
          static_cast<uint32_t>(parse_u64(value(i, "--regions"), "--regions"));
    } else if (a == "--bytes") {
      o.gen.region_bytes = parse_u64(value(i, "--bytes"), "--bytes");
    } else if (a == "--stores") {
      try {
        o.gen.store_fraction = std::stod(value(i, "--stores"));
      } catch (const std::exception&) {
        throw std::invalid_argument("bad --stores value");
      }
    } else if (a == "--seed") {
      o.gen.seed = parse_u64(value(i, "--seed"), "--seed");
    } else if (a == "--record") {
      o.record_workload = value(i, "--record");
    } else if (a == "--limit") {
      o.limit = parse_u64(value(i, "--limit"), "--limit");
    } else if (a == "--help" || a == "-h") {
      std::fputs(kUsage, stdout);
      std::exit(0);
    } else {
      throw std::invalid_argument("unknown flag: " + a);
    }
  }
  if (o.out.empty()) throw std::invalid_argument("--out is required");
  return o;
}

/// Trace-legal region name: truncated to fit the 24-byte field, hostile
/// characters replaced, uniqueness restored with a numeric suffix.
std::string sanitize_name(std::string name, size_t index,
                          const std::vector<avr::trace::TraceRegion>& taken) {
  if (name.empty()) name = "region";
  for (char& c : name) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (u < 0x20 || u > 0x7E || c == ',') c = '_';
  }
  if (name.size() >= avr::trace::kRegionNameBytes)
    name.resize(avr::trace::kRegionNameBytes - 1);
  auto in_use = [&](const std::string& n) {
    return std::any_of(taken.begin(), taken.end(),
                       [&](const auto& r) { return r.name == n; });
  };
  if (!in_use(name)) return name;
  std::string suffix = "~" + std::to_string(index);
  std::string base = name.substr(
      0, avr::trace::kRegionNameBytes - 1 - suffix.size());
  return base + suffix;
}

avr::trace::Trace capture_workload(const std::string& name, uint64_t limit,
                                   uint64_t* dropped) {
  using namespace avr;
  auto wl = make_workload(name);  // throws a diagnosable error on bad names
  SimConfig cfg;
  cfg.scale_caches(wl->cache_scale());
  cfg.llc.size_bytes = wl->llc_bytes();

  struct Captured {
    uint64_t addr;
    bool write;
  };
  std::vector<Captured> stream;
  stream.reserve(std::min<uint64_t>(limit, 1u << 20));
  *dropped = 0;
  // Functional run: the hook sees the same instrumented stream a timing run
  // would issue, without paying for the simulation.
  System sys(Design::kBaseline, cfg, 1, /*timing=*/false);
  sys.set_access_hook([&](uint64_t addr, bool write) {
    if (stream.size() < limit)
      stream.push_back({addr, write});
    else
      ++*dropped;
  });
  wl->run(sys);
  sys.set_access_hook(nullptr);

  trace::Trace t;
  const auto& regions = sys.regions().regions();  // sorted by base
  std::vector<uint64_t> bases;
  for (size_t i = 0; i < regions.size(); ++i) {
    t.regions.push_back({sanitize_name(regions[i].name, i, t.regions),
                         regions[i].bytes, regions[i].approx});
    bases.push_back(regions[i].base);
  }
  t.records.reserve(stream.size());
  for (const Captured& c : stream) {
    // Region containing the address: last base <= addr (allocation is
    // block-aligned and regions never overlap).
    const auto it = std::upper_bound(bases.begin(), bases.end(), c.addr);
    if (it == bases.begin()) continue;  // below the first region: untracked
    const size_t idx = static_cast<size_t>(it - bases.begin()) - 1;
    const uint64_t off = (c.addr - bases[idx]) & ~uint64_t{3};  // f32-aligned
    if (off + 4 > regions[idx].bytes) continue;
    t.records.push_back({c.write ? trace::Op::kStore : trace::Op::kLoad,
                         static_cast<uint16_t>(idx), 4, off});
  }
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace avr;
  Options o;
  try {
    o = parse_args(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "avr_trace_gen: %s\n%s", e.what(), kUsage);
    return 2;
  }

  try {
    trace::Trace t;
    uint64_t dropped = 0;
    if (!o.record_workload.empty()) {
      t = capture_workload(o.record_workload, o.limit, &dropped);
    } else {
      t = trace::make_synthetic_trace(o.pattern, o.gen);
    }
    std::string err;
    if (!trace::write_trace_file(o.out, t, &err)) {
      std::fprintf(stderr, "avr_trace_gen: cannot write %s: %s\n",
                   o.out.c_str(), err.c_str());
      return 1;
    }
    const std::string extra =
        dropped ? " (+" + std::to_string(dropped) + " accesses beyond --limit dropped)"
                : "";
    std::printf(
        "%s: %zu region(s), %zu record(s), %llu replayed accesses, "
        "%llu B footprint%s\n",
        o.out.c_str(), t.regions.size(), t.records.size(),
        static_cast<unsigned long long>(t.access_count()),
        static_cast<unsigned long long>(t.footprint_bytes()), extra.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "avr_trace_gen: %s\n", e.what());
    return 1;
  }
  return 0;
}
