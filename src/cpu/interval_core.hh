// Interval-based processor model (Genbrugge, Eyerman & Eeckhout, HPCA'10 —
// the model the paper's simulator uses, Sec. 4.1).
//
// Between long-latency miss events the core commits `dispatch_width`
// instructions per cycle. A miss event exposes its latency minus the ILP
// the ROB can overlap; multiple misses inside one ROB window overlap with
// each other (memory-level parallelism), so a burst of misses costs roughly
// one exposed latency plus the queueing tail — which is how reduced traffic
// translates into execution time.
//
// Hot-path shape: every instrumented access enters through access(), which
// charges the surrounding non-memory instructions and the load/store in one
// step, then tries the hierarchy's per-core MRU line filter. Only filter
// misses (L1 set-MRU changes, L2/LLC/DRAM traffic) reach memory_op()'s
// interval bookkeeping.
#pragma once

#include <cstdint>

#include "common/config.hh"
#include "cpu/hierarchy.hh"

namespace avr {

class IntervalCore {
 public:
  IntervalCore(const CoreConfig& cfg, MemoryHierarchy& mem, uint32_t id)
      : mem_(mem),
        filter_(mem.filter(id)),
        id_(id),
        // Per-access invariants, hoisted so the access path touches plain
        // members instead of re-deriving them from the config every access.
        dispatch_width_(cfg.dispatch_width),
        rob_size_(cfg.rob_size),
        // ILP a full ROB can hide under perfect overlap.
        hide_cycles_(cfg.rob_size / cfg.dispatch_width),
        // The MRU-filter fast path is exact only if a filtered hit (an L1
        // hit) can never expose a stall; with l1_latency > hide_cycles it
        // would, so such configs take the full path for every access.
        filter_ok_(mem.l1_hit_latency() <= hide_cycles_) {}

  /// Commit `n` non-memory instructions.
  void ops(uint64_t n) { instructions_ += n; }

  /// Commit `pre_ops` non-memory instructions plus one load/store of `addr`
  /// — the bundle the runtime charges per instrumented access. Equivalent
  /// to ops(pre_ops) followed by load()/store(); the fused form exists so
  /// the filter fast path costs one branch and two adds.
  void access(uint64_t addr, bool write, uint64_t pre_ops) {
    instructions_ += pre_ops + 1;
    if (filter_ok_ && filter_->hit(addr, write)) return;
    memory_op(addr, write);
  }

  /// Commit a load/store of `addr`.
  void load(uint64_t addr) { access(addr, /*write=*/false, 0); }
  void store(uint64_t addr) { access(addr, /*write=*/true, 0); }

  // The interval model commits `dispatch_width` instructions per cycle
  // outside stalls, so width-limited work is instructions_ / width —
  // every committed instruction (memory or not) contributes equally.
  uint64_t cycles() const { return stall_cycles_ + instructions_ / dispatch_width_; }
  uint64_t instructions() const { return instructions_; }
  double ipc() const {
    const uint64_t c = cycles();
    return c ? static_cast<double>(instructions_) / static_cast<double>(c) : 0.0;
  }
  uint32_t id() const { return id_; }

 private:
  void memory_op(uint64_t addr, bool write) {
    // Misses within one ROB window all issue from the window's start time:
    // the OoO engine had them in flight together. The DRAM model then
    // queues them behind each other (bank/bus contention), and the core
    // charges only the completion tail — so a burst of k misses costs one
    // exposed latency plus (k-1) transfer slots, i.e. bandwidth-bound.
    const bool in_window =
        window_done_ != 0 && (instructions_ - window_first_instr_ < rob_size_);
    const uint64_t issue = in_window ? window_issue_ : cycles();
    const AccessOutcome out = mem_.access(id_, issue, addr, write);
    // Only latencies beyond what the ROB hides become stalls; on-chip hits
    // (L1/L2/LLC/DBUF, including AVR decompression) are absorbed by ILP.
    const uint64_t exposed =
        out.latency > hide_cycles_ ? out.latency - hide_cycles_ : 0;
    if (exposed == 0) return;

    const uint64_t done = issue + exposed;
    if (!in_window) {
      window_first_instr_ = instructions_;
      window_issue_ = issue;
      window_done_ = done;
      stall_cycles_ += exposed;
    } else if (done > window_done_) {
      stall_cycles_ += done - window_done_;
      window_done_ = done;
    }
  }

  MemoryHierarchy& mem_;
  MemoryHierarchy::L1Filter* filter_;
  uint32_t id_;
  // Set once in the constructor; see the init list.
  uint64_t dispatch_width_;
  uint64_t rob_size_;
  uint64_t hide_cycles_;
  bool filter_ok_;
  uint64_t instructions_ = 0;
  uint64_t stall_cycles_ = 0;  // exposed miss penalties
  uint64_t window_first_instr_ = 0;
  uint64_t window_issue_ = 0;
  uint64_t window_done_ = 0;
};

}  // namespace avr
