#include "cpu/hierarchy.hh"

#include <string>

namespace avr {

MemoryHierarchy::MemoryHierarchy(const SimConfig& cfg, LlcSystem& llc,
                                 uint32_t num_cores)
    : cfg_(cfg),
      llc_(llc),
      lat_l1_(cfg.core.l1_latency),
      lat_l1l2_(uint64_t{cfg.core.l1_latency} + cfg.core.l2_latency) {
  for (uint32_t c = 0; c < num_cores; ++c) {
    l1_.push_back(std::make_unique<SetAssocCache>("l1." + std::to_string(c),
                                                  cfg.l1.size_bytes, cfg.l1.ways));
    l2_.push_back(std::make_unique<SetAssocCache>("l2." + std::to_string(c),
                                                  cfg.l2.size_bytes, cfg.l2.ways));
  }
}

void MemoryHierarchy::evict_from_l1(uint32_t core, uint64_t now, const Eviction& ev) {
  if (!ev.valid || !ev.dirty) return;
  // Dirty L1 victim lands in the L2 (write-back, allocate on writeback).
  if (l2_[core]->mark_dirty(ev.addr)) return;
  const Eviction ev2 = l2_[core]->fill(ev.addr, /*dirty=*/true);
  if (ev2.valid && ev2.dirty) llc_.writeback(now, ev2.addr);
}

AccessOutcome MemoryHierarchy::access(uint32_t core, uint64_t now, uint64_t addr,
                                      bool write) {
  addr = line_addr(addr);
  ++accesses_;
  AccessOutcome out;

  SetAssocCache& l1 = *l1_[core];
  if (l1.access(addr, write)) {
    out.latency = lat_l1_;
    out.level = ServedBy::kL1;
    latency_sum_ += out.latency;
    return out;
  }

  SetAssocCache& l2 = *l2_[core];
  if (l2.access(addr, /*write=*/false)) {
    out.latency = lat_l1l2_;
    out.level = ServedBy::kL2;
  } else {
    ++llc_requests_;
    const uint64_t llc_lat = llc_.request(now, addr, /*write=*/false);
    if (llc_.last_was_miss()) {
      ++llc_misses_;
      out.level = ServedBy::kMemory;
    } else {
      out.level = ServedBy::kLlc;
    }
    out.latency = lat_l1l2_ + llc_lat;
    const Eviction ev2 = l2.fill(addr, /*dirty=*/false);
    if (ev2.valid && ev2.dirty) llc_.writeback(now, ev2.addr);
  }

  // Fill L1 (write-allocate: the store dirties the L1 copy).
  const Eviction ev1 = l1.fill(addr, write);
  evict_from_l1(core, now, ev1);
  latency_sum_ += out.latency;
  return out;
}

void MemoryHierarchy::drain(uint64_t now) {
  for (auto& l1 : l1_)
    for (const auto& [addr, dirty] : l1->valid_lines())
      if (dirty) llc_.writeback(now, addr);
  for (auto& l2 : l2_)
    for (const auto& [addr, dirty] : l2->valid_lines())
      if (dirty) llc_.writeback(now, addr);
  llc_.drain(now);
}

uint64_t MemoryHierarchy::l1_accesses() const {
  uint64_t n = 0;
  for (const auto& c : l1_) n += c->counters().accesses;
  return n;
}

uint64_t MemoryHierarchy::l2_accesses() const {
  uint64_t n = 0;
  for (const auto& c : l2_) n += c->counters().accesses;
  return n;
}

}  // namespace avr
