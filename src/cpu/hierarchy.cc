#include "cpu/hierarchy.hh"

#include <algorithm>
#include <string>

namespace avr {

namespace {

/// Fallback miss-path dispatch when no concrete-type thunk was supplied:
/// the two virtual calls the flattened path folds into one.
MemoryHierarchy::LlcReply virtual_request(LlcSystem& llc, uint64_t now,
                                          uint64_t line, bool write) {
  const uint64_t lat = llc.request(now, line, write);
  return {lat, llc.last_was_miss()};
}

}  // namespace

MemoryHierarchy::MemoryHierarchy(const SimConfig& cfg, LlcSystem& llc,
                                 uint32_t num_cores, LlcRequestFn request_fn)
    : cfg_(cfg),
      llc_(llc),
      request_fn_(request_fn ? request_fn : &virtual_request),
      lat_l1_(cfg.core.l1_latency),
      lat_l1l2_(uint64_t{cfg.core.l1_latency} + cfg.core.l2_latency) {
  for (uint32_t c = 0; c < num_cores; ++c) {
    l1_.push_back(std::make_unique<SetAssocCache>("l1." + std::to_string(c),
                                                  cfg.l1.size_bytes, cfg.l1.ways));
    l2_.push_back(std::make_unique<SetAssocCache>("l2." + std::to_string(c),
                                                  cfg.l2.size_bytes, cfg.l2.ways));
    L1Filter f;
    f.lines.assign(l1_.back()->num_sets(), kNoLine);
    f.dirty.assign(l1_.back()->num_sets(), 0);
    f.l1 = l1_.back().get();
    f.mask = l1_.back()->num_sets() - 1;
    filters_.push_back(std::move(f));
  }
}

void MemoryHierarchy::flush_filters() const {
  for (L1Filter& f : filters_) {
    if (f.pending == 0) continue;
    f.l1->count_filtered_hits(f.pending);
    accesses_ += f.pending;
    latency_sum_ += f.pending * lat_l1_;
    f.pending = 0;
  }
}

void MemoryHierarchy::evict_from_l1(uint32_t core, uint64_t now, const Eviction& ev) {
  if (!ev.valid || !ev.dirty) return;
  // Dirty L1 victim lands in the L2 (write-back, allocate on writeback).
  if (l2_[core]->mark_dirty(ev.addr)) return;
  const Eviction ev2 = l2_[core]->fill(ev.addr, /*dirty=*/true);
  if (ev2.valid && ev2.dirty) llc_.writeback(now, ev2.addr);
}

AccessOutcome MemoryHierarchy::access(uint32_t core, uint64_t now, uint64_t addr,
                                      bool write) {
  addr = line_addr(addr);
  ++accesses_;
  AccessOutcome out;

  SetAssocCache& l1 = *l1_[core];
  if (l1.access(addr, write)) {
    arm_filter(core, addr, write);
    out.latency = lat_l1_;
    out.level = ServedBy::kL1;
    latency_sum_ += out.latency;
    return out;
  }

  SetAssocCache& l2 = *l2_[core];
  if (l2.access(addr, /*write=*/false)) {
    out.latency = lat_l1l2_;
    out.level = ServedBy::kL2;
  } else {
    ++llc_requests_;
    const LlcReply reply = request_fn_(llc_, now, addr, /*write=*/false);
    if (reply.miss) {
      ++llc_misses_;
      out.level = ServedBy::kMemory;
    } else {
      out.level = ServedBy::kLlc;
    }
    out.latency = lat_l1l2_ + reply.latency;
    const Eviction ev2 = l2.fill(addr, /*dirty=*/false);
    if (ev2.valid && ev2.dirty) llc_.writeback(now, ev2.addr);
  }

  // Fill L1 (write-allocate: the store dirties the L1 copy). The filled
  // line is the new MRU of its set, so it arms the filter slot — which also
  // retires any line the fill evicted from that set.
  const Eviction ev1 = l1.fill(addr, write);
  arm_filter(core, addr, write);
  evict_from_l1(core, now, ev1);
  latency_sum_ += out.latency;
  return out;
}

void MemoryHierarchy::drain(uint64_t now) {
  flush_filters();
  for (L1Filter& f : filters_) {
    std::fill(f.lines.begin(), f.lines.end(), kNoLine);
    std::fill(f.dirty.begin(), f.dirty.end(), 0);
  }
  for (auto& l1 : l1_)
    for (const auto& [addr, dirty] : l1->valid_lines())
      if (dirty) llc_.writeback(now, addr);
  for (auto& l2 : l2_)
    for (const auto& [addr, dirty] : l2->valid_lines())
      if (dirty) llc_.writeback(now, addr);
  llc_.drain(now);
}

uint64_t MemoryHierarchy::l1_accesses() const {
  flush_filters();
  uint64_t n = 0;
  for (const auto& c : l1_) n += c->counters().accesses;
  return n;
}

uint64_t MemoryHierarchy::l2_accesses() const {
  uint64_t n = 0;
  for (const auto& c : l2_) n += c->counters().accesses;
  return n;
}

}  // namespace avr
