// Private L1/L2 cache hierarchy in front of the design-specific shared LLC
// subsystem. Design-independent: every evaluated design (baseline, Truncate,
// Doppelganger, AVR) sees identical L1/L2 behaviour, as in the paper.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/set_assoc_cache.hh"
#include "common/config.hh"
#include "mem/llc_system.hh"

namespace avr {

/// What level served an access (for the interval model's penalty rule and
/// the AMAT/MPKI metrics).
enum class ServedBy : uint8_t { kL1, kL2, kLlc, kMemory };

struct AccessOutcome {
  uint64_t latency = 0;
  ServedBy level = ServedBy::kL1;
};

class MemoryHierarchy {
 public:
  MemoryHierarchy(const SimConfig& cfg, LlcSystem& llc, uint32_t num_cores);

  /// A load/store of the cacheline containing `addr` by `core` at `now`.
  AccessOutcome access(uint32_t core, uint64_t now, uint64_t addr, bool write);

  /// Write all dirty private-cache state down to the LLC and drain it.
  void drain(uint64_t now);

  uint64_t llc_requests() const { return llc_requests_; }
  uint64_t llc_misses() const { return llc_misses_; }
  uint64_t total_accesses() const { return accesses_; }
  /// Average memory access time over all instrumented accesses (Fig. 12).
  double amat() const {
    return accesses_ ? static_cast<double>(latency_sum_) / static_cast<double>(accesses_)
                     : 0.0;
  }

  const SetAssocCache& l1(uint32_t core) const { return *l1_[core]; }
  const SetAssocCache& l2(uint32_t core) const { return *l2_[core]; }
  uint64_t l1_accesses() const;
  uint64_t l2_accesses() const;

 private:
  void evict_from_l1(uint32_t core, uint64_t now, const Eviction& ev);

  SimConfig cfg_;
  LlcSystem& llc_;
  std::vector<std::unique_ptr<SetAssocCache>> l1_;
  std::vector<std::unique_ptr<SetAssocCache>> l2_;
  // Per-access invariants hoisted out of access(): the latency ladder is
  // config-constant, so the hot path adds plain members instead of chasing
  // two levels of config structs per instrumented load/store.
  uint64_t lat_l1_ = 0;    // L1 hit
  uint64_t lat_l1l2_ = 0;  // L1 miss, L2 hit
  uint64_t llc_requests_ = 0;
  uint64_t llc_misses_ = 0;
  uint64_t accesses_ = 0;
  uint64_t latency_sum_ = 0;
};

}  // namespace avr
