// Private L1/L2 cache hierarchy in front of the design-specific shared LLC
// subsystem. Design-independent: every evaluated design (baseline, Truncate,
// Doppelganger, AVR) sees identical L1/L2 behaviour, as in the paper.
//
// Per-access fast path: each core carries a direct-mapped MRU line filter —
// one slot per L1 set holding the set's most-recently-used line. A repeat
// access to that line is an L1 hit that cannot change any simulated state
// (the line is already MRU, so true-LRU ordering is unaffected), so
// filter_hit() short-circuits it to one compare plus a deferred counter
// bump, bypassing the SetAssocCache scan and the AccessOutcome plumbing.
// See docs/ARCHITECTURE.md ("Access-chain fast path") for the exactness
// argument and the invalidation contract.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/set_assoc_cache.hh"
#include "common/config.hh"
#include "mem/llc_system.hh"

namespace avr {

/// What level served an access (for the interval model's penalty rule and
/// the AMAT/MPKI metrics).
enum class ServedBy : uint8_t { kL1, kL2, kLlc, kMemory };

struct AccessOutcome {
  uint64_t latency = 0;
  ServedBy level = ServedBy::kL1;
};

class MemoryHierarchy {
 public:
  /// Reply of one LLC request: latency plus whether it missed on chip —
  /// what the virtual pair request()+last_was_miss() used to answer in two
  /// virtual calls.
  struct LlcReply {
    uint64_t latency = 0;
    bool miss = false;
  };
  /// Non-virtual miss-path entry: System binds this to the concrete LLC
  /// type (the implementations are final), so LLC dispatch costs one
  /// indirect call off the L1/L2-hit path instead of two virtual hops.
  /// Passing nullptr falls back to plain virtual dispatch (tests that
  /// construct the hierarchy directly).
  using LlcRequestFn = LlcReply (*)(LlcSystem&, uint64_t now, uint64_t line,
                                    bool write);

  MemoryHierarchy(const SimConfig& cfg, LlcSystem& llc, uint32_t num_cores,
                  LlcRequestFn request_fn = nullptr);

  /// A load/store of the cacheline containing `addr` by `core` at `now`.
  AccessOutcome access(uint32_t core, uint64_t now, uint64_t addr, bool write);

  /// Per-core MRU line filter, the per-access fast path: lines[s] is the
  /// MRU line of L1 set s (kNoLine when disarmed), dirty[s] whether that L1
  /// copy is known dirty. `pending` counts filtered hits not yet folded
  /// into the reporting counters — the simulation itself never reads those
  /// counters, so folding happens lazily on the cold read paths.
  struct L1Filter {
    std::vector<uint64_t> lines;
    std::vector<uint8_t> dirty;
    SetAssocCache* l1 = nullptr;
    uint64_t mask = 0;
    uint64_t pending = 0;

    /// True iff the access is a repeat L1 hit on the MRU line of its set:
    /// the access is then fully accounted (an L1 hit at l1_latency) and
    /// nothing else in the chain may observe it. On a filtered write the
    /// L1 dirty bit is set exactly once.
    bool hit(uint64_t addr, bool write) {
      const uint64_t line = line_addr(addr);
      const uint64_t slot = (line / kCachelineBytes) & mask;
      if (lines[slot] != line) return false;
      if (write && !dirty[slot]) {
        // First write since the slot was (re)armed: the L1 copy may still
        // be clean. mark_dirty touches only the dirty bit and the LRU
        // stamp of the already-MRU line, so replacement order is
        // unchanged.
        l1->mark_dirty(line);
        dirty[slot] = 1;
      }
      ++pending;
      return true;
    }
  };

  /// The filter the interval core for `core` checks on every access.
  L1Filter* filter(uint32_t core) { return &filters_[core]; }

  /// Latency charged per filtered hit (the L1 hit latency); the interval
  /// core uses it to prove filtered hits can never expose a stall.
  uint64_t l1_hit_latency() const { return lat_l1_; }

  /// Write all dirty private-cache state down to the LLC and drain it.
  void drain(uint64_t now);

  uint64_t llc_requests() const { return llc_requests_; }
  uint64_t llc_misses() const { return llc_misses_; }
  uint64_t total_accesses() const {
    flush_filters();
    return accesses_;
  }
  /// Average memory access time over all instrumented accesses (Fig. 12).
  double amat() const {
    flush_filters();
    return accesses_ ? static_cast<double>(latency_sum_) / static_cast<double>(accesses_)
                     : 0.0;
  }

  const SetAssocCache& l1(uint32_t core) const {
    flush_filters();
    return *l1_[core];
  }
  const SetAssocCache& l2(uint32_t core) const { return *l2_[core]; }
  uint64_t l1_accesses() const;
  uint64_t l2_accesses() const;

 private:
  static constexpr uint64_t kNoLine = ~uint64_t{0};

  /// Arm the filter slot for `line` (which just became the MRU of its set).
  void arm_filter(uint32_t core, uint64_t line, bool known_dirty) {
    L1Filter& f = filters_[core];
    const uint64_t slot = (line / kCachelineBytes) & f.mask;
    f.lines[slot] = line;
    f.dirty[slot] = known_dirty ? 1 : 0;
  }

  /// Fold pending filtered hits into the reporting counters (cold path).
  void flush_filters() const;

  void evict_from_l1(uint32_t core, uint64_t now, const Eviction& ev);

  SimConfig cfg_;
  LlcSystem& llc_;
  LlcRequestFn request_fn_;
  std::vector<std::unique_ptr<SetAssocCache>> l1_;
  std::vector<std::unique_ptr<SetAssocCache>> l2_;
  mutable std::vector<L1Filter> filters_;
  // Per-access invariants hoisted out of access(): the latency ladder is
  // config-constant, so the hot path adds plain members instead of chasing
  // two levels of config structs per instrumented load/store.
  uint64_t lat_l1_ = 0;    // L1 hit
  uint64_t lat_l1l2_ = 0;  // L1 miss, L2 hit
  uint64_t llc_requests_ = 0;
  uint64_t llc_misses_ = 0;
  mutable uint64_t accesses_ = 0;
  mutable uint64_t latency_sum_ = 0;
};

}  // namespace avr
