#!/usr/bin/env python3
"""Fail on dead relative links in the repo's markdown docs.

Scans README.md and docs/*.md for markdown links and checks that every
relative target (optionally with a #fragment) exists on disk, relative to
the file containing the link. External (scheme://), mailto: and pure
#fragment links are skipped; so are links inside fenced code blocks, which
in this repo are command examples, not navigation.

Usage: scripts/check_links.py [file-or-dir ...]   (default: README.md docs/)
Exit status: 0 if every relative link resolves, 1 otherwise.
"""

import re
import sys
from pathlib import Path

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE = re.compile(r"^\s*(```|~~~)")


def candidate_files(args):
    roots = [Path(a) for a in args] if args else [Path("README.md"), Path("docs")]
    for root in roots:
        if root.is_dir():
            yield from sorted(root.rglob("*.md"))
        elif root.suffix == ".md":
            yield root


def check_file(md: Path):
    dead = []
    in_fence = False
    for lineno, line in enumerate(md.read_text().splitlines(), start=1):
        if FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for target in LINK.findall(line):
            if "://" in target or target.startswith(("mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            if not (md.parent / path).exists():
                dead.append((lineno, target))
    return dead


def main(argv):
    files = list(candidate_files(argv))
    if not files:
        print("check_links: no markdown files found", file=sys.stderr)
        return 1
    failures = 0
    for md in files:
        for lineno, target in check_file(md):
            print(f"{md}:{lineno}: dead relative link: {target}", file=sys.stderr)
            failures += 1
    print(f"check_links: {len(files)} file(s), {failures} dead link(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
