#!/usr/bin/env python3
"""Compare fresh bench_micro_* results against the committed baseline.

Usage:
    compare_bench.py BENCH_PR9.json fresh1.json [fresh2.json ...]

The baseline file holds ns/iteration numbers under a "post" key (see
BENCH_PR9.json); the fresh files are Google Benchmark --benchmark_format=json
outputs. Absolute times are machine-dependent, so the report shows the
current/baseline ratio per benchmark and flags entries slower than
--threshold (default 1.5x). Exits 1 if anything is flagged — the CI
microbench job runs this blockingly with --threshold 2.5, so a flag there
fails the build; locally the tighter default catches smaller regressions
early.
"""

import argparse
import json
import sys


def load_benchmark_json(path):
    with open(path) as f:
        doc = json.load(f)
    # A benchmark that skipped (e.g. a BM_Kernel*/level row on a machine
    # without that ISA) emits an entry with error_occurred and no real_time;
    # treat it as unmeasured so the baseline's MISSING check reports it.
    return {b["name"]: b["real_time"] for b in doc.get("benchmarks", [])
            if "real_time" in b and not b.get("error_occurred")}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", help="committed baseline (BENCH_PR4.json)")
    ap.add_argument("fresh", nargs="+", help="Google Benchmark JSON outputs")
    ap.add_argument("--threshold", type=float, default=1.5,
                    help="flag benchmarks slower than this ratio (default 1.5)")
    args = ap.parse_args()

    # A missing or mangled baseline must fail loudly: a comparison against
    # nothing would pass vacuously and hide real regressions.
    try:
        with open(args.baseline) as f:
            doc = json.load(f)
    except OSError as e:
        print(f"error: cannot read baseline {args.baseline}: {e}",
              file=sys.stderr)
        return 2
    except json.JSONDecodeError as e:
        print(f"error: baseline {args.baseline} is not valid JSON: {e}",
              file=sys.stderr)
        return 2
    base = doc.get("post")
    if not isinstance(base, dict) or not base:
        print(f"error: baseline {args.baseline} has no non-empty 'post' "
              f"table of ns/iter numbers", file=sys.stderr)
        return 2

    fresh = {}
    for path in args.fresh:
        try:
            fresh.update(load_benchmark_json(path))
        except (OSError, json.JSONDecodeError, KeyError, TypeError) as e:
            print(f"error: cannot parse benchmark output {path}: {e}",
                  file=sys.stderr)
            return 2

    flagged = []
    print(f"{'benchmark':35s} {'baseline':>10s} {'current':>10s} {'ratio':>7s}")
    for name, ref in sorted(base.items()):
        if name not in fresh:
            # A guarded hot loop that stopped being measured is itself a
            # regression in coverage — flag it, don't just print it.
            print(f"{name:35s} {ref:10.2f} {'MISSING':>10s}")
            flagged.append(name)
            continue
        cur = fresh[name]
        ratio = cur / ref
        mark = ""
        if ratio > args.threshold:
            mark = f"  <-- slower than {args.threshold:.2f}x baseline"
            flagged.append(name)
        print(f"{name:35s} {ref:10.2f} {cur:10.2f} {ratio:6.2f}x{mark}")

    for name in sorted(set(fresh) - set(base)):
        print(f"{name:35s} {'new':>10s} {fresh[name]:10.2f}")

    if flagged:
        print(f"\n{len(flagged)} benchmark(s) regressed past "
              f"{args.threshold:.2f}x or went missing: {', '.join(flagged)}")
        return 1
    print("\nNo hot-path regressions past the threshold.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
