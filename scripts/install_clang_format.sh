#!/usr/bin/env bash
# Install the clang-format version the blocking CI format job pins
# (clang-format-18), so `clang-format-18` runs locally exactly as in CI.
#
# Tries, in order:
#   1. nothing (already installed);
#   2. the distro package manager (apt/dnf/pacman/brew);
#   3. apt with the upstream LLVM repository (Ubuntu/Debian whose default
#      archive predates LLVM 18), via the official llvm.sh bootstrapper.
#
# Usage:  scripts/install_clang_format.sh
# Verify: clang-format-18 --version
# Format: clang-format-18 -i $(git ls-files '*.cc' '*.hh' '*.cpp')
set -euo pipefail

readonly MAJOR=18

ok() {
  command -v "clang-format-${MAJOR}" >/dev/null 2>&1
}

verify() {
  if ! ok; then
    return 1
  fi
  local v
  v=$("clang-format-${MAJOR}" --version)
  case "$v" in
    *" ${MAJOR}."*) echo "installed: $v" ;;
    *)
      echo "error: clang-format-${MAJOR} reports an unexpected version: $v" >&2
      return 1
      ;;
  esac
}

if verify; then
  exit 0
fi

SUDO=""
if [ "$(id -u)" -ne 0 ] && command -v sudo >/dev/null 2>&1; then
  SUDO="sudo"
fi

# 2. Distro package managers. Each branch is best-effort: failure falls
#    through to the LLVM-repo path below.
if command -v apt-get >/dev/null 2>&1; then
  $SUDO apt-get update && $SUDO apt-get install -y "clang-format-${MAJOR}" || true
elif command -v dnf >/dev/null 2>&1; then
  # Fedora ships versioned clang-tools-extra; the binary is clang-format
  # with the major baked into the package version.
  $SUDO dnf install -y "clang-tools-extra" || true
  if ! ok && command -v clang-format >/dev/null 2>&1 &&
     clang-format --version | grep -q " ${MAJOR}\."; then
    $SUDO ln -sf "$(command -v clang-format)" "/usr/local/bin/clang-format-${MAJOR}"
  fi
elif command -v pacman >/dev/null 2>&1; then
  $SUDO pacman -S --noconfirm clang || true
  if ! ok && command -v clang-format >/dev/null 2>&1 &&
     clang-format --version | grep -q " ${MAJOR}\."; then
    $SUDO ln -sf "$(command -v clang-format)" "/usr/local/bin/clang-format-${MAJOR}"
  fi
elif command -v brew >/dev/null 2>&1; then
  brew install "llvm@${MAJOR}" || true
  if ! ok; then
    prefix=$(brew --prefix "llvm@${MAJOR}" 2>/dev/null || true)
    if [ -n "$prefix" ] && [ -x "$prefix/bin/clang-format" ]; then
      ln -sf "$prefix/bin/clang-format" "/usr/local/bin/clang-format-${MAJOR}"
    fi
  fi
fi

if verify; then
  exit 0
fi

# 3. Debian/Ubuntu whose archive predates LLVM 18: the official apt
#    bootstrapper adds apt.llvm.org for this exact major.
if command -v apt-get >/dev/null 2>&1 && command -v curl >/dev/null 2>&1; then
  tmp=$(mktemp)
  curl -fsSL https://apt.llvm.org/llvm.sh -o "$tmp"
  $SUDO bash "$tmp" "${MAJOR}"
  rm -f "$tmp"
  $SUDO apt-get install -y "clang-format-${MAJOR}" || true
fi

if verify; then
  exit 0
fi

echo "error: could not install clang-format-${MAJOR} with the available" >&2
echo "package managers. Install LLVM ${MAJOR} manually (https://llvm.org) or" >&2
echo "let CI's format job reformat: it pins clang-format-${MAJOR} too." >&2
exit 1
